/// Algorithm-level tests on hand-checkable graphs, typed across both
/// backends. Larger randomized validation lives in test_equivalence.cpp.

#include <gtest/gtest.h>

#include "algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace {

using grb::IndexType;

template <typename Tag>
struct Algo : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(Algo, Backends);

/// Small directed test graph (GBTL's classic 9-vertex example flavor):
///   0->1 0->3, 1->4 1->6, 2->5, 3->0 3->2, 4->5, 5->2, 6->2 6->3 6->4
template <typename Tag>
grb::Matrix<double, Tag> wiki_graph() {
  grb::Matrix<double, Tag> a(7, 7);
  a.build({0, 0, 1, 1, 2, 3, 3, 4, 5, 6, 6, 6},
          {1, 3, 4, 6, 5, 0, 2, 5, 2, 2, 3, 4},
          std::vector<double>(12, 1.0));
  return a;
}

TYPED_TEST(Algo, BfsLevelsOnPath) {
  auto g = gbtl_graph::path(5);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> levels(5);
  algorithms::bfs_level(a, 0, levels);
  for (IndexType v = 0; v < 5; ++v)
    EXPECT_EQ(levels.extractElement(v), v + 1) << "vertex " << v;
}

TYPED_TEST(Algo, BfsLevelsDirectedGraph) {
  auto a = wiki_graph<TypeParam>();
  grb::Vector<IndexType, TypeParam> levels(7);
  algorithms::bfs_level(a, 0, levels);
  EXPECT_EQ(levels.extractElement(0), 1u);
  EXPECT_EQ(levels.extractElement(1), 2u);
  EXPECT_EQ(levels.extractElement(3), 2u);
  EXPECT_EQ(levels.extractElement(4), 3u);
  EXPECT_EQ(levels.extractElement(6), 3u);
  EXPECT_EQ(levels.extractElement(2), 3u);
  EXPECT_EQ(levels.extractElement(5), 4u);
}

TYPED_TEST(Algo, BfsUnreachableHoldsNoValue) {
  grb::Matrix<double, TypeParam> a(4, 4);
  a.build({0, 2}, {1, 3}, {1.0, 1.0});
  grb::Vector<IndexType, TypeParam> levels(4);
  algorithms::bfs_level(a, 0, levels);
  EXPECT_TRUE(levels.hasElement(0));
  EXPECT_TRUE(levels.hasElement(1));
  EXPECT_FALSE(levels.hasElement(2));
  EXPECT_FALSE(levels.hasElement(3));
}

TYPED_TEST(Algo, BfsTerminatesWhenFrontierDiesOnBackEdges) {
  // 0 -> 1 -> 2, and 2's only out-edge points back at 0: the last frontier
  // {2} expands exclusively into already-visited territory. The loop must
  // detect that no new vertex was marked and stop instead of spinning
  // toward the depth == n safety valve.
  grb::Matrix<double, TypeParam> a(6, 6);
  a.build({0, 1, 2}, {1, 2, 0}, {1.0, 1.0, 1.0});
  grb::Vector<IndexType, TypeParam> levels(6);
  algorithms::bfs_level(a, 0, levels);
  EXPECT_EQ(levels.extractElement(0), 1u);
  EXPECT_EQ(levels.extractElement(1), 2u);
  EXPECT_EQ(levels.extractElement(2), 3u);
  EXPECT_EQ(levels.nvals(), 3u);
}

TYPED_TEST(Algo, BfsIsolatedSourceAndEmptyGraph) {
  grb::Matrix<double, TypeParam> empty(5, 5);
  grb::Vector<IndexType, TypeParam> levels(5);
  algorithms::bfs_level(empty, 3, levels);
  EXPECT_EQ(levels.nvals(), 1u);
  EXPECT_EQ(levels.extractElement(3), 1u);

  // Source with a self-loop only: the expansion re-proposes the source,
  // which the visited mask rejects — again no new marks, must terminate.
  grb::Matrix<double, TypeParam> loop(4, 4);
  loop.build({2, 0}, {2, 1}, {1.0, 1.0});
  grb::Vector<IndexType, TypeParam> self(4);
  algorithms::bfs_level(loop, 2, self);
  EXPECT_EQ(self.nvals(), 1u);
  EXPECT_EQ(self.extractElement(2), 1u);
}

TYPED_TEST(Algo, BfsParentTreeIsValid) {
  auto a = wiki_graph<TypeParam>();
  grb::Vector<IndexType, TypeParam> parents(7), levels(7);
  algorithms::bfs_parent(a, 0, parents);
  algorithms::bfs_level(a, 0, levels);
  EXPECT_EQ(parents.extractElement(0), 0u);
  for (IndexType v = 1; v < 7; ++v) {
    ASSERT_TRUE(parents.hasElement(v));
    const IndexType p = parents.extractElement(v);
    EXPECT_TRUE(a.hasElement(p, v)) << "parent edge " << p << "->" << v;
    EXPECT_EQ(levels.extractElement(p) + 1, levels.extractElement(v));
  }
}

TYPED_TEST(Algo, BatchBfsMatchesSingleSource) {
  auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(40, 150, 21));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  const grb::IndexArrayType sources{0, 7, 13, 39};
  grb::Matrix<IndexType, TypeParam> levels(4, 40);
  algorithms::batch_bfs_level(a, sources, levels);
  for (IndexType s = 0; s < sources.size(); ++s) {
    grb::Vector<IndexType, TypeParam> single(40);
    algorithms::bfs_level(a, sources[s], single);
    for (IndexType v = 0; v < 40; ++v) {
      ASSERT_EQ(levels.hasElement(s, v), single.hasElement(v))
          << "source " << s << " vertex " << v;
      if (single.hasElement(v)) {
        EXPECT_EQ(levels.extractElement(s, v), single.extractElement(v));
      }
    }
  }
}

TYPED_TEST(Algo, SsspOnWeightedDiamond) {
  //     0 --1--> 1 --1--> 3
  //      \--4--> 2 --1--/
  grb::Matrix<double, TypeParam> a(4, 4);
  a.build({0, 0, 1, 2}, {1, 2, 3, 3}, {1.0, 4.0, 1.0, 1.0});
  grb::Vector<double, TypeParam> dist(4);
  algorithms::sssp(a, 0, dist);
  EXPECT_DOUBLE_EQ(dist.extractElement(0), 0.0);
  EXPECT_DOUBLE_EQ(dist.extractElement(1), 1.0);
  EXPECT_DOUBLE_EQ(dist.extractElement(2), 4.0);
  EXPECT_DOUBLE_EQ(dist.extractElement(3), 2.0);
}

TYPED_TEST(Algo, SsspNegativeEdgeNoCycle) {
  grb::Matrix<double, TypeParam> a(3, 3);
  a.build({0, 0, 1}, {1, 2, 2}, {5.0, 2.0, -4.0});
  grb::Vector<double, TypeParam> dist(3);
  algorithms::sssp(a, 0, dist);
  EXPECT_DOUBLE_EQ(dist.extractElement(2), 1.0);  // 0->1->2 = 5 - 4
}

TYPED_TEST(Algo, BatchSsspMatchesSingle) {
  auto g = gbtl_graph::with_random_weights(
      gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(20, 60, 7)), 1.0, 9.0,
      3);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Matrix<double, TypeParam> dists(3, 20);
  algorithms::batch_sssp(a, {0, 5, 11}, dists);
  const grb::IndexArrayType sources{0, 5, 11};
  for (IndexType s = 0; s < 3; ++s) {
    grb::Vector<double, TypeParam> single(20);
    algorithms::sssp(a, sources[s], single);
    for (IndexType v = 0; v < 20; ++v) {
      ASSERT_EQ(single.hasElement(v), dists.hasElement(s, v));
      if (single.hasElement(v)) {
        EXPECT_DOUBLE_EQ(single.extractElement(v),
                         dists.extractElement(s, v));
      }
    }
  }
}

TYPED_TEST(Algo, PageRankSumsToOneAndRanksHubs) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::star(8));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<double, TypeParam> rank(8);
  auto res = algorithms::pagerank(a, rank);
  EXPECT_GT(res.iterations, 0u);
  double total = 0.0;
  grb::reduce(total, grb::NoAccumulate{}, grb::PlusMonoid<double>{}, rank);
  EXPECT_NEAR(total, 1.0, 1e-6);
  // The hub must outrank every leaf.
  for (IndexType v = 1; v < 8; ++v)
    EXPECT_GT(rank.extractElement(0), rank.extractElement(v));
}

TYPED_TEST(Algo, PageRankHandlesDanglingVertices) {
  grb::Matrix<double, TypeParam> a(3, 3);
  a.build({0, 1}, {1, 2}, {1.0, 1.0});  // 2 is dangling
  grb::Vector<double, TypeParam> rank(3);
  algorithms::pagerank(a, rank);
  double total = 0.0;
  grb::reduce(total, grb::NoAccumulate{}, grb::PlusMonoid<double>{}, rank);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TYPED_TEST(Algo, TriangleCountVariantsAgree) {
  // K4 has 4 triangles; bowtie (two triangles sharing a vertex) has 2.
  auto k4 = gbtl_graph::complete(4);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(k4);
  EXPECT_EQ(algorithms::triangle_count_masked(a), 4u);
  EXPECT_EQ(algorithms::triangle_count_unmasked(a), 4u);
  EXPECT_EQ(algorithms::triangle_count_burkhardt(a), 4u);

  gbtl_graph::EdgeList bowtie;
  bowtie.num_vertices = 5;
  bowtie.src = {0, 1, 0, 2, 1, 2, 2, 3, 2, 4, 3, 4};
  bowtie.dst = {1, 0, 2, 0, 2, 1, 3, 2, 4, 2, 4, 3};
  auto b = gbtl_graph::to_matrix<double, TypeParam>(bowtie);
  EXPECT_EQ(algorithms::triangle_count_masked(b), 2u);
  EXPECT_EQ(algorithms::triangle_count_unmasked(b), 2u);
  EXPECT_EQ(algorithms::triangle_count_burkhardt(b), 2u);
}

TYPED_TEST(Algo, TrianglesPerVertexOnBowtie) {
  gbtl_graph::EdgeList bowtie;
  bowtie.num_vertices = 5;
  bowtie.src = {0, 1, 0, 2, 1, 2, 2, 3, 2, 4, 3, 4};
  bowtie.dst = {1, 0, 2, 0, 2, 1, 3, 2, 4, 2, 4, 3};
  auto b = gbtl_graph::to_matrix<double, TypeParam>(bowtie);
  auto t = algorithms::triangles_per_vertex(b);
  EXPECT_EQ(t.extractElement(0), 1u);
  EXPECT_EQ(t.extractElement(2), 2u);  // the waist joins both triangles
  EXPECT_EQ(t.extractElement(4), 1u);
}

TYPED_TEST(Algo, ConnectedComponentsThreeIslands) {
  // {0,1,2} path, {3,4} edge, {5} isolated.
  gbtl_graph::EdgeList g;
  g.num_vertices = 6;
  g.src = {0, 1, 1, 2, 3, 4};
  g.dst = {1, 0, 2, 1, 4, 3};
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> labels(6);
  algorithms::connected_components(a, labels);
  EXPECT_EQ(labels.extractElement(0), 0u);
  EXPECT_EQ(labels.extractElement(1), 0u);
  EXPECT_EQ(labels.extractElement(2), 0u);
  EXPECT_EQ(labels.extractElement(3), 3u);
  EXPECT_EQ(labels.extractElement(4), 3u);
  EXPECT_EQ(labels.extractElement(5), 5u);
  EXPECT_EQ(algorithms::component_count(a), 3u);
}

TYPED_TEST(Algo, MisIsIndependentAndMaximal) {
  auto g = gbtl_graph::symmetrize(
      gbtl_graph::remove_self_loops(gbtl_graph::erdos_renyi(30, 90, 11)));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<bool, TypeParam> iset(30);
  algorithms::mis(a, iset, 42);
  EXPECT_TRUE(algorithms::is_maximal_independent_set(a, iset));
  EXPECT_GT(iset.nvals(), 0u);
}

TYPED_TEST(Algo, MisOnStarPicksLeaves) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::star(6));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<bool, TypeParam> iset(6);
  algorithms::mis(a, iset, 7);
  EXPECT_TRUE(algorithms::is_maximal_independent_set(a, iset));
  // Either {hub} or all leaves; both are maximal.
  const bool hub = iset.hasElement(0);
  EXPECT_EQ(iset.nvals(), hub ? 1u : 5u);
}

TYPED_TEST(Algo, MstOnWeightedSquare) {
  // Square 0-1-3-2-0 with diagonal; MST = 3 cheapest acyclic edges.
  gbtl_graph::EdgeList g;
  g.num_vertices = 4;
  g.src = {0, 1, 0, 2, 1, 3, 2, 3, 0, 3};
  g.dst = {1, 0, 2, 0, 3, 1, 3, 2, 3, 0};
  g.weight = {1, 1, 4, 4, 2, 2, 5, 5, 10, 10};
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> parents(4);
  auto res = algorithms::mst(a, parents);
  EXPECT_EQ(res.edges, 3u);
  EXPECT_DOUBLE_EQ(res.weight, 7.0);  // 1 + 2 + 4
  EXPECT_EQ(parents.extractElement(0), 0u);
}

TYPED_TEST(Algo, MstForestOnDisconnectedGraph) {
  gbtl_graph::EdgeList g;
  g.num_vertices = 5;
  g.src = {0, 1, 2, 3};
  g.dst = {1, 0, 3, 2};
  g.weight = {3, 3, 4, 4};
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> parents(5);
  auto res = algorithms::mst(a, parents);
  EXPECT_EQ(res.edges, 2u);
  EXPECT_DOUBLE_EQ(res.weight, 7.0);
  EXPECT_EQ(parents.nvals(), 5u);  // every vertex gets a parent/root entry
}

TYPED_TEST(Algo, MaxflowClassicNetwork) {
  // The CLRS example network; max flow = 23.
  grb::Matrix<double, TypeParam> cap(6, 6);
  cap.build({0, 0, 1, 2, 2, 3, 3, 4, 4},
            {1, 2, 3, 1, 4, 2, 5, 3, 5},
            {16, 13, 12, 4, 14, 9, 20, 7, 4});
  // CLRS flow network s=0, t=5: known max flow 23.
  EXPECT_DOUBLE_EQ(algorithms::maxflow(cap, 0, 5), 23.0);
}

TYPED_TEST(Algo, MaxflowDisconnectedIsZero) {
  grb::Matrix<double, TypeParam> cap(4, 4);
  cap.build({0, 2}, {1, 3}, {5.0, 5.0});
  EXPECT_DOUBLE_EQ(algorithms::maxflow(cap, 0, 3), 0.0);
}

TYPED_TEST(Algo, DegreeAndDensityMetrics) {
  auto a = wiki_graph<TypeParam>();
  auto outd = algorithms::out_degree(a);
  auto ind = algorithms::in_degree(a);
  EXPECT_EQ(outd.extractElement(6), 3u);
  EXPECT_EQ(ind.extractElement(2), 3u);
  EXPECT_FALSE(ind.hasElement(0) && false);
  EXPECT_NEAR(algorithms::graph_density(a), 12.0 / 42.0, 1e-12);
}

TYPED_TEST(Algo, ClusteringCoefficients) {
  auto k4 = gbtl_graph::complete(4);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(k4);
  auto cc = algorithms::clustering_coefficient(a);
  for (IndexType v = 0; v < 4; ++v)
    EXPECT_DOUBLE_EQ(cc.extractElement(v), 1.0);
  EXPECT_DOUBLE_EQ(algorithms::global_clustering_coefficient(a), 1.0);
}

TYPED_TEST(Algo, ClosenessCentralityOnPath) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::path(5));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  // Middle vertex: distances 2,1,1,2 -> 4/6.
  EXPECT_NEAR(algorithms::closeness_centrality(a, 2), 4.0 / 6.0, 1e-12);
  // End vertex: distances 1,2,3,4 -> 4/10.
  EXPECT_NEAR(algorithms::closeness_centrality(a, 0), 4.0 / 10.0, 1e-12);
}

TYPED_TEST(Algo, BetweennessCentralityOnPath) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::path(5));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  auto bc = algorithms::betweenness_centrality(a);
  // Undirected path BC (directed-count convention, both directions):
  // vertex 1 lies on s-t pairs (0,2),(0,3),(0,4) and reverses -> 6.
  EXPECT_NEAR(bc.extractElement(0), 0.0, 1e-9);
  EXPECT_NEAR(bc.extractElement(1), 6.0, 1e-9);
  EXPECT_NEAR(bc.extractElement(2), 8.0, 1e-9);
  EXPECT_NEAR(bc.extractElement(3), 6.0, 1e-9);
  EXPECT_NEAR(bc.extractElement(4), 0.0, 1e-9);
}

TYPED_TEST(Algo, BetweennessStarCenterDominates) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::star(6));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  auto bc = algorithms::betweenness_centrality(a);
  // All 5*4 = 20 ordered leaf pairs route through the hub.
  EXPECT_NEAR(bc.extractElement(0), 20.0, 1e-9);
  for (IndexType v = 1; v < 6; ++v) EXPECT_NEAR(bc.extractElement(v), 0.0, 1e-9);
}

}  // namespace
