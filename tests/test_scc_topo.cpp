/// SCC (forward-backward) and topological-level tests, typed across both
/// backends, with a host Kosaraju oracle on random digraphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "algorithms/scc.hpp"
#include "algorithms/topological.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace {

using gbtl_graph::Index;
using grb::IndexType;

template <typename Tag>
struct SccTopo : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(SccTopo, Backends);

/// Host Kosaraju: returns component id per vertex.
std::vector<Index> kosaraju(const gbtl_graph::EdgeList& g) {
  const Index n = g.num_vertices;
  std::vector<std::vector<Index>> adj(n), radj(n);
  for (Index e = 0; e < g.num_edges(); ++e) {
    adj[g.src[e]].push_back(g.dst[e]);
    radj[g.dst[e]].push_back(g.src[e]);
  }
  std::vector<bool> seen(n, false);
  std::vector<Index> order;
  std::function<void(Index)> dfs1 = [&](Index u) {
    seen[u] = true;
    for (Index v : adj[u])
      if (!seen[v]) dfs1(v);
    order.push_back(u);
  };
  for (Index u = 0; u < n; ++u)
    if (!seen[u]) dfs1(u);
  std::vector<Index> comp(n, n);
  std::function<void(Index, Index)> dfs2 = [&](Index u, Index c) {
    comp[u] = c;
    for (Index v : radj[u])
      if (comp[v] == n) dfs2(v, c);
  };
  Index c = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (comp[*it] == n) dfs2(*it, c++);
  return comp;
}

TYPED_TEST(SccTopo, SccOnTwoCyclesAndBridge) {
  // Cycle {0,1,2} -> bridge -> cycle {3,4}; vertex 5 isolated.
  gbtl_graph::EdgeList g;
  g.num_vertices = 6;
  g.src = {0, 1, 2, 2, 3, 4};
  g.dst = {1, 2, 0, 3, 4, 3};
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> labels(6);
  const auto count = algorithms::strongly_connected_components(a, labels);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels.extractElement(0), labels.extractElement(1));
  EXPECT_EQ(labels.extractElement(1), labels.extractElement(2));
  EXPECT_EQ(labels.extractElement(3), labels.extractElement(4));
  EXPECT_NE(labels.extractElement(0), labels.extractElement(3));
  EXPECT_NE(labels.extractElement(5), labels.extractElement(0));
  EXPECT_NE(labels.extractElement(5), labels.extractElement(3));
}

TYPED_TEST(SccTopo, SccMatchesKosarajuOnRandomDigraphs) {
  for (unsigned seed : {3u, 4u, 5u}) {
    auto g = gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
        gbtl_graph::erdos_renyi(30, 70, seed)));
    auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
    grb::Vector<IndexType, TypeParam> labels(30);
    const auto count = algorithms::strongly_connected_components(a, labels);
    const auto ref = kosaraju(g);
    const Index ref_count =
        *std::max_element(ref.begin(), ref.end()) + 1;
    EXPECT_EQ(count, ref_count) << "seed " << seed;
    // Same-component relation must agree.
    for (Index u = 0; u < 30; ++u)
      for (Index v = u + 1; v < 30; ++v)
        EXPECT_EQ(labels.extractElement(u) == labels.extractElement(v),
                  ref[u] == ref[v])
            << "seed " << seed << " pair " << u << "," << v;
  }
}

TYPED_TEST(SccTopo, DagHasAllSingletonSccs) {
  auto g = gbtl_graph::path(6);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  EXPECT_EQ(algorithms::scc_count(a), 6u);
}

TYPED_TEST(SccTopo, TopologicalLevelsOnDiamond) {
  // 0 -> {1,2} -> 3
  gbtl_graph::EdgeList g;
  g.num_vertices = 4;
  g.src = {0, 0, 1, 2};
  g.dst = {1, 2, 3, 3};
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> levels(4);
  const auto res = algorithms::topological_levels(a, levels);
  EXPECT_TRUE(res.is_dag);
  EXPECT_EQ(res.levels_used, 3u);
  EXPECT_EQ(levels.extractElement(0), 1u);
  EXPECT_EQ(levels.extractElement(1), 2u);
  EXPECT_EQ(levels.extractElement(2), 2u);
  EXPECT_EQ(levels.extractElement(3), 3u);
}

TYPED_TEST(SccTopo, CycleDetection) {
  auto cyc = gbtl_graph::to_matrix<double, TypeParam>(gbtl_graph::cycle(5));
  EXPECT_FALSE(algorithms::is_dag(cyc));
  auto pth = gbtl_graph::to_matrix<double, TypeParam>(gbtl_graph::path(5));
  EXPECT_TRUE(algorithms::is_dag(pth));

  // DAG with a tail into a cycle: downstream of the cycle unassigned.
  gbtl_graph::EdgeList g;
  g.num_vertices = 5;
  g.src = {0, 1, 2, 3, 3};
  g.dst = {1, 2, 1, 2, 4};  // 1<->2 via 2->1: cycle {1,2}
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> levels(5);
  const auto res = algorithms::topological_levels(a, levels);
  EXPECT_FALSE(res.is_dag);
  EXPECT_TRUE(levels.hasElement(0));   // source peels
  EXPECT_FALSE(levels.hasElement(1));  // on the cycle
  EXPECT_FALSE(levels.hasElement(2));
}

TYPED_TEST(SccTopo, TopologicalOrderRespectsEdges) {
  auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(25, 60, 9));
  // Orient edges upward (src < dst) to force a DAG.
  gbtl_graph::EdgeList dag;
  dag.num_vertices = 25;
  for (Index e = 0; e < g.num_edges(); ++e) {
    if (g.src[e] == g.dst[e]) continue;
    dag.src.push_back(std::min(g.src[e], g.dst[e]));
    dag.dst.push_back(std::max(g.src[e], g.dst[e]));
  }
  dag = gbtl_graph::deduplicate(dag);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(dag);
  const auto order = algorithms::topological_order(a);
  ASSERT_EQ(order.size(), 25u);
  std::vector<Index> pos(25);
  for (Index k = 0; k < 25; ++k) pos[order[k]] = k;
  for (Index e = 0; e < dag.num_edges(); ++e)
    EXPECT_LT(pos[dag.src[e]], pos[dag.dst[e]]);

  auto cyc = gbtl_graph::to_matrix<double, TypeParam>(gbtl_graph::cycle(4));
  EXPECT_THROW(algorithms::topological_order(cyc),
               grb::InvalidValueException);
}

}  // namespace
