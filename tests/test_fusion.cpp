/// Unit tests for the lazy op-DAG (sparse/fusion_plan.hpp): recording,
/// fusion legality, launch-overhead elision, transfer/compute overlap, the
/// materialization points, and bit-exactness of fused replay against the
/// eager path.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "sparse/fusion_plan.hpp"

namespace {

using grb::GpuSim;
using grb::IndexArrayType;
using grb::IndexType;
using sparse::FusionGuard;
using sparse::FusionMode;

/// A small directed test graph: ring + stride-3 chords (every vertex has
/// out-degree 2, no dangling corner cases unless asked for).
grb::Matrix<double, GpuSim> ring_graph(IndexType n) {
  IndexArrayType rows, cols;
  std::vector<double> vals;
  for (IndexType i = 0; i < n; ++i) {
    rows.push_back(i);
    cols.push_back((i + 1) % n);
    vals.push_back(1.0);
    rows.push_back(i);
    cols.push_back((i + 3) % n);
    vals.push_back(2.0);
  }
  grb::Matrix<double, GpuSim> a(n, n);
  a.build(rows, cols, vals);
  return a;
}

grb::Vector<double, GpuSim> ones_vector(IndexType n) {
  return grb::Vector<double, GpuSim>(std::vector<double>(n, 1.0), 0.0);
}

/// mxv → apply → eWiseAdd into one output: the canonical fusable chain.
void run_chain(grb::Matrix<double, GpuSim>& a,
               grb::Vector<double, GpuSim>& u,
               grb::Vector<double, GpuSim>& w) {
  grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x * 0.5 + 1.0; }, w);
  grb::eWiseAdd(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Plus<double>{},
                w, u, grb::Replace);
}

TEST(Fusion, ModeParsesFromEnvironment) {
  EXPECT_EQ(0, setenv("GBTL_FUSION_MODE", "off", 1));
  EXPECT_EQ(sparse::fusion_mode_from_env(), FusionMode::Off);
  setenv("GBTL_FUSION_MODE", "fuse", 1);
  EXPECT_EQ(sparse::fusion_mode_from_env(), FusionMode::Fuse);
  setenv("GBTL_FUSION_MODE", "auto", 1);
  EXPECT_EQ(sparse::fusion_mode_from_env(), FusionMode::Auto);
  setenv("GBTL_FUSION_MODE", "nonsense", 1);
  EXPECT_EQ(sparse::fusion_mode_from_env(), FusionMode::Auto);
  unsetenv("GBTL_FUSION_MODE");
  EXPECT_EQ(sparse::fusion_mode_from_env(), FusionMode::Auto);
}

TEST(Fusion, GuardPinsAndRestoresMode) {
  const FusionMode before = sparse::fusion_mode();
  {
    FusionGuard guard(FusionMode::Off);
    EXPECT_EQ(sparse::fusion_mode(), FusionMode::Off);
    {
      FusionGuard inner(FusionMode::Fuse);
      EXPECT_EQ(sparse::fusion_mode(), FusionMode::Fuse);
    }
    EXPECT_EQ(sparse::fusion_mode(), FusionMode::Off);
  }
  EXPECT_EQ(sparse::fusion_mode(), before);
}

TEST(Fusion, FusedChainElidesLaunchOverhead) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto a = ring_graph(64);
  auto u = ones_vector(64);
  grb::Vector<double, GpuSim> w(64);

  FusionGuard guard(FusionMode::Fuse);
  const auto before = ctx.stats();
  run_chain(a, u, w);
  grb::wait();
  const auto delta = ctx.stats() - before;

  EXPECT_GT(delta.fused_launches, 0u);
  EXPECT_GT(delta.launches_elided, 0u);
  // Elision removes overhead, never launches: every recorded op still runs.
  EXPECT_GT(delta.kernel_launches, delta.launches_elided);
  // Each elided launch saves exactly the fixed overhead on the clock.
  EXPECT_GT(delta.launches_elided * ctx.properties().kernel_launch_overhead_s,
            0.0);
}

TEST(Fusion, OffModeRecordsNothingAndElidesNothing) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto a = ring_graph(64);
  auto u = ones_vector(64);
  grb::Vector<double, GpuSim> w(64);

  FusionGuard guard(FusionMode::Off);
  const auto before = ctx.stats();
  run_chain(a, u, w);
  const auto delta = ctx.stats() - before;

  EXPECT_EQ(delta.fused_launches, 0u);
  EXPECT_EQ(delta.launches_elided, 0u);
  EXPECT_TRUE(sparse::op_dag().nodes.empty());
}

TEST(Fusion, FusedReplayIsBitExact) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto a = ring_graph(128);
  auto u = ones_vector(128);

  auto run_mode = [&](FusionMode mode) {
    FusionGuard guard(mode);
    grb::Vector<double, GpuSim> w(128);
    run_chain(a, u, w);
    IndexArrayType idx;
    std::vector<double> vals;
    w.extractTuples(idx, vals);
    return std::make_pair(idx, vals);
  };

  const auto eager = run_mode(FusionMode::Off);
  const auto fused = run_mode(FusionMode::Fuse);
  const auto autod = run_mode(FusionMode::Auto);
  EXPECT_EQ(eager.first, fused.first);
  EXPECT_EQ(eager.first, autod.first);
  ASSERT_EQ(eager.second.size(), fused.second.size());
  for (std::size_t i = 0; i < eager.second.size(); ++i) {
    // Bitwise equality, not tolerance: replay runs the identical eager body.
    EXPECT_EQ(eager.second[i], fused.second[i]) << "i=" << i;
    EXPECT_EQ(eager.second[i], autod.second[i]) << "i=" << i;
  }
}

TEST(Fusion, AutoModeSizeGateSkipsLargeOperands) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  const IndexType n =
      static_cast<IndexType>(sparse::kAutoFuseMaxItems) + 1;
  auto u = ones_vector(n);
  grb::Vector<double, GpuSim> w(n);

  FusionGuard guard(FusionMode::Auto);
  const auto before = ctx.stats();
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 1.0; }, u);
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x * 2.0; }, w);
  grb::wait();
  const auto delta = ctx.stats() - before;
  // Past the size gate the launch overhead is noise against the work time:
  // Auto must leave the chain unfused.
  EXPECT_EQ(delta.fused_launches, 0u);
  EXPECT_EQ(delta.launches_elided, 0u);
}

TEST(Fusion, HostReadsMaterializePendingOps) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto u = ones_vector(32);
  grb::Vector<double, GpuSim> w(32);

  FusionGuard guard(FusionMode::Fuse);
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 41.0; }, u);
  EXPECT_FALSE(sparse::op_dag().nodes.empty());  // recorded, not launched
  // The host read is a materialization point: the value must be current.
  EXPECT_EQ(w.extractElement(7), 42.0);
  EXPECT_TRUE(sparse::op_dag().nodes.empty());

  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 1.0; }, w);
  EXPECT_FALSE(sparse::op_dag().nodes.empty());
  EXPECT_EQ(w.nvals(), 32u);  // nvals() is a materialization point too
  EXPECT_TRUE(sparse::op_dag().nodes.empty());

  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 1.0; }, w);
  grb::wait();  // the explicit materialization point
  EXPECT_TRUE(sparse::op_dag().nodes.empty());
  EXPECT_EQ(w.extractElement(0), 44.0);
}

TEST(Fusion, UnrelatedTemporaryDeathKeepsChainPending) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto u = ones_vector(32);
  grb::Vector<double, GpuSim> w(32);

  FusionGuard guard(FusionMode::Fuse);
  grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 1.0; }, u);
  {
    grb::Vector<double, GpuSim> unrelated(8);  // never touches the chain
  }
  // The touch filter must not have drained the pending apply.
  EXPECT_FALSE(sparse::op_dag().nodes.empty());
  grb::wait();
}

TEST(Fusion, PrefetchedIndexUploadHidesTransferTime) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  const IndexType n = 8192;
  auto a = ring_graph(n);
  auto u = ones_vector(n);
  grb::Vector<double, GpuSim> w(n), z(n);
  const IndexArrayType all = grb::all_indices(n);

  FusionGuard guard(FusionMode::Fuse);
  const auto before = ctx.stats();
  // The mxv keeps the compute stream busy while the planner stages the
  // assign's index upload on the transfer stream.
  grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  grb::assign(z, grb::NoMask{}, grb::NoAccumulate{}, 1.5, all);
  grb::wait();
  const auto delta = ctx.stats() - before;

  EXPECT_GT(delta.overlap_seconds_hidden, 0.0);
  // The multi-stream makespan is what overlap saves against the serial sum.
  EXPECT_LE(ctx.makespan_s(), ctx.simulated_time_s());
  EXPECT_EQ(z.extractElement(0), 1.5);
}

TEST(Fusion, PagerankElidesLaunchesUnderAuto) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto a = ring_graph(256);
  grb::Vector<double, GpuSim> rank(256);

  FusionGuard guard(FusionMode::Auto);
  const auto before = ctx.stats();
  algorithms::pagerank(a, rank, 0.85, /*tol=*/0.0, /*max_iterations=*/5);
  const auto delta = ctx.stats() - before;

  // The acceptance bar for the op-DAG: a real iterative algorithm sheds
  // launch overheads without any change to its own code.
  EXPECT_GT(delta.launches_elided, 0u);
  EXPECT_GT(delta.fused_launches, 0u);

  // And the ranks it produces are bit-identical to the eager ones.
  grb::Vector<double, GpuSim> eager_rank(256);
  {
    FusionGuard off(FusionMode::Off);
    algorithms::pagerank(a, eager_rank, 0.85, 0.0, 5);
  }
  IndexArrayType ia, ib;
  std::vector<double> va, vb;
  rank.extractTuples(ia, va);
  eager_rank.extractTuples(ib, vb);
  EXPECT_EQ(ia, ib);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i)
    EXPECT_EQ(va[i], vb[i]) << "i=" << i;
}

TEST(Fusion, ProducerProducerChainsNeverFuse) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto a = ring_graph(64);
  auto u = ones_vector(64);
  grb::Vector<double, GpuSim> w(64);

  FusionGuard guard(FusionMode::Fuse);
  const auto before = ctx.stats();
  // w = A·u; w = A·w — dependent, but producer→producer is not a legal
  // composite launch (each SpMV keeps its own overhead).
  grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, w, grb::Replace);
  grb::wait();
  const auto delta = ctx.stats() - before;
  EXPECT_EQ(delta.fused_launches, 0u);
  EXPECT_EQ(delta.launches_elided, 0u);
}

TEST(Fusion, IndependentAdjacentOpsDoNotFuse) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto u = ones_vector(64);
  grb::Vector<double, GpuSim> w1(64), w2(64);

  FusionGuard guard(FusionMode::Fuse);
  const auto before = ctx.stats();
  // Adjacent in program order but no dataflow edge: grouping them would
  // claim a fusion the hardware could not have performed.
  grb::apply(w1, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 1.0; }, u);
  grb::apply(w2, grb::NoMask{}, grb::NoAccumulate{},
             [](double x) { return x + 2.0; }, u);
  grb::wait();
  const auto delta = ctx.stats() - before;
  EXPECT_EQ(delta.fused_launches, 0u);
  EXPECT_EQ(delta.launches_elided, 0u);
  EXPECT_EQ(w1.extractElement(3), 2.0);
  EXPECT_EQ(w2.extractElement(3), 3.0);
}

TEST(Fusion, ScalarReductionFusesWithItsProducer) {
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 1};
  gpu_sim::ScopedDevice bind(ctx);
  auto u = ones_vector(64);
  auto v = ones_vector(64);
  grb::Vector<double, GpuSim> w(64);

  FusionGuard guard(FusionMode::Fuse);
  const auto before = ctx.stats();
  grb::eWiseMult(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Times<double>{},
                 u, v, grb::Replace);
  double s = 0.0;
  grb::reduce(s, grb::NoAccumulate{}, grb::PlusMonoid<double>{}, w);
  const auto delta = ctx.stats() - before;
  EXPECT_EQ(s, 64.0);  // the scalar is valid immediately on return
  EXPECT_GT(delta.fused_launches, 0u);
  EXPECT_GT(delta.launches_elided, 0u);
}

}  // namespace
