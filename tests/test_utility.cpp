/// Utility-layer tests: printing, identity/diag constructors, backend
/// round-tripping, all_indices, and frontend container conveniences.

#include <gtest/gtest.h>

#include <sstream>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexType;

template <typename Tag>
struct Utility : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(Utility, Backends);

TYPED_TEST(Utility, IdentityMatrix) {
  auto I = grb::identity<double, TypeParam>(4);
  EXPECT_EQ(I.nvals(), 4u);
  for (IndexType i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(I.extractElement(i, i), 1.0);
  EXPECT_FALSE(I.hasElement(0, 1));

  // A * I == A.
  grb::Matrix<double, TypeParam> a(4, 4);
  a.build({0, 2, 3}, {1, 3, 0}, {5.0, 6.0, 7.0});
  grb::Matrix<double, TypeParam> c(4, 4);
  grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, I);
  EXPECT_TRUE(c == a);
}

TYPED_TEST(Utility, DiagFromVector) {
  grb::Vector<double, TypeParam> d(3);
  d.setElement(0, 2.0);
  d.setElement(2, 3.0);
  auto D = grb::diag(d);
  EXPECT_EQ(D.nvals(), 2u);
  EXPECT_DOUBLE_EQ(D.extractElement(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(D.extractElement(2, 2), 3.0);
  EXPECT_FALSE(D.hasElement(1, 1));
}

TYPED_TEST(Utility, ToBackendRoundTrip) {
  grb::Matrix<double, TypeParam> a(3, 4);
  a.build({0, 1, 2}, {3, 0, 2}, {1.5, 2.5, 3.5});
  auto seq = grb::to_backend<grb::Sequential>(a);
  auto gpu = grb::to_backend<grb::GpuSim>(seq);
  auto back = grb::to_backend<TypeParam>(gpu);
  EXPECT_TRUE(back == a);

  grb::Vector<double, TypeParam> v(5);
  v.setElement(1, 9.0);
  auto v2 = grb::to_backend<TypeParam>(grb::to_backend<grb::Sequential>(v));
  EXPECT_TRUE(v2 == v);
}

TYPED_TEST(Utility, PrintFormatsDenselyWithDashes) {
  grb::Matrix<int, TypeParam> a(2, 2);
  a.build({0, 1}, {1, 0}, {7, 8});
  const std::string s = grb::to_string(a);
  EXPECT_NE(s.find("2x2, 2 values"), std::string::npos);
  EXPECT_NE(s.find("[-, 7]"), std::string::npos);
  EXPECT_NE(s.find("[8, -]"), std::string::npos);

  grb::Vector<int, TypeParam> v(3);
  v.setElement(1, 4);
  EXPECT_EQ(grb::to_string(v), "[-, 4, -]");
}

TYPED_TEST(Utility, DenseConstructorsSuppressImpliedZeros) {
  grb::Matrix<double, TypeParam> a({{0, 1}, {2, 0}}, 0.0);
  EXPECT_EQ(a.nvals(), 2u);
  grb::Matrix<double, TypeParam> b({{9, 9}, {9, 1}}, 9.0);
  EXPECT_EQ(b.nvals(), 1u);
  grb::Vector<double, TypeParam> v(std::vector<double>{0, 3, 0, 4}, 0.0);
  EXPECT_EQ(v.nvals(), 2u);
  EXPECT_THROW(
      (grb::Matrix<double, TypeParam>({{1.0, 2.0}, {3.0}}, 0.0)),
      grb::InvalidValueException);
}

TYPED_TEST(Utility, ClearAndRemoveElement) {
  grb::Matrix<double, TypeParam> a(2, 2);
  a.build({0, 1}, {0, 1}, {1.0, 2.0});
  a.removeElement(0, 0);
  EXPECT_EQ(a.nvals(), 1u);
  a.removeElement(0, 0);  // idempotent
  EXPECT_EQ(a.nvals(), 1u);
  a.clear();
  EXPECT_EQ(a.nvals(), 0u);
  EXPECT_EQ(a.nrows(), 2u);  // shape survives clear

  grb::Vector<double, TypeParam> v(3);
  v.setElement(2, 5.0);
  v.removeElement(2);
  EXPECT_EQ(v.nvals(), 0u);
}

TYPED_TEST(Utility, BuildLengthMismatchThrows) {
  grb::Matrix<double, TypeParam> a(2, 2);
  EXPECT_THROW(a.build({0, 1}, {0}, {1.0, 2.0}),
               grb::InvalidValueException);
  grb::Vector<double, TypeParam> v(2);
  EXPECT_THROW(v.build({0, 1}, {1.0}), grb::InvalidValueException);
}

TEST(UtilityFree, AllIndices) {
  const auto idx = grb::all_indices(4);
  ASSERT_EQ(idx.size(), 4u);
  for (IndexType i = 0; i < 4; ++i) EXPECT_EQ(idx[i], i);
  EXPECT_TRUE(grb::all_indices(0).empty());
}

TEST(UtilityFree, ZeroDimensionalObjectsRejected) {
  using M = grb::Matrix<double, grb::Sequential>;
  using V = grb::Vector<double, grb::Sequential>;
  EXPECT_THROW(M(0, 3), grb::InvalidValueException);
  EXPECT_THROW(M(3, 0), grb::InvalidValueException);
  EXPECT_THROW(V(0), grb::InvalidValueException);
}

}  // namespace
