/// Size-class device memory pool (gpu_sim::Context::pool_alloc /
/// pool_free / trim): class rounding, freelist reuse, stats accounting,
/// cache release under memory pressure, and interaction with reset_stats.

#include <gtest/gtest.h>

#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"

namespace {

using gpu_sim::Context;
using gpu_sim::DeviceProperties;

Context make_ctx(std::size_t total_memory = 1u << 30) {
  DeviceProperties props;
  props.total_global_memory = total_memory;
  return Context{props, 1};
}

TEST(MemoryPool, ClassRoundingIsPowerOfTwoWithFloor) {
  EXPECT_EQ(Context::pool_class_bytes(1), Context::kMinPoolClassBytes);
  EXPECT_EQ(Context::pool_class_bytes(Context::kMinPoolClassBytes),
            Context::kMinPoolClassBytes);
  EXPECT_EQ(Context::pool_class_bytes(Context::kMinPoolClassBytes + 1),
            Context::kMinPoolClassBytes * 2);
  EXPECT_EQ(Context::pool_class_bytes(1000), 1024u);
  EXPECT_EQ(Context::pool_class_bytes(4096), 4096u);
  EXPECT_EQ(Context::pool_class_bytes(4097), 8192u);
}

TEST(MemoryPool, FirstAllocationMissesThenFreelistHits) {
  auto ctx = make_ctx();
  void* p = ctx.pool_alloc(100);  // class 128
  EXPECT_EQ(ctx.stats().pool_misses, 1u);
  EXPECT_EQ(ctx.stats().pool_hits, 0u);
  EXPECT_EQ(ctx.stats().bytes_in_use, 128u);

  ctx.pool_free(p);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  EXPECT_EQ(ctx.stats().pool_bytes_held, 128u);

  // Any request in the same class is served by the cached block.
  void* q = ctx.pool_alloc(70);  // class 128 again
  EXPECT_EQ(q, p);
  EXPECT_EQ(ctx.stats().pool_hits, 1u);
  EXPECT_EQ(ctx.stats().pool_misses, 1u);
  EXPECT_EQ(ctx.stats().pool_bytes_held, 0u);
  EXPECT_EQ(ctx.stats().bytes_in_use, 128u);
  ctx.pool_free(q);
}

TEST(MemoryPool, HitDoesNotGrowTotalBytesAllocated) {
  auto ctx = make_ctx();
  void* p = ctx.pool_alloc(256);
  const auto after_miss = ctx.stats().total_bytes_allocated;
  ctx.pool_free(p);
  void* q = ctx.pool_alloc(256);
  EXPECT_EQ(ctx.stats().total_bytes_allocated, after_miss)
      << "a freelist hit carves no new device memory";
  EXPECT_EQ(ctx.stats().allocations, 2u)
      << "but it still counts as a client allocation";
  ctx.pool_free(q);
}

TEST(MemoryPool, DifferentClassesDoNotShareFreelists) {
  auto ctx = make_ctx();
  void* p = ctx.pool_alloc(64);
  ctx.pool_free(p);
  ctx.pool_alloc(128);  // different class: must miss
  EXPECT_EQ(ctx.stats().pool_misses, 2u);
  EXPECT_EQ(ctx.stats().pool_hits, 0u);
  EXPECT_EQ(ctx.stats().pool_bytes_held, 64u);  // the 64-block is still cached
}

TEST(MemoryPool, TrimReleasesEveryCachedBlock) {
  auto ctx = make_ctx();
  void* a = ctx.pool_alloc(64);
  void* b = ctx.pool_alloc(1024);
  ctx.pool_free(a);
  ctx.pool_free(b);
  EXPECT_EQ(ctx.stats().pool_bytes_held, 64u + 1024u);

  ctx.trim();
  EXPECT_EQ(ctx.stats().pool_bytes_held, 0u);
  EXPECT_EQ(ctx.stats().pool_trims, 1u);

  // Post-trim allocations start cold again.
  ctx.pool_alloc(64);
  EXPECT_EQ(ctx.stats().pool_hits, 0u);
  EXPECT_EQ(ctx.stats().pool_misses, 3u);
}

TEST(MemoryPool, CacheIsReleasedUnderMemoryPressure) {
  // 4 KiB card. Fill it, return the block to the cache, then ask for a
  // different class: the pool must trim its cache instead of failing.
  auto ctx = make_ctx(4096);
  void* big = ctx.pool_alloc(4096);
  ctx.pool_free(big);
  EXPECT_EQ(ctx.stats().pool_bytes_held, 4096u);

  void* small = ctx.pool_alloc(2048);  // would not fit with the cache held
  EXPECT_NE(small, nullptr);
  EXPECT_EQ(ctx.stats().pool_bytes_held, 0u);  // cache was trimmed
  EXPECT_GE(ctx.stats().pool_trims, 1u);
  ctx.pool_free(small);
}

TEST(MemoryPool, ExhaustionStillThrowsWhenCacheCannotHelp) {
  auto ctx = make_ctx(4096);
  void* held = ctx.pool_alloc(2048);
  EXPECT_THROW(ctx.pool_alloc(4096), gpu_sim::DeviceBadAlloc);
  // The live allocation is untouched by the failed attempt.
  EXPECT_EQ(ctx.stats().bytes_in_use, 2048u);
  ctx.pool_free(held);
}

TEST(MemoryPool, ResetStatsPreservesCachedBytes) {
  auto ctx = make_ctx();
  void* p = ctx.pool_alloc(512);
  ctx.pool_free(p);
  ctx.reset_stats();
  EXPECT_EQ(ctx.stats().pool_bytes_held, 512u)
      << "cached blocks survive a stats reset just like live allocations";
  EXPECT_EQ(ctx.stats().pool_hits, 0u);
  // The cache still serves hits after the reset.
  ctx.pool_alloc(512);
  EXPECT_EQ(ctx.stats().pool_hits, 1u);
}

TEST(MemoryPool, HitRateReflectsHitAndMissCounts) {
  auto ctx = make_ctx();
  EXPECT_DOUBLE_EQ(ctx.stats().pool_hit_rate(), 0.0);
  void* p = ctx.pool_alloc(64);
  ctx.pool_free(p);
  for (int i = 0; i < 3; ++i) {
    void* q = ctx.pool_alloc(64);
    ctx.pool_free(q);
  }
  // 1 miss + 3 hits.
  EXPECT_DOUBLE_EQ(ctx.stats().pool_hit_rate(), 0.75);
}

TEST(MemoryPool, DeviceVectorChurnIsServedFromTheFreelist) {
  // The access pattern GraphBLAS ops produce: a scratch vector per call,
  // same size every iteration. After the first, every allocation must hit.
  auto ctx = make_ctx();
  { gpu_sim::device_vector<double> warmup(100, ctx); }
  const auto before = ctx.stats();
  for (int iter = 0; iter < 10; ++iter) {
    gpu_sim::device_vector<double> scratch(100, ctx);
  }
  const auto delta = ctx.stats() - before;
  EXPECT_EQ(delta.pool_hits, 10u);
  EXPECT_EQ(delta.pool_misses, 0u);
  EXPECT_EQ(delta.total_bytes_allocated, 0u);
}

TEST(MemoryPool, PoolFreeOfForeignPointerThrows) {
  auto ctx = make_ctx();
  int local = 0;
  EXPECT_THROW(ctx.pool_free(&local), gpu_sim::InvalidDevicePointer);
  EXPECT_NO_THROW(ctx.pool_free(nullptr));  // cudaFreeAsync(nullptr) no-op
}

}  // namespace
