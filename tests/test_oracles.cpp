/// Oracle tests: every algorithm validated against an independent,
/// straightforward host implementation (adjacency lists + textbook code)
/// on randomized graphs. These catch semantic bugs that backend-equivalence
/// tests cannot (both backends being wrong identically).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <random>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace {

using gbtl_graph::EdgeList;
using gbtl_graph::Index;
using grb::IndexType;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct HostGraph {
  Index n = 0;
  std::vector<std::vector<std::pair<Index, double>>> adj;

  explicit HostGraph(const EdgeList& g) : n(g.num_vertices), adj(n) {
    for (Index e = 0; e < g.num_edges(); ++e)
      adj[g.src[e]].emplace_back(g.dst[e],
                                 g.weighted() ? g.weight[e] : 1.0);
  }
};

std::vector<long long> host_bfs(const HostGraph& g, Index s) {
  std::vector<long long> dist(g.n, -1);
  std::queue<Index> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    Index u = q.front();
    q.pop();
    for (auto [v, w] : g.adj[u])
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
  }
  return dist;
}

std::vector<double> host_bellman_ford(const HostGraph& g, Index s) {
  std::vector<double> dist(g.n, kInf);
  dist[s] = 0;
  for (Index round = 0; round + 1 < g.n; ++round) {
    bool changed = false;
    for (Index u = 0; u < g.n; ++u) {
      if (dist[u] == kInf) continue;
      for (auto [v, w] : g.adj[u])
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          changed = true;
        }
    }
    if (!changed) break;
  }
  return dist;
}

std::uint64_t host_triangles(const EdgeList& g) {
  std::vector<std::vector<bool>> m(g.num_vertices,
                                   std::vector<bool>(g.num_vertices, false));
  for (Index e = 0; e < g.num_edges(); ++e) m[g.src[e]][g.dst[e]] = true;
  std::uint64_t t = 0;
  for (Index i = 0; i < g.num_vertices; ++i)
    for (Index j = i + 1; j < g.num_vertices; ++j)
      if (m[i][j])
        for (Index k = j + 1; k < g.num_vertices; ++k)
          if (m[i][k] && m[j][k]) ++t;
  return t;
}

struct UnionFind {
  std::vector<Index> parent;
  explicit UnionFind(Index n) : parent(n) {
    std::iota(parent.begin(), parent.end(), Index{0});
  }
  Index find(Index x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  bool unite(Index a, Index b) {
    a = find(a), b = find(b);
    if (a == b) return false;
    parent[a] = b;
    return true;
  }
};

double host_kruskal_weight(const EdgeList& g) {
  std::vector<Index> order(g.num_edges());
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return g.weight[a] < g.weight[b];
  });
  UnionFind uf(g.num_vertices);
  double total = 0;
  for (Index e : order)
    if (uf.unite(g.src[e], g.dst[e])) total += g.weight[e];
  return total;
}

double host_maxflow(std::vector<std::vector<double>> cap, Index s, Index t) {
  const Index n = cap.size();
  double flow = 0;
  for (;;) {
    std::vector<Index> parent(n, n);
    std::queue<Index> q;
    q.push(s);
    parent[s] = s;
    while (!q.empty() && parent[t] == n) {
      Index u = q.front();
      q.pop();
      for (Index v = 0; v < n; ++v)
        if (parent[v] == n && cap[u][v] > 1e-12) {
          parent[v] = u;
          q.push(v);
        }
    }
    if (parent[t] == n) return flow;
    double aug = kInf;
    for (Index v = t; v != s; v = parent[v])
      aug = std::min(aug, cap[parent[v]][v]);
    for (Index v = t; v != s; v = parent[v]) {
      cap[parent[v]][v] -= aug;
      cap[v][parent[v]] += aug;
    }
    flow += aug;
  }
}

std::vector<Index> host_kcore(const EdgeList& g) {
  const Index n = g.num_vertices;
  std::vector<std::vector<Index>> adj(n);
  for (Index e = 0; e < g.num_edges(); ++e)
    adj[g.src[e]].push_back(g.dst[e]);
  std::vector<Index> deg(n), core(n, 0);
  for (Index v = 0; v < n; ++v) deg[v] = adj[v].size();
  std::vector<bool> removed(n, false);
  for (Index k = 0;; ++k) {
    bool any_left = false;
    bool peeled = true;
    while (peeled) {
      peeled = false;
      for (Index v = 0; v < n; ++v) {
        if (removed[v] || deg[v] > k) continue;
        removed[v] = true;
        core[v] = k;
        peeled = true;
        for (Index u : adj[v])
          if (!removed[u]) --deg[u];
      }
    }
    for (Index v = 0; v < n; ++v) any_left |= !removed[v];
    if (!any_left) break;
  }
  return core;
}

EdgeList random_graph(Index n, Index m, unsigned seed, bool symmetric,
                      bool weighted) {
  auto g = gbtl_graph::deduplicate(
      gbtl_graph::remove_self_loops(gbtl_graph::erdos_renyi(n, m, seed)));
  if (symmetric) g = gbtl_graph::symmetrize(g);
  if (weighted) g = gbtl_graph::with_random_weights(g, 1.0, 9.0, seed + 1);
  return g;
}

class Oracles : public ::testing::TestWithParam<unsigned> {};

TEST_P(Oracles, BfsMatchesHostBfs) {
  auto g = random_graph(60, 200, GetParam(), false, false);
  HostGraph h(g);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<IndexType, grb::Sequential> levels(g.num_vertices);
  algorithms::bfs_level(a, 0, levels);
  const auto ref = host_bfs(h, 0);
  for (Index v = 0; v < g.num_vertices; ++v) {
    if (ref[v] < 0) {
      EXPECT_FALSE(levels.hasElement(v)) << v;
    } else {
      ASSERT_TRUE(levels.hasElement(v)) << v;
      EXPECT_EQ(levels.extractElement(v),
                static_cast<IndexType>(ref[v] + 1))
          << v;
    }
  }
}

TEST_P(Oracles, BfsParentDistancesMatch) {
  auto g = random_graph(50, 170, GetParam() + 50, false, false);
  HostGraph h(g);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<IndexType, grb::Sequential> parents(g.num_vertices);
  algorithms::bfs_parent(a, 0, parents);
  const auto ref = host_bfs(h, 0);
  for (Index v = 0; v < g.num_vertices; ++v)
    EXPECT_EQ(parents.hasElement(v), ref[v] >= 0) << v;
  // Walking parents from any reachable vertex must take exactly ref[v]
  // hops to the source.
  for (Index v = 0; v < g.num_vertices; ++v) {
    if (ref[v] <= 0) continue;
    Index cur = v;
    long long hops = 0;
    while (cur != 0 && hops <= ref[v]) {
      cur = parents.extractElement(cur);
      ++hops;
    }
    EXPECT_EQ(cur, 0u) << v;
    EXPECT_EQ(hops, ref[v]) << v;
  }
}

TEST_P(Oracles, SsspMatchesBellmanFord) {
  auto g = random_graph(50, 180, GetParam() + 100, false, true);
  HostGraph h(g);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> dist(g.num_vertices);
  algorithms::sssp(a, 0, dist);
  const auto ref = host_bellman_ford(h, 0);
  for (Index v = 0; v < g.num_vertices; ++v) {
    if (ref[v] == kInf) {
      EXPECT_FALSE(dist.hasElement(v)) << v;
    } else {
      ASSERT_TRUE(dist.hasElement(v)) << v;
      EXPECT_NEAR(dist.extractElement(v), ref[v], 1e-9) << v;
    }
  }
}

TEST_P(Oracles, TriangleCountsMatchBruteForce) {
  auto g = random_graph(36, 150, GetParam() + 200, true, false);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  const auto ref = host_triangles(g);
  EXPECT_EQ(algorithms::triangle_count_masked(a), ref);
  EXPECT_EQ(algorithms::triangle_count_unmasked(a), ref);
  EXPECT_EQ(algorithms::triangle_count_burkhardt(a), ref);
}

TEST_P(Oracles, ComponentsMatchUnionFind) {
  auto g = random_graph(70, 80, GetParam() + 300, true, false);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<IndexType, grb::Sequential> labels(g.num_vertices);
  algorithms::connected_components(a, labels);
  UnionFind uf(g.num_vertices);
  for (Index e = 0; e < g.num_edges(); ++e) uf.unite(g.src[e], g.dst[e]);
  for (Index u = 0; u < g.num_vertices; ++u)
    for (Index v = u + 1; v < g.num_vertices; ++v)
      EXPECT_EQ(labels.extractElement(u) == labels.extractElement(v),
                uf.find(u) == uf.find(v))
          << u << "," << v;
}

TEST_P(Oracles, MstWeightMatchesKruskal) {
  auto g = random_graph(40, 140, GetParam() + 400, true, true);
  // Make weights symmetric (symmetrize happened before weighting).
  for (Index e = 0; e < g.num_edges(); ++e) {
    // enforce w(u,v) == w(v,u) by keying on the unordered pair
    const Index u = std::min(g.src[e], g.dst[e]);
    const Index v = std::max(g.src[e], g.dst[e]);
    std::mt19937_64 h(u * 1000003 + v);
    g.weight[e] = 1.0 + static_cast<double>(h() % 1000) / 100.0;
  }
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<IndexType, grb::Sequential> parents(g.num_vertices);
  const auto res = algorithms::mst(a, parents);
  EXPECT_NEAR(res.weight, host_kruskal_weight(g), 1e-9);
}

TEST_P(Oracles, MaxflowMatchesHostEdmondsKarp) {
  const Index n = 14;
  std::mt19937 rng(GetParam() + 500);
  std::uniform_real_distribution<double> cap(1.0, 20.0);
  std::bernoulli_distribution keep(0.3);
  std::vector<std::vector<double>> c(n, std::vector<double>(n, 0.0));
  grb::IndexArrayType rows, cols;
  std::vector<double> vals;
  for (Index u = 0; u < n; ++u)
    for (Index v = 0; v < n; ++v)
      if (u != v && keep(rng)) {
        c[u][v] = cap(rng);
        rows.push_back(u);
        cols.push_back(v);
        vals.push_back(c[u][v]);
      }
  grb::Matrix<double, grb::Sequential> a(n, n);
  a.build(rows, cols, vals);
  EXPECT_NEAR(algorithms::maxflow(a, 0, n - 1), host_maxflow(c, 0, n - 1),
              1e-9);
}

TEST_P(Oracles, KcoreMatchesHostPeeling) {
  auto g = random_graph(50, 240, GetParam() + 600, true, false);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<IndexType, grb::Sequential> core(g.num_vertices);
  algorithms::kcore_decomposition(a, core);
  const auto ref = host_kcore(g);
  for (Index v = 0; v < g.num_vertices; ++v)
    EXPECT_EQ(core.extractElement(v), ref[v]) << "vertex " << v;
}

TEST_P(Oracles, PagerankMatchesDensePowerIteration) {
  auto g = random_graph(30, 120, GetParam() + 700, false, false);
  const Index n = g.num_vertices;
  // Dense host power iteration with dangling handling.
  std::vector<std::vector<double>> M(n, std::vector<double>(n, 0.0));
  std::vector<double> outdeg(n, 0.0);
  for (Index e = 0; e < g.num_edges(); ++e) outdeg[g.src[e]] += 1.0;
  for (Index e = 0; e < g.num_edges(); ++e)
    M[g.src[e]][g.dst[e]] = 1.0 / outdeg[g.src[e]];
  std::vector<double> r(n, 1.0 / n), next(n);
  const double d = 0.85;
  for (int it = 0; it < 200; ++it) {
    double dangling = 0.0;
    for (Index u = 0; u < n; ++u)
      if (outdeg[u] == 0.0) dangling += r[u];
    std::fill(next.begin(), next.end(),
              (1.0 - d + d * dangling) / static_cast<double>(n));
    for (Index u = 0; u < n; ++u)
      for (Index v = 0; v < n; ++v) next[v] += d * r[u] * M[u][v];
    r = next;
  }
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> rank(n);
  algorithms::pagerank(a, rank, d, 1e-14, 200);
  for (Index v = 0; v < n; ++v)
    EXPECT_NEAR(rank.extractElement(v), r[v], 1e-8) << v;
}

TEST_P(Oracles, BetweennessMatchesBruteForce) {
  auto g = random_graph(16, 50, GetParam() + 800, false, false);
  const Index n = g.num_vertices;
  HostGraph h(g);
  // Brute force: enumerate all shortest paths via BFS DAG counting.
  std::vector<double> ref(n, 0.0);
  for (Index s = 0; s < n; ++s) {
    auto dist = host_bfs(h, s);
    // sigma counts
    std::vector<double> sigma(n, 0.0);
    sigma[s] = 1.0;
    std::vector<Index> order;
    for (long long level = 0;; ++level) {
      bool any = false;
      for (Index v = 0; v < n; ++v)
        if (dist[v] == level) {
          order.push_back(v);
          any = true;
        }
      if (!any) break;
    }
    for (Index v : order) {
      if (v == s) continue;
      for (Index u = 0; u < n; ++u)
        if (dist[u] + 1 == dist[v]) {
          for (auto [w, _] : h.adj[u])
            if (w == v) sigma[v] += sigma[u];
        }
    }
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Index w = *it;
      for (Index u = 0; u < n; ++u) {
        if (dist[u] + 1 != dist[w]) continue;
        bool edge = false;
        for (auto [x, _] : h.adj[u])
          if (x == w) edge = true;
        if (edge && sigma[w] > 0)
          delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      }
    }
    for (Index v = 0; v < n; ++v)
      if (v != s) ref[v] += delta[v];
  }
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  auto bc = algorithms::betweenness_centrality(a);
  for (Index v = 0; v < n; ++v)
    EXPECT_NEAR(bc.extractElement(v), ref[v], 1e-6) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Oracles, ::testing::Range(1u, 7u));

}  // namespace
