/// Bit-format subsystem tests (sparse/bitmap.hpp + the three backends'
/// bit_ops): CSR -> Bit -> CSR round-trip identity on random boolean
/// matrices plus the ELL/HYB edge shapes (all-empty rows, one dense star
/// row), BitVector popcount-cache invalidate-on-write, the selector's
/// never-ratify-when-CSR-is-cheaper property, Sequential == CpuPar word
/// kernels under several worker counts, and forced-Bit == forced-CSR for
/// vxm/mxv (stored-false values included), BFS, and triangle counting on
/// the GPU backend — with the DeviceStats bit counters moving exactly when
/// the Bit engine is allowed to run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/triangle_count.hpp"
#include "backend_cpupar/bit_ops.hpp"
#include "backend_cpupar/pool.hpp"
#include "backend_sequential/bit_ops.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"
#include "sparse/bitmap.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;
using sparse::BitMatrix;
using sparse::BitMode;
using sparse::BitModeGuard;
using sparse::BitVector;
using sparse::Csr;
using sparse::Index;

/// Random boolean CSR: stored entries valued 0.0 or 1.0 (stored zeros keep
/// the truth plane distinct from the structure plane).
Csr<double> random_boolean_csr(Index nrows, Index ncols, double density,
                               double truthy, std::mt19937& rng) {
  Csr<double> a;
  a.nrows = nrows;
  a.ncols = ncols;
  a.row_offsets.assign(nrows + 1, 0);
  std::bernoulli_distribution keep(density);
  std::bernoulli_distribution truth(truthy);
  for (Index i = 0; i < nrows; ++i) {
    for (Index j = 0; j < ncols; ++j)
      if (keep(rng)) {
        a.col_indices.push_back(j);
        a.values.push_back(truth(rng) ? 1.0 : 0.0);
      }
    a.row_offsets[i + 1] = static_cast<Index>(a.col_indices.size());
  }
  return a;
}

void expect_csr_identity(const Csr<double>& a, const Csr<double>& b,
                         const char* what) {
  ASSERT_EQ(a.nrows, b.nrows) << what;
  ASSERT_EQ(a.ncols, b.ncols) << what;
  ASSERT_EQ(a.row_offsets, b.row_offsets) << what;
  ASSERT_EQ(a.col_indices, b.col_indices) << what;
  ASSERT_EQ(a.values, b.values) << what;
}

// --------------------------------------------------------------------------
// Round-trip identity
// --------------------------------------------------------------------------

TEST(BitmapRoundTrip, RandomBooleanMatricesAreIdentity) {
  std::mt19937 rng(20160501);
  for (int trial = 0; trial < 30; ++trial) {
    const Index nrows = 1 + rng() % 90;
    const Index ncols = 1 + rng() % 200;  // crosses several word boundaries
    const double density = 0.02 + 0.3 * (trial % 5) / 5.0;
    const double truthy = trial % 3 == 0 ? 1.0 : 0.7;  // some all-truthy
    const auto a = random_boolean_csr(nrows, ncols, density, truthy, rng);
    const auto back = sparse::bits_to_csr<double>(sparse::csr_to_bits(a));
    expect_csr_identity(a, back, "random boolean round trip");
  }
}

TEST(BitmapRoundTrip, AllEmptyRows) {
  Csr<double> a;
  a.nrows = 17;
  a.ncols = 130;
  a.row_offsets.assign(18, 0);
  const auto bm = sparse::csr_to_bits(a);
  EXPECT_EQ(bm.nnz(), 0u);
  expect_csr_identity(a, sparse::bits_to_csr<double>(bm), "all-empty rows");
}

TEST(BitmapRoundTrip, SingleDenseStarRow) {
  // The ELL-blowup star shape: one full row, everything else empty.
  Csr<double> a;
  a.nrows = 65;
  a.ncols = 65;
  a.row_offsets.assign(66, 0);
  for (Index j = 0; j < 65; ++j) {
    a.col_indices.push_back(j);
    a.values.push_back(1.0);
  }
  for (Index i = 1; i <= 65; ++i) a.row_offsets[i] = 65;
  const auto bm = sparse::csr_to_bits(a);
  EXPECT_EQ(bm.nnz(), 65u);
  EXPECT_TRUE(bm.all_truthy());
  expect_csr_identity(a, sparse::bits_to_csr<double>(bm), "star row");
}

TEST(BitmapRoundTrip, ZeroDimensioned) {
  Csr<double> a;
  a.nrows = 0;
  a.ncols = 0;
  a.row_offsets.assign(1, 0);
  expect_csr_identity(a, sparse::bits_to_csr<double>(sparse::csr_to_bits(a)),
                      "zero-dimensioned");
}

TEST(BitmapRoundTrip, StoredFalseSplitsThePlanes) {
  Csr<double> a;
  a.nrows = 1;
  a.ncols = 70;
  a.row_offsets = {0, 2};
  a.col_indices = {3, 68};  // second entry in the second word
  a.values = {0.0, 1.0};
  const auto bm = sparse::csr_to_bits(a);
  EXPECT_FALSE(bm.all_truthy());
  EXPECT_TRUE(bm.test(0, 3));
  EXPECT_FALSE(bm.test_truth(0, 3));
  EXPECT_TRUE(bm.test_truth(0, 68));
  expect_csr_identity(a, sparse::bits_to_csr<double>(bm), "stored false");
}

// --------------------------------------------------------------------------
// BitVector popcount cache
// --------------------------------------------------------------------------

TEST(BitVectorCache, PopcountSurvivesInvalidateOnWrite) {
  BitVector v(200);
  EXPECT_TRUE(v.popcount_cached());  // fresh all-zero bitmap: count 0
  EXPECT_EQ(v.popcount(), 0u);

  v.set(0);
  v.set(63);
  v.set(64);
  v.set(199);
  EXPECT_FALSE(v.popcount_cached());  // set() dirtied the cache
  EXPECT_EQ(v.popcount(), 4u);
  EXPECT_TRUE(v.popcount_cached());  // recount cached again
  EXPECT_EQ(v.popcount(), 4u);

  v.reset(63);
  EXPECT_FALSE(v.popcount_cached());
  EXPECT_EQ(v.popcount(), 3u);

  // Raw word access is a structural write even if nothing changes.
  (void)v.mutable_words();
  EXPECT_FALSE(v.popcount_cached());
  EXPECT_EQ(v.popcount(), 3u);

  v.mutable_words()[1] |= 1ull;  // bit 64 already set: count unchanged
  EXPECT_EQ(v.popcount(), 3u);

  v.clear();
  EXPECT_TRUE(v.popcount_cached());
  EXPECT_EQ(v.popcount(), 0u);
}

// --------------------------------------------------------------------------
// Selector properties
// --------------------------------------------------------------------------

TEST(BitSelector, AutoNeverRatifiesWhenCsrIsCheaper) {
  const gpu_sim::DeviceProperties props;
  std::mt19937 rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    sparse::BitTraversalShape s;
    s.n = 1 + rng() % 100000;
    s.dest_rows = 1 + rng() % s.n;
    const std::uint64_t cells = s.n * s.dest_rows;
    s.nnz = 1 + rng() % std::max<std::uint64_t>(cells / 2, 1);
    s.frontier_rows = 1 + rng() % s.n;
    s.planes = 1 + rng() % 2;
    s.view_cached = rng() % 2 == 0;
    const double csr_time =
        std::uniform_real_distribution<double>(1e-7, 1e-2)(rng);
    double bit_time = 0.0;
    const bool took = sparse::select_bit_traversal(BitMode::Auto, s, csr_time,
                                                   props, &bit_time);
    if (took) {
      // Ratified => the model must actually predict a win.
      EXPECT_LT(bit_time, csr_time) << "trial " << trial;
      // ...and the density floor must have been cleared.
      const double density =
          static_cast<double>(s.nnz) /
          (static_cast<double>(s.n) * static_cast<double>(s.dest_rows));
      EXPECT_GE(density, sparse::kBitDensityThreshold) << "trial " << trial;
    }
    // Force/Off are unconditional either way.
    EXPECT_TRUE(
        sparse::select_bit_traversal(BitMode::Force, s, csr_time, props));
    EXPECT_FALSE(
        sparse::select_bit_traversal(BitMode::Off, s, csr_time, props));
  }
}

TEST(BitSelector, AutoRatifiesDenseTraversalOverSlowCsr) {
  // A genuinely dense shape with an expensive CSR alternative must be
  // taken — the selector is not allowed to be vacuously "never Bit".
  const gpu_sim::DeviceProperties props;
  sparse::BitTraversalShape s;
  s.n = 1 << 14;
  s.dest_rows = s.n;
  s.nnz = s.n * 256;  // density 1/64, above the 1/128 floor
  s.frontier_rows = s.n / 2;
  s.planes = 1;
  s.view_cached = true;
  double bit_time = 0.0;
  EXPECT_TRUE(sparse::select_bit_traversal(BitMode::Auto, s, /*csr=*/1.0,
                                           props, &bit_time));
  EXPECT_LT(bit_time, 1.0);
}

TEST(BitSelector, MxmAutoRequiresBothDensitiesAndAWin) {
  const gpu_sim::DeviceProperties props;
  // Dense operands, expensive SpGEMM: ratified.
  EXPECT_TRUE(sparse::select_bit_mxm(BitMode::Auto, /*allowed=*/10000,
                                     /*inner=*/4096, /*nnz_a=*/4096 * 512,
                                     /*nnz_b=*/4096 * 512, 4096, 4096,
                                     /*views_cached=*/true, /*csr=*/1.0,
                                     props));
  // One sparse operand kills the proposal regardless of the CSR price.
  EXPECT_FALSE(sparse::select_bit_mxm(BitMode::Auto, 10000, 4096, 4096 * 512,
                                      /*nnz_b=*/4096, 4096, 4096, true, 1.0,
                                      props));
  // A cheap CSR alternative is never beaten to zero.
  EXPECT_FALSE(sparse::select_bit_mxm(BitMode::Auto, 10000, 4096, 4096 * 512,
                                      4096 * 512, 4096, 4096, true,
                                      /*csr=*/0.0, props));
  EXPECT_TRUE(sparse::select_bit_mxm(BitMode::Force, 1, 1, 1, 1, 1, 1, false,
                                     0.0, props));
  EXPECT_FALSE(sparse::select_bit_mxm(BitMode::Off, 10000, 4096, 4096 * 512,
                                      4096 * 512, 4096, 4096, true, 1.0,
                                      props));
}

// --------------------------------------------------------------------------
// Sequential == CpuPar word kernels, any worker count
// --------------------------------------------------------------------------

TEST(BitKernelsCpuPar, MatchSequentialUnderAnyWorkerCount) {
  std::mt19937 rng(31);
  const Index n = 300;  // several 8-word stride blocks
  const auto acsr = random_boolean_csr(n, n, 0.08, 0.7, rng);
  const auto a = sparse::csr_to_bits(acsr);

  BitVector upres(n), utruth(n);
  for (Index i = 0; i < n; ++i)
    if (rng() % 3 == 0) {
      upres.set(i);
      if (rng() % 4 != 0) utruth.set(i);
    }
  BitVector mask(n);
  for (Index i = 0; i < n; ++i)
    if (rng() % 2 == 0) mask.set(i);

  // Sequential reference.
  BitVector sp_mxv(n), st_mxv(n), sp_vxm(n), st_vxm(n), s_app(n);
  grb::seq_backend::bit_mxv(a, upres, utruth, sp_mxv, st_mxv);
  grb::seq_backend::bit_vxm(upres, utruth, a, sp_vxm, st_vxm);
  grb::seq_backend::bit_masked_apply(sp_vxm, mask, /*complement=*/true,
                                     s_app);
  const auto bt = sparse::csr_to_bits(random_boolean_csr(n, n, 0.08, 1.0,
                                                         rng));
  const auto mcsr = random_boolean_csr(n, n, 0.1, 1.0, rng);
  const auto m = sparse::csr_to_bits(mcsr);
  const auto s_mxm =
      grb::seq_backend::bit_masked_mxm_popcount<double>(a, bt, m);

  for (const std::size_t workers : {1u, 3u, 8u}) {
    gpu_sim::ThreadPool pool(workers);
    grb::cpupar_backend::ScopedPool bind(pool);

    BitVector pp_mxv(n), pt_mxv(n), pp_vxm(n), pt_vxm(n), p_app(n);
    grb::cpupar_backend::bit_mxv(a, upres, utruth, pp_mxv, pt_mxv);
    grb::cpupar_backend::bit_vxm(upres, utruth, a, pp_vxm, pt_vxm);
    grb::cpupar_backend::bit_masked_apply(pp_vxm, mask, true, p_app);
    const auto p_mxm =
        grb::cpupar_backend::bit_masked_mxm_popcount<double>(a, bt, m);

    for (Index w = 0; w < sp_mxv.word_count(); ++w) {
      EXPECT_EQ(pp_mxv.words()[w], sp_mxv.words()[w]) << workers << " w" << w;
      EXPECT_EQ(pt_mxv.words()[w], st_mxv.words()[w]) << workers << " w" << w;
      EXPECT_EQ(pp_vxm.words()[w], sp_vxm.words()[w]) << workers << " w" << w;
      EXPECT_EQ(pt_vxm.words()[w], st_vxm.words()[w]) << workers << " w" << w;
      EXPECT_EQ(p_app.words()[w], s_app.words()[w]) << workers << " w" << w;
    }
    EXPECT_EQ(p_mxm.row_offsets, s_mxm.row_offsets) << workers;
    EXPECT_EQ(p_mxm.col_indices, s_mxm.col_indices) << workers;
    EXPECT_EQ(p_mxm.values, s_mxm.values) << workers;
  }
}

TEST(BitKernelsSeq, TruthNeverEscapesStructure) {
  std::mt19937 rng(41);
  const Index n = 150;
  const auto a =
      sparse::csr_to_bits(random_boolean_csr(n, n, 0.1, 0.5, rng));
  BitVector upres(n), utruth(n);
  for (Index i = 0; i < n; ++i)
    if (rng() % 2 == 0) {
      upres.set(i);
      if (rng() % 2 == 0) utruth.set(i);
    }
  BitVector op(n), ot(n);
  grb::seq_backend::bit_mxv(a, upres, utruth, op, ot);
  for (Index i = 0; i < n; ++i)
    if (ot.test(i)) {
      EXPECT_TRUE(op.test(i)) << "truth outside presence at " << i;
    }
}

// --------------------------------------------------------------------------
// GPU backend: forced-Bit == forced-CSR, counters move as promised
// --------------------------------------------------------------------------

/// Directed boolean graph with some stored-false edges on the GpuSim
/// backend; values 0/1 keep every fold exact.
grb::Matrix<double, grb::GpuSim> gpu_graph(Index n, double density,
                                           double truthy, unsigned seed) {
  std::mt19937 rng(seed);
  IndexArrayType r, c;
  std::vector<double> v;
  std::bernoulli_distribution keep(density);
  std::bernoulli_distribution truth(truthy);
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      if (keep(rng)) {
        r.push_back(i);
        c.push_back(j);
        v.push_back(truth(rng) ? 1.0 : 0.0);
      }
  grb::Matrix<double, grb::GpuSim> a(n, n);
  a.build(r, c, v);
  return a;
}

grb::Vector<double, grb::GpuSim> gpu_vec(Index n, double density,
                                         double truthy, unsigned seed) {
  std::mt19937 rng(seed);
  IndexArrayType idx;
  std::vector<double> vals;
  std::bernoulli_distribution keep(density);
  std::bernoulli_distribution truth(truthy);
  for (Index i = 0; i < n; ++i)
    if (keep(rng)) {
      idx.push_back(i);
      vals.push_back(truth(rng) ? 1.0 : 0.0);
    }
  grb::Vector<double, grb::GpuSim> u(n);
  u.build(idx, vals);
  return u;
}

void expect_same_stored(const grb::Vector<double, grb::GpuSim>& a,
                        const grb::Vector<double, grb::GpuSim>& b,
                        const char* what) {
  IndexArrayType ai, bi;
  std::vector<double> av, bv;
  a.extractTuples(ai, av);
  b.extractTuples(bi, bv);
  EXPECT_EQ(ai, bi) << what << ": stored pattern";
  EXPECT_EQ(av, bv) << what << ": stored values";
}

TEST(BitGpu, ForcedBitMatchesForcedCsrForTraversals) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    const Index n = 60 + 17 * seed;  // crosses word boundaries
    auto a = gpu_graph(n, 0.15, seed % 2 ? 0.7 : 1.0, seed);
    auto u = gpu_vec(n, 0.4, 0.8, seed + 100);

    grb::Vector<double, grb::GpuSim> w_csr(n), w_bit(n);
    {
      BitModeGuard off(BitMode::Off);
      grb::vxm(w_csr, grb::NoMask{}, grb::NoAccumulate{},
               grb::LogicalSemiring<double>{}, u, a, grb::Replace);
    }
    {
      BitModeGuard force(BitMode::Force);
      grb::vxm(w_bit, grb::NoMask{}, grb::NoAccumulate{},
               grb::LogicalSemiring<double>{}, u, a, grb::Replace);
    }
    expect_same_stored(w_csr, w_bit, "vxm");

    grb::Vector<double, grb::GpuSim> y_csr(n), y_bit(n);
    {
      BitModeGuard off(BitMode::Off);
      grb::mxv(y_csr, grb::NoMask{}, grb::NoAccumulate{},
               grb::LogicalSemiring<double>{}, a, u, grb::Replace);
    }
    {
      BitModeGuard force(BitMode::Force);
      grb::mxv(y_bit, grb::NoMask{}, grb::NoAccumulate{},
               grb::LogicalSemiring<double>{}, a, u, grb::Replace);
    }
    expect_same_stored(y_csr, y_bit, "mxv");
  }
}

TEST(BitGpu, ForcedBitMatchesForcedCsrUnderMasks) {
  const Index n = 90;
  auto a = gpu_graph(n, 0.2, 0.8, 11);
  auto u = gpu_vec(n, 0.5, 0.9, 12);
  auto m = gpu_vec(n, 0.5, 0.6, 13);

  for (int variant = 0; variant < 3; ++variant) {
    grb::Vector<double, grb::GpuSim> w_csr(n), w_bit(n);
    auto run = [&](grb::Vector<double, grb::GpuSim>& w) {
      switch (variant) {
        case 0:
          grb::vxm(w, m, grb::NoAccumulate{}, grb::LogicalSemiring<double>{},
                   u, a, grb::Replace);
          break;
        case 1:
          grb::vxm(w, grb::complement(grb::structure(m)), grb::NoAccumulate{},
                   grb::LogicalSemiring<double>{}, u, a, grb::Replace);
          break;
        default:
          grb::vxm(w, grb::structure(m), grb::Plus<double>{},
                   grb::LogicalSemiring<double>{}, u, a, grb::Merge);
          break;
      }
    };
    {
      BitModeGuard off(BitMode::Off);
      run(w_csr);
    }
    {
      BitModeGuard force(BitMode::Force);
      run(w_bit);
    }
    expect_same_stored(w_csr, w_bit, "masked vxm variant");
  }
}

TEST(BitGpu, ForcedBitBfsAndTrianglesMatchForcedCsr) {
  const auto g = gbtl_graph::rmat(8, 8, 20160501);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  const Index n = a.nrows();

  grb::Vector<IndexType, grb::GpuSim> levels_csr(n), levels_bit(n);
  {
    BitModeGuard off(BitMode::Off);
    algorithms::bfs_level(a, 0, levels_csr);
  }
  const auto before = gpu_sim::device().stats();
  {
    BitModeGuard force(BitMode::Force);
    algorithms::bfs_level(a, 0, levels_bit);
  }
  const auto delta = gpu_sim::device().stats() - before;
  EXPECT_GT(delta.bit_selections, 0u);
  EXPECT_GT(delta.bit_conversions, 0u);
  EXPECT_GT(delta.bit_words_touched, 0u);

  IndexArrayType ic, ib;
  std::vector<IndexType> vc, vb;
  levels_csr.extractTuples(ic, vc);
  levels_bit.extractTuples(ib, vb);
  EXPECT_EQ(ic, ib) << "bfs reached set";
  EXPECT_EQ(vc, vb) << "bfs levels";

  // Symmetric loop-free graph for triangles.
  const auto gs = gbtl_graph::symmetrize(
      gbtl_graph::remove_self_loops(gbtl_graph::rmat(7, 8, 7)));
  auto sym = gbtl_graph::to_matrix<double, grb::GpuSim>(gs);
  std::uint64_t t_csr = 0, t_bit = 0;
  {
    BitModeGuard off(BitMode::Off);
    t_csr = algorithms::triangle_count_masked(sym);
  }
  {
    BitModeGuard force(BitMode::Force);
    t_bit = algorithms::triangle_count_masked(sym);
  }
  EXPECT_EQ(t_csr, t_bit) << "triangle count";
}

TEST(BitGpu, OffModeNeverTouchesBitCounters) {
  BitModeGuard off(BitMode::Off);
  const auto before = gpu_sim::device().stats();
  auto a = gpu_graph(80, 0.3, 1.0, 21);
  auto u = gpu_vec(80, 0.5, 1.0, 22);
  grb::Vector<double, grb::GpuSim> w(80);
  grb::vxm(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::LogicalSemiring<double>{}, u, a, grb::Replace);
  grb::Vector<IndexType, grb::GpuSim> levels(80);
  algorithms::bfs_level(a, 0, levels);
  const auto delta = gpu_sim::device().stats() - before;
  EXPECT_EQ(delta.bit_selections, 0u);
  EXPECT_EQ(delta.bit_words_touched, 0u);
  EXPECT_EQ(delta.bit_conversions, 0u);
}

}  // namespace
