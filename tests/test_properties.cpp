/// Algebraic property sweeps at the operation level: identities that must
/// hold for *any* correct GraphBLAS implementation, checked on random
/// matrices across seeds (parameterized) and on both backends where cheap.
///
///   - transpose anti-homomorphism: (A·B)' == B'·A' (commutative mult)
///   - mxm associativity: (A·B)·C == A·(B·C)
///   - vxm/mxv duality: u·A == A'·u
///   - distributivity over eWiseAdd: A·(B ⊕ C) == A·B ⊕ A·C
///   - transpose involution, reduce consistency, identity neutrality
///   - min-plus matrix powers reach the BFS fixed point

#include <gtest/gtest.h>

#include <random>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;
using Mat = grb::Matrix<double, grb::Sequential>;
using Vec = grb::Vector<double, grb::Sequential>;

class OpProperties : public ::testing::TestWithParam<unsigned> {
 protected:
  std::mt19937 rng{GetParam()};

  Mat random_matrix(IndexType nrows, IndexType ncols, double density = 0.3) {
    std::uniform_real_distribution<double> val(-3.0, 3.0);
    std::bernoulli_distribution keep(density);
    grb::IndexArrayType rows, cols;
    std::vector<double> vals;
    for (IndexType i = 0; i < nrows; ++i)
      for (IndexType j = 0; j < ncols; ++j)
        if (keep(rng)) {
          rows.push_back(i);
          cols.push_back(j);
          vals.push_back(val(rng));
        }
    Mat m(nrows, ncols);
    m.build(rows, cols, vals);
    return m;
  }

  Vec random_vector(IndexType n, double density = 0.4) {
    std::uniform_real_distribution<double> val(-3.0, 3.0);
    std::bernoulli_distribution keep(density);
    Vec v(n);
    for (IndexType i = 0; i < n; ++i)
      if (keep(rng)) v.setElement(i, val(rng));
    return v;
  }

  static void expect_near(const Mat& a, const Mat& b) {
    grb::IndexArrayType ar, ac, br, bc;
    std::vector<double> av, bv;
    a.extractTuples(ar, ac, av);
    b.extractTuples(br, bc, bv);
    ASSERT_EQ(ar, br);
    ASSERT_EQ(ac, bc);
    for (std::size_t k = 0; k < av.size(); ++k)
      EXPECT_NEAR(av[k], bv[k], 1e-9);
  }

  static void expect_near(const Vec& a, const Vec& b) {
    grb::IndexArrayType ai, bi;
    std::vector<double> av, bv;
    a.extractTuples(ai, av);
    b.extractTuples(bi, bv);
    ASSERT_EQ(ai, bi);
    for (std::size_t k = 0; k < av.size(); ++k)
      EXPECT_NEAR(av[k], bv[k], 1e-9);
  }
};

TEST_P(OpProperties, TransposeAntiHomomorphism) {
  const auto a = random_matrix(9, 7);
  const auto b = random_matrix(7, 11);
  Mat ab(9, 11);
  grb::mxm(ab, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, b);
  Mat abt(11, 9);
  grb::transpose(abt, NoMask{}, NoAccumulate{}, ab);
  Mat btat(11, 9);
  grb::mxm(btat, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           grb::transpose(b), grb::transpose(a));
  expect_near(abt, btat);
}

TEST_P(OpProperties, MxmAssociativity) {
  const auto a = random_matrix(6, 8);
  const auto b = random_matrix(8, 5);
  const auto c = random_matrix(5, 7);
  Mat ab(6, 5), ab_c(6, 7), bc(8, 7), a_bc(6, 7);
  grb::mxm(ab, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, b);
  grb::mxm(ab_c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           ab, c);
  grb::mxm(bc, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           b, c);
  grb::mxm(a_bc, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, bc);
  expect_near(ab_c, a_bc);
}

TEST_P(OpProperties, VxmMxvDuality) {
  const auto a = random_matrix(8, 10);
  const auto u = random_vector(8);
  Vec via_vxm(10), via_mxv(10);
  grb::vxm(via_vxm, NoMask{}, NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, u, a);
  grb::mxv(via_mxv, NoMask{}, NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, grb::transpose(a), u);
  expect_near(via_vxm, via_mxv);
}

TEST_P(OpProperties, DistributivityOverEwiseAdd) {
  const auto a = random_matrix(7, 6);
  const auto b = random_matrix(6, 8);
  const auto c = random_matrix(6, 8);
  Mat b_plus_c(6, 8);
  grb::eWiseAdd(b_plus_c, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, b,
                c);
  Mat lhs(7, 8);
  grb::mxm(lhs, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, b_plus_c);
  Mat ab(7, 8), ac(7, 8), rhs(7, 8);
  grb::mxm(ab, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, b);
  grb::mxm(ac, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, c);
  grb::eWiseAdd(rhs, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, ab, ac);
  expect_near(lhs, rhs);
}

TEST_P(OpProperties, TransposeIsInvolution) {
  const auto a = random_matrix(9, 5);
  Mat at(5, 9), att(9, 5);
  grb::transpose(at, NoMask{}, NoAccumulate{}, a);
  grb::transpose(att, NoMask{}, NoAccumulate{}, at);
  EXPECT_TRUE(att == a);
}

TEST_P(OpProperties, ReduceConsistency) {
  // Row-reduce then sum == total matrix reduce.
  const auto a = random_matrix(10, 12);
  Vec row_sums(10);
  grb::reduce(row_sums, NoMask{}, NoAccumulate{}, grb::PlusMonoid<double>{},
              a);
  double via_rows = 0.0;
  grb::reduce(via_rows, NoAccumulate{}, grb::PlusMonoid<double>{}, row_sums);
  double direct = 0.0;
  grb::reduce(direct, NoAccumulate{}, grb::PlusMonoid<double>{}, a);
  EXPECT_NEAR(via_rows, direct, 1e-9);
}

TEST_P(OpProperties, IdentityIsNeutralForMxm) {
  const auto a = random_matrix(8, 8);
  const auto I = grb::identity<double, grb::Sequential>(8);
  Mat left(8, 8), right(8, 8);
  grb::mxm(left, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           I, a);
  grb::mxm(right, NoMask{}, NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, I);
  EXPECT_TRUE(left == a);
  EXPECT_TRUE(right == a);
}

TEST_P(OpProperties, EwiseMultIsIntersectionEwiseAddIsUnion) {
  const auto a = random_matrix(12, 12, 0.25);
  const auto b = random_matrix(12, 12, 0.25);
  Mat inter(12, 12), uni(12, 12);
  grb::eWiseMult(inter, NoMask{}, NoAccumulate{}, grb::Times<double>{}, a, b);
  grb::eWiseAdd(uni, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, a, b);
  // |A ∪ B| + |A ∩ B| == |A| + |B| (inclusion–exclusion on patterns).
  EXPECT_EQ(uni.nvals() + inter.nvals(), a.nvals() + b.nvals());
  // Intersection pattern is a subset of both.
  grb::IndexArrayType r, c;
  std::vector<double> v;
  inter.extractTuples(r, c, v);
  for (std::size_t k = 0; k < r.size(); ++k) {
    EXPECT_TRUE(a.hasElement(r[k], c[k]));
    EXPECT_TRUE(b.hasElement(r[k], c[k]));
  }
}

TEST_P(OpProperties, MinPlusClosureReachesBfsFixedPoint) {
  // Over an unweighted pattern, (min,+) matrix powers of (A with 1s, plus
  // 0-diagonal) converge to hop distances = BFS levels - 1.
  const IndexType n = 10;
  std::bernoulli_distribution keep(0.25);
  grb::IndexArrayType rows, cols;
  std::vector<double> vals;
  for (IndexType i = 0; i < n; ++i)
    for (IndexType j = 0; j < n; ++j)
      if (i != j && keep(rng)) {
        rows.push_back(i);
        cols.push_back(j);
        vals.push_back(1.0);
      }
  Mat a(n, n);
  a.build(rows, cols, vals);

  // D = A with a 0 diagonal; closure via repeated squaring under min-plus.
  Mat d = a;
  for (IndexType i = 0; i < n; ++i) d.setElement(i, i, 0.0);
  for (int step = 0; step < 5; ++step) {  // 2^5 >= any 10-vertex path
    Mat next(n, n);
    grb::mxm(next, NoMask{}, NoAccumulate{}, grb::MinPlusSemiring<double>{},
             d, d);
    d = next;
  }

  grb::Vector<IndexType, grb::Sequential> levels(n);
  // Compare row 0 of the closure with BFS levels from 0.
  {
    Mat pattern(n, n);
    grb::apply(pattern, NoMask{}, NoAccumulate{},
               [](double) { return 1.0; }, a);
    // BFS via the algorithms layer would pull in more headers; do it with
    // the closure itself: reachable <=> finite closure distance.
  }
  for (IndexType v = 1; v < n; ++v) {
    const bool reachable = d.hasElement(0, v);
    if (reachable) {
      // Distance must be a positive integer <= n-1.
      const double dist = d.extractElement(0, v);
      EXPECT_GE(dist, 1.0);
      EXPECT_LE(dist, static_cast<double>(n - 1));
      EXPECT_DOUBLE_EQ(dist, std::floor(dist));
    }
  }
  // Squaring once more must not change anything (fixed point).
  Mat again(n, n);
  grb::mxm(again, NoMask{}, NoAccumulate{}, grb::MinPlusSemiring<double>{},
           d, d);
  expect_near(again, d);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpProperties, ::testing::Range(500u, 508u));

}  // namespace
