/// GPU-backend behavioural tests: device residency (steady-state primitives
/// must not touch PCIe), transfer accounting of the documented host
/// fallbacks, cost-model shape (crossover, masked-mxm pruning, transfer
/// penalty), and device-memory lifecycle through GraphBLAS objects.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/triangle_count.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"
#include "sparse/spmv_select.hpp"

namespace {

using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

gpu_sim::DeviceStats run_and_measure(const std::function<void()>& work) {
  auto& dev = gpu_sim::device();
  const auto before = dev.stats();
  work();
  return dev.stats() - before;
}

TEST(GpuResidency, MxvSteadyStateHasNoTransfers) {
  grb::Matrix<double, grb::GpuSim> a(64, 64);
  {
    auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(64, 400, 1));
    a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  }
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(64, 1.0), 0.0);
  grb::Vector<double, grb::GpuSim> w(64);

  const auto delta = run_and_measure([&] {
    grb::mxv(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
             a, u, grb::Replace);
  });
  EXPECT_EQ(delta.h2d_transfers, 0u);
  EXPECT_EQ(delta.d2h_transfers, 0u);
  EXPECT_GT(delta.kernel_launches, 0u);
}

TEST(GpuResidency, MxmSteadyStateHasNoTransfers) {
  auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(32, 128, 2));
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Matrix<double, grb::GpuSim> c(32, 32);
  const auto delta = run_and_measure([&] {
    grb::mxm(c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
             a, a, grb::Replace);
  });
  EXPECT_EQ(delta.h2d_transfers, 0u);
  EXPECT_EQ(delta.d2h_transfers, 0u);
}

TEST(GpuResidency, HostFallbackOpsAccountTransfers) {
  auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(16, 64, 3));
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Matrix<double, grb::GpuSim> k(256, 256);
  // kronecker is documented as a host fallback: it must pay D2H + H2D.
  const auto delta = run_and_measure([&] {
    grb::kronecker(k, NoMask{}, NoAccumulate{}, grb::Times<double>{}, a, a);
  });
  EXPECT_GT(delta.d2h_transfers, 0u);
  EXPECT_GT(delta.h2d_transfers, 0u);
}

TEST(GpuResidency, ExtractElementIsATransfer) {
  grb::Matrix<double, grb::GpuSim> a(4, 4);
  a.build({1}, {2}, {5.0});
  const auto delta =
      run_and_measure([&] { EXPECT_DOUBLE_EQ(a.extractElement(1, 2), 5.0); });
  EXPECT_GT(delta.d2h_transfers, 0u);
}

TEST(GpuCostShape, LargeMxvBeatsManySmallOnes) {
  // Launch overhead amortization: 1 mxv over 4096 rows must cost less
  // simulated time than 64 mxvs over 64-row matrices with the same total
  // nnz — the "batch your primitives" architectural claim.
  auto big_g = gbtl_graph::deduplicate(
      gbtl_graph::erdos_renyi(4096, 64 * 640, 4));
  auto small_g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(64, 640, 5));

  auto big = gbtl_graph::to_matrix<double, grb::GpuSim>(big_g);
  grb::Vector<double, grb::GpuSim> ub(std::vector<double>(4096, 1.0), 0.0);
  grb::Vector<double, grb::GpuSim> wb(4096);
  const auto one_big = run_and_measure([&] {
    grb::mxv(wb, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
             big, ub, grb::Replace);
  });

  auto small = gbtl_graph::to_matrix<double, grb::GpuSim>(small_g);
  grb::Vector<double, grb::GpuSim> us(std::vector<double>(64, 1.0), 0.0);
  grb::Vector<double, grb::GpuSim> ws(64);
  const auto many_small = run_and_measure([&] {
    for (int rep = 0; rep < 64; ++rep)
      grb::mxv(ws, NoMask{}, NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, small, us, grb::Replace);
  });
  EXPECT_LT(one_big.simulated_kernel_time_s,
            many_small.simulated_kernel_time_s);
}

TEST(GpuCostShape, MaskedMxmCheaperThanUnmaskedOnSparseMask) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::deduplicate(
      gbtl_graph::remove_self_loops(gbtl_graph::rmat(9, 8, 6))));
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Matrix<double, grb::GpuSim> c(a.nrows(), a.ncols());

  const auto unmasked = run_and_measure([&] {
    grb::mxm(c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
             a, a, grb::Replace);
  });
  const auto masked = run_and_measure([&] {
    grb::mxm(c, grb::structure(a), NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
  });
  EXPECT_LT(masked.simulated_kernel_time_s, unmasked.simulated_kernel_time_s);
}

TEST(GpuCostShape, TransferPenaltyDominatesSmallWork) {
  // Uploading a matrix costs more simulated time than multiplying it once:
  // the Fig. 6 claim in miniature.
  auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(256, 4096, 7));
  grb::IndexArrayType rows(g.src.begin(), g.src.end());
  grb::IndexArrayType cols(g.dst.begin(), g.dst.end());
  std::vector<double> vals(g.num_edges(), 1.0);

  auto& dev = gpu_sim::device();
  const auto s0 = dev.stats();
  grb::Matrix<double, grb::GpuSim> a(256, 256);
  a.build(rows, cols, vals);
  const auto after_build = dev.stats() - s0;

  grb::Vector<double, grb::GpuSim> u(std::vector<double>(256, 1.0), 0.0);
  grb::Vector<double, grb::GpuSim> w(256);
  const auto spmv_delta = run_and_measure([&] {
    grb::mxv(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
             a, u, grb::Replace);
  });
  EXPECT_GT(after_build.simulated_transfer_time_s,
            spmv_delta.simulated_total_time_s());
}

TEST(GpuCostShape, BfsSimulatedTimeScalesSubquadratically) {
  // Doubling the graph should not quadruple simulated BFS time (frontier
  // work is edge-proportional plus per-level overhead).
  auto time_bfs = [](unsigned scale) {
    auto g = gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
        gbtl_graph::rmat(scale, 16, 1000 + scale)));
    auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
    grb::Vector<IndexType, grb::GpuSim> levels(a.nrows());
    auto& dev = gpu_sim::device();
    const double t0 = dev.simulated_time_s();
    algorithms::bfs_level(a, 0, levels);
    return dev.simulated_time_s() - t0;
  };
  const double t10 = time_bfs(10);
  const double t11 = time_bfs(11);
  EXPECT_LT(t11, 4.0 * t10);
  EXPECT_GT(t11, t10);  // but it must grow
}

TEST(GpuMemory, ObjectsReleaseDeviceMemory) {
  auto& dev = gpu_sim::device();
  const std::size_t before = dev.stats().bytes_in_use;
  {
    grb::Matrix<double, grb::GpuSim> a(128, 128);
    a.build({0, 1, 2}, {1, 2, 3}, {1.0, 2.0, 3.0});
    grb::Vector<double, grb::GpuSim> v(1024);
    EXPECT_GT(dev.stats().bytes_in_use, before);
  }
  EXPECT_EQ(dev.stats().bytes_in_use, before);
}

TEST(GpuMemory, CopySemanticsAreDeep) {
  grb::Matrix<double, grb::GpuSim> a(4, 4);
  a.build({0}, {0}, {1.0});
  grb::Matrix<double, grb::GpuSim> b = a;
  b.setElement(0, 0, 99.0);
  EXPECT_DOUBLE_EQ(a.extractElement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(b.extractElement(0, 0), 99.0);
}

TEST(GpuDeterminism, SimulatedTimeIsReproducible) {
  auto run_once = [] {
    auto g = gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(128, 1024, 9));
    auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
    grb::Vector<IndexType, grb::GpuSim> levels(a.nrows());
    auto& dev = gpu_sim::device();
    const double t0 = dev.simulated_time_s();
    algorithms::bfs_level(a, 0, levels);
    return dev.simulated_time_s() - t0;
  };
  // The clock is cumulative, so the two deltas differ by at most the
  // rounding of (big + delta) - big: picoseconds on a microsecond quantity.
  const double first = run_once();
  const double second = run_once();
  EXPECT_NEAR(first, second, 1e-12);
}

TEST(GpuVectorCache, NvalsRecountsOncePerDirtyEpoch) {
  grb::Vector<double, grb::GpuSim> v(256);
  v.build({3, 17, 99}, {1.0, 2.0, 3.0});

  // First nvals() after a structural write runs the count kernel; repeats
  // within the same epoch are served from the cache.
  auto d = run_and_measure([&] {
    EXPECT_EQ(v.nvals(), 3u);
    EXPECT_EQ(v.nvals(), 3u);
    EXPECT_EQ(v.nvals(), 3u);
  });
  EXPECT_LE(d.nvals_recounts, 1u);

  // A write opens a new dirty epoch: exactly one recount, however many
  // queries follow.
  v.setElement(5, 9.0);
  d = run_and_measure([&] {
    EXPECT_EQ(v.nvals(), 4u);
    EXPECT_EQ(v.nvals(), 4u);
  });
  EXPECT_EQ(d.nvals_recounts, 1u);

  // Value-preserving queries must not invalidate: still zero recounts.
  d = run_and_measure([&] { EXPECT_EQ(v.nvals(), 4u); });
  EXPECT_EQ(d.nvals_recounts, 0u);

  // removeElement dirties again.
  v.removeElement(17);
  d = run_and_measure([&] {
    EXPECT_EQ(v.nvals(), 3u);
    EXPECT_EQ(v.nvals(), 3u);
  });
  EXPECT_EQ(d.nvals_recounts, 1u);
}

TEST(GpuTraversal, DirectionCountersTrackForcedModes) {
  auto g = gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
      gbtl_graph::rmat(8, 8, 77)));
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<IndexType, grb::GpuSim> levels(a.nrows());
  using gpu_sim::TraversalDirection;
  constexpr auto kPush = static_cast<std::size_t>(TraversalDirection::kPush);
  constexpr auto kPull = static_cast<std::size_t>(TraversalDirection::kPull);

  {
    sparse::DirectionModeGuard guard(sparse::DirectionMode::ForcePush);
    const auto d = run_and_measure([&] { algorithms::bfs_level(a, 0, levels); });
    EXPECT_GT(d.direction_selections[kPush], 0u);
    EXPECT_EQ(d.direction_selections[kPull], 0u);
    EXPECT_EQ(d.pull_early_exit_rows, 0u);
    // Push levels compact the frontier into its sparse index list.
    EXPECT_GT(d.frontier_compactions, 0u);
  }
  {
    sparse::DirectionModeGuard guard(sparse::DirectionMode::ForcePull);
    const auto d = run_and_measure([&] { algorithms::bfs_level(a, 0, levels); });
    EXPECT_GT(d.direction_selections[kPull], 0u);
    // The boolean or-and semiring saturates at true, so on a connected
    // R-MAT at least one pulled row must have early-exited.
    EXPECT_GT(d.pull_early_exit_rows, 0u);
  }
}

TEST(GpuBuild, DuplicatesCombineWithDupOp) {
  grb::Matrix<double, grb::GpuSim> a(3, 3);
  a.build({1, 1, 1}, {2, 2, 2}, {1.0, 2.0, 3.0}, grb::Plus<double>{});
  EXPECT_EQ(a.nvals(), 1u);
  EXPECT_DOUBLE_EQ(a.extractElement(1, 2), 6.0);

  grb::Matrix<double, grb::GpuSim> b(3, 3);
  b.build({1, 1}, {2, 2}, {1.0, 7.0}, grb::Max<double>{});
  EXPECT_DOUBLE_EQ(b.extractElement(1, 2), 7.0);
}

TEST(GpuBuild, OutOfBoundsTupleThrows) {
  grb::Matrix<double, grb::GpuSim> a(3, 3);
  EXPECT_THROW(a.build({5}, {0}, {1.0}), grb::IndexOutOfBoundsException);
  grb::Vector<double, grb::GpuSim> v(3);
  EXPECT_THROW(v.build({9}, {1.0}), grb::IndexOutOfBoundsException);
}

}  // namespace
