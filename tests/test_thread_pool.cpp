/// ThreadPool substrate tests: inline mode, multi-worker correctness under
/// contention, chunking coverage, and exception propagation — plus the
/// multi-worker device context executing real kernels.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"
#include "gpu_sim/thread_pool.hpp"

namespace {

TEST(ThreadPool, InlineModeRunsEverythingOnCaller) {
  gpu_sim::ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ZeroIterationsIsANoop) {
  gpu_sim::ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, MultiWorkerCoversEveryIndexExactlyOnce) {
  gpu_sim::ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  const std::size_t n = 100003;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  gpu_sim::ThreadPool pool(3);
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(64, [&](std::size_t i) {
      total.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
    });
  EXPECT_EQ(total.load(), 50LL * (63 * 64 / 2));
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  gpu_sim::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::size_t i) {
                                   if (i == 777)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, InlineModeExceptionAlsoPropagates) {
  gpu_sim::ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(5,
                        [](std::size_t i) {
                          if (i == 3) throw std::logic_error("inline");
                        }),
      std::logic_error);
}

TEST(ThreadPool, MultiWorkerContextRunsPrimitivesCorrectly) {
  // A context whose kernels genuinely run on 4 threads must still produce
  // exact results for the block-race-free primitive library.
  gpu_sim::Context ctx{gpu_sim::DeviceProperties{}, 4};
  const std::size_t n = 50000;
  gpu_sim::device_vector<std::int64_t> v(n, ctx);
  gpu_sim::sequence(v, std::int64_t{1});
  EXPECT_EQ(gpu_sim::reduce_sum(v),
            static_cast<std::int64_t>(n) * (n + 1) / 2);

  gpu_sim::device_vector<std::int64_t> out(ctx);
  gpu_sim::transform(v, out, [](std::int64_t x) { return 2 * x; });
  auto h = out.to_host();
  EXPECT_EQ(h[0], 2);
  EXPECT_EQ(h[n - 1], 2 * static_cast<std::int64_t>(n));
}

}  // namespace
