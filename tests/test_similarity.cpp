/// Similarity / link-prediction tests (common neighbours, Jaccard, top-k,
/// bipartiteness), typed across both backends, with a brute-force oracle.

#include <gtest/gtest.h>

#include <set>

#include "algorithms/similarity.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace {

using grb::IndexType;

template <typename Tag>
struct Similarity : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(Similarity, Backends);

/// Path 0-1-2-3 plus edge 1-3: candidates (0,2) share {1}; (0,3)? no wedge
/// via... 0's neighbours {1}; 3's {1,2}: common {1}.
template <typename Tag>
grb::Matrix<double, Tag> small_graph() {
  gbtl_graph::EdgeList g;
  g.num_vertices = 4;
  g.src = {0, 1, 1, 2, 2, 3, 1, 3};
  g.dst = {1, 0, 2, 1, 3, 2, 3, 1};
  return gbtl_graph::to_matrix<double, Tag>(g);
}

TYPED_TEST(Similarity, CommonNeighborsCountsWedges) {
  auto a = small_graph<TypeParam>();
  auto c = algorithms::common_neighbors(a, /*exclude_edges=*/true);
  // (0,2): common {1}; (0,3): common {1}. Both non-adjacent.
  EXPECT_DOUBLE_EQ(c.extractElement(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 3), 1.0);
  // Adjacent pairs excluded:
  EXPECT_FALSE(c.hasElement(1, 2));
  EXPECT_FALSE(c.hasElement(2, 3));
  // Diagonal excluded:
  EXPECT_FALSE(c.hasElement(1, 1));
}

TYPED_TEST(Similarity, CommonNeighborsIncludeEdgesMode) {
  auto a = small_graph<TypeParam>();
  auto c = algorithms::common_neighbors(a, /*exclude_edges=*/false);
  // (1,2) adjacent but also share {3}: present with count 1.
  EXPECT_DOUBLE_EQ(c.extractElement(1, 2), 1.0);
  // (2,3) share {1}.
  EXPECT_DOUBLE_EQ(c.extractElement(2, 3), 1.0);
}

TYPED_TEST(Similarity, JaccardValuesAreExact) {
  auto a = small_graph<TypeParam>();
  auto j = algorithms::jaccard_similarity(a);
  // (0,2): N(0)={1}, N(2)={1,3}: J = 1 / 2.
  EXPECT_DOUBLE_EQ(j.extractElement(0, 2), 0.5);
  // (0,3): N(0)={1}, N(3)={1,2}: J = 1 / 2.
  EXPECT_DOUBLE_EQ(j.extractElement(0, 3), 0.5);
}

TYPED_TEST(Similarity, JaccardIsSymmetricAndBounded) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
      gbtl_graph::erdos_renyi(30, 120, 23)));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  auto j = algorithms::jaccard_similarity(a);
  grb::IndexArrayType rows, cols;
  std::vector<double> vals;
  j.extractTuples(rows, cols, vals);
  for (IndexType e = 0; e < rows.size(); ++e) {
    EXPECT_GE(vals[e], 0.0);
    EXPECT_LE(vals[e], 1.0);
    EXPECT_DOUBLE_EQ(j.extractElement(cols[e], rows[e]), vals[e]);
  }
}

TYPED_TEST(Similarity, JaccardMatchesBruteForce) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
      gbtl_graph::erdos_renyi(20, 70, 31)));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  auto j = algorithms::jaccard_similarity(a);

  std::vector<std::set<IndexType>> nbr(20);
  for (gbtl_graph::Index e = 0; e < g.num_edges(); ++e)
    nbr[g.src[e]].insert(g.dst[e]);
  for (IndexType u = 0; u < 20; ++u) {
    for (IndexType v = 0; v < 20; ++v) {
      if (u == v || nbr[u].count(v)) continue;
      std::size_t common = 0;
      for (IndexType x : nbr[u]) common += nbr[v].count(x);
      if (common == 0) {
        EXPECT_FALSE(j.hasElement(u, v)) << u << "," << v;
        continue;
      }
      const double uni = nbr[u].size() + nbr[v].size() - double(common);
      ASSERT_TRUE(j.hasElement(u, v)) << u << "," << v;
      EXPECT_NEAR(j.extractElement(u, v), common / uni, 1e-12)
          << u << "," << v;
    }
  }
}

TYPED_TEST(Similarity, TopLinkPredictionsSortedAndDeduplicated) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
      gbtl_graph::erdos_renyi(25, 100, 41)));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  auto top = algorithms::top_link_predictions(a, 8);
  EXPECT_LE(top.size(), 8u);
  for (std::size_t k = 0; k < top.size(); ++k) {
    EXPECT_LT(std::get<0>(top[k]), std::get<1>(top[k]));  // i < j once
    if (k > 0) {
      EXPECT_GE(std::get<2>(top[k - 1]), std::get<2>(top[k]));  // sorted
    }
    EXPECT_FALSE(a.hasElement(std::get<0>(top[k]), std::get<1>(top[k])));
  }
}

TYPED_TEST(Similarity, BipartitenessDetection) {
  // Even cycle: bipartite. Odd cycle: not. Even cycle + chord: not.
  auto even = gbtl_graph::to_matrix<double, TypeParam>(
      gbtl_graph::symmetrize(gbtl_graph::cycle(8)));
  EXPECT_TRUE(algorithms::is_bipartite(even));

  auto odd = gbtl_graph::to_matrix<double, TypeParam>(
      gbtl_graph::symmetrize(gbtl_graph::cycle(7)));
  EXPECT_FALSE(algorithms::is_bipartite(odd));

  auto g = gbtl_graph::symmetrize(gbtl_graph::cycle(8));
  g.src.insert(g.src.end(), {0, 2});
  g.dst.insert(g.dst.end(), {2, 0});
  auto chord = gbtl_graph::to_matrix<double, TypeParam>(g);
  EXPECT_FALSE(algorithms::is_bipartite(chord));

  // Disconnected: two even cycles — still bipartite.
  gbtl_graph::EdgeList two;
  two.num_vertices = 8;
  two.src = {0, 1, 1, 2, 2, 3, 3, 0, 4, 5, 5, 6, 6, 7, 7, 4};
  two.dst = {1, 0, 2, 1, 3, 2, 0, 3, 5, 4, 6, 5, 7, 6, 4, 7};
  auto disc = gbtl_graph::to_matrix<double, TypeParam>(two);
  EXPECT_TRUE(algorithms::is_bipartite(disc));
}

}  // namespace
