/// Serving-layer unit tests: ScopedDevice thread-local rebinding, the
/// ExecutionPolicy cancellation contract (including the documented
/// partial-output state), GraphStore snapshot semantics, the per-worker
/// DeviceGraphCache, admission-queue load shedding, the latency histogram,
/// and executor end-to-end behaviour on every status path — plus the
/// per-query backend-selection seam: crossover-boundary placement, forced
/// modes, the ran_cpupar/ran_gpusim counters, and the per-worker
/// HostGraphCache that backs the CpuPar path.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/error.hpp"
#include "graph/generators.hpp"
#include "service/admission.hpp"
#include "service/dispatch.hpp"
#include "service/executor.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"
#include "service/stats.hpp"

namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

// --- ScopedDevice ----------------------------------------------------------

TEST(ScopedDevice, RebindsAndRestores) {
  gpu_sim::Context& original = gpu_sim::device();
  gpu_sim::Context mine;
  {
    gpu_sim::ScopedDevice bind(mine);
    EXPECT_EQ(&gpu_sim::device(), &mine);
  }
  EXPECT_EQ(&gpu_sim::device(), &original);
}

TEST(ScopedDevice, GuardsNest) {
  gpu_sim::Context outer, inner;
  gpu_sim::ScopedDevice bind_outer(outer);
  EXPECT_EQ(&gpu_sim::device(), &outer);
  {
    gpu_sim::ScopedDevice bind_inner(inner);
    EXPECT_EQ(&gpu_sim::device(), &inner);
  }
  EXPECT_EQ(&gpu_sim::device(), &outer);
}

TEST(ScopedDevice, BindingIsThreadLocal) {
  gpu_sim::Context mine;
  gpu_sim::ScopedDevice bind(mine);
  gpu_sim::Context* seen_by_other_thread = nullptr;
  std::thread peer(
      [&] { seen_by_other_thread = &gpu_sim::device(); });
  peer.join();
  // The peer never installed a guard, so it sees the shared default device,
  // not this thread's override.
  EXPECT_NE(seen_by_other_thread, &mine);
  EXPECT_EQ(&gpu_sim::device(), &mine);
}

TEST(ScopedDevice, BackendObjectsLandInTheBoundContext) {
  gpu_sim::Context mine;
  const auto before = mine.stats();
  {
    gpu_sim::ScopedDevice bind(mine);
    grb::Vector<double, grb::GpuSim> v(1024);
    v.setElement(7, 1.0);
  }
  const auto after = mine.stats();
  EXPECT_GT(after.total_bytes_allocated, before.total_bytes_allocated);
}

// --- ExecutionPolicy -------------------------------------------------------

TEST(ExecutionPolicy, DefaultIsUnlimited) {
  grb::ExecutionPolicy p;
  EXPECT_FALSE(p.has_deadline());
  EXPECT_FALSE(p.expired());
  EXPECT_FALSE(p.cancelled());
  for (int i = 0; i < 1000; ++i) EXPECT_NO_THROW(p.checkpoint("test"));
}

TEST(ExecutionPolicy, PastDeadlineTripsCheckpoint) {
  const auto p = grb::ExecutionPolicy::with_deadline(Clock::now() - 1ms);
  EXPECT_TRUE(p.expired());
  EXPECT_THROW(p.checkpoint("test"), grb::CancelledException);
}

TEST(ExecutionPolicy, CancelTokenTripsCheckpoint) {
  grb::CancelToken token = grb::make_cancel_token();
  grb::ExecutionPolicy p;
  p.set_cancel_token(token);
  EXPECT_NO_THROW(p.checkpoint("test"));
  token->store(true);
  EXPECT_TRUE(p.cancelled());
  EXPECT_THROW(p.checkpoint("test"), grb::CancelledException);
}

TEST(ExecutionPolicy, IterationLimitPassesExactlyNCheckpoints) {
  const auto p = grb::ExecutionPolicy::with_iteration_limit(3);
  EXPECT_NO_THROW(p.checkpoint("test"));
  EXPECT_NO_THROW(p.checkpoint("test"));
  EXPECT_NO_THROW(p.checkpoint("test"));
  EXPECT_THROW(p.checkpoint("test"), grb::CancelledException);
}

TEST(ExecutionPolicy, CancelledExceptionNamesTheAlgorithm) {
  const auto p = grb::ExecutionPolicy::with_deadline(Clock::now() - 1ms);
  try {
    p.checkpoint("bfs_level");
    FAIL() << "checkpoint should have thrown";
  } catch (const grb::CancelledException& e) {
    EXPECT_NE(std::string(e.what()).find("bfs_level"), std::string::npos);
  }
}

/// The documented contract: an already-expired policy cancels before
/// iteration 1, so the output holds nothing at all.
TEST(ExecutionPolicy, ExpiredDeadlineCancelsBeforeFirstIteration) {
  const auto graph = gbtl_graph::to_matrix<double, grb::Sequential>(
      gbtl_graph::path(64));
  grb::Vector<grb::IndexType, grb::Sequential> levels(64);
  const auto p = grb::ExecutionPolicy::with_deadline(Clock::now() - 1ms);
  EXPECT_THROW(algorithms::bfs_level(graph, 0, levels, p),
               grb::CancelledException);
  EXPECT_EQ(levels.nvals(), 0u);
}

/// The other half of the contract: cancellation at the k+1'th boundary
/// leaves exactly the k completed iterations' results — bfs on a path
/// stamps one vertex per level, so a 3-iteration budget leaves levels
/// {0:1, 1:2, 2:3} and nothing else.
TEST(ExecutionPolicy, MidRunCancellationLeavesCompletedIterations) {
  const auto graph = gbtl_graph::to_matrix<double, grb::Sequential>(
      gbtl_graph::path(64));
  grb::Vector<grb::IndexType, grb::Sequential> levels(64);
  const auto p = grb::ExecutionPolicy::with_iteration_limit(3);
  EXPECT_THROW(algorithms::bfs_level(graph, 0, levels, p),
               grb::CancelledException);
  ASSERT_EQ(levels.nvals(), 3u);
  EXPECT_EQ(levels.extractElement(0), 1u);
  EXPECT_EQ(levels.extractElement(1), 2u);
  EXPECT_EQ(levels.extractElement(2), 3u);
}

// --- GraphStore ------------------------------------------------------------

TEST(GraphStore, AddThenGetRoundTrips) {
  service::GraphStore store;
  EXPECT_EQ(store.get("g"), nullptr);
  store.add("g", gbtl_graph::path(10));
  const auto snap = store.get("g");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->name, "g");
  EXPECT_EQ(snap->version, 1u);
  EXPECT_EQ(snap->num_vertices(), 10u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(GraphStore, ReplaceBumpsVersionAndPreservesOldSnapshot) {
  service::GraphStore store;
  store.add("g", gbtl_graph::path(10));
  const auto old_snap = store.get("g");
  store.add("g", gbtl_graph::cycle(20));
  const auto new_snap = store.get("g");

  EXPECT_EQ(new_snap->version, 2u);
  EXPECT_EQ(new_snap->num_vertices(), 20u);
  // The snapshot handed out before the replace is untouched — in-flight
  // queries keep reading the graph they started with.
  EXPECT_EQ(old_snap->version, 1u);
  EXPECT_EQ(old_snap->num_vertices(), 10u);
}

TEST(GraphStore, NamesListsEveryGraph) {
  service::GraphStore store;
  store.add("a", gbtl_graph::path(4));
  store.add("b", gbtl_graph::cycle(4));
  auto names = store.names();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

// --- DeviceGraphCache ------------------------------------------------------

TEST(DeviceGraphCache, UploadOnceThenHit) {
  service::GraphStore store;
  const auto snap = store.add("g", gbtl_graph::path(64));
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  service::DeviceGraphCache cache(ctx, 1 << 20);

  const auto a = cache.get_or_upload(snap);
  const auto b = cache.get_or_upload(snap);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(a->nrows(), 64u);
}

TEST(DeviceGraphCache, VersionBumpMisses) {
  service::GraphStore store;
  const auto v1 = store.add("g", gbtl_graph::path(64));
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  service::DeviceGraphCache cache(ctx, 1 << 20);

  cache.get_or_upload(v1);
  const auto v2 = store.add("g", gbtl_graph::path(65));
  const auto m = cache.get_or_upload(v2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(m->nrows(), 65u);
}

TEST(DeviceGraphCache, EvictsLeastRecentlyUsed) {
  service::GraphStore store;
  const auto a = store.add("a", gbtl_graph::path(64));
  const auto b = store.add("b", gbtl_graph::path(64));
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  // Budget fits one graph (estimate ~3 KiB each — CSR plus the CSC
  // transpose view the traversal engine may build), not two.
  service::DeviceGraphCache cache(ctx, 4096);

  cache.get_or_upload(a);
  cache.get_or_upload(b);  // evicts a
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.entries(), 1u);
  cache.get_or_upload(a);  // misses again
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(DeviceGraphCache, TouchRefreshesRecency) {
  service::GraphStore store;
  const auto a = store.add("a", gbtl_graph::path(64));
  const auto b = store.add("b", gbtl_graph::path(64));
  const auto c = store.add("c", gbtl_graph::path(64));
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  // Budget fits two graphs (~3 KiB CSR+CSC estimate each), not three.
  service::DeviceGraphCache cache(ctx, 8192);

  cache.get_or_upload(a);
  cache.get_or_upload(b);
  cache.get_or_upload(a);  // a becomes MRU
  cache.get_or_upload(c);  // evicts b, not a
  EXPECT_EQ(cache.get_or_upload(a).get(), cache.get_or_upload(a).get());
  EXPECT_EQ(cache.stats().evictions, 1u);
  const auto hits_before = cache.stats().hits;
  cache.get_or_upload(b);  // b was the one evicted -> miss
  EXPECT_EQ(cache.stats().hits, hits_before);
}

TEST(DeviceGraphCache, EvictedMatrixStaysUsableWhileHeld) {
  service::GraphStore store;
  const auto a = store.add("a", gbtl_graph::path(64));
  const auto b = store.add("b", gbtl_graph::path(64));
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  service::DeviceGraphCache cache(ctx, 4096);

  const auto held = cache.get_or_upload(a);
  cache.get_or_upload(b);  // evicts a from the cache...
  // ...but the handle we kept is a live, fully functional device matrix.
  grb::Vector<grb::IndexType, grb::GpuSim> levels(held->nrows());
  algorithms::bfs_level(*held, 0, levels);
  EXPECT_EQ(levels.nvals(), 64u);
}

TEST(DeviceGraphCache, ZeroBudgetNeverRetains) {
  service::GraphStore store;
  const auto snap = store.add("g", gbtl_graph::path(16));
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  service::DeviceGraphCache cache(ctx, 0);
  cache.get_or_upload(snap);
  cache.get_or_upload(snap);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DeviceGraphCache, RefusesAForeignThreadBinding) {
  service::GraphStore store;
  const auto snap = store.add("g", gbtl_graph::path(16));
  gpu_sim::Context ctx;
  service::DeviceGraphCache cache(ctx, 1 << 20);
  // No ScopedDevice for ctx on this thread: using the cache would upload
  // into the wrong arena, so it must refuse loudly.
  EXPECT_THROW(cache.get_or_upload(snap), gpu_sim::DeviceError);
}

// --- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, FifoOrder) {
  service::BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(BoundedQueue, RefusesWhenFull) {
  service::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  service::BoundedQueue<int> q(8);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));  // no admission after close
  EXPECT_EQ(q.pop(), 1);        // but queued items still drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  service::BoundedQueue<int> q(8);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(10ms);  // let it block
  q.close();
  consumer.join();
}

TEST(BoundedQueue, FailedPushDoesNotConsumeTheItem) {
  service::BoundedQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(1)));
  auto survivor = std::make_unique<int>(2);
  EXPECT_FALSE(q.try_push(std::move(survivor)));
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(*survivor, 2);
}

// --- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, EmptyQuantileIsZero) {
  service::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, QuantilesOfUniformSamples) {
  service::LatencyHistogram h;
  for (int us = 1; us <= 1000; ++us)
    h.record(std::chrono::microseconds(us));
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed: allow the documented per-bucket relative error.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * 0.20);
  EXPECT_NEAR(h.quantile(0.95), 950.0, 950.0 * 0.20);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.20);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.0), h.quantile(0.5));
}

TEST(LatencyHistogram, MergeIsAdditive) {
  service::LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(std::chrono::microseconds(10));
  for (int i = 0; i < 100; ++i) b.record(std::chrono::microseconds(1000));
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_LT(a.quantile(0.25), 50.0);
  EXPECT_GT(a.quantile(0.75), 500.0);
}

// --- QueryExecutor ---------------------------------------------------------

std::shared_ptr<service::GraphStore> make_store() {
  auto store = std::make_shared<service::GraphStore>();
  store->add("path", gbtl_graph::path(128));
  store->add("rmat", gbtl_graph::rmat(6, 8, /*seed=*/42));
  return store;
}

service::ExecutorOptions small_options(std::size_t workers = 2) {
  service::ExecutorOptions o;
  o.workers = workers;
  o.queue_capacity = 64;
  return o;
}

TEST(QueryExecutor, BfsResultMatchesSerialOracle) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options());
  service::QueryRequest req;
  req.kind = service::QueryKind::kBfs;
  req.graph = "rmat";
  req.source = 3;

  const auto got = exec.submit(req).get();
  const auto want = service::QueryExecutor::execute_serial(*store, req);
  ASSERT_EQ(got.status, service::QueryStatus::kOk);
  EXPECT_EQ(got.indices, want.indices);
  EXPECT_EQ(got.ivals, want.ivals);
  EXPECT_GE(got.latency.count(), 0);
  EXPECT_LT(got.worker, 2u);
}

TEST(QueryExecutor, PageRankBitExactVsSerial) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options());
  service::QueryRequest req;
  req.kind = service::QueryKind::kPageRank;
  req.graph = "rmat";
  req.max_iterations = 50;

  const auto got = exec.submit(req).get();
  const auto want = service::QueryExecutor::execute_serial(*store, req);
  ASSERT_EQ(got.status, service::QueryStatus::kOk);
  ASSERT_EQ(got.indices, want.indices);
  ASSERT_EQ(got.dvals.size(), want.dvals.size());
  // Bit-exact, not approximately-equal: memcmp the doubles.
  EXPECT_EQ(std::memcmp(got.dvals.data(), want.dvals.data(),
                        got.dvals.size() * sizeof(double)),
            0);
}

TEST(QueryExecutor, UnknownGraphFails) {
  service::QueryExecutor exec(make_store(), small_options());
  service::QueryRequest req;
  req.graph = "no-such-graph";
  const auto res = exec.submit(req).get();
  EXPECT_EQ(res.status, service::QueryStatus::kFailed);
  EXPECT_NE(res.error.find("no-such-graph"), std::string::npos);
}

TEST(QueryExecutor, ExpiredDeadlineIsCancelledNotRun) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options(1));
  service::QueryRequest req;
  req.kind = service::QueryKind::kBfs;
  req.graph = "path";
  req.timeout = 0ms;  // already past its deadline at admission

  const auto res = exec.submit(req).get();
  EXPECT_EQ(res.status, service::QueryStatus::kCancelled);
  const auto stats = exec.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(QueryExecutor, CancelTokenCancelsAQueuedQuery) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options(1));
  service::QueryRequest req;
  req.kind = service::QueryKind::kBfs;
  req.graph = "path";
  req.cancel = grb::make_cancel_token();
  req.cancel->store(true);  // caller gave up before the worker got to it

  const auto res = exec.submit(req).get();
  EXPECT_EQ(res.status, service::QueryStatus::kCancelled);
}

TEST(QueryExecutor, OverflowSheds) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;
  service::QueryExecutor exec(store, opts);

  // Occupy the single worker with a cancellable long-runner (tol=0 never
  // converges, so only the iteration count or our token stops it).
  service::QueryRequest blocker;
  blocker.kind = service::QueryKind::kPageRank;
  blocker.graph = "rmat";
  blocker.tol = 0.0;
  blocker.max_iterations = 1000000;
  blocker.cancel = grb::make_cancel_token();
  auto blocker_future = exec.submit(blocker);

  // Saturate admission: with capacity 1 and the worker busy, pushing many
  // more must shed at least one (the worker can drain at most a few).
  service::QueryRequest quick;
  quick.kind = service::QueryKind::kBfs;
  quick.graph = "path";
  std::vector<std::future<service::QueryResult>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(exec.submit(quick));

  blocker.cancel->store(true);  // release the worker
  std::uint64_t shed = 0;
  for (auto& f : futures)
    if (f.get().status == service::QueryStatus::kShed) ++shed;
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(exec.stats().shed, shed);
  blocker_future.get();  // cancelled or completed; just must resolve
}

TEST(QueryExecutor, SubmitAfterShutdownSheds) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options());
  exec.shutdown();
  service::QueryRequest req;
  req.graph = "path";
  const auto res = exec.submit(req).get();
  EXPECT_EQ(res.status, service::QueryStatus::kShed);
}

TEST(QueryExecutor, StatsPartitionResolvedQueries) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options());

  std::vector<std::future<service::QueryResult>> futures;
  service::QueryRequest ok;
  ok.kind = service::QueryKind::kBfs;
  ok.graph = "rmat";
  for (int i = 0; i < 4; ++i) futures.push_back(exec.submit(ok));
  service::QueryRequest bad;
  bad.graph = "missing";
  futures.push_back(exec.submit(bad));
  service::QueryRequest late;
  late.graph = "rmat";
  late.timeout = 0ms;
  futures.push_back(exec.submit(late));

  for (auto& f : futures) f.get();
  const auto stats = exec.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(stats.latency.count(), 6u);  // every non-shed query is timed
}

TEST(QueryExecutor, ShutdownWithCancelPendingResolvesEverything) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 32;
  auto exec = std::make_unique<service::QueryExecutor>(store, opts);

  service::QueryRequest req;
  req.kind = service::QueryKind::kPageRank;
  req.graph = "rmat";
  req.max_iterations = 30;
  std::vector<std::future<service::QueryResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(exec->submit(req));
  exec->shutdown(/*cancel_pending=*/true);

  std::uint64_t resolved = 0;
  for (auto& f : futures) {
    const auto res = f.get();  // must not hang or throw broken_promise
    EXPECT_TRUE(res.status == service::QueryStatus::kOk ||
                res.status == service::QueryStatus::kCancelled);
    ++resolved;
  }
  EXPECT_EQ(resolved, 8u);
  const auto stats = exec->stats();
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

// --- Backend selection -----------------------------------------------------

TEST(QueryExecutor, AutoModePicksBackendAtTheCrossoverBoundary) {
  auto store = std::make_shared<service::GraphStore>();
  const auto small = store->add("small", gbtl_graph::path(64));
  const auto big = store->add("big", gbtl_graph::rmat(6, 8, /*seed=*/42));
  ASSERT_LT(small->num_edges(), big->num_edges());

  service::QueryRequest req;
  req.kind = service::QueryKind::kBfs;

  {
    // Boundary exactly at the big graph's nnz: strictly-below runs CpuPar,
    // at-or-above runs GpuSim.
    service::ExecutorOptions opts = small_options(1);
    opts.backend_mode = service::BackendMode::kAuto;
    opts.crossover_nnz = big->num_edges();
    service::QueryExecutor exec(store, opts);

    req.graph = "small";
    const auto on_small = exec.submit(req).get();
    ASSERT_EQ(on_small.status, service::QueryStatus::kOk);
    EXPECT_EQ(on_small.backend, "cpupar");

    req.graph = "big";
    const auto on_big = exec.submit(req).get();
    ASSERT_EQ(on_big.status, service::QueryStatus::kOk);
    EXPECT_EQ(on_big.backend, "gpusim");

    const auto stats = exec.stats();
    EXPECT_EQ(stats.ran_cpupar, 1u);
    EXPECT_EQ(stats.ran_gpusim, 1u);
  }
  {
    // One past the boundary: the big graph now sits strictly below the
    // crossover and lands on CpuPar too.
    service::ExecutorOptions opts = small_options(1);
    opts.backend_mode = service::BackendMode::kAuto;
    opts.crossover_nnz = big->num_edges() + 1;
    service::QueryExecutor exec(store, opts);
    req.graph = "big";
    const auto on_big = exec.submit(req).get();
    ASSERT_EQ(on_big.status, service::QueryStatus::kOk);
    EXPECT_EQ(on_big.backend, "cpupar");
    EXPECT_EQ(exec.stats().ran_cpupar, 1u);
    EXPECT_EQ(exec.stats().ran_gpusim, 0u);
  }
}

TEST(QueryExecutor, ForceModesOverrideGraphSize) {
  auto store = make_store();
  service::QueryRequest req;
  req.kind = service::QueryKind::kPageRank;
  req.graph = "rmat";
  req.max_iterations = 20;
  const auto want = service::QueryExecutor::execute_serial(*store, req);
  EXPECT_EQ(want.backend, "sequential");

  for (const auto mode : {service::BackendMode::kForceCpuPar,
                          service::BackendMode::kForceGpuSim}) {
    service::ExecutorOptions opts = small_options(1);
    opts.backend_mode = mode;
    service::QueryExecutor exec(store, opts);
    const auto got = exec.submit(req).get();
    ASSERT_EQ(got.status, service::QueryStatus::kOk);
    EXPECT_EQ(got.backend, mode == service::BackendMode::kForceCpuPar
                               ? "cpupar"
                               : "gpusim");
    // Placement, not math: both forced backends reproduce the serial
    // oracle's bytes.
    ASSERT_EQ(got.indices, want.indices);
    ASSERT_EQ(got.dvals.size(), want.dvals.size());
    EXPECT_EQ(std::memcmp(got.dvals.data(), want.dvals.data(),
                          got.dvals.size() * sizeof(double)),
              0);
    const auto stats = exec.stats();
    EXPECT_EQ(stats.ran_cpupar + stats.ran_gpusim, 1u);
  }
}

TEST(QueryExecutor, QueriesThatNeverRanCarryNoBackend) {
  auto store = make_store();
  service::QueryExecutor exec(store, small_options(1));
  service::QueryRequest req;
  req.kind = service::QueryKind::kBfs;
  req.graph = "path";
  req.timeout = 0ms;  // cancelled while queued -> no backend ever touched
  const auto res = exec.submit(req).get();
  ASSERT_EQ(res.status, service::QueryStatus::kCancelled);
  EXPECT_TRUE(res.backend.empty());
  const auto stats = exec.stats();
  EXPECT_EQ(stats.ran_cpupar, 0u);
  EXPECT_EQ(stats.ran_gpusim, 0u);
}

// --- HostGraphCache --------------------------------------------------------

TEST(HostGraphCache, BuildOnceThenHitAndVersionBumpMisses) {
  service::GraphStore store;
  const auto v1 = store.add("g", gbtl_graph::path(64));
  service::HostGraphCache cache;
  const auto a = cache.get_or_build(v1);
  const auto b = cache.get_or_build(v1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(a->nrows(), 64u);

  const auto v2 = store.add("g", gbtl_graph::path(65));
  const auto c = cache.get_or_build(v2);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(c->nrows(), 65u);
  EXPECT_EQ(cache.entries(), 1u);  // latest version only
  // The handle built from the replaced snapshot stays fully usable.
  grb::Vector<grb::IndexType, grb::CpuPar> levels(a->nrows());
  algorithms::bfs_level(*a, 0, levels);
  EXPECT_EQ(levels.nvals(), 64u);
}

TEST(QueryExecutor, TriangleCountMatchesSerial) {
  auto store = std::make_shared<service::GraphStore>();
  // Triangle counting wants symmetric, loop-free input.
  store->add("sym", gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                        gbtl_graph::rmat(6, 4, /*seed=*/7))));
  service::QueryExecutor exec(store, small_options());
  service::QueryRequest req;
  req.kind = service::QueryKind::kTriangleCount;
  req.graph = "sym";
  const auto got = exec.submit(req).get();
  const auto want = service::QueryExecutor::execute_serial(*store, req);
  ASSERT_EQ(got.status, service::QueryStatus::kOk);
  EXPECT_EQ(got.scalar, want.scalar);
}

}  // namespace
