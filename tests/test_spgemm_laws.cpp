/// Algebraic-law property tests for SpGEMM: identities every correct mxm
/// must satisfy regardless of strategy — (A·B)ᵀ = Bᵀ·Aᵀ (the arithmetic
/// semiring's multiply commutes, so values match too, not just patterns),
/// A·I = A, annihilator-row propagation (an empty A row yields an empty C
/// row), and empty-matrix absorption. Each law runs on the sequential
/// backend and on the GPU backend under every SpGEMM strategy (forced ESC,
/// forced hash, Auto), so a strategy that breaks an identity cannot hide
/// behind the differential sweep's random shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "gbtl/gbtl.hpp"
#include "sparse/spgemm_select.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;

using Tuples = std::vector<std::tuple<IndexType, IndexType, double>>;

template <typename M>
Tuples tuples_of(const M& m) {
  IndexArrayType r, c;
  std::vector<double> v;
  m.extractTuples(r, c, v);
  Tuples t;
  t.reserve(v.size());
  for (std::size_t p = 0; p < v.size(); ++p) t.emplace_back(r[p], c[p], v[p]);
  std::sort(t.begin(), t.end());
  return t;
}

Tuples transposed(Tuples t) {
  for (auto& [i, j, v] : t) std::swap(i, j);
  std::sort(t.begin(), t.end());
  return t;
}

struct Coo {
  IndexType nr = 0, nc = 0;
  IndexArrayType r, c;
  std::vector<double> v;
};

/// Seeded random COO with integer-valued entries (exact float arithmetic,
/// so both strategies' summation orders must agree bit-for-bit).
Coo gen_coo(std::mt19937& rng, IndexType nr, IndexType nc, double density) {
  Coo m;
  m.nr = nr;
  m.nc = nc;
  const auto target = static_cast<std::size_t>(
      density * static_cast<double>(nr) * static_cast<double>(nc));
  std::set<std::pair<IndexType, IndexType>> used;
  std::uniform_int_distribution<IndexType> ri(0, nr - 1), ci(0, nc - 1);
  std::uniform_int_distribution<int> vi(-4, 4);
  for (std::size_t k = 0; k < target; ++k) {
    const auto pos = std::make_pair(ri(rng), ci(rng));
    if (!used.insert(pos).second) continue;
    m.r.push_back(pos.first);
    m.c.push_back(pos.second);
    m.v.push_back(static_cast<double>(vi(rng)));
  }
  return m;
}

template <typename Tag>
grb::Matrix<double, Tag> to_matrix(const Coo& m) {
  grb::Matrix<double, Tag> out(m.nr, m.nc);
  if (!m.v.empty()) out.build(m.r, m.c, m.v);
  return out;
}

/// Run @p law once per engine: the sequential backend, then the GPU backend
/// pinned to each SpGEMM strategy. The law receives a tag type and a label.
template <typename Law>
void for_each_engine(Law&& law) {
  law.template operator()<grb::Sequential>("sequential");
  for (const auto mode : {sparse::SpgemmMode::Esc, sparse::SpgemmMode::Hash,
                          sparse::SpgemmMode::Auto}) {
    sparse::SpgemmModeGuard guard(mode);
    law.template operator()<grb::GpuSim>(
        mode == sparse::SpgemmMode::Esc    ? "gpu/esc"
        : mode == sparse::SpgemmMode::Hash ? "gpu/hash"
                                           : "gpu/auto");
  }
}

// --------------------------------------------------------------------------
// (A·B)ᵀ = Bᵀ·Aᵀ
// --------------------------------------------------------------------------

TEST(SpgemmLaws, TransposeOfProductEqualsReversedTransposeProduct) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    std::mt19937 rng(900 + seed);
    const Coo a = gen_coo(rng, 9, 7, 0.3);
    const Coo b = gen_coo(rng, 7, 11, 0.3);
    for_each_engine([&]<typename Tag>(const char* label) {
      const auto ga = to_matrix<Tag>(a);
      const auto gb = to_matrix<Tag>(b);
      grb::Matrix<double, Tag> ab(9, 11), btat(11, 9);
      grb::mxm(ab, grb::NoMask{}, grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, ga, gb);
      grb::mxm(btat, grb::NoMask{}, grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, grb::transpose(gb),
               grb::transpose(ga));
      EXPECT_EQ(transposed(tuples_of(ab)), tuples_of(btat))
          << label << " seed " << seed;
    });
  }
}

// --------------------------------------------------------------------------
// A·I = A, I·A = A
// --------------------------------------------------------------------------

TEST(SpgemmLaws, IdentityIsNeutral) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    std::mt19937 rng(930 + seed);
    const Coo a = gen_coo(rng, 10, 6, 0.35);
    for_each_engine([&]<typename Tag>(const char* label) {
      const auto ga = to_matrix<Tag>(a);
      const auto right = grb::identity<double, Tag>(6);
      const auto left = grb::identity<double, Tag>(10);
      grb::Matrix<double, Tag> ai(10, 6), ia(10, 6);
      grb::mxm(ai, grb::NoMask{}, grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, ga, right);
      grb::mxm(ia, grb::NoMask{}, grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, left, ga);
      EXPECT_EQ(tuples_of(ai), tuples_of(ga)) << label << " seed " << seed;
      EXPECT_EQ(tuples_of(ia), tuples_of(ga)) << label << " seed " << seed;
    });
  }
}

// --------------------------------------------------------------------------
// Annihilator rows: an empty A row can produce no C entries
// --------------------------------------------------------------------------

TEST(SpgemmLaws, EmptyARowYieldsEmptyCRow) {
  std::mt19937 rng(960);
  Coo a = gen_coo(rng, 8, 8, 0.5);
  // Annihilate rows 0 and 5.
  Coo holed;
  holed.nr = a.nr;
  holed.nc = a.nc;
  for (std::size_t p = 0; p < a.v.size(); ++p) {
    if (a.r[p] == 0 || a.r[p] == 5) continue;
    holed.r.push_back(a.r[p]);
    holed.c.push_back(a.c[p]);
    holed.v.push_back(a.v[p]);
  }
  const Coo b = gen_coo(rng, 8, 8, 0.6);
  for_each_engine([&]<typename Tag>(const char* label) {
    const auto ga = to_matrix<Tag>(holed);
    const auto gb = to_matrix<Tag>(b);
    grb::Matrix<double, Tag> c(8, 8);
    grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, ga, gb);
    for (const auto& [i, j, v] : tuples_of(c)) {
      EXPECT_NE(i, 0u) << label;
      EXPECT_NE(i, 5u) << label;
    }
  });
}

// --------------------------------------------------------------------------
// Empty-matrix absorption: A·0 = 0, 0·B = 0
// --------------------------------------------------------------------------

TEST(SpgemmLaws, EmptyMatrixAbsorbs) {
  std::mt19937 rng(990);
  const Coo a = gen_coo(rng, 7, 5, 0.5);
  for_each_engine([&]<typename Tag>(const char* label) {
    const auto ga = to_matrix<Tag>(a);
    grb::Matrix<double, Tag> zero_b(5, 9), zero_a(4, 7);
    grb::Matrix<double, Tag> c1(7, 9), c2(4, 5);
    grb::mxm(c1, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, ga, zero_b);
    grb::mxm(c2, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, zero_a, ga);
    EXPECT_EQ(c1.nvals(), 0u) << label;
    EXPECT_EQ(c2.nvals(), 0u) << label;
  });
}

}  // namespace
