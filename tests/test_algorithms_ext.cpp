/// Tests for the extension algorithms (k-core, k-truss, coloring,
/// personalized PageRank) and the applyIndexed primitive, typed across
/// both backends.

#include <gtest/gtest.h>

#include "algorithms/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace {

using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

template <typename Tag>
struct AlgoExt : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(AlgoExt, Backends);

TYPED_TEST(AlgoExt, ApplyIndexedVector) {
  grb::Vector<double, TypeParam> u(4);
  u.setElement(1, 10.0);
  u.setElement(3, 20.0);
  grb::Vector<double, TypeParam> w(4);
  grb::applyIndexed(w, NoMask{}, NoAccumulate{},
                    [](IndexType i, double v) { return v + i; }, u);
  EXPECT_DOUBLE_EQ(w.extractElement(1), 11.0);
  EXPECT_DOUBLE_EQ(w.extractElement(3), 23.0);
  EXPECT_FALSE(w.hasElement(0));
}

TYPED_TEST(AlgoExt, ApplyIndexedMatrix) {
  grb::Matrix<double, TypeParam> a(3, 3);
  a.build({0, 1, 2}, {2, 0, 1}, {1.0, 1.0, 1.0});
  grb::Matrix<double, TypeParam> c(3, 3);
  grb::applyIndexed(c, NoMask{}, NoAccumulate{},
                    [](IndexType i, IndexType j, double v) {
                      return v * 100 + static_cast<double>(i * 10 + j);
                    },
                    a);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 2), 102.0);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 0), 110.0);
  EXPECT_DOUBLE_EQ(c.extractElement(2, 1), 121.0);
}

TYPED_TEST(AlgoExt, ApplyIndexedRespectsMaskAndAccum) {
  grb::Vector<double, TypeParam> u(3);
  u.setElement(0, 1.0);
  u.setElement(1, 1.0);
  grb::Vector<double, TypeParam> w(3);
  w.setElement(0, 5.0);
  grb::Vector<bool, TypeParam> mask(3);
  mask.setElement(0, true);
  grb::applyIndexed(w, mask, grb::Plus<double>{},
                    [](IndexType i, double v) { return v + i; }, u,
                    grb::Replace);
  EXPECT_DOUBLE_EQ(w.extractElement(0), 6.0);  // 5 + (1+0)
  EXPECT_FALSE(w.hasElement(1));               // masked out + replace
}

// --- k-core ---------------------------------------------------------------

TYPED_TEST(AlgoExt, KcoreOnCliquePlusTail) {
  // K4 (vertices 0-3) with a path 3-4-5 hanging off.
  gbtl_graph::EdgeList g = gbtl_graph::complete(4);
  g.num_vertices = 6;
  g.src.insert(g.src.end(), {3, 4, 4, 5});
  g.dst.insert(g.dst.end(), {4, 3, 5, 4});
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> core(6);
  const auto degeneracy = algorithms::kcore_decomposition(a, core);
  EXPECT_EQ(degeneracy, 3u);
  for (IndexType v = 0; v < 4; ++v) EXPECT_EQ(core.extractElement(v), 3u);
  EXPECT_EQ(core.extractElement(4), 1u);
  EXPECT_EQ(core.extractElement(5), 1u);
}

TYPED_TEST(AlgoExt, KcoreIsolatedVerticesAreZero) {
  grb::Matrix<double, TypeParam> a(3, 3);
  a.build({0, 1}, {1, 0}, {1.0, 1.0});
  grb::Vector<IndexType, TypeParam> core(3);
  algorithms::kcore_decomposition(a, core);
  EXPECT_EQ(core.extractElement(0), 1u);
  EXPECT_EQ(core.extractElement(1), 1u);
  EXPECT_EQ(core.extractElement(2), 0u);
}

TYPED_TEST(AlgoExt, KcoreVerticesSelectsSubgraph) {
  auto g = gbtl_graph::complete(5);  // every vertex in the 4-core
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  auto members = algorithms::kcore_vertices(a, 4);
  EXPECT_EQ(members.nvals(), 5u);
  auto none = algorithms::kcore_vertices(a, 5);
  EXPECT_EQ(none.nvals(), 0u);
}

// --- k-truss ---------------------------------------------------------------

TYPED_TEST(AlgoExt, KtrussOnCliqueSurvivesWhole) {
  auto g = gbtl_graph::complete(5);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Matrix<IndexType, TypeParam> t(5, 5);
  // Every edge of K5 is in 3 triangles: the 5-truss (support >= 3) is K5.
  auto r = algorithms::ktruss(a, 5, t);
  EXPECT_EQ(r.edges, 20u);
  // 6-truss would need support 4: empty.
  auto r6 = algorithms::ktruss(a, 6, t);
  EXPECT_EQ(r6.edges, 0u);
}

TYPED_TEST(AlgoExt, KtrussPeelsTailEdges) {
  // K4 plus a pendant path: the 3-truss keeps exactly the K4 edges.
  gbtl_graph::EdgeList g = gbtl_graph::complete(4);
  g.num_vertices = 6;
  g.src.insert(g.src.end(), {3, 4, 4, 5});
  g.dst.insert(g.dst.end(), {4, 3, 5, 4});
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Matrix<IndexType, TypeParam> t(6, 6);
  auto r = algorithms::ktruss(a, 3, t);
  EXPECT_EQ(r.edges, 12u);  // K4's directed edges
  EXPECT_TRUE(t.hasElement(0, 1));
  EXPECT_FALSE(t.hasElement(3, 4));
  EXPECT_FALSE(t.hasElement(4, 5));
}

TYPED_TEST(AlgoExt, MaxTrussOfBowtieIsThree) {
  gbtl_graph::EdgeList bowtie;
  bowtie.num_vertices = 5;
  bowtie.src = {0, 1, 0, 2, 1, 2, 2, 3, 2, 4, 3, 4};
  bowtie.dst = {1, 0, 2, 0, 2, 1, 3, 2, 4, 2, 4, 3};
  auto a = gbtl_graph::to_matrix<double, TypeParam>(bowtie);
  EXPECT_EQ(algorithms::max_truss(a), 3u);
}

// --- coloring ---------------------------------------------------------------

TYPED_TEST(AlgoExt, ColoringIsProperOnRandomGraph) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
      gbtl_graph::erdos_renyi(40, 160, 17)));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> colors(40);
  auto r = algorithms::greedy_coloring(a, colors, 5);
  EXPECT_TRUE(algorithms::is_proper_coloring(a, colors));
  EXPECT_GT(r.colors_used, 0u);
  // Greedy bound: colors <= max degree + 1.
  auto deg = algorithms::out_degree(a);
  grb::IndexType max_deg = 0;
  grb::reduce(max_deg, NoAccumulate{}, grb::MaxMonoid<IndexType>{}, deg);
  EXPECT_LE(r.colors_used, max_deg + 1);
}

TYPED_TEST(AlgoExt, ColoringBipartiteUsesTwoColors) {
  // Even cycle = bipartite: exactly 2 colors.
  auto g = gbtl_graph::symmetrize(gbtl_graph::cycle(8));
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> colors(8);
  auto r = algorithms::greedy_coloring(a, colors, 3);
  EXPECT_TRUE(algorithms::is_proper_coloring(a, colors));
  EXPECT_LE(r.colors_used, 3u);  // JP-greedy may use 3 on a cycle, never more
}

TYPED_TEST(AlgoExt, ColoringCompleteGraphNeedsNColors) {
  auto g = gbtl_graph::complete(5);
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);
  grb::Vector<IndexType, TypeParam> colors(5);
  auto r = algorithms::greedy_coloring(a, colors, 11);
  EXPECT_TRUE(algorithms::is_proper_coloring(a, colors));
  EXPECT_EQ(r.colors_used, 5u);
}

// --- personalized pagerank ---------------------------------------------------

TYPED_TEST(AlgoExt, PersonalizedPagerankLocalizesAroundSeed) {
  // Two triangles joined by one long path; seed in the left triangle.
  gbtl_graph::EdgeList g;
  g.num_vertices = 9;
  auto add = [&](gbtl_graph::Index s, gbtl_graph::Index d) {
    g.src.push_back(s);
    g.dst.push_back(d);
    g.src.push_back(d);
    g.dst.push_back(s);
  };
  add(0, 1), add(1, 2), add(2, 0);          // left triangle
  add(2, 3), add(3, 4), add(4, 5), add(5, 6);  // path
  add(6, 7), add(7, 8), add(8, 6);          // right triangle
  auto a = gbtl_graph::to_matrix<double, TypeParam>(g);

  grb::Vector<double, TypeParam> rank(9);
  algorithms::personalized_pagerank(a, {0}, rank);
  double total = 0.0;
  grb::reduce(total, NoAccumulate{}, grb::PlusMonoid<double>{}, rank);
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Mass concentrates near the seed.
  EXPECT_GT(rank.extractElement(0), rank.extractElement(8));
  EXPECT_GT(rank.extractElement(1), rank.extractElement(7));
  EXPECT_GT(rank.extractElement(0), 0.15);
}

TYPED_TEST(AlgoExt, PersonalizedPagerankValidatesArguments) {
  grb::Matrix<double, TypeParam> a(3, 3);
  a.build({0}, {1}, {1.0});
  grb::Vector<double, TypeParam> rank(3);
  EXPECT_THROW(algorithms::personalized_pagerank(a, {}, rank),
               grb::InvalidValueException);
  EXPECT_THROW(algorithms::personalized_pagerank(a, {9}, rank),
               grb::IndexOutOfBoundsException);
}

}  // namespace
