/// GraphBLAS write-semantics tests: the mask / accumulator / REPLACE
/// pipeline (Z = accum(C, T̃); C<M,z> = Z) exercised case by case on both
/// backends. These pin down the subtle behaviours the spec mandates:
/// no-accum deletes output entries outside T̃, Merge keeps unmasked
/// positions, Replace deletes them, structural masks ignore stored falsy
/// values, complement flips, and assign treats the non-indexed region as
/// untouched.

#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

template <typename Tag>
struct Semantics : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(Semantics, Backends);

// Fixture data: C has entries at (0,0)=10 and (1,1)=20.
template <typename Tag>
grb::Matrix<double, Tag> c_start() {
  grb::Matrix<double, Tag> c(2, 2);
  c.build({0, 1}, {0, 1}, {10.0, 20.0});
  return c;
}

// T̃ producer: apply(identity) of A, so T̃ == A's pattern/values exactly.
// A has entries at (0,0)=1 and (0,1)=2.
template <typename Tag>
grb::Matrix<double, Tag> a_input() {
  grb::Matrix<double, Tag> a(2, 2);
  a.build({0, 0}, {0, 1}, {1.0, 2.0});
  return a;
}

TYPED_TEST(Semantics, NoAccumNoMaskReplacesEverything) {
  auto c = c_start<TypeParam>();
  grb::apply(c, NoMask{}, NoAccumulate{}, grb::Identity<double>{},
             a_input<TypeParam>());
  // (1,1) had a value in C but none in T̃: with no accumulator it must be
  // deleted even under Merge (Z = T̃).
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 1), 2.0);
  EXPECT_FALSE(c.hasElement(1, 1));
  EXPECT_EQ(c.nvals(), 2u);
}

TYPED_TEST(Semantics, AccumMergesOldAndNew) {
  auto c = c_start<TypeParam>();
  grb::apply(c, NoMask{}, grb::Plus<double>{}, grb::Identity<double>{},
             a_input<TypeParam>());
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 11.0);  // 10 + 1
  EXPECT_DOUBLE_EQ(c.extractElement(0, 1), 2.0);   // T̃ only
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 20.0);  // C only, kept
  EXPECT_EQ(c.nvals(), 3u);
}

TYPED_TEST(Semantics, MaskMergeKeepsUnmaskedEntries) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0}, {0}, {true});  // only (0,0) writable
  grb::apply(c, mask, NoAccumulate{}, grb::Identity<double>{},
             a_input<TypeParam>(), grb::Merge);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 1.0);   // written
  EXPECT_FALSE(c.hasElement(0, 1));                // masked out
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 20.0);  // kept under Merge
}

TYPED_TEST(Semantics, MaskReplaceDeletesUnmaskedEntries) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0}, {0}, {true});
  grb::apply(c, mask, NoAccumulate{}, grb::Identity<double>{},
             a_input<TypeParam>(), grb::Replace);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 1.0);
  EXPECT_FALSE(c.hasElement(1, 1));  // deleted by Replace
  EXPECT_EQ(c.nvals(), 1u);
}

TYPED_TEST(Semantics, ValueMaskIgnoresFalsyEntries) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0, 0}, {0, 1}, {false, true});  // (0,0) stored-but-false
  grb::apply(c, mask, NoAccumulate{}, grb::Identity<double>{},
             a_input<TypeParam>(), grb::Replace);
  EXPECT_FALSE(c.hasElement(0, 0));  // falsy mask value blocks the write
  EXPECT_DOUBLE_EQ(c.extractElement(0, 1), 2.0);
}

TYPED_TEST(Semantics, StructuralMaskCountsFalsyEntries) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0, 0}, {0, 1}, {false, true});
  grb::apply(c, grb::structure(mask), NoAccumulate{},
             grb::Identity<double>{}, a_input<TypeParam>(), grb::Replace);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 1.0);  // structure allows it
  EXPECT_DOUBLE_EQ(c.extractElement(0, 1), 2.0);
}

TYPED_TEST(Semantics, ComplementMaskFlips) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0}, {0}, {true});
  grb::apply(c, grb::complement(mask), NoAccumulate{},
             grb::Identity<double>{}, a_input<TypeParam>(), grb::Replace);
  EXPECT_FALSE(c.hasElement(0, 0));               // complement blocks it
  EXPECT_DOUBLE_EQ(c.extractElement(0, 1), 2.0);  // allowed
  EXPECT_FALSE(c.hasElement(1, 1));               // replace deletes
}

TYPED_TEST(Semantics, ComplementOfStructureMask) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0, 0}, {0, 1}, {false, true});
  // complement(structure(m)): writable exactly where m has NO stored entry.
  grb::apply(c, grb::complement(grb::structure(mask)), NoAccumulate{},
             grb::Identity<double>{}, a_input<TypeParam>(), grb::Merge);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 10.0);  // blocked, kept (merge)
  EXPECT_FALSE(c.hasElement(0, 1));  // blocked; T̃ not written, C had none
  // (1,1) is ALLOWED (mask has no entry there) and T̃ has no value: with no
  // accumulator, Z = T̃, so the old C value is deleted even under Merge.
  EXPECT_FALSE(c.hasElement(1, 1));
}

TYPED_TEST(Semantics, AccumWithMaskOnlyTouchesAllowed) {
  auto c = c_start<TypeParam>();
  grb::Matrix<bool, TypeParam> mask(2, 2);
  mask.build({0}, {0}, {true});
  grb::apply(c, mask, grb::Plus<double>{}, grb::Identity<double>{},
             a_input<TypeParam>(), grb::Merge);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 11.0);
  EXPECT_FALSE(c.hasElement(0, 1));
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 20.0);
}

// --- Vector variants -------------------------------------------------------

template <typename Tag>
grb::Vector<double, Tag> w_start() {
  grb::Vector<double, Tag> w(3);
  w.setElement(0, 10.0);
  w.setElement(2, 30.0);
  return w;
}

template <typename Tag>
grb::Vector<double, Tag> u_input() {
  grb::Vector<double, Tag> u(3);
  u.setElement(0, 1.0);
  u.setElement(1, 2.0);
  return u;
}

TYPED_TEST(Semantics, VectorNoAccumDeletes) {
  auto w = w_start<TypeParam>();
  grb::apply(w, NoMask{}, NoAccumulate{}, grb::Identity<double>{},
             u_input<TypeParam>());
  EXPECT_DOUBLE_EQ(w.extractElement(0), 1.0);
  EXPECT_DOUBLE_EQ(w.extractElement(1), 2.0);
  EXPECT_FALSE(w.hasElement(2));
}

TYPED_TEST(Semantics, VectorMaskReplaceAndMerge) {
  grb::Vector<bool, TypeParam> mask(3);
  mask.setElement(1, true);

  auto w1 = w_start<TypeParam>();
  grb::apply(w1, mask, NoAccumulate{}, grb::Identity<double>{},
             u_input<TypeParam>(), grb::Merge);
  EXPECT_DOUBLE_EQ(w1.extractElement(0), 10.0);  // kept
  EXPECT_DOUBLE_EQ(w1.extractElement(1), 2.0);   // written
  EXPECT_DOUBLE_EQ(w1.extractElement(2), 30.0);  // kept

  auto w2 = w_start<TypeParam>();
  grb::apply(w2, mask, NoAccumulate{}, grb::Identity<double>{},
             u_input<TypeParam>(), grb::Replace);
  EXPECT_FALSE(w2.hasElement(0));
  EXPECT_DOUBLE_EQ(w2.extractElement(1), 2.0);
  EXPECT_FALSE(w2.hasElement(2));
}

TYPED_TEST(Semantics, AssignOutsideIndexRegionUntouched) {
  auto w = w_start<TypeParam>();
  grb::Vector<double, TypeParam> u(1);
  u.setElement(0, 7.0);
  grb::assign(w, NoMask{}, NoAccumulate{}, u, {1});
  EXPECT_DOUBLE_EQ(w.extractElement(0), 10.0);  // untouched: not indexed
  EXPECT_DOUBLE_EQ(w.extractElement(1), 7.0);
  EXPECT_DOUBLE_EQ(w.extractElement(2), 30.0);  // untouched
}

TYPED_TEST(Semantics, AssignNoAccumDeletesInsideIndexRegion) {
  auto w = w_start<TypeParam>();
  grb::Vector<double, TypeParam> u(2);
  u.setElement(1, 5.0);  // u[0] empty
  grb::assign(w, NoMask{}, NoAccumulate{}, u, {0, 1});
  // Position 0 was indexed and u has no value there: deleted.
  EXPECT_FALSE(w.hasElement(0));
  EXPECT_DOUBLE_EQ(w.extractElement(1), 5.0);
  EXPECT_DOUBLE_EQ(w.extractElement(2), 30.0);
}

TYPED_TEST(Semantics, AssignWithAccumKeepsInsideIndexRegion) {
  auto w = w_start<TypeParam>();
  grb::Vector<double, TypeParam> u(2);
  u.setElement(0, 5.0);  // u[1] empty
  grb::assign(w, NoMask{}, grb::Plus<double>{}, u, {0, 2});
  EXPECT_DOUBLE_EQ(w.extractElement(0), 15.0);  // accumulated
  EXPECT_DOUBLE_EQ(w.extractElement(2), 30.0);  // u empty + accum: kept
}

TYPED_TEST(Semantics, ConstantAssignWithMask) {
  auto w = w_start<TypeParam>();
  grb::Vector<bool, TypeParam> mask(3);
  mask.setElement(0, true);
  mask.setElement(1, true);
  grb::assign(w, mask, NoAccumulate{}, 99.0, grb::all_indices(3));
  EXPECT_DOUBLE_EQ(w.extractElement(0), 99.0);
  EXPECT_DOUBLE_EQ(w.extractElement(1), 99.0);
  EXPECT_DOUBLE_EQ(w.extractElement(2), 30.0);  // masked out, merge keeps
}

TYPED_TEST(Semantics, MatrixAssignSubgridReplacedWithoutAccum) {
  auto c = c_start<TypeParam>();  // (0,0)=10, (1,1)=20
  grb::Matrix<double, TypeParam> a(1, 2);
  a.build({0}, {1}, {5.0});  // a(0,0) empty, a(0,1)=5
  grb::assign(c, NoMask{}, NoAccumulate{}, a, {1}, {0, 1});
  // Row 1 of C replaced by a's row: (1,0) stays empty... a(0,0) empty ->
  // C(1,0) deleted (was empty anyway); (1,1) overwritten by... a(0,1)=5.
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 10.0);  // outside subgrid
  EXPECT_FALSE(c.hasElement(1, 0));
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 5.0);
}

TYPED_TEST(Semantics, MxmAccumulatesIntoExistingOutput) {
  // C += A*A over plus-times.
  grb::Matrix<double, TypeParam> a(2, 2);
  a.build({0, 1}, {1, 0}, {2.0, 3.0});  // A^2 = diag(6, 6)
  grb::Matrix<double, TypeParam> c(2, 2);
  c.build({0, 0}, {0, 1}, {100.0, 100.0});
  grb::mxm(c, NoMask{}, grb::Plus<double>{},
           grb::ArithmeticSemiring<double>{}, a, a);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 106.0);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 1), 100.0);  // kept by accum merge
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 6.0);
}

TYPED_TEST(Semantics, TransposedOperandsInMxm) {
  grb::Matrix<double, TypeParam> a(2, 3);
  a.build({0, 1, 1}, {1, 0, 2}, {2.0, 3.0, 4.0});
  grb::Matrix<double, TypeParam> c(3, 3);
  // C = A' * A  (3x2 * 2x3)
  grb::mxm(c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           grb::transpose(a), a);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 2), 12.0);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.extractElement(2, 2), 16.0);
}

TYPED_TEST(Semantics, ReduceWithAccumIntoScalar) {
  grb::Vector<double, TypeParam> u(3);
  u.setElement(0, 1.0);
  u.setElement(2, 2.0);
  double s = 100.0;
  grb::reduce(s, grb::Plus<double>{}, grb::PlusMonoid<double>{}, u);
  EXPECT_DOUBLE_EQ(s, 103.0);
  grb::reduce(s, NoAccumulate{}, grb::PlusMonoid<double>{}, u);
  EXPECT_DOUBLE_EQ(s, 3.0);
}

TYPED_TEST(Semantics, EmptyOperandsProduceEmptyResults) {
  grb::Matrix<double, TypeParam> a(3, 3), c(3, 3);
  grb::Vector<double, TypeParam> u(3), w(3);
  grb::mxm(c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{}, a,
           a);
  EXPECT_EQ(c.nvals(), 0u);
  grb::mxv(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{}, a,
           u);
  EXPECT_EQ(w.nvals(), 0u);
  double s = -1.0;
  grb::reduce(s, NoAccumulate{}, grb::PlusMonoid<double>{}, u);
  EXPECT_DOUBLE_EQ(s, 0.0);  // identity of the monoid
}

}  // namespace
