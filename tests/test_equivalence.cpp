/// Randomized cross-backend equivalence: for every operation, random
/// operands (random shapes, densities, masks, accumulators, output
/// contents) are evaluated on the sequential oracle and the GPU backend,
/// and results are compared tuple-for-tuple. This is the property suite
/// that makes the simulated CUDA backend trustworthy.

#include <gtest/gtest.h>

#include <random>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

struct RandomCase {
  unsigned seed;
};

class Equivalence : public ::testing::TestWithParam<unsigned> {
 protected:
  std::mt19937 rng{GetParam()};

  IndexType dim() {
    return std::uniform_int_distribution<IndexType>(1, 24)(rng);
  }
  double density() {
    return std::uniform_real_distribution<double>(0.05, 0.6)(rng);
  }

  /// Random sparse matrix produced simultaneously on both backends.
  template <typename T>
  std::pair<grb::Matrix<T, grb::Sequential>, grb::Matrix<T, grb::GpuSim>>
  random_matrix(IndexType nrows, IndexType ncols) {
    std::uniform_real_distribution<double> val(-4.0, 4.0);
    std::bernoulli_distribution keep(density());
    IndexArrayType rows, cols;
    std::vector<T> vals;
    for (IndexType i = 0; i < nrows; ++i)
      for (IndexType j = 0; j < ncols; ++j)
        if (keep(rng)) {
          rows.push_back(i);
          cols.push_back(j);
          vals.push_back(static_cast<T>(val(rng)));
        }
    grb::Matrix<T, grb::Sequential> s(nrows, ncols);
    s.build(rows, cols, vals, grb::Second<T>{});
    grb::Matrix<T, grb::GpuSim> g(nrows, ncols);
    g.build(rows, cols, vals, grb::Second<T>{});
    return {std::move(s), std::move(g)};
  }

  template <typename T>
  std::pair<grb::Vector<T, grb::Sequential>, grb::Vector<T, grb::GpuSim>>
  random_vector(IndexType n) {
    std::uniform_real_distribution<double> val(-4.0, 4.0);
    std::bernoulli_distribution keep(density());
    IndexArrayType idx;
    std::vector<T> vals;
    for (IndexType i = 0; i < n; ++i)
      if (keep(rng)) {
        idx.push_back(i);
        vals.push_back(static_cast<T>(val(rng)));
      }
    grb::Vector<T, grb::Sequential> s(n);
    s.build(idx, vals, grb::Second<T>{});
    grb::Vector<T, grb::GpuSim> g(n);
    g.build(idx, vals, grb::Second<T>{});
    return {std::move(s), std::move(g)};
  }

  template <typename T>
  static void expect_same(const grb::Matrix<T, grb::Sequential>& s,
                          const grb::Matrix<T, grb::GpuSim>& g) {
    IndexArrayType sr, sc, gr, gc;
    std::vector<T> sv, gv;
    s.extractTuples(sr, sc, sv);
    g.extractTuples(gr, gc, gv);
    ASSERT_EQ(sr, gr);
    ASSERT_EQ(sc, gc);
    ASSERT_EQ(sv.size(), gv.size());
    for (std::size_t k = 0; k < sv.size(); ++k)
      EXPECT_NEAR(sv[k], gv[k], 1e-9) << "value index " << k;
  }

  template <typename T>
  static void expect_same(const grb::Vector<T, grb::Sequential>& s,
                          const grb::Vector<T, grb::GpuSim>& g) {
    IndexArrayType si, gi;
    std::vector<T> sv, gv;
    s.extractTuples(si, sv);
    g.extractTuples(gi, gv);
    ASSERT_EQ(si, gi);
    ASSERT_EQ(sv.size(), gv.size());
    for (std::size_t k = 0; k < sv.size(); ++k)
      EXPECT_NEAR(sv[k], gv[k], 1e-9) << "value index " << k;
  }
};

TEST_P(Equivalence, Mxm) {
  const IndexType m = dim(), k = dim(), n = dim();
  auto [sa, ga] = random_matrix<double>(m, k);
  auto [sb, gb] = random_matrix<double>(k, n);
  auto [sc, gc] = random_matrix<double>(m, n);
  grb::mxm(sc, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           sa, sb);
  grb::mxm(gc, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           ga, gb);
  expect_same(sc, gc);
}

TEST_P(Equivalence, MxmMaskedAccumReplace) {
  const IndexType n = dim();
  auto [sa, ga] = random_matrix<double>(n, n);
  auto [sm, gm] = random_matrix<std::uint8_t>(n, n);
  auto [sc, gc] = random_matrix<double>(n, n);
  grb::mxm(sc, sm, grb::Plus<double>{}, grb::ArithmeticSemiring<double>{},
           sa, sa, grb::Replace);
  grb::mxm(gc, gm, grb::Plus<double>{}, grb::ArithmeticSemiring<double>{},
           ga, ga, grb::Replace);
  expect_same(sc, gc);
}

TEST_P(Equivalence, MxmComplementMaskMerge) {
  const IndexType n = dim();
  auto [sa, ga] = random_matrix<double>(n, n);
  auto [sm, gm] = random_matrix<std::uint8_t>(n, n);
  auto [sc, gc] = random_matrix<double>(n, n);
  grb::mxm(sc, grb::complement(sm), NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, sa, sa, grb::Merge);
  grb::mxm(gc, grb::complement(gm), NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, ga, ga, grb::Merge);
  expect_same(sc, gc);
}

TEST_P(Equivalence, MxmMinPlus) {
  const IndexType n = dim();
  auto [sa, ga] = random_matrix<double>(n, n);
  auto [sc, gc] = random_matrix<double>(n, n);
  grb::mxm(sc, NoMask{}, NoAccumulate{}, grb::MinPlusSemiring<double>{}, sa,
           sa);
  grb::mxm(gc, NoMask{}, NoAccumulate{}, grb::MinPlusSemiring<double>{}, ga,
           ga);
  expect_same(sc, gc);
}

TEST_P(Equivalence, MxvAndVxmWithMasks) {
  const IndexType m = dim(), n = dim();
  auto [sa, ga] = random_matrix<double>(m, n);
  auto [su, gu] = random_vector<double>(n);
  auto [sw, gw] = random_vector<double>(m);
  auto [smask, gmask] = random_vector<std::uint8_t>(m);
  grb::mxv(sw, smask, grb::Plus<double>{}, grb::ArithmeticSemiring<double>{},
           sa, su, grb::Merge);
  grb::mxv(gw, gmask, grb::Plus<double>{}, grb::ArithmeticSemiring<double>{},
           ga, gu, grb::Merge);
  expect_same(sw, gw);

  auto [su2, gu2] = random_vector<double>(m);
  auto [sw2, gw2] = random_vector<double>(n);
  grb::vxm(sw2, NoMask{}, NoAccumulate{}, grb::MinPlusSemiring<double>{},
           su2, sa, grb::Replace);
  grb::vxm(gw2, NoMask{}, NoAccumulate{}, grb::MinPlusSemiring<double>{},
           gu2, ga, grb::Replace);
  expect_same(sw2, gw2);
}

TEST_P(Equivalence, EwiseMatrixOps) {
  const IndexType m = dim(), n = dim();
  auto [sa, ga] = random_matrix<double>(m, n);
  auto [sb, gb] = random_matrix<double>(m, n);
  auto [sc, gc] = random_matrix<double>(m, n);
  grb::eWiseAdd(sc, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, sa, sb);
  grb::eWiseAdd(gc, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, ga, gb);
  expect_same(sc, gc);

  grb::eWiseMult(sc, NoMask{}, NoAccumulate{}, grb::Times<double>{}, sa, sb);
  grb::eWiseMult(gc, NoMask{}, NoAccumulate{}, grb::Times<double>{}, ga, gb);
  expect_same(sc, gc);
}

TEST_P(Equivalence, EwiseVectorOpsWithStructureMask) {
  const IndexType n = dim();
  auto [su, gu] = random_vector<double>(n);
  auto [sv, gv] = random_vector<double>(n);
  auto [sw, gw] = random_vector<double>(n);
  auto [sm, gm] = random_vector<std::uint8_t>(n);
  grb::eWiseAdd(sw, grb::structure(sm), grb::Min<double>{},
                grb::Max<double>{}, su, sv, grb::Replace);
  grb::eWiseAdd(gw, grb::structure(gm), grb::Min<double>{},
                grb::Max<double>{}, gu, gv, grb::Replace);
  expect_same(sw, gw);

  grb::eWiseMult(sw, grb::complement(grb::structure(sm)), NoAccumulate{},
                 grb::Plus<double>{}, su, sv, grb::Merge);
  grb::eWiseMult(gw, grb::complement(grb::structure(gm)), NoAccumulate{},
                 grb::Plus<double>{}, gu, gv, grb::Merge);
  expect_same(sw, gw);
}

TEST_P(Equivalence, ApplyAndReduce) {
  const IndexType m = dim(), n = dim();
  auto [sa, ga] = random_matrix<double>(m, n);
  auto [sc, gc] = random_matrix<double>(m, n);
  grb::apply(sc, NoMask{}, NoAccumulate{}, grb::AdditiveInverse<double>{},
             sa);
  grb::apply(gc, NoMask{}, NoAccumulate{}, grb::AdditiveInverse<double>{},
             ga);
  expect_same(sc, gc);

  auto [sw, gw] = random_vector<double>(m);
  grb::reduce(sw, NoMask{}, grb::Plus<double>{}, grb::PlusMonoid<double>{},
              sa);
  grb::reduce(gw, NoMask{}, grb::Plus<double>{}, grb::PlusMonoid<double>{},
              ga);
  expect_same(sw, gw);

  double ss = 0, gs = 0;
  grb::reduce(ss, NoAccumulate{}, grb::MaxMonoid<double>{}, sa);
  grb::reduce(gs, NoAccumulate{}, grb::MaxMonoid<double>{}, ga);
  EXPECT_NEAR(ss, gs, 1e-9);
}

TEST_P(Equivalence, TransposeOp) {
  const IndexType m = dim(), n = dim();
  auto [sa, ga] = random_matrix<double>(m, n);
  grb::Matrix<double, grb::Sequential> st(n, m);
  grb::Matrix<double, grb::GpuSim> gt(n, m);
  grb::transpose(st, NoMask{}, NoAccumulate{}, sa);
  grb::transpose(gt, NoMask{}, NoAccumulate{}, ga);
  expect_same(st, gt);
}

TEST_P(Equivalence, ExtractAndAssign) {
  const IndexType n = std::max<IndexType>(dim(), 4);
  auto [sa, ga] = random_matrix<double>(n, n);

  IndexArrayType rows{0, n - 1, 1};
  IndexArrayType cols{n - 2, 0};
  grb::Matrix<double, grb::Sequential> ssub(3, 2);
  grb::Matrix<double, grb::GpuSim> gsub(3, 2);
  grb::extract(ssub, NoMask{}, NoAccumulate{}, sa, rows, cols);
  grb::extract(gsub, NoMask{}, NoAccumulate{}, ga, rows, cols);
  expect_same(ssub, gsub);

  auto [sc, gc] = random_matrix<double>(n, n);
  grb::assign(sc, NoMask{}, grb::Plus<double>{}, ssub, rows, cols);
  grb::assign(gc, NoMask{}, grb::Plus<double>{}, gsub, rows, cols);
  expect_same(sc, gc);

  auto [su, gu] = random_vector<double>(n);
  grb::Vector<double, grb::Sequential> sx(3);
  grb::Vector<double, grb::GpuSim> gx(3);
  grb::extract(sx, NoMask{}, NoAccumulate{}, su, rows);
  grb::extract(gx, NoMask{}, NoAccumulate{}, gu, rows);
  expect_same(sx, gx);

  auto [sw, gw] = random_vector<double>(n);
  grb::assign(sw, NoMask{}, NoAccumulate{}, sx, rows);
  grb::assign(gw, NoMask{}, NoAccumulate{}, gx, rows);
  expect_same(sw, gw);
}

TEST_P(Equivalence, ColumnExtractThroughTranspose) {
  const IndexType n = std::max<IndexType>(dim(), 3);
  auto [sa, ga] = random_matrix<double>(n, n);
  grb::Vector<double, grb::Sequential> srow(n);
  grb::Vector<double, grb::GpuSim> grow(n);
  const IndexType target = n / 2;
  grb::extract(srow, NoMask{}, NoAccumulate{}, grb::transpose(sa),
               grb::all_indices(n), target, grb::Replace);
  grb::extract(grow, NoMask{}, NoAccumulate{}, grb::transpose(ga),
               grb::all_indices(n), target, grb::Replace);
  expect_same(srow, grow);
}

TEST_P(Equivalence, KroneckerAndSelect) {
  const IndexType m = std::uniform_int_distribution<IndexType>(1, 6)(rng);
  const IndexType n = std::uniform_int_distribution<IndexType>(1, 6)(rng);
  auto [sa, ga] = random_matrix<double>(m, m);
  auto [sb, gb] = random_matrix<double>(n, n);
  grb::Matrix<double, grb::Sequential> sk(m * n, m * n);
  grb::Matrix<double, grb::GpuSim> gk(m * n, m * n);
  grb::kronecker(sk, NoMask{}, NoAccumulate{}, grb::Times<double>{}, sa, sb);
  grb::kronecker(gk, NoMask{}, NoAccumulate{}, grb::Times<double>{}, ga, gb);
  expect_same(sk, gk);

  auto pred = [](IndexType i, IndexType j, double v) {
    return (i + j) % 2 == 0 && v > 0.0;
  };
  grb::Matrix<double, grb::Sequential> ss(m * n, m * n);
  grb::Matrix<double, grb::GpuSim> gs(m * n, m * n);
  grb::select(ss, NoMask{}, NoAccumulate{}, pred, sk);
  grb::select(gs, NoMask{}, NoAccumulate{}, pred, gk);
  expect_same(ss, gs);
}

TEST_P(Equivalence, ConstantAssignWithComplementMask) {
  const IndexType n = dim();
  auto [sw, gw] = random_vector<double>(n);
  auto [sm, gm] = random_vector<std::uint8_t>(n);
  grb::assign(sw, grb::complement(grb::structure(sm)), NoAccumulate{}, 3.5,
              grb::all_indices(n));
  grb::assign(gw, grb::complement(grb::structure(gm)), NoAccumulate{}, 3.5,
              grb::all_indices(n));
  expect_same(sw, gw);
}

TEST_P(Equivalence, ApplyIndexedMatrixAndVector) {
  const IndexType m = dim(), n = dim();
  auto [sa, ga] = random_matrix<double>(m, n);
  auto [sc, gc] = random_matrix<double>(m, n);
  auto idx_op = [](IndexType i, IndexType j, double v) {
    return v * 0.5 + static_cast<double>(i) - static_cast<double>(j);
  };
  grb::applyIndexed(sc, NoMask{}, NoAccumulate{}, idx_op, sa);
  grb::applyIndexed(gc, NoMask{}, NoAccumulate{}, idx_op, ga);
  expect_same(sc, gc);

  auto [su, gu] = random_vector<double>(n);
  auto [sw, gw] = random_vector<double>(n);
  auto vec_op = [](IndexType i, double v) { return v + 10.0 * i; };
  grb::applyIndexed(sw, NoMask{}, grb::Plus<double>{}, vec_op, su,
                    grb::Replace);
  grb::applyIndexed(gw, NoMask{}, grb::Plus<double>{}, vec_op, gu,
                    grb::Replace);
  expect_same(sw, gw);
}

TEST_P(Equivalence, SelectVectorWithIndexPredicate) {
  const IndexType n = dim();
  auto [su, gu] = random_vector<double>(n);
  auto [sw, gw] = random_vector<double>(n);
  auto pred = [](IndexType i, double v) { return i % 2 == 0 && v < 1.0; };
  grb::select(sw, NoMask{}, NoAccumulate{}, pred, su, grb::Replace);
  grb::select(gw, NoMask{}, NoAccumulate{}, pred, gu, grb::Replace);
  expect_same(sw, gw);
}

TEST_P(Equivalence, ResizeShrinkGrow) {
  const IndexType n = std::max<IndexType>(dim(), 6);
  auto [sa, ga] = random_matrix<double>(n, n);
  sa.resize(n - 2, n - 3);
  ga.resize(n - 2, n - 3);
  expect_same(sa, ga);
  sa.resize(n + 4, n + 1);
  ga.resize(n + 4, n + 1);
  expect_same(sa, ga);

  auto [su, gu] = random_vector<double>(n);
  su.resize(n - 2);
  gu.resize(n - 2);
  expect_same(su, gu);
  su.resize(n + 3);
  gu.resize(n + 3);
  expect_same(su, gu);
}

TEST_P(Equivalence, MaskedConstantAssignFastPath) {
  // The GPU fast path for full-grid masked constant assign must agree with
  // the sequential reference for value and structural masks.
  const IndexType n = dim();
  auto [sc, gc] = random_matrix<double>(n, n);
  auto [sm, gm] = random_matrix<std::uint8_t>(n, n);
  const auto rows = grb::all_indices(n);
  grb::assign(sc, sm, NoAccumulate{}, 7.5, rows, rows, grb::Merge);
  grb::assign(gc, gm, NoAccumulate{}, 7.5, rows, rows, grb::Merge);
  expect_same(sc, gc);

  auto [sc2, gc2] = random_matrix<double>(n, n);
  grb::assign(sc2, grb::structure(sm), NoAccumulate{}, -1.25, rows, rows,
              grb::Replace);
  grb::assign(gc2, grb::structure(gm), NoAccumulate{}, -1.25, rows, rows,
              grb::Replace);
  expect_same(sc2, gc2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Equivalence,
                         ::testing::Range(100u, 112u));

}  // namespace
