/// Cross-backend smoke tests of the frontend: every operation is invoked on
/// both backends through the typed-test mechanism, asserting identical
/// results. Deeper per-operation semantics live in the dedicated test files.

#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexArrayType;
using grb::NoAccumulate;
using grb::NoMask;

template <typename Tag>
struct FrontendSmoke : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(FrontendSmoke, Backends);

template <typename Tag>
grb::Matrix<double, Tag> small_graph() {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 -> 2
  grb::Matrix<double, Tag> a(4, 4);
  a.build({0, 0, 1, 2, 3}, {1, 2, 2, 0, 2}, {1, 2, 3, 4, 5});
  return a;
}

TYPED_TEST(FrontendSmoke, BuildAndAccessors) {
  auto a = small_graph<TypeParam>();
  EXPECT_EQ(a.nrows(), 4u);
  EXPECT_EQ(a.ncols(), 4u);
  EXPECT_EQ(a.nvals(), 5u);
  EXPECT_TRUE(a.hasElement(0, 1));
  EXPECT_FALSE(a.hasElement(1, 0));
  EXPECT_DOUBLE_EQ(a.extractElement(3, 2), 5.0);
  EXPECT_THROW(a.extractElement(1, 0), grb::NoValueException);
  EXPECT_THROW(a.extractElement(4, 0), grb::IndexOutOfBoundsException);
}

TYPED_TEST(FrontendSmoke, MxvArithmetic) {
  auto a = small_graph<TypeParam>();
  grb::Vector<double, TypeParam> u(std::vector<double>{1, 1, 1, 1}, 0.0);
  grb::Vector<double, TypeParam> w(4);
  grb::mxv(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{}, a,
           u);
  EXPECT_DOUBLE_EQ(w.extractElement(0), 3.0);
  EXPECT_DOUBLE_EQ(w.extractElement(1), 3.0);
  EXPECT_DOUBLE_EQ(w.extractElement(2), 4.0);
  EXPECT_DOUBLE_EQ(w.extractElement(3), 5.0);
}

TYPED_TEST(FrontendSmoke, MxmMatchesHandComputed) {
  auto a = small_graph<TypeParam>();
  grb::Matrix<double, TypeParam> c(4, 4);
  grb::mxm(c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{}, a,
           a);
  // A^2: row0: 0->1->2 (1*3=3), 0->2->0 (2*4=8)
  EXPECT_DOUBLE_EQ(c.extractElement(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(c.extractElement(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 0), 12.0);  // 1->2->0
  EXPECT_DOUBLE_EQ(c.extractElement(2, 1), 4.0);   // 2->0->1
  EXPECT_DOUBLE_EQ(c.extractElement(2, 2), 8.0);   // 2->0->2
  EXPECT_DOUBLE_EQ(c.extractElement(3, 0), 20.0);  // 3->2->0
  EXPECT_EQ(c.nvals(), 6u);
}

TYPED_TEST(FrontendSmoke, VxmWithTransposeEqualsMxv) {
  auto a = small_graph<TypeParam>();
  grb::Vector<double, TypeParam> u(std::vector<double>{1, 0, 2, 0}, 0.0);
  grb::Vector<double, TypeParam> w1(4), w2(4);
  grb::mxv(w1, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{}, a,
           u);
  grb::vxm(w2, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{}, u,
           grb::transpose(a));
  EXPECT_EQ(w1, w2);
}

TYPED_TEST(FrontendSmoke, EwiseAddAndMult) {
  grb::Matrix<double, TypeParam> a({{1, 0}, {2, 3}}, 0.0);
  grb::Matrix<double, TypeParam> b({{5, 6}, {0, 7}}, 0.0);
  grb::Matrix<double, TypeParam> sum(2, 2), prod(2, 2);
  grb::eWiseAdd(sum, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, a, b);
  grb::eWiseMult(prod, NoMask{}, NoAccumulate{}, grb::Times<double>{}, a, b);
  EXPECT_DOUBLE_EQ(sum.extractElement(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sum.extractElement(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(sum.extractElement(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(sum.extractElement(1, 1), 10.0);
  EXPECT_EQ(prod.nvals(), 2u);
  EXPECT_DOUBLE_EQ(prod.extractElement(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(prod.extractElement(1, 1), 21.0);
}

TYPED_TEST(FrontendSmoke, ApplyReduceTranspose) {
  auto a = small_graph<TypeParam>();
  grb::Matrix<double, TypeParam> doubled(4, 4);
  grb::apply(doubled, NoMask{}, NoAccumulate{},
             grb::BindSecond<double, grb::Times<double>>{2.0}, a);
  EXPECT_DOUBLE_EQ(doubled.extractElement(3, 2), 10.0);

  grb::Vector<double, TypeParam> row_sums(4);
  grb::reduce(row_sums, NoMask{}, NoAccumulate{}, grb::PlusMonoid<double>{},
              a);
  EXPECT_DOUBLE_EQ(row_sums.extractElement(0), 3.0);
  EXPECT_FALSE(row_sums.hasElement(1) && false);

  double total = 0;
  grb::reduce(total, NoAccumulate{}, grb::PlusMonoid<double>{}, a);
  EXPECT_DOUBLE_EQ(total, 15.0);

  grb::Matrix<double, TypeParam> at(4, 4);
  grb::transpose(at, NoMask{}, NoAccumulate{}, a);
  EXPECT_DOUBLE_EQ(at.extractElement(2, 3), 5.0);
  EXPECT_EQ(at.nvals(), 5u);
}

TYPED_TEST(FrontendSmoke, MaskedMxvWithComplementAndReplace) {
  auto a = small_graph<TypeParam>();
  grb::Vector<double, TypeParam> u(std::vector<double>{1, 1, 1, 1}, 0.0);
  grb::Vector<bool, TypeParam> visited(4);
  visited.setElement(0, true);
  grb::Vector<double, TypeParam> w(4);
  w.setElement(0, 99.0);
  w.setElement(3, 42.0);
  // Only unvisited positions get results; Replace wipes the rest.
  grb::mxv(w, grb::complement(visited), NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  EXPECT_FALSE(w.hasElement(0));  // masked out and replaced
  EXPECT_DOUBLE_EQ(w.extractElement(1), 3.0);
  EXPECT_DOUBLE_EQ(w.extractElement(3), 5.0);
}

TYPED_TEST(FrontendSmoke, ExtractAssignRoundTrip) {
  auto a = small_graph<TypeParam>();
  grb::Matrix<double, TypeParam> sub(2, 2);
  grb::extract(sub, NoMask{}, NoAccumulate{}, a, {0, 3}, {1, 2});
  EXPECT_DOUBLE_EQ(sub.extractElement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sub.extractElement(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(sub.extractElement(1, 1), 5.0);
  EXPECT_EQ(sub.nvals(), 3u);

  grb::Matrix<double, TypeParam> c(4, 4);
  grb::assign(c, NoMask{}, NoAccumulate{}, sub, {1, 2}, {0, 3});
  EXPECT_DOUBLE_EQ(c.extractElement(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.extractElement(1, 3), 2.0);
  EXPECT_DOUBLE_EQ(c.extractElement(2, 3), 5.0);
}

TYPED_TEST(FrontendSmoke, KroneckerAndSelect) {
  grb::Matrix<double, TypeParam> a({{1, 2}, {0, 3}}, 0.0);
  grb::Matrix<double, TypeParam> k(4, 4);
  grb::kronecker(k, NoMask{}, NoAccumulate{}, grb::Times<double>{}, a, a);
  EXPECT_DOUBLE_EQ(k.extractElement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(k.extractElement(0, 3), 4.0);
  EXPECT_DOUBLE_EQ(k.extractElement(3, 3), 9.0);
  EXPECT_EQ(k.nvals(), 9u);

  grb::Matrix<double, TypeParam> upper(4, 4);
  grb::select(upper, NoMask{}, NoAccumulate{},
              [](grb::IndexType i, grb::IndexType j, double) { return j > i; },
              k);
  EXPECT_TRUE(upper.hasElement(0, 3));
  EXPECT_FALSE(upper.hasElement(3, 3));
}

TYPED_TEST(FrontendSmoke, DimensionChecksThrow) {
  grb::Matrix<double, TypeParam> a(3, 4), b(3, 4), c(3, 3);
  grb::Vector<double, TypeParam> u(3), w(4);
  EXPECT_THROW(grb::mxm(c, NoMask{}, NoAccumulate{},
                        grb::ArithmeticSemiring<double>{}, a, b),
               grb::DimensionException);
  EXPECT_THROW(grb::mxv(w, NoMask{}, NoAccumulate{},
                        grb::ArithmeticSemiring<double>{}, a, w),
               grb::DimensionException);
  EXPECT_THROW(grb::eWiseAdd(u, NoMask{}, NoAccumulate{}, grb::Plus<double>{},
                             u, w),
               grb::DimensionException);
}

}  // namespace
