/// Matrix-op write-semantics sweep: every combination of
///   mask kind   {none, value, structure, complement(value),
///                complement(structure)}
/// x accumulate  {none, Plus}
/// x output ctl  {Merge, Replace}
/// is run for mxm, eWiseAdd and eWiseMult on MATRIX outputs, differentially:
/// the GpuSim backend must produce the sequential backend's result pattern-
/// and value-exactly. (The sequential backend's own semantics are pinned
/// against an independent reference model in test_mask_sweep.cpp.)

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexType;

enum class MaskKind {
  None,
  Value,
  Structure,
  ComplementValue,
  ComplementStructure
};
enum class AccumKind { None, Plus };
enum class OpKind { Mxm, EwiseAdd, EwiseMult };

constexpr std::size_t kDim = 8;

template <typename Tag>
struct Problem {
  grb::Matrix<double, Tag> c0{kDim, kDim};
  grb::Matrix<double, Tag> a{kDim, kDim};
  grb::Matrix<double, Tag> b{kDim, kDim};
  grb::Matrix<bool, Tag> mask{kDim, kDim};
};

/// Materialize the same random problem for either backend.
template <typename Tag>
Problem<Tag> make_problem(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-4.0, 4.0);
  std::bernoulli_distribution keep(0.4), truthy(0.5);
  Problem<Tag> p;
  for (IndexType i = 0; i < kDim; ++i)
    for (IndexType j = 0; j < kDim; ++j) {
      if (keep(rng)) p.c0.setElement(i, j, val(rng));
      if (keep(rng)) p.a.setElement(i, j, val(rng));
      if (keep(rng)) p.b.setElement(i, j, val(rng));
      if (keep(rng)) p.mask.setElement(i, j, truthy(rng));
    }
  return p;
}

template <typename Tag>
void run_op(Problem<Tag>& p, OpKind op, MaskKind mk, AccumKind ak,
            grb::OutputControl outp) {
  auto call = [&](const auto& m, const auto& acc) {
    switch (op) {
      case OpKind::Mxm:
        grb::mxm(p.c0, m, acc, grb::ArithmeticSemiring<double>{}, p.a, p.b,
                 outp);
        break;
      case OpKind::EwiseAdd:
        grb::eWiseAdd(p.c0, m, acc, grb::Plus<double>{}, p.a, p.b, outp);
        break;
      case OpKind::EwiseMult:
        grb::eWiseMult(p.c0, m, acc, grb::Times<double>{}, p.a, p.b, outp);
        break;
    }
  };
  auto with_mask = [&](const auto& acc) {
    switch (mk) {
      case MaskKind::None: call(grb::NoMask{}, acc); break;
      case MaskKind::Value: call(p.mask, acc); break;
      case MaskKind::Structure: call(grb::structure(p.mask), acc); break;
      case MaskKind::ComplementValue:
        call(grb::complement(p.mask), acc);
        break;
      case MaskKind::ComplementStructure:
        call(grb::complement(grb::structure(p.mask)), acc);
        break;
    }
  };
  if (ak == AccumKind::None)
    with_mask(grb::NoAccumulate{});
  else
    with_mask(grb::Plus<double>{});
}

void expect_same(const grb::Matrix<double, grb::GpuSim>& got,
                 const grb::Matrix<double, grb::Sequential>& want,
                 const std::string& label) {
  ASSERT_EQ(got.nvals(), want.nvals()) << label;
  for (IndexType i = 0; i < kDim; ++i)
    for (IndexType j = 0; j < kDim; ++j) {
      ASSERT_EQ(got.hasElement(i, j), want.hasElement(i, j))
          << label << " at (" << i << "," << j << ")";
      if (want.hasElement(i, j)) {
        EXPECT_DOUBLE_EQ(got.extractElement(i, j), want.extractElement(i, j))
            << label << " at (" << i << "," << j << ")";
      }
    }
}

using Combo = std::tuple<int /*op*/, int /*mask*/, int /*accum*/,
                         int /*replace*/, unsigned /*seed*/>;

class MatrixMaskSweep : public ::testing::TestWithParam<Combo> {};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  static const char* op_names[] = {"Mxm", "EwiseAdd", "EwiseMult"};
  static const char* mask_names[] = {"NoMask", "Value", "Structure",
                                     "ComplValue", "ComplStructure"};
  return std::string(op_names[std::get<0>(info.param)]) + "_" +
         mask_names[std::get<1>(info.param)] +
         (std::get<2>(info.param) ? "_PlusAccum" : "_NoAccum") +
         (std::get<3>(info.param) ? "_Replace" : "_Merge") + "_s" +
         std::to_string(std::get<4>(info.param));
}

TEST_P(MatrixMaskSweep, GpuMatchesSequential) {
  const auto [opi, mki, aki, repi, seed] = GetParam();
  const auto op = static_cast<OpKind>(opi);
  const auto mk = static_cast<MaskKind>(mki);
  const auto ak = static_cast<AccumKind>(aki);
  const auto outp = repi ? grb::Replace : grb::Merge;

  const unsigned s = seed * 7919u + opi * 1031u + mki * 131u + aki * 17u +
                     repi;
  auto seq = make_problem<grb::Sequential>(s);
  auto gpu = make_problem<grb::GpuSim>(s);

  run_op(seq, op, mk, ak, outp);
  run_op(gpu, op, mk, ak, outp);

  expect_same(gpu.c0, seq.c0, combo_name(::testing::TestParamInfo<Combo>(
                                  GetParam(), 0)));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MatrixMaskSweep,
    ::testing::Combine(::testing::Range(0, 3),   // op kinds
                       ::testing::Range(0, 5),   // mask kinds
                       ::testing::Range(0, 2),   // accum kinds
                       ::testing::Range(0, 2),   // merge/replace
                       ::testing::Values(1u, 2u)),
    combo_name);

}  // namespace
