/// Graph toolkit tests: generators produce the documented shapes, the
/// transforms preserve invariants, and Matrix Market I/O round-trips.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"
#include "graph/mmio.hpp"

namespace {

using gbtl_graph::EdgeList;
using gbtl_graph::Index;

TEST(Generators, PathCycleStarComplete) {
  EXPECT_EQ(gbtl_graph::path(5).num_edges(), 4u);
  EXPECT_EQ(gbtl_graph::cycle(5).num_edges(), 5u);
  EXPECT_EQ(gbtl_graph::star(5).num_edges(), 8u);
  EXPECT_EQ(gbtl_graph::complete(5).num_edges(), 20u);
  EXPECT_EQ(gbtl_graph::path(1).num_edges(), 0u);
}

TEST(Generators, Grid2dDegreesAndSymmetry) {
  auto g = gbtl_graph::grid2d(3, 4);
  EXPECT_EQ(g.num_vertices, 12u);
  // Interior degree 4, corner degree 2; symmetric edge count:
  // horizontal 3*3, vertical 2*4 -> 17 undirected -> 34 directed.
  EXPECT_EQ(g.num_edges(), 34u);
  std::set<std::pair<Index, Index>> edges;
  for (Index e = 0; e < g.num_edges(); ++e)
    edges.emplace(g.src[e], g.dst[e]);
  for (const auto& [s, d] : edges)
    EXPECT_TRUE(edges.count({d, s})) << s << "->" << d;
}

TEST(Generators, RmatShapeAndDeterminism) {
  auto a = gbtl_graph::rmat(8, 8, 42);
  EXPECT_EQ(a.num_vertices, 256u);
  EXPECT_EQ(a.num_edges(), 2048u);
  auto b = gbtl_graph::rmat(8, 8, 42);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
  auto c = gbtl_graph::rmat(8, 8, 43);
  EXPECT_NE(a.src, c.src);
}

TEST(Generators, RmatIsSkewed) {
  // Power-law-ish: the max out-degree should far exceed the average.
  auto g = gbtl_graph::rmat(10, 16, 7);
  auto deg = gbtl_graph::out_degrees(g);
  Index max_deg = 0;
  for (Index d : deg) max_deg = std::max(max_deg, d);
  EXPECT_GT(max_deg, 16u * 4);  // avg is 16
}

TEST(Generators, ErdosRenyiBounds) {
  auto g = gbtl_graph::erdos_renyi(100, 500, 3);
  EXPECT_EQ(g.num_vertices, 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  for (Index e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(g.src[e], 100u);
    EXPECT_LT(g.dst[e], 100u);
  }
}

TEST(Transforms, SymmetrizeMakesSymmetric) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::rmat(6, 4, 9));
  std::set<std::pair<Index, Index>> edges;
  for (Index e = 0; e < g.num_edges(); ++e)
    edges.emplace(g.src[e], g.dst[e]);
  for (const auto& [s, d] : edges) EXPECT_TRUE(edges.count({d, s}));
}

TEST(Transforms, RemoveSelfLoopsAndDeduplicate) {
  EdgeList g;
  g.num_vertices = 3;
  g.src = {0, 0, 1, 1, 2};
  g.dst = {0, 1, 2, 2, 2};
  auto no_loops = gbtl_graph::remove_self_loops(g);
  EXPECT_EQ(no_loops.num_edges(), 3u);  // drops 0->0 and 2->2
  auto dedup = gbtl_graph::deduplicate(no_loops);
  EXPECT_EQ(dedup.num_edges(), 2u);  // 1->2 collapses
}

TEST(Transforms, DeduplicateSumsWeights) {
  EdgeList g;
  g.num_vertices = 2;
  g.src = {0, 0};
  g.dst = {1, 1};
  g.weight = {2.5, 4.0};
  auto d = gbtl_graph::deduplicate(g);
  ASSERT_EQ(d.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(d.weight[0], 6.5);
}

TEST(Transforms, LowerTriangleAndWeights) {
  auto g = gbtl_graph::symmetrize(gbtl_graph::complete(4));
  auto l = gbtl_graph::lower_triangle(g);
  EXPECT_EQ(l.num_edges(), 6u);
  for (Index e = 0; e < l.num_edges(); ++e) EXPECT_GT(l.src[e], l.dst[e]);

  auto w = gbtl_graph::with_random_weights(l, 1.0, 9.0, 5);
  ASSERT_TRUE(w.weighted());
  for (double x : w.weight) {
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 9.0);
  }
}

TEST(Mmio, WriteReadRoundTrip) {
  auto g = gbtl_graph::with_random_weights(
      gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(20, 50, 2)), 0.5, 2.0,
      8);
  std::stringstream ss;
  gbtl_graph::write_matrix_market(ss, g);
  auto back = gbtl_graph::read_matrix_market(ss);
  EXPECT_EQ(back.num_vertices, g.num_vertices);
  EXPECT_EQ(back.src, g.src);
  EXPECT_EQ(back.dst, g.dst);
  ASSERT_EQ(back.weight.size(), g.weight.size());
  for (Index e = 0; e < g.num_edges(); ++e)
    EXPECT_NEAR(back.weight[e], g.weight[e], 1e-6);
}

TEST(Mmio, ReadsPatternAndSymmetric) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% a comment\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  auto g = gbtl_graph::read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices, 3u);
  EXPECT_EQ(g.num_edges(), 4u);  // both triangles expanded
  EXPECT_FALSE(g.weighted());
}

TEST(Mmio, RejectsMalformedInput) {
  std::stringstream no_banner("3 3 1\n1 1 1\n");
  EXPECT_THROW(gbtl_graph::read_matrix_market(no_banner),
               gbtl_graph::MatrixMarketError);
  std::stringstream bad_field(
      "%%MatrixMarket matrix coordinate complex general\n3 3 0\n");
  EXPECT_THROW(gbtl_graph::read_matrix_market(bad_field),
               gbtl_graph::MatrixMarketError);
  std::stringstream oob(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_THROW(gbtl_graph::read_matrix_market(oob),
               gbtl_graph::MatrixMarketError);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 5.0\n");
  EXPECT_THROW(gbtl_graph::read_matrix_market(truncated),
               gbtl_graph::MatrixMarketError);
}

TEST(GraphMatrix, ToMatrixRoundTrip) {
  auto g = gbtl_graph::with_random_weights(
      gbtl_graph::deduplicate(gbtl_graph::erdos_renyi(16, 40, 4)), 1.0, 5.0,
      6);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  EXPECT_EQ(a.nvals(), g.num_edges());
  auto back = gbtl_graph::to_edge_list(a);
  EXPECT_EQ(back.src, g.src);
  EXPECT_EQ(back.dst, g.dst);
}

TEST(GraphMatrix, UnweightedEdgesGetOnes) {
  auto g = gbtl_graph::path(3);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  EXPECT_DOUBLE_EQ(a.extractElement(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.extractElement(1, 2), 1.0);
}

}  // namespace
