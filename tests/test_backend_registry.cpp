/// Backend registry: the three built-in backends are discoverable by name,
/// duplicate registration is rejected, unknown-name diagnostics list what IS
/// registered, every backend's raw buffer hooks round-trip bytes, and — at
/// compile time — every registered backend exposes the complete op table
/// (the static_asserts below fail the build if a backend loses an entry).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gbtl/backend_registry.hpp"

namespace {

using grb::CpuPar;
using grb::GpuSim;
using grb::Sequential;
using grb::backend::BackendInfo;
using grb::backend::OpTable;
using grb::backend::Registry;
using grb::backend::backend_name;
using grb::backend::kOpTableEntries;
using grb::backend::missing_ops;
using grb::backend::op_table_of;

// --------------------------------------------------------------------------
// Compile-time completeness: all three backends implement the full op table.
// --------------------------------------------------------------------------

static_assert(op_table_of<Sequential>().complete(),
              "Sequential backend is missing an op-table entry");
static_assert(op_table_of<CpuPar>().complete(),
              "CpuPar backend is missing an op-table entry");
static_assert(op_table_of<GpuSim>().complete(),
              "GpuSim backend is missing an op-table entry");

// A handful of individual probes, so a regression pinpoints the op even in
// a build log without the missing_ops() diagnostic.
static_assert(op_table_of<CpuPar>().vxm && op_table_of<CpuPar>().mxm &&
              op_table_of<CpuPar>().kronecker &&
              op_table_of<CpuPar>().assign_mat_constant);

TEST(BackendRegistry, BuiltinsAreRegisteredInGrowthOrder) {
  const auto names = Registry::instance().names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "sequential");
  EXPECT_EQ(names[1], "gpusim");
  EXPECT_EQ(names[2], "cpupar");
}

TEST(BackendRegistry, FindReturnsEntryOrNull) {
  auto& reg = Registry::instance();
  for (const char* name : {"sequential", "cpupar", "gpusim"}) {
    const BackendInfo* info = reg.find(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->name, name);
    EXPECT_TRUE(info->ops.complete()) << name;
  }
  EXPECT_EQ(reg.find("opencl"), nullptr);
  EXPECT_EQ(reg.find(""), nullptr);
}

TEST(BackendRegistry, BackendNameMatchesRegistryKeys) {
  auto& reg = Registry::instance();
  EXPECT_NE(reg.find(backend_name<Sequential>()), nullptr);
  EXPECT_NE(reg.find(backend_name<CpuPar>()), nullptr);
  EXPECT_NE(reg.find(backend_name<GpuSim>()), nullptr);
}

TEST(BackendRegistry, RequireThrowsListingRegisteredBackends) {
  try {
    Registry::instance().require("does-not-exist");
    FAIL() << "require() accepted an unknown backend";
  } catch (const grb::InvalidValueException& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does-not-exist"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sequential"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cpupar"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gpusim"), std::string::npos) << msg;
  }
}

TEST(BackendRegistry, DuplicateNameIsRejected) {
  auto& reg = Registry::instance();
  // A built-in name can never be re-registered...
  EXPECT_THROW(reg.register_backend(BackendInfo{"sequential", {}, {}}),
               grb::InvalidValueException);
  // ...and a fresh name registers exactly once.
  BackendInfo toy;
  toy.name = "toy-dup-check";
  toy.buffers = grb::backend::detail::kHostBufferOps;
  const BackendInfo& registered = reg.register_backend(toy);
  EXPECT_EQ(registered.name, "toy-dup-check");
  EXPECT_NE(reg.find("toy-dup-check"), nullptr);
  EXPECT_THROW(reg.register_backend(BackendInfo{"toy-dup-check", {}, {}}),
               grb::InvalidValueException);
}

TEST(BackendRegistry, MissingOpsNamesEveryAbsentEntry) {
  EXPECT_TRUE(missing_ops(op_table_of<CpuPar>()).empty());
  OpTable empty;
  const auto missing = missing_ops(empty);
  EXPECT_EQ(missing.size(), kOpTableEntries.size());
  OpTable partial;
  partial.mxm = true;
  const auto rest = missing_ops(partial);
  EXPECT_EQ(rest.size(), kOpTableEntries.size() - 1);
  for (const char* name : rest) EXPECT_STRNE(name, "mxm");
}

TEST(BackendRegistry, BufferHooksRoundTripBytes) {
  for (const char* name : {"sequential", "cpupar", "gpusim"}) {
    const BackendInfo& info = Registry::instance().require(name);
    ASSERT_NE(info.buffers.alloc, nullptr) << name;
    ASSERT_NE(info.buffers.release, nullptr) << name;
    ASSERT_NE(info.buffers.set, nullptr) << name;
    ASSERT_NE(info.buffers.get, nullptr) << name;
    ASSERT_NE(info.buffers.synchronize, nullptr) << name;

    constexpr std::size_t kBytes = 257;  // deliberately odd-sized
    std::vector<unsigned char> src(kBytes), back(kBytes, 0);
    for (std::size_t i = 0; i < kBytes; ++i)
      src[i] = static_cast<unsigned char>((i * 37 + 11) & 0xff);

    void* buf = info.buffers.alloc(kBytes);
    ASSERT_NE(buf, nullptr) << name;
    info.buffers.set(buf, src.data(), kBytes);
    info.buffers.synchronize();
    info.buffers.get(back.data(), buf, kBytes);
    EXPECT_EQ(std::memcmp(src.data(), back.data(), kBytes), 0) << name;
    info.buffers.release(buf);
  }
}

TEST(BackendRegistry, GpuSimBufferHooksAccountOnTheBoundDevice) {
  const BackendInfo& info = Registry::instance().require("gpusim");
  const auto before = gpu_sim::device().stats().bytes_in_use;
  void* buf = info.buffers.alloc(1024);
  EXPECT_GE(gpu_sim::device().stats().bytes_in_use, before + 1024)
      << "gpusim alloc hook bypassed the bound device's accounting";
  info.buffers.release(buf);
  EXPECT_EQ(gpu_sim::device().stats().bytes_in_use, before);
}

}  // namespace
