/// Sparse-format substrate tests: conversions round-trip, all formats'
/// SpMV agree (host and device-modeled), and the structural properties the
/// format ablation rests on (ELL padding blow-up on skewed degrees).

#include <gtest/gtest.h>

#include <random>

#include "sparse/formats.hpp"
#include "sparse/spmv_device.hpp"

namespace {

using sparse::Coo;
using sparse::Csc;
using sparse::Csr;
using sparse::Ell;
using sparse::Index;

Coo<double> example_coo() {
  // 4x5:
  // [1 . 2 . .]
  // [. . . . 3]
  // [. 4 . 5 .]
  // [. . . . .]
  Coo<double> a;
  a.nrows = 4;
  a.ncols = 5;
  a.row = {0, 0, 1, 2, 2};
  a.col = {0, 2, 4, 1, 3};
  a.val = {1, 2, 3, 4, 5};
  return a;
}

Coo<double> random_coo(Index n, Index m, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<Index> pick(0, n - 1);
  std::uniform_real_distribution<double> w(-2.0, 2.0);
  Coo<double> a;
  a.nrows = a.ncols = n;
  for (Index k = 0; k < m; ++k) {
    a.row.push_back(pick(rng));
    a.col.push_back(pick(rng));
    a.val.push_back(w(rng));
  }
  return sparse::canonicalize(std::move(a));
}

std::vector<double> random_x(Index n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> w(-1.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = w(rng);
  return x;
}

TEST(SparseFormats, CanonicalizeSortsAndCombinesDuplicates) {
  Coo<double> a;
  a.nrows = a.ncols = 3;
  a.row = {2, 0, 2, 0};
  a.col = {1, 2, 1, 2};
  a.val = {1, 5, 2, 7};
  auto c = sparse::canonicalize(std::move(a));
  ASSERT_EQ(c.nnz(), 2u);
  EXPECT_EQ(c.row[0], 0u);
  EXPECT_EQ(c.col[0], 2u);
  EXPECT_DOUBLE_EQ(c.val[0], 12.0);
  EXPECT_DOUBLE_EQ(c.val[1], 3.0);
}

TEST(SparseFormats, CooCsrRoundTrip) {
  auto coo = example_coo();
  auto csr = sparse::coo_to_csr(coo);
  EXPECT_EQ(csr.row_offsets,
            (std::vector<Index>{0, 2, 3, 5, 5}));
  auto back = sparse::csr_to_coo(csr);
  EXPECT_EQ(back.row, coo.row);
  EXPECT_EQ(back.col, coo.col);
  EXPECT_EQ(back.val, coo.val);
}

TEST(SparseFormats, CsrCscRoundTrip) {
  auto csr = sparse::coo_to_csr(example_coo());
  auto csc = sparse::csr_to_csc(csr);
  EXPECT_EQ(csc.col_offsets, (std::vector<Index>{0, 1, 2, 3, 4, 5}));
  auto back = sparse::csc_to_csr(csc);
  EXPECT_EQ(back.row_offsets, csr.row_offsets);
  EXPECT_EQ(back.col_indices, csr.col_indices);
  EXPECT_EQ(back.values, csr.values);
}

TEST(SparseFormats, CsrEllRoundTrip) {
  auto csr = sparse::coo_to_csr(example_coo());
  auto ell = sparse::csr_to_ell(csr);
  EXPECT_EQ(ell.width, 2u);  // max row degree
  EXPECT_EQ(ell.nnz(), 5u);
  auto back = sparse::ell_to_csr(ell);
  EXPECT_EQ(back.row_offsets, csr.row_offsets);
  EXPECT_EQ(back.col_indices, csr.col_indices);
  EXPECT_EQ(back.values, csr.values);
}

TEST(SparseFormats, EllFillRatioExplodesOnSkewedDegrees) {
  // A star row: one row with 100 entries, 99 rows with 1.
  Coo<double> a;
  a.nrows = a.ncols = 100;
  for (Index j = 0; j < 100; ++j) {
    a.row.push_back(0);
    a.col.push_back(j);
    a.val.push_back(1.0);
  }
  for (Index i = 1; i < 100; ++i) {
    a.row.push_back(i);
    a.col.push_back(0);
    a.val.push_back(1.0);
  }
  auto ell = sparse::csr_to_ell(sparse::coo_to_csr(sparse::canonicalize(a)));
  EXPECT_EQ(ell.width, 100u);
  EXPECT_GT(ell.fill_ratio(), 40.0);  // ~50x padding — Abl. A's point
}

TEST(SparseFormats, HybSplitsAtWidthAndRoundTrips) {
  // Row 0 has 5 entries, rows 1-3 have 1 each: with width 2 the tail holds
  // the 3 overflow entries of row 0.
  Coo<double> a;
  a.nrows = 4;
  a.ncols = 8;
  a.row = {0, 0, 0, 0, 0, 1, 2, 3};
  a.col = {0, 1, 2, 3, 4, 5, 6, 7};
  a.val = {1, 2, 3, 4, 5, 6, 7, 8};
  auto csr = sparse::coo_to_csr(sparse::canonicalize(a));
  auto hyb = sparse::csr_to_hyb(csr, 2);
  EXPECT_EQ(hyb.ell.width, 2u);
  EXPECT_EQ(hyb.tail.nnz(), 3u);
  EXPECT_EQ(hyb.nnz(), 8u);
  auto back = sparse::hyb_to_csr(hyb);
  EXPECT_EQ(back.row_offsets, csr.row_offsets);
  EXPECT_EQ(back.col_indices, csr.col_indices);
  EXPECT_EQ(back.values, csr.values);
}

TEST(SparseFormats, HybAutoWidthIsMeanDegree) {
  auto csr = sparse::coo_to_csr(sparse::canonicalize(example_coo()));
  auto hyb = sparse::csr_to_hyb(csr);  // 5 nnz / 4 rows -> ceil = 2
  EXPECT_EQ(hyb.ell.width, 2u);
}

TEST(SparseSpmv, HybMatchesCsrHostAndDevice) {
  auto coo = random_coo(56, 420, 6);
  auto csr = sparse::coo_to_csr(coo);
  auto hyb = sparse::csr_to_hyb(csr);
  auto x = random_x(56, 7);
  const auto expect = sparse::spmv(csr, x);
  const auto host = sparse::spmv(hyb, x);
  gpu_sim::Context ctx;
  const auto dev = sparse::spmv_device(hyb, x, ctx);
  for (Index i = 0; i < 56; ++i) {
    EXPECT_NEAR(host[i], expect[i], 1e-12);
    EXPECT_NEAR(dev[i], expect[i], 1e-12);
  }
}

TEST(SparseSpmv, HybBoundsPaddingOnSkewedInput) {
  // The star-row matrix that kills ELL: HYB's slab stays at the mean
  // degree, so its simulated SpMV time is far below pure ELL's.
  // Large enough that slab traffic, not launch overhead, dominates.
  constexpr Index kN = 2048;
  Coo<double> a;
  a.nrows = a.ncols = kN;
  for (Index j = 1; j < kN; ++j) {
    a.row.push_back(0);
    a.col.push_back(j);
    a.val.push_back(1.0);
    a.row.push_back(j);
    a.col.push_back(0);
    a.val.push_back(1.0);
  }
  auto csr = sparse::coo_to_csr(sparse::canonicalize(a));
  auto ell = sparse::csr_to_ell(csr);
  auto hyb = sparse::csr_to_hyb(csr);
  auto x = random_x(kN, 8);
  gpu_sim::Context c_ell, c_hyb;
  const auto y_ell = sparse::spmv_device(ell, x, c_ell);
  const auto y_hyb = sparse::spmv_device(hyb, x, c_hyb);
  for (Index i = 0; i < kN; ++i) EXPECT_NEAR(y_hyb[i], y_ell[i], 1e-12);
  EXPECT_LT(c_hyb.stats().simulated_kernel_time_s,
            c_ell.stats().simulated_kernel_time_s / 4.0);
}

TEST(SparseSpmv, AllHostFormatsAgree) {
  auto coo = random_coo(64, 400, 1);
  auto csr = sparse::coo_to_csr(coo);
  auto csc = sparse::csr_to_csc(csr);
  auto ell = sparse::csr_to_ell(csr);
  auto x = random_x(64, 2);
  const auto y = sparse::spmv(csr, x);
  const auto y_coo = sparse::spmv(coo, x);
  const auto y_csc = sparse::spmv(csc, x);
  const auto y_ell = sparse::spmv(ell, x);
  for (Index i = 0; i < 64; ++i) {
    EXPECT_NEAR(y[i], y_coo[i], 1e-12);
    EXPECT_NEAR(y[i], y_csc[i], 1e-12);
    EXPECT_NEAR(y[i], y_ell[i], 1e-12);
  }
}

TEST(SparseSpmv, DeviceKernelsMatchHost) {
  auto coo = random_coo(48, 300, 3);
  auto csr = sparse::coo_to_csr(coo);
  auto csc = sparse::csr_to_csc(csr);
  auto ell = sparse::csr_to_ell(csr);
  auto x = random_x(48, 4);
  const auto expect = sparse::spmv(csr, x);

  gpu_sim::Context ctx;
  for (const auto& y : {sparse::spmv_device(csr, x, ctx),
                        sparse::spmv_device(coo, x, ctx),
                        sparse::spmv_device(csc, x, ctx),
                        sparse::spmv_device(ell, x, ctx)}) {
    for (Index i = 0; i < 48; ++i) EXPECT_NEAR(y[i], expect[i], 1e-12);
  }
}

TEST(SparseSpmv, DeviceCostModelRanksEllWorstOnSkewed) {
  // Star-like matrix: ELL must charge for padding, CSR must not.
  Coo<double> a;
  a.nrows = a.ncols = 256;
  for (Index j = 0; j < 256; ++j) {
    if (j != 0) {
      a.row.push_back(0);
      a.col.push_back(j);
      a.val.push_back(1.0);
    }
  }
  for (Index i = 1; i < 256; ++i) {
    a.row.push_back(i);
    a.col.push_back(0);
    a.val.push_back(1.0);
  }
  auto canon = sparse::canonicalize(a);
  auto csr = sparse::coo_to_csr(canon);
  auto ell = sparse::csr_to_ell(csr);
  auto x = random_x(256, 5);

  gpu_sim::Context c1, c2;
  sparse::spmv_device(csr, x, c1);
  sparse::spmv_device(ell, x, c2);
  EXPECT_LT(c1.stats().simulated_kernel_time_s,
            c2.stats().simulated_kernel_time_s);
}

TEST(SparseSpmv, SizeMismatchThrows) {
  auto csr = sparse::coo_to_csr(example_coo());
  std::vector<double> wrong(3, 1.0);
  EXPECT_THROW(sparse::spmv(csr, wrong), std::invalid_argument);
}

}  // namespace
