/// Algebra tests: operator behaviour, monoid identity/associativity laws
/// (property-swept over random values), semiring annihilation, and the
/// compile-time concepts.

#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "gbtl/algebra.hpp"

namespace {

using grb::IndexType;

TEST(UnaryOps, Basics) {
  EXPECT_EQ(grb::Identity<int>{}(7), 7);
  EXPECT_EQ(grb::AdditiveInverse<int>{}(7), -7);
  EXPECT_DOUBLE_EQ(grb::MultiplicativeInverse<double>{}(4.0), 0.25);
  EXPECT_EQ(grb::LogicalNot<bool>{}(true), false);
  EXPECT_EQ(grb::LogicalNot<int>{}(0), 1);
  EXPECT_EQ(grb::Abs<int>{}(-3), 3);
  EXPECT_EQ(grb::Abs<int>{}(3), 3);
}

TEST(UnaryOps, Binders) {
  grb::BindSecond<double, grb::Times<double>> times2{2.0};
  EXPECT_DOUBLE_EQ(times2(21.0), 42.0);
  grb::BindFirst<double, grb::Minus<double>> from10{10.0};
  EXPECT_DOUBLE_EQ(from10(4.0), 6.0);
}

TEST(BinaryOps, SelectorsAndComparisons) {
  EXPECT_EQ(grb::First<int>{}(3, 9), 3);
  EXPECT_EQ(grb::Second<int>{}(3, 9), 9);
  EXPECT_EQ(grb::Min<int>{}(3, 9), 3);
  EXPECT_EQ(grb::Max<int>{}(3, 9), 9);
  EXPECT_EQ(grb::Equal<int>{}(4, 4), 1);
  EXPECT_EQ(grb::NotEqual<int>{}(4, 4), 0);
  EXPECT_EQ(grb::GreaterThan<int>{}(5, 4), 1);
  EXPECT_EQ(grb::LessThan<int>{}(5, 4), 0);
  EXPECT_EQ(grb::LogicalXor<int>{}(2, 0), 1);
  EXPECT_EQ(grb::LogicalXor<int>{}(2, 3), 0);
}

TEST(Monoids, Identities) {
  EXPECT_EQ(grb::PlusMonoid<int>{}.identity(), 0);
  EXPECT_EQ(grb::TimesMonoid<int>{}.identity(), 1);
  EXPECT_EQ(grb::MinMonoid<int>{}.identity(),
            std::numeric_limits<int>::max());
  EXPECT_EQ(grb::MaxMonoid<int>{}.identity(),
            std::numeric_limits<int>::lowest());
  EXPECT_EQ(grb::MinMonoid<double>{}.identity(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(grb::MaxMonoid<double>{}.identity(),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(grb::LogicalOrMonoid<bool>{}.identity(), false);
  EXPECT_EQ(grb::LogicalAndMonoid<bool>{}.identity(), true);
}

/// Property sweep: identity and associativity of every numeric monoid.
class MonoidLaws : public ::testing::TestWithParam<unsigned> {};

/// Logical monoids/semirings are algebras over {0, 1}: draw from the
/// boolean domain when `boolean_domain` is set, else from all integers.
template <typename M>
void check_monoid_laws(M m, unsigned seed, bool boolean_domain = false) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(boolean_domain ? 0 : -1000,
                                          boolean_domain ? 1 : 1000);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<typename M::result_type>(pick(rng));
    const auto b = static_cast<typename M::result_type>(pick(rng));
    const auto c = static_cast<typename M::result_type>(pick(rng));
    EXPECT_EQ(m(m.identity(), a), a);
    EXPECT_EQ(m(a, m.identity()), a);
    EXPECT_EQ(m(m(a, b), c), m(a, m(b, c)));
  }
}

TEST_P(MonoidLaws, PlusMonoid) {
  check_monoid_laws(grb::PlusMonoid<long long>{}, GetParam());
}
TEST_P(MonoidLaws, MinMonoid) {
  check_monoid_laws(grb::MinMonoid<long long>{}, GetParam());
}
TEST_P(MonoidLaws, MaxMonoid) {
  check_monoid_laws(grb::MaxMonoid<long long>{}, GetParam());
}
TEST_P(MonoidLaws, OrMonoid) {
  check_monoid_laws(grb::LogicalOrMonoid<long long>{}, GetParam(),
                    /*boolean_domain=*/true);
}
TEST_P(MonoidLaws, AndMonoid) {
  check_monoid_laws(grb::LogicalAndMonoid<long long>{}, GetParam(),
                    /*boolean_domain=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonoidLaws, ::testing::Values(1u, 2u, 3u));

/// Semiring laws: zero annihilates multiplication and is the additive
/// identity; distributivity for the arithmetic/tropical cases.
class SemiringLaws : public ::testing::TestWithParam<unsigned> {};

template <typename SR>
void check_semiring_laws(SR s, unsigned seed, bool check_distributive,
                         bool boolean_domain = false) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(boolean_domain ? 0 : -50,
                                          boolean_domain ? 1 : 50);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<typename SR::result_type>(pick(rng));
    const auto b = static_cast<typename SR::result_type>(pick(rng));
    const auto c = static_cast<typename SR::result_type>(pick(rng));
    EXPECT_EQ(s.add(s.zero(), a), a);
    EXPECT_EQ(s.add(a, s.zero()), a);
    if (check_distributive) {
      EXPECT_EQ(s.mult(a, s.add(b, c)), s.add(s.mult(a, b), s.mult(a, c)));
    }
  }
}

TEST_P(SemiringLaws, Arithmetic) {
  check_semiring_laws(grb::ArithmeticSemiring<long long>{}, GetParam(), true);
}
TEST_P(SemiringLaws, MinPlus) {
  // min distributes over +: a + min(b,c) == min(a+b, a+c)
  check_semiring_laws(grb::MinPlusSemiring<long long>{}, GetParam(), true);
}
TEST_P(SemiringLaws, MaxPlus) {
  check_semiring_laws(grb::MaxPlusSemiring<long long>{}, GetParam(), true);
}
TEST_P(SemiringLaws, Logical) {
  check_semiring_laws(grb::LogicalSemiring<long long>{}, GetParam(),
                      /*check_distributive=*/true, /*boolean_domain=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiringLaws, ::testing::Values(4u, 5u, 6u));

TEST(Semirings, SelectSemiringsCarryTheRightSide) {
  grb::MinSelect1stSemiring<int> s1;
  EXPECT_EQ(s1.mult(3, 99), 3);
  grb::MinSelect2ndSemiring<int> s2;
  EXPECT_EQ(s2.mult(3, 99), 99);
  grb::MaxSelect2ndSemiring<int> s3;
  EXPECT_EQ(s3.mult(3, 99), 99);
  EXPECT_EQ(s3.add(5, 7), 7);
}

TEST(Semirings, TropicalZeroIsInfinity) {
  grb::MinPlusSemiring<double> mp;
  EXPECT_EQ(mp.zero(), std::numeric_limits<double>::infinity());
  // Infinity is absorbing for min-plus "multiplication" (+).
  EXPECT_EQ(mp.mult(mp.zero(), 5.0), std::numeric_limits<double>::infinity());
}

TEST(Concepts, CompileTimeValidation) {
  static_assert(grb::UnaryOpFor<grb::Identity<int>, int>);
  static_assert(grb::BinaryOpFor<grb::Plus<double>, double>);
  static_assert(grb::MonoidFor<grb::PlusMonoid<int>, int>);
  static_assert(!grb::MonoidFor<grb::Plus<int>, int>);  // no identity()
  static_assert(grb::SemiringFor<grb::ArithmeticSemiring<float>, float>);
  static_assert(!grb::SemiringFor<grb::PlusMonoid<int>, int>);
  static_assert(grb::AccumulatorFor<grb::NoAccumulate, int>);
  static_assert(grb::AccumulatorFor<grb::Plus<int>, int>);
  SUCCEED();
}

}  // namespace
