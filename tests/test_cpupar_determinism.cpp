/// CpuPar determinism regression: the parallel CPU backend must produce
/// BYTE-identical results (stored pattern and raw value bits, memcmp) under
/// any worker count, across repeated runs, and against the Sequential
/// backend — the contract backend_cpupar/pool.hpp documents and the serving
/// layer's bit-exactness guarantee stands on. Unlike the differential fuzz
/// sweep this deliberately uses irrational real-valued weights, so any
/// cross-thread reassociation of a floating-point fold (which exact
/// integer-valued fuzzing cannot see) flips result bits here.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "backend_cpupar/pool.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/thread_pool.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;

constexpr std::size_t kWorkerCounts[] = {1, 2, 8};
constexpr int kRuns = 16;

struct Tuples {
  IndexArrayType idx;
  std::vector<double> vals;

  bool bytes_equal(const Tuples& other) const {
    return idx == other.idx && vals.size() == other.vals.size() &&
           std::memcmp(vals.data(), other.vals.data(),
                       vals.size() * sizeof(double)) == 0;
  }
};

/// Seeded uniform digraph with real-valued (non-integer) weights: sums over
/// these are inexact, so they detect any change in combination order.
template <typename Tag>
grb::Matrix<double, Tag> random_graph(unsigned seed, IndexType n,
                                      IndexType out_degree) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<IndexType> vertex(0, n - 1);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  IndexArrayType rows, cols;
  std::vector<double> vals;
  for (IndexType i = 0; i < n; ++i)
    for (IndexType d = 0; d < out_degree; ++d) {
      rows.push_back(i);
      cols.push_back(vertex(rng));
      vals.push_back(weight(rng));
    }
  grb::Matrix<double, Tag> a(n, n);
  a.build(rows, cols, vals, grb::Plus<double>{});  // merge duplicate cells
  return a;
}

template <typename Tag>
grb::Vector<double, Tag> random_vector(unsigned seed, IndexType n) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  std::bernoulli_distribution keep(0.7);
  grb::Vector<double, Tag> u(n);
  for (IndexType i = 0; i < n; ++i)
    if (keep(rng)) u.setElement(i, weight(rng));
  return u;
}

template <typename Tag>
Tuples run_pagerank(unsigned seed) {
  const auto a = random_graph<Tag>(seed, 300, 6);
  grb::Vector<double, Tag> rank(a.nrows());
  algorithms::pagerank(a, rank, 0.85, 1e-12, 40);
  Tuples t;
  rank.extractTuples(t.idx, t.vals);
  return t;
}

template <typename Tag>
Tuples run_vxm(unsigned seed) {
  const auto a = random_graph<Tag>(seed, 300, 6);
  const auto u = random_vector<Tag>(seed + 1, a.nrows());
  grb::Vector<double, Tag> w(a.ncols());
  grb::vxm(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, u, a);
  Tuples t;
  w.extractTuples(t.idx, t.vals);
  return t;
}

template <typename Tag>
Tuples run_mxm_reduce(unsigned seed) {
  // A*A then a row reduction: covers the Gustavson chunked path and the
  // row-parallel monoid fold in one go.
  const auto a = random_graph<Tag>(seed, 120, 5);
  grb::Matrix<double, Tag> c(a.nrows(), a.ncols());
  grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, a);
  grb::Vector<double, Tag> w(c.nrows());
  grb::reduce(w, grb::NoMask{}, grb::NoAccumulate{}, grb::PlusMonoid<double>{},
              c);
  Tuples t;
  w.extractTuples(t.idx, t.vals);
  return t;
}

class CpuParDeterminism : public ::testing::TestWithParam<unsigned> {};

/// Same graph + seed, 16 runs under pools of 1, 2, and 8 workers: every run
/// byte-identical to the Sequential reference.
TEST_P(CpuParDeterminism, PageRankByteIdenticalAcrossWorkerCounts) {
  const unsigned seed = 7100 + GetParam();
  const Tuples want = run_pagerank<grb::Sequential>(seed);
  ASSERT_FALSE(want.idx.empty());
  for (const std::size_t workers : kWorkerCounts) {
    gpu_sim::ThreadPool pool(workers);
    grb::cpupar_backend::ScopedPool bind(pool);
    for (int run = 0; run < kRuns; ++run) {
      const Tuples got = run_pagerank<grb::CpuPar>(seed);
      ASSERT_TRUE(got.bytes_equal(want))
          << "pagerank diverged from sequential bytes: seed " << seed
          << ", workers " << workers << ", run " << run;
    }
  }
}

TEST_P(CpuParDeterminism, VxmByteIdenticalAcrossWorkerCounts) {
  const unsigned seed = 7200 + GetParam();
  const Tuples want = run_vxm<grb::Sequential>(seed);
  for (const std::size_t workers : kWorkerCounts) {
    gpu_sim::ThreadPool pool(workers);
    grb::cpupar_backend::ScopedPool bind(pool);
    for (int run = 0; run < kRuns; ++run) {
      const Tuples got = run_vxm<grb::CpuPar>(seed);
      ASSERT_TRUE(got.bytes_equal(want))
          << "vxm diverged from sequential bytes: seed " << seed
          << ", workers " << workers << ", run " << run;
    }
  }
}

TEST_P(CpuParDeterminism, MxmReduceByteIdenticalAcrossWorkerCounts) {
  const unsigned seed = 7300 + GetParam();
  const Tuples want = run_mxm_reduce<grb::Sequential>(seed);
  for (const std::size_t workers : kWorkerCounts) {
    gpu_sim::ThreadPool pool(workers);
    grb::cpupar_backend::ScopedPool bind(pool);
    for (int run = 0; run < kRuns; ++run) {
      const Tuples got = run_mxm_reduce<grb::CpuPar>(seed);
      ASSERT_TRUE(got.bytes_equal(want))
          << "mxm+reduce diverged from sequential bytes: seed " << seed
          << ", workers " << workers << ", run " << run;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuParDeterminism, ::testing::Range(0u, 3u));

/// The GBTL_CPUPAR_THREADS override and clamp logic of
/// default_worker_count() — pool sizing must be predictable, since the
/// determinism contract is what makes it *safe* to vary.
TEST(CpuParPool, DefaultWorkerCountHonorsEnvOverride) {
  // The harness itself may run under a GBTL_CPUPAR_THREADS override (the
  // TSan CI stage does exactly that): stash and restore it.
  const char* ambient = std::getenv("GBTL_CPUPAR_THREADS");
  const std::string saved = ambient ? ambient : "";
  unsetenv("GBTL_CPUPAR_THREADS");
  const std::size_t base = grb::cpupar_backend::default_worker_count();
  EXPECT_GE(base, 1u);
  EXPECT_LE(base, 8u);
  ASSERT_EQ(setenv("GBTL_CPUPAR_THREADS", "5", 1), 0);
  EXPECT_EQ(grb::cpupar_backend::default_worker_count(), 5u);
  ASSERT_EQ(setenv("GBTL_CPUPAR_THREADS", "0", 1), 0);  // invalid -> fallback
  EXPECT_EQ(grb::cpupar_backend::default_worker_count(), base);
  if (ambient)
    setenv("GBTL_CPUPAR_THREADS", saved.c_str(), 1);
  else
    unsetenv("GBTL_CPUPAR_THREADS");
}

TEST(CpuParPool, ScopedPoolRebindsAndRestores) {
  gpu_sim::ThreadPool outer(2), inner(4);
  {
    grb::cpupar_backend::ScopedPool bind_outer(outer);
    EXPECT_EQ(&grb::cpupar_backend::pool(), &outer);
    {
      grb::cpupar_backend::ScopedPool bind_inner(inner);
      EXPECT_EQ(&grb::cpupar_backend::pool(), &inner);
    }
    EXPECT_EQ(&grb::cpupar_backend::pool(), &outer);
  }
  EXPECT_NE(&grb::cpupar_backend::pool(), &outer);
  EXPECT_NE(&grb::cpupar_backend::pool(), &inner);
}

}  // namespace
