/// resize() semantics across both backends, and failure injection: a
/// capacity-limited device context must surface DeviceBadAlloc cleanly
/// out of GraphBLAS operations without corrupting process state.

#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"

namespace {

using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

template <typename Tag>
struct Resize : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(Resize, Backends);

TYPED_TEST(Resize, MatrixShrinkDropsOutOfBoundsEntries) {
  grb::Matrix<double, TypeParam> a(4, 4);
  a.build({0, 1, 3, 2}, {0, 3, 1, 2}, {1.0, 2.0, 3.0, 4.0});
  a.resize(3, 3);
  EXPECT_EQ(a.nrows(), 3u);
  EXPECT_EQ(a.ncols(), 3u);
  EXPECT_EQ(a.nvals(), 2u);  // (1,3) and (3,1) dropped
  EXPECT_DOUBLE_EQ(a.extractElement(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.extractElement(2, 2), 4.0);
  EXPECT_THROW(a.extractElement(3, 1), grb::IndexOutOfBoundsException);
}

TYPED_TEST(Resize, MatrixGrowAddsEmptySpace) {
  grb::Matrix<double, TypeParam> a(2, 2);
  a.build({0, 1}, {1, 0}, {5.0, 6.0});
  a.resize(4, 5);
  EXPECT_EQ(a.nrows(), 4u);
  EXPECT_EQ(a.ncols(), 5u);
  EXPECT_EQ(a.nvals(), 2u);
  EXPECT_DOUBLE_EQ(a.extractElement(0, 1), 5.0);
  EXPECT_FALSE(a.hasElement(3, 4));
  a.setElement(3, 4, 7.0);  // fresh space is writable
  EXPECT_DOUBLE_EQ(a.extractElement(3, 4), 7.0);
}

TYPED_TEST(Resize, MatrixResizeThenOperate) {
  grb::Matrix<double, TypeParam> a(3, 3);
  a.build({0, 1, 2}, {1, 2, 0}, {1.0, 1.0, 1.0});
  a.resize(2, 2);  // keeps only (0,1)
  grb::Vector<double, TypeParam> u(std::vector<double>{1, 1}, 0.0);
  grb::Vector<double, TypeParam> w(2);
  grb::mxv(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, u);
  EXPECT_DOUBLE_EQ(w.extractElement(0), 1.0);
  EXPECT_FALSE(w.hasElement(1));
}

TYPED_TEST(Resize, VectorShrinkAndGrow) {
  grb::Vector<double, TypeParam> v(5);
  v.setElement(0, 1.0);
  v.setElement(4, 2.0);
  v.resize(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.nvals(), 1u);
  v.resize(6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v.nvals(), 1u);
  EXPECT_FALSE(v.hasElement(4));  // the old tail did not resurrect
  v.setElement(5, 3.0);
  EXPECT_DOUBLE_EQ(v.extractElement(5), 3.0);
}

TYPED_TEST(Resize, ZeroDimensionRejected) {
  grb::Matrix<double, TypeParam> a(2, 2);
  EXPECT_THROW(a.resize(0, 2), grb::InvalidValueException);
  grb::Vector<double, TypeParam> v(2);
  EXPECT_THROW(v.resize(0), grb::InvalidValueException);
}

// --- Failure injection: device out-of-memory -------------------------------

TEST(OomInjection, AllocationBeyondCapacityThrowsCleanly) {
  gpu_sim::DeviceProperties tiny;
  tiny.total_global_memory = 64 * 1024;  // 64 KiB card
  gpu_sim::Context ctx{tiny, 1};

  // A vector that fits works; one that doesn't throws DeviceBadAlloc.
  gpu_sim::device_vector<double> ok(1024, ctx);
  EXPECT_THROW(gpu_sim::device_vector<double> big(1 << 20, ctx),
               gpu_sim::DeviceBadAlloc);
  // The context stays consistent: prior allocation is intact and new
  // small allocations still succeed.
  EXPECT_EQ(ctx.stats().bytes_in_use, 1024 * sizeof(double));
  gpu_sim::device_vector<double> again(512, ctx);
  EXPECT_EQ(again.size(), 512u);
}

TEST(OomInjection, FreeingRecoversCapacity) {
  gpu_sim::DeviceProperties tiny;
  tiny.total_global_memory = 4096;
  gpu_sim::Context ctx{tiny, 1};
  {
    gpu_sim::device_vector<char> a(4000, ctx);
    EXPECT_THROW(gpu_sim::device_vector<char> b(200, ctx),
                 gpu_sim::DeviceBadAlloc);
  }
  // RAII freed `a`: the same request now succeeds.
  gpu_sim::device_vector<char> b(200, ctx);
  EXPECT_EQ(b.size(), 200u);
}

TEST(OomInjection, FailedResizeLeavesVectorIntact) {
  // device_vector::resize gives the strong exception guarantee: the fresh
  // block is acquired before the old one is released, so a DeviceBadAlloc
  // mid-grow must leave the original buffer owned, sized, and bit-identical.
  gpu_sim::DeviceProperties tiny;
  tiny.total_global_memory = 64 * 1024;
  gpu_sim::Context ctx{tiny, 1};

  std::vector<int> seed(1024);
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = static_cast<int>(i * 3 + 1);
  gpu_sim::device_vector<int> v(seed, ctx);

  EXPECT_THROW(v.resize(1u << 20), gpu_sim::DeviceBadAlloc);

  EXPECT_EQ(v.size(), seed.size());
  EXPECT_EQ(v.to_host(), seed) << "old contents must survive a failed grow";

  // The vector is still fully functional: a grow that fits succeeds and
  // preserves the prefix.
  v.resize(2048);
  EXPECT_EQ(v.size(), 2048u);
  auto grown = v.to_host();
  for (std::size_t i = 0; i < seed.size(); ++i) EXPECT_EQ(grown[i], seed[i]);
}

}  // namespace
