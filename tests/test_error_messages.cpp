/// Diagnostic quality of frontend dimension checks: every
/// DimensionException message names the operation, the violated relation,
/// and the offending dimensions — one representative test per op family.

#include <gtest/gtest.h>

#include <string>

#include "gbtl/gbtl.hpp"

namespace {

using grb::NoAccumulate;
using grb::NoMask;

/// Run @p body, require a DimensionException, and require every fragment
/// of @p fragments to appear in its message.
template <typename Body>
void expect_message(Body&& body, std::initializer_list<const char*> fragments) {
  try {
    body();
    FAIL() << "expected DimensionException";
  } catch (const grb::DimensionException& e) {
    const std::string msg = e.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(msg.find(fragment), std::string::npos)
          << "message \"" << msg << "\" lacks \"" << fragment << "\"";
    }
  }
}

TEST(ErrorMessages, MxmNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> c(3, 3), a(4, 3), b(3, 3);
  expect_message(
      [&] {
        grb::mxm(c, NoMask{}, NoAccumulate{},
                 grb::ArithmeticSemiring<double>{}, a, b);
      },
      {"mxm", "C.nrows != A.nrows", "3 vs 4"});
}

TEST(ErrorMessages, MxvNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(4, 6);
  grb::Vector<double, grb::Sequential> u(6), w(5);
  expect_message(
      [&] {
        grb::mxv(w, NoMask{}, NoAccumulate{},
                 grb::ArithmeticSemiring<double>{}, a, u);
      },
      {"mxv", "w.size != A.nrows", "5 vs 4"});
}

TEST(ErrorMessages, EwiseNamesOpAndDimensions) {
  grb::Vector<double, grb::Sequential> u(7), v(9), w(7);
  expect_message(
      [&] {
        grb::eWiseAdd(w, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, u, v);
      },
      {"eWiseAdd", "v.size != w.size", "9 vs 7"});
}

TEST(ErrorMessages, ApplyNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(2, 5), c(2, 4);
  expect_message(
      [&] {
        grb::apply(c, NoMask{}, NoAccumulate{},
                   grb::Identity<double>{}, a);
      },
      {"apply", "A.ncols != C.ncols", "5 vs 4"});
}

TEST(ErrorMessages, ReduceNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(6, 2);
  grb::Vector<double, grb::Sequential> w(4);
  expect_message(
      [&] {
        grb::reduce(w, NoMask{}, NoAccumulate{}, grb::PlusMonoid<double>{}, a);
      },
      {"reduce", "w.size != A.nrows", "4 vs 6"});
}

TEST(ErrorMessages, TransposeNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(2, 5), c(4, 2);
  expect_message(
      [&] { grb::transpose(c, NoMask{}, NoAccumulate{}, a); },
      {"transpose", "C.nrows != A.ncols", "4 vs 5"});
}

TEST(ErrorMessages, ExtractNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(8, 8);
  grb::Vector<double, grb::Sequential> w(3);
  expect_message(
      [&] {
        grb::extract(w, NoMask{}, NoAccumulate{}, a,
                     std::vector<grb::IndexType>{0, 1}, 0);
      },
      {"extract", "w.size != row_indices.size", "3 vs 2"});
}

TEST(ErrorMessages, AssignNamesOpAndDimensions) {
  grb::Vector<double, grb::Sequential> w(8), u(3);
  expect_message(
      [&] {
        grb::assign(w, NoMask{}, NoAccumulate{}, u,
                    std::vector<grb::IndexType>{0, 1});
      },
      {"assign", "u.size != indices.size", "3 vs 2"});
}

TEST(ErrorMessages, KroneckerNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(2, 2), b(3, 3), c(5, 6);
  expect_message(
      [&] {
        grb::kronecker(c, NoMask{}, NoAccumulate{}, grb::Times<double>{}, a,
                       b);
      },
      {"kronecker", "C.nrows != A.nrows * B.nrows", "5 vs 6"});
}

TEST(ErrorMessages, SelectNamesOpAndDimensions) {
  grb::Vector<double, grb::Sequential> u(4), w(6);
  auto pred = [](grb::IndexType, double v) { return v > 0.0; };
  expect_message(
      [&] { grb::select(w, NoMask{}, NoAccumulate{}, pred, u); },
      {"select", "w.size != u.size", "6 vs 4"});
}

TEST(ErrorMessages, MaskShapeNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> c(3, 4), a(3, 3), b(3, 4);
  grb::Matrix<bool, grb::Sequential> mask(2, 2);
  expect_message(
      [&] {
        grb::mxm(c, mask, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
                 a, b);
      },
      {"mxm", "mask shape must match output", "3x4"});
}

TEST(ErrorMessages, MaskSizeNamesOpAndDimensions) {
  grb::Matrix<double, grb::Sequential> a(5, 5);
  grb::Vector<double, grb::Sequential> u(5), w(5);
  grb::Vector<bool, grb::Sequential> mask(3);
  expect_message(
      [&] {
        grb::mxv(w, mask, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
                 a, u);
      },
      {"mxv", "mask size must match output", "(5)"});
}

}  // namespace
