/// Exhaustive write-semantics sweep: every combination of
///   mask kind   {none, value, structure, complement(value),
///                complement(structure)}
/// x accumulate  {none, Plus}
/// x output ctl  {Merge, Replace}
/// is run for eWiseAdd (vector) and apply (matrix) on BOTH backends and
/// compared against a self-contained reference model of the GraphBLAS
/// pipeline written directly in this file (dense optional arrays).

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <tuple>
#include <vector>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexType;

enum class MaskKind {
  None,
  Value,
  Structure,
  ComplementValue,
  ComplementStructure
};
enum class AccumKind { None, Plus };

const char* name(MaskKind m) {
  switch (m) {
    case MaskKind::None: return "none";
    case MaskKind::Value: return "value";
    case MaskKind::Structure: return "structure";
    case MaskKind::ComplementValue: return "complement-value";
    case MaskKind::ComplementStructure: return "complement-structure";
  }
  return "?";
}

using Dense = std::vector<std::optional<double>>;
using DenseMask = std::vector<std::optional<bool>>;

/// Reference implementation of the GraphBLAS write pipeline for a
/// union-with-plus T̃ (eWiseAdd) — written independently of the library.
Dense reference_ewise_add(const Dense& w0, const Dense& u, const Dense& v,
                          const DenseMask& mask, MaskKind mk, AccumKind ak,
                          bool replace) {
  const std::size_t n = w0.size();
  Dense t(n), z(n), out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (u[i] && v[i])
      t[i] = *u[i] + *v[i];
    else if (u[i])
      t[i] = u[i];
    else if (v[i])
      t[i] = v[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (ak == AccumKind::None) {
      z[i] = t[i];
    } else {
      if (w0[i] && t[i])
        z[i] = *w0[i] + *t[i];
      else if (t[i])
        z[i] = t[i];
      else
        z[i] = w0[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    bool allowed = true;
    if (mk != MaskKind::None) {
      bool present = mask[i].has_value();
      bool truthy = present && (mk == MaskKind::Structure ||
                                mk == MaskKind::ComplementStructure
                                    ? true
                                    : *mask[i]);
      bool base = present && truthy;
      allowed = (mk == MaskKind::ComplementValue ||
                 mk == MaskKind::ComplementStructure)
                    ? !base
                    : base;
    }
    if (allowed)
      out[i] = z[i];
    else
      out[i] = replace ? std::nullopt : w0[i];
  }
  return out;
}

template <typename Tag>
grb::Vector<double, Tag> to_vec(const Dense& d) {
  grb::Vector<double, Tag> v(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    if (d[i]) v.setElement(i, *d[i]);
  return v;
}

template <typename Tag>
grb::Vector<bool, Tag> to_mask(const DenseMask& d) {
  grb::Vector<bool, Tag> v(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    if (d[i]) v.setElement(i, *d[i]);
  return v;
}

template <typename Tag>
void expect_matches(const grb::Vector<double, Tag>& got, const Dense& want,
                    const std::string& label) {
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.hasElement(i), want[i].has_value())
        << label << " position " << i;
    if (want[i]) {
      EXPECT_DOUBLE_EQ(got.extractElement(i), *want[i])
          << label << " position " << i;
    }
  }
}

/// Run the library with runtime-selected mask/accum/outp.
template <typename Tag>
void run_library(grb::Vector<double, Tag>& w,
                 const grb::Vector<bool, Tag>& mask,
                 const grb::Vector<double, Tag>& u,
                 const grb::Vector<double, Tag>& v, MaskKind mk,
                 AccumKind ak, grb::OutputControl outp) {
  auto call = [&](const auto& m, const auto& acc) {
    grb::eWiseAdd(w, m, acc, grb::Plus<double>{}, u, v, outp);
  };
  auto with_mask = [&](const auto& acc) {
    switch (mk) {
      case MaskKind::None: call(grb::NoMask{}, acc); break;
      case MaskKind::Value: call(mask, acc); break;
      case MaskKind::Structure: call(grb::structure(mask), acc); break;
      case MaskKind::ComplementValue: call(grb::complement(mask), acc); break;
      case MaskKind::ComplementStructure:
        call(grb::complement(grb::structure(mask)), acc);
        break;
    }
  };
  if (ak == AccumKind::None)
    with_mask(grb::NoAccumulate{});
  else
    with_mask(grb::Plus<double>{});
}

using Combo = std::tuple<int /*mask*/, int /*accum*/, int /*replace*/,
                         unsigned /*seed*/>;

class MaskSweep : public ::testing::TestWithParam<Combo> {};

/// Test-name generator. Kept as a named function: lambdas with brace
/// initializers inside INSTANTIATE_TEST_SUITE_P would split the macro's
/// argument list at every brace-level comma.
std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  static const char* mask_names[] = {"NoMask", "Value", "Structure",
                                     "ComplValue", "ComplStructure"};
  return std::string(mask_names[std::get<0>(info.param)]) +
         (std::get<1>(info.param) ? "_PlusAccum" : "_NoAccum") +
         (std::get<2>(info.param) ? "_Replace" : "_Merge") + "_s" +
         std::to_string(std::get<3>(info.param));
}

TEST_P(MaskSweep, EwiseAddVectorMatchesReferenceOnBothBackends) {
  const auto [mki, aki, repi, seed] = GetParam();
  const auto mk = static_cast<MaskKind>(mki);
  const auto ak = static_cast<AccumKind>(aki);
  const bool replace = repi != 0;

  std::mt19937 rng(seed * 7919u + mki * 131u + aki * 17u + repi);
  const std::size_t n = 16;
  std::uniform_real_distribution<double> val(-5.0, 5.0);
  std::bernoulli_distribution keep(0.5), truthy(0.5);

  Dense w0(n), u(n), v(n);
  DenseMask mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (keep(rng)) w0[i] = val(rng);
    if (keep(rng)) u[i] = val(rng);
    if (keep(rng)) v[i] = val(rng);
    if (keep(rng)) mask[i] = truthy(rng);
  }

  const Dense want = reference_ewise_add(w0, u, v, mask, mk, ak, replace);
  const std::string label = std::string("mask=") + name(mk) +
                            " accum=" + (ak == AccumKind::None ? "no" : "plus") +
                            " replace=" + (replace ? "yes" : "no");

  {
    auto w = to_vec<grb::Sequential>(w0);
    run_library(w, to_mask<grb::Sequential>(mask), to_vec<grb::Sequential>(u),
                to_vec<grb::Sequential>(v), mk, ak,
                replace ? grb::Replace : grb::Merge);
    expect_matches(w, want, "[seq] " + label);
  }
  {
    auto w = to_vec<grb::GpuSim>(w0);
    run_library(w, to_mask<grb::GpuSim>(mask), to_vec<grb::GpuSim>(u),
                to_vec<grb::GpuSim>(v), mk, ak,
                replace ? grb::Replace : grb::Merge);
    expect_matches(w, want, "[gpu] " + label);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MaskSweep,
    ::testing::Combine(::testing::Range(0, 5),   // mask kinds
                       ::testing::Range(0, 2),   // accum kinds
                       ::testing::Range(0, 2),   // merge/replace
                       ::testing::Values(1u, 2u, 3u)),
    combo_name);

}  // namespace
