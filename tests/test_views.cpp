/// View tests: transpose views as operands of every matrix-consuming
/// operation, nested mask views, and view shape/dimension checking.

#include <gtest/gtest.h>

#include "gbtl/gbtl.hpp"

namespace {

using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

template <typename Tag>
struct Views : public ::testing::Test {};

using Backends = ::testing::Types<grb::Sequential, grb::GpuSim>;
TYPED_TEST_SUITE(Views, Backends);

template <typename Tag>
grb::Matrix<double, Tag> rect() {
  // 2x3: [1 . 2; . 3 .]
  grb::Matrix<double, Tag> a(2, 3);
  a.build({0, 0, 1}, {0, 2, 1}, {1.0, 2.0, 3.0});
  return a;
}

template <typename Tag>
grb::Matrix<double, Tag> materialized_transpose(
    const grb::Matrix<double, Tag>& a) {
  grb::Matrix<double, Tag> at(a.ncols(), a.nrows());
  grb::transpose(at, NoMask{}, NoAccumulate{}, a);
  return at;
}

TYPED_TEST(Views, TransposeViewInMxmBothSides) {
  auto a = rect<TypeParam>();  // 2x3
  auto at = materialized_transpose(a);

  grb::Matrix<double, TypeParam> via_view(3, 3), via_mat(3, 3);
  grb::mxm(via_view, NoMask{}, NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, grb::transpose(a), a);
  grb::mxm(via_mat, NoMask{}, NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, at, a);
  EXPECT_TRUE(via_view == via_mat);

  grb::Matrix<double, TypeParam> bb(2, 2), bb2(2, 2);
  grb::mxm(bb, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, grb::transpose(a));
  grb::mxm(bb2, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           a, at);
  EXPECT_TRUE(bb == bb2);

  // Both sides transposed at once: A' * B' where B = A' * A (3x3).
  grb::Matrix<double, TypeParam> c(3, 2), c2(3, 2);
  grb::mxm(c, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           via_view, grb::transpose(a));
  grb::mxm(c2, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           via_mat, at);
  EXPECT_TRUE(c == c2);
}

TYPED_TEST(Views, TransposeViewInMxvAndEwise) {
  auto a = rect<TypeParam>();
  auto at = materialized_transpose(a);
  grb::Vector<double, TypeParam> u(std::vector<double>{1, 2}, 0.0);
  grb::Vector<double, TypeParam> w1(3), w2(3);
  grb::mxv(w1, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           grb::transpose(a), u);
  grb::mxv(w2, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           at, u);
  EXPECT_TRUE(w1 == w2);

  grb::Matrix<double, TypeParam> s1(3, 2), s2(3, 2);
  grb::eWiseAdd(s1, NoMask{}, NoAccumulate{}, grb::Plus<double>{},
                grb::transpose(a), at);
  grb::eWiseAdd(s2, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, at, at);
  EXPECT_TRUE(s1 == s2);

  grb::Matrix<double, TypeParam> m1(3, 2), m2(3, 2);
  grb::eWiseMult(m1, NoMask{}, NoAccumulate{}, grb::Times<double>{},
                 grb::transpose(a), at);
  grb::eWiseMult(m2, NoMask{}, NoAccumulate{}, grb::Times<double>{}, at, at);
  EXPECT_TRUE(m1 == m2);
}

TYPED_TEST(Views, TransposeViewInApplyAndReduce) {
  auto a = rect<TypeParam>();
  auto at = materialized_transpose(a);

  grb::Matrix<double, TypeParam> c1(3, 2), c2(3, 2);
  grb::apply(c1, NoMask{}, NoAccumulate{}, grb::AdditiveInverse<double>{},
             grb::transpose(a));
  grb::apply(c2, NoMask{}, NoAccumulate{}, grb::AdditiveInverse<double>{},
             at);
  EXPECT_TRUE(c1 == c2);

  grb::Vector<double, TypeParam> r1(3), r2(3);
  grb::reduce(r1, NoMask{}, NoAccumulate{}, grb::PlusMonoid<double>{},
              grb::transpose(a));
  grb::reduce(r2, NoMask{}, NoAccumulate{}, grb::PlusMonoid<double>{}, at);
  EXPECT_TRUE(r1 == r2);
}

TYPED_TEST(Views, TransposeViewDimensionChecks) {
  auto a = rect<TypeParam>();  // 2x3
  grb::Matrix<double, TypeParam> c(2, 2);
  // A' is 3x2: A' * A' is invalid (2 != 3).
  EXPECT_THROW(grb::mxm(c, NoMask{}, NoAccumulate{},
                        grb::ArithmeticSemiring<double>{},
                        grb::transpose(a), grb::transpose(a)),
               grb::DimensionException);
  grb::Vector<double, TypeParam> w(2), u(2);
  EXPECT_THROW(grb::mxv(w, NoMask{}, NoAccumulate{},
                        grb::ArithmeticSemiring<double>{},
                        grb::transpose(a), u),
               grb::DimensionException);
}

TYPED_TEST(Views, NestedMaskViewsCombine) {
  grb::Vector<double, TypeParam> u(std::vector<double>{1, 2, 3, 4}, 0.0);
  grb::Vector<bool, TypeParam> m(4);
  m.setElement(0, true);
  m.setElement(1, false);  // stored falsy
  // value mask: allows {0}; structure: {0,1}; complement-value: {1,2,3};
  // complement-structure: {2,3}.
  auto count_written = [&](auto mask_arg) {
    grb::Vector<double, TypeParam> w(4);
    grb::apply(w, mask_arg, NoAccumulate{}, grb::Identity<double>{}, u,
               grb::Replace);
    return w.nvals();
  };
  EXPECT_EQ(count_written(m), 1u);
  EXPECT_EQ(count_written(grb::structure(m)), 2u);
  EXPECT_EQ(count_written(grb::complement(m)), 3u);
  EXPECT_EQ(count_written(grb::complement(grb::structure(m))), 2u);
  EXPECT_EQ(count_written(grb::structure(grb::complement(m))), 2u);
}

TYPED_TEST(Views, MaskShapeMismatchThrows) {
  grb::Matrix<double, TypeParam> a(2, 3), c(2, 3);
  grb::Matrix<bool, TypeParam> wrong(3, 2);
  EXPECT_THROW(grb::apply(c, wrong, NoAccumulate{},
                          grb::Identity<double>{}, a),
               grb::DimensionException);
  EXPECT_THROW(grb::apply(c, grb::complement(grb::structure(wrong)),
                          NoAccumulate{}, grb::Identity<double>{}, a),
               grb::DimensionException);
}

}  // namespace
