/// Kernel-selection property tests: the selector's choice on hand-built
/// degree-skewed vs. regular matrices (power-law => load-balanced path,
/// banded => ELL path), identical results across every kernel path, and the
/// DeviceStats selection counters recorded by the GraphBLAS backend.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "sparse/spmv_select.hpp"

namespace {

using gpu_sim::SpmvKernelKind;
using sparse::Csr;
using sparse::Index;

Csr<double> from_triples(Index nrows, Index ncols,
                         std::vector<Index> rows, std::vector<Index> cols,
                         std::vector<double> vals) {
  sparse::Coo<double> coo;
  coo.nrows = nrows;
  coo.ncols = ncols;
  coo.row = std::move(rows);
  coo.col = std::move(cols);
  coo.val = std::move(vals);
  return sparse::coo_to_csr(sparse::canonicalize(std::move(coo)));
}

/// Tridiagonal banded matrix with integer-valued entries.
Csr<double> banded(Index n) {
  std::vector<Index> r, c;
  std::vector<double> v;
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> val(-4, 4);
  for (Index i = 0; i < n; ++i)
    for (Index j = (i > 0 ? i - 1 : 0); j < std::min<Index>(n, i + 2); ++j) {
      r.push_back(i);
      c.push_back(j);
      v.push_back(val(rng));
    }
  return from_triples(n, n, std::move(r), std::move(c), std::move(v));
}

/// Power-law-ish: row i has ~n/(i+1) entries — heavy hubs up front.
Csr<double> power_law(Index n) {
  std::vector<Index> r, c;
  std::vector<double> v;
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> val(-4, 4);
  std::uniform_int_distribution<Index> col(0, n - 1);
  for (Index i = 0; i < n; ++i) {
    const Index deg = std::max<Index>(1, n / (i + 1));
    for (Index d = 0; d < deg; ++d) {
      r.push_back(i);
      c.push_back(col(rng));
      v.push_back(val(rng));
    }
  }
  return from_triples(n, n, std::move(r), std::move(c), std::move(v));
}

/// Perfectly regular: every row has exactly `deg` entries.
Csr<double> regular(Index n, Index deg) {
  std::vector<Index> r, c;
  std::vector<double> v;
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> val(-4, 4);
  for (Index i = 0; i < n; ++i)
    for (Index d = 0; d < deg; ++d) {
      r.push_back(i);
      c.push_back((i + d * 3 + 1) % n);
      v.push_back(val(rng));
    }
  return from_triples(n, n, std::move(r), std::move(c), std::move(v));
}

/// Mostly degree-4 rows with a sprinkling of degree-16 rows: moderate skew
/// in the HYB window (3 <= skew < 8, cv < 1).
Csr<double> moderately_skewed(Index n) {
  std::vector<Index> r, c;
  std::vector<double> v;
  std::mt19937 rng(17);
  std::uniform_int_distribution<int> val(-4, 4);
  for (Index i = 0; i < n; ++i) {
    const Index deg = (i % 16 == 0) ? 16 : 4;
    for (Index d = 0; d < deg; ++d) {
      r.push_back(i);
      c.push_back((i * 5 + d * 7 + 1) % n);
      v.push_back(val(rng));
    }
  }
  return from_triples(n, n, std::move(r), std::move(c), std::move(v));
}

// --------------------------------------------------------------------------
// Selector choice on hand-built shapes
// --------------------------------------------------------------------------

TEST(SpmvSelect, BandedPicksEll) {
  gpu_sim::Context ctx;
  sparse::AdaptiveSpmv<double> engine(banded(128), ctx);
  EXPECT_EQ(engine.kernel(), SpmvKernelKind::kEll);
  EXPECT_LE(engine.degree_stats().ell_fill(), sparse::kEllMaxFill);
}

TEST(SpmvSelect, PowerLawPicksLoadBalanced) {
  // Large enough that the saved padded traffic outweighs the merge-path
  // schedule's extra fixup launch — the selector's cost ratification keeps
  // smaller skewed inputs on the single-launch scalar kernel.
  gpu_sim::Context ctx;
  sparse::AdaptiveSpmv<double> engine(power_law(4096), ctx);
  EXPECT_EQ(engine.kernel(), SpmvKernelKind::kCsrLoadBalanced);
  EXPECT_GE(engine.degree_stats().skew(), sparse::kLbSkewThreshold);
}

TEST(SpmvSelect, SmallSkewedInputStaysOnScalar) {
  // Same shape, two orders of magnitude smaller: launch overhead dominates,
  // so the cost model overrides the skew heuristic.
  gpu_sim::Context ctx;
  sparse::AdaptiveSpmv<double> engine(power_law(128), ctx);
  EXPECT_EQ(engine.kernel(), SpmvKernelKind::kCsrScalar);
  EXPECT_GE(engine.degree_stats().skew(), sparse::kLbSkewThreshold);
}

TEST(SpmvSelect, RegularPicksEllWithFormatFreedomElseScalar) {
  gpu_sim::Context ctx;
  const auto a = regular(128, 4);
  const auto deg = sparse::analyze(a, ctx.properties().warp_size);
  EXPECT_EQ(sparse::select_kernel(deg, /*allow_format_change=*/true,
                                  sparse::SpmvMode::Adaptive),
            SpmvKernelKind::kEll);
  EXPECT_EQ(sparse::select_kernel(deg, /*allow_format_change=*/false,
                                  sparse::SpmvMode::Adaptive),
            SpmvKernelKind::kCsrScalar);
}

TEST(SpmvSelect, ModerateSkewPicksHyb) {
  gpu_sim::Context ctx;
  sparse::AdaptiveSpmv<double> engine(moderately_skewed(8192), ctx);
  EXPECT_EQ(engine.kernel(), SpmvKernelKind::kHyb);
  const auto& deg = engine.degree_stats();
  EXPECT_GE(deg.skew(), sparse::kHybSkewThreshold);
  EXPECT_LT(deg.skew(), sparse::kLbSkewThreshold);
}

TEST(SpmvSelect, ForcedModesOverrideHeuristic) {
  gpu_sim::Context ctx;
  const auto deg =
      sparse::analyze(power_law(64), ctx.properties().warp_size);
  EXPECT_EQ(sparse::select_kernel(deg, true,
                                  sparse::SpmvMode::ForceCsrScalar),
            SpmvKernelKind::kCsrScalar);
  EXPECT_EQ(sparse::select_kernel(deg, true, sparse::SpmvMode::ForceEll),
            SpmvKernelKind::kEll);
  // Format-locked callers degrade forced format modes to CSR schedules.
  EXPECT_EQ(sparse::select_kernel(deg, false, sparse::SpmvMode::ForceEll),
            SpmvKernelKind::kCsrScalar);
  EXPECT_EQ(sparse::select_kernel(deg, false, sparse::SpmvMode::ForceHyb),
            SpmvKernelKind::kCsrLoadBalanced);
}

// --------------------------------------------------------------------------
// Every kernel path computes the same y (exact: integer-valued doubles)
// --------------------------------------------------------------------------

class SpmvKernelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SpmvKernelEquivalence, AllPathsAgree) {
  const auto a = [&] {
    switch (GetParam()) {
      case 0:
        return banded(97);  // non-multiple-of-warp row count
      case 1:
        return power_law(101);
      case 2:
        return regular(64, 3);
      default:
        return moderately_skewed(80);
    }
  }();
  std::vector<double> x(a.ncols);
  std::mt19937 rng(23);
  std::uniform_int_distribution<int> val(-4, 4);
  for (auto& e : x) e = val(rng);

  const auto want = sparse::spmv(a, x);

  gpu_sim::Context ctx;
  EXPECT_EQ(sparse::spmv_device(a, x, ctx), want) << "csr scalar";
  for (Index chunk : {Index{1}, Index{3}, Index{7}, Index{256}})
    EXPECT_EQ(sparse::spmv_device_lb(a, x, ctx, chunk), want)
        << "csr load-balanced, chunk " << chunk;
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_ell(a), x, ctx), want)
      << "ell";
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_hyb(a), x, ctx), want)
      << "hyb";
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_coo(a), x, ctx), want)
      << "coo";
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_csc(a), x, ctx), want)
      << "csc";

  // The engine agrees regardless of the forced dispatch mode.
  for (const auto mode :
       {sparse::SpmvMode::Adaptive, sparse::SpmvMode::ForceCsrScalar,
        sparse::SpmvMode::ForceCsrLoadBalanced, sparse::SpmvMode::ForceEll,
        sparse::SpmvMode::ForceHyb}) {
    sparse::AdaptiveSpmv<double> engine(a, ctx, mode);
    EXPECT_EQ(engine(x), want)
        << "adaptive engine, mode " << static_cast<int>(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SpmvKernelEquivalence,
                         ::testing::Range(0, 4));

// --------------------------------------------------------------------------
// Cost model: the load-balanced schedule must beat row-parallel on skew
// --------------------------------------------------------------------------

TEST(SpmvSelect, LoadBalancedBeatsScalarOnPowerLaw) {
  const auto a = power_law(4096);
  std::vector<double> x(a.ncols, 1.0);
  gpu_sim::Context ctx;
  const double t0 = ctx.simulated_time_s();
  (void)sparse::spmv_device(a, x, ctx);
  const double scalar = ctx.simulated_time_s() - t0;
  const double t1 = ctx.simulated_time_s();
  (void)sparse::spmv_device_lb(a, x, ctx);
  const double lb = ctx.simulated_time_s() - t1;
  EXPECT_LT(lb, scalar);
}

TEST(SpmvSelect, ScalarStaysCompetitiveOnBanded) {
  // On a regular banded matrix the merge-path machinery (fill + partition
  // search + fixup) must not be selected: row-parallel carries no padding
  // penalty there.
  gpu_sim::Context ctx;
  const auto deg = sparse::analyze(banded(512), ctx.properties().warp_size);
  EXPECT_EQ(sparse::select_kernel(deg, /*allow_format_change=*/false,
                                  sparse::SpmvMode::Adaptive),
            SpmvKernelKind::kCsrScalar);
}

// --------------------------------------------------------------------------
// Backend routing: grb::mxv records its selection in DeviceStats
// --------------------------------------------------------------------------

TEST(SpmvSelectBackend, MxvRecordsSelectionCounters) {
  auto build = [](const Csr<double>& a) {
    grb::Matrix<double, grb::GpuSim> m(a.nrows, a.ncols);
    grb::IndexArrayType rows, cols;
    std::vector<double> vals;
    for (Index i = 0; i < a.nrows; ++i)
      for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k) {
        rows.push_back(i);
        cols.push_back(a.col_indices[k]);
        vals.push_back(a.values[k]);
      }
    m.build(rows, cols, vals, grb::Second<double>{});
    return m;
  };

  auto& dev = gpu_sim::device();

  // Power-law => load-balanced, with a positive bytes-saved estimate.
  {
    const auto a = power_law(4096);
    auto ga = build(a);
    grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols, 1.0),
                                       0.0);
    grb::Vector<double, grb::GpuSim> w(a.nrows);
    const auto before = dev.stats();
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, ga, u, grb::Replace);
    const auto delta = dev.stats() - before;
    EXPECT_EQ(delta.kernel_selections[static_cast<std::size_t>(
                  SpmvKernelKind::kCsrLoadBalanced)],
              1u);
    EXPECT_GT(delta.spmv_bytes_saved_vs_baseline, 0u);
    EXPECT_EQ(delta.h2d_transfers, 0u);  // inspector reads device memory
  }

  // Banded => row-parallel scalar.
  {
    const auto a = banded(128);
    auto ga = build(a);
    grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols, 1.0),
                                       0.0);
    grb::Vector<double, grb::GpuSim> w(a.nrows);
    const auto before = dev.stats();
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, ga, u, grb::Replace);
    const auto delta = dev.stats() - before;
    EXPECT_EQ(delta.kernel_selections[static_cast<std::size_t>(
                  SpmvKernelKind::kCsrScalar)],
              1u);
  }
}

TEST(SpmvSelectBackend, VxmRecordsSelectionOnSkewedFrontier) {
  // A frontier concentrated on hub rows of a power-law matrix shows high
  // degree skew, so the push kernel's cost is modeled load-balanced.
  const auto a = power_law(4096);
  grb::Matrix<double, grb::GpuSim> ga(a.nrows, a.ncols);
  {
    grb::IndexArrayType rows, cols;
    std::vector<double> vals;
    for (Index i = 0; i < a.nrows; ++i)
      for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k) {
        rows.push_back(i);
        cols.push_back(a.col_indices[k]);
        vals.push_back(a.values[k]);
      }
    ga.build(rows, cols, vals, grb::Second<double>{});
  }
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.nrows, 1.0), 0.0);
  grb::Vector<double, grb::GpuSim> w(a.ncols);
  auto& dev = gpu_sim::device();
  const auto before = dev.stats();
  grb::vxm(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, u, ga, grb::Replace);
  const auto delta = dev.stats() - before;
  EXPECT_EQ(delta.kernel_selections_total(), 1u);
  EXPECT_EQ(delta.kernel_selections[static_cast<std::size_t>(
                SpmvKernelKind::kCsrLoadBalanced)],
            1u);
}

}  // namespace
