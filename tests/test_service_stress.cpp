/// Concurrency stress for the serving layer — the acceptance test for the
/// "placement, not math" contract: N workers x M mixed queries, submitted
/// from several client threads at once, and every successful result must be
/// BIT-EXACT against the same query run serially on the sequential backend.
/// That holds whichever backend the executor places each query on: the
/// mixed-backend tests below split one workload across CpuPar and GpuSim at
/// a crossover threshold, and force-CpuPar runs nest its per-worker thread
/// pools inside the executor's worker threads. Run under ThreadSanitizer by
/// scripts/ci.sh (the tsan stage); any data race between worker contexts,
/// CpuPar pools, the store, or the stats block fires there.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/executor.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"

namespace {

using namespace std::chrono_literals;

std::shared_ptr<service::GraphStore> make_store() {
  auto store = std::make_shared<service::GraphStore>();
  // Directed scale-free graph for BFS / PageRank.
  store->add("rmat", gbtl_graph::rmat(7, 8, /*seed=*/11));
  // Weighted variant for SSSP.
  store->add("rmat-w",
             gbtl_graph::with_random_weights(
                 gbtl_graph::rmat(7, 8, /*seed=*/13), 1.0, 8.0, /*seed=*/17));
  // Symmetric, loop-free variant for triangle count / components.
  store->add("rmat-sym",
             gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                 gbtl_graph::rmat(7, 6, /*seed=*/19))));
  return store;
}

/// The mixed workload: every kind, several sources, across three graphs.
std::vector<service::QueryRequest> make_workload(std::size_t count) {
  std::vector<service::QueryRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    service::QueryRequest r;
    switch (i % 5) {
      case 0:
        r.kind = service::QueryKind::kBfs;
        r.graph = "rmat";
        r.source = (i * 37) % 128;
        break;
      case 1:
        r.kind = service::QueryKind::kSssp;
        r.graph = "rmat-w";
        r.source = (i * 53) % 128;
        break;
      case 2:
        r.kind = service::QueryKind::kPageRank;
        r.graph = "rmat";
        r.max_iterations = 25;
        break;
      case 3:
        r.kind = service::QueryKind::kTriangleCount;
        r.graph = "rmat-sym";
        break;
      case 4:
        r.kind = service::QueryKind::kConnectedComponents;
        r.graph = "rmat-sym";
        break;
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

void expect_bit_exact(const service::QueryResult& got,
                      const service::QueryResult& want, std::size_t i) {
  ASSERT_EQ(got.status, service::QueryStatus::kOk)
      << "query " << i << ": " << got.error;
  ASSERT_EQ(want.status, service::QueryStatus::kOk)
      << "query " << i << ": " << want.error;
  EXPECT_EQ(got.indices, want.indices) << "query " << i;
  EXPECT_EQ(got.ivals, want.ivals) << "query " << i;
  EXPECT_EQ(got.scalar, want.scalar) << "query " << i;
  ASSERT_EQ(got.dvals.size(), want.dvals.size()) << "query " << i;
  if (!got.dvals.empty())
    EXPECT_EQ(std::memcmp(got.dvals.data(), want.dvals.data(),
                          got.dvals.size() * sizeof(double)),
              0)
        << "query " << i << ": double payload not bit-exact";
}

TEST(ServiceStress, ConcurrentMixedWorkloadBitExactVsSerial) {
  auto store = make_store();
  const std::size_t kQueries = 48;
  const auto workload = make_workload(kQueries);

  // Serial ground truth first, on the sequential backend, one at a time.
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  service::ExecutorOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;  // nothing sheds; every query must run
  service::QueryExecutor exec(store, opts);

  // Hammer the admission path from several client threads at once. One
  // batch's worker spread is scheduling luck — on a fast machine a single
  // worker can drain all 48 tiny queries before its peers wake from the
  // queue's condition variable — so re-submit the batch (bounded) until a
  // second worker shows up. Every round's results stay bit-checked.
  std::map<std::size_t, std::size_t> per_worker;
  std::size_t rounds = 0;
  while (rounds < 5 && per_worker.size() < 2) {
    ++rounds;
    std::vector<std::future<service::QueryResult>> futures(kQueries);
    const std::size_t kClients = 3;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < kQueries; i += kClients)
          futures[i] = exec.submit(workload[i]);
      });
    for (auto& t : clients) t.join();

    for (std::size_t i = 0; i < kQueries; ++i) {
      const auto got = futures[i].get();
      expect_bit_exact(got, serial[i], i);
      ++per_worker[got.worker];
    }
  }

  const auto stats = exec.stats();
  EXPECT_EQ(stats.submitted, kQueries * rounds);
  EXPECT_EQ(stats.completed, kQueries * rounds);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  // Multiple workers must have seen work across the rounds; tolerate
  // stragglers but not a fully serialized executor.
  EXPECT_GE(per_worker.size(), 2u);
}

TEST(ServiceStress, RepeatedRoundsReuseTheDeviceCache) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  // Pin to the simulated GPU: this test exists to exercise the per-worker
  // device cache, which kAuto would route these small graphs around.
  opts.backend_mode = service::BackendMode::kForceGpuSim;
  service::QueryExecutor exec(store, opts);

  const auto workload = make_workload(10);
  std::vector<service::QueryResult> serial;
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  // Three rounds over the same graphs: rounds 2 and 3 hit each worker's
  // device cache, and the answers must not drift.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<service::QueryResult>> futures;
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (std::size_t i = 0; i < futures.size(); ++i)
      expect_bit_exact(futures[i].get(), serial[i], i);
  }
}

/// One workload split across BOTH worker-side backends: the crossover sits
/// between the store's smallest and largest graph, so some queries run on
/// CpuPar and some on GpuSim inside the same executor — and every one must
/// still be bit-exact against the serial oracle.
TEST(ServiceStress, MixedBackendWorkloadBitExactVsSerial) {
  auto store = make_store();
  const std::size_t nnz_rmat = store->get("rmat")->edges.num_edges();
  const std::size_t nnz_w = store->get("rmat-w")->edges.num_edges();
  const std::size_t nnz_sym = store->get("rmat-sym")->edges.num_edges();
  const std::size_t hi = std::max({nnz_rmat, nnz_w, nnz_sym});
  ASSERT_LT(std::min({nnz_rmat, nnz_w, nnz_sym}), hi)
      << "store graphs must straddle the crossover for a mixed run";

  const std::size_t kQueries = 40;
  const auto workload = make_workload(kQueries);
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  service::ExecutorOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;
  opts.backend_mode = service::BackendMode::kAuto;
  opts.crossover_nnz = hi;  // largest graph -> GpuSim, smaller -> CpuPar
  opts.cpupar_threads = 2;
  service::QueryExecutor exec(store, opts);

  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(kQueries);
  for (const auto& req : workload) futures.push_back(exec.submit(req));
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto got = futures[i].get();
    expect_bit_exact(got, serial[i], i);
    EXPECT_TRUE(got.backend == "cpupar" || got.backend == "gpusim")
        << "query " << i << " ran on '" << got.backend << "'";
  }

  const auto stats = exec.stats();
  EXPECT_GT(stats.ran_cpupar, 0u);
  EXPECT_GT(stats.ran_gpusim, 0u);
  EXPECT_EQ(stats.ran_cpupar + stats.ran_gpusim, kQueries);
}

/// Every query forced onto CpuPar with 4 executor workers x 3 pool threads:
/// twelve compute threads in flight, results still byte-identical to the
/// serial oracle. This is the configuration the TSan stage leans on.
TEST(ServiceStress, ForcedCpuParConcurrentWorkloadBitExactVsSerial) {
  auto store = make_store();
  const std::size_t kQueries = 40;
  const auto workload = make_workload(kQueries);
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  service::ExecutorOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;
  opts.backend_mode = service::BackendMode::kForceCpuPar;
  opts.cpupar_threads = 3;
  service::QueryExecutor exec(store, opts);

  // Hammer admission from several client threads, as in the mixed test.
  std::vector<std::future<service::QueryResult>> futures(kQueries);
  const std::size_t kClients = 3;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < kQueries; i += kClients)
        futures[i] = exec.submit(workload[i]);
    });
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto got = futures[i].get();
    expect_bit_exact(got, serial[i], i);
    EXPECT_EQ(got.backend, "cpupar") << "query " << i;
  }
  const auto stats = exec.stats();
  EXPECT_EQ(stats.ran_cpupar, kQueries);
  EXPECT_EQ(stats.ran_gpusim, 0u);
}

TEST(ServiceStress, MixedDeadlinesPartitionCleanly) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 8;  // small on purpose: shedding is expected
  service::QueryExecutor exec(store, opts);

  auto workload = make_workload(40);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (i % 3 == 0) workload[i].timeout = 0ms;  // born expired
  }

  std::vector<std::future<service::QueryResult>> futures;
  for (const auto& req : workload) futures.push_back(exec.submit(req));

  std::uint64_t ok = 0, cancelled = 0, shed = 0, failed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    switch (res.status) {
      case service::QueryStatus::kOk: ++ok; break;
      case service::QueryStatus::kCancelled: ++cancelled; break;
      case service::QueryStatus::kShed: ++shed; break;
      case service::QueryStatus::kFailed: ++failed; break;
      case service::QueryStatus::kCount: FAIL(); break;
    }
    // A query born past its deadline may be shed at the door, but if it
    // reached a worker it must come back cancelled, never kOk.
    if (workload[i].timeout == 0ms)
      EXPECT_NE(res.status, service::QueryStatus::kOk) << "query " << i;
  }
  EXPECT_EQ(failed, 0u);
  EXPECT_GT(cancelled, 0u);  // the born-expired ones that got through
  const auto stats = exec.stats();
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(ok + cancelled + shed + failed, stats.submitted);
}

TEST(ServiceStress, CancelTokenStopsALongQueryMidFlight) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 4;
  service::QueryExecutor exec(store, opts);

  service::QueryRequest req;
  req.kind = service::QueryKind::kPageRank;
  req.graph = "rmat";
  req.tol = 0.0;  // never converges: runs until cancelled
  req.max_iterations = 1000000;
  req.cancel = grb::make_cancel_token();

  auto future = exec.submit(req);
  // Event wait, not a fixed sleep: the worker bumps stats().started the
  // moment it begins executing the query, so cancelling after observing it
  // guarantees the token interrupts a genuinely mid-flight run on any
  // machine speed.
  while (exec.stats().started == 0) std::this_thread::yield();
  req.cancel->store(true);
  const auto res = future.get();  // must resolve promptly, not spin forever
  EXPECT_EQ(res.status, service::QueryStatus::kCancelled);
}

/// The sharded-serving acceptance test: shrink every worker context's arena
/// below the graphs' CSR footprint, hand each worker a multi-context
/// placement, and the whole-graph traversals must be served through >= 2
/// row-block shards — bit-exact against the serial oracle, with the halo
/// traffic visible in the service counters. PageRank rides along to show
/// non-shardable kinds still complete (kAuto routes them to CpuPar below
/// the crossover instead of failing on the monolithic upload).
TEST(ServiceStress, OversizedGraphServedThroughShardsBitExactVsSerial) {
  auto store = make_store();
  std::size_t min_csr = ~std::size_t{0};
  for (const auto& name : store->names())
    min_csr = std::min(min_csr, store->get(name)->device_csr_bytes_estimate());

  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  opts.shard_contexts = 4;
  // Every graph's CSR overflows one arena, so no monolithic device image
  // can exist; per-shard slices still fit. The margin below min_csr is
  // deliberately thin: the pool's power-of-two size classes round every
  // buffer up, so a ~5 KB shard slice charges ~8 KB against the arena and
  // a much smaller arena would OOM on the per-query working set rather
  // than on the monolithic image this test is about.
  opts.device_properties.total_global_memory = min_csr - 512;
  // The workload cycles three graphs whose home-context shard slices
  // cannot coexist in the deliberately tiny arena: shrink the cache budget
  // so oversized entries are served build-per-query (insert_within_budget
  // skips entries larger than the budget) instead of pinning a previous
  // graph's shard in the arena while the next one uploads.
  opts.cache_memory_fraction = 0.25;
  service::QueryExecutor exec(store, opts);

  const std::size_t kQueries = 30;
  const auto workload = make_workload(kQueries);
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(kQueries);
  for (const auto& req : workload) futures.push_back(exec.submit(req));

  std::uint64_t sharded_kinds = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto got = futures[i].get();
    expect_bit_exact(got, serial[i], i);
    const auto kind = workload[i].kind;
    if (kind == service::QueryKind::kBfs ||
        kind == service::QueryKind::kSssp ||
        kind == service::QueryKind::kConnectedComponents) {
      EXPECT_EQ(got.backend, "gpushard") << "query " << i;
      ++sharded_kinds;
    } else {
      EXPECT_EQ(got.backend, "cpupar") << "query " << i;
    }
  }

  const auto stats = exec.stats();
  EXPECT_EQ(stats.ran_gpushard, sharded_kinds);
  EXPECT_GE(stats.shards_active, 2u) << "oversized graphs must fan out";
  EXPECT_GT(stats.halo_bytes_exchanged, 0u);
  EXPECT_GT(stats.halo_seconds_hidden, 0.0)
      << "halo uploads should overlap earlier shards' kernels";
}

}  // namespace
