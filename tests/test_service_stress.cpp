/// Concurrency stress for the serving layer — the acceptance test for the
/// "placement, not math" contract: N workers x M mixed queries, submitted
/// from several client threads at once, and every successful result must be
/// BIT-EXACT against the same query run serially on the sequential backend.
/// That holds whichever backend the executor places each query on: the
/// mixed-backend tests below split one workload across CpuPar and GpuSim at
/// a crossover threshold, and force-CpuPar runs nest its per-worker thread
/// pools inside the executor's worker threads. Run under ThreadSanitizer by
/// scripts/ci.sh (the tsan stage); any data race between worker contexts,
/// CpuPar pools, the store, or the stats block fires there.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "algorithms/incremental.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"
#include "service/executor.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"

namespace {

using namespace std::chrono_literals;

std::shared_ptr<service::GraphStore> make_store() {
  auto store = std::make_shared<service::GraphStore>();
  // Directed scale-free graph for BFS / PageRank.
  store->add("rmat", gbtl_graph::rmat(7, 8, /*seed=*/11));
  // Weighted variant for SSSP.
  store->add("rmat-w",
             gbtl_graph::with_random_weights(
                 gbtl_graph::rmat(7, 8, /*seed=*/13), 1.0, 8.0, /*seed=*/17));
  // Symmetric, loop-free variant for triangle count / components.
  store->add("rmat-sym",
             gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                 gbtl_graph::rmat(7, 6, /*seed=*/19))));
  return store;
}

/// The mixed workload: every kind, several sources, across three graphs.
std::vector<service::QueryRequest> make_workload(std::size_t count) {
  std::vector<service::QueryRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    service::QueryRequest r;
    switch (i % 5) {
      case 0:
        r.kind = service::QueryKind::kBfs;
        r.graph = "rmat";
        r.source = (i * 37) % 128;
        break;
      case 1:
        r.kind = service::QueryKind::kSssp;
        r.graph = "rmat-w";
        r.source = (i * 53) % 128;
        break;
      case 2:
        r.kind = service::QueryKind::kPageRank;
        r.graph = "rmat";
        r.max_iterations = 25;
        break;
      case 3:
        r.kind = service::QueryKind::kTriangleCount;
        r.graph = "rmat-sym";
        break;
      case 4:
        r.kind = service::QueryKind::kConnectedComponents;
        r.graph = "rmat-sym";
        break;
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

void expect_bit_exact(const service::QueryResult& got,
                      const service::QueryResult& want, std::size_t i) {
  ASSERT_EQ(got.status, service::QueryStatus::kOk)
      << "query " << i << ": " << got.error;
  ASSERT_EQ(want.status, service::QueryStatus::kOk)
      << "query " << i << ": " << want.error;
  EXPECT_EQ(got.indices, want.indices) << "query " << i;
  EXPECT_EQ(got.ivals, want.ivals) << "query " << i;
  EXPECT_EQ(got.scalar, want.scalar) << "query " << i;
  ASSERT_EQ(got.dvals.size(), want.dvals.size()) << "query " << i;
  if (!got.dvals.empty())
    EXPECT_EQ(std::memcmp(got.dvals.data(), want.dvals.data(),
                          got.dvals.size() * sizeof(double)),
              0)
        << "query " << i << ": double payload not bit-exact";
}

TEST(ServiceStress, ConcurrentMixedWorkloadBitExactVsSerial) {
  auto store = make_store();
  const std::size_t kQueries = 48;
  const auto workload = make_workload(kQueries);

  // Serial ground truth first, on the sequential backend, one at a time.
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  service::ExecutorOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;  // nothing sheds; every query must run
  service::QueryExecutor exec(store, opts);

  // Hammer the admission path from several client threads at once. One
  // batch's worker spread is scheduling luck — on a fast machine a single
  // worker can drain all 48 tiny queries before its peers wake from the
  // queue's condition variable — so re-submit the batch (bounded) until a
  // second worker shows up. Every round's results stay bit-checked.
  std::map<std::size_t, std::size_t> per_worker;
  std::size_t rounds = 0;
  while (rounds < 5 && per_worker.size() < 2) {
    ++rounds;
    std::vector<std::future<service::QueryResult>> futures(kQueries);
    const std::size_t kClients = 3;
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c)
      clients.emplace_back([&, c] {
        for (std::size_t i = c; i < kQueries; i += kClients)
          futures[i] = exec.submit(workload[i]);
      });
    for (auto& t : clients) t.join();

    for (std::size_t i = 0; i < kQueries; ++i) {
      const auto got = futures[i].get();
      expect_bit_exact(got, serial[i], i);
      ++per_worker[got.worker];
    }
  }

  const auto stats = exec.stats();
  EXPECT_EQ(stats.submitted, kQueries * rounds);
  EXPECT_EQ(stats.completed, kQueries * rounds);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  // Multiple workers must have seen work across the rounds; tolerate
  // stragglers but not a fully serialized executor.
  EXPECT_GE(per_worker.size(), 2u);
}

TEST(ServiceStress, RepeatedRoundsReuseTheDeviceCache) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  // Pin to the simulated GPU: this test exists to exercise the per-worker
  // device cache, which kAuto would route these small graphs around.
  opts.backend_mode = service::BackendMode::kForceGpuSim;
  service::QueryExecutor exec(store, opts);

  const auto workload = make_workload(10);
  std::vector<service::QueryResult> serial;
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  // Three rounds over the same graphs: rounds 2 and 3 hit each worker's
  // device cache, and the answers must not drift.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<service::QueryResult>> futures;
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (std::size_t i = 0; i < futures.size(); ++i)
      expect_bit_exact(futures[i].get(), serial[i], i);
  }
}

/// One workload split across BOTH worker-side backends: the crossover sits
/// between the store's smallest and largest graph, so some queries run on
/// CpuPar and some on GpuSim inside the same executor — and every one must
/// still be bit-exact against the serial oracle.
TEST(ServiceStress, MixedBackendWorkloadBitExactVsSerial) {
  auto store = make_store();
  const std::size_t nnz_rmat = store->get("rmat")->num_edges();
  const std::size_t nnz_w = store->get("rmat-w")->num_edges();
  const std::size_t nnz_sym = store->get("rmat-sym")->num_edges();
  const std::size_t hi = std::max({nnz_rmat, nnz_w, nnz_sym});
  ASSERT_LT(std::min({nnz_rmat, nnz_w, nnz_sym}), hi)
      << "store graphs must straddle the crossover for a mixed run";

  const std::size_t kQueries = 40;
  const auto workload = make_workload(kQueries);
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  service::ExecutorOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;
  opts.backend_mode = service::BackendMode::kAuto;
  opts.crossover_nnz = hi;  // largest graph -> GpuSim, smaller -> CpuPar
  opts.cpupar_threads = 2;
  service::QueryExecutor exec(store, opts);

  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(kQueries);
  for (const auto& req : workload) futures.push_back(exec.submit(req));
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto got = futures[i].get();
    expect_bit_exact(got, serial[i], i);
    EXPECT_TRUE(got.backend == "cpupar" || got.backend == "gpusim")
        << "query " << i << " ran on '" << got.backend << "'";
  }

  const auto stats = exec.stats();
  EXPECT_GT(stats.ran_cpupar, 0u);
  EXPECT_GT(stats.ran_gpusim, 0u);
  EXPECT_EQ(stats.ran_cpupar + stats.ran_gpusim, kQueries);
}

/// Every query forced onto CpuPar with 4 executor workers x 3 pool threads:
/// twelve compute threads in flight, results still byte-identical to the
/// serial oracle. This is the configuration the TSan stage leans on.
TEST(ServiceStress, ForcedCpuParConcurrentWorkloadBitExactVsSerial) {
  auto store = make_store();
  const std::size_t kQueries = 40;
  const auto workload = make_workload(kQueries);
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  service::ExecutorOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;
  opts.backend_mode = service::BackendMode::kForceCpuPar;
  opts.cpupar_threads = 3;
  service::QueryExecutor exec(store, opts);

  // Hammer admission from several client threads, as in the mixed test.
  std::vector<std::future<service::QueryResult>> futures(kQueries);
  const std::size_t kClients = 3;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < kQueries; i += kClients)
        futures[i] = exec.submit(workload[i]);
    });
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto got = futures[i].get();
    expect_bit_exact(got, serial[i], i);
    EXPECT_EQ(got.backend, "cpupar") << "query " << i;
  }
  const auto stats = exec.stats();
  EXPECT_EQ(stats.ran_cpupar, kQueries);
  EXPECT_EQ(stats.ran_gpusim, 0u);
}

TEST(ServiceStress, MixedDeadlinesPartitionCleanly) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 8;  // small on purpose: shedding is expected
  service::QueryExecutor exec(store, opts);

  auto workload = make_workload(40);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (i % 3 == 0) workload[i].timeout = 0ms;  // born expired
  }

  std::vector<std::future<service::QueryResult>> futures;
  for (const auto& req : workload) futures.push_back(exec.submit(req));

  std::uint64_t ok = 0, cancelled = 0, shed = 0, failed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    switch (res.status) {
      case service::QueryStatus::kOk: ++ok; break;
      case service::QueryStatus::kCancelled: ++cancelled; break;
      case service::QueryStatus::kShed: ++shed; break;
      case service::QueryStatus::kFailed: ++failed; break;
      case service::QueryStatus::kCount: FAIL(); break;
    }
    // A query born past its deadline may be shed at the door, but if it
    // reached a worker it must come back cancelled, never kOk.
    if (workload[i].timeout == 0ms)
      EXPECT_NE(res.status, service::QueryStatus::kOk) << "query " << i;
  }
  EXPECT_EQ(failed, 0u);
  EXPECT_GT(cancelled, 0u);  // the born-expired ones that got through
  const auto stats = exec.stats();
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(ok + cancelled + shed + failed, stats.submitted);
}

TEST(ServiceStress, CancelTokenStopsALongQueryMidFlight) {
  auto store = make_store();
  service::ExecutorOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 4;
  service::QueryExecutor exec(store, opts);

  service::QueryRequest req;
  req.kind = service::QueryKind::kPageRank;
  req.graph = "rmat";
  req.tol = 0.0;  // never converges: runs until cancelled
  req.max_iterations = 1000000;
  req.cancel = grb::make_cancel_token();

  auto future = exec.submit(req);
  // Event wait, not a fixed sleep: the worker bumps stats().started the
  // moment it begins executing the query, so cancelling after observing it
  // guarantees the token interrupts a genuinely mid-flight run on any
  // machine speed.
  while (exec.stats().started == 0) std::this_thread::yield();
  req.cancel->store(true);
  const auto res = future.get();  // must resolve promptly, not spin forever
  EXPECT_EQ(res.status, service::QueryStatus::kCancelled);
}

/// The sharded-serving acceptance test: shrink every worker context's arena
/// below the graphs' CSR footprint, hand each worker a multi-context
/// placement, and the whole-graph traversals must be served through >= 2
/// row-block shards — bit-exact against the serial oracle, with the halo
/// traffic visible in the service counters. PageRank rides along to show
/// non-shardable kinds still complete (kAuto routes them to CpuPar below
/// the crossover instead of failing on the monolithic upload).
TEST(ServiceStress, OversizedGraphServedThroughShardsBitExactVsSerial) {
  // One scale up from make_store(): the arena below is sized just under the
  // smallest graph's CSR, and at scale 7 the deduplicated CSR estimate
  // leaves too little headroom for a query's dense working vectors. Scale 8
  // keeps CSR >> working set, so "smaller than every CSR" still leaves
  // room to actually run.
  auto store = std::make_shared<service::GraphStore>();
  store->add("rmat", gbtl_graph::rmat(8, 8, /*seed=*/11));
  store->add("rmat-w",
             gbtl_graph::with_random_weights(
                 gbtl_graph::rmat(8, 8, /*seed=*/13), 1.0, 8.0, /*seed=*/17));
  store->add("rmat-sym",
             gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                 gbtl_graph::rmat(8, 6, /*seed=*/19))));
  std::size_t min_csr = ~std::size_t{0};
  for (const auto& name : store->names())
    min_csr = std::min(min_csr, store->get(name)->device_csr_bytes_estimate());

  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 64;
  // 8-way fan-out keeps the largest graph's per-context slice (plus a
  // query's dense working vectors) inside an arena sized below the
  // SMALLEST graph's whole CSR — the gap between those two footprints is
  // what the shard count buys.
  opts.shard_contexts = 8;
  // Every graph's CSR overflows one arena, so no monolithic device image
  // can exist; per-shard slices still fit. The margin below min_csr is
  // deliberately thin: the pool's power-of-two size classes round every
  // buffer up, so a ~5 KB shard slice charges ~8 KB against the arena and
  // a much smaller arena would OOM on the per-query working set rather
  // than on the monolithic image this test is about.
  opts.device_properties.total_global_memory = min_csr - 512;
  // The workload cycles three graphs whose home-context shard slices
  // cannot coexist in the deliberately tiny arena: shrink the cache budget
  // so oversized entries are served build-per-query (insert_within_budget
  // skips entries larger than the budget) instead of pinning a previous
  // graph's shard in the arena while the next one uploads.
  opts.cache_memory_fraction = 0.25;
  service::QueryExecutor exec(store, opts);

  const std::size_t kQueries = 30;
  const auto workload = make_workload(kQueries);
  std::vector<service::QueryResult> serial;
  serial.reserve(kQueries);
  for (const auto& req : workload)
    serial.push_back(service::QueryExecutor::execute_serial(*store, req));

  std::vector<std::future<service::QueryResult>> futures;
  futures.reserve(kQueries);
  for (const auto& req : workload) futures.push_back(exec.submit(req));

  std::uint64_t sharded_kinds = 0;
  for (std::size_t i = 0; i < kQueries; ++i) {
    const auto got = futures[i].get();
    expect_bit_exact(got, serial[i], i);
    const auto kind = workload[i].kind;
    if (kind == service::QueryKind::kBfs ||
        kind == service::QueryKind::kSssp ||
        kind == service::QueryKind::kConnectedComponents) {
      EXPECT_EQ(got.backend, "gpushard") << "query " << i;
      ++sharded_kinds;
    } else {
      EXPECT_EQ(got.backend, "cpupar") << "query " << i;
    }
  }

  const auto stats = exec.stats();
  EXPECT_EQ(stats.ran_gpushard, sharded_kinds);
  EXPECT_GE(stats.shards_active, 2u) << "oversized graphs must fan out";
  EXPECT_GT(stats.halo_bytes_exchanged, 0u);
  EXPECT_GT(stats.halo_seconds_hidden, 0.0)
      << "halo uploads should overlap earlier shards' kernels";
}

// ---------------------------------------------------------------------------
// Streaming mutations: mutate-under-query + incremental warm starts
// ---------------------------------------------------------------------------

/// A symmetric add batch (both directions of each pair) — keeps the stream
/// graph valid for components / triangle count throughout the run.
gbtl_graph::EdgeList symmetric_batch(
    const std::vector<std::pair<gbtl_graph::Index, gbtl_graph::Index>>& pairs,
    gbtl_graph::Index n, double w) {
  gbtl_graph::EdgeList b;
  b.num_vertices = n;
  for (const auto& [u, v] : pairs) {
    b.src.push_back(u);
    b.dst.push_back(v);
    b.weight.push_back(w);
    b.src.push_back(v);
    b.dst.push_back(u);
    b.weight.push_back(w);
  }
  return b;
}

/// The mutate-under-query differential harness: 2 mutator threads stream
/// add/remove batches through GraphStore::apply_edges (compaction forced to
/// trigger mid-run) while 3 client threads hammer the executor with mixed
/// queries. Every completed query carries the version it ran against; its
/// payload must be BIT-EXACT against the serial oracle replayed on that
/// exact snapshot — not on whatever version is current by the time the
/// future resolves. This is the test scripts/ci.sh runs under TSan.
TEST(ServiceStress, MutateUnderQueryBitExactVsSnapshotOracle) {
  constexpr gbtl_graph::Index kN = 128;
  auto store = std::make_shared<service::GraphStore>();
  store->add("stream",
             gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                 gbtl_graph::rmat(7, 6, /*seed=*/29))));

  // Every published snapshot by version, including the initial one, so any
  // stamped version can be replayed serially after the fact.
  std::mutex published_mutex;
  std::map<std::uint64_t, service::SnapshotPtr> published;
  published[store->get("stream")->version] = store->get("stream");

  // Aggressive policy so compaction fires while queries are in flight.
  gbtl_graph::CompactionPolicy policy;
  policy.min_overlay_nnz = 16;
  policy.max_overlay_ratio = 0.02;

  service::ExecutorOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 256;
  opts.cpupar_threads = 2;
  service::QueryExecutor exec(store, opts);

  constexpr std::size_t kMutators = 2;
  constexpr std::size_t kBatchesPerMutator = 24;
  std::vector<std::thread> mutators;
  for (std::size_t m = 0; m < kMutators; ++m)
    mutators.emplace_back([&, m] {
      std::mt19937 rng(41 + static_cast<unsigned>(m));
      std::uniform_int_distribution<gbtl_graph::Index> v(0, kN - 1);
      std::vector<std::pair<gbtl_graph::Index, gbtl_graph::Index>> mine;
      for (std::size_t b = 0; b < kBatchesPerMutator; ++b) {
        std::vector<std::pair<gbtl_graph::Index, gbtl_graph::Index>> add;
        for (std::size_t e = 0; e < 1 + rng() % 3; ++e) {
          const auto u2 = v(rng), v2 = v(rng);
          if (u2 != v2) add.emplace_back(u2, v2);
        }
        std::vector<std::pair<gbtl_graph::Index, gbtl_graph::Index>> rm;
        if (!mine.empty() && rng() % 3 == 0) {
          rm.push_back(mine[rng() % mine.size()]);
        }
        const auto snap = store->apply_edges(
            "stream", symmetric_batch(add, kN, 2.0),
            symmetric_batch(rm, kN, 0.0), policy);
        ASSERT_NE(snap, nullptr);
        mine.insert(mine.end(), add.begin(), add.end());
        std::lock_guard<std::mutex> lock(published_mutex);
        published[snap->version] = snap;
      }
    });

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kQueriesPerClient = 30;
  std::vector<std::vector<service::QueryRequest>> reqs(kClients);
  std::vector<std::vector<std::future<service::QueryResult>>> futs(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kQueriesPerClient; ++i) {
        service::QueryRequest r;
        r.graph = "stream";
        switch ((c + i) % 4) {
          case 0:
            r.kind = service::QueryKind::kBfs;
            r.source = (i * 37) % kN;
            break;
          case 1:
            r.kind = service::QueryKind::kPageRank;
            r.max_iterations = 15;
            break;
          case 2:
            r.kind = service::QueryKind::kConnectedComponents;
            break;
          case 3:
            r.kind = service::QueryKind::kTriangleCount;
            break;
        }
        reqs[c].push_back(r);
        futs[c].push_back(exec.submit(r));
      }
    });

  for (auto& t : mutators) t.join();
  for (auto& t : clients) t.join();

  std::size_t checked = 0;
  for (std::size_t c = 0; c < kClients; ++c)
    for (std::size_t i = 0; i < futs[c].size(); ++i) {
      const auto got = futs[c][i].get();
      ASSERT_EQ(got.status, service::QueryStatus::kOk)
          << "client " << c << " query " << i << ": " << got.error;
      service::SnapshotPtr snap;
      {
        std::lock_guard<std::mutex> lock(published_mutex);
        const auto it = published.find(got.version);
        ASSERT_NE(it, published.end())
            << "client " << c << " query " << i
            << " stamped unknown version " << got.version;
        snap = it->second;
      }
      const auto want =
          service::QueryExecutor::execute_serial_on(*snap, reqs[c][i]);
      expect_bit_exact(got, want, c * 1000 + i);
      ++checked;
    }
  EXPECT_EQ(checked, kClients * kQueriesPerClient);

  const auto stats = exec.stats();
  EXPECT_EQ(stats.mutations, kMutators * kBatchesPerMutator);
  EXPECT_GT(stats.compactions, 0u)
      << "the policy was tuned to compact mid-run; it never fired";
  EXPECT_GT(stats.edges_added, 0u);
  EXPECT_EQ(stats.completed, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.failed, 0u);
}

/// Incremental ConnectedComponents, deterministic serial phases: labels of
/// a warm-started solve must be BITWISE identical to the cold solve on the
/// same version (min-label propagation has a unique fixpoint). Runs once
/// forced onto CpuPar and once onto GpuSim, so both backends' overlay vxm
/// paths serve a real warm start. Also pins the result-cache replay and the
/// structural-removal cold fallback.
TEST(ServiceStress, IncrementalComponentsWarmStartBitExactVsCold) {
  for (const auto mode : {service::BackendMode::kForceCpuPar,
                          service::BackendMode::kForceGpuSim}) {
    constexpr gbtl_graph::Index kN = 128;
    auto store = std::make_shared<service::GraphStore>();
    store->add("inc",
               gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                   gbtl_graph::rmat(7, 4, /*seed=*/31))));

    service::ExecutorOptions opts;
    opts.workers = 1;  // deterministic phase ordering
    opts.backend_mode = mode;
    opts.cpupar_threads = 2;
    service::QueryExecutor exec(store, opts);

    service::QueryRequest cc;
    cc.kind = service::QueryKind::kConnectedComponents;
    cc.graph = "inc";
    cc.incremental = true;

    // Phase 1: no lineage yet — cold fallback, bit-exact, result cached.
    const auto r1 = exec.submit(cc).get();
    ASSERT_EQ(r1.status, service::QueryStatus::kOk) << r1.error;
    EXPECT_FALSE(r1.warm_start);
    expect_bit_exact(r1, service::QueryExecutor::execute_serial(*store, cc),
                     1);
    EXPECT_EQ(exec.stats().cold_fallbacks, 1u);

    // Phase 2: small adds-only symmetric batch -> eligible warm start.
    gbtl_graph::CompactionPolicy lax;  // defaults: no compaction here
    const auto v2 = store->apply_edges(
        "inc", symmetric_batch({{3, 90}, {17, 64}}, kN, 1.0),
        gbtl_graph::EdgeList{kN, {}, {}, {}}, lax);
    ASSERT_NE(v2, nullptr);
    ASSERT_FALSE(v2->structural_removals);

    const auto r2 = exec.submit(cc).get();
    ASSERT_EQ(r2.status, service::QueryStatus::kOk) << r2.error;
    EXPECT_TRUE(r2.warm_start) << "adds-only batch should warm-start";
    EXPECT_EQ(r2.version, v2->version);
    const auto cold2 = service::QueryExecutor::execute_serial_on(*v2, cc);
    // Labels bitwise; the round count in `scalar` is the incremental
    // pass's own and is NOT part of the contract.
    EXPECT_EQ(r2.indices, cold2.indices);
    EXPECT_EQ(r2.ivals, cold2.ivals) << "warm labels differ from cold solve";
    EXPECT_GE(exec.stats().warm_starts, 1u);

    // Phase 3: same version again -> served from the result cache verbatim.
    const auto r3 = exec.submit(cc).get();
    ASSERT_EQ(r3.status, service::QueryStatus::kOk) << r3.error;
    EXPECT_EQ(r3.backend, "result-cache");
    EXPECT_EQ(r3.ivals, r2.ivals);
    EXPECT_GE(exec.stats().result_cache_hits, 1u);

    // Phase 4: a batch that REMOVES a stored edge severs monotonicity ->
    // cold fallback, still bit-exact.
    const auto v3 = store->apply_edges(
        "inc", gbtl_graph::EdgeList{kN, {}, {}, {}},
        symmetric_batch({{3, 90}}, kN, 0.0), lax);
    ASSERT_NE(v3, nullptr);
    ASSERT_TRUE(v3->structural_removals);
    const auto r4 = exec.submit(cc).get();
    ASSERT_EQ(r4.status, service::QueryStatus::kOk) << r4.error;
    EXPECT_FALSE(r4.warm_start) << "removals must force a cold solve";
    expect_bit_exact(r4, service::QueryExecutor::execute_serial_on(*v3, cc),
                     4);
  }
}

/// Incremental PageRank: trajectory-dependent, so a warm result matches a
/// cold solve only to tolerance — but it is DETERMINISTIC given its seed.
/// The executor's seed is its own cached v1 result (bit-equal to the serial
/// cold solve at v1), so a serial pagerank_warm from that seed on v2's
/// merged graph is an exact oracle: memcmp equality demanded.
TEST(ServiceStress, IncrementalPageRankWarmMatchesSerialWarmOracle) {
  constexpr gbtl_graph::Index kN = 128;
  auto store = std::make_shared<service::GraphStore>();
  store->add("pr",
             gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                 gbtl_graph::rmat(7, 4, /*seed=*/37))));

  service::ExecutorOptions opts;
  opts.workers = 1;
  opts.backend_mode = service::BackendMode::kForceGpuSim;
  service::QueryExecutor exec(store, opts);

  service::QueryRequest pr;
  pr.kind = service::QueryKind::kPageRank;
  pr.graph = "pr";
  pr.incremental = true;
  pr.max_iterations = 40;
  pr.tol = 1e-10;

  // Phase 1: cold, bit-exact vs serial, cached as the v1 seed.
  const auto r1 = exec.submit(pr).get();
  ASSERT_EQ(r1.status, service::QueryStatus::kOk) << r1.error;
  EXPECT_FALSE(r1.warm_start);
  const auto serial1 = service::QueryExecutor::execute_serial(*store, pr);
  expect_bit_exact(r1, serial1, 1);

  // Phase 2: publish v2, query warm.
  gbtl_graph::CompactionPolicy lax;
  const auto v2 = store->apply_edges(
      "pr", symmetric_batch({{5, 99}, {40, 41}}, kN, 1.0),
      gbtl_graph::EdgeList{kN, {}, {}, {}}, lax);
  ASSERT_NE(v2, nullptr);
  const auto r2 = exec.submit(pr).get();
  ASSERT_EQ(r2.status, service::QueryStatus::kOk) << r2.error;
  EXPECT_TRUE(r2.warm_start);
  EXPECT_EQ(r2.version, v2->version);

  // Serial warm oracle: seed = serial cold ranks at v1, iterate on v2's
  // merged graph with the same knobs.
  const auto merged =
      gbtl_graph::to_matrix<double, grb::Sequential>(v2->materialize());
  grb::Vector<double, grb::Sequential> rank(kN);
  rank.build(serial1.indices, serial1.dvals);
  algorithms::pagerank_warm(merged, rank, pr.damping, pr.tol,
                            pr.max_iterations);
  grb::IndexArrayType want_idx;
  std::vector<double> want_vals;
  rank.extractTuples(want_idx, want_vals);
  ASSERT_EQ(r2.indices, want_idx);
  ASSERT_EQ(r2.dvals.size(), want_vals.size());
  EXPECT_EQ(std::memcmp(r2.dvals.data(), want_vals.data(),
                        want_vals.size() * sizeof(double)),
            0)
      << "warm PageRank must be bit-identical to the serial warm oracle";

  // And to tolerance against the cold solve on v2 (the documented limit of
  // incremental PageRank — see docs/streaming.md).
  const auto cold2 = service::QueryExecutor::execute_serial_on(*v2, pr);
  ASSERT_EQ(cold2.dvals.size(), r2.dvals.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < r2.dvals.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(r2.dvals[i] - cold2.dvals[i]));
  EXPECT_LT(max_diff, 1e-6)
      << "warm and cold PageRank diverged beyond solver tolerance";
  EXPECT_GE(exec.stats().warm_starts, 1u);
}

}  // namespace
