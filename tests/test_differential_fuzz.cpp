/// Differential fuzzing: seeded random COO graphs (banded, uniform,
/// power-law) x {semirings, masks incl. complement/structure, accumulators,
/// replace} run through mxv/vxm/mxm/eWiseAdd/eWiseMult on ALL THREE
/// registered backends (Sequential, CpuPar, GpuSim) and checked bit-for-bit
/// against a naive dense oracle that implements the GraphBLAS write
/// semantics (Z = accum(C,T), mask, Replace/Merge) with nothing shared with
/// any backend's sparse machinery. Failure messages name the dissenting
/// backend ("seq ..." / "cpupar ..." / "gpu ..."). The CpuPar legs run on a
/// real 3-worker pool bound by the fixture, so the cross-thread chunk paths
/// are exercised even on single-core CI machines.
///
/// Bit-for-bit equality across kernels with different summation orders is
/// made valid by fuzzing with integer-valued doubles in [-4, 4]: all
/// products and sums at these shapes are exactly representable, so floating
/// addition is associative on the fuzzed domain. mxv and vxm additionally
/// sweep every SpMV dispatch mode (adaptive, forced row-parallel, forced
/// load-balanced with a tiny chunk to force cross-team partial rows) — all
/// kernel variants must produce identical stored patterns and values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <set>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "backend_cpupar/pool.hpp"
#include "gbtl/gbtl.hpp"
#include "gbtl/overlay.hpp"
#include "gbtl/overlay_ops.hpp"
#include "gpu_sim/placement.hpp"
#include "gpu_sim/thread_pool.hpp"
#include "sparse/bitmap.hpp"
#include "sparse/fusion_plan.hpp"
#include "sparse/shard_plan.hpp"
#include "sparse/spgemm_select.hpp"
#include "sparse/spmv_select.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;
using grb::NoAccumulate;
using grb::NoMask;

// Five seeded cases per gtest instance; 40 instances per op = 200 seeded
// cases per op without exploding the ctest entry count.
constexpr unsigned kCasesPerInstance = 5;
constexpr unsigned kInstances = 40;

// mxv/vxm sweep every SpMV dispatch mode zipped with a traversal-direction
// pin AND a fusion-mode pin, so each run also exercises the push scatter /
// pull gather engines and the lazy op-DAG record/replay path alongside the
// kernel variants (a full cross product would multiply fuzz time for no new
// code paths: direction is chosen before the SpMV kernel, and fusion is a
// frontdoor recording layer orthogonal to both).
struct GpuModeZip {
  sparse::SpmvMode spmv;
  sparse::DirectionMode direction;
  sparse::FusionMode fusion;
};
constexpr GpuModeZip kModePairs[] = {
    {sparse::SpmvMode::Adaptive, sparse::DirectionMode::Auto,
     sparse::FusionMode::Auto},
    {sparse::SpmvMode::ForceCsrScalar, sparse::DirectionMode::ForcePush,
     sparse::FusionMode::Off},
    {sparse::SpmvMode::ForceCsrLoadBalanced, sparse::DirectionMode::ForcePull,
     sparse::FusionMode::Fuse},
};

// mxv/vxm also run a GpuShard leg with the shard count zipped over the
// seeded cases (1 = passthrough, 2 and 4 = real row-block fan-outs over a
// two-context placement): the halo broadcast, per-shard kernels, and
// shard-order merge must reproduce the oracle bit-for-bit. GBTL_SHARDS
// pins the count for sanitizer re-runs the same way GBTL_SPGEMM_MODE pins
// the SpGEMM strategy — honor the pin when present, zip otherwise.
constexpr std::size_t kShardCounts[] = {1, 2, 4};
std::size_t shard_count_for_case(unsigned c) {
  if (sparse::shard_count_override() > 0) return sparse::shard_count_override();
  return kShardCounts[c % (sizeof(kShardCounts) / sizeof(kShardCounts[0]))];
}

// mxm sweeps every SpGEMM strategy: forced ESC, forced hash, and Auto —
// the selector's pick must be bit-exact with both forced paths and the
// sequential oracle. scripts/ci.sh pins the sanitizer re-run to one mode
// via GBTL_SPGEMM_MODE (the env var cannot reach ctest-discovered shards,
// so the ASan stage invokes the binary directly).
std::vector<sparse::SpgemmMode> spgemm_sweep_modes() {
  if (const char* pin = std::getenv("GBTL_SPGEMM_MODE")) {
    if (std::strcmp(pin, "esc") == 0) return {sparse::SpgemmMode::Esc};
    if (std::strcmp(pin, "hash") == 0) return {sparse::SpgemmMode::Hash};
    if (std::strcmp(pin, "auto") == 0) return {sparse::SpgemmMode::Auto};
  }
  return {sparse::SpgemmMode::Esc, sparse::SpgemmMode::Hash,
          sparse::SpgemmMode::Auto};
}

// --------------------------------------------------------------------------
// Dense oracle
// --------------------------------------------------------------------------

struct DenseVec {
  IndexType n = 0;
  std::vector<double> val;
  std::vector<std::uint8_t> pres;

  explicit DenseVec(IndexType n_ = 0) : n(n_), val(n_, 0.0), pres(n_, 0) {}
};

struct DenseMat {
  IndexType nr = 0, nc = 0;
  std::vector<double> val;
  std::vector<std::uint8_t> pres;

  DenseMat(IndexType r = 0, IndexType c = 0)
      : nr(r), nc(c), val(r * c, 0.0), pres(r * c, 0) {}
  double& v(IndexType i, IndexType j) { return val[i * nc + j]; }
  double v(IndexType i, IndexType j) const { return val[i * nc + j]; }
  std::uint8_t& p(IndexType i, IndexType j) { return pres[i * nc + j]; }
  std::uint8_t p(IndexType i, IndexType j) const { return pres[i * nc + j]; }
};

/// Lowered mask interpretation, mirroring grb::MaskDesc.
struct MaskSpec {
  bool has = false;
  bool complement = false;
  bool structural = false;

  bool allows(bool present, double value) const {
    if (!has) return true;
    const bool ok = structural ? present : (present && value != 0.0);
    return complement ? !ok : ok;
  }
};

/// Oracle accumulator: absent = no accumulation.
using OracleAccum = std::function<double(double, double)>;

/// GraphBLAS write semantics on dense storage:
///   Z = accum ? accum(C, T) merged elementwise : T
///   out = mask-allowed ? Z : (replace ? absent : old C)
void oracle_write(DenseVec& c, const DenseVec& t, const DenseVec* mask,
                  const MaskSpec& ms, const OracleAccum& accum,
                  bool replace) {
  for (IndexType i = 0; i < c.n; ++i) {
    const bool mp = mask != nullptr && mask->pres[i];
    const double mv = mask != nullptr ? mask->val[i] : 0.0;
    const bool allowed = ms.allows(mp, mv);
    double zv = 0.0;
    bool zp = false;
    if (accum) {
      if (c.pres[i] && t.pres[i]) {
        zv = accum(c.val[i], t.val[i]);
        zp = true;
      } else if (t.pres[i]) {
        zv = t.val[i];
        zp = true;
      } else if (c.pres[i]) {
        zv = c.val[i];
        zp = true;
      }
    } else {
      zv = t.val[i];
      zp = t.pres[i] != 0;
    }
    if (allowed) {
      c.val[i] = zv;
      c.pres[i] = zp ? 1 : 0;
    } else if (replace) {
      c.pres[i] = 0;
    }
  }
}

void oracle_write(DenseMat& c, const DenseMat& t, const DenseMat* mask,
                  const MaskSpec& ms, const OracleAccum& accum,
                  bool replace) {
  for (IndexType i = 0; i < c.nr; ++i)
    for (IndexType j = 0; j < c.nc; ++j) {
      const bool mp = mask != nullptr && mask->p(i, j);
      const double mv = mask != nullptr ? mask->v(i, j) : 0.0;
      const bool allowed = ms.allows(mp, mv);
      double zv = 0.0;
      bool zp = false;
      if (accum) {
        if (c.p(i, j) && t.p(i, j)) {
          zv = accum(c.v(i, j), t.v(i, j));
          zp = true;
        } else if (t.p(i, j)) {
          zv = t.v(i, j);
          zp = true;
        } else if (c.p(i, j)) {
          zv = c.v(i, j);
          zp = true;
        }
      } else {
        zv = t.v(i, j);
        zp = t.p(i, j) != 0;
      }
      if (allowed) {
        c.v(i, j) = zv;
        c.p(i, j) = zp ? 1 : 0;
      } else if (replace) {
        c.p(i, j) = 0;
      }
    }
}

/// t = A (+.x) u with GraphBLAS presence semantics: t[i] is stored iff some
/// k has both A(i,k) and u(k) stored.
template <typename SR>
DenseVec oracle_mxv(const DenseMat& a, const DenseVec& u, const SR& sr) {
  DenseVec t(a.nr);
  for (IndexType i = 0; i < a.nr; ++i) {
    double acc = sr.zero();
    bool any = false;
    for (IndexType k = 0; k < a.nc; ++k) {
      if (a.p(i, k) && u.pres[k]) {
        acc = sr.add(acc, sr.mult(a.v(i, k), u.val[k]));
        any = true;
      }
    }
    if (any) {
      t.val[i] = acc;
      t.pres[i] = 1;
    }
  }
  return t;
}

/// t = u (+.x) A: t[j] folds u(k) * A(k, j) over k in ascending order — the
/// same combination order as both backends' push/pull formulations.
template <typename SR>
DenseVec oracle_vxm(const DenseVec& u, const DenseMat& a, const SR& sr) {
  DenseVec t(a.nc);
  for (IndexType j = 0; j < a.nc; ++j) {
    double acc = sr.zero();
    bool any = false;
    for (IndexType k = 0; k < a.nr; ++k) {
      if (u.pres[k] && a.p(k, j)) {
        acc = sr.add(acc, sr.mult(u.val[k], a.v(k, j)));
        any = true;
      }
    }
    if (any) {
      t.val[j] = acc;
      t.pres[j] = 1;
    }
  }
  return t;
}

template <typename SR>
DenseMat oracle_mxm(const DenseMat& a, const DenseMat& b, const SR& sr) {
  DenseMat t(a.nr, b.nc);
  for (IndexType i = 0; i < a.nr; ++i)
    for (IndexType j = 0; j < b.nc; ++j) {
      double acc = sr.zero();
      bool any = false;
      for (IndexType k = 0; k < a.nc; ++k) {
        if (a.p(i, k) && b.p(k, j)) {
          acc = sr.add(acc, sr.mult(a.v(i, k), b.v(k, j)));
          any = true;
        }
      }
      if (any) {
        t.v(i, j) = acc;
        t.p(i, j) = 1;
      }
    }
  return t;
}

template <typename Op>
DenseVec oracle_ewise_add(const DenseVec& u, const DenseVec& v,
                          const Op& op) {
  DenseVec t(u.n);
  for (IndexType i = 0; i < u.n; ++i) {
    if (u.pres[i] && v.pres[i]) {
      t.val[i] = op(u.val[i], v.val[i]);
      t.pres[i] = 1;
    } else if (u.pres[i]) {
      t.val[i] = u.val[i];
      t.pres[i] = 1;
    } else if (v.pres[i]) {
      t.val[i] = v.val[i];
      t.pres[i] = 1;
    }
  }
  return t;
}

template <typename Op>
DenseVec oracle_ewise_mult(const DenseVec& u, const DenseVec& v,
                           const Op& op) {
  DenseVec t(u.n);
  for (IndexType i = 0; i < u.n; ++i)
    if (u.pres[i] && v.pres[i]) {
      t.val[i] = op(u.val[i], v.val[i]);
      t.pres[i] = 1;
    }
  return t;
}

template <typename Op>
DenseMat oracle_ewise_add(const DenseMat& a, const DenseMat& b,
                          const Op& op) {
  DenseMat t(a.nr, a.nc);
  for (IndexType k = 0; k < a.nr * a.nc; ++k) {
    if (a.pres[k] && b.pres[k]) {
      t.val[k] = op(a.val[k], b.val[k]);
      t.pres[k] = 1;
    } else if (a.pres[k]) {
      t.val[k] = a.val[k];
      t.pres[k] = 1;
    } else if (b.pres[k]) {
      t.val[k] = b.val[k];
      t.pres[k] = 1;
    }
  }
  return t;
}

template <typename Op>
DenseMat oracle_ewise_mult(const DenseMat& a, const DenseMat& b,
                           const Op& op) {
  DenseMat t(a.nr, a.nc);
  for (IndexType k = 0; k < a.nr * a.nc; ++k)
    if (a.pres[k] && b.pres[k]) {
      t.val[k] = op(a.val[k], b.val[k]);
      t.pres[k] = 1;
    }
  return t;
}

// --------------------------------------------------------------------------
// Seeded input generation (tuples shared by oracle + both backends)
// --------------------------------------------------------------------------

struct MatTuples {
  IndexType nr, nc;
  IndexArrayType rows, cols;
  std::vector<double> vals;
};

struct VecTuples {
  IndexType n;
  IndexArrayType idx;
  std::vector<double> vals;
};

enum class Family { Banded, Uniform, PowerLaw };

/// Integer-valued doubles: exact products/sums => order-independent
/// floating arithmetic on the fuzzed domain.
double int_value(std::mt19937& rng) {
  return static_cast<double>(std::uniform_int_distribution<int>(-4, 4)(rng));
}

MatTuples gen_matrix(std::mt19937& rng, IndexType nr, IndexType nc,
                     Family family) {
  MatTuples m{nr, nc, {}, {}, {}};
  std::set<std::pair<IndexType, IndexType>> cells;
  switch (family) {
    case Family::Banded: {
      const IndexType bw = std::uniform_int_distribution<IndexType>(1, 3)(rng);
      std::bernoulli_distribution keep(0.8);
      for (IndexType i = 0; i < nr; ++i)
        for (IndexType j = (i > bw ? i - bw : 0);
             j < std::min<IndexType>(nc, i + bw + 1); ++j)
          if (keep(rng)) cells.emplace(i, j);
      break;
    }
    case Family::Uniform: {
      std::bernoulli_distribution keep(
          std::uniform_real_distribution<double>(0.05, 0.5)(rng));
      for (IndexType i = 0; i < nr; ++i)
        for (IndexType j = 0; j < nc; ++j)
          if (keep(rng)) cells.emplace(i, j);
      break;
    }
    case Family::PowerLaw: {
      // Hub rows with ~nr/(rank+1) targets, rank randomly permuted over
      // rows — a miniature scale-free degree profile.
      std::vector<IndexType> rank(nr);
      for (IndexType i = 0; i < nr; ++i) rank[i] = i;
      std::shuffle(rank.begin(), rank.end(), rng);
      std::uniform_int_distribution<IndexType> col(0, nc - 1);
      for (IndexType i = 0; i < nr; ++i) {
        const IndexType deg =
            std::min<IndexType>(nc, nr / (rank[i] + 1));
        for (IndexType d = 0; d < deg; ++d) cells.emplace(i, col(rng));
      }
      break;
    }
  }
  for (const auto& [i, j] : cells) {
    m.rows.push_back(i);
    m.cols.push_back(j);
    m.vals.push_back(int_value(rng));
  }
  return m;
}

VecTuples gen_vector(std::mt19937& rng, IndexType n, double density) {
  VecTuples v{n, {}, {}};
  std::bernoulli_distribution keep(density);
  for (IndexType i = 0; i < n; ++i)
    if (keep(rng)) {
      v.idx.push_back(i);
      v.vals.push_back(int_value(rng));
    }
  return v;
}

/// 0/1-valued mask tuples: stored zeros exercise value- vs structure-mask
/// divergence.
VecTuples gen_mask_vector(std::mt19937& rng, IndexType n) {
  VecTuples v{n, {}, {}};
  std::bernoulli_distribution keep(0.5);
  std::bernoulli_distribution truthy(0.6);
  for (IndexType i = 0; i < n; ++i)
    if (keep(rng)) {
      v.idx.push_back(i);
      v.vals.push_back(truthy(rng) ? 1.0 : 0.0);
    }
  return v;
}

MatTuples gen_mask_matrix(std::mt19937& rng, IndexType nr, IndexType nc) {
  MatTuples m{nr, nc, {}, {}, {}};
  std::bernoulli_distribution keep(0.5);
  std::bernoulli_distribution truthy(0.6);
  for (IndexType i = 0; i < nr; ++i)
    for (IndexType j = 0; j < nc; ++j)
      if (keep(rng)) {
        m.rows.push_back(i);
        m.cols.push_back(j);
        m.vals.push_back(truthy(rng) ? 1.0 : 0.0);
      }
  return m;
}

DenseMat densify(const MatTuples& m) {
  DenseMat d(m.nr, m.nc);
  for (std::size_t k = 0; k < m.vals.size(); ++k) {
    d.v(m.rows[k], m.cols[k]) = m.vals[k];
    d.p(m.rows[k], m.cols[k]) = 1;
  }
  return d;
}

DenseVec densify(const VecTuples& v) {
  DenseVec d(v.n);
  for (std::size_t k = 0; k < v.vals.size(); ++k) {
    d.val[v.idx[k]] = v.vals[k];
    d.pres[v.idx[k]] = 1;
  }
  return d;
}

template <typename T, typename Tag>
grb::Matrix<T, Tag> to_backend(const MatTuples& m) {
  grb::Matrix<T, Tag> a(m.nr, m.nc);
  std::vector<T> vals(m.vals.begin(), m.vals.end());
  a.build(m.rows, m.cols, vals, grb::Second<T>{});
  return a;
}

template <typename T, typename Tag>
grb::Vector<T, Tag> to_backend(const VecTuples& v) {
  grb::Vector<T, Tag> u(v.n);
  std::vector<T> vals(v.vals.begin(), v.vals.end());
  u.build(v.idx, vals, grb::Second<T>{});
  return u;
}

// --------------------------------------------------------------------------
// Comparison against the oracle (exact equality)
// --------------------------------------------------------------------------

template <typename Tag>
void expect_matches(const grb::Vector<double, Tag>& got,
                    const DenseVec& want, const char* what) {
  IndexArrayType gi;
  std::vector<double> gv;
  got.extractTuples(gi, gv);
  IndexArrayType wi;
  std::vector<double> wv;
  for (IndexType i = 0; i < want.n; ++i)
    if (want.pres[i]) {
      wi.push_back(i);
      wv.push_back(want.val[i]);
    }
  ASSERT_EQ(gi, wi) << what << ": stored pattern differs from oracle";
  for (std::size_t k = 0; k < wv.size(); ++k)
    ASSERT_EQ(gv[k], wv[k]) << what << ": value at index " << wi[k];
}

template <typename Tag>
void expect_matches(const grb::Matrix<double, Tag>& got,
                    const DenseMat& want, const char* what) {
  IndexArrayType gr, gc;
  std::vector<double> gv;
  got.extractTuples(gr, gc, gv);
  IndexArrayType wr, wc;
  std::vector<double> wv;
  for (IndexType i = 0; i < want.nr; ++i)
    for (IndexType j = 0; j < want.nc; ++j)
      if (want.p(i, j)) {
        wr.push_back(i);
        wc.push_back(j);
        wv.push_back(want.v(i, j));
      }
  ASSERT_EQ(gr, wr) << what << ": row pattern differs from oracle";
  ASSERT_EQ(gc, wc) << what << ": col pattern differs from oracle";
  for (std::size_t k = 0; k < wv.size(); ++k)
    ASSERT_EQ(gv[k], wv[k]) << what << ": value at (" << wr[k] << ","
                            << wc[k] << ")";
}

// --------------------------------------------------------------------------
// Runtime-pick -> compile-time-object dispatch
// --------------------------------------------------------------------------

template <typename F>
void with_semiring(unsigned pick, F&& f) {
  switch (pick % 3) {
    case 0:
      f(grb::ArithmeticSemiring<double>{});
      break;
    case 1:
      f(grb::MinPlusSemiring<double>{});
      break;
    default:
      f(grb::MaxTimesSemiring<double>{});
      break;
  }
}

template <typename F>
void with_binary_op(unsigned pick, F&& f) {
  switch (pick % 4) {
    case 0:
      f(grb::Plus<double>{});
      break;
    case 1:
      f(grb::Times<double>{});
      break;
    case 2:
      f(grb::Min<double>{});
      break;
    default:
      f(grb::Max<double>{});
      break;
  }
}

/// f(frontendAccum, oracleAccum)
template <typename F>
void with_accum(unsigned pick, F&& f) {
  switch (pick % 3) {
    case 0:
      f(NoAccumulate{}, OracleAccum{});
      break;
    case 1:
      f(grb::Plus<double>{},
        OracleAccum{[](double a, double b) { return a + b; }});
      break;
    default:
      f(grb::Min<double>{},
        OracleAccum{[](double a, double b) { return std::min(a, b); }});
      break;
  }
}

/// f(frontendMaskArg, MaskSpec) for each of the five mask variants.
template <typename MaskObj, typename F>
void for_each_mask_variant(const MaskObj& m, F&& f) {
  f(NoMask{}, MaskSpec{false, false, false});
  f(m, MaskSpec{true, false, false});
  f(grb::structure(m), MaskSpec{true, false, true});
  f(grb::complement(m), MaskSpec{true, true, false});
  f(grb::complement(grb::structure(m)), MaskSpec{true, true, true});
}

// --------------------------------------------------------------------------
// The fuzz fixture
// --------------------------------------------------------------------------

class DifferentialFuzz : public ::testing::TestWithParam<unsigned> {
 protected:
  void SetUp() override {
    saved_chunk_ = sparse::spmv_lb_chunk();
    // Tiny chunks force multi-team partial-row paths in the load-balanced
    // kernel even at fuzz-sized matrices.
    sparse::spmv_lb_chunk() = 4;
  }
  void TearDown() override { sparse::spmv_lb_chunk() = saved_chunk_; }

  static Family family_of(std::mt19937& rng) {
    switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
      case 0:
        return Family::Banded;
      case 1:
        return Family::Uniform;
      default:
        return Family::PowerLaw;
    }
  }

  static IndexType dim(std::mt19937& rng) {
    return std::uniform_int_distribution<IndexType>(1, 12)(rng);
  }

 private:
  sparse::Index saved_chunk_ = 0;
  // Bind a real 3-worker pool for the CpuPar legs: default_worker_count()
  // is 1 on single-core CI machines, which would silently collapse every
  // CpuPar op to its serial fallback path.
  gpu_sim::ThreadPool cpupar_pool_{3};
  grb::cpupar_backend::ScopedPool bind_cpupar_{cpupar_pool_};
  // A second context under the GpuShard legs, so shard counts 2 and 4
  // exercise a genuinely cross-device halo exchange (count 4 round-robins
  // two shards onto each context).
  gpu_sim::Context shard_ctx_;
  gpu_sim::ScopedPlacement bind_placement_{
      std::vector<gpu_sim::Context*>{&gpu_sim::device(), &shard_ctx_}};
};

TEST_P(DifferentialFuzz, Mxv) {
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 1000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType m = dim(rng), n = dim(rng);
    const auto at = gen_matrix(rng, m, n, family_of(rng));
    const auto ut = gen_vector(rng, n, 0.3 + 0.6 * (seed % 7) / 7.0);
    const auto wt = gen_vector(rng, m, 0.5);
    const auto mt = gen_mask_vector(rng, m);
    const bool replace = rng() % 2 == 0;
    const unsigned sr_pick = rng(), acc_pick = rng();

    const DenseMat da = densify(at);
    const DenseVec du = densify(ut);
    const DenseVec dw0 = densify(wt);
    const DenseVec dm = densify(mt);

    auto sa = to_backend<double, grb::Sequential>(at);
    auto ga = to_backend<double, grb::GpuSim>(at);
    auto pa = to_backend<double, grb::CpuPar>(at);
    auto su = to_backend<double, grb::Sequential>(ut);
    auto gu = to_backend<double, grb::GpuSim>(ut);
    auto pu = to_backend<double, grb::CpuPar>(ut);
    auto smask = to_backend<std::uint8_t, grb::Sequential>(mt);
    auto gmask = to_backend<std::uint8_t, grb::GpuSim>(mt);
    auto pmask = to_backend<std::uint8_t, grb::CpuPar>(mt);

    with_semiring(sr_pick, [&](auto sr) {
      with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
        const DenseVec t = oracle_mxv(da, du, sr);
        unsigned variant = 0;
        for_each_mask_variant(smask, [&](auto sm, const MaskSpec& ms) {
          DenseVec want = dw0;
          oracle_write(want, t, ms.has ? &dm : nullptr, ms, oacc, replace);

          auto sw = to_backend<double, grb::Sequential>(wt);
          grb::mxv(sw, sm, accum, sr, sa, su,
                   replace ? grb::Replace : grb::Merge);
          expect_matches(sw, want, "seq mxv");

          auto pw = to_backend<double, grb::CpuPar>(wt);
          unsigned pv = 0;
          for_each_mask_variant(pmask, [&](auto pm, const MaskSpec&) {
            if (pv++ != variant) return;
            grb::mxv(pw, pm, accum, sr, pa, pu,
                     replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pw, want, "cpupar mxv");

          // GPU: every SpMV dispatch mode (zipped with direction and
          // fusion pins) must agree with the oracle.
          for (const auto& [mode, dmode, fmode] : kModePairs) {
            sparse::SpmvModeGuard guard(mode);
            sparse::DirectionModeGuard dguard(dmode);
            sparse::FusionGuard fguard(fmode);
            auto gw = to_backend<double, grb::GpuSim>(wt);
            // Rebuild the gpu-side mask variant for this iteration.
            unsigned v = 0;
            for_each_mask_variant(gmask, [&](auto gm, const MaskSpec&) {
              if (v++ != variant) return;
              grb::mxv(gw, gm, accum, sr, ga, gu,
                       replace ? grb::Replace : grb::Merge);
            });
            expect_matches(gw, want, "gpu mxv");
          }

          // Sharded multi-device leg: the row blocks' halo broadcasts and
          // shard-order merge must agree with the oracle bit-for-bit.
          {
            sparse::ShardCountGuard sguard(shard_count_for_case(c));
            auto ha = to_backend<double, grb::GpuShard>(at);
            auto hu = to_backend<double, grb::GpuShard>(ut);
            auto hmask = to_backend<std::uint8_t, grb::GpuShard>(mt);
            auto hw = to_backend<double, grb::GpuShard>(wt);
            unsigned hv = 0;
            for_each_mask_variant(hmask, [&](auto hm, const MaskSpec&) {
              if (hv++ != variant) return;
              grb::mxv(hw, hm, accum, sr, ha, hu,
                       replace ? grb::Replace : grb::Merge);
            });
            expect_matches(hw, want, "gpushard mxv");
          }
          ++variant;
        });
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
}

TEST_P(DifferentialFuzz, Vxm) {
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 2000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType m = dim(rng), n = dim(rng);
    const auto at = gen_matrix(rng, m, n, family_of(rng));
    const auto ut = gen_vector(rng, m, 0.3 + 0.6 * (seed % 5) / 5.0);
    const auto wt = gen_vector(rng, n, 0.5);
    const auto mt = gen_mask_vector(rng, n);
    const bool replace = rng() % 2 == 0;
    const unsigned sr_pick = rng(), acc_pick = rng();

    const DenseMat da = densify(at);
    const DenseVec du = densify(ut);
    const DenseVec dm = densify(mt);

    auto sa = to_backend<double, grb::Sequential>(at);
    auto ga = to_backend<double, grb::GpuSim>(at);
    auto pa = to_backend<double, grb::CpuPar>(at);
    auto su = to_backend<double, grb::Sequential>(ut);
    auto gu = to_backend<double, grb::GpuSim>(ut);
    auto pu = to_backend<double, grb::CpuPar>(ut);
    auto smask = to_backend<std::uint8_t, grb::Sequential>(mt);
    auto gmask = to_backend<std::uint8_t, grb::GpuSim>(mt);
    auto pmask = to_backend<std::uint8_t, grb::CpuPar>(mt);

    with_semiring(sr_pick, [&](auto sr) {
      with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
        const DenseVec t = oracle_vxm(du, da, sr);
        unsigned variant = 0;
        for_each_mask_variant(smask, [&](auto sm, const MaskSpec& ms) {
          DenseVec want = densify(wt);
          oracle_write(want, t, ms.has ? &dm : nullptr, ms, oacc, replace);

          auto sw = to_backend<double, grb::Sequential>(wt);
          grb::vxm(sw, sm, accum, sr, su, sa,
                   replace ? grb::Replace : grb::Merge);
          expect_matches(sw, want, "seq vxm");

          auto pw = to_backend<double, grb::CpuPar>(wt);
          unsigned pv = 0;
          for_each_mask_variant(pmask, [&](auto pm, const MaskSpec&) {
            if (pv++ != variant) return;
            grb::vxm(pw, pm, accum, sr, pu, pa,
                     replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pw, want, "cpupar vxm");

          for (const auto& [mode, dmode, fmode] : kModePairs) {
            sparse::SpmvModeGuard guard(mode);
            sparse::DirectionModeGuard dguard(dmode);
            sparse::FusionGuard fguard(fmode);
            auto gw = to_backend<double, grb::GpuSim>(wt);
            unsigned v = 0;
            for_each_mask_variant(gmask, [&](auto gm, const MaskSpec&) {
              if (v++ != variant) return;
              grb::vxm(gw, gm, accum, sr, gu, ga,
                       replace ? grb::Replace : grb::Merge);
            });
            expect_matches(gw, want, "gpu vxm");
          }

          {
            sparse::ShardCountGuard sguard(shard_count_for_case(c));
            auto ha = to_backend<double, grb::GpuShard>(at);
            auto hu = to_backend<double, grb::GpuShard>(ut);
            auto hmask = to_backend<std::uint8_t, grb::GpuShard>(mt);
            auto hw = to_backend<double, grb::GpuShard>(wt);
            unsigned hv = 0;
            for_each_mask_variant(hmask, [&](auto hm, const MaskSpec&) {
              if (hv++ != variant) return;
              grb::vxm(hw, hm, accum, sr, hu, ha,
                       replace ? grb::Replace : grb::Merge);
            });
            expect_matches(hw, want, "gpushard vxm");
          }
          ++variant;
        });
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
}

TEST_P(DifferentialFuzz, Mxm) {
  const auto modes = spgemm_sweep_modes();
  const auto before = gpu_sim::device().stats();
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 3000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType m = dim(rng), k = dim(rng), n = dim(rng);
    const auto at = gen_matrix(rng, m, k, family_of(rng));
    const auto bt = gen_matrix(rng, k, n, family_of(rng));
    const auto ct = gen_matrix(rng, m, n, Family::Uniform);
    const auto mt = gen_mask_matrix(rng, m, n);
    const bool replace = rng() % 2 == 0;
    const unsigned sr_pick = rng(), acc_pick = rng();

    const DenseMat da = densify(at);
    const DenseMat db = densify(bt);
    const DenseMat dm = densify(mt);

    auto sa = to_backend<double, grb::Sequential>(at);
    auto ga = to_backend<double, grb::GpuSim>(at);
    auto pa = to_backend<double, grb::CpuPar>(at);
    auto sb = to_backend<double, grb::Sequential>(bt);
    auto gb = to_backend<double, grb::GpuSim>(bt);
    auto pb = to_backend<double, grb::CpuPar>(bt);
    auto smask = to_backend<std::uint8_t, grb::Sequential>(mt);
    auto gmask = to_backend<std::uint8_t, grb::GpuSim>(mt);
    auto pmask = to_backend<std::uint8_t, grb::CpuPar>(mt);

    with_semiring(sr_pick, [&](auto sr) {
      with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
        const DenseMat t = oracle_mxm(da, db, sr);
        unsigned variant = 0;
        for_each_mask_variant(smask, [&](auto sm, const MaskSpec& ms) {
          DenseMat want = densify(ct);
          oracle_write(want, t, ms.has ? &dm : nullptr, ms, oacc, replace);

          auto sc = to_backend<double, grb::Sequential>(ct);
          grb::mxm(sc, sm, accum, sr, sa, sb,
                   replace ? grb::Replace : grb::Merge);
          expect_matches(sc, want, "seq mxm");

          auto pc = to_backend<double, grb::CpuPar>(ct);
          unsigned pv = 0;
          for_each_mask_variant(pmask, [&](auto pm, const MaskSpec&) {
            if (pv++ != variant) return;
            grb::mxm(pc, pm, accum, sr, pa, pb,
                     replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pc, want, "cpupar mxm");

          // GPU: every SpGEMM strategy (forced ESC, forced hash, Auto)
          // must agree with the oracle bit-for-bit.
          for (const auto mode : modes) {
            sparse::SpgemmModeGuard guard(mode);
            auto gc = to_backend<double, grb::GpuSim>(ct);
            unsigned v = 0;
            for_each_mask_variant(gmask, [&](auto gm, const MaskSpec&) {
              if (v++ != variant) return;
              grb::mxm(gc, gm, accum, sr, ga, gb,
                       replace ? grb::Replace : grb::Merge);
            });
            expect_matches(gc, want, "gpu mxm");
          }
          ++variant;
        });
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
  // Every GPU mxm above recorded its strategy decision; the masked variants
  // (4 of the 5 mask kinds, 2 of them non-complemented) must have exercised
  // the mask-aware paths that skip disallowed products.
  const auto delta = gpu_sim::device().stats() - before;
  EXPECT_GT(delta.spgemm_selections_total(), 0u);
  EXPECT_GT(delta.spgemm_masked_products_avoided, 0u);
}

TEST_P(DifferentialFuzz, EWiseAdd) {
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 4000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType n = dim(rng);
    const auto ut = gen_vector(rng, n, 0.5);
    const auto vt = gen_vector(rng, n, 0.5);
    const auto wt = gen_vector(rng, n, 0.5);
    const auto mt = gen_mask_vector(rng, n);
    const IndexType mr = dim(rng), mc = dim(rng);
    const auto a2 = gen_matrix(rng, mr, mc, family_of(rng));
    const auto b2 = gen_matrix(rng, mr, mc, family_of(rng));
    const auto c2 = gen_matrix(rng, mr, mc, Family::Uniform);
    const auto mm = gen_mask_matrix(rng, mr, mc);
    const bool replace = rng() % 2 == 0;
    const unsigned op_pick = rng(), acc_pick = rng();

    const DenseVec du = densify(ut), dv = densify(vt), dm = densify(mt);
    const DenseMat dA = densify(a2), dB = densify(b2), dM = densify(mm);

    auto su = to_backend<double, grb::Sequential>(ut);
    auto gu = to_backend<double, grb::GpuSim>(ut);
    auto sv = to_backend<double, grb::Sequential>(vt);
    auto gv = to_backend<double, grb::GpuSim>(vt);
    auto pu = to_backend<double, grb::CpuPar>(ut);
    auto pv2 = to_backend<double, grb::CpuPar>(vt);
    auto smask = to_backend<std::uint8_t, grb::Sequential>(mt);
    auto gmask = to_backend<std::uint8_t, grb::GpuSim>(mt);
    auto pmask = to_backend<std::uint8_t, grb::CpuPar>(mt);
    auto sA = to_backend<double, grb::Sequential>(a2);
    auto gA = to_backend<double, grb::GpuSim>(a2);
    auto pA = to_backend<double, grb::CpuPar>(a2);
    auto sB = to_backend<double, grb::Sequential>(b2);
    auto gB = to_backend<double, grb::GpuSim>(b2);
    auto pB = to_backend<double, grb::CpuPar>(b2);
    auto sM = to_backend<std::uint8_t, grb::Sequential>(mm);
    auto gM = to_backend<std::uint8_t, grb::GpuSim>(mm);
    auto pM = to_backend<std::uint8_t, grb::CpuPar>(mm);

    with_binary_op(op_pick, [&](auto op) {
      with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
        const DenseVec t = oracle_ewise_add(du, dv, op);
        unsigned variant = 0;
        for_each_mask_variant(smask, [&](auto sm, const MaskSpec& ms) {
          DenseVec want = densify(wt);
          oracle_write(want, t, ms.has ? &dm : nullptr, ms, oacc, replace);
          auto sw = to_backend<double, grb::Sequential>(wt);
          grb::eWiseAdd(sw, sm, accum, op, su, sv,
                        replace ? grb::Replace : grb::Merge);
          expect_matches(sw, want, "seq eWiseAdd vec");
          auto pw = to_backend<double, grb::CpuPar>(wt);
          unsigned pvar = 0;
          for_each_mask_variant(pmask, [&](auto pm, const MaskSpec&) {
            if (pvar++ != variant) return;
            grb::eWiseAdd(pw, pm, accum, op, pu, pv2,
                          replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pw, want, "cpupar eWiseAdd vec");
          // The GPU leg runs both eagerly and through the op-DAG recorder
          // (matrix eWise ops always drain eagerly, so only the vector leg
          // sweeps fusion).
          for (const auto fmode :
               {sparse::FusionMode::Off, sparse::FusionMode::Fuse}) {
            sparse::FusionGuard fguard(fmode);
            auto gw = to_backend<double, grb::GpuSim>(wt);
            unsigned v = 0;
            for_each_mask_variant(gmask, [&](auto gm, const MaskSpec&) {
              if (v++ != variant) return;
              grb::eWiseAdd(gw, gm, accum, op, gu, gv,
                            replace ? grb::Replace : grb::Merge);
            });
            expect_matches(gw, want, "gpu eWiseAdd vec");
          }
          ++variant;
        });

        const DenseMat tm = oracle_ewise_add(dA, dB, op);
        unsigned mvariant = 0;
        for_each_mask_variant(sM, [&](auto sm, const MaskSpec& ms) {
          DenseMat want = densify(c2);
          oracle_write(want, tm, ms.has ? &dM : nullptr, ms, oacc, replace);
          auto sc = to_backend<double, grb::Sequential>(c2);
          grb::eWiseAdd(sc, sm, accum, op, sA, sB,
                        replace ? grb::Replace : grb::Merge);
          expect_matches(sc, want, "seq eWiseAdd mat");
          auto pc = to_backend<double, grb::CpuPar>(c2);
          unsigned pvar = 0;
          for_each_mask_variant(pM, [&](auto pm, const MaskSpec&) {
            if (pvar++ != mvariant) return;
            grb::eWiseAdd(pc, pm, accum, op, pA, pB,
                          replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pc, want, "cpupar eWiseAdd mat");
          auto gc = to_backend<double, grb::GpuSim>(c2);
          unsigned v = 0;
          for_each_mask_variant(gM, [&](auto gm, const MaskSpec&) {
            if (v++ != mvariant) return;
            grb::eWiseAdd(gc, gm, accum, op, gA, gB,
                          replace ? grb::Replace : grb::Merge);
          });
          expect_matches(gc, want, "gpu eWiseAdd mat");
          ++mvariant;
        });
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
}

TEST_P(DifferentialFuzz, EWiseMult) {
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 5000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType n = dim(rng);
    const auto ut = gen_vector(rng, n, 0.6);
    const auto vt = gen_vector(rng, n, 0.6);
    const auto wt = gen_vector(rng, n, 0.5);
    const auto mt = gen_mask_vector(rng, n);
    const IndexType mr = dim(rng), mc = dim(rng);
    const auto a2 = gen_matrix(rng, mr, mc, family_of(rng));
    const auto b2 = gen_matrix(rng, mr, mc, family_of(rng));
    const auto c2 = gen_matrix(rng, mr, mc, Family::Uniform);
    const auto mm = gen_mask_matrix(rng, mr, mc);
    const bool replace = rng() % 2 == 0;
    const unsigned op_pick = rng(), acc_pick = rng();

    const DenseVec du = densify(ut), dv = densify(vt), dm = densify(mt);
    const DenseMat dA = densify(a2), dB = densify(b2), dM = densify(mm);

    auto su = to_backend<double, grb::Sequential>(ut);
    auto gu = to_backend<double, grb::GpuSim>(ut);
    auto sv = to_backend<double, grb::Sequential>(vt);
    auto gv = to_backend<double, grb::GpuSim>(vt);
    auto pu = to_backend<double, grb::CpuPar>(ut);
    auto pv2 = to_backend<double, grb::CpuPar>(vt);
    auto smask = to_backend<std::uint8_t, grb::Sequential>(mt);
    auto gmask = to_backend<std::uint8_t, grb::GpuSim>(mt);
    auto pmask = to_backend<std::uint8_t, grb::CpuPar>(mt);
    auto sA = to_backend<double, grb::Sequential>(a2);
    auto gA = to_backend<double, grb::GpuSim>(a2);
    auto pA = to_backend<double, grb::CpuPar>(a2);
    auto sB = to_backend<double, grb::Sequential>(b2);
    auto gB = to_backend<double, grb::GpuSim>(b2);
    auto pB = to_backend<double, grb::CpuPar>(b2);
    auto sM = to_backend<std::uint8_t, grb::Sequential>(mm);
    auto gM = to_backend<std::uint8_t, grb::GpuSim>(mm);
    auto pM = to_backend<std::uint8_t, grb::CpuPar>(mm);

    with_binary_op(op_pick, [&](auto op) {
      with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
        const DenseVec t = oracle_ewise_mult(du, dv, op);
        unsigned variant = 0;
        for_each_mask_variant(smask, [&](auto sm, const MaskSpec& ms) {
          DenseVec want = densify(wt);
          oracle_write(want, t, ms.has ? &dm : nullptr, ms, oacc, replace);
          auto sw = to_backend<double, grb::Sequential>(wt);
          grb::eWiseMult(sw, sm, accum, op, su, sv,
                         replace ? grb::Replace : grb::Merge);
          expect_matches(sw, want, "seq eWiseMult vec");
          auto pw = to_backend<double, grb::CpuPar>(wt);
          unsigned pvar = 0;
          for_each_mask_variant(pmask, [&](auto pm, const MaskSpec&) {
            if (pvar++ != variant) return;
            grb::eWiseMult(pw, pm, accum, op, pu, pv2,
                           replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pw, want, "cpupar eWiseMult vec");
          for (const auto fmode :
               {sparse::FusionMode::Off, sparse::FusionMode::Fuse}) {
            sparse::FusionGuard fguard(fmode);
            auto gw = to_backend<double, grb::GpuSim>(wt);
            unsigned v = 0;
            for_each_mask_variant(gmask, [&](auto gm, const MaskSpec&) {
              if (v++ != variant) return;
              grb::eWiseMult(gw, gm, accum, op, gu, gv,
                             replace ? grb::Replace : grb::Merge);
            });
            expect_matches(gw, want, "gpu eWiseMult vec");
          }
          ++variant;
        });

        const DenseMat tm = oracle_ewise_mult(dA, dB, op);
        unsigned mvariant = 0;
        for_each_mask_variant(sM, [&](auto sm, const MaskSpec& ms) {
          DenseMat want = densify(c2);
          oracle_write(want, tm, ms.has ? &dM : nullptr, ms, oacc, replace);
          auto sc = to_backend<double, grb::Sequential>(c2);
          grb::eWiseMult(sc, sm, accum, op, sA, sB,
                         replace ? grb::Replace : grb::Merge);
          expect_matches(sc, want, "seq eWiseMult mat");
          auto pc = to_backend<double, grb::CpuPar>(c2);
          unsigned pvar = 0;
          for_each_mask_variant(pM, [&](auto pm, const MaskSpec&) {
            if (pvar++ != mvariant) return;
            grb::eWiseMult(pc, pm, accum, op, pA, pB,
                           replace ? grb::Replace : grb::Merge);
          });
          expect_matches(pc, want, "cpupar eWiseMult mat");
          auto gc = to_backend<double, grb::GpuSim>(c2);
          unsigned v = 0;
          for_each_mask_variant(gM, [&](auto gm, const MaskSpec&) {
            if (v++ != mvariant) return;
            grb::eWiseMult(gc, gm, accum, op, gA, gB,
                           replace ? grb::Replace : grb::Merge);
          });
          expect_matches(gc, want, "gpu eWiseMult mat");
          ++mvariant;
        });
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
}

// --------------------------------------------------------------------------
// Traversal corpus: whole-algorithm differential runs
// --------------------------------------------------------------------------

template <typename T, typename Tag>
void expect_same_tuples(const grb::Vector<T, Tag>& got,
                        const grb::Vector<T, grb::Sequential>& want,
                        const char* what) {
  IndexArrayType gi, wi;
  std::vector<T> gv, wv;
  got.extractTuples(gi, gv);
  want.extractTuples(wi, wv);
  ASSERT_EQ(gi, wi) << what << ": stored pattern differs from sequential";
  for (std::size_t k = 0; k < wv.size(); ++k)
    ASSERT_EQ(gv[k], wv[k]) << what << ": value at index " << wi[k];
}

/// Directed chain 0->1->...->n-1 with random shortcut and back edges: BFS
/// runs ~n levels deep, so every level's direction choice (and the
/// frontier/visited bookkeeping between levels) gets exercised repeatedly
/// within one traversal.
MatTuples gen_long_path(std::mt19937& rng, IndexType n) {
  MatTuples m{n, n, {}, {}, {}};
  std::set<std::pair<IndexType, IndexType>> cells;
  for (IndexType i = 0; i + 1 < n; ++i) cells.emplace(i, i + 1);
  std::uniform_int_distribution<IndexType> v(0, n - 1);
  for (IndexType e = 0; e < n / 2; ++e) {
    const IndexType a = v(rng), b = v(rng);
    if (a != b) cells.emplace(a, b);
  }
  for (const auto& [i, j] : cells) {
    m.rows.push_back(i);
    m.cols.push_back(j);
    m.vals.push_back(0.0);
  }
  return m;
}

/// Multi-level BFS and SSSP on power-law and long-path digraphs: the full
/// traversal — every level's masked vxm, assign, and nvals — must end in a
/// bit-identical result on the GPU backend under forced-push, forced-pull,
/// and auto direction selection. Positive integer weights keep the min-plus
/// folds exact; power-law shapes make Auto actually flip direction on the
/// hub levels.
TEST_P(DifferentialFuzz, Traversal) {
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 6000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType n = std::uniform_int_distribution<IndexType>(2, 60)(rng);
    MatTuples at = rng() % 2 == 0 ? gen_matrix(rng, n, n, Family::PowerLaw)
                                  : gen_long_path(rng, n);
    for (auto& w : at.vals)
      w = static_cast<double>(
          std::uniform_int_distribution<int>(1, 4)(rng));
    const IndexType source =
        std::uniform_int_distribution<IndexType>(0, n - 1)(rng);

    auto sa = to_backend<double, grb::Sequential>(at);
    auto ga = to_backend<double, grb::GpuSim>(at);
    auto pa = to_backend<double, grb::CpuPar>(at);

    grb::Vector<IndexType, grb::Sequential> slv(n);
    algorithms::bfs_level(sa, source, slv);
    grb::Vector<double, grb::Sequential> sdist(n);
    algorithms::sssp(sa, source, sdist);

    grb::Vector<IndexType, grb::CpuPar> plv(n);
    algorithms::bfs_level(pa, source, plv);
    expect_same_tuples(plv, slv, "cpupar bfs_level");
    grb::Vector<double, grb::CpuPar> pdist(n);
    algorithms::sssp(pa, source, pdist);
    expect_same_tuples(pdist, sdist, "cpupar sssp");

    // Direction zipped with fusion mode: whole traversals must be
    // bit-identical whether each level's ops launch eagerly or through
    // the op-DAG's fused replay.
    constexpr std::pair<sparse::DirectionMode, sparse::FusionMode>
        kTraversalZip[] = {
            {sparse::DirectionMode::ForcePush, sparse::FusionMode::Off},
            {sparse::DirectionMode::ForcePull, sparse::FusionMode::Fuse},
            {sparse::DirectionMode::Auto, sparse::FusionMode::Auto},
        };
    for (const auto& [dmode, fmode] : kTraversalZip) {
      sparse::DirectionModeGuard dguard(dmode);
      sparse::FusionGuard fguard(fmode);
      grb::Vector<IndexType, grb::GpuSim> glv(n);
      algorithms::bfs_level(ga, source, glv);
      expect_same_tuples(glv, slv, "gpu bfs_level");
      grb::Vector<double, grb::GpuSim> gdist(n);
      algorithms::sssp(ga, source, gdist);
      expect_same_tuples(gdist, sdist, "gpu sssp");
    }
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
}

/// Delta-overlay leg: mxv_overlay / vxm_overlay over (base, replacement-row
/// overlay) pairs, zipped across three overlay regimes — {no overlay, a
/// couple of dirty rows, dirty mass at the compaction threshold (~1/3 of
/// rows, including rows replaced by EMPTY content)} — against the dense
/// oracle run on the merged matrix. Same mask/accum/replace sweep and GPU
/// dispatch-mode zip as the plain Mxv/Vxm legs: the overlay ops feed the
/// same output pipeline, so they must honor every write-semantics variant
/// bit-for-bit, under eager and fused execution alike.
TEST_P(DifferentialFuzz, Overlay) {
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 7000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType m = dim(rng), n = dim(rng);
    const MatTuples bt = gen_matrix(rng, m, n, family_of(rng));

    // Overlay regime zipped over the cases.
    std::size_t n_dirty = 0;
    switch (c % 3) {
      case 0: n_dirty = 0; break;                          // clean snapshot
      case 1: n_dirty = 1 + rng() % 2; break;              // small delta
      default: n_dirty = std::max<IndexType>(1, m / 3);    // near threshold
    }
    n_dirty = std::min<std::size_t>(n_dirty, m);
    std::set<IndexType> dirty;
    while (dirty.size() < n_dirty)
      dirty.insert(std::uniform_int_distribution<IndexType>(0, m - 1)(rng));

    // Replacement content per dirty row (possibly empty — a row deletion);
    // merged = base with dirty rows substituted, in canonical order.
    grb::MatrixOverlay<double> ov;
    MatTuples merged{m, n, {}, {}, {}};
    std::bernoulli_distribution keep(0.4);
    for (IndexType i = 0; i < m; ++i) {
      if (dirty.count(i)) {
        ov.rows.push_back(i);
        for (IndexType j = 0; j < n; ++j)
          if (keep(rng)) {
            const double v = int_value(rng);
            ov.cols.push_back(j);
            ov.vals.push_back(v);
            merged.rows.push_back(i);
            merged.cols.push_back(j);
            merged.vals.push_back(v);
          }
        ov.offsets.push_back(ov.cols.size());
      } else {
        for (std::size_t k = 0; k < bt.vals.size(); ++k)
          if (bt.rows[k] == i) {
            merged.rows.push_back(i);
            merged.cols.push_back(bt.cols[k]);
            merged.vals.push_back(bt.vals[k]);
          }
      }
    }

    const auto ut = gen_vector(rng, n, 0.3 + 0.6 * (seed % 7) / 7.0);
    const auto vt = gen_vector(rng, m, 0.3 + 0.6 * (seed % 5) / 5.0);
    const auto wmt = gen_vector(rng, m, 0.5);
    const auto wnt = gen_vector(rng, n, 0.5);
    const auto mmt = gen_mask_vector(rng, m);
    const auto mnt = gen_mask_vector(rng, n);
    const bool replace = rng() % 2 == 0;
    const unsigned sr_pick = rng(), acc_pick = rng();

    const DenseMat dmerged = densify(merged);
    const DenseVec du = densify(ut);
    const DenseVec dv = densify(vt);
    const DenseVec dmm = densify(mmt);
    const DenseVec dmn = densify(mnt);

    auto sb = to_backend<double, grb::Sequential>(bt);
    auto pb = to_backend<double, grb::CpuPar>(bt);
    auto gb = to_backend<double, grb::GpuSim>(bt);
    auto su = to_backend<double, grb::Sequential>(ut);
    auto pu = to_backend<double, grb::CpuPar>(ut);
    auto gu = to_backend<double, grb::GpuSim>(ut);
    auto sv = to_backend<double, grb::Sequential>(vt);
    auto pv = to_backend<double, grb::CpuPar>(vt);
    auto gv = to_backend<double, grb::GpuSim>(vt);
    auto smm = to_backend<std::uint8_t, grb::Sequential>(mmt);
    auto pmm = to_backend<std::uint8_t, grb::CpuPar>(mmt);
    auto gmm = to_backend<std::uint8_t, grb::GpuSim>(mmt);
    auto smn = to_backend<std::uint8_t, grb::Sequential>(mnt);
    auto pmn = to_backend<std::uint8_t, grb::CpuPar>(mnt);
    auto gmn = to_backend<std::uint8_t, grb::GpuSim>(mnt);

    with_semiring(sr_pick, [&](auto sr) {
      with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
        // ---- mxv_overlay: w(m) = (base+ov)(m x n) . u(n)
        {
          const DenseVec t = oracle_mxv(dmerged, du, sr);
          unsigned variant = 0;
          for_each_mask_variant(smm, [&](auto sm, const MaskSpec& ms) {
            DenseVec want = densify(wmt);
            oracle_write(want, t, ms.has ? &dmm : nullptr, ms, oacc,
                         replace);

            auto sw = to_backend<double, grb::Sequential>(wmt);
            grb::mxv_overlay(sw, sm, accum, sr, sb, ov, su,
                             replace ? grb::Replace : grb::Merge);
            expect_matches(sw, want, "seq mxv_overlay");

            auto pw = to_backend<double, grb::CpuPar>(wmt);
            unsigned pvariant = 0;
            for_each_mask_variant(pmm, [&](auto pm, const MaskSpec&) {
              if (pvariant++ != variant) return;
              grb::mxv_overlay(pw, pm, accum, sr, pb, ov, pu,
                               replace ? grb::Replace : grb::Merge);
            });
            expect_matches(pw, want, "cpupar mxv_overlay");

            for (const auto& [mode, dmode, fmode] : kModePairs) {
              sparse::SpmvModeGuard guard(mode);
              sparse::DirectionModeGuard dguard(dmode);
              sparse::FusionGuard fguard(fmode);
              auto gw = to_backend<double, grb::GpuSim>(wmt);
              unsigned gvariant = 0;
              for_each_mask_variant(gmm, [&](auto gm, const MaskSpec&) {
                if (gvariant++ != variant) return;
                grb::mxv_overlay(gw, gm, accum, sr, gb, ov, gu,
                                 replace ? grb::Replace : grb::Merge);
              });
              expect_matches(gw, want, "gpu mxv_overlay");
            }
            ++variant;
          });
        }
        // ---- vxm_overlay: w(n) = v(m) . (base+ov)(m x n)
        {
          const DenseVec t = oracle_vxm(dv, dmerged, sr);
          unsigned variant = 0;
          for_each_mask_variant(smn, [&](auto sm, const MaskSpec& ms) {
            DenseVec want = densify(wnt);
            oracle_write(want, t, ms.has ? &dmn : nullptr, ms, oacc,
                         replace);

            auto sw = to_backend<double, grb::Sequential>(wnt);
            grb::vxm_overlay(sw, sm, accum, sr, sv, sb, ov,
                             replace ? grb::Replace : grb::Merge);
            expect_matches(sw, want, "seq vxm_overlay");

            auto pw = to_backend<double, grb::CpuPar>(wnt);
            unsigned pvariant = 0;
            for_each_mask_variant(pmn, [&](auto pm, const MaskSpec&) {
              if (pvariant++ != variant) return;
              grb::vxm_overlay(pw, pm, accum, sr, pv, pb, ov,
                               replace ? grb::Replace : grb::Merge);
            });
            expect_matches(pw, want, "cpupar vxm_overlay");

            for (const auto& [mode, dmode, fmode] : kModePairs) {
              sparse::SpmvModeGuard guard(mode);
              sparse::DirectionModeGuard dguard(dmode);
              sparse::FusionGuard fguard(fmode);
              auto gw = to_backend<double, grb::GpuSim>(wnt);
              unsigned gvariant = 0;
              for_each_mask_variant(gmn, [&](auto gm, const MaskSpec&) {
                if (gvariant++ != variant) return;
                grb::vxm_overlay(gw, gm, accum, sr, gv, gb, ov,
                                 replace ? grb::Replace : grb::Merge);
              });
              expect_matches(gw, want, "gpu vxm_overlay");
            }
            ++variant;
          });
        }
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
}

/// Bit-format leg: mxv/vxm over LogicalSemiring<double> — the exactness
/// domain of the word-granularity Bit engine (gen_matrix stores values in
/// [-4, 4] including zeros, so the truth plane genuinely diverges from the
/// structure plane). Each case runs the Sequential CSR oracle, CpuPar, then
/// GpuSim with the Bit engine forced — zipped across the SpMV dispatch pins,
/// since the bit bypass must honor every write-semantics variant regardless
/// of which CSR engine it preempted — and once more in Auto mode (whatever
/// the selector picks must still be exact). Square matrices so one frontier
/// drives both orientations. End-of-test counter deltas prove the forced
/// legs really ran the Bit engine and built views.
TEST_P(DifferentialFuzz, BitTraversal) {
  const auto before = gpu_sim::device().stats();
  for (unsigned c = 0; c < kCasesPerInstance; ++c) {
    const unsigned seed = 8000 + GetParam() * kCasesPerInstance + c;
    std::mt19937 rng(seed);
    const IndexType n = dim(rng);
    const auto at = gen_matrix(rng, n, n, family_of(rng));
    const auto ut = gen_vector(rng, n, 0.3 + 0.6 * (seed % 7) / 7.0);
    const auto wt = gen_vector(rng, n, 0.5);
    const auto mt = gen_mask_vector(rng, n);
    const bool replace = rng() % 2 == 0;
    const unsigned acc_pick = rng();
    const bool do_vxm = c % 2 == 0;  // alternate orientations across cases

    const DenseMat da = densify(at);
    const DenseVec du = densify(ut);
    const DenseVec dw0 = densify(wt);
    const DenseVec dm = densify(mt);

    auto sa = to_backend<double, grb::Sequential>(at);
    auto ga = to_backend<double, grb::GpuSim>(at);
    auto pa = to_backend<double, grb::CpuPar>(at);
    auto su = to_backend<double, grb::Sequential>(ut);
    auto gu = to_backend<double, grb::GpuSim>(ut);
    auto pu = to_backend<double, grb::CpuPar>(ut);
    auto smask = to_backend<std::uint8_t, grb::Sequential>(mt);
    auto gmask = to_backend<std::uint8_t, grb::GpuSim>(mt);
    auto pmask = to_backend<std::uint8_t, grb::CpuPar>(mt);

    const grb::LogicalSemiring<double> sr;
    with_accum(acc_pick, [&](auto accum, const OracleAccum& oacc) {
      const DenseVec t = do_vxm ? oracle_vxm(du, da, sr) : oracle_mxv(da, du, sr);
      unsigned variant = 0;
      for_each_mask_variant(smask, [&](auto sm, const MaskSpec& ms) {
        DenseVec want = dw0;
        oracle_write(want, t, ms.has ? &dm : nullptr, ms, oacc, replace);
        const auto dir = replace ? grb::Replace : grb::Merge;

        auto sw = to_backend<double, grb::Sequential>(wt);
        if (do_vxm)
          grb::vxm(sw, sm, accum, sr, su, sa, dir);
        else
          grb::mxv(sw, sm, accum, sr, sa, su, dir);
        expect_matches(sw, want, "seq bit-leg oracle");

        auto pw = to_backend<double, grb::CpuPar>(wt);
        unsigned pv = 0;
        for_each_mask_variant(pmask, [&](auto pm, const MaskSpec&) {
          if (pv++ != variant) return;
          if (do_vxm)
            grb::vxm(pw, pm, accum, sr, pu, pa, dir);
          else
            grb::mxv(pw, pm, accum, sr, pa, pu, dir);
        });
        expect_matches(pw, want, "cpupar bit-leg");

        // Forced Bit under every dispatch pin, then the selector's own call.
        constexpr unsigned kPins =
            sizeof(kModePairs) / sizeof(kModePairs[0]);
        for (unsigned leg = 0; leg <= kPins; ++leg) {
          const bool forced = leg < kPins;
          sparse::BitModeGuard bguard(forced ? sparse::BitMode::Force
                                             : sparse::BitMode::Auto);
          const auto& [mode, dmode, fmode] =
              kModePairs[forced ? leg : 0];
          sparse::SpmvModeGuard guard(mode);
          sparse::DirectionModeGuard dguard(dmode);
          sparse::FusionGuard fguard(fmode);
          auto gw = to_backend<double, grb::GpuSim>(wt);
          unsigned v = 0;
          for_each_mask_variant(gmask, [&](auto gm, const MaskSpec&) {
            if (v++ != variant) return;
            if (do_vxm)
              grb::vxm(gw, gm, accum, sr, gu, ga, dir);
            else
              grb::mxv(gw, gm, accum, sr, ga, gu, dir);
          });
          expect_matches(gw, want,
                         forced ? "gpu bit forced" : "gpu bit auto");
        }
        ++variant;
      });
    });
    if (::testing::Test::HasFatalFailure()) {
      ADD_FAILURE() << "seed " << seed;
      return;
    }
  }
  // The forced legs must actually have exercised the Bit engine: word
  // traffic recorded, views materialized at least once.
  const auto delta = gpu_sim::device().stats() - before;
  EXPECT_GT(delta.bit_selections, 0u);
  EXPECT_GT(delta.bit_words_touched, 0u);
  EXPECT_GT(delta.bit_conversions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(0u, kInstances));

// Registered after the sweep so that in a single-process run of this binary
// (scripts/ci.sh's pool-leak stage — under ctest each test is its own
// process and the invariant is vacuous) it executes last: after every fuzz
// Deterministic counter check: a dense 4x4 multiply under a diagonal mask
// generates 64 partial products of which only 16 (4 per row, folding into
// the 4 diagonal outputs) are allowed — both strategies must record the
// selection and report exactly 48 products skipped by the mask (ESC at its
// pre-sort filter, hash at its seeded tables).
TEST(SpgemmCounters, MaskedSweepRecordsSelectionsAndAvoidedProducts) {
  auto& dev = gpu_sim::device();
  grb::Matrix<double, grb::GpuSim> a(4, 4), b(4, 4), mask(4, 4);
  IndexArrayType rows, cols;
  std::vector<double> vals;
  for (IndexType i = 0; i < 4; ++i)
    for (IndexType j = 0; j < 4; ++j) {
      rows.push_back(i);
      cols.push_back(j);
      vals.push_back(1.0 + static_cast<double>(i + 2 * j));
    }
  a.build(rows, cols, vals);
  b.build(rows, cols, vals);
  mask.build({0, 1, 2, 3}, {0, 1, 2, 3}, {1.0, 1.0, 1.0, 1.0});

  grb::Matrix<double, grb::GpuSim> want(4, 4);
  {
    sparse::SpgemmModeGuard guard(sparse::SpgemmMode::Esc);
    grb::mxm(want, grb::structure(mask), grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, b, grb::Replace);
  }
  for (const auto mode :
       {sparse::SpgemmMode::Esc, sparse::SpgemmMode::Hash}) {
    sparse::SpgemmModeGuard guard(mode);
    const auto before = dev.stats();
    grb::Matrix<double, grb::GpuSim> c(4, 4);
    grb::mxm(c, grb::structure(mask), grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, b, grb::Replace);
    const auto delta = dev.stats() - before;
    const auto strategy = mode == sparse::SpgemmMode::Esc
                              ? gpu_sim::SpgemmStrategy::kEsc
                              : gpu_sim::SpgemmStrategy::kHash;
    EXPECT_EQ(delta.spgemm_selections[static_cast<std::size_t>(strategy)],
              1u);
    EXPECT_EQ(delta.spgemm_masked_products_avoided, 48u)
        << gpu_sim::to_string(strategy);
    if (mode == sparse::SpgemmMode::Hash) {
      EXPECT_GT(delta.spgemm_hash_table_bytes, 0u);
    }
    // Both strategies must land on the identical stored result.
    IndexArrayType cr, cc, wr, wc;
    std::vector<double> cv, wv;
    c.extractTuples(cr, cc, cv);
    want.extractTuples(wr, wc, wv);
    EXPECT_EQ(cr, wr);
    EXPECT_EQ(cc, wc);
    EXPECT_EQ(cv, wv);
  }
}

// case has churned the device allocator, all client allocations must be
// back, and trimming the pool must return the cached bytes to the heap.
TEST(ZPoolLeak, DeviceHeapReturnsToZeroAfterSweepAndTrim) {
  auto& dev = gpu_sim::device();
  EXPECT_EQ(dev.stats().bytes_in_use, 0u)
      << "a fuzz case leaked a device allocation";
  dev.trim();
  EXPECT_EQ(dev.stats().pool_bytes_held, 0u)
      << "trim() left cached blocks behind";
}

}  // namespace
