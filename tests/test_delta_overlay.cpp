/// Delta-CSR overlay property tests: any interleaving of add/remove batches
/// followed by a read must equal a from-scratch CSR build of the same edge
/// set — checked against a std::map reference model that shares no code
/// with the overlay machinery. Covers random batches with duplicate edges,
/// removes of absent edges, add-then-remove round trips (the overlay must
/// come back CLEAN, not merely equivalent), empty deltas, and batch sizes
/// straddling the compaction boundary. The overlay-aware mxv/vxm ops are
/// then diffed bit-for-bit against the plain ops on a monolithically
/// rebuilt matrix, on all three monolithic backends (Sequential, CpuPar on
/// a real 3-worker pool, GpuSim), across mask/accum/replace variants —
/// integer-valued weights make floating sums exact, so "bit-for-bit" is a
/// valid demand (see test_differential_fuzz.cpp).

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "backend_cpupar/pool.hpp"
#include "gbtl/gbtl.hpp"
#include "gbtl/overlay_ops.hpp"
#include "gpu_sim/thread_pool.hpp"
#include "graph/delta_csr.hpp"
#include "graph/graph_matrix.hpp"
#include "service/graph_store.hpp"

namespace {

using gbtl_graph::BaseCsr;
using gbtl_graph::BaseCsrPtr;
using gbtl_graph::DeltaOverlay;
using gbtl_graph::DeltaOverlayPtr;
using gbtl_graph::EdgeList;
using gbtl_graph::Index;
using grb::IndexArrayType;
using grb::IndexType;

// ---------------------------------------------------------------------------
// Reference model: a sorted map of live edges. Mutation semantics mirror
// apply_updates' contract (removes before adds, adds upsert last-wins,
// removes of absent edges are no-ops) with none of its machinery.
// ---------------------------------------------------------------------------

using Model = std::map<std::pair<Index, Index>, double>;

Model model_of(const EdgeList& g) {
  Model m;
  for (std::size_t e = 0; e < g.src.size(); ++e)
    m[{g.src[e], g.dst[e]}] = g.weighted() ? g.weight[e] : 1.0;
  return m;
}

void model_apply(Model& m, const EdgeList& adds, const EdgeList& removes) {
  for (std::size_t e = 0; e < removes.src.size(); ++e)
    m.erase({removes.src[e], removes.dst[e]});
  for (std::size_t e = 0; e < adds.src.size(); ++e)
    m[{adds.src[e], adds.dst[e]}] = adds.weighted() ? adds.weight[e] : 1.0;
}

/// materialize(base, overlay) must equal the model exactly: same edges in
/// the same canonical (row-major, column-ascending) order, same value BITS.
void expect_matches_model(const BaseCsr& base, const DeltaOverlay* ov,
                          const Model& model, const char* what) {
  const EdgeList got = gbtl_graph::materialize(base, ov);
  ASSERT_EQ(got.num_edges(), model.size()) << what << ": live edge count";
  std::size_t e = 0;
  for (const auto& [edge, w] : model) {
    ASSERT_EQ(got.src[e], edge.first) << what << ": src at entry " << e;
    ASSERT_EQ(got.dst[e], edge.second) << what << ": dst at entry " << e;
    ASSERT_EQ(std::memcmp(&got.weight[e], &w, sizeof(double)), 0)
        << what << ": weight bits at entry " << e;
    ++e;
  }
}

// ---------------------------------------------------------------------------
// Seeded batch generation
// ---------------------------------------------------------------------------

EdgeList random_graph(std::mt19937& rng, Index n, std::size_t edges) {
  std::uniform_int_distribution<Index> v(0, n - 1);
  std::uniform_int_distribution<int> w(-4, 4);
  EdgeList g;
  g.num_vertices = n;
  for (std::size_t e = 0; e < edges; ++e) {
    g.src.push_back(v(rng));
    g.dst.push_back(v(rng));
    g.weight.push_back(static_cast<double>(w(rng)));
  }
  return g;
}

/// A mutation batch biased toward REAL structural changes: removes are
/// drawn from the live edge set when possible (plus some absent no-ops),
/// adds mix fresh endpoints with duplicates of earlier adds in the same
/// batch (exercising last-wins).
void random_batch(std::mt19937& rng, Index n, const Model& live,
                  EdgeList& adds, EdgeList& removes) {
  std::uniform_int_distribution<Index> v(0, n - 1);
  std::uniform_int_distribution<int> w(-4, 4);
  adds = EdgeList{};
  removes = EdgeList{};
  adds.num_vertices = removes.num_vertices = n;

  const std::size_t n_rm = rng() % 4;
  for (std::size_t e = 0; e < n_rm && !live.empty(); ++e) {
    if (rng() % 4 == 0) {  // remove of a (probably) absent edge: a no-op
      removes.src.push_back(v(rng));
      removes.dst.push_back(v(rng));
    } else {
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      removes.src.push_back(it->first.first);
      removes.dst.push_back(it->first.second);
    }
  }
  const std::size_t n_add = 1 + rng() % 5;
  for (std::size_t e = 0; e < n_add; ++e) {
    if (!adds.src.empty() && rng() % 3 == 0) {  // in-batch duplicate
      const std::size_t d = rng() % adds.src.size();
      adds.src.push_back(adds.src[d]);
      adds.dst.push_back(adds.dst[d]);
    } else {
      adds.src.push_back(v(rng));
      adds.dst.push_back(v(rng));
    }
    adds.weight.push_back(static_cast<double>(w(rng)));
  }
}

// ---------------------------------------------------------------------------
// Mutation-sequence properties (no backends involved)
// ---------------------------------------------------------------------------

class DeltaOverlayFuzz : public ::testing::TestWithParam<unsigned> {};

/// The core property: after ANY sequence of batches, (base, overlay) reads
/// exactly like a from-scratch build of the surviving edge set.
TEST_P(DeltaOverlayFuzz, RandomBatchSequencesMatchModel) {
  for (unsigned c = 0; c < 4; ++c) {
    const unsigned seed = 5000 + GetParam() * 4 + c;
    std::mt19937 rng(seed);
    const Index n = 4 + rng() % 12;
    const EdgeList initial = random_graph(rng, n, 2 + rng() % 20);

    BaseCsrPtr base = gbtl_graph::build_base_csr(initial);
    DeltaOverlayPtr overlay;
    Model model = model_of(initial);
    std::size_t live = base->num_edges();
    ASSERT_EQ(live, model.size()) << "seed " << seed;
    expect_matches_model(*base, nullptr, model, "initial build");

    for (int step = 0; step < 12; ++step) {
      EdgeList adds, removes;
      random_batch(rng, n, model, adds, removes);
      auto res = gbtl_graph::apply_updates(*base, overlay.get(), live, adds,
                                           removes);
      model_apply(model, adds, removes);
      overlay = res.overlay;
      live = res.live_nnz;
      ASSERT_EQ(live, model.size()) << "seed " << seed << " step " << step;
      expect_matches_model(*base, overlay.get(), model, "after batch");
      if (::testing::Test::HasFatalFailure()) {
        ADD_FAILURE() << "seed " << seed << " step " << step;
        return;
      }

      // Occasionally fold and continue on the fresh base — compaction must
      // be invisible to readers.
      if (overlay != nullptr && step % 5 == 4) {
        base = gbtl_graph::compact(*base, *overlay);
        overlay = nullptr;
        ASSERT_EQ(base->num_edges(), model.size())
            << "seed " << seed << ": compaction changed the edge count";
        expect_matches_model(*base, nullptr, model, "after compaction");
      }
    }
  }
}

/// Rows restored to their base content must DROP OUT of the overlay, not
/// linger as equivalent copies — this is what keeps long add/remove churn
/// from growing the overlay without bound.
TEST(DeltaOverlay, AddThenRemoveRoundTripLeavesCleanOverlay) {
  EdgeList g;
  g.num_vertices = 6;
  g.src = {0, 1, 2};
  g.dst = {1, 2, 3};
  g.weight = {1.0, 2.0, 3.0};
  const BaseCsrPtr base = gbtl_graph::build_base_csr(g);

  EdgeList adds;
  adds.num_vertices = 6;
  adds.src = {0, 4};
  adds.dst = {5, 4};
  adds.weight = {7.0, 8.0};
  const EdgeList none{6, {}, {}, {}};

  auto up = gbtl_graph::apply_updates(*base, nullptr, base->num_edges(),
                                      adds, none);
  ASSERT_NE(up.overlay, nullptr);
  EXPECT_EQ(up.overlay->dirty_rows(), 2u);
  EXPECT_EQ(up.edges_added, 2u);
  EXPECT_FALSE(up.structural_removals);
  EXPECT_EQ(up.live_nnz, 5u);

  // Remove exactly what was added: every dirty row returns to its base
  // content, so the overlay must disappear entirely (nullptr, not empty).
  auto down = gbtl_graph::apply_updates(*base, up.overlay.get(), up.live_nnz,
                                        none, adds);
  EXPECT_EQ(down.overlay, nullptr);
  EXPECT_TRUE(down.structural_removals);
  EXPECT_EQ(down.edges_removed, 2u);
  EXPECT_EQ(down.live_nnz, base->num_edges());
  expect_matches_model(*base, down.overlay.get(), model_of(g), "round trip");
}

/// In-batch semantics: removes land before adds (a removed-then-re-added
/// edge survives with the new weight) and duplicate adds resolve last-wins
/// — the grb::Second dup rule build() uses.
TEST(DeltaOverlay, RemovesBeforeAddsAndDuplicatesLastWins) {
  EdgeList g;
  g.num_vertices = 4;
  g.src = {0};
  g.dst = {1};
  g.weight = {1.0};
  const BaseCsrPtr base = gbtl_graph::build_base_csr(g);

  EdgeList adds;
  adds.num_vertices = 4;
  adds.src = {0, 0, 0};
  adds.dst = {1, 2, 2};
  adds.weight = {5.0, 6.0, 7.0};  // (0,2) twice: 7 must win
  EdgeList removes;
  removes.num_vertices = 4;
  removes.src = {0};
  removes.dst = {1};  // removed, then re-added with weight 5

  auto up = gbtl_graph::apply_updates(*base, nullptr, base->num_edges(),
                                      adds, removes);
  Model want;
  want[{0, 1}] = 5.0;
  want[{0, 2}] = 7.0;
  ASSERT_NE(up.overlay, nullptr);
  expect_matches_model(*base, up.overlay.get(), want, "removes-then-adds");
  // The re-add makes the net structural change additive, but the remove DID
  // delete a stored edge first — warm starts must see that.
  EXPECT_TRUE(up.structural_removals);
  EXPECT_EQ(up.live_nnz, 2u);
}

/// An empty batch publishes an unchanged view and touches nothing.
TEST(DeltaOverlay, EmptyDeltaIsANoOp) {
  std::mt19937 rng(99);
  const EdgeList g = random_graph(rng, 8, 12);
  const BaseCsrPtr base = gbtl_graph::build_base_csr(g);
  const EdgeList none{8, {}, {}, {}};

  auto up = gbtl_graph::apply_updates(*base, nullptr, base->num_edges(),
                                      none, none);
  EXPECT_EQ(up.overlay, nullptr);
  EXPECT_TRUE(up.affected.empty());
  EXPECT_EQ(up.edges_added, 0u);
  EXPECT_EQ(up.edges_removed, 0u);
  EXPECT_EQ(up.live_nnz, base->num_edges());
  expect_matches_model(*base, nullptr, model_of(g), "empty delta");
}

/// `affected` is the sorted unique endpoint set of the batch — the seed
/// frontier the incremental algorithms propagate from.
TEST(DeltaOverlay, AffectedVerticesAreSortedUniqueEndpoints) {
  EdgeList g;
  g.num_vertices = 10;
  g.src = {1};
  g.dst = {2};
  g.weight = {1.0};
  const BaseCsrPtr base = gbtl_graph::build_base_csr(g);

  EdgeList adds;
  adds.num_vertices = 10;
  adds.src = {7, 3, 7};
  adds.dst = {3, 9, 9};
  adds.weight = {1.0, 1.0, 1.0};
  EdgeList removes;
  removes.num_vertices = 10;
  removes.src = {1};
  removes.dst = {2};

  auto up = gbtl_graph::apply_updates(*base, nullptr, base->num_edges(),
                                      adds, removes);
  EXPECT_EQ(up.affected, (IndexArrayType{1, 2, 3, 7, 9}));
}

// ---------------------------------------------------------------------------
// GraphStore publish semantics: O(delta) base sharing + compaction boundary
// ---------------------------------------------------------------------------

/// Proof the publish path is O(delta): below the compaction threshold every
/// published version holds the SAME BaseCsr object (pointer identity) —
/// only crossing the threshold pays a rebuild, bumping the generation.
TEST(GraphStoreStreaming, PublishSharesBaseUntilCompactionThreshold) {
  std::mt19937 rng(17);
  service::GraphStore store;
  store.add("g", random_graph(rng, 32, 100));
  const auto v1 = store.get("g");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->base_generation, 1u);
  EXPECT_EQ(v1->prev_version, 0u);

  // Policy: compact once the overlay holds MORE than 8 entries.
  gbtl_graph::CompactionPolicy policy;
  policy.min_overlay_nnz = 1;
  policy.max_overlay_ratio = 8.0 / static_cast<double>(v1->num_edges());

  const EdgeList none{32, {}, {}, {}};
  auto prev = v1;
  std::size_t published = 0;
  while (true) {
    EdgeList adds;
    adds.num_vertices = 32;
    // One brand-new edge per batch into a previously untouched row region.
    adds.src = {static_cast<Index>(published % 32)};
    adds.dst = {static_cast<Index>((published * 7 + 1) % 32)};
    adds.weight = {2.0};
    const auto snap = store.apply_edges("g", adds, none, policy);
    ASSERT_NE(snap, nullptr);
    ++published;
    EXPECT_EQ(snap->version, prev->version + 1);
    EXPECT_EQ(snap->prev_version, prev->version);
    if (snap->overlay != nullptr) {
      // Still below threshold: the base must be the SAME object.
      EXPECT_EQ(snap->base.get(), v1->base.get())
          << "publish " << published << " rebuilt the base below threshold";
      EXPECT_EQ(snap->base_generation, v1->base_generation);
    } else {
      // Crossed it: fresh base, bumped generation, overlay folded away.
      EXPECT_NE(snap->base.get(), v1->base.get());
      EXPECT_EQ(snap->base_generation, v1->base_generation + 1);
      EXPECT_EQ(snap->base->num_edges(), snap->num_edges());
      EXPECT_EQ(store.stats().compactions, 1u);
      break;
    }
    prev = snap;
    ASSERT_LT(published, 64u) << "compaction never triggered";
  }
  EXPECT_EQ(store.stats().mutations, published);
}

/// Batch sizes that land the overlay exactly AT and just OVER the
/// threshold: should_compact is strict (>), so "exactly at ratio" stays an
/// overlay and one more entry folds it.
TEST(GraphStoreStreaming, CompactionBoundaryIsStrict) {
  gbtl_graph::CompactionPolicy policy;
  policy.min_overlay_nnz = 4;
  policy.max_overlay_ratio = 0.25;
  EXPECT_FALSE(policy.should_compact(3, 16));  // below min_overlay_nnz
  EXPECT_FALSE(policy.should_compact(4, 16));  // == ratio: stays
  EXPECT_TRUE(policy.should_compact(5, 16));   // > ratio: folds
  EXPECT_TRUE(policy.should_compact(40, 16));
}

// ---------------------------------------------------------------------------
// Satellite 1: device cache invalidation of retired versions
// ---------------------------------------------------------------------------

TEST(DeviceGraphCacheStreaming, InvalidateRetiredDropsOldVersionsAndBases) {
  gpu_sim::Context ctx;
  gpu_sim::ScopedDevice bind(ctx);
  service::GraphStore store;
  std::mt19937 rng(23);
  store.add("g", random_graph(rng, 16, 40));
  store.add("stable", random_graph(rng, 8, 10));

  service::DeviceGraphCache cache(ctx, ctx.properties().total_global_memory);
  const auto v1 = store.get("g");
  cache.get_or_upload(v1);
  cache.get_or_upload_base(v1);
  cache.get_or_upload(store.get("stable"));
  ASSERT_EQ(cache.entries(), 3u);

  // Nothing retired yet: the sweep is a no-op.
  EXPECT_EQ(cache.invalidate_retired(store), 0u);
  EXPECT_EQ(cache.entries(), 3u);

  // Publish v2 via a small batch: v1's MERGED entry is retired, but the
  // base entry survives (same generation — that sharing is the point).
  EdgeList adds;
  adds.num_vertices = 16;
  adds.src = {0};
  adds.dst = {15};
  adds.weight = {3.0};
  const EdgeList none{16, {}, {}, {}};
  gbtl_graph::CompactionPolicy lax;  // defaults: far from compaction
  ASSERT_NE(store.apply_edges("g", adds, none, lax), nullptr);

  const std::size_t before = cache.stats().resident_bytes;
  EXPECT_EQ(cache.invalidate_retired(store), 1u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_LT(cache.stats().resident_bytes, before);

  // Bulk re-add bumps the base generation too: now the base entry retires.
  store.add("g", random_graph(rng, 16, 40));
  EXPECT_EQ(cache.invalidate_retired(store), 1u);
  EXPECT_EQ(cache.entries(), 1u);  // only "stable" remains
  EXPECT_EQ(cache.stats().invalidations, 2u);

  // A dropped name retires everything under it.
  store.add("stable", random_graph(rng, 8, 10));
  EXPECT_EQ(cache.invalidate_retired(store), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Overlay-aware ops: bit-exact vs the plain ops on a monolithic rebuild
// ---------------------------------------------------------------------------

template <typename Tag>
void expect_bits_equal(const grb::Vector<double, Tag>& got,
                       const grb::Vector<double, grb::Sequential>& want,
                       const char* what) {
  IndexArrayType gi, wi;
  std::vector<double> gv, wv;
  got.extractTuples(gi, gv);
  want.extractTuples(wi, wv);
  ASSERT_EQ(gi, wi) << what << ": stored pattern differs";
  ASSERT_EQ(gv.size(), wv.size());
  if (!wv.empty())
    ASSERT_EQ(std::memcmp(gv.data(), wv.data(), wv.size() * sizeof(double)),
              0)
        << what << ": value bits differ";
}

class OverlayOpsFuzz : public ::testing::TestWithParam<unsigned> {
 private:
  // Real 3-worker pool so the CpuPar legs exercise cross-thread chunking
  // even on single-core CI machines (see test_differential_fuzz.cpp).
  gpu_sim::ThreadPool cpupar_pool_{3};
  grb::cpupar_backend::ScopedPool bind_cpupar_{cpupar_pool_};
};

/// For seeded (base, overlay, u, mask) tuples: mxv_overlay / vxm_overlay on
/// every backend == plain mxv / vxm on the monolithically rebuilt merged
/// matrix on Sequential, across {NoMask, value mask, complement} x
/// {NoAccumulate, Plus} x {Merge, Replace}.
TEST_P(OverlayOpsFuzz, MxvVxmMatchMonolithicRebuild) {
  for (unsigned c = 0; c < 4; ++c) {
    const unsigned seed = 6000 + GetParam() * 4 + c;
    std::mt19937 rng(seed);
    const Index n = 3 + rng() % 10;
    const EdgeList initial = random_graph(rng, n, 1 + rng() % 18);

    BaseCsrPtr base = gbtl_graph::build_base_csr(initial);
    DeltaOverlayPtr overlay;
    Model model = model_of(initial);
    std::size_t live = base->num_edges();
    for (int step = 0; step < 3; ++step) {  // a few batches deep
      EdgeList adds, removes;
      random_batch(rng, n, model, adds, removes);
      auto res = gbtl_graph::apply_updates(*base, overlay.get(), live, adds,
                                           removes);
      model_apply(model, adds, removes);
      overlay = res.overlay;
      live = res.live_nnz;
    }
    const DeltaOverlay empty;
    const DeltaOverlay& ov = overlay ? *overlay : empty;

    // Merged monolithic rebuild = the oracle operand.
    const EdgeList merged = gbtl_graph::materialize(*base, overlay.get());
    const auto oracle_a =
        gbtl_graph::to_matrix<double, grb::Sequential>(merged);
    const auto sbase = gbtl_graph::base_to_matrix<double, grb::Sequential>(*base);
    const auto pbase = gbtl_graph::base_to_matrix<double, grb::CpuPar>(*base);
    const auto gbase = gbtl_graph::base_to_matrix<double, grb::GpuSim>(*base);

    // Shared input/output/mask tuples (integer-valued).
    std::uniform_int_distribution<int> wgen(-4, 4);
    IndexArrayType uidx, widx, midx;
    std::vector<double> uval, wval;
    std::vector<std::uint8_t> mval;
    for (Index i = 0; i < n; ++i) {
      if (rng() % 3 != 0) {
        uidx.push_back(i);
        uval.push_back(static_cast<double>(wgen(rng)));
      }
      if (rng() % 2 == 0) {
        widx.push_back(i);
        wval.push_back(static_cast<double>(wgen(rng)));
      }
      if (rng() % 2 == 0) {
        midx.push_back(i);
        mval.push_back(rng() % 3 != 0 ? 1 : 0);
      }
    }

    auto make_vec = [&](auto tag, const IndexArrayType& idx,
                        const std::vector<double>& vals) {
      grb::Vector<double, decltype(tag)> v(n);
      if (!idx.empty()) v.build(idx, vals, grb::Second<double>{});
      return v;
    };
    auto make_mask = [&](auto tag) {
      grb::Vector<std::uint8_t, decltype(tag)> m(n);
      if (!midx.empty()) m.build(midx, mval, grb::Second<std::uint8_t>{});
      return m;
    };

    const auto run_all = [&](auto accum, auto outp, unsigned mask_variant,
                             const char* label) {
      // Oracle: plain ops on the monolithic merged matrix, Sequential.
      auto su = make_vec(grb::Sequential{}, uidx, uval);
      auto smask = make_mask(grb::Sequential{});

      auto apply_leg = [&](auto tag, const auto& base_m, const char* who) {
        using LegTag = decltype(tag);
        auto u = make_vec(tag, uidx, uval);
        auto mask = make_mask(tag);

        // mxv leg
        {
          grb::Vector<double, grb::Sequential> want(n);
          if (!widx.empty()) want.build(widx, wval, grb::Second<double>{});
          grb::Vector<double, LegTag> got(n);
          if (!widx.empty()) got.build(widx, wval, grb::Second<double>{});
          switch (mask_variant) {
            case 0:
              grb::mxv(want, grb::NoMask{}, accum,
                       grb::ArithmeticSemiring<double>{}, oracle_a, su, outp);
              grb::mxv_overlay(got, grb::NoMask{}, accum,
                               grb::ArithmeticSemiring<double>{}, base_m, ov,
                               u, outp);
              break;
            case 1:
              grb::mxv(want, smask, accum, grb::ArithmeticSemiring<double>{},
                       oracle_a, su, outp);
              grb::mxv_overlay(got, mask, accum,
                               grb::ArithmeticSemiring<double>{}, base_m, ov,
                               u, outp);
              break;
            default:
              grb::mxv(want, grb::complement(smask), accum,
                       grb::ArithmeticSemiring<double>{}, oracle_a, su, outp);
              grb::mxv_overlay(got, grb::complement(mask), accum,
                               grb::ArithmeticSemiring<double>{}, base_m, ov,
                               u, outp);
              break;
          }
          expect_bits_equal(got, want,
                            (std::string(who) + " mxv_overlay " + label)
                                .c_str());
        }
        // vxm leg
        {
          grb::Vector<double, grb::Sequential> want(n);
          if (!widx.empty()) want.build(widx, wval, grb::Second<double>{});
          grb::Vector<double, LegTag> got(n);
          if (!widx.empty()) got.build(widx, wval, grb::Second<double>{});
          switch (mask_variant) {
            case 0:
              grb::vxm(want, grb::NoMask{}, accum,
                       grb::ArithmeticSemiring<double>{}, su, oracle_a, outp);
              grb::vxm_overlay(got, grb::NoMask{}, accum,
                               grb::ArithmeticSemiring<double>{}, u, base_m,
                               ov, outp);
              break;
            case 1:
              grb::vxm(want, smask, accum, grb::ArithmeticSemiring<double>{},
                       su, oracle_a, outp);
              grb::vxm_overlay(got, mask, accum,
                               grb::ArithmeticSemiring<double>{}, u, base_m,
                               ov, outp);
              break;
            default:
              grb::vxm(want, grb::complement(smask), accum,
                       grb::ArithmeticSemiring<double>{}, su, oracle_a, outp);
              grb::vxm_overlay(got, grb::complement(mask), accum,
                               grb::ArithmeticSemiring<double>{}, u, base_m,
                               ov, outp);
              break;
          }
          expect_bits_equal(got, want,
                            (std::string(who) + " vxm_overlay " + label)
                                .c_str());
        }
      };

      apply_leg(grb::Sequential{}, sbase, "seq");
      apply_leg(grb::CpuPar{}, pbase, "cpupar");
      apply_leg(grb::GpuSim{}, gbase, "gpu");
    };

    for (unsigned mv = 0; mv < 3; ++mv) {
      run_all(grb::NoAccumulate{}, grb::Merge, mv, "noacc/merge");
      run_all(grb::Plus<double>{}, grb::Merge, mv, "plus/merge");
      run_all(grb::NoAccumulate{}, grb::Replace, mv, "noacc/replace");
      run_all(grb::Plus<double>{}, grb::Replace, mv, "plus/replace");
      if (::testing::Test::HasFatalFailure()) {
        ADD_FAILURE() << "seed " << seed << " mask variant " << mv;
        return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaOverlayFuzz, ::testing::Range(0u, 8u));
INSTANTIATE_TEST_SUITE_P(Seeds, OverlayOpsFuzz, ::testing::Range(0u, 6u));

}  // namespace
