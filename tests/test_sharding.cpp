/// Unit tests for the shard-aware storage layer: the row-block planner and
/// its halo (column-span) annotation, the ShardedMatrix frontend surface,
/// single-shard passthrough equivalence with the monolithic GpuSim backend,
/// multi-shard mxv/vxm bit-exactness against the Sequential oracle (real
/// non-integer doubles — any re-association of the fold order fails the
/// memcmp), the halo-exchange DeviceStats counters, and the headline
/// capability: serving a graph whose CSR exceeds a single context's arena
/// by spreading it over several contexts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <random>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/sssp.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/error.hpp"
#include "gpu_sim/placement.hpp"
#include "sparse/shard_plan.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;

// --------------------------------------------------------------------------
// Planner
// --------------------------------------------------------------------------

TEST(ShardPlan, CoversAllRowsContiguouslyAndBalancesNnz) {
  // Skewed degrees: row i has i+1 entries -> total 55 over 10 rows.
  IndexArrayType offsets{0};
  for (IndexType i = 0; i < 10; ++i)
    offsets.push_back(offsets.back() + i + 1);

  const auto plan = sparse::plan_shards(offsets.data(), 10, 3);
  ASSERT_EQ(plan.count(), 3u);
  EXPECT_EQ(plan.shards.front().row_begin, 0u);
  EXPECT_EQ(plan.shards.back().row_end, 10u);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < plan.count(); ++s) {
    if (s > 0)
      EXPECT_EQ(plan.shards[s].row_begin, plan.shards[s - 1].row_end);
    total += plan.shards[s].nnz;
  }
  EXPECT_EQ(total, 55u);
  // Every cut sits within one row's degree of the ideal third (the planner
  // can't split a row). Ideal share is 55/3 ~ 18.3; max row degree is 10.
  for (const auto& sh : plan.shards) EXPECT_LE(sh.nnz, 18u + 10u);
}

TEST(ShardPlan, EmptyMatrixDegradesToEvenRowSplit) {
  IndexArrayType offsets(9, 0);  // 8 rows, no entries
  const auto plan = sparse::plan_shards(offsets.data(), 8, 4);
  ASSERT_EQ(plan.count(), 4u);
  for (const auto& sh : plan.shards) {
    EXPECT_EQ(sh.rows(), 2u);
    EXPECT_EQ(sh.nnz, 0u);
  }
}

TEST(ShardPlan, MoreShardsThanRowsLeavesTrailingShardsEmpty) {
  IndexArrayType offsets{0, 2, 4};  // 2 rows
  const auto plan = sparse::plan_shards(offsets.data(), 2, 4);
  ASSERT_EQ(plan.count(), 4u);
  EXPECT_EQ(plan.shards.back().row_end, 2u);
  std::size_t nonempty = 0;
  for (const auto& sh : plan.shards) nonempty += sh.rows() > 0 ? 1 : 0;
  EXPECT_LE(nonempty, 2u);
}

TEST(ShardPlan, ColSpansBoundExactlyTheReferencedColumns) {
  // Two rows per shard; shard 0 touches cols {1, 5}, shard 1 cols {0, 7}.
  IndexArrayType offsets{0, 1, 2, 3, 4};
  IndexArrayType cols{5, 1, 7, 0};
  auto plan = sparse::plan_shards(offsets.data(), 4, 2);
  ASSERT_EQ(plan.count(), 2u);
  sparse::annotate_col_spans(plan, offsets.data(), cols.data());
  EXPECT_EQ(plan.shards[0].col_begin, 1u);
  EXPECT_EQ(plan.shards[0].col_end, 6u);
  EXPECT_EQ(plan.shards[1].col_begin, 0u);
  EXPECT_EQ(plan.shards[1].col_end, 8u);
  EXPECT_EQ(plan.shards[0].halo_cols(), 5u);
}

TEST(ShardPlan, ChooseCountFollowsBudgetAndPin) {
  // No pin: ceil(bytes / budget), clamped to the device count. Mask any
  // GBTL_SHARDS the environment may carry (CI sets it for fuzz stages).
  sparse::ShardCountGuard unpin(0);
  EXPECT_EQ(sparse::choose_shard_count(100, 1, 10), 1u);   // one device
  EXPECT_EQ(sparse::choose_shard_count(100, 4, 30), 4u);   // ceil=4
  EXPECT_EQ(sparse::choose_shard_count(100, 4, 60), 2u);   // ceil=2
  EXPECT_EQ(sparse::choose_shard_count(10, 4, 60), 1u);    // fits one
  EXPECT_EQ(sparse::choose_shard_count(1000, 4, 60), 4u);  // clamped
  EXPECT_EQ(sparse::choose_shard_count(100, 4, 0), 4u);    // no budget info
  {
    sparse::ShardCountGuard pin(3);
    EXPECT_EQ(sparse::choose_shard_count(10, 1, 1000), 3u);  // pin verbatim
  }
  EXPECT_EQ(sparse::choose_shard_count(10, 4, 1000), 1u);  // guard restored
}

// --------------------------------------------------------------------------
// Fixtures for backend comparisons
// --------------------------------------------------------------------------

struct Coo {
  IndexType nrows = 0, ncols = 0;
  IndexArrayType r, c;
  std::vector<double> v;
};

/// Deterministic sprinkle of non-integer doubles; ~density of the slots.
Coo random_coo(IndexType nrows, IndexType ncols, double density,
               unsigned seed) {
  Coo g;
  g.nrows = nrows;
  g.ncols = ncols;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (IndexType i = 0; i < nrows; ++i)
    for (IndexType j = 0; j < ncols; ++j)
      if (coin(rng) < density) {
        g.r.push_back(i);
        g.c.push_back(j);
        g.v.push_back(val(rng));
      }
  return g;
}

template <typename Tag>
grb::Matrix<double, Tag> to_backend(const Coo& g) {
  grb::Matrix<double, Tag> a(g.nrows, g.ncols);
  a.build(g.r, g.c, g.v);
  return a;
}

template <typename Tag>
grb::Vector<double, Tag> sparse_vector(IndexType n, double density,
                                       unsigned seed) {
  grb::Vector<double, Tag> u(n);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (IndexType i = 0; i < n; ++i)
    if (coin(rng) < density) u.setElement(i, val(rng));
  return u;
}

template <typename TagA, typename TagB>
void expect_vectors_bit_exact(const grb::Vector<double, TagA>& a,
                              const grb::Vector<double, TagB>& b,
                              const char* what) {
  IndexArrayType ia, ib;
  std::vector<double> va, vb;
  a.extractTuples(ia, va);
  b.extractTuples(ib, vb);
  EXPECT_EQ(ia, ib) << what << ": structure differs";
  ASSERT_EQ(va.size(), vb.size()) << what;
  if (!va.empty())
    EXPECT_EQ(
        std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0)
        << what << ": values not bit-exact";
}

// --------------------------------------------------------------------------
// ShardedMatrix frontend surface
// --------------------------------------------------------------------------

TEST(ShardedMatrix, BuildExtractElementOpsRoundTrip) {
  const Coo g = random_coo(17, 13, 0.2, 99);
  auto a = to_backend<grb::GpuShard>(g);
  EXPECT_EQ(a.nrows(), 17u);
  EXPECT_EQ(a.ncols(), 13u);
  EXPECT_EQ(a.nvals(), g.v.size());

  IndexArrayType r2, c2;
  std::vector<double> v2;
  a.extractTuples(r2, c2, v2);
  // Row-major sorted; rebuild a Sequential matrix and compare tuples.
  auto s = to_backend<grb::Sequential>(g);
  IndexArrayType rs, cs;
  std::vector<double> vs;
  s.extractTuples(rs, cs, vs);
  EXPECT_EQ(r2, rs);
  EXPECT_EQ(c2, cs);
  EXPECT_EQ(std::memcmp(v2.data(), vs.data(), vs.size() * sizeof(double)),
            0);

  a.setElement(3, 7, 1.25);
  EXPECT_TRUE(a.hasElement(3, 7));
  EXPECT_EQ(a.extractElement(3, 7), 1.25);
  a.removeElement(3, 7);
  EXPECT_FALSE(a.hasElement(3, 7));
  EXPECT_THROW((void)a.extractElement(3, 7), grb::NoValueException);
  EXPECT_THROW(a.setElement(17, 0, 1.0), grb::IndexOutOfBoundsException);
}

// --------------------------------------------------------------------------
// Passthrough + multi-shard equivalence
// --------------------------------------------------------------------------

class ShardedOps : public ::testing::Test {
 protected:
  void SetUp() override {
    placement_.emplace(
        std::vector<gpu_sim::Context*>{&gpu_sim::device(), &extra_});
  }
  void TearDown() override { placement_.reset(); }

  gpu_sim::Context extra_;
  std::optional<gpu_sim::ScopedPlacement> placement_;
};

TEST_F(ShardedOps, SingleShardPassthroughMatchesGpuSim) {
  const Coo g = random_coo(40, 40, 0.12, 7);
  auto gs = to_backend<grb::GpuSim>(g);
  auto sh = to_backend<grb::GpuShard>(g);
  auto u_gs = sparse_vector<grb::GpuSim>(40, 0.5, 21);
  auto u_sh = sparse_vector<grb::GpuShard>(40, 0.5, 21);

  sparse::ShardCountGuard pin(1);
  grb::Vector<double, grb::GpuSim> w_gs(40);
  grb::Vector<double, grb::GpuShard> w_sh(40);
  grb::mxv(w_gs, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, gs, u_gs);
  grb::mxv(w_sh, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, sh, u_sh);
  expect_vectors_bit_exact(w_sh, w_gs, "1-shard mxv");

  grb::vxm(w_gs, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, u_gs, gs);
  grb::vxm(w_sh, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, u_sh, sh);
  expect_vectors_bit_exact(w_sh, w_gs, "1-shard vxm");
}

TEST_F(ShardedOps, MultiShardMxvVxmBitExactVsSequential) {
  const Coo g = random_coo(61, 61, 0.15, 31);
  auto seq = to_backend<grb::Sequential>(g);
  auto sh = to_backend<grb::GpuShard>(g);
  auto u_seq = sparse_vector<grb::Sequential>(61, 0.4, 5);
  auto u_sh = sparse_vector<grb::GpuShard>(61, 0.4, 5);

  for (std::size_t count : {2u, 4u}) {
    sparse::ShardCountGuard pin(count);
    grb::Vector<double, grb::Sequential> w_seq(61);
    grb::Vector<double, grb::GpuShard> w_sh(61);

    grb::mxv(w_seq, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, seq, u_seq);
    grb::mxv(w_sh, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, sh, u_sh);
    expect_vectors_bit_exact(w_sh, w_seq, "n-shard mxv");

    // Accumulate a second product on top: exercises write_vector's accum
    // path over shard-gathered T̃.
    grb::mxv(w_seq, grb::NoMask{}, grb::Plus<double>{},
             grb::MinPlusSemiring<double>{}, seq, u_seq);
    grb::mxv(w_sh, grb::NoMask{}, grb::Plus<double>{},
             grb::MinPlusSemiring<double>{}, sh, u_sh);
    expect_vectors_bit_exact(w_sh, w_seq, "n-shard mxv accum");

    grb::vxm(w_seq, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, u_seq, seq);
    grb::vxm(w_sh, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, u_sh, sh);
    expect_vectors_bit_exact(w_sh, w_seq, "n-shard vxm");

    // Masked + replace over the sharded path.
    grb::Vector<double, grb::Sequential> m_seq(61);
    grb::Vector<double, grb::GpuShard> m_sh(61);
    for (IndexType i = 0; i < 61; i += 2) {
      m_seq.setElement(i, 1.0);
      m_sh.setElement(i, 1.0);
    }
    grb::vxm(w_seq, m_seq, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, u_seq, seq, grb::Replace);
    grb::vxm(w_sh, m_sh, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, u_sh, sh, grb::Replace);
    expect_vectors_bit_exact(w_sh, w_seq, "n-shard masked vxm");
  }
}

TEST_F(ShardedOps, IterativeAlgorithmsRunUnchangedOnShards) {
  // Connected ring + chords so bfs/cc reach everything.
  Coo g;
  g.nrows = g.ncols = 48;
  auto add = [&](IndexType i, IndexType j, double w) {
    g.r.push_back(i);
    g.c.push_back(j);
    g.v.push_back(w);
  };
  for (IndexType i = 0; i < 48; ++i) {
    add(i, (i + 1) % 48, 1.0 + 0.125 * static_cast<double>(i % 7));
    add((i + 1) % 48, i, 1.0 + 0.125 * static_cast<double>(i % 7));
    if (i % 5 == 0) {
      add(i, (i + 17) % 48, 2.5);
      add((i + 17) % 48, i, 2.5);
    }
  }
  auto seq = to_backend<grb::Sequential>(g);
  auto sh = to_backend<grb::GpuShard>(g);

  sparse::ShardCountGuard pin(2);

  grb::Vector<IndexType, grb::Sequential> lv_seq(48);
  grb::Vector<IndexType, grb::GpuShard> lv_sh(48);
  algorithms::bfs_level(seq, 3, lv_seq);
  algorithms::bfs_level(sh, 3, lv_sh);
  IndexArrayType is, ish;
  std::vector<IndexType> vs, vsh;
  lv_seq.extractTuples(is, vs);
  lv_sh.extractTuples(ish, vsh);
  EXPECT_EQ(is, ish);
  EXPECT_EQ(vs, vsh);

  grb::Vector<double, grb::Sequential> d_seq(48);
  grb::Vector<double, grb::GpuShard> d_sh(48);
  algorithms::sssp(seq, 3, d_seq);
  algorithms::sssp(sh, 3, d_sh);
  expect_vectors_bit_exact(d_sh, d_seq, "sssp");

  grb::Vector<IndexType, grb::Sequential> cl_seq(48);
  grb::Vector<IndexType, grb::GpuShard> cl_sh(48);
  const auto n_seq = algorithms::connected_components(seq, cl_seq);
  const auto n_sh = algorithms::connected_components(sh, cl_sh);
  EXPECT_EQ(n_seq, n_sh);
  cl_seq.extractTuples(is, vs);
  cl_sh.extractTuples(ish, vsh);
  EXPECT_EQ(is, ish);
  EXPECT_EQ(vs, vsh);
}

TEST_F(ShardedOps, HaloCountersChargeTheExchange) {
  const Coo g = random_coo(50, 50, 0.2, 11);
  auto sh = to_backend<grb::GpuShard>(g);
  auto u = sparse_vector<grb::GpuShard>(50, 0.6, 13);
  grb::Vector<double, grb::GpuShard> w(50);

  sparse::ShardCountGuard pin(2);
  const auto before = gpu_sim::device().stats();
  grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, sh, u);
  const auto delta = gpu_sim::device().stats() - before;
  // shards_active is a lifetime high-water mark (not differenced): earlier
  // tests in this binary may have fanned out wider, so bound from below.
  EXPECT_GE(delta.shards_active, 2u);
  EXPECT_GT(delta.halo_bytes_exchanged, 0u);
  // Shard 1's halo upload rides its transfer stream while shard 0's kernel
  // is still running — some exchange time must be hidden.
  EXPECT_GT(delta.halo_seconds_hidden, 0.0);
}

TEST(ShardedOversized, GraphBiggerThanOneArenaIsServedAcrossContexts) {
  // ~1.9k nnz -> CSR ~36 KB, CSR+CSC estimate ~72 KB. Give each context a
  // 32 KB arena: the monolithic device image cannot exist, two shards can.
  const Coo g = random_coo(96, 96, 0.2, 123);
  const std::uint64_t csr_bytes =
      (96 + 1) * sizeof(IndexType) +
      g.v.size() * (sizeof(IndexType) + sizeof(double));
  gpu_sim::DeviceProperties small;
  small.total_global_memory = (csr_bytes * 3) / 4;

  gpu_sim::Context home{small, /*worker_count=*/1};
  gpu_sim::Context second{small, /*worker_count=*/1};
  gpu_sim::ScopedDevice bind(home);
  gpu_sim::ScopedPlacement place({&home, &second});

  // Monolithic upload genuinely overflows the arena.
  EXPECT_THROW((void)to_backend<grb::GpuSim>(g), gpu_sim::DeviceBadAlloc);

  auto sh = to_backend<grb::GpuShard>(g);
  auto u = sparse_vector<grb::GpuShard>(96, 0.5, 77);
  grb::Vector<double, grb::GpuShard> w(96);
  grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, sh, u);  // budget-driven plan

  EXPECT_GE(sh.impl().plan().count(), 2u)
      << "the budget heuristic must fan out an oversized graph";

  auto seq = to_backend<grb::Sequential>(g);
  auto u_seq = sparse_vector<grb::Sequential>(96, 0.5, 77);
  grb::Vector<double, grb::Sequential> w_seq(96);
  grb::mxv(w_seq, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, seq, u_seq);
  expect_vectors_bit_exact(w, w_seq, "oversized mxv");
}

}  // namespace
