/// ELL/HYB edge-case regressions: a single max-degree row (star graph) must
/// not blow up padded traffic — the selector must route around pure ELL;
/// empty matrices and matrices with empty rows must flow through every
/// kernel variant, the adaptive engine, and both GraphBLAS backends.

#include <gtest/gtest.h>

#include <vector>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "sparse/spmv_select.hpp"

namespace {

using gpu_sim::SpmvKernelKind;
using sparse::Csr;
using sparse::Index;

/// Directed star: hub row 0 points at every other vertex; spokes point back.
Csr<double> star(Index n) {
  sparse::Coo<double> coo;
  coo.nrows = n;
  coo.ncols = n;
  for (Index j = 1; j < n; ++j) {
    coo.row.push_back(0);
    coo.col.push_back(j);
    coo.val.push_back(1.0);
    coo.row.push_back(j);
    coo.col.push_back(0);
    coo.val.push_back(2.0);
  }
  return sparse::coo_to_csr(sparse::canonicalize(std::move(coo)));
}

TEST(EllHybEdge, StarGraphEllPaddingBlowsUp) {
  const auto a = star(256);
  const auto ell = sparse::csr_to_ell(a);
  // Pure ELL pads every row to the hub degree: ~n/2 overhead.
  EXPECT_EQ(ell.width, 255u);
  EXPECT_GT(ell.fill_ratio(), 100.0);
  // HYB bounds the slab at ~mean degree and spills the hub to the tail.
  const auto hyb = sparse::csr_to_hyb(a);
  EXPECT_LE(hyb.ell.width, 2u);
  EXPECT_EQ(hyb.nnz(), a.nnz());
}

TEST(EllHybEdge, SelectorRoutesStarAwayFromEll) {
  // Large enough for the hub's padded traffic to dwarf launch overheads —
  // at this scale the selector must take the load-balanced CSR schedule,
  // never ELL (whose slab is nrows * hub-degree slots).
  gpu_sim::Context ctx;
  sparse::AdaptiveSpmv<double> engine(star(4096), ctx);
  EXPECT_EQ(engine.kernel(), SpmvKernelKind::kCsrLoadBalanced);

  // And the choice is cheaper than pure ELL by a wide margin.
  const auto a = star(4096);
  std::vector<double> x(a.ncols, 1.0);
  const double t0 = ctx.simulated_time_s();
  const auto y_adaptive = engine(x);
  const double adaptive = ctx.simulated_time_s() - t0;
  const auto ell = sparse::csr_to_ell(a);
  const double t1 = ctx.simulated_time_s();
  const auto y_ell = sparse::spmv_device(ell, x, ctx);
  const double ell_time = ctx.simulated_time_s() - t1;
  EXPECT_EQ(y_adaptive, y_ell);
  EXPECT_LT(adaptive, ell_time / 4.0);
}

TEST(EllHybEdge, EmptyMatrixAllKernels) {
  Csr<double> a;
  a.nrows = 8;
  a.ncols = 8;
  a.row_offsets.assign(9, 0);
  std::vector<double> x(8, 3.0);
  const std::vector<double> zeros(8, 0.0);

  gpu_sim::Context ctx;
  EXPECT_EQ(sparse::spmv_device(a, x, ctx), zeros);
  EXPECT_EQ(sparse::spmv_device_lb(a, x, ctx), zeros);
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_hyb(a), x, ctx), zeros);

  sparse::AdaptiveSpmv<double> engine(a, ctx);
  EXPECT_EQ(engine.kernel(), SpmvKernelKind::kCsrScalar);
  EXPECT_EQ(engine(x), zeros);
  EXPECT_EQ(engine.degree_stats().nnz, 0u);
}

TEST(EllHybEdge, ZeroDimensionedAnalyzeIsSafe) {
  const auto deg = sparse::analyze_offsets(nullptr, 0, 0, 32);
  EXPECT_EQ(deg.nnz, 0u);
  EXPECT_EQ(deg.skew(), 0.0);
  EXPECT_EQ(sparse::select_kernel(deg, true, sparse::SpmvMode::Adaptive),
            SpmvKernelKind::kCsrScalar);
}

TEST(EllHybEdge, EmptyRowsAgreeAcrossKernels) {
  // Rows 0, 3, 4, 9 empty; others ragged — exercises the load-balanced
  // kernel's empty-row skipping at team boundaries (chunk 2 splits
  // mid-row repeatedly).
  sparse::Coo<double> coo;
  coo.nrows = 10;
  coo.ncols = 10;
  auto add = [&](Index i, Index j, double v) {
    coo.row.push_back(i);
    coo.col.push_back(j);
    coo.val.push_back(v);
  };
  add(1, 0, 2.0);
  add(1, 5, -1.0);
  add(2, 2, 3.0);
  add(5, 1, 1.0);
  add(5, 2, 1.0);
  add(5, 3, 1.0);
  add(5, 4, 1.0);
  add(5, 9, 4.0);
  add(6, 0, -2.0);
  add(8, 7, 1.0);
  const auto a = sparse::coo_to_csr(sparse::canonicalize(std::move(coo)));

  std::vector<double> x = {1, 2, 3, 4, 0, 1, 2, 3, 4, 1};
  const auto want = sparse::spmv(a, x);

  gpu_sim::Context ctx;
  EXPECT_EQ(sparse::spmv_device(a, x, ctx), want);
  for (Index chunk : {Index{1}, Index{2}, Index{3}, Index{4}, Index{64}})
    EXPECT_EQ(sparse::spmv_device_lb(a, x, ctx, chunk), want)
        << "chunk " << chunk;
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_ell(a), x, ctx), want);
  EXPECT_EQ(sparse::spmv_device(sparse::csr_to_hyb(a), x, ctx), want);
}

TEST(EllHybEdge, StarThroughGraphBLASBackendsAgrees) {
  // End-to-end: the backend's adaptive mxv on a star graph matches the
  // sequential backend exactly (integer values => exact arithmetic).
  const Index n = 64;
  grb::IndexArrayType rows, cols;
  std::vector<double> vals;
  for (Index j = 1; j < n; ++j) {
    rows.push_back(0);
    cols.push_back(j);
    vals.push_back(1.0);
    rows.push_back(j);
    cols.push_back(0);
    vals.push_back(2.0);
  }
  grb::Matrix<double, grb::Sequential> sa(n, n);
  sa.build(rows, cols, vals);
  grb::Matrix<double, grb::GpuSim> ga(n, n);
  ga.build(rows, cols, vals);
  grb::Vector<double, grb::Sequential> su(std::vector<double>(n, 1.0), 0.0);
  grb::Vector<double, grb::GpuSim> gu(std::vector<double>(n, 1.0), 0.0);
  grb::Vector<double, grb::Sequential> sw(n);
  grb::Vector<double, grb::GpuSim> gw(n);
  grb::mxv(sw, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, sa, su, grb::Replace);
  grb::mxv(gw, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, ga, gu, grb::Replace);
  grb::IndexArrayType si, gi;
  std::vector<double> sv, gv;
  sw.extractTuples(si, sv);
  gw.extractTuples(gi, gv);
  EXPECT_EQ(si, gi);
  EXPECT_EQ(sv, gv);
}

}  // namespace
