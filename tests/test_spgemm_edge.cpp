/// SpGEMM edge-case battery: shapes chosen to stress one boundary of the
/// adaptive engine at a time — a dense row among hyper-sparse rows (one
/// long-bin row dominating the expansion), a B whose referenced rows are
/// all empty (zero products despite nonzero operands), a single-column B
/// (maximum compression: every row folds to one output), row FLOPs pinned
/// to each load-balancing bin boundary, and hash tables run at a forced
/// worst-case 1.0 load factor, both unmasked (table exactly full at
/// completion) and mask-seeded (table entirely pre-filled with seeds).
/// Plus direct unit tests of the symbolic analysis, the table sizing, the
/// 64-bit overflow guard, and the selector's propose-then-ratify rules.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gbtl/gbtl.hpp"
#include "sparse/spgemm_select.hpp"

namespace {

using grb::IndexArrayType;
using grb::IndexType;

struct Coo {
  IndexType nr = 0, nc = 0;
  IndexArrayType r, c;
  std::vector<double> v;
  void add(IndexType i, IndexType j, double val) {
    r.push_back(i);
    c.push_back(j);
    v.push_back(val);
  }
};

template <typename Tag>
grb::Matrix<double, Tag> to_matrix(const Coo& m) {
  grb::Matrix<double, Tag> out(m.nr, m.nc);
  if (!m.v.empty()) out.build(m.r, m.c, m.v);
  return out;
}

/// Sequential-backend reference product, then the GPU backend under every
/// strategy must match it tuple-for-tuple.
void expect_all_strategies_match(const Coo& a, const Coo& b) {
  grb::Matrix<double, grb::Sequential> want(a.nr, b.nc);
  grb::mxm(want, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, to_matrix<grb::Sequential>(a),
           to_matrix<grb::Sequential>(b));
  IndexArrayType wr, wc;
  std::vector<double> wv;
  want.extractTuples(wr, wc, wv);

  const auto ga = to_matrix<grb::GpuSim>(a);
  const auto gb = to_matrix<grb::GpuSim>(b);
  for (const auto mode : {sparse::SpgemmMode::Esc, sparse::SpgemmMode::Hash,
                          sparse::SpgemmMode::Auto}) {
    sparse::SpgemmModeGuard guard(mode);
    grb::Matrix<double, grb::GpuSim> c(a.nr, b.nc);
    grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, ga, gb);
    IndexArrayType cr, cc;
    std::vector<double> cv;
    c.extractTuples(cr, cc, cv);
    const char* label = mode == sparse::SpgemmMode::Esc    ? "esc"
                        : mode == sparse::SpgemmMode::Hash ? "hash"
                                                           : "auto";
    EXPECT_EQ(cr, wr) << label;
    EXPECT_EQ(cc, wc) << label;
    EXPECT_EQ(cv, wv) << label;
  }
}

// --------------------------------------------------------------------------
// Shape edge cases
// --------------------------------------------------------------------------

// One dense row among hyper-sparse rows: row 0 of A holds all 64 columns
// while every other row holds one — the expansion is dominated by a single
// long-bin row (64 * nnz-per-B-row FLOPs) with 63 short-bin rows beside it.
TEST(SpgemmEdge, DenseRowAmongHypersparseRows) {
  constexpr IndexType n = 64;
  Coo a{n, n, {}, {}, {}};
  for (IndexType j = 0; j < n; ++j) a.add(0, j, 1.0 + static_cast<double>(j % 5));
  for (IndexType i = 1; i < n; ++i)
    a.add(i, (i * 7) % n, 2.0 - static_cast<double>(i % 3));
  Coo b{n, n, {}, {}, {}};
  for (IndexType i = 0; i < n; ++i) {
    b.add(i, i, 1.0);
    b.add(i, (i * 13 + 1) % n, static_cast<double>(i % 4) - 2.0);
  }
  expect_all_strategies_match(a, b);
}

// Every B row that A references is empty: nonzero operands, zero partial
// products. Both pipelines must produce an empty C without tripping their
// zero-work paths (empty expansion buffer, zero-slot hash tables).
TEST(SpgemmEdge, AllReferencedBRowsEmpty) {
  constexpr IndexType n = 6;
  Coo a{n, n, {}, {}, {}};
  for (IndexType i = 0; i < n; ++i) a.add(i, 1 + (i % (n - 1)), 3.0);
  Coo b{n, n, {}, {}, {}};
  b.add(0, 2, 5.0);  // row 0 is the only nonempty B row; A never reads it
  grb::Matrix<double, grb::GpuSim> expect_empty(n, n);
  const auto ga = to_matrix<grb::GpuSim>(a);
  const auto gb = to_matrix<grb::GpuSim>(b);
  for (const auto mode : {sparse::SpgemmMode::Esc, sparse::SpgemmMode::Hash,
                          sparse::SpgemmMode::Auto}) {
    sparse::SpgemmModeGuard guard(mode);
    grb::Matrix<double, grb::GpuSim> c(n, n);
    grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, ga, gb);
    EXPECT_EQ(c.nvals(), 0u);
  }
}

// Single-column B: the maximum-compression shape. Every partial product of
// an A row lands on the same output column, so est_nnz is one per nonempty
// row and compression equals the mean row degree.
TEST(SpgemmEdge, SingleColumnB) {
  constexpr IndexType n = 32;
  Coo a{n, n, {}, {}, {}};
  for (IndexType i = 0; i < n; ++i)
    for (IndexType k = 0; k < 8; ++k)
      a.add(i, (i * 3 + k * 5) % n, 1.0 + static_cast<double>((i + k) % 4));
  Coo b{n, 1, {}, {}, {}};
  for (IndexType i = 0; i < n; ++i)
    b.add(i, 0, static_cast<double>(i % 7) - 3.0);
  expect_all_strategies_match(a, b);
}

// Row FLOPs straddling each bin boundary: multiplying by the identity makes
// each A row's FLOP count equal its nnz, so rows of 31/32/33 and 511/512/513
// entries land exactly on either side of the short/medium and medium/long
// cuts. All three strategies must agree on the result.
TEST(SpgemmEdge, RowFlopsStraddleBinBoundaries) {
  constexpr IndexType kRowNnz[] = {31, 32, 33, 511, 512, 513};
  constexpr IndexType n = 520;
  Coo a{6, n, {}, {}, {}};
  for (IndexType i = 0; i < 6; ++i)
    for (IndexType k = 0; k < kRowNnz[i]; ++k)
      a.add(i, k, 1.0 + static_cast<double>((i + k) % 3));
  Coo b{n, n, {}, {}, {}};
  for (IndexType i = 0; i < n; ++i) b.add(i, i, 2.0);
  expect_all_strategies_match(a, b);
}

// The same boundary rows, checked directly against the symbolic analysis:
// 31 and 32 are short, 33/511/512 medium, 513 long with ceil(513/256) = 3
// chunks.
TEST(SpgemmEdge, AnalyzeSpgemmBinsBoundaryRows) {
  const std::vector<sparse::Index> flops = {31, 32, 33, 511, 512, 513, 0};
  const std::vector<sparse::Index> caps = {31, 32, 33, 511, 512, 513, 0};
  const auto s =
      sparse::analyze_spgemm(flops.data(), caps.data(), 7, 600, false);
  EXPECT_EQ(s.total_products, 31u + 32u + 33u + 511u + 512u + 513u);
  EXPECT_EQ(s.nonempty_rows, 6u);
  EXPECT_EQ(s.short_rows, 2u);
  EXPECT_EQ(s.medium_rows, 3u);
  EXPECT_EQ(s.long_rows, 1u);
  EXPECT_EQ(s.long_row_chunks, 3u);
  EXPECT_EQ(s.max_row_flops, 513u);
  EXPECT_EQ(s.est_nnz, s.total_products);  // caps == flops here
}

// --------------------------------------------------------------------------
// Worst-case hash load factor
// --------------------------------------------------------------------------

// With the load target forced to 1.0 a dense 16x16 square sizes each row's
// table to exactly 16 slots for 16 distinct keys — the table is completely
// full when insertion finishes, so every probe chain must terminate by key
// match rather than by finding an empty slot.
TEST(SpgemmEdge, HashTableAtFullLoadFactor) {
  const double saved = sparse::spgemm_hash_load_target();
  sparse::spgemm_hash_load_target() = 1.0;
  constexpr IndexType n = 16;
  Coo a{n, n, {}, {}, {}};
  Coo b{n, n, {}, {}, {}};
  for (IndexType i = 0; i < n; ++i)
    for (IndexType j = 0; j < n; ++j) {
      a.add(i, j, 1.0 + static_cast<double>((i + 2 * j) % 5));
      b.add(i, j, static_cast<double>((3 * i + j) % 7) - 3.0);
    }
  expect_all_strategies_match(a, b);
  sparse::spgemm_hash_load_target() = saved;
}

// Mask-seeded variant at load 1.0: rows 0..7 carry a full-row mask, so each
// seeded table is pre-filled to capacity before any product arrives (16
// seeds in 16 slots); rows 8..15 have no allowed entries, so all their
// products must be counted as mask-avoided.
TEST(SpgemmEdge, SeededHashTableAtFullLoadFactor) {
  const double saved = sparse::spgemm_hash_load_target();
  sparse::spgemm_hash_load_target() = 1.0;
  constexpr IndexType n = 16;
  grb::Matrix<double, grb::GpuSim> a(n, n), b(n, n), mask(n, n);
  grb::Matrix<double, grb::Sequential> sa(n, n), sb(n, n), smask(n, n);
  IndexArrayType rows, cols, mrows, mcols;
  std::vector<double> avals, bvals, mvals;
  for (IndexType i = 0; i < n; ++i)
    for (IndexType j = 0; j < n; ++j) {
      rows.push_back(i);
      cols.push_back(j);
      avals.push_back(1.0 + static_cast<double>((i + 3 * j) % 4));
      bvals.push_back(static_cast<double>((2 * i + j) % 5) - 2.0);
      if (i < n / 2) {
        mrows.push_back(i);
        mcols.push_back(j);
        mvals.push_back(1.0);
      }
    }
  a.build(rows, cols, avals);
  b.build(rows, cols, bvals);
  mask.build(mrows, mcols, mvals);
  sa.build(rows, cols, avals);
  sb.build(rows, cols, bvals);
  smask.build(mrows, mcols, mvals);

  grb::Matrix<double, grb::Sequential> want(n, n);
  grb::mxm(want, grb::structure(smask), grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, sa, sb, grb::Replace);
  IndexArrayType wr, wc;
  std::vector<double> wv;
  want.extractTuples(wr, wc, wv);

  sparse::SpgemmModeGuard guard(sparse::SpgemmMode::Hash);
  const auto before = gpu_sim::device().stats();
  grb::Matrix<double, grb::GpuSim> c(n, n);
  grb::mxm(c, grb::structure(mask), grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, a, b, grb::Replace);
  const auto delta = gpu_sim::device().stats() - before;
  // Rows 8..15 contribute 8 rows x 256 products, all mask-avoided.
  EXPECT_GE(delta.spgemm_masked_products_avoided, 8u * 256u);
  IndexArrayType cr, cc;
  std::vector<double> cv;
  c.extractTuples(cr, cc, cv);
  EXPECT_EQ(cr, wr);
  EXPECT_EQ(cc, wc);
  EXPECT_EQ(cv, wv);
  sparse::spgemm_hash_load_target() = saved;
}

// --------------------------------------------------------------------------
// Table sizing
// --------------------------------------------------------------------------

TEST(SpgemmEdge, HashTableSlotsSizing) {
  EXPECT_EQ(sparse::hash_table_slots(0), 0u);
  // Default 0.5 load target: entries double then round to a power of two,
  // floored at kMinHashSlots.
  EXPECT_EQ(sparse::hash_table_slots(1), 8u);
  EXPECT_EQ(sparse::hash_table_slots(5), 16u);
  EXPECT_EQ(sparse::hash_table_slots(64), 128u);
  const double saved = sparse::spgemm_hash_load_target();
  sparse::spgemm_hash_load_target() = 1.0;
  EXPECT_EQ(sparse::hash_table_slots(16), 16u);  // exactly full permitted
  EXPECT_EQ(sparse::hash_table_slots(17), 32u);
  sparse::spgemm_hash_load_target() = saved;
}

// --------------------------------------------------------------------------
// Overflow guard
// --------------------------------------------------------------------------

TEST(SpgemmEdge, CheckedProductTotalSumsInBounds) {
  const std::vector<std::uint32_t> counts = {3, 4, 5};
  EXPECT_EQ(sparse::checked_product_total(counts.data(), counts.size(), "mxm"),
            12u);
}

// Mocked narrow index type: two uint32 counts whose sum exceeds 2^32 - 1
// must throw a diagnostic naming the op and the product count, because the
// expansion buffers could not be addressed with 32-bit offsets.
TEST(SpgemmEdge, CheckedProductTotalRejectsIndexOverflow) {
  const std::vector<std::uint32_t> counts = {0xFFFFFFFFu, 2u};
  try {
    sparse::checked_product_total(counts.data(), counts.size(), "mxm");
    FAIL() << "expected std::overflow_error";
  } catch (const std::overflow_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("mxm"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4294967297"), std::string::npos) << msg;
    EXPECT_NE(msg.find("32-bit"), std::string::npos) << msg;
  }
}

// 64-bit intra-accumulation wrap (only reachable with absurd synthetic
// counts, but the guard must not wrap silently).
TEST(SpgemmEdge, CheckedProductTotalRejectsAccumulatorWrap) {
  const std::vector<std::uint64_t> counts = {~std::uint64_t{0}, 2u};
  EXPECT_THROW(
      sparse::checked_product_total(counts.data(), counts.size(), "mxm"),
      std::overflow_error);
}

// --------------------------------------------------------------------------
// Selector rules
// --------------------------------------------------------------------------

sparse::SpgemmSymbolic synthetic(std::uint64_t products, std::uint64_t est,
                                 sparse::Index nrows, bool masked) {
  sparse::SpgemmSymbolic s;
  s.nrows = nrows;
  s.ncols = nrows;
  s.total_products = products;
  s.est_nnz = est;
  s.nonempty_rows = nrows;
  s.mean_row_flops =
      static_cast<double>(products) / static_cast<double>(nrows);
  s.max_row_flops = static_cast<sparse::Index>(s.mean_row_flops);
  if (s.max_row_flops <= sparse::kShortRowMaxFlops) {
    s.short_rows = nrows;
  } else if (s.max_row_flops <= sparse::kMediumRowMaxFlops) {
    s.medium_rows = nrows;
  } else {
    s.long_rows = nrows;
    s.long_row_chunks =
        nrows * (s.max_row_flops + sparse::kLongRowChunkFlops - 1) /
        sparse::kLongRowChunkFlops;
  }
  s.table_slots = 2 * est;
  s.masked = masked;
  return s;
}

TEST(SpgemmEdge, SelectorHonorsForcedModes) {
  const auto s = synthetic(1000, 1000, 10, false);
  EXPECT_EQ(sparse::select_spgemm(s, sparse::SpgemmMode::Esc),
            sparse::SpgemmStrategy::kEsc);
  EXPECT_EQ(sparse::select_spgemm(s, sparse::SpgemmMode::Hash),
            sparse::SpgemmStrategy::kHash);
}

TEST(SpgemmEdge, SelectorKeepsEscOnLowCompression) {
  // compression 1.0, unmasked, no skew: the hash path is never proposed.
  const auto s = synthetic(1'000'000, 1'000'000, 10'000, false);
  EXPECT_EQ(sparse::select_spgemm(s, sparse::SpgemmMode::Auto,
                                  &gpu_sim::device().properties()),
            sparse::SpgemmStrategy::kEsc);
}

TEST(SpgemmEdge, SelectorPicksHashOnHighCompressionAtScale) {
  // 50 products per output slot: ESC would sort 50x the surviving data.
  const auto s = synthetic(50'000'000, 1'000'000, 100'000, false);
  EXPECT_EQ(sparse::select_spgemm(s, sparse::SpgemmMode::Auto,
                                  &gpu_sim::device().properties()),
            sparse::SpgemmStrategy::kHash);
  // And the model agrees the pick is cheaper.
  EXPECT_LT(sparse::estimated_spgemm_time(sparse::SpgemmStrategy::kHash, s,
                                          sizeof(double),
                                          gpu_sim::device().properties()),
            sparse::estimated_spgemm_time(sparse::SpgemmStrategy::kEsc, s,
                                          sizeof(double),
                                          gpu_sim::device().properties()));
}

TEST(SpgemmEdge, SelectorRatificationRejectsHashOnTinyMaskedInputs) {
  // Masked => proposed, but at 64 products both pipelines are launch-bound
  // and ESC's shorter launch chain wins the roofline comparison.
  const auto s = synthetic(64, 16, 4, true);
  EXPECT_EQ(sparse::select_spgemm(s, sparse::SpgemmMode::Auto,
                                  &gpu_sim::device().properties()),
            sparse::SpgemmStrategy::kEsc);
}

TEST(SpgemmEdge, SelectorKeepsEscOnEmptyWork) {
  const auto s = synthetic(0, 0, 8, true);
  EXPECT_EQ(sparse::select_spgemm(s, sparse::SpgemmMode::Auto,
                                  &gpu_sim::device().properties()),
            sparse::SpgemmStrategy::kEsc);
}

}  // namespace
