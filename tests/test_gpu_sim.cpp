/// Unit tests for the simulated GPU runtime: memory management, transfers,
/// kernel launches, cost-model accounting, and the Thrust-like primitive
/// library the GBTL GPU backend is composed from.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"
#include "gpu_sim/stream.hpp"

namespace {

using gpu_sim::Context;
using gpu_sim::DeviceProperties;
using gpu_sim::device_vector;
using gpu_sim::Dim3;
using gpu_sim::LaunchStats;

// Each test uses a private context so stats assertions are exact.
Context make_ctx() { return Context{DeviceProperties{}, 1}; }

TEST(GpuSimMemory, MallocFreeTracksUsage) {
  auto ctx = make_ctx();
  void* p = ctx.malloc_bytes(1024);
  EXPECT_EQ(ctx.stats().bytes_in_use, 1024u);
  EXPECT_EQ(ctx.stats().allocations, 1u);
  ctx.free_bytes(p);
  EXPECT_EQ(ctx.stats().bytes_in_use, 0u);
  EXPECT_EQ(ctx.stats().frees, 1u);
}

TEST(GpuSimMemory, PeakUsageIsHighWaterMark) {
  auto ctx = make_ctx();
  void* a = ctx.malloc_bytes(1000);
  void* b = ctx.malloc_bytes(500);
  ctx.free_bytes(a);
  void* c = ctx.malloc_bytes(200);
  EXPECT_EQ(ctx.stats().peak_bytes_in_use, 1500u);
  EXPECT_EQ(ctx.stats().bytes_in_use, 700u);
  ctx.free_bytes(b);
  ctx.free_bytes(c);
}

TEST(GpuSimMemory, ExhaustionThrowsDeviceBadAlloc) {
  DeviceProperties small;
  small.total_global_memory = 4096;
  Context ctx{small, 1};
  void* p = ctx.malloc_bytes(4000);
  EXPECT_THROW(ctx.malloc_bytes(200), gpu_sim::DeviceBadAlloc);
  ctx.free_bytes(p);
  EXPECT_NO_THROW(ctx.free_bytes(nullptr));  // cudaFree(nullptr) semantics
}

TEST(GpuSimMemory, ForeignFreeThrows) {
  auto ctx = make_ctx();
  int on_host = 0;
  EXPECT_THROW(ctx.free_bytes(&on_host), gpu_sim::InvalidDevicePointer);
}

TEST(GpuSimTransfer, RoundTripPreservesDataAndCounts) {
  auto ctx = make_ctx();
  std::vector<int> host(257);
  std::iota(host.begin(), host.end(), -17);
  device_vector<int> d(host, ctx);
  EXPECT_EQ(ctx.stats().h2d_transfers, 1u);
  EXPECT_EQ(ctx.stats().h2d_bytes, host.size() * sizeof(int));
  auto back = d.to_host();
  EXPECT_EQ(back, host);
  EXPECT_EQ(ctx.stats().d2h_transfers, 1u);
}

TEST(GpuSimTransfer, TransferTimeFollowsModel) {
  auto ctx = make_ctx();
  const std::size_t bytes = 1 << 20;
  std::vector<char> host(bytes, 'x');
  device_vector<char> d(host, ctx);
  const double expected =
      gpu_sim::modeled_transfer_time(ctx.properties(), bytes);
  EXPECT_DOUBLE_EQ(ctx.stats().simulated_transfer_time_s, expected);
}

TEST(GpuSimTransfer, CopyOutOfRangeThrows) {
  auto ctx = make_ctx();
  device_vector<int> d(8, ctx);
  // The pool rounds the backing allocation up to its size class, so the
  // overrun must exceed the class, not just the logical vector length.
  const std::size_t overrun =
      gpu_sim::Context::pool_class_bytes(8 * sizeof(int)) + sizeof(int);
  std::vector<int> host(overrun / sizeof(int) + 1, 1);
  EXPECT_THROW(ctx.copy_h2d(d.data(), host.data(), overrun),
               gpu_sim::InvalidDevicePointer);
}

TEST(GpuSimLaunch, OneDimensionalLaunchCoversAllIndices) {
  auto ctx = make_ctx();
  const std::size_t n = 1000;
  device_vector<std::uint32_t> d(n, ctx);
  std::uint32_t* p = d.data();
  ctx.launch_n(n, LaunchStats{n, 0, n * 4},
               [=](std::size_t i) { p[i] = static_cast<std::uint32_t>(i); });
  auto h = d.to_host();
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(h[i], i);
  EXPECT_EQ(ctx.stats().kernel_launches, 1u);
}

TEST(GpuSimLaunch, GridBlockGeometryIsCudaLike) {
  auto ctx = make_ctx();
  const std::size_t n = 512;
  device_vector<std::uint64_t> d(n, ctx);
  std::uint64_t* p = d.data();
  ctx.launch(Dim3{4}, Dim3{128}, LaunchStats{n, 0, n * 8},
             [=](const gpu_sim::ThreadId& tid) {
               p[tid.global_x()] = tid.block_idx.x * 1000 + tid.thread_idx.x;
             });
  auto h = d.to_host();
  EXPECT_EQ(h[0], 0u);
  EXPECT_EQ(h[127], 127u);
  EXPECT_EQ(h[128], 1000u);
  EXPECT_EQ(h[511], 3127u);
}

TEST(GpuSimLaunch, OversizedBlockThrows) {
  auto ctx = make_ctx();
  EXPECT_THROW(
      ctx.launch(Dim3{1}, Dim3{2048}, LaunchStats{}, [](const auto&) {}),
      gpu_sim::InvalidLaunchConfig);
  EXPECT_THROW(ctx.launch(Dim3{0}, Dim3{32}, LaunchStats{}, [](const auto&) {}),
               gpu_sim::InvalidLaunchConfig);
}

TEST(GpuSimLaunch, EmptyLaunchStillCostsOverhead) {
  auto ctx = make_ctx();
  ctx.launch_n(0, LaunchStats{}, [](std::size_t) {});
  EXPECT_EQ(ctx.stats().kernel_launches, 1u);
  EXPECT_DOUBLE_EQ(ctx.stats().simulated_kernel_time_s,
                   ctx.properties().kernel_launch_overhead_s);
}

TEST(GpuSimLaunch, CostModelChargesMaxOfComputeAndMemory) {
  auto ctx = make_ctx();
  const auto& p = ctx.properties();
  // Memory-bound kernel: 1 GiB of traffic, negligible ops.
  LaunchStats mem{1, 1ull << 30, 0};
  ctx.launch_n(1, mem, [](std::size_t) {});
  const double t = ctx.stats().simulated_kernel_time_s;
  EXPECT_NEAR(t,
              p.kernel_launch_overhead_s +
                  double(1ull << 30) / p.memory_bandwidth_bytes_per_s,
              1e-12);
}

TEST(GpuSimLaunch, MultiWorkerPoolComputesSameResult) {
  Context ctx{DeviceProperties{}, 4};
  const std::size_t n = 10007;
  device_vector<std::uint64_t> d(n, ctx);
  std::uint64_t* p = d.data();
  ctx.launch_n(n, LaunchStats{n, 0, n * 8},
               [=](std::size_t i) { p[i] = i * i; });
  auto h = d.to_host();
  for (std::size_t i = 0; i < n; i += 997) EXPECT_EQ(h[i], i * i);
}

TEST(GpuSimDeviceVector, ResizePreservesPrefix) {
  auto ctx = make_ctx();
  std::vector<int> host{1, 2, 3, 4};
  device_vector<int> d(host, ctx);
  d.resize(8);
  auto h = d.to_host();
  ASSERT_EQ(h.size(), 8u);
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[3], 4);
  EXPECT_GE(ctx.stats().d2d_copies, 1u);
}

TEST(GpuSimDeviceVector, CopyIsDeviceToDevice) {
  auto ctx = make_ctx();
  device_vector<int> a(std::vector<int>{5, 6, 7}, ctx);
  const auto before = ctx.stats();
  device_vector<int> b(a);
  const auto delta = ctx.stats() - before;
  EXPECT_EQ(delta.d2d_copies, 1u);
  EXPECT_EQ(delta.h2d_transfers, 0u);
  EXPECT_EQ(b.to_host(), (std::vector<int>{5, 6, 7}));
}

TEST(GpuSimDeviceVector, MoveTransfersOwnershipWithoutCopies) {
  auto ctx = make_ctx();
  device_vector<int> a(std::vector<int>{1, 2}, ctx);
  const auto before = ctx.stats();
  device_vector<int> b(std::move(a));
  const auto delta = ctx.stats() - before;
  EXPECT_EQ(delta.d2d_copies, 0u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(GpuSimStream, EventsMeasureSimulatedTime) {
  auto ctx = make_ctx();
  gpu_sim::Stream s(ctx);
  gpu_sim::Event start(ctx), stop(ctx);
  start.record(s);
  ctx.launch_n(1024, LaunchStats{1024, 8192, 8192}, [](std::size_t) {});
  stop.record(s);
  EXPECT_GT(elapsed_s(start, stop), 0.0);
  EXPECT_DOUBLE_EQ(elapsed_s(start, stop), ctx.simulated_time_s());
}

TEST(GpuSimStream, RecordNoStreamFollowsScopedDeviceSwitch) {
  // Regression: the no-stream record() overload used to read the clock of
  // the context the Event was *constructed* against. A default-constructed
  // Event recorded after a ScopedDevice switch must observe the clock of
  // the device the thread is bound to at record time.
  auto outer = make_ctx();
  gpu_sim::ScopedDevice bind_outer(outer);
  gpu_sim::Event ev;  // captures &outer at construction
  auto inner = make_ctx();
  {
    gpu_sim::ScopedDevice bind_inner(inner);
    inner.launch_n(64, LaunchStats{64, 0, 256}, [](std::size_t) {});
    ev.record();
  }
  EXPECT_GT(ev.time_s(), 0.0);
  EXPECT_DOUBLE_EQ(ev.time_s(), inner.simulated_time_s());
  EXPECT_DOUBLE_EQ(outer.simulated_time_s(), 0.0);
}

TEST(GpuSimStream, AsyncCopyOverlapsComputeStream) {
  auto ctx = make_ctx();
  auto side = gpu_sim::Stream::create(ctx);
  device_vector<int> d(1 << 16, ctx);
  std::vector<int> host(1 << 16, 3);
  // Kernel on stream 0, copy on the side stream: both start at makespan 0,
  // so the device-wide completion time is the max, not the sum.
  ctx.launch_n(1 << 16, LaunchStats{1 << 16, 1 << 22, 1 << 22},
               [](std::size_t) {});
  ctx.copy_h2d_async(d.data(), host.data(), host.size() * sizeof(int),
                     side.id());
  const double serial = ctx.simulated_time_s();
  const double makespan = ctx.makespan_s();
  EXPECT_LT(makespan, serial);
  EXPECT_NEAR(ctx.stats().overlap_seconds_hidden, serial - makespan, 1e-15);
}

TEST(GpuSimStream, StreamWaitJoinsTimelines) {
  auto ctx = make_ctx();
  auto side = gpu_sim::Stream::create(ctx);
  device_vector<int> d(1 << 14, ctx);
  std::vector<int> host(1 << 14, 7);
  ctx.copy_h2d_async(d.data(), host.data(), host.size() * sizeof(int),
                     side.id());
  gpu_sim::Event copied(ctx);
  copied.record(side);
  // cudaStreamWaitEvent: the compute stream may not run past the copy.
  gpu_sim::Stream compute(ctx);
  compute.wait(copied);
  EXPECT_GE(compute.clock_s(), copied.time_s());
  EXPECT_EQ(d.to_host(), host);
}

TEST(GpuSimStream, SyncCopyIsDeviceWideBarrier) {
  auto ctx = make_ctx();
  auto side = gpu_sim::Stream::create(ctx);
  device_vector<int> d(1 << 14, ctx);
  std::vector<int> host(1 << 14, 1);
  ctx.copy_h2d_async(d.data(), host.data(), host.size() * sizeof(int),
                     side.id());
  // A synchronous copy behaves like the legacy default stream: it starts
  // after ALL prior work on every stream.
  ctx.copy_h2d(d.data(), host.data(), host.size() * sizeof(int));
  EXPECT_DOUBLE_EQ(ctx.stream_clock_s(0), ctx.makespan_s());
  EXPECT_GE(ctx.stream_clock_s(0), side.clock_s());
}

TEST(GpuSimLaunch, FusedScopeElidesNonHeadOverhead) {
  auto ctx = make_ctx();
  const double overhead = ctx.properties().kernel_launch_overhead_s;
  ctx.launch_n(0, LaunchStats{}, [](std::size_t) {});
  EXPECT_DOUBLE_EQ(ctx.simulated_time_s(), overhead);
  {
    gpu_sim::FusedLaunchScope scope;
    ctx.launch_n(0, LaunchStats{}, [](std::size_t) {});  // head: full cost
    ctx.launch_n(0, LaunchStats{}, [](std::size_t) {});  // overhead elided
    ctx.launch_n(0, LaunchStats{}, [](std::size_t) {});  // overhead elided
  }
  EXPECT_DOUBLE_EQ(ctx.simulated_time_s(), 2 * overhead);
  EXPECT_EQ(ctx.stats().launches_elided, 2u);
  // Elision is a costing effect only — the launch count stays truthful.
  EXPECT_EQ(ctx.stats().kernel_launches, 4u);
}

TEST(GpuSimStream, ResetStatsKeepsLiveAllocations) {
  auto ctx = make_ctx();
  device_vector<int> d(16, ctx);
  ctx.reset_stats();
  EXPECT_EQ(ctx.stats().bytes_in_use, 16 * sizeof(int));
  EXPECT_EQ(ctx.stats().kernel_launches, 0u);
}

// --- Primitive library ------------------------------------------------------

TEST(GpuSimPrimitives, FillAndSequence) {
  auto ctx = make_ctx();
  device_vector<int> v(5, ctx);
  gpu_sim::fill(v, 9);
  EXPECT_EQ(v.to_host(), (std::vector<int>{9, 9, 9, 9, 9}));
  gpu_sim::sequence(v, 3);
  EXPECT_EQ(v.to_host(), (std::vector<int>{3, 4, 5, 6, 7}));
}

TEST(GpuSimPrimitives, TransformUnaryAndBinary) {
  auto ctx = make_ctx();
  device_vector<int> a(std::vector<int>{1, 2, 3}, ctx);
  device_vector<int> b(std::vector<int>{10, 20, 30}, ctx);
  device_vector<int> out(ctx);
  gpu_sim::transform(a, out, [](int x) { return x * x; });
  EXPECT_EQ(out.to_host(), (std::vector<int>{1, 4, 9}));
  gpu_sim::transform(a, b, out, [](int x, int y) { return x + y; });
  EXPECT_EQ(out.to_host(), (std::vector<int>{11, 22, 33}));
}

TEST(GpuSimPrimitives, ReduceAndCountIf) {
  auto ctx = make_ctx();
  std::vector<std::int64_t> host(1000);
  std::iota(host.begin(), host.end(), 1);
  device_vector<std::int64_t> v(host, ctx);
  EXPECT_EQ(gpu_sim::reduce_sum(v), 500500);
  EXPECT_EQ(gpu_sim::reduce(v, std::int64_t{0},
                            [](auto a, auto b) { return std::max(a, b); }),
            1000);
  EXPECT_EQ(gpu_sim::count_if(v, [](auto x) { return x % 2 == 0; }), 500u);
}

TEST(GpuSimPrimitives, ScansMatchStdPartialSum) {
  auto ctx = make_ctx();
  std::vector<int> host{3, 1, 4, 1, 5, 9, 2, 6};
  device_vector<int> v(host, ctx);
  device_vector<int> out(ctx);
  const int total = gpu_sim::exclusive_scan(v, out);
  EXPECT_EQ(total, 31);
  EXPECT_EQ(out.to_host(), (std::vector<int>{0, 3, 4, 8, 9, 14, 23, 25}));
  gpu_sim::inclusive_scan(v, out);
  EXPECT_EQ(out.to_host(), (std::vector<int>{3, 4, 8, 9, 14, 23, 25, 31}));
}

TEST(GpuSimPrimitives, GatherScatterInverse) {
  auto ctx = make_ctx();
  device_vector<int> data(std::vector<int>{10, 11, 12, 13}, ctx);
  device_vector<std::uint32_t> map(std::vector<std::uint32_t>{3, 0, 2, 1},
                                   ctx);
  device_vector<int> gathered(ctx);
  gpu_sim::gather(map, data, gathered);
  EXPECT_EQ(gathered.to_host(), (std::vector<int>{13, 10, 12, 11}));
  device_vector<int> scattered(4, ctx);
  gpu_sim::scatter(gathered, map, scattered);
  EXPECT_EQ(scattered.to_host(), (std::vector<int>{10, 11, 12, 13}));
}

TEST(GpuSimPrimitives, CopyFlaggedCompacts) {
  auto ctx = make_ctx();
  device_vector<int> in(std::vector<int>{1, 2, 3, 4, 5}, ctx);
  device_vector<std::uint8_t> flags(
      std::vector<std::uint8_t>{1, 0, 1, 0, 1}, ctx);
  device_vector<int> out(ctx);
  EXPECT_EQ(gpu_sim::copy_flagged(in, flags, out), 3u);
  EXPECT_EQ(out.to_host(), (std::vector<int>{1, 3, 5}));
}

TEST(GpuSimPrimitives, SortByKeyIsStable) {
  auto ctx = make_ctx();
  device_vector<std::uint32_t> keys(
      std::vector<std::uint32_t>{2, 1, 2, 0, 1}, ctx);
  device_vector<int> vals(std::vector<int>{100, 200, 300, 400, 500}, ctx);
  gpu_sim::sort_by_key(keys, vals);
  EXPECT_EQ(keys.to_host(), (std::vector<std::uint32_t>{0, 1, 1, 2, 2}));
  EXPECT_EQ(vals.to_host(), (std::vector<int>{400, 200, 500, 100, 300}));
}

TEST(GpuSimPrimitives, ReduceByKeyCollapsesRuns) {
  auto ctx = make_ctx();
  device_vector<std::uint32_t> keys(
      std::vector<std::uint32_t>{0, 0, 1, 2, 2, 2}, ctx);
  device_vector<int> vals(std::vector<int>{1, 2, 3, 4, 5, 6}, ctx);
  device_vector<std::uint32_t> ok(ctx);
  device_vector<int> ov(ctx);
  const auto runs = gpu_sim::reduce_by_key(
      keys, vals, ok, ov, [](int a, int b) { return a + b; });
  EXPECT_EQ(runs, 3u);
  EXPECT_EQ(ok.to_host(), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(ov.to_host(), (std::vector<int>{3, 3, 15}));
}

TEST(GpuSimPrimitives, LowerBoundMatchesStd) {
  auto ctx = make_ctx();
  device_vector<std::uint32_t> hay(
      std::vector<std::uint32_t>{0, 0, 2, 5, 5, 9}, ctx);
  device_vector<std::uint32_t> needles(
      std::vector<std::uint32_t>{0, 1, 5, 10}, ctx);
  device_vector<std::uint32_t> out(ctx);
  gpu_sim::lower_bound(hay, needles, out);
  EXPECT_EQ(out.to_host(), (std::vector<std::uint32_t>{0, 2, 3, 6}));
}

TEST(GpuSimPrimitives, UniqueCollapsesSortedRuns) {
  auto ctx = make_ctx();
  device_vector<int> v(std::vector<int>{1, 1, 2, 3, 3, 3, 7}, ctx);
  EXPECT_EQ(gpu_sim::unique(v), 4u);
  EXPECT_EQ(v.to_host(), (std::vector<int>{1, 2, 3, 7}));

  device_vector<int> empty_like(1, ctx);
  empty_like.clear();
  EXPECT_EQ(gpu_sim::unique(empty_like), 0u);

  device_vector<int> all_same(std::vector<int>{5, 5, 5}, ctx);
  EXPECT_EQ(gpu_sim::unique(all_same), 1u);
  EXPECT_EQ(all_same.to_host(), (std::vector<int>{5}));
}

TEST(GpuSimPrimitives, AdjacentDifferenceInvertsInclusiveScan) {
  auto ctx = make_ctx();
  device_vector<int> v(std::vector<int>{3, 1, 4, 1, 5}, ctx);
  device_vector<int> scanned(ctx), diffed(ctx);
  gpu_sim::inclusive_scan(v, scanned);
  gpu_sim::adjacent_difference(scanned, diffed);
  EXPECT_EQ(diffed.to_host(), v.to_host());
}

TEST(GpuSimPrimitives, DeterministicSimulatedTime) {
  // The whole point of the substitution: identical work yields identical
  // simulated time, run to run.
  auto run_once = [] {
    auto ctx = make_ctx();
    device_vector<int> v(4096, ctx);
    gpu_sim::fill(v, 7);
    device_vector<int> out(ctx);
    gpu_sim::exclusive_scan(v, out);
    gpu_sim::reduce_sum(out);
    return ctx.simulated_time_s();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
