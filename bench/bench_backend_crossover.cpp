/// Backend crossover — PageRank (fixed 10 iterations, d = 0.85) on the same
/// R-MAT graphs under all three registered backends, so one table shows
/// where the serving layer's size-based backend selection should flip:
///
///   BM_crossover_sequential  host wall time (the baseline convention)
///   BM_crossover_cpupar      modeled W-lane time: real chunk work measured
///                            inline, scheduled greedily over W lanes
///                            (backend_cpupar/pool.hpp Meter), reported as
///                            wall - serial_sum + modeled_sum
///   BM_crossover_gpusim      simulated device seconds (bench_common.hpp)
///
/// The CpuPar rows sweep lanes {1,2,8} at the largest scale and hold 4 lanes
/// across scales — the configuration the ISSUE acceptance criterion pins
/// (>1x over Sequential at scale 14, 4 lanes).

#include "bench_common.hpp"

#include <chrono>

#include "algorithms/pagerank.hpp"
#include "backend_cpupar/pool.hpp"

namespace {

constexpr grb::IndexType kIters = 10;
constexpr grb::IndexType kEdgeFactor = 16;

void BM_crossover_sequential(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     kEdgeFactor);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> rank(a.nrows());
  for (auto _ : state) {
    algorithms::pagerank(a, rank, 0.85, /*tol=*/0.0, kIters);
    benchmark::DoNotOptimize(rank);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
}

void BM_crossover_cpupar(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     kEdgeFactor);
  auto a = gbtl_graph::to_matrix<double, grb::CpuPar>(g);
  grb::Vector<double, grb::CpuPar> rank(a.nrows());
  const auto lanes = static_cast<std::size_t>(state.range(1));
  // Untimed warm-up, mirroring run_simulated: the measured iterations see
  // steady-state allocator and cache behaviour.
  algorithms::pagerank(a, rank, 0.85, 0.0, kIters);
  using Clock = std::chrono::steady_clock;
  for (auto _ : state) {
    grb::cpupar_backend::Meter meter(lanes);
    const auto t0 = Clock::now();
    {
      grb::cpupar_backend::ScopedMeter guard(meter);
      algorithms::pagerank(a, rank, 0.85, 0.0, kIters);
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    state.SetIterationTime(wall - meter.serial_sum() + meter.modeled_sum());
    benchmark::DoNotOptimize(rank);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
  state.counters["lanes"] = benchmark::Counter(static_cast<double>(lanes));
}

void BM_crossover_gpusim(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     kEdgeFactor);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> rank(a.nrows());
  benchx::run_simulated(
      state, [&] { algorithms::pagerank(a, rank, 0.85, 0.0, kIters); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
}

}  // namespace

BENCHMARK(BM_crossover_sequential)->DenseRange(8, 14, 1)->Iterations(1);
BENCHMARK(BM_crossover_cpupar)
    ->ArgsProduct({benchmark::CreateDenseRange(8, 14, /*step=*/1), {4}})
    ->Args({14, 1})
    ->Args({14, 2})
    ->Args({14, 8})
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_crossover_gpusim)
    ->DenseRange(8, 14, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
