/// Abl. C — primitive batching: running B traversals as one matrix-level
/// recurrence (mxm) vs B independent vector-level loops (vxm per source).
/// Both flavours for BFS and for SSSP, on both backends.
///
/// Paper-shape expectation: batching is a wash (or a small loss) on the
/// sequential backend — same work, slightly worse locality — but a clear
/// win on the GPU backend, where per-level kernel-launch overhead is paid
/// once per batch instead of once per source.

#include "bench_common.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"

namespace {

constexpr grb::IndexType kBatch = 16;

grb::IndexArrayType batch_sources(grb::IndexType n) {
  return benchx::batch_sources(n, kBatch);
}

template <typename Tag>
void bfs_looped(const grb::Matrix<double, Tag>& a,
                const grb::IndexArrayType& sources) {
  grb::Vector<grb::IndexType, Tag> levels(a.nrows());
  for (grb::IndexType s : sources) algorithms::bfs_level(a, s, levels);
}

template <typename Tag>
void bfs_batched(const grb::Matrix<double, Tag>& a,
                 const grb::IndexArrayType& sources) {
  grb::Matrix<grb::IndexType, Tag> levels(sources.size(), a.nrows());
  algorithms::batch_bfs_level(a, sources, levels);
}

void BM_bfs_seq_looped(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  const auto sources = batch_sources(a.nrows());
  for (auto _ : state) bfs_looped(a, sources);
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_bfs_seq_batched(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  const auto sources = batch_sources(a.nrows());
  for (auto _ : state) bfs_batched(a, sources);
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_bfs_gpu_looped(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  const auto sources = batch_sources(a.nrows());
  benchx::run_simulated(state, [&] { bfs_looped(a, sources); });
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_bfs_gpu_batched(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  const auto sources = batch_sources(a.nrows());
  benchx::run_simulated(state, [&] { bfs_batched(a, sources); });
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_sssp_gpu_looped(benchmark::State& state) {
  auto g = gbtl_graph::with_random_weights(
      benchx::rmat_graph(static_cast<unsigned>(state.range(0)), 16), 1.0,
      255.0, 5);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  const auto sources = batch_sources(a.nrows());
  benchx::run_simulated(state, [&] {
    grb::Vector<double, grb::GpuSim> dist(a.nrows());
    for (grb::IndexType s : sources) algorithms::sssp(a, s, dist);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_sssp_gpu_batched(benchmark::State& state) {
  auto g = gbtl_graph::with_random_weights(
      benchx::rmat_graph(static_cast<unsigned>(state.range(0)), 16), 1.0,
      255.0, 5);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  const auto sources = batch_sources(a.nrows());
  benchx::run_simulated(state, [&] {
    grb::Matrix<double, grb::GpuSim> dists(sources.size(), a.nrows());
    algorithms::batch_sssp(a, sources, dists);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
}

}  // namespace

BENCHMARK(BM_bfs_seq_looped)->DenseRange(8, 11, 1)->Iterations(1);
BENCHMARK(BM_bfs_seq_batched)->DenseRange(8, 11, 1)->Iterations(1);
BENCHMARK(BM_bfs_gpu_looped)
    ->DenseRange(8, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_bfs_gpu_batched)
    ->DenseRange(8, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_sssp_gpu_looped)
    ->DenseRange(8, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_sssp_gpu_batched)
    ->DenseRange(8, 10, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
