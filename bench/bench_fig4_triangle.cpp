/// Fig. 4 — triangle counting formulation ablation per backend:
/// masked (Sandia) vs unmasked-then-filter vs Burkhardt. This is the
/// headline masked-mxm experiment (Abl. B): the masked formulation prunes
/// the SpGEMM on both backends, and the gap widens with scale.

#include "bench_common.hpp"

#include "algorithms/triangle_count.hpp"
#include "sparse/bitmap.hpp"

namespace {

template <typename Tag>
auto graph_at(unsigned scale) {
  return gbtl_graph::to_matrix<double, Tag>(benchx::rmat_graph_sym(scale, 8));
}

void BM_tc_seq_masked(benchmark::State& state) {
  auto a = graph_at<grb::Sequential>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  for (auto _ : state) {
    tri = algorithms::triangle_count_masked(a);
    benchmark::DoNotOptimize(tri);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_seq_unmasked(benchmark::State& state) {
  auto a = graph_at<grb::Sequential>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  for (auto _ : state) {
    tri = algorithms::triangle_count_unmasked(a);
    benchmark::DoNotOptimize(tri);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_seq_burkhardt(benchmark::State& state) {
  auto a = graph_at<grb::Sequential>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  for (auto _ : state) {
    tri = algorithms::triangle_count_burkhardt(a);
    benchmark::DoNotOptimize(tri);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_gpu_masked(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  benchx::run_simulated(state,
                        [&] { tri = algorithms::triangle_count_masked(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_gpu_unmasked(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  benchx::run_simulated(
      state, [&] { tri = algorithms::triangle_count_unmasked(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_gpu_burkhardt(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  benchx::run_simulated(
      state, [&] { tri = algorithms::triangle_count_burkhardt(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

/// Word-format row: the masked Sandia mxm once through the SpGEMM engines
/// (Bit off) and once forced onto the AND-popcount word path. The counts
/// must agree exactly or the row is voided. Unlike the BFS rows, the bit
/// views here live on L and transpose(L) — per-call temporaries — so the
/// forced pass pays its view builds inside the timed region; bytes_ratio
/// therefore reports the honest all-in cost.
void BM_tc_gpu_bit_vs_csr(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  auto& dev = gpu_sim::device();
  std::uint64_t tri_csr = 0, tri = 0;
  std::uint64_t csr_bytes = 0;
  {
    sparse::BitModeGuard off(sparse::BitMode::Off);
    tri_csr = algorithms::triangle_count_masked(a);  // warm-up
    const auto before = dev.stats();
    tri_csr = algorithms::triangle_count_masked(a);
    const auto d = dev.stats() - before;
    csr_bytes = d.kernel_bytes_read + d.kernel_bytes_written;
  }
  gpu_sim::DeviceStats delta;
  {
    sparse::BitModeGuard force(sparse::BitMode::Force);
    delta = benchx::run_simulated(
        state, [&] { tri = algorithms::triangle_count_masked(a); });
  }
  if (tri != tri_csr) {
    state.SkipWithError("bit triangle count diverged from CSR");
    return;
  }
  const std::uint64_t bit_bytes =
      delta.kernel_bytes_read + delta.kernel_bytes_written;
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
  state.counters["csr_bytes"] =
      benchmark::Counter(static_cast<double>(csr_bytes));
  state.counters["bit_bytes"] =
      benchmark::Counter(static_cast<double>(bit_bytes));
  state.counters["bytes_ratio"] = benchmark::Counter(
      bit_bytes > 0 ? static_cast<double>(csr_bytes) /
                          static_cast<double>(bit_bytes)
                    : 0.0);
  state.counters["bit_words_touched"] =
      benchmark::Counter(static_cast<double>(delta.bit_words_touched));
}

/// Selector's own call on the same workload: `bit_selections` records
/// whether Auto judged the edgefactor-8 operands dense enough (at these
/// scales L's density sits near the 1/128 floor, so refusals are expected
/// and correct — the row documents the boundary rather than forcing it).
void BM_tc_gpu_bit_auto(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  sparse::BitModeGuard mode(sparse::BitMode::Auto);
  const auto delta = benchx::run_simulated(
      state, [&] { tri = algorithms::triangle_count_masked(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
  state.counters["bit_selections"] =
      benchmark::Counter(static_cast<double>(delta.bit_selections));
  state.counters["bit_words_touched"] =
      benchmark::Counter(static_cast<double>(delta.bit_words_touched));
}

}  // namespace

BENCHMARK(BM_tc_seq_masked)->DenseRange(7, 10, 1)->Iterations(1);
BENCHMARK(BM_tc_seq_unmasked)->DenseRange(7, 10, 1)->Iterations(1);
BENCHMARK(BM_tc_seq_burkhardt)->DenseRange(7, 10, 1)->Iterations(1);
BENCHMARK(BM_tc_gpu_masked)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_tc_gpu_unmasked)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_tc_gpu_burkhardt)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_tc_gpu_bit_vs_csr)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_tc_gpu_bit_auto)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
