/// Fig. 4 — triangle counting formulation ablation per backend:
/// masked (Sandia) vs unmasked-then-filter vs Burkhardt. This is the
/// headline masked-mxm experiment (Abl. B): the masked formulation prunes
/// the SpGEMM on both backends, and the gap widens with scale.

#include "bench_common.hpp"

#include "algorithms/triangle_count.hpp"

namespace {

template <typename Tag>
auto graph_at(unsigned scale) {
  return gbtl_graph::to_matrix<double, Tag>(benchx::rmat_graph_sym(scale, 8));
}

void BM_tc_seq_masked(benchmark::State& state) {
  auto a = graph_at<grb::Sequential>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  for (auto _ : state) {
    tri = algorithms::triangle_count_masked(a);
    benchmark::DoNotOptimize(tri);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_seq_unmasked(benchmark::State& state) {
  auto a = graph_at<grb::Sequential>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  for (auto _ : state) {
    tri = algorithms::triangle_count_unmasked(a);
    benchmark::DoNotOptimize(tri);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_seq_burkhardt(benchmark::State& state) {
  auto a = graph_at<grb::Sequential>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  for (auto _ : state) {
    tri = algorithms::triangle_count_burkhardt(a);
    benchmark::DoNotOptimize(tri);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_gpu_masked(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  benchx::run_simulated(state,
                        [&] { tri = algorithms::triangle_count_masked(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_gpu_unmasked(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  benchx::run_simulated(
      state, [&] { tri = algorithms::triangle_count_unmasked(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

void BM_tc_gpu_burkhardt(benchmark::State& state) {
  auto a = graph_at<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  std::uint64_t tri = 0;
  benchx::run_simulated(
      state, [&] { tri = algorithms::triangle_count_burkhardt(a); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["triangles"] = benchmark::Counter(static_cast<double>(tri));
}

}  // namespace

BENCHMARK(BM_tc_seq_masked)->DenseRange(7, 10, 1)->Iterations(1);
BENCHMARK(BM_tc_seq_unmasked)->DenseRange(7, 10, 1)->Iterations(1);
BENCHMARK(BM_tc_seq_burkhardt)->DenseRange(7, 10, 1)->Iterations(1);
BENCHMARK(BM_tc_gpu_masked)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_tc_gpu_unmasked)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_tc_gpu_burkhardt)
    ->DenseRange(7, 10, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
