/// Table 1 companion — per-primitive microbenchmarks: every GraphBLAS
/// operation timed on one fixed R-MAT graph (scale 12, ef 16) for both
/// backends. The workshop-paper style "primitive performance" table that
/// grounds the algorithm-level results.

#include "bench_common.hpp"

namespace {

constexpr unsigned kScale = 12;

template <typename Tag>
struct Fixture {
  grb::Matrix<double, Tag> a;
  grb::Vector<double, Tag> u;

  Fixture()
      : a(gbtl_graph::to_matrix<double, Tag>(benchx::rmat_graph(kScale, 16))),
        u(std::vector<double>(a.ncols(), 1.0), 0.0) {}
};

template <typename Tag>
Fixture<Tag>& fixture() {
  static Fixture<Tag> f;
  return f;
}

// Each case is a callable on the fixture; registered twice (seq wall time,
// gpu simulated time).
template <typename Tag, typename Fn>
void run_case(benchmark::State& state, Fn&& fn) {
  auto& f = fixture<Tag>();
  if constexpr (std::is_same_v<Tag, grb::GpuSim>) {
    benchx::run_simulated(state, [&] { fn(f); });
  } else {
    for (auto _ : state) fn(f);
  }
  benchx::annotate(state, f.a.nrows(), f.a.nvals());
}

// Variadic so commas inside the body (template argument lists) survive
// preprocessing.
#define GBTL_OP_BENCH(name, ...)                                        \
  void BM_##name##_seq(benchmark::State& state) {                       \
    run_case<grb::Sequential>(state, [](auto& f) { __VA_ARGS__ });      \
  }                                                                      \
  void BM_##name##_gpu(benchmark::State& state) {                       \
    run_case<grb::GpuSim>(state, [](auto& f) { __VA_ARGS__ });          \
  }                                                                      \
  BENCHMARK(BM_##name##_seq)->Iterations(2);                             \
  BENCHMARK(BM_##name##_gpu)->Iterations(2)->UseManualTime();

using grb::NoAccumulate;
using grb::NoMask;

GBTL_OP_BENCH(op_mxv, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Vector<double, Tag> w(f.a.nrows());
  grb::mxv(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           f.a, f.u, grb::Replace);
  benchmark::DoNotOptimize(w);
})

GBTL_OP_BENCH(op_vxm, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Vector<double, Tag> w(f.a.ncols());
  grb::vxm(w, NoMask{}, NoAccumulate{}, grb::ArithmeticSemiring<double>{},
           f.u, f.a, grb::Replace);
  benchmark::DoNotOptimize(w);
})

GBTL_OP_BENCH(op_ewise_add_mat, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Matrix<double, Tag> c(f.a.nrows(), f.a.ncols());
  grb::eWiseAdd(c, NoMask{}, NoAccumulate{}, grb::Plus<double>{}, f.a, f.a);
  benchmark::DoNotOptimize(c);
})

GBTL_OP_BENCH(op_ewise_mult_mat, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Matrix<double, Tag> c(f.a.nrows(), f.a.ncols());
  grb::eWiseMult(c, NoMask{}, NoAccumulate{}, grb::Times<double>{}, f.a,
                 f.a);
  benchmark::DoNotOptimize(c);
})

GBTL_OP_BENCH(op_apply_mat, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Matrix<double, Tag> c(f.a.nrows(), f.a.ncols());
  grb::apply(c, NoMask{}, NoAccumulate{}, grb::AdditiveInverse<double>{},
             f.a);
  benchmark::DoNotOptimize(c);
})

GBTL_OP_BENCH(op_reduce_rows, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Vector<double, Tag> w(f.a.nrows());
  grb::reduce(w, NoMask{}, NoAccumulate{}, grb::PlusMonoid<double>{}, f.a);
  benchmark::DoNotOptimize(w);
})

GBTL_OP_BENCH(op_reduce_scalar, {
  double s = 0;
  grb::reduce(s, NoAccumulate{}, grb::PlusMonoid<double>{}, f.a);
  benchmark::DoNotOptimize(s);
})

GBTL_OP_BENCH(op_transpose, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Matrix<double, Tag> c(f.a.ncols(), f.a.nrows());
  grb::transpose(c, NoMask{}, NoAccumulate{}, f.a);
  benchmark::DoNotOptimize(c);
})

GBTL_OP_BENCH(op_extract_subgraph, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  const auto half = grb::all_indices(f.a.nrows() / 2);
  grb::Matrix<double, Tag> c(half.size(), half.size());
  grb::extract(c, NoMask{}, NoAccumulate{}, f.a, half, half);
  benchmark::DoNotOptimize(c);
})

GBTL_OP_BENCH(op_select_lower, {
  using Tag = typename std::decay_t<decltype(f.a)>::BackendTag;
  grb::Matrix<double, Tag> c(f.a.nrows(), f.a.ncols());
  grb::select(c, NoMask{}, NoAccumulate{},
              [](grb::IndexType i, grb::IndexType j, double) { return j < i; },
              f.a, grb::Replace);
  benchmark::DoNotOptimize(c);
})

}  // namespace

BENCHMARK_MAIN();
