/// Fig. 5 — Luby maximal independent set vs graph size per backend, on
/// Erdős–Rényi graphs with average degree 16 (uniform degrees keep round
/// counts comparable across sizes).

#include "bench_common.hpp"

#include "algorithms/mis.hpp"

namespace {

const gbtl_graph::EdgeList& er_graph(unsigned log_n) {
  static std::map<unsigned, gbtl_graph::EdgeList> cache;
  auto it = cache.find(log_n);
  if (it == cache.end()) {
    const gbtl_graph::Index n = gbtl_graph::Index{1} << log_n;
    auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
        gbtl_graph::erdos_renyi(n, 8 * n, 1000 + log_n)));
    it = cache.emplace(log_n, std::move(g)).first;
  }
  return it->second;
}

void BM_mis_sequential(benchmark::State& state) {
  const auto& g = er_graph(static_cast<unsigned>(state.range(0)));
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<bool, grb::Sequential> iset(a.nrows());
  grb::IndexType rounds = 0;
  for (auto _ : state) {
    rounds = algorithms::mis(a, iset, 42);
    benchmark::DoNotOptimize(iset);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["rounds"] = benchmark::Counter(static_cast<double>(rounds));
  state.counters["set_size"] =
      benchmark::Counter(static_cast<double>(iset.nvals()));
}

void BM_mis_gpu(benchmark::State& state) {
  const auto& g = er_graph(static_cast<unsigned>(state.range(0)));
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<bool, grb::GpuSim> iset(a.nrows());
  grb::IndexType rounds = 0;
  benchx::run_simulated(state, [&] { rounds = algorithms::mis(a, iset, 42); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["rounds"] = benchmark::Counter(static_cast<double>(rounds));
  state.counters["set_size"] =
      benchmark::Counter(static_cast<double>(iset.nvals()));
}

}  // namespace

BENCHMARK(BM_mis_sequential)->DenseRange(10, 14, 1)->Iterations(1);
BENCHMARK(BM_mis_gpu)->DenseRange(10, 14, 1)->Iterations(1)->UseManualTime();

BENCHMARK_MAIN();
