/// Table 2 — BFS traversal time and TEPS per backend on R-MAT graphs
/// (Graph500-style rows: scale, vertices, edges, time, TEPS). The GPU rows
/// run twice: direction pinned to push (the pre-direction-engine baseline)
/// and auto (Beamer-style push/pull switching); `push`/`pull` counters show
/// which direction each level took, `early_exit_rows` how many pull rows
/// quit at their first frontier hit.

#include "bench_common.hpp"

#include "algorithms/bfs.hpp"
#include "sparse/spmv_select.hpp"

namespace {

void BM_bfs_sequential(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<grb::IndexType, grb::Sequential> levels(a.nrows());
  for (auto _ : state) {
    algorithms::bfs_level(a, 0, levels);
    benchmark::DoNotOptimize(levels);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
}

void bfs_gpu_directed(benchmark::State& state, sparse::DirectionMode mode) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  // Graph500-style kernel 1: graph construction, including any derived
  // search structures, is untimed. Direction-optimizing traversal takes
  // both edge directions as input (Beamer's in+out adjacency), so the
  // transpose (CSC) view is materialized here; without it Auto's cost
  // model charges the build to the first pull level and stays push.
  (void)a.impl().col_offsets();
  grb::Vector<grb::IndexType, grb::GpuSim> levels(a.nrows());
  sparse::DirectionModeGuard guard(mode);
  const auto delta = benchx::run_simulated(
      state, [&] { algorithms::bfs_level(a, 0, levels); });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
  using gpu_sim::TraversalDirection;
  state.counters["push"] = benchmark::Counter(static_cast<double>(
      delta.direction_selections[static_cast<std::size_t>(
          TraversalDirection::kPush)]));
  state.counters["pull"] = benchmark::Counter(static_cast<double>(
      delta.direction_selections[static_cast<std::size_t>(
          TraversalDirection::kPull)]));
  state.counters["early_exit_rows"] =
      benchmark::Counter(static_cast<double>(delta.pull_early_exit_rows));
}

void BM_bfs_gpu_push_only(benchmark::State& state) {
  bfs_gpu_directed(state, sparse::DirectionMode::ForcePush);
}

void BM_bfs_gpu_auto(benchmark::State& state) {
  bfs_gpu_directed(state, sparse::DirectionMode::Auto);
}

}  // namespace

BENCHMARK(BM_bfs_sequential)->DenseRange(8, 14, 2)->Iterations(1);
BENCHMARK(BM_bfs_gpu_push_only)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_bfs_gpu_auto)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
