/// Table 2 — BFS traversal time and TEPS per backend on R-MAT graphs
/// (Graph500-style rows: scale, vertices, edges, time, TEPS).

#include "bench_common.hpp"

#include "algorithms/bfs.hpp"

namespace {

void BM_bfs_sequential(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<grb::IndexType, grb::Sequential> levels(a.nrows());
  for (auto _ : state) {
    algorithms::bfs_level(a, 0, levels);
    benchmark::DoNotOptimize(levels);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
}

void BM_bfs_gpu(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<grb::IndexType, grb::GpuSim> levels(a.nrows());
  benchx::run_simulated(state, [&] { algorithms::bfs_level(a, 0, levels); });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
}

}  // namespace

BENCHMARK(BM_bfs_sequential)->DenseRange(8, 14, 2)->Iterations(1);
BENCHMARK(BM_bfs_gpu)->DenseRange(8, 14, 2)->Iterations(1)->UseManualTime();

BENCHMARK_MAIN();
