/// Table 2 — BFS traversal time and TEPS per backend on R-MAT graphs
/// (Graph500-style rows: scale, vertices, edges, time, TEPS). The GPU rows
/// run twice: direction pinned to push (the pre-direction-engine baseline)
/// and auto (Beamer-style push/pull switching); `push`/`pull` counters show
/// which direction each level took, `early_exit_rows` how many pull rows
/// quit at their first frontier hit.

#include "bench_common.hpp"

#include "algorithms/bfs.hpp"
#include "sparse/bitmap.hpp"
#include "sparse/spmv_select.hpp"

namespace {

void BM_bfs_sequential(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<grb::IndexType, grb::Sequential> levels(a.nrows());
  for (auto _ : state) {
    algorithms::bfs_level(a, 0, levels);
    benchmark::DoNotOptimize(levels);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
}

void bfs_gpu_directed(benchmark::State& state, sparse::DirectionMode mode) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  // Graph500-style kernel 1: graph construction, including any derived
  // search structures, is untimed. Direction-optimizing traversal takes
  // both edge directions as input (Beamer's in+out adjacency), so the
  // transpose (CSC) view is materialized here; without it Auto's cost
  // model charges the build to the first pull level and stays push.
  (void)a.impl().col_offsets();
  grb::Vector<grb::IndexType, grb::GpuSim> levels(a.nrows());
  sparse::DirectionModeGuard guard(mode);
  const auto delta = benchx::run_simulated(
      state, [&] { algorithms::bfs_level(a, 0, levels); });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
  using gpu_sim::TraversalDirection;
  state.counters["push"] = benchmark::Counter(static_cast<double>(
      delta.direction_selections[static_cast<std::size_t>(
          TraversalDirection::kPush)]));
  state.counters["pull"] = benchmark::Counter(static_cast<double>(
      delta.direction_selections[static_cast<std::size_t>(
          TraversalDirection::kPull)]));
  state.counters["early_exit_rows"] =
      benchmark::Counter(static_cast<double>(delta.pull_early_exit_rows));
}

void BM_bfs_gpu_push_only(benchmark::State& state) {
  bfs_gpu_directed(state, sparse::DirectionMode::ForcePush);
}

void BM_bfs_gpu_auto(benchmark::State& state) {
  bfs_gpu_directed(state, sparse::DirectionMode::Auto);
}

/// Bit-format traffic row (Abl. on docs/spmv_adaptive.md's third format):
/// dense R-MAT (edgefactor 256, density >= 1/64 — comfortably above the
/// 1/128 word-payoff floor) traversed once with the Bit engine off
/// (push-pinned CSR, the word-format's natural comparator) and once forced
/// onto the word bitmap. Reports both modeled byte totals and their ratio;
/// the levels must match exactly or the row is voided. Bit views are
/// materialized untimed alongside the CSC build — Graph500 kernel-1 rules,
/// same as the direction rows above.
void BM_bfs_gpu_bit_traffic(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 256);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  (void)a.impl().col_offsets();
  (void)a.impl().bit_col_view();
  auto& dev = gpu_sim::device();

  grb::Vector<grb::IndexType, grb::GpuSim> levels_csr(a.nrows());
  std::uint64_t csr_bytes = 0;
  {
    sparse::BitModeGuard off(sparse::BitMode::Off);
    sparse::DirectionModeGuard push(sparse::DirectionMode::ForcePush);
    algorithms::bfs_level(a, 0, levels_csr);  // warm-up, mirrors run_simulated
    const auto before = dev.stats();
    algorithms::bfs_level(a, 0, levels_csr);
    const auto d = dev.stats() - before;
    csr_bytes = d.kernel_bytes_read + d.kernel_bytes_written;
  }

  grb::Vector<grb::IndexType, grb::GpuSim> levels(a.nrows());
  gpu_sim::DeviceStats delta;
  {
    sparse::BitModeGuard force(sparse::BitMode::Force);
    delta = benchx::run_simulated(
        state, [&] { algorithms::bfs_level(a, 0, levels); });
  }

  grb::IndexArrayType ic, ib;
  std::vector<grb::IndexType> vc, vb;
  levels_csr.extractTuples(ic, vc);
  levels.extractTuples(ib, vb);
  if (ic != ib || vc != vb) {
    state.SkipWithError("bit BFS diverged from CSR BFS");
    return;
  }

  const std::uint64_t bit_bytes =
      delta.kernel_bytes_read + delta.kernel_bytes_written;
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["csr_bytes"] =
      benchmark::Counter(static_cast<double>(csr_bytes));
  state.counters["bit_bytes"] =
      benchmark::Counter(static_cast<double>(bit_bytes));
  state.counters["bytes_ratio"] = benchmark::Counter(
      bit_bytes > 0 ? static_cast<double>(csr_bytes) /
                          static_cast<double>(bit_bytes)
                    : 0.0);
  state.counters["bit_words_touched"] =
      benchmark::Counter(static_cast<double>(delta.bit_words_touched));
}

/// Same dense workload with the selector left in Auto: the cost model is
/// free to take or refuse the word path per level. `bit_selections` shows
/// how many launches it ratified (dense mid-traversal frontiers should
/// clear the bar; the thin first/last levels should not).
void BM_bfs_gpu_bit_auto(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 256);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  (void)a.impl().col_offsets();
  (void)a.impl().bit_col_view();
  grb::Vector<grb::IndexType, grb::GpuSim> levels(a.nrows());
  sparse::BitModeGuard mode(sparse::BitMode::Auto);
  const auto delta = benchx::run_simulated(
      state, [&] { algorithms::bfs_level(a, 0, levels); });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["reached"] =
      benchmark::Counter(static_cast<double>(levels.nvals()));
  state.counters["bit_selections"] =
      benchmark::Counter(static_cast<double>(delta.bit_selections));
  state.counters["bit_words_touched"] =
      benchmark::Counter(static_cast<double>(delta.bit_words_touched));
}

}  // namespace

BENCHMARK(BM_bfs_sequential)->DenseRange(8, 14, 2)->Iterations(1);
BENCHMARK(BM_bfs_gpu_push_only)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_bfs_gpu_auto)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();
// Dense edgefactor-256 graphs get big fast; scales 12/14 are where the
// word-format payoff is measured (the acceptance bar sits at 14).
BENCHMARK(BM_bfs_gpu_bit_traffic)
    ->DenseRange(12, 14, 2)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_bfs_gpu_bit_auto)
    ->DenseRange(12, 14, 2)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
