/// Abl. A — sparse format comparison: device-modeled SpMV over COO, CSR,
/// CSC and ELL, on (a) a regular banded matrix (5-point grid stencil) where
/// ELL shines, and (b) a power-law R-MAT graph where ELL's padding
/// collapses it — the evidence behind the CUDA backend's CSR choice.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "sparse/formats.hpp"
#include "sparse/spmv_device.hpp"
#include "sparse/spmv_select.hpp"

namespace {

enum class Family { Grid, Rmat };

sparse::Csr<double> make_matrix(Family family, unsigned scale) {
  gbtl_graph::EdgeList g;
  if (family == Family::Grid) {
    const auto side =
        static_cast<gbtl_graph::Index>(1u << (scale / 2));
    g = gbtl_graph::grid2d(side, side);
  } else {
    g = benchx::rmat_graph(scale, 16);
  }
  sparse::Coo<double> coo;
  coo.nrows = coo.ncols = g.num_vertices;
  coo.row.assign(g.src.begin(), g.src.end());
  coo.col.assign(g.dst.begin(), g.dst.end());
  coo.val.assign(g.num_edges(), 1.0);
  return sparse::coo_to_csr(sparse::canonicalize(std::move(coo)));
}

template <typename Format>
void run_spmv(benchmark::State& state, const Format& m, std::size_t n,
              std::size_t nnz) {
  const std::vector<double> x(n, 1.0);
  gpu_sim::Context ctx;  // private context: stats belong to this bench only
  for (auto _ : state) {
    const double t0 = ctx.simulated_time_s();
    auto y = sparse::spmv_device(m, x, ctx);
    benchmark::DoNotOptimize(y);
    state.SetIterationTime(ctx.simulated_time_s() - t0);
  }
  state.counters["vertices"] = benchmark::Counter(static_cast<double>(n));
  state.counters["nnz"] = benchmark::Counter(static_cast<double>(nnz));
}

void BM_spmv_csr(benchmark::State& state) {
  auto csr = make_matrix(static_cast<Family>(state.range(1)),
                         static_cast<unsigned>(state.range(0)));
  run_spmv(state, csr, csr.ncols, csr.nnz());
}

void BM_spmv_coo(benchmark::State& state) {
  auto csr = make_matrix(static_cast<Family>(state.range(1)),
                         static_cast<unsigned>(state.range(0)));
  auto coo = sparse::csr_to_coo(csr);
  run_spmv(state, coo, csr.ncols, csr.nnz());
}

void BM_spmv_csc(benchmark::State& state) {
  auto csr = make_matrix(static_cast<Family>(state.range(1)),
                         static_cast<unsigned>(state.range(0)));
  auto csc = sparse::csr_to_csc(csr);
  run_spmv(state, csc, csr.ncols, csr.nnz());
}

void BM_spmv_hyb(benchmark::State& state) {
  auto csr = make_matrix(static_cast<Family>(state.range(1)),
                         static_cast<unsigned>(state.range(0)));
  auto hyb = sparse::csr_to_hyb(csr);
  run_spmv(state, hyb, csr.ncols, csr.nnz());
  state.counters["ell_width"] =
      benchmark::Counter(static_cast<double>(hyb.ell.width));
  state.counters["tail_nnz"] =
      benchmark::Counter(static_cast<double>(hyb.tail.nnz()));
}

void BM_spmv_ell(benchmark::State& state) {
  auto csr = make_matrix(static_cast<Family>(state.range(1)),
                         static_cast<unsigned>(state.range(0)));
  auto ell = sparse::csr_to_ell(csr);
  run_spmv(state, ell, csr.ncols, csr.nnz());
  state.counters["fill_ratio"] = benchmark::Counter(ell.fill_ratio());
}

/// The input-adaptive engine: inspector + selection run once in setup (the
/// cuSPARSE analysis convention); iterations time the steady-state call of
/// whichever kernel it picked. Counters expose the choice so the table shows
/// *why* each family lands where it does.
void BM_spmv_adaptive(benchmark::State& state) {
  auto csr = make_matrix(static_cast<Family>(state.range(1)),
                         static_cast<unsigned>(state.range(0)));
  const auto n = csr.ncols;
  const auto nnz = csr.nnz();
  const std::vector<double> x(n, 1.0);
  gpu_sim::Context ctx;
  sparse::AdaptiveSpmv<double> engine(std::move(csr), ctx);
  for (auto _ : state) {
    const double t0 = ctx.simulated_time_s();
    auto y = engine(x);
    benchmark::DoNotOptimize(y);
    state.SetIterationTime(ctx.simulated_time_s() - t0);
  }
  state.counters["vertices"] = benchmark::Counter(static_cast<double>(n));
  state.counters["nnz"] = benchmark::Counter(static_cast<double>(nnz));
  state.counters["kernel"] =
      benchmark::Counter(static_cast<double>(engine.kernel()));
  state.counters["bytes_saved"] = benchmark::Counter(static_cast<double>(
      ctx.stats().spmv_bytes_saved_vs_baseline / state.iterations()));
  state.SetLabel(gpu_sim::to_string(engine.kernel()));
}

void add_args(benchmark::internal::Benchmark* b) {
  for (int scale = 10; scale <= 16; scale += 2) {
    b->Args({scale, static_cast<int>(Family::Grid)});
    b->Args({scale, static_cast<int>(Family::Rmat)});
  }
  b->Iterations(2)->UseManualTime();
}

}  // namespace

void add_ell_args(benchmark::internal::Benchmark* b) {
  // ELL on power-law degree distributions is capped at scale 12: beyond
  // that the padded slab (fill ratio 175x at scale 14, 435x at scale 16)
  // no longer fits a sane memory/time budget — which is exactly the
  // ablation's conclusion. Regular grids run at every scale.
  for (int scale = 10; scale <= 16; scale += 2)
    b->Args({scale, static_cast<int>(Family::Grid)});
  b->Args({10, static_cast<int>(Family::Rmat)});
  b->Args({12, static_cast<int>(Family::Rmat)});
  b->Iterations(2)->UseManualTime();
}

BENCHMARK(BM_spmv_csr)->Apply(add_args);
BENCHMARK(BM_spmv_coo)->Apply(add_args);
BENCHMARK(BM_spmv_csc)->Apply(add_args);
BENCHMARK(BM_spmv_hyb)->Apply(add_args);
BENCHMARK(BM_spmv_ell)->Apply(add_ell_args);
BENCHMARK(BM_spmv_adaptive)->Apply(add_args);

BENCHMARK_MAIN();
