/// Fig. 1 — mxv (SpMV over plus-times) vs graph scale, sequential backend
/// (wall time) against GPU backend (simulated device time, data resident).
///
/// Paper-shape expectation: the GPU loses at small scales (launch overhead
/// dominates the handful of microseconds of useful work) and wins by one to
/// two orders of magnitude once the matrix no longer fits in the picture of
/// a single CPU core's cache-friendly sweep.

#include "bench_common.hpp"

namespace {

void BM_mxv_sequential(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> u(
      std::vector<double>(a.ncols(), 1.0), 0.0);
  grb::Vector<double, grb::Sequential> w(a.nrows());
  for (auto _ : state) {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
    benchmark::DoNotOptimize(w);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
}

void BM_mxv_gpu(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols(), 1.0),
                                     0.0);
  grb::Vector<double, grb::GpuSim> w(a.nrows());
  benchx::run_simulated(state, [&] {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
}

}  // namespace

BENCHMARK(BM_mxv_sequential)->DenseRange(8, 16, 2)->Iterations(3);
BENCHMARK(BM_mxv_gpu)->DenseRange(8, 16, 2)->Iterations(3)->UseManualTime();

BENCHMARK_MAIN();
