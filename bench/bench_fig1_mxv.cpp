/// Fig. 1 — mxv (SpMV over plus-times) vs graph scale, sequential backend
/// (wall time) against GPU backend (simulated device time, data resident).
///
/// Paper-shape expectation: the GPU loses at small scales (launch overhead
/// dominates the handful of microseconds of useful work) and wins by one to
/// two orders of magnitude once the matrix no longer fits in the picture of
/// a single CPU core's cache-friendly sweep.
///
/// The second table (BM_mxv_gpu_baseline / BM_mxv_gpu_adaptive) isolates the
/// adaptive SpMV engine: the same mxv with kernel selection pinned to the
/// row-parallel baseline vs. free to choose, on a regular banded family
/// (2-D grid stencil) and a power-law family (R-MAT). Adaptive must never
/// lose to the baseline: it *is* the baseline on regular shapes and beats it
/// on skewed ones by dodging warp-granular padding.

#include "bench_common.hpp"
#include "sparse/fusion_plan.hpp"
#include "sparse/spmv_select.hpp"

namespace {

enum class Family { Banded, Rmat };

const gbtl_graph::EdgeList& family_graph(Family family, unsigned scale) {
  if (family == Family::Banded) {
    static std::map<unsigned, gbtl_graph::EdgeList> cache;
    auto it = cache.find(scale);
    if (it == cache.end()) {
      const auto side = static_cast<gbtl_graph::Index>(1u << (scale / 2));
      it = cache.emplace(scale, gbtl_graph::grid2d(side, side)).first;
    }
    return it->second;
  }
  return benchx::rmat_graph(scale, 16);
}

void run_mxv_gpu_mode(benchmark::State& state, sparse::SpmvMode mode) {
  const auto family = static_cast<Family>(state.range(1));
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = family_graph(family, scale);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols(), 1.0),
                                     0.0);
  grb::Vector<double, grb::GpuSim> w(a.nrows());
  sparse::SpmvModeGuard guard(mode);
  const auto delta = benchx::run_simulated(state, [&] {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["lb_selected"] = benchmark::Counter(
      static_cast<double>(delta.kernel_selections[static_cast<std::size_t>(
          gpu_sim::SpmvKernelKind::kCsrLoadBalanced)]));
  state.counters["bytes_saved"] = benchmark::Counter(
      static_cast<double>(delta.spmv_bytes_saved_vs_baseline));
}

void BM_mxv_gpu_baseline(benchmark::State& state) {
  run_mxv_gpu_mode(state, sparse::SpmvMode::ForceCsrScalar);
}

void BM_mxv_gpu_adaptive(benchmark::State& state) {
  run_mxv_gpu_mode(state, sparse::SpmvMode::Adaptive);
}

void add_family_args(benchmark::internal::Benchmark* b) {
  for (int scale = 10; scale <= 16; scale += 2) {
    b->Args({scale, static_cast<int>(Family::Banded)});
    b->Args({scale, static_cast<int>(Family::Rmat)});
  }
  b->Iterations(3)->UseManualTime();
}

void BM_mxv_sequential(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> u(
      std::vector<double>(a.ncols(), 1.0), 0.0);
  grb::Vector<double, grb::Sequential> w(a.nrows());
  for (auto _ : state) {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
    benchmark::DoNotOptimize(w);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
}

void BM_mxv_gpu(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols(), 1.0),
                                     0.0);
  grb::Vector<double, grb::GpuSim> w(a.nrows());
  benchx::run_simulated(state, [&] {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
}

// --- Fused-chain rows -------------------------------------------------------
// The third table measures the iterative-refinement step every solver inner
// loop looks like — w = (A·u)·0.5 + u as mxv → apply → eWiseAdd — with the
// lazy op-DAG pinned off (each op pays its own launch) vs Auto (the chain
// replays as one composite launch). At small scales launch overhead is most
// of the chain, so fusion moves the CPU/GPU crossover left by roughly the
// two elided overheads per step.

void run_mxv_chain_gpu(benchmark::State& state, sparse::FusionMode fmode) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols(), 1.0),
                                     0.0);
  grb::Vector<double, grb::GpuSim> w(a.nrows());
  sparse::FusionGuard guard(fmode);
  const auto delta = benchx::run_simulated(state, [&] {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
    grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
               [](double x) { return x * 0.5; }, w);
    grb::eWiseAdd(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Plus<double>{},
                  w, u, grb::Replace);
    grb::wait();
  });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["elided"] =
      benchmark::Counter(static_cast<double>(delta.launches_elided));
}

void BM_mxv_chain_gpu_eager(benchmark::State& state) {
  run_mxv_chain_gpu(state, sparse::FusionMode::Off);
}

void BM_mxv_chain_gpu_fused(benchmark::State& state) {
  run_mxv_chain_gpu(state, sparse::FusionMode::Auto);
}

void BM_mxv_chain_sequential(benchmark::State& state) {
  const unsigned scale = static_cast<unsigned>(state.range(0));
  const auto& g = benchx::rmat_graph(scale, 16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> u(
      std::vector<double>(a.ncols(), 1.0), 0.0);
  grb::Vector<double, grb::Sequential> w(a.nrows());
  for (auto _ : state) {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
    grb::apply(w, grb::NoMask{}, grb::NoAccumulate{},
               [](double x) { return x * 0.5; }, w);
    grb::eWiseAdd(w, grb::NoMask{}, grb::NoAccumulate{}, grb::Plus<double>{},
                  w, u, grb::Replace);
    benchmark::DoNotOptimize(w);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
}

}  // namespace

BENCHMARK(BM_mxv_sequential)->DenseRange(8, 16, 2)->Iterations(3);
BENCHMARK(BM_mxv_gpu)->DenseRange(8, 16, 2)->Iterations(3)->UseManualTime();
BENCHMARK(BM_mxv_gpu_baseline)->Apply(add_family_args);
BENCHMARK(BM_mxv_gpu_adaptive)->Apply(add_family_args);
BENCHMARK(BM_mxv_chain_sequential)->DenseRange(8, 16, 2)->Iterations(3);
BENCHMARK(BM_mxv_chain_gpu_eager)
    ->DenseRange(8, 16, 2)
    ->Iterations(3)
    ->UseManualTime();
BENCHMARK(BM_mxv_chain_gpu_fused)
    ->DenseRange(8, 16, 2)
    ->Iterations(3)
    ->UseManualTime();

BENCHMARK_MAIN();
