/// Fig. 6 — host<->device transfer overhead: the same mxv measured
/// (a) with device-resident data (steady-state inner loop of an algorithm),
/// (b) with a per-call upload of matrix + vector and download of the result
///     (the naive "offload one primitive" usage).
///
/// Paper-shape expectation: per-call transfers dominate at every scale and
/// push the CPU/GPU crossover up by 1-2 scales — the architectural argument
/// for GBTL keeping GraphBLAS objects device-resident across primitives.
///
/// The third pair (sync vs overlap) measures what the lazy op-DAG's second
/// stream buys when a transfer is unavoidable: an mxv plus an index-driven
/// assign whose index upload either runs synchronously on the compute
/// stream (fusion off) or is prefetched on the dedicated transfer stream
/// under the mxv's kernel time (fusion on). Times are device-wide makespan,
/// so the overlap row's win is exactly the hidden PCIe seconds.

#include "bench_common.hpp"
#include "sparse/fusion_plan.hpp"

namespace {

void BM_mxv_resident(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols(), 1.0),
                                     0.0);
  grb::Vector<double, grb::GpuSim> w(a.nrows());
  benchx::run_simulated(state, [&] {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_mxv_per_call_transfer(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  // Host-side golden copies, re-uploaded every call.
  auto host = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::IndexArrayType rows, cols;
  std::vector<double> vals;
  host.extractTuples(rows, cols, vals);
  const std::vector<double> ones(host.ncols(), 1.0);

  benchx::run_simulated(state, [&] {
    grb::Matrix<double, grb::GpuSim> a(host.nrows(), host.ncols());
    a.build(rows, cols, vals);  // H2D
    grb::Vector<double, grb::GpuSim> u(ones, 0.0);  // H2D
    grb::Vector<double, grb::GpuSim> w(a.nrows());
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
    grb::IndexArrayType out_idx;
    std::vector<double> out_vals;
    w.extractTuples(out_idx, out_vals);  // D2H
    benchmark::DoNotOptimize(out_vals);
  });
  benchx::annotate(state, host.nrows(), host.nvals());
}

void run_mxv_assign_mode(benchmark::State& state, sparse::FusionMode fmode) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> u(std::vector<double>(a.ncols(), 1.0),
                                     0.0);
  grb::Vector<double, grb::GpuSim> w(a.nrows()), z(a.nrows());
  const grb::IndexArrayType all = grb::all_indices(a.nrows());
  auto& dev = gpu_sim::device();
  sparse::FusionGuard guard(fmode);

  auto work = [&] {
    grb::mxv(w, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, u, grb::Replace);
    grb::assign(z, grb::NoMask{}, grb::NoAccumulate{}, 1.5, all);
    grb::wait();
  };
  work();  // untimed warm-up, as in benchx::run_simulated
  const auto before = dev.stats();
  for (auto _ : state) {
    // Makespan, not the serial sum: the dual-stream row's saving IS the
    // copy time hidden under the mxv kernel.
    const double t0 = dev.makespan_s();
    work();
    state.SetIterationTime(dev.makespan_s() - t0);
  }
  const auto delta = dev.stats() - before;
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["overlap_hidden_s"] =
      benchmark::Counter(delta.overlap_seconds_hidden);
}

void BM_mxv_assign_sync(benchmark::State& state) {
  run_mxv_assign_mode(state, sparse::FusionMode::Off);
}

void BM_mxv_assign_overlap(benchmark::State& state) {
  run_mxv_assign_mode(state, sparse::FusionMode::Fuse);
}

}  // namespace

BENCHMARK(BM_mxv_resident)->DenseRange(8, 16, 2)->Iterations(1)->UseManualTime();
BENCHMARK(BM_mxv_per_call_transfer)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxv_assign_sync)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxv_assign_overlap)
    ->DenseRange(8, 16, 2)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
