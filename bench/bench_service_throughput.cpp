/// Serving-layer throughput & tail-latency bench. Unlike the paper-figure
/// benches (simulated device seconds), this one measures REAL wall time:
/// the serving layer's product is concurrency on the host — admission,
/// scheduling, and N workers with private simulated devices — so QPS and
/// p50/p95/p99 are host-side quantities.
///
/// Three experiments:
///  - BM_service_throughput/<workers>: closed-loop mixed BFS + PageRank
///    workload; reports qps and latency quantiles per worker count.
///  - BM_service_deadline_sweep/<timeout_us>: the same workload under a
///    per-query deadline; reports how the completed/cancelled/shed split
///    moves as the deadline tightens (timeout 0 = every query born
///    expired, nothing completes).
///  - BM_service_sharded_capacity/<shard_contexts>: BFS + SSSP against a
///    graph whose CSR is bigger than one worker arena, forced through the
///    GpuShard path. Capacity climbs with the fan-out: one context cannot
///    hold the graph (every query fails with device OOM — the capacity
///    wall), two contexts serve the lighter-working-set kinds, four serve
///    everything; the halo_* counters show how much of the exchange hid
///    under shard kernels.

#include "bench_common.hpp"

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "service/executor.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"

namespace {

constexpr unsigned kScale = 8;
constexpr grb::IndexType kEdgeFactor = 8;
constexpr std::size_t kQueries = 48;

std::shared_ptr<service::GraphStore> shared_store() {
  static auto store = [] {
    auto s = std::make_shared<service::GraphStore>();
    s->add("rmat", benchx::rmat_graph(kScale, kEdgeFactor));
    return s;
  }();
  return store;
}

/// Alternating BFS / PageRank over the shared graph, sources spread with
/// the common stride pattern.
std::vector<service::QueryRequest> mixed_workload() {
  const auto sources = benchx::batch_sources(
      grb::IndexType{1} << kScale, static_cast<grb::IndexType>(kQueries));
  std::vector<service::QueryRequest> reqs(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    auto& r = reqs[i];
    r.graph = "rmat";
    if (i % 2 == 0) {
      r.kind = service::QueryKind::kBfs;
      r.source = sources[i];
    } else {
      r.kind = service::QueryKind::kPageRank;
      r.max_iterations = 15;
    }
  }
  return reqs;
}

void report_service_counters(benchmark::State& state,
                             const service::ServiceStats& stats,
                             double seconds) {
  state.counters["qps"] = benchmark::Counter(stats.qps(
      std::chrono::duration<double>(seconds)));
  state.counters["p50_us"] = benchmark::Counter(stats.latency.quantile(0.50));
  state.counters["p95_us"] = benchmark::Counter(stats.latency.quantile(0.95));
  state.counters["p99_us"] = benchmark::Counter(stats.latency.quantile(0.99));
  state.counters["completed"] =
      benchmark::Counter(static_cast<double>(stats.completed));
  state.counters["cancelled"] =
      benchmark::Counter(static_cast<double>(stats.cancelled));
  state.counters["shed"] = benchmark::Counter(static_cast<double>(stats.shed));
}

void BM_service_throughput(benchmark::State& state) {
  const auto workload = mixed_workload();
  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    service::ExecutorOptions opts;
    opts.workers = static_cast<std::size_t>(state.range(0));
    opts.queue_capacity = kQueries;  // closed loop: nothing sheds
    service::QueryExecutor exec(shared_store(), opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (auto& f : futures) f.get();
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
}
BENCHMARK(BM_service_throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_service_deadline_sweep(benchmark::State& state) {
  const auto timeout = std::chrono::microseconds(state.range(0));
  auto workload = mixed_workload();
  for (auto& req : workload)
    req.timeout =
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout);
  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    service::ExecutorOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 16;  // small queue: overload can shed
    service::QueryExecutor exec(shared_store(), opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (auto& f : futures) f.get();
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
}
BENCHMARK(BM_service_deadline_sweep)
    ->Arg(0)        // born expired: everything cancelled or shed
    ->Arg(2000)     // 2 ms: tight — partial completion
    ->Arg(1000000)  // 1 s: loose — everything completes
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Shardable-only workload (BFS/SSSP propagate through the sharded mxv/vxm
/// path; PageRank needs matrix-wide ops with no sharded analogue).
std::vector<service::QueryRequest> shardable_workload() {
  const auto sources = benchx::batch_sources(
      grb::IndexType{1} << kScale, static_cast<grb::IndexType>(kQueries));
  std::vector<service::QueryRequest> reqs(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    auto& r = reqs[i];
    r.graph = "rmat";
    r.kind = i % 2 == 0 ? service::QueryKind::kBfs : service::QueryKind::kSssp;
    r.source = sources[i];
  }
  return reqs;
}

void BM_service_sharded_capacity(benchmark::State& state) {
  const auto workload = shardable_workload();
  auto store = shared_store();
  // Size each worker arena below the graph's CSR so the monolithic device
  // image cannot exist: with one shard context the graph simply does not
  // fit (the capacity wall this experiment demonstrates); with more, the
  // planner cuts enough row blocks that each slice fits its context.
  const auto snap = store->get("rmat");
  const std::uint64_t csr = snap->device_csr_bytes_estimate();

  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    service::ExecutorOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;
    opts.backend_mode = service::BackendMode::kForceGpuShard;
    opts.shard_contexts = static_cast<std::size_t>(state.range(0));
    opts.device_properties.total_global_memory = csr - 512;
    service::QueryExecutor exec(store, opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (auto& f : futures) f.get();
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
  state.counters["failed"] =
      benchmark::Counter(static_cast<double>(last.failed));
  state.counters["shards_active"] =
      benchmark::Counter(static_cast<double>(last.shards_active));
  state.counters["halo_KB"] = benchmark::Counter(
      static_cast<double>(last.halo_bytes_exchanged) / 1024.0);
  state.counters["halo_hidden_ms"] =
      benchmark::Counter(last.halo_seconds_hidden * 1e3);
}
BENCHMARK(BM_service_sharded_capacity)
    ->Arg(1)  // capacity wall: whole graph in one shard cannot upload
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
