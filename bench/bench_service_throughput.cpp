/// Serving-layer throughput & tail-latency bench. Unlike the paper-figure
/// benches (simulated device seconds), this one measures REAL wall time:
/// the serving layer's product is concurrency on the host — admission,
/// scheduling, and N workers with private simulated devices — so QPS and
/// p50/p95/p99 are host-side quantities.
///
/// Three experiments:
///  - BM_service_throughput/<workers>: closed-loop mixed BFS + PageRank
///    workload; reports qps and latency quantiles per worker count.
///  - BM_service_deadline_sweep/<timeout_us>: the same workload under a
///    per-query deadline; reports how the completed/cancelled/shed split
///    moves as the deadline tightens (timeout 0 = every query born
///    expired, nothing completes).
///  - BM_service_sharded_capacity/<shard_contexts>: BFS + SSSP against a
///    graph whose CSR is bigger than one worker arena, forced through the
///    GpuShard path. Capacity climbs with the fan-out: one context cannot
///    hold the graph (every query fails with device OOM — the capacity
///    wall), two contexts serve the lighter-working-set kinds, four serve
///    everything; the halo_* counters show how much of the exchange hid
///    under shard kernels.
///  - BM_service_mutation_stream/<edges_per_batch>: the mixed workload
///    (with incremental PageRank / components) while a background mutator
///    streams apply_edges batches of 0 / 10 / 100 edges — how much QPS the
///    delta-overlay publish path costs, and how often incremental queries
///    ride warm vs fall back cold (docs/streaming.md).

#include "bench_common.hpp"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "service/executor.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"

namespace {

constexpr unsigned kScale = 8;
constexpr grb::IndexType kEdgeFactor = 8;
constexpr std::size_t kQueries = 48;

std::shared_ptr<service::GraphStore> shared_store() {
  static auto store = [] {
    auto s = std::make_shared<service::GraphStore>();
    s->add("rmat", benchx::rmat_graph(kScale, kEdgeFactor));
    return s;
  }();
  return store;
}

/// Alternating BFS / PageRank over the shared graph, sources spread with
/// the common stride pattern.
std::vector<service::QueryRequest> mixed_workload() {
  const auto sources = benchx::batch_sources(
      grb::IndexType{1} << kScale, static_cast<grb::IndexType>(kQueries));
  std::vector<service::QueryRequest> reqs(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    auto& r = reqs[i];
    r.graph = "rmat";
    if (i % 2 == 0) {
      r.kind = service::QueryKind::kBfs;
      r.source = sources[i];
    } else {
      r.kind = service::QueryKind::kPageRank;
      r.max_iterations = 15;
    }
  }
  return reqs;
}

void report_service_counters(benchmark::State& state,
                             const service::ServiceStats& stats,
                             double seconds) {
  state.counters["qps"] = benchmark::Counter(stats.qps(
      std::chrono::duration<double>(seconds)));
  state.counters["p50_us"] = benchmark::Counter(stats.latency.quantile(0.50));
  state.counters["p95_us"] = benchmark::Counter(stats.latency.quantile(0.95));
  state.counters["p99_us"] = benchmark::Counter(stats.latency.quantile(0.99));
  state.counters["completed"] =
      benchmark::Counter(static_cast<double>(stats.completed));
  state.counters["cancelled"] =
      benchmark::Counter(static_cast<double>(stats.cancelled));
  state.counters["shed"] = benchmark::Counter(static_cast<double>(stats.shed));
}

void BM_service_throughput(benchmark::State& state) {
  const auto workload = mixed_workload();
  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    service::ExecutorOptions opts;
    opts.workers = static_cast<std::size_t>(state.range(0));
    opts.queue_capacity = kQueries;  // closed loop: nothing sheds
    service::QueryExecutor exec(shared_store(), opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (auto& f : futures) f.get();
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
}
BENCHMARK(BM_service_throughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_service_deadline_sweep(benchmark::State& state) {
  const auto timeout = std::chrono::microseconds(state.range(0));
  auto workload = mixed_workload();
  for (auto& req : workload)
    req.timeout =
        std::chrono::duration_cast<std::chrono::milliseconds>(timeout);
  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    service::ExecutorOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 16;  // small queue: overload can shed
    service::QueryExecutor exec(shared_store(), opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (auto& f : futures) f.get();
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
}
BENCHMARK(BM_service_deadline_sweep)
    ->Arg(0)        // born expired: everything cancelled or shed
    ->Arg(2000)     // 2 ms: tight — partial completion
    ->Arg(1000000)  // 1 s: loose — everything completes
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Shardable-only workload (BFS/SSSP propagate through the sharded mxv/vxm
/// path; PageRank needs matrix-wide ops with no sharded analogue).
std::vector<service::QueryRequest> shardable_workload() {
  const auto sources = benchx::batch_sources(
      grb::IndexType{1} << kScale, static_cast<grb::IndexType>(kQueries));
  std::vector<service::QueryRequest> reqs(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    auto& r = reqs[i];
    r.graph = "rmat";
    r.kind = i % 2 == 0 ? service::QueryKind::kBfs : service::QueryKind::kSssp;
    r.source = sources[i];
  }
  return reqs;
}

void BM_service_sharded_capacity(benchmark::State& state) {
  const auto workload = shardable_workload();
  auto store = shared_store();
  // Size each worker arena below the graph's CSR so the monolithic device
  // image cannot exist: with one shard context the graph simply does not
  // fit (the capacity wall this experiment demonstrates); with more, the
  // planner cuts enough row blocks that each slice fits its context.
  const auto snap = store->get("rmat");
  const std::uint64_t csr = snap->device_csr_bytes_estimate();

  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    service::ExecutorOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;
    opts.backend_mode = service::BackendMode::kForceGpuShard;
    opts.shard_contexts = static_cast<std::size_t>(state.range(0));
    opts.device_properties.total_global_memory = csr - 512;
    service::QueryExecutor exec(store, opts);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    for (const auto& req : workload) futures.push_back(exec.submit(req));
    for (auto& f : futures) f.get();
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
  state.counters["failed"] =
      benchmark::Counter(static_cast<double>(last.failed));
  state.counters["shards_active"] =
      benchmark::Counter(static_cast<double>(last.shards_active));
  state.counters["halo_KB"] = benchmark::Counter(
      static_cast<double>(last.halo_bytes_exchanged) / 1024.0);
  state.counters["halo_hidden_ms"] =
      benchmark::Counter(last.halo_seconds_hidden * 1e3);
}
BENCHMARK(BM_service_sharded_capacity)
    ->Arg(1)  // capacity wall: whole graph in one shard cannot upload
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Mixed query stream with the even slots incremental: BFS keeps the
/// workers busy on the merged path while incremental PageRank / components
/// exercise replay, warm start, and cold fallback as versions advance
/// underneath them.
std::vector<service::QueryRequest> streaming_workload() {
  const auto sources = benchx::batch_sources(
      grb::IndexType{1} << kScale, static_cast<grb::IndexType>(kQueries));
  std::vector<service::QueryRequest> reqs(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    auto& r = reqs[i];
    r.graph = "stream";
    switch (i % 3) {
      case 0:
        r.kind = service::QueryKind::kBfs;
        r.source = sources[i];
        break;
      case 1:
        r.kind = service::QueryKind::kPageRank;
        r.max_iterations = 15;
        r.incremental = true;
        break;
      default:
        r.kind = service::QueryKind::kConnectedComponents;
        r.incremental = true;
        break;
    }
  }
  return reqs;
}

void BM_service_mutation_stream(benchmark::State& state) {
  const auto edges_per_batch = static_cast<std::size_t>(state.range(0));
  const auto workload = streaming_workload();
  const grb::IndexType n = grb::IndexType{1} << kScale;

  service::ServiceStats last{};
  double seconds = 0.0;
  for (auto _ : state) {
    // Private store per iteration: the mutator advances "stream"'s version
    // chain, which must not leak into the other experiments' shared graph.
    auto store = std::make_shared<service::GraphStore>();
    store->add("stream", benchx::rmat_graph_sym(kScale, kEdgeFactor));
    service::ExecutorOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;  // closed loop: nothing sheds
    service::QueryExecutor exec(store, opts);

    std::atomic<bool> stop{false};
    std::thread mutator;
    if (edges_per_batch > 0) {
      mutator = std::thread([&, edges_per_batch] {
        std::mt19937 rng(424242);
        std::uniform_int_distribution<grb::IndexType> vertex(0, n - 1);
        const gbtl_graph::EdgeList none{n, {}, {}, {}};
        while (!stop.load(std::memory_order_relaxed)) {
          // Symmetric pairs: the components / triangle kinds assume an
          // undirected graph, so mutations must preserve that.
          gbtl_graph::EdgeList adds{n, {}, {}, {}};
          for (std::size_t e = 0; e + 1 < edges_per_batch; e += 2) {
            const grb::IndexType u = vertex(rng), v = vertex(rng);
            adds.src.push_back(u);
            adds.dst.push_back(v);
            adds.src.push_back(v);
            adds.dst.push_back(u);
          }
          store->apply_edges("stream", adds, none);
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      });
    }

    // Submit in waves rather than one burst: versions advance between
    // waves, so later queries actually observe the mutation stream
    // (replay misses, warm starts, cache invalidations) instead of all
    // racing the first batch.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(workload.size());
    constexpr std::size_t kWave = 8;
    for (std::size_t i = 0; i < workload.size(); i += kWave) {
      const std::size_t end = std::min(workload.size(), i + kWave);
      for (std::size_t j = i; j < end; ++j)
        futures.push_back(exec.submit(workload[j]));
      for (std::size_t j = i; j < end; ++j) futures[j].get();
    }
    seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    stop.store(true, std::memory_order_relaxed);
    if (mutator.joinable()) mutator.join();
    last = exec.stats();
  }
  report_service_counters(state, last, seconds);
  state.counters["mutations"] =
      benchmark::Counter(static_cast<double>(last.mutations));
  state.counters["compactions"] =
      benchmark::Counter(static_cast<double>(last.compactions));
  state.counters["warm_starts"] =
      benchmark::Counter(static_cast<double>(last.warm_starts));
  state.counters["cold_fallbacks"] =
      benchmark::Counter(static_cast<double>(last.cold_fallbacks));
  state.counters["replays"] =
      benchmark::Counter(static_cast<double>(last.result_cache_hits));
  state.counters["invalidations"] =
      benchmark::Counter(static_cast<double>(last.cache_invalidations));
}
BENCHMARK(BM_service_mutation_stream)
    ->Arg(0)    // quiescent baseline: same workload, no mutation stream
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
