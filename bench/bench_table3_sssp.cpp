/// Table 3 — SSSP (Bellman-Ford over min-plus) per backend on weighted
/// R-MAT graphs with uniform random weights in [1, 255] (the paper-era
/// delta-stepping benchmark convention).

#include "bench_common.hpp"

#include "algorithms/sssp.hpp"

namespace {

const gbtl_graph::EdgeList& weighted_rmat(unsigned scale) {
  static std::map<unsigned, gbtl_graph::EdgeList> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    it = cache.emplace(scale, gbtl_graph::with_random_weights(
                                  benchx::rmat_graph(scale, 16), 1.0, 255.0,
                                  scale))
             .first;
  }
  return it->second;
}

void BM_sssp_sequential(benchmark::State& state) {
  const auto& g = weighted_rmat(static_cast<unsigned>(state.range(0)));
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> dist(a.nrows());
  grb::IndexType rounds = 0;
  for (auto _ : state) {
    rounds = algorithms::sssp(a, 0, dist);
    benchmark::DoNotOptimize(dist);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["rounds"] = benchmark::Counter(static_cast<double>(rounds));
}

void BM_sssp_gpu(benchmark::State& state) {
  const auto& g = weighted_rmat(static_cast<unsigned>(state.range(0)));
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> dist(a.nrows());
  grb::IndexType rounds = 0;
  benchx::run_simulated(state, [&] { rounds = algorithms::sssp(a, 0, dist); });
  benchx::annotate(state, a.nrows(), a.nvals());
  benchx::report_teps(state, a.nvals());
  state.counters["rounds"] = benchmark::Counter(static_cast<double>(rounds));
}

}  // namespace

BENCHMARK(BM_sssp_sequential)->DenseRange(8, 13, 1)->Iterations(1);
BENCHMARK(BM_sssp_gpu)->DenseRange(8, 13, 1)->Iterations(1)->UseManualTime();

BENCHMARK_MAIN();
