/// Fig. 3 — PageRank per-iteration time vs scale per backend (d = 0.85).
/// Measures a fixed 10 iterations (tol = 0) so rows are comparable, and
/// reports time/iteration.
///
/// The eager/fused pair ablates the lazy op-DAG on the same workload: eager
/// pins GBTL_FUSION_MODE=off semantics (every primitive pays its own launch
/// overhead), fused is the shipping Auto default (per-iteration chains
/// replay as composite launches; see docs/fusion_dag.md). The gap is pure
/// launch-overhead elision — counters `fused`/`elided` report the groups.

#include "bench_common.hpp"

#include "algorithms/pagerank.hpp"
#include "sparse/fusion_plan.hpp"

namespace {

constexpr grb::IndexType kIters = 10;

void BM_pagerank_sequential(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> rank(a.nrows());
  for (auto _ : state) {
    algorithms::pagerank(a, rank, 0.85, /*tol=*/0.0, kIters);
    benchmark::DoNotOptimize(rank);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
}

void BM_pagerank_gpu(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> rank(a.nrows());
  benchx::run_simulated(
      state, [&] { algorithms::pagerank(a, rank, 0.85, 0.0, kIters); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
}

void run_pagerank_gpu_mode(benchmark::State& state,
                           sparse::FusionMode mode) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> rank(a.nrows());
  sparse::FusionGuard guard(mode);
  const auto delta = benchx::run_simulated(
      state, [&] { algorithms::pagerank(a, rank, 0.85, 0.0, kIters); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
  state.counters["fused"] =
      benchmark::Counter(static_cast<double>(delta.fused_launches));
  state.counters["elided"] =
      benchmark::Counter(static_cast<double>(delta.launches_elided));
}

void BM_pagerank_gpu_eager(benchmark::State& state) {
  run_pagerank_gpu_mode(state, sparse::FusionMode::Off);
}

void BM_pagerank_gpu_fused(benchmark::State& state) {
  run_pagerank_gpu_mode(state, sparse::FusionMode::Auto);
}

}  // namespace

BENCHMARK(BM_pagerank_sequential)->DenseRange(8, 13, 1)->Iterations(1);
BENCHMARK(BM_pagerank_gpu)
    ->DenseRange(8, 13, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_pagerank_gpu_eager)
    ->DenseRange(8, 13, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_pagerank_gpu_fused)
    ->DenseRange(8, 13, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
