/// Fig. 3 — PageRank per-iteration time vs scale per backend (d = 0.85).
/// Measures a fixed 10 iterations (tol = 0) so rows are comparable, and
/// reports time/iteration.

#include "bench_common.hpp"

#include "algorithms/pagerank.hpp"

namespace {

constexpr grb::IndexType kIters = 10;

void BM_pagerank_sequential(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::Sequential>(g);
  grb::Vector<double, grb::Sequential> rank(a.nrows());
  for (auto _ : state) {
    algorithms::pagerank(a, rank, 0.85, /*tol=*/0.0, kIters);
    benchmark::DoNotOptimize(rank);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
}

void BM_pagerank_gpu(benchmark::State& state) {
  const auto& g = benchx::rmat_graph(static_cast<unsigned>(state.range(0)),
                                     16);
  auto a = gbtl_graph::to_matrix<double, grb::GpuSim>(g);
  grb::Vector<double, grb::GpuSim> rank(a.nrows());
  benchx::run_simulated(
      state, [&] { algorithms::pagerank(a, rank, 0.85, 0.0, kIters); });
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["iters"] = benchmark::Counter(static_cast<double>(kIters));
}

}  // namespace

BENCHMARK(BM_pagerank_sequential)->DenseRange(8, 13, 1)->Iterations(1);
BENCHMARK(BM_pagerank_gpu)
    ->DenseRange(8, 13, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
