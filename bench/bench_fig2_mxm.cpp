/// Fig. 2 — mxm (SpGEMM, C = A·A over plus-times) vs scale, sequential
/// against GPU, plus the masked variant on each backend.
///
/// Paper-shape expectation: the masked product wins on both backends — the
/// sequential backend switches to mask-driven dot products, the GPU backend
/// prunes the expansion before paying for the contraction (Abl. B).
///
/// The gpu_esc / gpu_hash / gpu_auto rows pin the SpGEMM strategy so the
/// adaptive selector can be audited: on the high-compression upper scales
/// Auto must track the hash row (and beat forced ESC in simulated time);
/// on the small launch-bound scales it must track ESC. Each GPU row reports
/// the selection counters and the hash path's collision/table-byte totals.

#include "bench_common.hpp"
#include "sparse/spgemm_select.hpp"

namespace {

void report_spgemm_counters(benchmark::State& state,
                            const gpu_sim::DeviceStats& delta) {
  state.counters["sel_esc"] = benchmark::Counter(static_cast<double>(
      delta.spgemm_selections[static_cast<std::size_t>(
          gpu_sim::SpgemmStrategy::kEsc)]));
  state.counters["sel_hash"] = benchmark::Counter(static_cast<double>(
      delta.spgemm_selections[static_cast<std::size_t>(
          gpu_sim::SpgemmStrategy::kHash)]));
  state.counters["hash_collisions"] = benchmark::Counter(
      static_cast<double>(delta.spgemm_hash_collisions));
  state.counters["hash_table_bytes"] = benchmark::Counter(
      static_cast<double>(delta.spgemm_hash_table_bytes));
  state.counters["masked_avoided"] = benchmark::Counter(
      static_cast<double>(delta.spgemm_masked_products_avoided));
}

template <typename Tag>
auto pattern_matrix(unsigned scale) {
  const auto& g = benchx::rmat_graph_sym(scale, 8);
  return gbtl_graph::to_matrix<double, Tag>(g);
}

void BM_mxm_sequential(benchmark::State& state) {
  auto a = pattern_matrix<grb::Sequential>(
      static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::Sequential> c(a.nrows(), a.ncols());
  for (auto _ : state) {
    grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
    benchmark::DoNotOptimize(c);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["out_nnz"] =
      benchmark::Counter(static_cast<double>(c.nvals()));
}

void BM_mxm_sequential_masked(benchmark::State& state) {
  auto a = pattern_matrix<grb::Sequential>(
      static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::Sequential> c(a.nrows(), a.ncols());
  for (auto _ : state) {
    grb::mxm(c, grb::structure(a), grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
    benchmark::DoNotOptimize(c);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["out_nnz"] =
      benchmark::Counter(static_cast<double>(c.nvals()));
}

void run_gpu_mxm(benchmark::State& state, sparse::SpgemmMode mode,
                 bool masked) {
  sparse::SpgemmModeGuard guard(mode);
  auto a = pattern_matrix<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::GpuSim> c(a.nrows(), a.ncols());
  const auto delta = benchx::run_simulated(state, [&] {
    if (masked) {
      grb::mxm(c, grb::structure(a), grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
    } else {
      grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
    }
  });
  benchx::annotate(state, a.nrows(), a.nvals());
  report_spgemm_counters(state, delta);
  state.counters["out_nnz"] =
      benchmark::Counter(static_cast<double>(c.nvals()));
}

void BM_mxm_gpu_esc(benchmark::State& state) {
  run_gpu_mxm(state, sparse::SpgemmMode::Esc, /*masked=*/false);
}

void BM_mxm_gpu_hash(benchmark::State& state) {
  run_gpu_mxm(state, sparse::SpgemmMode::Hash, /*masked=*/false);
}

void BM_mxm_gpu_auto(benchmark::State& state) {
  run_gpu_mxm(state, sparse::SpgemmMode::Auto, /*masked=*/false);
}

void BM_mxm_gpu_masked_esc(benchmark::State& state) {
  run_gpu_mxm(state, sparse::SpgemmMode::Esc, /*masked=*/true);
}

void BM_mxm_gpu_masked_hash(benchmark::State& state) {
  run_gpu_mxm(state, sparse::SpgemmMode::Hash, /*masked=*/true);
}

void BM_mxm_gpu_masked_auto(benchmark::State& state) {
  run_gpu_mxm(state, sparse::SpgemmMode::Auto, /*masked=*/true);
}

}  // namespace

BENCHMARK(BM_mxm_sequential)->DenseRange(6, 11, 1)->Iterations(1);
BENCHMARK(BM_mxm_sequential_masked)->DenseRange(6, 11, 1)->Iterations(1);
BENCHMARK(BM_mxm_gpu_esc)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxm_gpu_hash)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxm_gpu_auto)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxm_gpu_masked_esc)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxm_gpu_masked_hash)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();
BENCHMARK(BM_mxm_gpu_masked_auto)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
