/// Fig. 2 — mxm (SpGEMM, C = A·A over plus-times) vs scale, sequential
/// against GPU (ESC pipeline), plus the masked variant on each backend.
///
/// Paper-shape expectation: the masked product wins on both backends — the
/// sequential backend switches to mask-driven dot products, the GPU backend
/// prunes the ESC expansion before paying for the sort (Abl. B).

#include "bench_common.hpp"

namespace {

template <typename Tag>
auto pattern_matrix(unsigned scale) {
  const auto& g = benchx::rmat_graph_sym(scale, 8);
  return gbtl_graph::to_matrix<double, Tag>(g);
}

void BM_mxm_sequential(benchmark::State& state) {
  auto a = pattern_matrix<grb::Sequential>(
      static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::Sequential> c(a.nrows(), a.ncols());
  for (auto _ : state) {
    grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
    benchmark::DoNotOptimize(c);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["out_nnz"] =
      benchmark::Counter(static_cast<double>(c.nvals()));
}

void BM_mxm_sequential_masked(benchmark::State& state) {
  auto a = pattern_matrix<grb::Sequential>(
      static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::Sequential> c(a.nrows(), a.ncols());
  for (auto _ : state) {
    grb::mxm(c, grb::structure(a), grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
    benchmark::DoNotOptimize(c);
  }
  benchx::annotate(state, a.nrows(), a.nvals());
  state.counters["out_nnz"] =
      benchmark::Counter(static_cast<double>(c.nvals()));
}

void BM_mxm_gpu(benchmark::State& state) {
  auto a = pattern_matrix<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::GpuSim> c(a.nrows(), a.ncols());
  benchx::run_simulated(state, [&] {
    grb::mxm(c, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
}

void BM_mxm_gpu_masked(benchmark::State& state) {
  auto a = pattern_matrix<grb::GpuSim>(static_cast<unsigned>(state.range(0)));
  grb::Matrix<double, grb::GpuSim> c(a.nrows(), a.ncols());
  benchx::run_simulated(state, [&] {
    grb::mxm(c, grb::structure(a), grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, a, a, grb::Replace);
  });
  benchx::annotate(state, a.nrows(), a.nvals());
}

}  // namespace

BENCHMARK(BM_mxm_sequential)->DenseRange(6, 11, 1)->Iterations(1);
BENCHMARK(BM_mxm_sequential_masked)->DenseRange(6, 11, 1)->Iterations(1);
BENCHMARK(BM_mxm_gpu)->DenseRange(6, 11, 1)->Iterations(1)->UseManualTime();
BENCHMARK(BM_mxm_gpu_masked)
    ->DenseRange(6, 11, 1)
    ->Iterations(1)
    ->UseManualTime();

BENCHMARK_MAIN();
