#pragma once

/// @file bench_common.hpp
/// Shared machinery for the experiment benches.
///
/// Timing convention (documented in DESIGN.md): the sequential backend is
/// measured in host wall time; the GPU backend reports *simulated device
/// time* via google-benchmark's manual-time mode, so every figure compares
/// "CPU wall seconds" against "modeled device seconds" exactly as the paper
/// compared CPU runs against CUDA-event timings.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace benchx {

/// R-MAT evaluation graph (Graph500 parameters), deduplicated and loop-free,
/// cached across benchmark registrations.
inline const gbtl_graph::EdgeList& rmat_graph(unsigned scale,
                                              gbtl_graph::Index edgefactor) {
  static std::map<std::pair<unsigned, gbtl_graph::Index>,
                  gbtl_graph::EdgeList>
      cache;
  auto key = std::make_pair(scale, edgefactor);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto g = gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
        gbtl_graph::rmat(scale, edgefactor, /*seed=*/20160501 + scale)));
    it = cache.emplace(key, std::move(g)).first;
  }
  return it->second;
}

/// Symmetrized variant (triangle counting, MIS, components).
inline const gbtl_graph::EdgeList& rmat_graph_sym(
    unsigned scale, gbtl_graph::Index edgefactor) {
  static std::map<std::pair<unsigned, gbtl_graph::Index>,
                  gbtl_graph::EdgeList>
      cache;
  auto key = std::make_pair(scale, edgefactor);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, gbtl_graph::symmetrize(rmat_graph(scale,
                                                              edgefactor)))
             .first;
  }
  return it->second;
}

/// Run @p work once per iteration, reporting the *simulated device clock*
/// delta as the iteration time. Use with ->UseManualTime().
///
/// Returns the DeviceStats delta of the timed region so callers can report
/// engine-specific counters without double-counting the warm-up pass.
///
/// Also attributes the memory pool's behaviour to the timed region: the
/// `pool_hit_rate` counter is the fraction of device allocations the
/// size-class pool served from its freelists (algorithm iterations churn
/// same-sized scratch vectors, so a healthy engine sits near 1.0 once the
/// first iteration has warmed the pool).
template <typename Fn>
gpu_sim::DeviceStats run_simulated(benchmark::State& state, Fn&& work) {
  auto& dev = gpu_sim::device();
  // One untimed warm-up pass: primes the pool's freelists (and any other
  // lazy caches) so the measured iterations — and the hit-rate counter —
  // reflect steady state, the regime the paper's timings were taken in.
  work();
  const auto before = dev.stats();
  for (auto _ : state) {
    const double t0 = dev.simulated_time_s();
    work();
    state.SetIterationTime(dev.simulated_time_s() - t0);
  }
  const auto delta = dev.stats() - before;
  state.counters["pool_hit_rate"] =
      benchmark::Counter(delta.pool_hit_rate());
  return delta;
}

/// Deterministic spread of @p count traversal sources over [0, n): the
/// stride-37 pattern the batching ablation introduced, shared so every
/// multi-source bench (and the serving-layer benches) draws the same
/// workload instead of re-rolling its own.
inline grb::IndexArrayType batch_sources(grb::IndexType n,
                                         grb::IndexType count = 16) {
  grb::IndexArrayType s;
  s.reserve(count);
  for (grb::IndexType i = 0; i < count; ++i) s.push_back((i * 37) % n);
  return s;
}

/// Standard per-benchmark counters so every table row carries its workload.
inline void annotate(benchmark::State& state, grb::IndexType vertices,
                     grb::IndexType edges) {
  state.counters["vertices"] =
      benchmark::Counter(static_cast<double>(vertices));
  state.counters["edges"] = benchmark::Counter(static_cast<double>(edges));
}

/// Traversed-edges-per-second counter (BFS/SSSP tables report MTEPS).
inline void report_teps(benchmark::State& state, grb::IndexType edges) {
  state.counters["TEPS"] = benchmark::Counter(
      static_cast<double>(edges), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace benchx
