#pragma once

/// @file bench_common.hpp
/// Shared machinery for the experiment benches.
///
/// Timing convention (documented in DESIGN.md): the sequential backend is
/// measured in host wall time; the GPU backend reports *simulated device
/// time* via google-benchmark's manual-time mode, so every figure compares
/// "CPU wall seconds" against "modeled device seconds" exactly as the paper
/// compared CPU runs against CUDA-event timings.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

namespace benchx {

/// R-MAT evaluation graph (Graph500 parameters), deduplicated and loop-free,
/// cached across benchmark registrations.
inline const gbtl_graph::EdgeList& rmat_graph(unsigned scale,
                                              gbtl_graph::Index edgefactor) {
  static std::map<std::pair<unsigned, gbtl_graph::Index>,
                  gbtl_graph::EdgeList>
      cache;
  auto key = std::make_pair(scale, edgefactor);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto g = gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
        gbtl_graph::rmat(scale, edgefactor, /*seed=*/20160501 + scale)));
    it = cache.emplace(key, std::move(g)).first;
  }
  return it->second;
}

/// Symmetrized variant (triangle counting, MIS, components).
inline const gbtl_graph::EdgeList& rmat_graph_sym(
    unsigned scale, gbtl_graph::Index edgefactor) {
  static std::map<std::pair<unsigned, gbtl_graph::Index>,
                  gbtl_graph::EdgeList>
      cache;
  auto key = std::make_pair(scale, edgefactor);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, gbtl_graph::symmetrize(rmat_graph(scale,
                                                              edgefactor)))
             .first;
  }
  return it->second;
}

/// Run @p work once per iteration, reporting the *simulated device clock*
/// delta as the iteration time. Use with ->UseManualTime().
template <typename Fn>
void run_simulated(benchmark::State& state, Fn&& work) {
  auto& dev = gpu_sim::device();
  for (auto _ : state) {
    const double t0 = dev.simulated_time_s();
    work();
    state.SetIterationTime(dev.simulated_time_s() - t0);
  }
}

/// Standard per-benchmark counters so every table row carries its workload.
inline void annotate(benchmark::State& state, grb::IndexType vertices,
                     grb::IndexType edges) {
  state.counters["vertices"] =
      benchmark::Counter(static_cast<double>(vertices));
  state.counters["edges"] = benchmark::Counter(static_cast<double>(edges));
}

/// Traversed-edges-per-second counter (BFS/SSSP tables report MTEPS).
inline void report_teps(benchmark::State& state, grb::IndexType edges) {
  state.counters["TEPS"] = benchmark::Counter(
      static_cast<double>(edges), benchmark::Counter::kIsIterationInvariantRate);
}

}  // namespace benchx
