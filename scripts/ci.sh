#!/usr/bin/env bash
# Tier-1 gate + sanitized fuzz pass.
#
#   scripts/ci.sh            # full: tier-1 build/test, bench smoke,
#                            #   ASan/UBSan fuzz, TSan concurrency stage
#   scripts/ci.sh --fast     # tier-1 only
#
# Tier-1 is the contract every change must keep green: configure, build,
# and the full ctest suite of the default build. The sanitizer stage
# rebuilds only what the differential fuzz harness needs under
# ASan+UBSan and re-runs the fuzz label — the cheapest way to turn the
# 200-seed differential sweep into a memory-safety sweep as well.

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SAN_BUILD_DIR=${SAN_BUILD_DIR:-build-asan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}

echo "==> tier-1: configure + build (${BUILD_DIR})"
cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "==> tier-1: ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L 'unit|fuzz|stress'

if [[ "${1:-}" == "--fast" ]]; then
  echo "==> done (fast mode: sanitizers and bench smoke skipped)"
  exit 0
fi

echo "==> bench smoke"
# One filtered small-scale pass each through the SpMV benches, the BFS
# direction engine, and PageRank (smallest scale, Iterations(1));
# registration lives in bench/CMakeLists.txt.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -L bench-smoke

echo "==> pool leak check"
# gtest_discover_tests gives every test its own process, which makes the
# device-heap leak invariant vacuous. Run the full fuzz binary in ONE
# process so its final ZPoolLeak test sees the heap after the whole sweep:
# bytes_in_use must be back to zero and Context::trim() must return every
# cached pool block.
"${BUILD_DIR}/tests/test_differential_fuzz" --gtest_brief=1

echo "==> sanitizers: ASan/UBSan fuzz config (${SAN_BUILD_DIR})"
cmake -B "${SAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  >/dev/null
cmake --build "${SAN_BUILD_DIR}" -j "${JOBS}" --target test_differential_fuzz
ctest --test-dir "${SAN_BUILD_DIR}" --output-on-failure -j "${JOBS}" -L fuzz

echo "==> sanitizers: fusion-forced fuzz sweep"
# The fuzz harness zips fusion modes across its GPU legs, but the Auto
# default size-gates small cases the same as Fuse. Force GBTL_FUSION_MODE
# =fuse for the whole binary so every whitelisted op records into the
# lazy op-DAG and replays through the fusion planner under ASan/UBSan —
# the replay closures, staged index uploads, and drain-at-destructor
# paths are exactly where a stale pointer would hide. (Env must reach the
# process directly; ctest shards would not inherit a per-test override.)
GBTL_FUSION_MODE=fuse "${SAN_BUILD_DIR}/tests/test_differential_fuzz" \
  --gtest_brief=1

echo "==> sanitizers: sharded fuzz sweep"
# The fuzz harness zips shard counts {1,2,4} over its GpuShard legs; pin
# GBTL_SHARDS=4 so EVERY seeded mxv/vxm case runs the widest fan-out —
# halo staging buffers, cross-context upload/download pairs, and the
# shard-order merge all under ASan/UBSan. (Env reaches the binary
# directly; ctest shards would not inherit it.)
GBTL_SHARDS=4 "${SAN_BUILD_DIR}/tests/test_differential_fuzz" \
  --gtest_brief=1 \
  --gtest_filter='Seeds/DifferentialFuzz.Mxv/*:Seeds/DifferentialFuzz.Vxm/*:ZPoolLeak.*'

echo "==> sanitizers: hash-forced SpGEMM sweep"
# The Auto selector keeps fuzz-sized multiplies on the ESC pipeline, so pin
# the hash-Gustavson path explicitly and replay the mxm sweep under
# ASan/UBSan — open-addressing probe loops and per-row table offsets are
# exactly the code a sanitizer should stress.
GBTL_SPGEMM_MODE=hash "${SAN_BUILD_DIR}/tests/test_differential_fuzz" \
  --gtest_brief=1 --gtest_filter='Seeds/DifferentialFuzz.Mxm/*:ZPoolLeak.*'

echo "==> sanitizers: bit-forced traversal sweep"
# The BitTraversal leg forces the word-format engine itself, but Force mode
# also reroutes every OTHER logical-semiring traversal and every
# all-one-valued masked mxm in the binary through the bit gates. Run the
# traversal and mxm sweeps with GBTL_BIT_MODE=force under ASan/UBSan: the
# word-row pointer arithmetic, tail masks, and the popcount CSR emit are
# where an off-by-one-word would hide. (Env reaches the binary directly;
# ctest shards would not inherit it.)
GBTL_BIT_MODE=force "${SAN_BUILD_DIR}/tests/test_differential_fuzz" \
  --gtest_brief=1 \
  --gtest_filter='Seeds/DifferentialFuzz.BitTraversal/*:Seeds/DifferentialFuzz.Mxv/*:Seeds/DifferentialFuzz.Vxm/*:Seeds/DifferentialFuzz.Mxm/*:Seeds/DifferentialFuzz.Traversal/*:ZPoolLeak.*'

echo "==> sanitizers: TSan concurrency config (${TSAN_BUILD_DIR})"
# Concurrency lives in two places now: the serving layer (worker contexts,
# graph store, admission queue, stats block) and the CpuPar backend's
# chunked parallel loops. Rebuild the thread-pool substrate test, the
# executor stress test (which drives mixed CpuPar/GpuSim workloads), the
# CpuPar determinism regression, and the differential fuzz harness under
# ThreadSanitizer and run them in-process.
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  >/dev/null
cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" \
  --target test_thread_pool --target test_service_stress \
  --target test_cpupar_determinism --target test_differential_fuzz
"${TSAN_BUILD_DIR}/tests/test_thread_pool" --gtest_brief=1
"${TSAN_BUILD_DIR}/tests/test_service_stress" --gtest_brief=1
# Re-run the executor stress with fusion forced on: each worker records
# into its own thread-local op-DAG and drains at the job boundary, so a
# race here would mean DAG state leaked across worker threads.
GBTL_FUSION_MODE=fuse "${TSAN_BUILD_DIR}/tests/test_service_stress" \
  --gtest_brief=1
# Multi-context sharded serving under TSan: the oversized-graph stress test
# gives each worker a 4-context placement, so concurrent queries exercise
# parallel halo exchanges into per-worker context sets — any cross-worker
# sharing of a context, staging buffer, or the stats block fires as a race.
"${TSAN_BUILD_DIR}/tests/test_service_stress" --gtest_brief=1 \
  --gtest_filter='*OversizedGraphServedThroughShards*'
# Streaming mutations under TSan: mutator threads publish delta-CSR
# versions (apply_edges + compaction) while query clients bit-check every
# result against a serial oracle on its stamped version. The store's
# epoch counter, the executor-wide result cache (replay + warm-start
# lineage), and the worker-side retired-entry sweep all cross threads
# here (docs/streaming.md); run eager and fusion-forced.
"${TSAN_BUILD_DIR}/tests/test_service_stress" --gtest_brief=1 \
  --gtest_filter='*MutateUnderQuery*:*Incremental*'
GBTL_FUSION_MODE=fuse "${TSAN_BUILD_DIR}/tests/test_service_stress" \
  --gtest_brief=1 --gtest_filter='*MutateUnderQuery*:*Incremental*'

echo "==> sanitizers: TSan CpuPar stage"
# The CpuPar backend's whole safety story is "chunks own disjoint output
# ranges": replay the determinism regression with a wide pool and a slice
# of the three-way differential sweep (whose CpuPar legs run on a 3-worker
# pool) so any cross-chunk write — e.g. two chunks sharing a word of a
# bit-packed vector<bool> — fires as a race, not as silent corruption.
GBTL_CPUPAR_THREADS=4 "${TSAN_BUILD_DIR}/tests/test_cpupar_determinism" \
  --gtest_brief=1
"${TSAN_BUILD_DIR}/tests/test_differential_fuzz" --gtest_brief=1 \
  --gtest_filter='Seeds/DifferentialFuzz.Mxv/1*:Seeds/DifferentialFuzz.Mxm/1*:ZPoolLeak.*'

echo "==> all green"
