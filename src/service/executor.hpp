#pragma once

/// @file executor.hpp
/// Deadline-aware concurrent query executor. N worker threads, each owning a
/// *private* gpu_sim::Context (installed thread-locally via ScopedDevice), a
/// private DeviceGraphCache, and a private CpuPar thread pool + host matrix
/// cache, pull typed queries from a bounded admission queue and run them
/// through the unchanged algorithms:: entry points. Per query the worker
/// picks a backend (BackendMode): small graphs run on the parallel CPU
/// backend, large ones on the worker's simulated GPU.
///
/// Placement, not math: a query produces the same bits no matter which
/// worker runs it or what else runs beside it — the stress suite diffs every
/// concurrent result against a serial run to enforce this.
///
/// Lifecycle of one submit():
///   full queue  -> future resolves kShed immediately (load shedding)
///   queued past deadline -> kCancelled without touching the device
///   running, checkpoint trips -> kCancelled (outputs discarded)
///   algorithm throws -> kFailed with the message
///   otherwise -> kOk with the payload

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gpu_sim/context.hpp"
#include "service/admission.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"
#include "service/result_cache.hpp"
#include "service/stats.hpp"

namespace service {

/// Which registered backend the workers run queries on. Both worker-side
/// backends produce bytes identical to the Sequential oracle (the three-way
/// differential fuzz suite enforces it), so the mode changes placement and
/// cost, never results.
enum class BackendMode {
  /// Pick per query by graph size: nnz below ExecutorOptions::crossover_nnz
  /// runs on CpuPar (small graphs don't amortize device upload + launch
  /// overhead), at or above it on GpuSim.
  kAuto = 0,
  kForceGpuSim,    ///< every query on the simulated GPU
  kForceCpuPar,    ///< every query on the parallel CPU backend
  kForceGpuShard,  ///< every query on the sharded multi-context GPU backend
};

inline const char* to_string(BackendMode m) {
  switch (m) {
    case BackendMode::kAuto: return "auto";
    case BackendMode::kForceGpuSim: return "force-gpusim";
    case BackendMode::kForceCpuPar: return "force-cpupar";
    case BackendMode::kForceGpuShard: return "force-gpushard";
  }
  return "unknown";
}

struct ExecutorOptions {
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  /// Fraction of each worker device's global memory the graph cache may
  /// hold resident (per worker — caches are private).
  double cache_memory_fraction = 0.5;
  /// Properties for each worker's simulated device.
  gpu_sim::DeviceProperties device_properties{};

  /// Worker-side backend placement (see BackendMode).
  BackendMode backend_mode = BackendMode::kAuto;
  /// kAuto crossover: graphs with nnz strictly below this run on CpuPar.
  /// Default sits near the wall-clock crossover bench_backend_crossover
  /// measures for PageRank (device launch+upload overhead vs. a handful of
  /// CPU threads).
  std::size_t crossover_nnz = 1u << 15;
  /// Threads in each worker's private CpuPar pool; 0 means
  /// grb::cpupar_backend::default_worker_count().
  std::size_t cpupar_threads = 0;

  /// Simulated device contexts per worker for the GpuShard backend: the
  /// worker's home context plus shard_contexts-1 extras, installed as the
  /// worker's gpu_sim placement. With > 1, kAuto routes a bfs/sssp/components
  /// query whose CSR exceeds one context's arena through the sharded path
  /// instead of failing with DeviceBadAlloc (docs/sharding.md).
  std::size_t shard_contexts = 1;
};

class QueryExecutor {
 public:
  QueryExecutor(std::shared_ptr<GraphStore> store, ExecutorOptions options);
  /// Drains queued work, then joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Submit a query. Always returns a future that WILL be fulfilled: with
  /// kShed right here when the admission queue is full (or the executor is
  /// shut down), otherwise by the worker that runs or cancels the query.
  std::future<QueryResult> submit(QueryRequest req);

  /// Stop admitting and wait for the workers to finish. With
  /// @p cancel_pending, queries still waiting in the queue are resolved
  /// kCancelled instead of being run. Idempotent.
  void shutdown(bool cancel_pending = false);

  /// Snapshot of the lifetime counters (copy; diff two snapshots to
  /// measure a region, as with gpu_sim::DeviceStats).
  ServiceStats stats() const;

  const ExecutorOptions& options() const { return options_; }

  /// The serial oracle: run @p req to completion (no deadline, no queue) on
  /// the sequential backend. The stress tests diff executor kOk results
  /// against this bit-for-bit.
  static QueryResult execute_serial(const GraphStore& store,
                                    const QueryRequest& req);

  /// Same oracle pinned to an explicit snapshot — under concurrent mutation
  /// the store's head may have moved past the version a result was stamped
  /// with, so the stress suite replays against the exact snapshot instead.
  static QueryResult execute_serial_on(const GraphSnapshot& snap,
                                       const QueryRequest& req);

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point admitted;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_main(std::size_t worker_index);
  void resolve(Job& job, QueryResult res);

  const std::shared_ptr<GraphStore> store_;
  const ExecutorOptions options_;

  /// Per-(graph, kind) incremental results, shared by ALL workers: the query
  /// that produced version v's result and the one that warm-starts from it
  /// on v+1 may land on different workers, so lineage cannot live in
  /// worker-local state (unlike the matrix caches, which are placement).
  ResultCache result_cache_;

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  bool shut_down_ = false;  // guarded by stats_mutex_
};

}  // namespace service
