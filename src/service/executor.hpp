#pragma once

/// @file executor.hpp
/// Deadline-aware concurrent query executor. N worker threads, each owning a
/// *private* gpu_sim::Context (installed thread-locally via ScopedDevice) and
/// a private DeviceGraphCache, pull typed queries from a bounded admission
/// queue and run them through the unchanged algorithms:: entry points.
///
/// Placement, not math: a query produces the same bits no matter which
/// worker runs it or what else runs beside it — the stress suite diffs every
/// concurrent result against a serial run to enforce this.
///
/// Lifecycle of one submit():
///   full queue  -> future resolves kShed immediately (load shedding)
///   queued past deadline -> kCancelled without touching the device
///   running, checkpoint trips -> kCancelled (outputs discarded)
///   algorithm throws -> kFailed with the message
///   otherwise -> kOk with the payload

#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gpu_sim/context.hpp"
#include "service/admission.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"
#include "service/stats.hpp"

namespace service {

struct ExecutorOptions {
  std::size_t workers = 2;
  std::size_t queue_capacity = 64;
  /// Fraction of each worker device's global memory the graph cache may
  /// hold resident (per worker — caches are private).
  double cache_memory_fraction = 0.5;
  /// Properties for each worker's simulated device.
  gpu_sim::DeviceProperties device_properties{};
};

class QueryExecutor {
 public:
  QueryExecutor(std::shared_ptr<GraphStore> store, ExecutorOptions options);
  /// Drains queued work, then joins the workers.
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Submit a query. Always returns a future that WILL be fulfilled: with
  /// kShed right here when the admission queue is full (or the executor is
  /// shut down), otherwise by the worker that runs or cancels the query.
  std::future<QueryResult> submit(QueryRequest req);

  /// Stop admitting and wait for the workers to finish. With
  /// @p cancel_pending, queries still waiting in the queue are resolved
  /// kCancelled instead of being run. Idempotent.
  void shutdown(bool cancel_pending = false);

  /// Snapshot of the lifetime counters (copy; diff two snapshots to
  /// measure a region, as with gpu_sim::DeviceStats).
  ServiceStats stats() const;

  const ExecutorOptions& options() const { return options_; }

  /// The serial oracle: run @p req to completion (no deadline, no queue) on
  /// the sequential backend. The stress tests diff executor kOk results
  /// against this bit-for-bit.
  static QueryResult execute_serial(const GraphStore& store,
                                    const QueryRequest& req);

 private:
  struct Job {
    QueryRequest request;
    std::promise<QueryResult> promise;
    std::chrono::steady_clock::time_point admitted;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_main(std::size_t worker_index);
  void resolve(Job& job, QueryResult res);

  const std::shared_ptr<GraphStore> store_;
  const ExecutorOptions options_;

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  bool shut_down_ = false;  // guarded by stats_mutex_
};

}  // namespace service
