#include "service/executor.hpp"

#include <utility>

#include <algorithm>

#include "backend_cpupar/pool.hpp"
#include "gpu_sim/placement.hpp"
#include "gpu_sim/thread_pool.hpp"
#include "service/dispatch.hpp"
#include "sparse/fusion_plan.hpp"

namespace service {

using Clock = std::chrono::steady_clock;

QueryExecutor::QueryExecutor(std::shared_ptr<GraphStore> store,
                             ExecutorOptions options)
    : store_(std::move(store)),
      options_(options),
      queue_(options.queue_capacity) {
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

QueryExecutor::~QueryExecutor() { shutdown(/*cancel_pending=*/false); }

std::future<QueryResult> QueryExecutor::submit(QueryRequest req) {
  Job job;
  job.request = std::move(req);
  job.admitted = Clock::now();
  if (job.request.timeout)
    job.deadline = job.admitted + *job.request.timeout;
  std::future<QueryResult> future = job.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }

  if (!queue_.try_push(std::move(job))) {
    // Queue full (or shut down): shed at admission. try_push left the job
    // intact on failure, so its promise still backs `future`.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
    }
    QueryResult res;
    res.status = QueryStatus::kShed;
    res.error = "admission queue full";
    job.promise.set_value(std::move(res));
  }
  return future;
}

void QueryExecutor::shutdown(bool cancel_pending) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  if (cancel_pending) {
    // Race the workers for the remaining items; both sides pop safely.
    while (auto job = queue_.pop()) {
      QueryResult res;
      res.status = QueryStatus::kCancelled;
      res.error = "executor shut down before the query ran";
      resolve(*job, std::move(res));
    }
  }
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

ServiceStats QueryExecutor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void QueryExecutor::resolve(Job& job, QueryResult res) {
  res.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - job.admitted);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (res.status) {
      case QueryStatus::kOk: ++stats_.completed; break;
      case QueryStatus::kCancelled: ++stats_.cancelled; break;
      case QueryStatus::kFailed: ++stats_.failed; break;
      case QueryStatus::kShed:  // shed is counted at submit()
      case QueryStatus::kCount: break;
    }
    stats_.latency.record(res.latency);
  }
  job.promise.set_value(std::move(res));
}

void QueryExecutor::worker_main(std::size_t worker_index) {
  // This worker's private simulated GPU. Thread-locally installed, so the
  // backend objects the queries build all land in this context — concurrent
  // queries never contend on (or corrupt) a shared device.
  gpu_sim::Context ctx{options_.device_properties, /*worker_count=*/1};
  gpu_sim::ScopedDevice bind(ctx);

  // The worker's shard placement: its home context plus shard_contexts-1
  // private extras, all with the same properties. Sharded matrices built by
  // this worker pin their row blocks round-robin over this list; with
  // shard_contexts == 1 the placement degenerates to {&ctx} and GpuShard
  // runs single-shard.
  std::vector<std::unique_ptr<gpu_sim::Context>> extra_ctxs;
  std::vector<gpu_sim::Context*> placement{&ctx};
  for (std::size_t s = 1; s < options_.shard_contexts; ++s) {
    extra_ctxs.push_back(std::make_unique<gpu_sim::Context>(
        options_.device_properties, /*worker_count=*/1));
    placement.push_back(extra_ctxs.back().get());
  }
  gpu_sim::ScopedPlacement bind_placement(placement);

  const auto budget = static_cast<std::size_t>(
      options_.cache_memory_fraction *
      static_cast<double>(ctx.properties().total_global_memory));
  DeviceGraphCache cache(ctx, budget);

  // This worker's private CpuPar pool + host matrix cache, the CPU-side
  // analogue of the context/cache pair above. ScopedPool is the thread-pool
  // ScopedDevice: any CpuPar op this worker runs lands on this pool.
  const std::size_t cpu_threads =
      options_.cpupar_threads != 0
          ? options_.cpupar_threads
          : grb::cpupar_backend::default_worker_count();
  gpu_sim::ThreadPool cpu_pool{cpu_threads};
  grb::cpupar_backend::ScopedPool bind_pool(cpu_pool);
  HostGraphCache host_cache;

  while (auto job = queue_.pop()) {
    QueryResult res;
    res.worker = worker_index;

    grb::ExecutionPolicy policy;
    if (job->deadline) policy.set_deadline(*job->deadline);
    if (job->request.cancel) policy.set_cancel_token(job->request.cancel);

    if (policy.expired() || policy.cancelled()) {
      // Aged out while queued (or the caller already gave up): resolve
      // without touching the store or the device.
      res.status = QueryStatus::kCancelled;
      res.error = policy.cancelled() ? "cancelled while queued"
                                     : "deadline passed while queued";
      resolve(*job, std::move(res));
      continue;
    }

    const SnapshotPtr snap = store_->get(job->request.graph);
    if (snap == nullptr) {
      res.status = QueryStatus::kFailed;
      res.error = "unknown graph: " + job->request.graph;
      resolve(*job, std::move(res));
      continue;
    }

    // Sharded routing: forced, or — under kAuto with a multi-context
    // placement — a whole-graph query whose CSR exceeds this worker's
    // arena. Only the algorithms built purely from mxv/vxm + vector ops
    // have a sharded path (pagerank/triangle-count delegate matrix-wide
    // ops through a monolithic view, which is exactly what oversized
    // graphs cannot build), so kAuto restricts to those.
    const bool shardable_kind =
        job->request.kind == QueryKind::kBfs ||
        job->request.kind == QueryKind::kSssp ||
        job->request.kind == QueryKind::kConnectedComponents;
    const bool use_gpushard =
        options_.backend_mode == BackendMode::kForceGpuShard ||
        (options_.backend_mode == BackendMode::kAuto &&
         options_.shard_contexts > 1 && shardable_kind &&
         snap->device_csr_bytes_estimate() >
             ctx.properties().total_global_memory);
    const bool use_cpupar =
        !use_gpushard &&
        (options_.backend_mode == BackendMode::kForceCpuPar ||
         (options_.backend_mode == BackendMode::kAuto &&
          snap->edges.num_edges() < options_.crossover_nnz));
    {
      // The query is now mid-flight: it passed the queued-expiry checks and
      // is about to run. Tests event-wait on this counter.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.started;
    }
    try {
      const std::size_t worker = res.worker;
      if (use_gpushard) {
        const auto before = ctx.stats();
        const ShardedMatrixPtr graph = cache.get_or_upload_sharded(snap);
        res = run_query_on<grb::GpuShard>(*graph, job->request, policy);
        const auto delta = ctx.stats() - before;
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.shards_active =
            std::max(stats_.shards_active, delta.shards_active);
        stats_.halo_bytes_exchanged += delta.halo_bytes_exchanged;
        stats_.halo_seconds_hidden += delta.halo_seconds_hidden;
      } else if (use_cpupar) {
        const HostMatrixPtr graph = host_cache.get_or_build(snap);
        res = run_query_on<grb::CpuPar>(*graph, job->request, policy);
      } else {
        const DeviceMatrixPtr graph = cache.get_or_upload(snap);
        res = run_query_on<grb::GpuSim>(*graph, job->request, policy);
      }
      res.worker = worker;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        if (use_gpushard)
          ++stats_.ran_gpushard;
        else if (use_cpupar)
          ++stats_.ran_cpupar;
        else
          ++stats_.ran_gpusim;
      }
    } catch (const std::exception& e) {
      res.status = QueryStatus::kFailed;
      res.error = e.what();
    }
    // Backend boundary: drain this worker's lazy op-DAG and every context
    // of its placement before the result is published, so no recorded op
    // or in-flight shard transfer survives into the next query (or into
    // this worker's context teardown).
    sparse::fusion_sync_all();
    gpu_sim::sync_placement();
    resolve(*job, std::move(res));
  }
}

QueryResult QueryExecutor::execute_serial(const GraphStore& store,
                                          const QueryRequest& req) {
  QueryResult res;
  const SnapshotPtr snap = store.get(req.graph);
  if (snap == nullptr) {
    res.status = QueryStatus::kFailed;
    res.error = "unknown graph: " + req.graph;
    return res;
  }
  const auto graph =
      gbtl_graph::to_matrix<double, grb::Sequential>(snap->edges);
  // run_query_on stamps res.backend = "sequential".
  return run_query_on<grb::Sequential>(graph, req, grb::ExecutionPolicy{});
}

}  // namespace service
