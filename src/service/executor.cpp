#include "service/executor.hpp"

#include <utility>

#include <algorithm>

#include "backend_cpupar/pool.hpp"
#include "gpu_sim/placement.hpp"
#include "gpu_sim/thread_pool.hpp"
#include "service/dispatch.hpp"
#include "sparse/fusion_plan.hpp"

namespace service {

using Clock = std::chrono::steady_clock;

QueryExecutor::QueryExecutor(std::shared_ptr<GraphStore> store,
                             ExecutorOptions options)
    : store_(std::move(store)),
      options_(options),
      queue_(options.queue_capacity) {
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
}

QueryExecutor::~QueryExecutor() { shutdown(/*cancel_pending=*/false); }

std::future<QueryResult> QueryExecutor::submit(QueryRequest req) {
  Job job;
  job.request = std::move(req);
  job.admitted = Clock::now();
  if (job.request.timeout)
    job.deadline = job.admitted + *job.request.timeout;
  std::future<QueryResult> future = job.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }

  if (!queue_.try_push(std::move(job))) {
    // Queue full (or shut down): shed at admission. try_push left the job
    // intact on failure, so its promise still backs `future`.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed;
    }
    QueryResult res;
    res.status = QueryStatus::kShed;
    res.error = "admission queue full";
    job.promise.set_value(std::move(res));
  }
  return future;
}

void QueryExecutor::shutdown(bool cancel_pending) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  if (cancel_pending) {
    // Race the workers for the remaining items; both sides pop safely.
    while (auto job = queue_.pop()) {
      QueryResult res;
      res.status = QueryStatus::kCancelled;
      res.error = "executor shut down before the query ran";
      resolve(*job, std::move(res));
    }
  }
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

ServiceStats QueryExecutor::stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  // The store owns the mutation-side counters; merge them in here so one
  // snapshot answers both "what did the workers do" and "what happened to
  // the graphs they did it to". Taken outside stats_mutex_ — the store has
  // its own lock and nesting the two would order them needlessly.
  const StoreStats store = store_->stats();
  snapshot.mutations = store.mutations;
  snapshot.compactions = store.compactions;
  snapshot.edges_added = store.edges_added;
  snapshot.edges_removed = store.edges_removed;
  // The result cache counts its own evictions (it owns the LRU policy);
  // merged here for the same one-snapshot reason.
  snapshot.result_cache_evictions = result_cache_.evictions();
  return snapshot;
}

void QueryExecutor::resolve(Job& job, QueryResult res) {
  res.latency = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - job.admitted);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (res.status) {
      case QueryStatus::kOk: ++stats_.completed; break;
      case QueryStatus::kCancelled: ++stats_.cancelled; break;
      case QueryStatus::kFailed: ++stats_.failed; break;
      case QueryStatus::kShed:  // shed is counted at submit()
      case QueryStatus::kCount: break;
    }
    stats_.latency.record(res.latency);
  }
  job.promise.set_value(std::move(res));
}

void QueryExecutor::worker_main(std::size_t worker_index) {
  // This worker's private simulated GPU. Thread-locally installed, so the
  // backend objects the queries build all land in this context — concurrent
  // queries never contend on (or corrupt) a shared device.
  gpu_sim::Context ctx{options_.device_properties, /*worker_count=*/1};
  gpu_sim::ScopedDevice bind(ctx);

  // The worker's shard placement: its home context plus shard_contexts-1
  // private extras, all with the same properties. Sharded matrices built by
  // this worker pin their row blocks round-robin over this list; with
  // shard_contexts == 1 the placement degenerates to {&ctx} and GpuShard
  // runs single-shard.
  std::vector<std::unique_ptr<gpu_sim::Context>> extra_ctxs;
  std::vector<gpu_sim::Context*> placement{&ctx};
  for (std::size_t s = 1; s < options_.shard_contexts; ++s) {
    extra_ctxs.push_back(std::make_unique<gpu_sim::Context>(
        options_.device_properties, /*worker_count=*/1));
    placement.push_back(extra_ctxs.back().get());
  }
  gpu_sim::ScopedPlacement bind_placement(placement);

  const auto budget = static_cast<std::size_t>(
      options_.cache_memory_fraction *
      static_cast<double>(ctx.properties().total_global_memory));
  DeviceGraphCache cache(ctx, budget);

  // This worker's private CpuPar pool + host matrix cache, the CPU-side
  // analogue of the context/cache pair above. ScopedPool is the thread-pool
  // ScopedDevice: any CpuPar op this worker runs lands on this pool.
  const std::size_t cpu_threads =
      options_.cpupar_threads != 0
          ? options_.cpupar_threads
          : grb::cpupar_backend::default_worker_count();
  gpu_sim::ThreadPool cpu_pool{cpu_threads};
  grb::cpupar_backend::ScopedPool bind_pool(cpu_pool);
  HostGraphCache host_cache;

  // Last store mutation epoch this worker swept its device cache at. The
  // sweep (invalidate_retired) drops entries whose version/generation is no
  // longer any graph's current one — LRU aging alone would keep a retired
  // version resident (and billed against the budget) for as long as queries
  // keep the cache warm.
  std::uint64_t last_epoch = store_->mutation_epoch();

  while (auto job = queue_.pop()) {
    const std::uint64_t epoch = store_->mutation_epoch();
    if (epoch != last_epoch) {
      const std::size_t dropped = cache.invalidate_retired(*store_);
      last_epoch = epoch;
      if (dropped != 0) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.cache_invalidations += dropped;
      }
    }

    QueryResult res;
    res.worker = worker_index;

    grb::ExecutionPolicy policy;
    if (job->deadline) policy.set_deadline(*job->deadline);
    if (job->request.cancel) policy.set_cancel_token(job->request.cancel);

    if (policy.expired() || policy.cancelled()) {
      // Aged out while queued (or the caller already gave up): resolve
      // without touching the store or the device.
      res.status = QueryStatus::kCancelled;
      res.error = policy.cancelled() ? "cancelled while queued"
                                     : "deadline passed while queued";
      resolve(*job, std::move(res));
      continue;
    }

    const SnapshotPtr snap = store_->get(job->request.graph);
    if (snap == nullptr) {
      res.status = QueryStatus::kFailed;
      res.error = "unknown graph: " + job->request.graph;
      resolve(*job, std::move(res));
      continue;
    }

    // Sharded routing: forced, or — under kAuto with a multi-context
    // placement — a whole-graph query whose CSR exceeds this worker's
    // arena. Only the algorithms built purely from mxv/vxm + vector ops
    // have a sharded path (pagerank/triangle-count delegate matrix-wide
    // ops through a monolithic view, which is exactly what oversized
    // graphs cannot build), so kAuto restricts to those.
    const bool shardable_kind =
        job->request.kind == QueryKind::kBfs ||
        job->request.kind == QueryKind::kSssp ||
        job->request.kind == QueryKind::kConnectedComponents;
    const bool use_gpushard =
        options_.backend_mode == BackendMode::kForceGpuShard ||
        (options_.backend_mode == BackendMode::kAuto &&
         options_.shard_contexts > 1 && shardable_kind &&
         snap->device_csr_bytes_estimate() >
             ctx.properties().total_global_memory);
    const bool use_cpupar =
        !use_gpushard &&
        (options_.backend_mode == BackendMode::kForceCpuPar ||
         (options_.backend_mode == BackendMode::kAuto &&
          snap->num_edges() < options_.crossover_nnz));
    {
      // The query is now mid-flight: it passed the queued-expiry checks and
      // is about to run. Tests event-wait on this counter.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.started;
    }
    try {
      const std::size_t worker = res.worker;
      // Incremental recompute applies to the two iterative kinds only, and
      // never on the sharded path (GpuShard has no overlay kernels — an
      // oversized graph always solves cold).
      const bool incremental_kind =
          job->request.kind == QueryKind::kPageRank ||
          job->request.kind == QueryKind::kConnectedComponents;
      std::optional<CachedQueryResult> prev;
      if (job->request.incremental && incremental_kind && !use_gpushard)
        prev = result_cache_.get(job->request.graph, job->request.kind);

      const bool replay =
          prev && prev->version == snap->version &&
          (job->request.kind != QueryKind::kPageRank ||
           (prev->damping == job->request.damping &&
            prev->tol == job->request.tol &&
            prev->max_iterations == job->request.max_iterations));
      const bool warm =
          !replay && prev && warm_start_eligible(*snap, *prev, job->request);

      if (replay) {
        // Exact-version hit: the cached payload IS this snapshot's answer.
        // No backend runs; warm_start carries over so verifiers know which
        // oracle (cold or warm) the replayed bits came from.
        res.status = QueryStatus::kOk;
        res.indices = prev->indices;
        res.ivals = prev->ivals;
        res.dvals = prev->dvals;
        res.scalar = prev->scalar;
        res.warm_start = prev->warm_start;
        res.backend = "result-cache";
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.result_cache_hits;
      } else if (warm) {
        if (job->request.kind == QueryKind::kConnectedComponents) {
          // Overlay-aware: needs the BASE matrix (keyed by generation, so
          // successive versions on one base share a single upload) plus the
          // snapshot's delta overlay, streamed in by the overlay ops.
          if (use_cpupar) {
            const HostMatrixPtr base = host_cache.get_or_build_base(snap);
            res = run_incremental_cc<grb::CpuPar>(*base, *snap, *prev,
                                                  policy);
          } else {
            const DeviceMatrixPtr base = cache.get_or_upload_base(snap);
            res = run_incremental_cc<grb::GpuSim>(*base, *snap, *prev,
                                                  policy);
          }
        } else {
          // Warm PageRank iterates the full merged operator — only the
          // starting iterate changes, so it uses the merged matrix.
          if (use_cpupar) {
            const HostMatrixPtr graph = host_cache.get_or_build(snap);
            res = run_warm_pagerank<grb::CpuPar>(*graph, *prev,
                                                 job->request, policy);
          } else {
            const DeviceMatrixPtr graph = cache.get_or_upload(snap);
            res = run_warm_pagerank<grb::GpuSim>(*graph, *prev,
                                                 job->request, policy);
          }
        }
        std::lock_guard<std::mutex> lock(stats_mutex_);
        if (use_cpupar)
          ++stats_.ran_cpupar;
        else
          ++stats_.ran_gpusim;
        if (res.status == QueryStatus::kOk) ++stats_.warm_starts;
      } else {
        if (use_gpushard) {
          const auto before = ctx.stats();
          const ShardedMatrixPtr graph = cache.get_or_upload_sharded(snap);
          res = run_query_on<grb::GpuShard>(*graph, job->request, policy);
          const auto delta = ctx.stats() - before;
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.shards_active =
              std::max(stats_.shards_active, delta.shards_active);
          stats_.halo_bytes_exchanged += delta.halo_bytes_exchanged;
          stats_.halo_seconds_hidden += delta.halo_seconds_hidden;
        } else if (use_cpupar) {
          const HostMatrixPtr graph = host_cache.get_or_build(snap);
          res = run_query_on<grb::CpuPar>(*graph, job->request, policy);
        } else {
          const DeviceMatrixPtr graph = cache.get_or_upload(snap);
          res = run_query_on<grb::GpuSim>(*graph, job->request, policy);
        }
        std::lock_guard<std::mutex> lock(stats_mutex_);
        if (use_gpushard)
          ++stats_.ran_gpushard;
        else if (use_cpupar)
          ++stats_.ran_cpupar;
        else
          ++stats_.ran_gpusim;
        // Incremental was requested but lineage / eligibility said no —
        // count the cold solve so tests (and operators) can see fallbacks.
        if (job->request.incremental && incremental_kind)
          ++stats_.cold_fallbacks;
      }
      res.worker = worker;
      if (job->request.incremental && incremental_kind &&
          res.status == QueryStatus::kOk)
        result_cache_.put(job->request.graph, job->request.kind,
                          to_cached(res, snap->version, job->request));
    } catch (const std::exception& e) {
      res.status = QueryStatus::kFailed;
      res.error = e.what();
    }
    res.version = snap->version;
    // Backend boundary: drain this worker's lazy op-DAG and every context
    // of its placement before the result is published, so no recorded op
    // or in-flight shard transfer survives into the next query (or into
    // this worker's context teardown).
    sparse::fusion_sync_all();
    gpu_sim::sync_placement();
    resolve(*job, std::move(res));
  }
}

QueryResult QueryExecutor::execute_serial(const GraphStore& store,
                                          const QueryRequest& req) {
  const SnapshotPtr snap = store.get(req.graph);
  if (snap == nullptr) {
    QueryResult res;
    res.status = QueryStatus::kFailed;
    res.error = "unknown graph: " + req.graph;
    return res;
  }
  return execute_serial_on(*snap, req);
}

QueryResult QueryExecutor::execute_serial_on(const GraphSnapshot& snap,
                                             const QueryRequest& req) {
  // The oracle always solves the MERGED graph monolithically — overlay and
  // base folded back into one CSR — which is exactly what the overlay-aware
  // paths must be bit-identical to.
  const auto graph =
      gbtl_graph::to_matrix<double, grb::Sequential>(snap.materialize());
  // run_query_on stamps res.backend = "sequential".
  QueryResult res =
      run_query_on<grb::Sequential>(graph, req, grb::ExecutionPolicy{});
  res.version = snap.version;
  return res;
}

}  // namespace service
