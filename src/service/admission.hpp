#pragma once

/// @file admission.hpp
/// Admission control primitive: a bounded MPMC queue whose push *fails fast*
/// instead of blocking. The executor turns a failed push into a kShed
/// result, which is the load-shedding policy — clients learn immediately
/// that the service is saturated rather than piling latency onto everything
/// behind them in an unbounded backlog.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace service {

/// Bounded FIFO handoff queue. Producers never block: try_push refuses when
/// the queue is at capacity (or closed). Consumers block in pop until an
/// item arrives or the queue is closed *and* drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue if there is room. @returns false when full or closed — the
  /// caller owns the shed decision, and on failure @p item is NOT consumed
  /// (it is only moved from when actually admitted).
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeue the oldest item, blocking while the queue is open but empty.
  /// @returns nullopt once the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stop admitting; wake every blocked consumer. Items already queued are
  /// still handed out (drain semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace service
