#pragma once

/// @file result_cache.hpp
/// Per-version query-result cache for incremental recompute — the result
/// sibling of DeviceGraphCache's (name, version) keying. The executor
/// stores each incremental PageRank / ConnectedComponents result under
/// (graph, kind) with the version it ran against; the next incremental
/// query on the same (graph, kind) either replays it verbatim (same
/// version) or warm-starts from it (direct successor version, see
/// dispatch.hpp). Shared by all workers — incremental lineage must survive
/// whichever worker dequeues the next query — so access is mutexed; the
/// payloads are copied in and out, never shared.
///
/// The cache is bounded: at most @p max_entries (graph, kind) slots live at
/// once, evicted least-recently-used. Payloads hold full per-vertex result
/// vectors, so an unbounded map would grow with every graph a long-lived
/// service ever touched; LRU keeps the live working set (hot graphs keep
/// their lineage, idle ones age out and simply cold-start on return).

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gbtl/types.hpp"
#include "service/query.hpp"

namespace service {

/// A cached solve: the payload plus everything that must match for a warm
/// start to be meaningful (version lineage, and for PageRank the solver
/// knobs — warm-starting toward a different fixpoint would be wrong).
struct CachedQueryResult {
  std::uint64_t version = 0;
  double damping = 0.85;
  double tol = 1e-8;
  grb::IndexType max_iterations = 100;
  /// Whether the cached payload itself came from a warm start — replayed
  /// results carry the flag forward so verifiers know which oracle to
  /// compare against (warm PageRank is trajectory-dependent).
  bool warm_start = false;

  grb::IndexArrayType indices;
  std::vector<grb::IndexType> ivals;
  std::vector<double> dvals;
  std::uint64_t scalar = 0;
};

class ResultCache {
 public:
  /// Default slot bound: generous for the test/bench graph counts, small
  /// against the per-slot payload (two per-vertex vectors).
  static constexpr std::size_t kDefaultMaxEntries = 128;

  explicit ResultCache(std::size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries > 0 ? max_entries : 1) {}

  /// Latest cached result for (graph, kind), or nullopt. A hit refreshes
  /// the slot's recency.
  std::optional<CachedQueryResult> get(const std::string& graph,
                                       QueryKind kind) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find({graph, kind});
    if (it == entries_.end()) return std::nullopt;
    touch(it->second);
    return it->second.result;
  }

  /// Publish @p result as the latest for (graph, kind). Stale writers lose:
  /// a result for an older version than the cached one is dropped, so
  /// out-of-order worker completions can't roll lineage backwards. (A
  /// dropped stale write still counts as a use of the slot — the lineage it
  /// raced with is demonstrably live.)
  void put(const std::string& graph, QueryKind kind,
           CachedQueryResult result) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{graph, kind};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      touch(it->second);
      if (it->second.result.version > result.version) return;
      it->second.result = std::move(result);
      return;
    }
    if (entries_.size() >= max_entries_) evict_lru();
    auto& slot = entries_[key];
    slot.result = std::move(result);
    lru_.push_front(key);
    slot.lru_pos = lru_.begin();
  }

  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  std::size_t max_entries() const { return max_entries_; }

  /// Slots dropped by the LRU bound since construction.
  std::uint64_t evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
  }

 private:
  using Key = std::pair<std::string, QueryKind>;

  struct Slot {
    CachedQueryResult result;
    std::list<Key>::iterator lru_pos;
  };

  /// Move a slot to the recency front (callers hold the mutex).
  void touch(const Slot& slot) const {
    lru_.splice(lru_.begin(), lru_, slot.lru_pos);
  }

  void evict_lru() {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }

  const std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::map<Key, Slot> entries_;
  mutable std::list<Key> lru_;  ///< front = most recently used
  std::uint64_t evictions_ = 0;
};

}  // namespace service
