#pragma once

/// @file result_cache.hpp
/// Per-version query-result cache for incremental recompute — the result
/// sibling of DeviceGraphCache's (name, version) keying. The executor
/// stores each incremental PageRank / ConnectedComponents result under
/// (graph, kind) with the version it ran against; the next incremental
/// query on the same (graph, kind) either replays it verbatim (same
/// version) or warm-starts from it (direct successor version, see
/// dispatch.hpp). Shared by all workers — incremental lineage must survive
/// whichever worker dequeues the next query — so access is mutexed; the
/// payloads are copied in and out, never shared.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "gbtl/types.hpp"
#include "service/query.hpp"

namespace service {

/// A cached solve: the payload plus everything that must match for a warm
/// start to be meaningful (version lineage, and for PageRank the solver
/// knobs — warm-starting toward a different fixpoint would be wrong).
struct CachedQueryResult {
  std::uint64_t version = 0;
  double damping = 0.85;
  double tol = 1e-8;
  grb::IndexType max_iterations = 100;
  /// Whether the cached payload itself came from a warm start — replayed
  /// results carry the flag forward so verifiers know which oracle to
  /// compare against (warm PageRank is trajectory-dependent).
  bool warm_start = false;

  grb::IndexArrayType indices;
  std::vector<grb::IndexType> ivals;
  std::vector<double> dvals;
  std::uint64_t scalar = 0;
};

class ResultCache {
 public:
  /// Latest cached result for (graph, kind), or nullopt.
  std::optional<CachedQueryResult> get(const std::string& graph,
                                       QueryKind kind) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find({graph, kind});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Publish @p result as the latest for (graph, kind). Stale writers lose:
  /// a result for an older version than the cached one is dropped, so
  /// out-of-order worker completions can't roll lineage backwards.
  void put(const std::string& graph, QueryKind kind,
           CachedQueryResult result) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = entries_[{graph, kind}];
    if (slot.version > result.version) return;
    slot = std::move(result);
  }

  std::size_t entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, QueryKind>, CachedQueryResult> entries_;
};

}  // namespace service
