#include "service/graph_store.hpp"

#include <algorithm>
#include <utility>

#include "gpu_sim/error.hpp"
#include "gpu_sim/placement.hpp"

namespace service {

// --- GraphStore ------------------------------------------------------------

SnapshotPtr GraphStore::add(std::string name, gbtl_graph::EdgeList edges) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = graphs_[name];
  auto snap = std::make_shared<GraphSnapshot>();
  snap->name = std::move(name);
  snap->version = (slot != nullptr) ? slot->version + 1 : 1;
  // A bulk load severs incremental lineage (prev_version 0) and starts a
  // fresh base generation so base-keyed cache entries can't alias.
  snap->base_generation =
      (slot != nullptr) ? slot->base_generation + 1 : 1;
  snap->base = gbtl_graph::build_base_csr(edges);
  snap->live_nnz = snap->base->num_edges();
  slot = snap;  // the old snapshot lives on in whoever still holds it
  mutation_epoch_.fetch_add(1, std::memory_order_release);
  return slot;
}

SnapshotPtr GraphStore::apply_edges(const std::string& name,
                                    const gbtl_graph::EdgeList& adds,
                                    const gbtl_graph::EdgeList& removes,
                                    const gbtl_graph::CompactionPolicy& policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = graphs_.find(name);
  if (it == graphs_.end()) return nullptr;
  const SnapshotPtr& prev = it->second;

  auto applied = gbtl_graph::apply_updates(
      *prev->base, prev->overlay.get(), prev->live_nnz, adds, removes);

  auto snap = std::make_shared<GraphSnapshot>();
  snap->name = name;
  snap->version = prev->version + 1;
  snap->prev_version = prev->version;
  snap->base = prev->base;  // shared, not rebuilt: the O(delta) publish
  snap->base_generation = prev->base_generation;
  snap->overlay = applied.overlay;
  snap->live_nnz = applied.live_nnz;
  snap->affected = std::move(applied.affected);
  snap->structural_removals = applied.structural_removals;

  if (snap->overlay != nullptr &&
      policy.should_compact(snap->overlay->nnz(), snap->base->num_edges())) {
    snap->base = gbtl_graph::compact(*snap->base, *snap->overlay);
    snap->overlay = nullptr;
    ++snap->base_generation;
    ++stats_.compactions;
  }

  ++stats_.mutations;
  stats_.edges_added += applied.edges_added;
  stats_.edges_removed += applied.edges_removed;
  it->second = snap;
  mutation_epoch_.fetch_add(1, std::memory_order_release);
  return snap;
}

SnapshotPtr GraphStore::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = graphs_.find(name);
  return it != graphs_.end() ? it->second : nullptr;
}

std::vector<std::string> GraphStore::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(graphs_.size());
  for (const auto& [name, snap] : graphs_) out.push_back(name);
  return out;
}

std::size_t GraphStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return graphs_.size();
}

StoreStats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// --- DeviceGraphCache ------------------------------------------------------

DeviceGraphCache::DeviceGraphCache(gpu_sim::Context& ctx,
                                   std::size_t budget_bytes)
    : ctx_(ctx), budget_bytes_(budget_bytes) {}

DeviceMatrixPtr DeviceGraphCache::get_or_upload(const SnapshotPtr& snap) {
  // The worker must have bound ctx_ as this thread's device before calling;
  // uploading into someone else's arena would corrupt the budget accounting
  // and defeat the per-worker isolation the cache exists to provide.
  if (&gpu_sim::device() != &ctx_)
    throw gpu_sim::DeviceError(
        "DeviceGraphCache used without its context bound (ScopedDevice)");

  if (Entry* hit = find_mru(snap->name, Kind::kMerged, snap->version)) {
    ++stats_.hits;
    return hit->matrix;
  }
  ++stats_.misses;

  const std::size_t bytes = snap->device_bytes_estimate();
  // Make room first so the upload itself has the best chance of fitting.
  while (!entries_.empty() &&
         stats_.resident_bytes + bytes > budget_bytes_)
    evict_lru();

  auto do_upload = [&] {
    return std::make_shared<const grb::Matrix<double, grb::GpuSim>>(
        gbtl_graph::to_matrix<double, grb::GpuSim>(snap->materialize()));
  };
  DeviceMatrixPtr matrix;
  try {
    matrix = do_upload();
  } catch (const gpu_sim::DeviceBadAlloc&) {
    // The estimate undershot or non-cache allocations crowded us out: drop
    // everything cached, trim the pool's freelists, and retry once.
    evict_all();
    ctx_.trim();
    matrix = do_upload();
  }

  Entry entry;
  entry.name = snap->name;
  entry.kind = Kind::kMerged;
  entry.key = snap->version;
  entry.matrix = matrix;
  entry.bytes = bytes;
  insert_within_budget(std::move(entry));
  return matrix;
}

DeviceMatrixPtr DeviceGraphCache::get_or_upload_base(const SnapshotPtr& snap) {
  if (&gpu_sim::device() != &ctx_)
    throw gpu_sim::DeviceError(
        "DeviceGraphCache used without its context bound (ScopedDevice)");

  if (Entry* hit =
          find_mru(snap->name, Kind::kBase, snap->base_generation)) {
    ++stats_.hits;
    return hit->matrix;
  }
  ++stats_.misses;

  const std::size_t bytes = snap->device_base_bytes_estimate();
  while (!entries_.empty() &&
         stats_.resident_bytes + bytes > budget_bytes_)
    evict_lru();

  auto do_upload = [&] {
    return std::make_shared<const grb::Matrix<double, grb::GpuSim>>(
        gbtl_graph::base_to_matrix<double, grb::GpuSim>(*snap->base));
  };
  DeviceMatrixPtr matrix;
  try {
    matrix = do_upload();
  } catch (const gpu_sim::DeviceBadAlloc&) {
    evict_all();
    ctx_.trim();
    matrix = do_upload();
  }

  Entry entry;
  entry.name = snap->name;
  entry.kind = Kind::kBase;
  entry.key = snap->base_generation;
  entry.matrix = matrix;
  entry.bytes = bytes;
  insert_within_budget(std::move(entry));
  return matrix;
}

ShardedMatrixPtr DeviceGraphCache::get_or_upload_sharded(
    const SnapshotPtr& snap) {
  if (&gpu_sim::device() != &ctx_)
    throw gpu_sim::DeviceError(
        "DeviceGraphCache used without its context bound (ScopedDevice)");

  if (Entry* hit = find_mru(snap->name, Kind::kSharded, snap->version)) {
    ++stats_.hits;
    return hit->sharded_matrix;
  }
  ++stats_.misses;

  // The sharded build itself is host-side (CSR stays on the host; shards
  // materialize lazily on first op), so unlike the monolithic upload there
  // is no DeviceBadAlloc to retry here. The budget is per worker context,
  // and a sharded graph parks only ~1/N of its slices on each context of
  // the placement — charge that share, so a graph too big for one arena
  // still caches as long as its per-shard slices fit.
  const std::size_t width =
      std::max<std::size_t>(1, gpu_sim::placement_or_default().size());
  const std::size_t bytes = snap->device_bytes_estimate() / width;
  while (!entries_.empty() &&
         stats_.resident_bytes + bytes > budget_bytes_)
    evict_lru();

  auto matrix = std::make_shared<const grb::Matrix<double, grb::GpuShard>>(
      gbtl_graph::to_matrix<double, grb::GpuShard>(snap->materialize()));

  Entry entry;
  entry.name = snap->name;
  entry.kind = Kind::kSharded;
  entry.key = snap->version;
  entry.sharded_matrix = matrix;
  entry.bytes = bytes;
  insert_within_budget(std::move(entry));
  return matrix;
}

std::size_t DeviceGraphCache::invalidate_retired(const GraphStore& store) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const SnapshotPtr current = store.get(it->name);
    const bool live =
        current != nullptr &&
        it->key == (it->kind == Kind::kBase ? current->base_generation
                                            : current->version);
    if (live) {
      ++it;
      continue;
    }
    stats_.resident_bytes -= it->bytes;
    ++stats_.invalidations;
    ++dropped;
    it = entries_.erase(it);  // in-use matrices survive via their shared_ptr
  }
  return dropped;
}

DeviceGraphCache::Entry* DeviceGraphCache::find_mru(const std::string& name,
                                                    Kind kind,
                                                    std::uint64_t key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name && it->kind == kind && it->key == key) {
      entries_.splice(entries_.begin(), entries_, it);  // mark MRU
      return &entries_.front();
    }
  }
  return nullptr;
}

void DeviceGraphCache::insert_within_budget(Entry entry) {
  if (entry.bytes > budget_bytes_) return;  // never cached, handed out only
  stats_.resident_bytes += entry.bytes;
  entries_.push_front(std::move(entry));
}

void DeviceGraphCache::evict_lru() {
  if (entries_.empty()) return;
  stats_.resident_bytes -= entries_.back().bytes;
  ++stats_.evictions;
  entries_.pop_back();  // device memory is reclaimed when the last user drops
}

void DeviceGraphCache::evict_all() {
  while (!entries_.empty()) evict_lru();
}

// --- HostGraphCache --------------------------------------------------------

HostMatrixPtr HostGraphCache::get_or_build(const SnapshotPtr& snap) {
  auto& entry = entries_[snap->name];
  if (entry.matrix != nullptr && entry.key == snap->version) {
    ++stats_.hits;
    return entry.matrix;
  }
  ++stats_.misses;
  entry.key = snap->version;
  entry.matrix = std::make_shared<const grb::Matrix<double, grb::CpuPar>>(
      gbtl_graph::to_matrix<double, grb::CpuPar>(snap->materialize()));
  return entry.matrix;
}

HostMatrixPtr HostGraphCache::get_or_build_base(const SnapshotPtr& snap) {
  auto& entry = base_entries_[snap->name];
  if (entry.matrix != nullptr && entry.key == snap->base_generation) {
    ++stats_.hits;
    return entry.matrix;
  }
  ++stats_.misses;
  entry.key = snap->base_generation;
  entry.matrix = std::make_shared<const grb::Matrix<double, grb::CpuPar>>(
      gbtl_graph::base_to_matrix<double, grb::CpuPar>(*snap->base));
  return entry.matrix;
}

}  // namespace service
