#pragma once

/// @file query.hpp
/// Vocabulary of the graph-query serving layer: the typed queries clients
/// submit, the statuses the executor can resolve them to, and the host-side
/// result payload. Queries are *reads* against immutable graph snapshots
/// (src/service/graph_store.hpp); all of them dispatch through the
/// unchanged algorithms:: entry points — the serving layer adds deadlines,
/// admission, and placement, never algorithm math.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gbtl/execution_policy.hpp"
#include "gbtl/types.hpp"

namespace service {

enum class QueryKind : unsigned {
  kBfs = 0,              ///< bfs_level from `source`
  kSssp,                 ///< Bellman-Ford distances from `source`
  kPageRank,             ///< pagerank(damping, tol, max_iterations)
  kTriangleCount,        ///< masked Sandia count (needs a symmetric graph)
  kConnectedComponents,  ///< min-label propagation (needs a symmetric graph)
  kCount
};

inline constexpr std::size_t kQueryKindCount =
    static_cast<std::size_t>(QueryKind::kCount);

inline const char* to_string(QueryKind k) {
  switch (k) {
    case QueryKind::kBfs: return "bfs";
    case QueryKind::kSssp: return "sssp";
    case QueryKind::kPageRank: return "pagerank";
    case QueryKind::kTriangleCount: return "triangle-count";
    case QueryKind::kConnectedComponents: return "components";
    case QueryKind::kCount: break;
  }
  return "unknown";
}

/// One query as submitted by a client. The deadline is relative (`timeout`
/// from the moment of admission) so queued time counts against it — a query
/// that ages out while waiting is cancelled without running.
struct QueryRequest {
  QueryKind kind = QueryKind::kBfs;
  std::string graph;  ///< GraphStore name

  grb::IndexType source = 0;  ///< BFS / SSSP start vertex

  // PageRank knobs (ignored by other kinds).
  double damping = 0.85;
  double tol = 1e-8;
  grb::IndexType max_iterations = 100;

  /// Wall-clock budget measured from admission; unset means unlimited.
  std::optional<std::chrono::milliseconds> timeout;
  /// Optional caller-held cooperative cancel (grb::make_cancel_token()).
  grb::CancelToken cancel;

  /// Opt into incremental recompute (PageRank / ConnectedComponents only):
  /// the executor caches this query's result per version and warm-starts
  /// the next one from it when the snapshot lineage allows, falling back
  /// to a cold solve otherwise (docs/streaming.md).
  bool incremental = false;
};

enum class QueryStatus : unsigned {
  kOk = 0,     ///< completed; payload is valid
  kCancelled,  ///< deadline passed or token set (at a checkpoint or in queue)
  kShed,       ///< refused at admission: submission queue was full
  kFailed,     ///< the algorithm threw; `error` holds the message
  kCount
};

inline const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kCancelled: return "cancelled";
    case QueryStatus::kShed: return "shed";
    case QueryStatus::kFailed: return "failed";
    case QueryStatus::kCount: break;
  }
  return "unknown";
}

/// Host-side result. Sparse vector payloads arrive as parallel arrays
/// (`indices` plus `ivals` or `dvals`, per kind); scalar results land in
/// `scalar`. Payloads of non-kOk results are empty.
///
/// Bit-exactness contract: for a kOk result, the payload is byte-identical
/// to running the same request serially (and, per the backend equivalence
/// guarantee, to the sequential backend) — the stress suite enforces this.
struct QueryResult {
  QueryStatus status = QueryStatus::kFailed;

  grb::IndexArrayType indices;            ///< stored positions, ascending
  std::vector<grb::IndexType> ivals;      ///< BFS levels / CC labels
  std::vector<double> dvals;              ///< SSSP distances / PageRank
  std::uint64_t scalar = 0;               ///< triangle count

  std::string error;                      ///< kFailed / kCancelled detail
  std::chrono::microseconds latency{0};   ///< admission -> resolution
  std::size_t worker = 0;                 ///< executing worker index
  /// GraphStore version of the snapshot this query ran against (0 when it
  /// never reached one) — the key for replaying the query against its
  /// exact graph state under concurrent mutation.
  std::uint64_t version = 0;
  /// True when the result came from an incremental warm start rather than
  /// a cold solve.
  bool warm_start = false;
  /// Registry name of the backend that ran the query ("sequential",
  /// "cpupar", "gpusim"); empty when the query never reached a backend
  /// (shed, or cancelled while queued).
  std::string backend;
};

}  // namespace service
