#pragma once

/// @file dispatch.hpp
/// The one place a QueryRequest meets an algorithms:: entry point. Shared by
/// the executor's worker paths (GpuSim per-worker context, CpuPar per-worker
/// pool) and by the serial oracle path the stress tests diff against
/// (Sequential backend) — all of them run *exactly* this function, so any
/// divergence is a backend bug, not a serving-layer one.

#include <chrono>
#include <exception>
#include <utility>

#include "algorithms/bfs.hpp"
#include "gbtl/backend_registry.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/incremental.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/triangle_count.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"
#include "service/result_cache.hpp"

namespace service {

/// Run @p req against an already-resident @p graph under @p policy.
/// Never throws: cancellation and algorithm failures come back as statuses.
/// Fills payload + status only — latency/worker are the caller's fields.
template <typename Tag>
QueryResult run_query_on(const grb::Matrix<double, Tag>& graph,
                         const QueryRequest& req,
                         const grb::ExecutionPolicy& policy) {
  QueryResult res;
  try {
    switch (req.kind) {
      case QueryKind::kBfs: {
        grb::Vector<grb::IndexType, Tag> levels(graph.nrows());
        algorithms::bfs_level(graph, req.source, levels, policy);
        levels.extractTuples(res.indices, res.ivals);
        break;
      }
      case QueryKind::kSssp: {
        grb::Vector<double, Tag> dist(graph.nrows());
        algorithms::sssp(graph, req.source, dist, policy);
        dist.extractTuples(res.indices, res.dvals);
        break;
      }
      case QueryKind::kPageRank: {
        grb::Vector<double, Tag> rank(graph.nrows());
        algorithms::pagerank(graph, rank, req.damping, req.tol,
                             req.max_iterations, policy);
        rank.extractTuples(res.indices, res.dvals);
        break;
      }
      case QueryKind::kTriangleCount: {
        res.scalar = algorithms::triangle_count_masked(graph, policy);
        break;
      }
      case QueryKind::kConnectedComponents: {
        grb::Vector<grb::IndexType, Tag> labels(graph.nrows());
        res.scalar = algorithms::connected_components(graph, labels, policy);
        labels.extractTuples(res.indices, res.ivals);
        break;
      }
      case QueryKind::kCount:
        throw grb::InvalidValueException("run_query_on: bad QueryKind");
    }
    res.status = QueryStatus::kOk;
  } catch (const grb::CancelledException& e) {
    res = QueryResult{};  // drop any partial payload
    res.status = QueryStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res = QueryResult{};
    res.status = QueryStatus::kFailed;
    res.error = e.what();
  }
  // Tag the result with the backend's registry name — set after the
  // catch blocks so failed/cancelled results carry it too.
  res.backend = grb::backend::backend_name<Tag>();
  return res;
}

/// Can @p req warm-start on @p snap from @p prev? The snapshot must be the
/// direct successor of the cached version (lineage intact), and per kind:
///  - ConnectedComponents: no structural removals (old labels must stay
///    upper bounds) and an affected set small enough that frontier
///    propagation beats a cold solve (<= n/4);
///  - PageRank: identical solver knobs (a different damping/tol targets a
///    different fixpoint) — trajectory-dependent, so warm results match
///    cold ones only to tolerance, never bitwise.
/// The payload must be a dense vector of the right size in both cases.
inline bool warm_start_eligible(const GraphSnapshot& snap,
                                const CachedQueryResult& prev,
                                const QueryRequest& req) {
  if (snap.prev_version == 0 || prev.version != snap.prev_version)
    return false;
  if (req.kind == QueryKind::kConnectedComponents) {
    if (snap.structural_removals) return false;
    if (snap.affected.size() > snap.num_vertices() / 4) return false;
    return prev.ivals.size() == snap.num_vertices();
  }
  if (req.kind == QueryKind::kPageRank) {
    if (prev.damping != req.damping || prev.tol != req.tol ||
        prev.max_iterations != req.max_iterations)
      return false;
    return prev.dvals.size() == snap.num_vertices();
  }
  return false;
}

/// Incremental ConnectedComponents: seed labels from the previous version's
/// cached result and propagate from the affected frontier through the
/// overlay-aware vxm. Labels are bit-identical to a cold solve on the
/// merged graph (min-label propagation has a unique fixpoint); the round
/// count in `scalar` is the incremental pass's own and WILL differ from a
/// cold solve's. @p base_matrix must be built from snap's BASE CSR.
template <typename Tag>
QueryResult run_incremental_cc(const grb::Matrix<double, Tag>& base_matrix,
                               const GraphSnapshot& snap,
                               const CachedQueryResult& prev,
                               const grb::ExecutionPolicy& policy) {
  QueryResult res;
  try {
    grb::Vector<grb::IndexType, Tag> labels(base_matrix.nrows());
    labels.build(prev.indices, prev.ivals);
    const gbtl_graph::DeltaOverlay empty;
    res.scalar = algorithms::connected_components_incremental(
        base_matrix, snap.overlay ? *snap.overlay : empty, snap.affected,
        labels, policy);
    labels.extractTuples(res.indices, res.ivals);
    res.status = QueryStatus::kOk;
    res.warm_start = true;
  } catch (const grb::CancelledException& e) {
    res = QueryResult{};
    res.status = QueryStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res = QueryResult{};
    res.status = QueryStatus::kFailed;
    res.error = e.what();
  }
  res.backend = grb::backend::backend_name<Tag>();
  return res;
}

/// Warm-started PageRank: restart the power iteration from the previous
/// version's ranks on the merged @p graph. Converges to the same fixpoint
/// as a cold solve to solver tolerance — NOT bitwise (the trajectory, and
/// so the stopping iterate, differs); deterministic given the same cached
/// seed, which is what the stress suite bit-checks against a serial warm
/// oracle.
template <typename Tag>
QueryResult run_warm_pagerank(const grb::Matrix<double, Tag>& graph,
                              const CachedQueryResult& prev,
                              const QueryRequest& req,
                              const grb::ExecutionPolicy& policy) {
  QueryResult res;
  try {
    grb::Vector<double, Tag> rank(graph.nrows());
    rank.build(prev.indices, prev.dvals);
    algorithms::pagerank_warm(graph, rank, req.damping, req.tol,
                              req.max_iterations, policy);
    rank.extractTuples(res.indices, res.dvals);
    res.status = QueryStatus::kOk;
    res.warm_start = true;
  } catch (const grb::CancelledException& e) {
    res = QueryResult{};
    res.status = QueryStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res = QueryResult{};
    res.status = QueryStatus::kFailed;
    res.error = e.what();
  }
  res.backend = grb::backend::backend_name<Tag>();
  return res;
}

/// Package a kOk result for the ResultCache.
inline CachedQueryResult to_cached(const QueryResult& res,
                                   std::uint64_t version,
                                   const QueryRequest& req) {
  CachedQueryResult c;
  c.version = version;
  c.damping = req.damping;
  c.tol = req.tol;
  c.max_iterations = req.max_iterations;
  c.warm_start = res.warm_start;
  c.indices = res.indices;
  c.ivals = res.ivals;
  c.dvals = res.dvals;
  c.scalar = res.scalar;
  return c;
}

}  // namespace service
