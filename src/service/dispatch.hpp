#pragma once

/// @file dispatch.hpp
/// The one place a QueryRequest meets an algorithms:: entry point. Shared by
/// the executor's worker paths (GpuSim per-worker context, CpuPar per-worker
/// pool) and by the serial oracle path the stress tests diff against
/// (Sequential backend) — all of them run *exactly* this function, so any
/// divergence is a backend bug, not a serving-layer one.

#include <chrono>
#include <exception>
#include <utility>

#include "algorithms/bfs.hpp"
#include "gbtl/backend_registry.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/triangle_count.hpp"
#include "service/query.hpp"

namespace service {

/// Run @p req against an already-resident @p graph under @p policy.
/// Never throws: cancellation and algorithm failures come back as statuses.
/// Fills payload + status only — latency/worker are the caller's fields.
template <typename Tag>
QueryResult run_query_on(const grb::Matrix<double, Tag>& graph,
                         const QueryRequest& req,
                         const grb::ExecutionPolicy& policy) {
  QueryResult res;
  try {
    switch (req.kind) {
      case QueryKind::kBfs: {
        grb::Vector<grb::IndexType, Tag> levels(graph.nrows());
        algorithms::bfs_level(graph, req.source, levels, policy);
        levels.extractTuples(res.indices, res.ivals);
        break;
      }
      case QueryKind::kSssp: {
        grb::Vector<double, Tag> dist(graph.nrows());
        algorithms::sssp(graph, req.source, dist, policy);
        dist.extractTuples(res.indices, res.dvals);
        break;
      }
      case QueryKind::kPageRank: {
        grb::Vector<double, Tag> rank(graph.nrows());
        algorithms::pagerank(graph, rank, req.damping, req.tol,
                             req.max_iterations, policy);
        rank.extractTuples(res.indices, res.dvals);
        break;
      }
      case QueryKind::kTriangleCount: {
        res.scalar = algorithms::triangle_count_masked(graph, policy);
        break;
      }
      case QueryKind::kConnectedComponents: {
        grb::Vector<grb::IndexType, Tag> labels(graph.nrows());
        res.scalar = algorithms::connected_components(graph, labels, policy);
        labels.extractTuples(res.indices, res.ivals);
        break;
      }
      case QueryKind::kCount:
        throw grb::InvalidValueException("run_query_on: bad QueryKind");
    }
    res.status = QueryStatus::kOk;
  } catch (const grb::CancelledException& e) {
    res = QueryResult{};  // drop any partial payload
    res.status = QueryStatus::kCancelled;
    res.error = e.what();
  } catch (const std::exception& e) {
    res = QueryResult{};
    res.status = QueryStatus::kFailed;
    res.error = e.what();
  }
  // Tag the result with the backend's registry name — set after the
  // catch blocks so failed/cancelled results carry it too.
  res.backend = grb::backend::backend_name<Tag>();
  return res;
}

}  // namespace service
