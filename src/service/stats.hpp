#pragma once

/// @file stats.hpp
/// Service-level counters, mirroring the gpu_sim::DeviceStats idiom: a plain
/// copyable struct the executor snapshots under its own lock, so callers can
/// diff two snapshots to measure a region. Latencies go into a log-scaled
/// histogram (constant memory, ~9% worst-case quantile error per bucket)
/// instead of a reservoir, so recording is O(1) and merge is loss-free.

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace service {

/// Log-scaled latency histogram over microseconds. Bucket b covers
/// [floor(2^(b/4)), floor(2^((b+1)/4))) µs — four buckets per octave keeps
/// relative quantile error under ~19% while spanning 1 µs to ~10 minutes in
/// 128 buckets. Copyable; merging two histograms is bucket-wise addition.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 128;
  static constexpr double kBucketsPerOctave = 4.0;

  void record(std::chrono::microseconds latency) {
    ++counts_[bucket_of(latency.count())];
    ++total_;
  }

  std::uint64_t count() const { return total_; }

  /// Approximate quantile in microseconds; p in [0, 1]. Interpolates
  /// linearly within the bucket holding the target rank. Returns 0 when
  /// empty.
  double quantile(double p) const {
    if (total_ == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    // Rank of the target sample, 1-based; p=1 must land on the last sample.
    const double rank = p * static_cast<double>(total_ - 1) + 1.0;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      const std::uint64_t next = seen + counts_[b];
      if (rank <= static_cast<double>(next)) {
        const double within =
            (rank - static_cast<double>(seen)) / counts_[b];  // (0, 1]
        const double lo = bucket_floor_us(b);
        const double hi = bucket_floor_us(b + 1);
        return lo + (hi - lo) * within;
      }
      seen = next;
    }
    return bucket_floor_us(kBuckets);  // unreachable with total_ > 0
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    total_ += other.total_;
  }

 private:
  static std::size_t bucket_of(std::int64_t us) {
    if (us < 1) return 0;
    // b = floor(log2(us) * buckets-per-octave), clamped to the table.
    std::size_t octave = 0;
    std::uint64_t v = static_cast<std::uint64_t>(us);
    while (v > 1) {
      v >>= 1;
      ++octave;
    }
    // Refine within the octave: which quarter of [2^o, 2^(o+1)) holds us?
    const double frac =
        static_cast<double>(us) / static_cast<double>(1ull << octave);
    std::size_t quarter = 0;
    double edge = 1.0;
    const double step = 1.189207115002721;  // 2^(1/4)
    while (quarter + 1 < static_cast<std::size_t>(kBucketsPerOctave) &&
           frac >= edge * step) {
      edge *= step;
      ++quarter;
    }
    const std::size_t b =
        octave * static_cast<std::size_t>(kBucketsPerOctave) + quarter;
    return b < kBuckets ? b : kBuckets - 1;
  }

  static double bucket_floor_us(std::size_t b) {
    const double octave = static_cast<double>(b) / kBucketsPerOctave;
    // 2^octave without <cmath> pow: split into integer + fractional part.
    const std::size_t whole = static_cast<std::size_t>(octave);
    double value = static_cast<double>(1ull << (whole < 63 ? whole : 63));
    const double step = 1.189207115002721;  // 2^(1/4)
    for (std::size_t q = whole * 4; q < b; ++q) value *= step;
    return value;
  }

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Snapshot of the serving layer's lifetime counters. Every submitted query
/// resolves to exactly one of {completed, cancelled, shed, failed}, so
/// submitted == completed + cancelled + shed + failed once the executor has
/// drained. Latency is recorded for every resolved query that reached a
/// worker (shed queries never ran, so they are excluded from the histogram).
struct ServiceStats {
  std::uint64_t submitted = 0;
  /// Queries a worker has begun executing (dequeued, past the queued-expiry
  /// checks, dispatched toward a backend). `started - (completed +
  /// cancelled + failed - <queued-expiry cancellations>)` is the in-flight
  /// count; tests use it as the "query is mid-flight" event instead of a
  /// timing-sensitive sleep.
  std::uint64_t started = 0;
  std::uint64_t completed = 0;   ///< resolved kOk
  std::uint64_t cancelled = 0;   ///< resolved kCancelled (deadline / token)
  std::uint64_t shed = 0;        ///< refused at admission (queue full)
  std::uint64_t failed = 0;      ///< resolved kFailed
  /// Backend placement counters: how many queries each worker-side backend
  /// actually ran (cancelled-in-queue and shed queries hit neither). With
  /// BackendMode::kAuto these record which side of crossover_nnz each
  /// executed query landed on.
  std::uint64_t ran_cpupar = 0;
  std::uint64_t ran_gpusim = 0;
  std::uint64_t ran_gpushard = 0;
  /// Sharded-path activity, aggregated from the workers' home-context
  /// gpu_sim::DeviceStats after each GpuShard query: the widest shard
  /// fan-out observed, total bytes moved through halo exchanges, and how
  /// much of that transfer time was hidden under shard kernels.
  std::uint64_t shards_active = 0;        ///< high-water mark across workers
  std::uint64_t halo_bytes_exchanged = 0;
  double halo_seconds_hidden = 0.0;
  /// Streaming-mutation counters (docs/streaming.md). The store-side four
  /// are merged from GraphStore::stats() when the executor snapshots; the
  /// rest are executor-side.
  std::uint64_t mutations = 0;         ///< apply_edges batches published
  std::uint64_t compactions = 0;       ///< overlay folds into a fresh base
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;
  std::uint64_t warm_starts = 0;       ///< incremental queries served warm
  std::uint64_t cold_fallbacks = 0;    ///< incremental requested, ran cold
  std::uint64_t result_cache_hits = 0; ///< exact-version result replays
  std::uint64_t result_cache_evictions = 0;  ///< LRU slots dropped at bound
  std::uint64_t cache_invalidations = 0;  ///< retired entries dropped
  LatencyHistogram latency;      ///< admission -> resolution, executed only

  std::uint64_t resolved() const {
    return completed + cancelled + shed + failed;
  }

  /// Throughput of completed queries over a wall-clock window.
  double qps(std::chrono::duration<double> window) const {
    const double s = window.count();
    return s > 0.0 ? static_cast<double>(completed) / s : 0.0;
  }
};

}  // namespace service
