#pragma once

/// @file graph_store.hpp
/// Host-side graph catalog + per-worker device-side cache.
///
/// The store owns named, versioned, *immutable* host snapshots (EdgeList
/// form). Replacing a name bumps the version and publishes a new snapshot;
/// snapshots already handed out stay alive (shared_ptr) so in-flight queries
/// never observe a mutation — readers need no locks beyond the pointer swap.
///
/// Each executor worker owns a DeviceGraphCache bound to its private
/// gpu_sim::Context: the first query against a (name, version) pays the
/// build + host->device upload, subsequent queries on that worker reuse the
/// resident grb::Matrix. Under memory pressure the cache evicts in LRU
/// order; evicted matrices handed out earlier stay valid until their last
/// shared_ptr drops (eviction only forgets, it never frees in-use memory).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/edge_list.hpp"
#include "graph/graph_matrix.hpp"

namespace service {

/// One immutable, versioned host-side graph. Never modified after
/// construction; shared by every worker and every in-flight query.
struct GraphSnapshot {
  std::string name;
  std::uint64_t version = 0;
  gbtl_graph::EdgeList edges;

  /// Rough CSR footprint on the device (row offsets + column ids + values).
  /// This is what the oversized-graph routing compares against one arena.
  std::size_t device_csr_bytes_estimate() const {
    const std::size_t n = edges.num_vertices;
    const std::size_t nnz = edges.num_edges();
    return (n + 1) * sizeof(std::uint64_t) +
           nnz * (sizeof(std::uint64_t) + sizeof(double));
  }

  /// Full cache-budget footprint: CSR *plus* the lazily built CSC transpose
  /// view the vxm/pull paths materialize (same shape, so 2x CSR). Budgeting
  /// on CSR alone let a cache "within budget" hold twice its ceiling once
  /// the transpose views appeared.
  std::size_t device_bytes_estimate() const {
    return 2 * device_csr_bytes_estimate();
  }
};

using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

/// Thread-safe catalog of named graphs. add() publishes atomically; get()
/// returns the current snapshot (or nullptr). All methods are safe to call
/// concurrently from any thread.
class GraphStore {
 public:
  /// Insert or replace @p name. Replacement bumps the version so device
  /// caches keyed on (name, version) miss and re-upload the new graph.
  /// @returns the published snapshot.
  SnapshotPtr add(std::string name, gbtl_graph::EdgeList edges);

  /// Current snapshot of @p name, or nullptr if absent.
  SnapshotPtr get(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, SnapshotPtr> graphs_;
};

/// Device matrices are shared so an evicted-but-in-use graph survives until
/// its query finishes.
using DeviceMatrixPtr = std::shared_ptr<const grb::Matrix<double, grb::GpuSim>>;

/// Host-side CpuPar matrices follow the same sharing rule.
using HostMatrixPtr = std::shared_ptr<const grb::Matrix<double, grb::CpuPar>>;

/// Sharded (multi-context) device matrices — the GpuShard backend's
/// row-block ShardedMatrix, pinned over the placement installed when the
/// cache built it.
using ShardedMatrixPtr =
    std::shared_ptr<const grb::Matrix<double, grb::GpuShard>>;

/// Per-worker host-side cache of CpuPar matrices, the small-graph sibling of
/// DeviceGraphCache. NOT thread-safe — each executor worker owns one. Keeps
/// the latest version per graph name (CpuPar serves the below-crossover
/// regime, where a whole matrix is small next to the device cache budget, so
/// there is no byte ceiling — a replaced version is dropped immediately).
class HostGraphCache {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// The host matrix for @p snap, building it on first use (or when the
  /// store republished @p snap's name under a newer version).
  HostMatrixPtr get_or_build(const SnapshotPtr& snap);

  const CacheStats& stats() const { return stats_; }
  std::size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t version = 0;
    HostMatrixPtr matrix;
  };

  std::unordered_map<std::string, Entry> entries_;
  CacheStats stats_;
};

/// Per-worker device-side graph cache. NOT thread-safe — each executor
/// worker owns exactly one, bound to that worker's private Context, so no
/// cross-thread sharing ever happens by construction.
///
/// The caller must have @p ctx installed as the calling thread's device
/// (gpu_sim::ScopedDevice) whenever it calls get_or_upload: the backend
/// matrix constructor captures gpu_sim::device(), and a mismatch would
/// upload into the wrong context's memory arena.
class DeviceGraphCache {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t resident_bytes = 0;  ///< estimate of cached (not in-use) data
  };

  /// @param budget_bytes resident-estimate ceiling; 0 means "no caching"
  /// (every call uploads and nothing is retained).
  DeviceGraphCache(gpu_sim::Context& ctx, std::size_t budget_bytes);

  /// The device matrix for @p snap, uploading on first use. LRU entries are
  /// evicted until the estimate fits the budget; if the device itself
  /// reports out-of-memory during the upload, the whole cache is dropped
  /// and the upload retried once before the error propagates.
  DeviceMatrixPtr get_or_upload(const SnapshotPtr& snap);

  /// The sharded device matrix for @p snap, spread over the calling
  /// thread's gpu_sim placement (row-block shards built lazily on first
  /// op). Shares the entry list and byte budget with the monolithic
  /// entries — one ceiling governs everything the worker keeps resident.
  /// The ShardedMatrix keeps its canonical CSR on the host, so a graph too
  /// big for one arena still caches (and serves) as long as its per-shard
  /// slices fit their contexts.
  ShardedMatrixPtr get_or_upload_sharded(const SnapshotPtr& snap);

  const CacheStats& stats() const { return stats_; }
  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    std::uint64_t version = 0;
    bool sharded = false;  ///< monolithic and sharded entries coexist
    DeviceMatrixPtr matrix;
    ShardedMatrixPtr sharded_matrix;
    std::size_t bytes = 0;
  };

  DeviceMatrixPtr upload(const GraphSnapshot& snap);
  Entry* find_mru(const std::string& name, std::uint64_t version,
                  bool sharded);
  void insert_within_budget(Entry entry);
  void evict_lru();
  void evict_all();

  gpu_sim::Context& ctx_;
  const std::size_t budget_bytes_;
  /// MRU at front. Linear name lookup — stores hold a handful of graphs,
  /// and the list walk is noise next to a single device kernel launch.
  std::list<Entry> entries_;
  CacheStats stats_;
};

}  // namespace service
