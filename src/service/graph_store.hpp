#pragma once

/// @file graph_store.hpp
/// Host-side graph catalog + per-worker device-side cache.
///
/// The store owns named, versioned, *immutable* host snapshots. A snapshot
/// is (base CSR, delta overlay): add() bulk-loads a fresh base,
/// apply_edges() publishes the next version in O(delta) by layering a new
/// replacement-row overlay over the SAME base — the base shared_ptr is
/// reused, never rebuilt, until the compaction policy folds the overlay
/// into a fresh base and bumps the base generation. Snapshots already
/// handed out stay alive (shared_ptr) so in-flight queries never observe a
/// mutation — readers need no locks beyond the pointer swap.
///
/// Each executor worker owns a DeviceGraphCache bound to its private
/// gpu_sim::Context: the first query against a (name, version) pays the
/// build + host->device upload, subsequent queries on that worker reuse the
/// resident grb::Matrix. Under memory pressure the cache evicts in LRU
/// order; on top of that, invalidate_retired() drops entries whose versions
/// the store has since retired, so long-lived workers don't pin device
/// memory for unreachable snapshots. Evicted matrices handed out earlier
/// stay valid until their last shared_ptr drops (eviction only forgets, it
/// never frees in-use memory).

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/delta_csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/graph_matrix.hpp"

namespace service {

/// One immutable, versioned host-side graph: a shared base CSR plus an
/// optional delta overlay. Never modified after construction; shared by
/// every worker and every in-flight query.
struct GraphSnapshot {
  std::string name;
  std::uint64_t version = 0;
  /// Version this snapshot was derived from by apply_edges; 0 when the
  /// snapshot came from a bulk add() (no incremental lineage).
  std::uint64_t prev_version = 0;
  /// Bumped whenever the base CSR is rebuilt (bulk add or compaction) —
  /// the cache key for base-side matrices, which survive overlay-only
  /// version bumps.
  std::uint64_t base_generation = 1;

  gbtl_graph::BaseCsrPtr base;
  /// Replacement rows layered over `base`; nullptr when the snapshot is
  /// compact (fresh base, no delta).
  gbtl_graph::DeltaOverlayPtr overlay;
  /// Merged (deduplicated) edge count of base+overlay.
  std::size_t live_nnz = 0;

  /// Endpoints touched by the batch that produced this version (sorted,
  /// unique) — the incremental algorithms' seed frontier.
  grb::IndexArrayType affected;
  /// True when the producing batch actually deleted a stored edge, which
  /// invalidates monotone warm starts (incremental CC falls back cold).
  bool structural_removals = false;

  std::uint64_t num_vertices() const { return base->num_vertices; }
  std::uint64_t num_edges() const { return live_nnz; }
  std::size_t overlay_nnz() const { return overlay ? overlay->nnz() : 0; }

  /// Merge base + overlay into a canonical edge list (the monolithic-build
  /// bridge: device uploads, serial oracles).
  gbtl_graph::EdgeList materialize() const {
    return gbtl_graph::materialize(*base, overlay.get());
  }

  /// Rough CSR footprint on the device (row offsets + column ids + values).
  /// This is what the oversized-graph routing compares against one arena.
  std::size_t device_csr_bytes_estimate() const {
    const std::size_t n = num_vertices();
    const std::size_t nnz = num_edges();
    return (n + 1) * sizeof(std::uint64_t) +
           nnz * (sizeof(std::uint64_t) + sizeof(double));
  }

  /// Full cache-budget footprint: CSR *plus* the lazily built CSC transpose
  /// view the vxm/pull paths materialize (same shape, so 2x CSR). Budgeting
  /// on CSR alone let a cache "within budget" hold twice its ceiling once
  /// the transpose views appeared.
  std::size_t device_bytes_estimate() const {
    return 2 * device_csr_bytes_estimate();
  }

  /// Footprint of the base-only matrix (ignores the overlay, which is
  /// uploaded per call by the overlay-aware ops).
  std::size_t device_base_bytes_estimate() const {
    const std::size_t n = base->num_vertices;
    const std::size_t nnz = base->num_edges();
    return 2 * ((n + 1) * sizeof(std::uint64_t) +
                nnz * (sizeof(std::uint64_t) + sizeof(double)));
  }
};

using SnapshotPtr = std::shared_ptr<const GraphSnapshot>;

/// Store-level mutation counters (returned by value under the lock).
struct StoreStats {
  std::uint64_t mutations = 0;    ///< apply_edges batches published
  std::uint64_t compactions = 0;  ///< overlay folds into a fresh base
  std::uint64_t edges_added = 0;
  std::uint64_t edges_removed = 0;
};

/// Thread-safe catalog of named graphs. add() and apply_edges() publish
/// atomically; get() returns the current snapshot (or nullptr). All methods
/// are safe to call concurrently from any thread.
class GraphStore {
 public:
  /// Insert or replace @p name with a bulk-loaded graph (fresh base CSR, no
  /// overlay). Replacement bumps the version AND the base generation so
  /// device caches keyed on either miss and re-upload. @returns the
  /// published snapshot.
  SnapshotPtr add(std::string name, gbtl_graph::EdgeList edges);

  /// Apply one batch of edge mutations to @p name and publish the result as
  /// a new version. Removes land before adds; adds upsert (last wins);
  /// removes of absent edges are no-ops. The publish path is O(batch +
  /// touched rows + previous overlay): the base CSR is reused by pointer.
  /// When the merged overlay crosses @p policy (default CompactionPolicy),
  /// it is folded into a fresh base (O(n + nnz)) and the base generation
  /// bumps — the only time the publish path pays a full rebuild.
  /// @returns the published snapshot, or nullptr if @p name is absent.
  SnapshotPtr apply_edges(const std::string& name,
                          const gbtl_graph::EdgeList& adds,
                          const gbtl_graph::EdgeList& removes,
                          const gbtl_graph::CompactionPolicy& policy = {});

  /// Current snapshot of @p name, or nullptr if absent.
  SnapshotPtr get(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

  StoreStats stats() const;

  /// Bumped on every publish (add or apply_edges). Workers compare against
  /// their last-seen value to decide when a retired-version cache sweep is
  /// due, without taking the store lock on the fast path.
  std::uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, SnapshotPtr> graphs_;
  StoreStats stats_;
  std::atomic<std::uint64_t> mutation_epoch_{0};
};

/// Device matrices are shared so an evicted-but-in-use graph survives until
/// its query finishes.
using DeviceMatrixPtr = std::shared_ptr<const grb::Matrix<double, grb::GpuSim>>;

/// Host-side CpuPar matrices follow the same sharing rule.
using HostMatrixPtr = std::shared_ptr<const grb::Matrix<double, grb::CpuPar>>;

/// Sharded (multi-context) device matrices — the GpuShard backend's
/// row-block ShardedMatrix, pinned over the placement installed when the
/// cache built it.
using ShardedMatrixPtr =
    std::shared_ptr<const grb::Matrix<double, grb::GpuShard>>;

/// Per-worker host-side cache of CpuPar matrices, the small-graph sibling of
/// DeviceGraphCache. NOT thread-safe — each executor worker owns one. Keeps
/// the latest version per graph name (CpuPar serves the below-crossover
/// regime, where a whole matrix is small next to the device cache budget, so
/// there is no byte ceiling — a replaced version is dropped immediately).
class HostGraphCache {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// The merged host matrix for @p snap, building it on first use (or when
  /// the store republished @p snap's name under a newer version).
  HostMatrixPtr get_or_build(const SnapshotPtr& snap);

  /// The BASE-ONLY host matrix for @p snap, keyed on the base generation:
  /// overlay-only version bumps keep hitting the same entry, which is what
  /// lets incremental queries skip the merged rebuild.
  HostMatrixPtr get_or_build_base(const SnapshotPtr& snap);

  const CacheStats& stats() const { return stats_; }
  std::size_t entries() const {
    return entries_.size() + base_entries_.size();
  }

 private:
  struct Entry {
    std::uint64_t key = 0;  ///< version (merged) or base generation (base)
    HostMatrixPtr matrix;
  };

  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, Entry> base_entries_;
  CacheStats stats_;
};

/// Per-worker device-side graph cache. NOT thread-safe — each executor
/// worker owns exactly one, bound to that worker's private Context, so no
/// cross-thread sharing ever happens by construction.
///
/// The caller must have @p ctx installed as the calling thread's device
/// (gpu_sim::ScopedDevice) whenever it calls get_or_upload: the backend
/// matrix constructor captures gpu_sim::device(), and a mismatch would
/// upload into the wrong context's memory arena.
class DeviceGraphCache {
 public:
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Entries dropped because the store retired their version (distinct
    /// from LRU evictions — these free memory nothing can reach again).
    std::uint64_t invalidations = 0;
    std::size_t resident_bytes = 0;  ///< estimate of cached (not in-use) data
  };

  /// @param budget_bytes resident-estimate ceiling; 0 means "no caching"
  /// (every call uploads and nothing is retained).
  DeviceGraphCache(gpu_sim::Context& ctx, std::size_t budget_bytes);

  /// The merged device matrix for @p snap, uploading on first use. LRU
  /// entries are evicted until the estimate fits the budget; if the device
  /// itself reports out-of-memory during the upload, the whole cache is
  /// dropped and the upload retried once before the error propagates.
  DeviceMatrixPtr get_or_upload(const SnapshotPtr& snap);

  /// The BASE-ONLY device matrix for @p snap, keyed on (name, base
  /// generation) — stable across overlay-only version bumps, so the
  /// overlay-aware ops reuse it and pay only the O(delta) overlay upload.
  DeviceMatrixPtr get_or_upload_base(const SnapshotPtr& snap);

  /// The sharded device matrix for @p snap, spread over the calling
  /// thread's gpu_sim placement (row-block shards built lazily on first
  /// op). Shares the entry list and byte budget with the monolithic
  /// entries — one ceiling governs everything the worker keeps resident.
  /// The ShardedMatrix keeps its canonical CSR on the host, so a graph too
  /// big for one arena still caches (and serves) as long as its per-shard
  /// slices fit their contexts.
  ShardedMatrixPtr get_or_upload_sharded(const SnapshotPtr& snap);

  /// Drop every entry whose key the store has retired: merged/sharded
  /// entries whose version is no longer @p store's current version for
  /// that name, and base entries whose generation was compacted away.
  /// @returns the number of entries dropped.
  std::size_t invalidate_retired(const GraphStore& store);

  const CacheStats& stats() const { return stats_; }
  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t entries() const { return entries_.size(); }

 private:
  /// Monolithic merged matrix, base-only matrix, and sharded matrix entries
  /// coexist in one list under one budget.
  enum class Kind { kMerged, kBase, kSharded };

  struct Entry {
    std::string name;
    Kind kind = Kind::kMerged;
    std::uint64_t key = 0;  ///< version, or base generation for kBase
    DeviceMatrixPtr matrix;
    ShardedMatrixPtr sharded_matrix;
    std::size_t bytes = 0;
  };

  Entry* find_mru(const std::string& name, Kind kind, std::uint64_t key);
  void insert_within_budget(Entry entry);
  void evict_lru();
  void evict_all();

  gpu_sim::Context& ctx_;
  const std::size_t budget_bytes_;
  /// MRU at front. Linear name lookup — stores hold a handful of graphs,
  /// and the list walk is noise next to a single device kernel launch.
  std::list<Entry> entries_;
  CacheStats stats_;
};

}  // namespace service
