#pragma once

/// @file overlay.hpp
/// Replacement-row overlay over an immutable base matrix — the vocabulary
/// type of the streaming-mutation path (docs/streaming.md).
///
/// An overlay lists the rows that differ from the base ("dirty" rows) and
/// stores each dirty row's FULL merged content (column-sorted, duplicates
/// already resolved). Reading the overlaid matrix is therefore pure row
/// substitution: a clean row streams from the base, a dirty row streams
/// from its replacement — the element stream is identical to the stream a
/// monolithically rebuilt matrix would produce, which is what makes the
/// overlay-aware mxv/vxm kernels bit-exact against a rebuild for ANY
/// semiring, mask, and accumulator.
///
/// The struct is a plain host-side container with no backend dependencies;
/// each backend's overlay ops consume it directly (the GPU backend uploads
/// the four arrays per call — O(overlay) traffic, accounted).

#include <cstddef>
#include <vector>

#include "gbtl/types.hpp"

namespace grb {

template <typename T>
struct MatrixOverlay {
  /// Dirty row ids, strictly ascending.
  IndexArrayType rows;
  /// rows.size() + 1 offsets into `cols` / `vals`.
  IndexArrayType offsets{0};
  /// Replacement-row columns, ascending within each row.
  IndexArrayType cols;
  std::vector<T> vals;

  std::size_t dirty_rows() const { return rows.size(); }
  /// Stored entries across all replacement rows — the overlay's memory
  /// footprint, and the quantity the compaction policy compares against
  /// the base nnz.
  std::size_t nnz() const { return cols.size(); }
  bool empty() const { return rows.empty(); }

  /// Index into `rows` for row @p i, or dirty_rows() when i is clean.
  std::size_t find_row(IndexType i) const {
    std::size_t lo = 0, hi = rows.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (rows[mid] < i)
        lo = mid + 1;
      else
        hi = mid;
    }
    return (lo < rows.size() && rows[lo] == i) ? lo : rows.size();
  }
};

}  // namespace grb
