#pragma once

/// @file write_rules.hpp
/// The single source of truth for GraphBLAS output semantics. Every
/// operation ends with the same three-step pipeline:
///
///   1. compute the raw result T̃;
///   2. Z = accum ? merge(C, T̃, accum) : T̃;
///   3. write back under the mask: allowed positions take Z, disallowed
///      positions keep C (Merge) or are deleted (Replace).
///
/// The frontend lowers {mask argument, OutputControl} into one
/// OutputDescriptor at the API boundary (views.hpp::lower_output); the
/// backends hand it to the epilogue executors in sparse/output_pipeline.hpp.
/// The per-position resolution functions below are shared verbatim by the
/// sequential scalar loop and the gpu_sim scatter kernels, so steps 2+3
/// cannot drift between backends.

#include <type_traits>

#include "gbtl/mask.hpp"
#include "gbtl/types.hpp"

namespace grb {

/// The four mask interpretations a lowered descriptor can express (plus
/// unmasked). Purely informational — backends branch on the MaskDesc
/// flags — but benches, docs, and tests name cases with it.
enum class MaskKind {
  kNone,                 ///< no mask: every position is allowed
  kValue,                ///< stored-and-truthy positions allowed
  kStructure,            ///< stored positions allowed (values ignored)
  kComplementValue,      ///< complement of kValue
  kComplementStructure,  ///< complement of kStructure
};

inline const char* to_string(MaskKind k) {
  switch (k) {
    case MaskKind::kNone: return "none";
    case MaskKind::kValue: return "value";
    case MaskKind::kStructure: return "structure";
    case MaskKind::kComplementValue: return "complement";
    case MaskKind::kComplementStructure: return "complement-structure";
  }
  return "unknown";
}

/// Everything the output side of an operation needs, captured once at the
/// frontend boundary: how to interpret the mask and what happens to
/// mask-disallowed output entries. The accumulator stays a separate typed
/// argument (it participates in step 2's arithmetic, so erasing its type
/// here would cost an indirect call per element).
template <typename MObj>
struct OutputDescriptor {
  MaskDesc<MObj> mask{};
  /// Replace: mask-disallowed output entries are deleted. Merge (false):
  /// they are kept.
  bool replace = false;

  bool unmasked() const { return mask.unmasked(); }

  MaskKind kind() const {
    if (mask.unmasked()) return MaskKind::kNone;
    if (mask.complement)
      return mask.structural ? MaskKind::kComplementStructure
                             : MaskKind::kComplementValue;
    return mask.structural ? MaskKind::kStructure : MaskKind::kValue;
  }
};

/// Descriptor used when the caller passed grb::NoMask.
using NoMaskOutputDesc = OutputDescriptor<EmptyMaskObj>;

namespace write_rules {

template <typename V>
constexpr bool truthy(const V& v) {
  return static_cast<bool>(v);
}

/// Outcome of resolving one output position: either an entry with a value,
/// or no entry (deleted / never present).
template <typename CT>
struct Entry {
  bool present = false;
  CT value{};
};

/// Resolve a mask-ALLOWED position. `has_c`/`cval` describe C's old entry,
/// `has_t`/`tval` describe T̃'s computed entry. Implements step 2 (accum
/// merge) and the allowed half of step 3.
template <typename Accum, typename CT, typename TT>
constexpr Entry<CT> resolve_allowed(const Accum& accum, bool has_c,
                                    const CT& cval, bool has_t,
                                    const TT& tval) {
  if constexpr (!std::is_same_v<Accum, NoAccumulate>) {
    if (has_c && has_t)
      return {true, static_cast<CT>(accum(cval, static_cast<CT>(tval)))};
    if (has_t) return {true, static_cast<CT>(tval)};
    if (has_c) return {true, cval};
  } else {
    (void)accum;
    // Without an accumulator Z is exactly T̃: a C-only entry is deleted.
    if (has_t) return {true, static_cast<CT>(tval)};
  }
  return {};
}

/// Resolve a mask-DISALLOWED position: Merge keeps C's entry, Replace
/// deletes it. T̃'s value never reaches a disallowed position.
template <typename CT>
constexpr Entry<CT> resolve_disallowed(bool replace, bool has_c,
                                       const CT& cval) {
  if (has_c && !replace) return {true, cval};
  return {};
}

}  // namespace write_rules

}  // namespace grb
