#pragma once

/// @file gbtl.hpp
/// Umbrella header: the full public GraphBLAS frontend.
///
///   #include "gbtl/gbtl.hpp"
///   grb::Matrix<double, grb::GpuSim> A(n, n);
///   grb::vxm(w, grb::complement(visited), grb::NoAccumulate{},
///            grb::LogicalSemiring<bool>{}, frontier, A, grb::Replace);

#include "gbtl/algebra.hpp"
#include "gbtl/backend_registry.hpp"
#include "gbtl/execution_policy.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/operations.hpp"
#include "gbtl/types.hpp"
#include "gbtl/utility.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"
