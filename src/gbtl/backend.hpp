#pragma once

/// @file backend.hpp
/// Backend selection: maps a backend tag (grb::Sequential / grb::CpuPar /
/// grb::GpuSim) to its container types and operation entry points. GBTL 1.0
/// chose the backend by include-path substitution at configure time; this
/// repo uses a tag template parameter instead so all backends coexist in one
/// binary — the equivalence tests and the CPU-vs-GPU benches depend on that.
/// Runtime discovery (names, buffer hooks, op-table inventory) lives in
/// gbtl/backend_registry.hpp on top of these compile-time seams.

#include <utility>

#include "backend_cpupar/ops.hpp"
#include "backend_gpu/matrix.hpp"
#include "backend_gpu/ops.hpp"
#include "backend_gpu/sharded_matrix.hpp"
#include "backend_gpu/sharded_ops.hpp"
#include "backend_gpu/vector.hpp"
#include "backend_sequential/matrix.hpp"
#include "backend_sequential/ops.hpp"
#include "backend_sequential/vector.hpp"
#include "gbtl/types.hpp"

namespace grb {

template <typename Tag>
struct backend_traits;

template <>
struct backend_traits<Sequential> {
  template <typename T>
  using matrix_type = seq_backend::Matrix<T>;
  template <typename T>
  using vector_type = seq_backend::Vector<T>;
};

/// CpuPar shares the Sequential containers outright (they are written to be
/// safe under CpuPar's distinct-slot parallel writes); only the op entry
/// points differ.
template <>
struct backend_traits<CpuPar> {
  template <typename T>
  using matrix_type = seq_backend::Matrix<T>;
  template <typename T>
  using vector_type = seq_backend::Vector<T>;
};

template <>
struct backend_traits<GpuSim> {
  template <typename T>
  using matrix_type = gpu_backend::Matrix<T>;
  template <typename T>
  using vector_type = gpu_backend::Vector<T>;
};

/// GpuShard spreads the matrix over the thread's gpu_sim placement as
/// row-block shards; vectors stay whole on the home device, so the vector
/// container is the plain GpuSim one.
template <>
struct backend_traits<GpuShard> {
  template <typename T>
  using matrix_type = gpu_backend::ShardedMatrix<T>;
  template <typename T>
  using vector_type = gpu_backend::Vector<T>;
};

/// Uniform forwarding shims so the frontend can dispatch to either backend
/// with one spelling. (Plain ADL would risk resolving back into the
/// frontend's own operation names.)
template <typename Tag>
struct backend_ops;

#define GBTL_FORWARD_OP(op_name)                           \
  template <typename... Args>                              \
  static decltype(auto) op_name(Args&&... args) {          \
    return backend_ns::op_name(std::forward<Args>(args)...); \
  }

template <>
struct backend_ops<Sequential> {
  template <typename M>
  static M transposed(const M& m) {
    return seq_backend::detail::transposed(m);
  }
#define backend_ns seq_backend
  GBTL_FORWARD_OP(mxm)
  GBTL_FORWARD_OP(mxv)
  GBTL_FORWARD_OP(vxm)
  GBTL_FORWARD_OP(ewise_add_vec)
  GBTL_FORWARD_OP(ewise_mult_vec)
  GBTL_FORWARD_OP(ewise_add_mat)
  GBTL_FORWARD_OP(ewise_mult_mat)
  GBTL_FORWARD_OP(apply_vec)
  GBTL_FORWARD_OP(apply_mat)
  GBTL_FORWARD_OP(apply_indexed_vec)
  GBTL_FORWARD_OP(apply_indexed_mat)
  GBTL_FORWARD_OP(reduce_mat_to_vec)
  GBTL_FORWARD_OP(reduce_vec_to_scalar)
  GBTL_FORWARD_OP(reduce_mat_to_scalar)
  GBTL_FORWARD_OP(transpose_op)
  GBTL_FORWARD_OP(extract_vec)
  GBTL_FORWARD_OP(extract_mat)
  GBTL_FORWARD_OP(extract_col)
  GBTL_FORWARD_OP(assign_vec)
  GBTL_FORWARD_OP(assign_vec_constant)
  GBTL_FORWARD_OP(assign_mat)
  GBTL_FORWARD_OP(assign_mat_constant)
  GBTL_FORWARD_OP(kronecker)
  GBTL_FORWARD_OP(select_mat)
  GBTL_FORWARD_OP(select_vec)
#undef backend_ns
};

template <>
struct backend_ops<CpuPar> {
  template <typename M>
  static M transposed(const M& m) {
    return seq_backend::detail::transposed(m);
  }
#define backend_ns cpupar_backend
  GBTL_FORWARD_OP(mxm)
  GBTL_FORWARD_OP(mxv)
  GBTL_FORWARD_OP(vxm)
  GBTL_FORWARD_OP(ewise_add_vec)
  GBTL_FORWARD_OP(ewise_mult_vec)
  GBTL_FORWARD_OP(ewise_add_mat)
  GBTL_FORWARD_OP(ewise_mult_mat)
  GBTL_FORWARD_OP(apply_vec)
  GBTL_FORWARD_OP(apply_mat)
  GBTL_FORWARD_OP(apply_indexed_vec)
  GBTL_FORWARD_OP(apply_indexed_mat)
  GBTL_FORWARD_OP(reduce_mat_to_vec)
  GBTL_FORWARD_OP(reduce_vec_to_scalar)
  GBTL_FORWARD_OP(reduce_mat_to_scalar)
  GBTL_FORWARD_OP(transpose_op)
  GBTL_FORWARD_OP(extract_vec)
  GBTL_FORWARD_OP(extract_mat)
  GBTL_FORWARD_OP(extract_col)
  GBTL_FORWARD_OP(assign_vec)
  GBTL_FORWARD_OP(assign_vec_constant)
  GBTL_FORWARD_OP(assign_mat)
  GBTL_FORWARD_OP(assign_mat_constant)
  GBTL_FORWARD_OP(kronecker)
  GBTL_FORWARD_OP(select_mat)
  GBTL_FORWARD_OP(select_vec)
#undef backend_ns
};

template <>
struct backend_ops<GpuSim> {
  template <typename M>
  static M transposed(const M& m) {
    return gpu_backend::transposed(m);
  }
#define backend_ns gpu_backend
  GBTL_FORWARD_OP(mxm)
  GBTL_FORWARD_OP(mxv)
  GBTL_FORWARD_OP(vxm)
  GBTL_FORWARD_OP(ewise_add_vec)
  GBTL_FORWARD_OP(ewise_mult_vec)
  GBTL_FORWARD_OP(ewise_add_mat)
  GBTL_FORWARD_OP(ewise_mult_mat)
  GBTL_FORWARD_OP(apply_vec)
  GBTL_FORWARD_OP(apply_mat)
  GBTL_FORWARD_OP(apply_indexed_vec)
  GBTL_FORWARD_OP(apply_indexed_mat)
  GBTL_FORWARD_OP(reduce_mat_to_vec)
  GBTL_FORWARD_OP(reduce_vec_to_scalar)
  GBTL_FORWARD_OP(reduce_mat_to_scalar)
  GBTL_FORWARD_OP(transpose_op)
  GBTL_FORWARD_OP(extract_vec)
  GBTL_FORWARD_OP(extract_mat)
  GBTL_FORWARD_OP(extract_col)
  GBTL_FORWARD_OP(assign_vec)
  GBTL_FORWARD_OP(assign_vec_constant)
  GBTL_FORWARD_OP(assign_mat)
  GBTL_FORWARD_OP(assign_mat_constant)
  GBTL_FORWARD_OP(kronecker)
  GBTL_FORWARD_OP(select_mat)
  GBTL_FORWARD_OP(select_vec)
#undef backend_ns
};

template <>
struct backend_ops<GpuShard> {
  template <typename M>
  static M transposed(const M& m) {
    return gpu_shard::transposed(m);
  }
#define backend_ns gpu_shard
  GBTL_FORWARD_OP(mxm)
  GBTL_FORWARD_OP(mxv)
  GBTL_FORWARD_OP(vxm)
  GBTL_FORWARD_OP(ewise_add_vec)
  GBTL_FORWARD_OP(ewise_mult_vec)
  GBTL_FORWARD_OP(ewise_add_mat)
  GBTL_FORWARD_OP(ewise_mult_mat)
  GBTL_FORWARD_OP(apply_vec)
  GBTL_FORWARD_OP(apply_mat)
  GBTL_FORWARD_OP(apply_indexed_vec)
  GBTL_FORWARD_OP(apply_indexed_mat)
  GBTL_FORWARD_OP(reduce_mat_to_vec)
  GBTL_FORWARD_OP(reduce_vec_to_scalar)
  GBTL_FORWARD_OP(reduce_mat_to_scalar)
  GBTL_FORWARD_OP(transpose_op)
  GBTL_FORWARD_OP(extract_vec)
  GBTL_FORWARD_OP(extract_mat)
  GBTL_FORWARD_OP(extract_col)
  GBTL_FORWARD_OP(assign_vec)
  GBTL_FORWARD_OP(assign_vec_constant)
  GBTL_FORWARD_OP(assign_mat)
  GBTL_FORWARD_OP(assign_mat_constant)
  GBTL_FORWARD_OP(kronecker)
  GBTL_FORWARD_OP(select_mat)
  GBTL_FORWARD_OP(select_vec)
#undef backend_ns
};

#undef GBTL_FORWARD_OP

}  // namespace grb
