#pragma once

/// @file mask.hpp
/// Backend-neutral mask descriptor. The frontend lowers whatever the caller
/// passed — NoMask, a Matrix/Vector, complement(m), structure(m),
/// complement(structure(m)) — into this one POD that backends interpret.
/// `mask == nullptr` means unmasked.

namespace grb {

template <typename MaskObj>
struct MaskDesc {
  const MaskObj* mask = nullptr;
  /// Complemented mask: positions *not* allowed by the mask are written.
  bool complement = false;
  /// Structural mask: presence alone allows a position (stored falsy
  /// values still allow); otherwise the stored value must be truthy.
  bool structural = false;

  bool unmasked() const { return mask == nullptr; }
};

/// Descriptor used when the caller passed grb::NoMask.
struct EmptyMaskObj {};
using NoMaskDesc = MaskDesc<EmptyMaskObj>;

}  // namespace grb
