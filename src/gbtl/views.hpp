#pragma once

/// @file views.hpp
/// Lightweight, non-owning views used as operation arguments:
///   - transpose(A)            — use A' as an input operand;
///   - complement(mask)        — write where the mask is absent/falsy;
///   - structure(mask)         — mask by structure (presence) only.
/// Views nest: complement(structure(m)) writes where m has no stored value.

#include "gbtl/matrix.hpp"
#include "gbtl/mask.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/write_rules.hpp"

namespace grb {

template <typename MatT>
struct TransposeView {
  const MatT* mat;
};

template <typename Masked>
struct ComplementView {
  const Masked* inner;
};

template <typename Masked>
struct StructureView {
  const Masked* inner;
};

template <typename T, typename Tag>
TransposeView<Matrix<T, Tag>> transpose(const Matrix<T, Tag>& a) {
  return {&a};
}

template <typename T, typename Tag>
ComplementView<Matrix<T, Tag>> complement(const Matrix<T, Tag>& m) {
  return {&m};
}
template <typename T, typename Tag>
ComplementView<Vector<T, Tag>> complement(const Vector<T, Tag>& m) {
  return {&m};
}
template <typename Masked>
ComplementView<StructureView<Masked>> complement(
    const StructureView<Masked>& m) {
  return {&m};
}

template <typename T, typename Tag>
StructureView<Matrix<T, Tag>> structure(const Matrix<T, Tag>& m) {
  return {&m};
}
template <typename T, typename Tag>
StructureView<Vector<T, Tag>> structure(const Vector<T, Tag>& m) {
  return {&m};
}
template <typename Masked>
StructureView<ComplementView<Masked>> structure(
    const ComplementView<Masked>& m) {
  return {&m};
}

namespace detail {

// Forward declarations: these overload sets recurse through nested views,
// and unqualified lookup inside grb::detail only sees names declared above
// the definition (ADL associates grb, not grb::detail).
inline NoMaskDesc lower_mask(const NoMask&);
template <typename T, typename Tag>
MaskDesc<typename Matrix<T, Tag>::BackendType> lower_mask(
    const Matrix<T, Tag>& m);
template <typename T, typename Tag>
MaskDesc<typename Vector<T, Tag>::BackendType> lower_mask(
    const Vector<T, Tag>& m);
template <typename Masked>
auto lower_mask(const ComplementView<Masked>& m);
template <typename Masked>
auto lower_mask(const StructureView<Masked>& m);

inline bool mask_shape_ok(const NoMask&, IndexType, IndexType);
template <typename T, typename Tag>
bool mask_shape_ok(const Matrix<T, Tag>& m, IndexType r, IndexType c);
template <typename Masked>
bool mask_shape_ok(const ComplementView<Masked>& m, IndexType r, IndexType c);
template <typename Masked>
bool mask_shape_ok(const StructureView<Masked>& m, IndexType r, IndexType c);

inline bool mask_size_ok(const NoMask&, IndexType);
template <typename T, typename Tag>
bool mask_size_ok(const Vector<T, Tag>& m, IndexType n);
template <typename Masked>
bool mask_size_ok(const ComplementView<Masked>& m, IndexType n);
template <typename Masked>
bool mask_size_ok(const StructureView<Masked>& m, IndexType n);

// ---- Mask lowering: frontend mask argument -> backend MaskDesc ----------

inline NoMaskDesc lower_mask(const NoMask&) { return NoMaskDesc{}; }

template <typename T, typename Tag>
MaskDesc<typename Matrix<T, Tag>::BackendType> lower_mask(
    const Matrix<T, Tag>& m) {
  return {&m.impl(), false, false};
}

template <typename T, typename Tag>
MaskDesc<typename Vector<T, Tag>::BackendType> lower_mask(
    const Vector<T, Tag>& m) {
  return {&m.impl(), false, false};
}

template <typename Masked>
auto lower_mask(const ComplementView<Masked>& m) {
  auto desc = lower_mask(*m.inner);
  desc.complement = !desc.complement;
  return desc;
}

template <typename Masked>
auto lower_mask(const StructureView<Masked>& m) {
  auto desc = lower_mask(*m.inner);
  desc.structural = true;
  return desc;
}

// ---- Output lowering: {mask argument, OutputControl} -> OutputDescriptor -

/// Capture the whole output side of a call — mask interpretation plus the
/// Merge/Replace choice — in one descriptor at the frontend boundary. The
/// backends never see the raw mask argument or OutputControl again.
template <typename MObj>
OutputDescriptor<MObj> describe_output(MaskDesc<MObj> mask,
                                       OutputControl outp) {
  return {mask, outp == OutputControl::Replace};
}

template <typename MaskT>
auto lower_output(const MaskT& m, OutputControl outp) {
  return describe_output(lower_mask(m), outp);
}

// ---- Mask dimension probing ----------------------------------------------

inline bool mask_shape_ok(const NoMask&, IndexType, IndexType) { return true; }
template <typename T, typename Tag>
bool mask_shape_ok(const Matrix<T, Tag>& m, IndexType r, IndexType c) {
  return m.nrows() == r && m.ncols() == c;
}
template <typename Masked>
bool mask_shape_ok(const ComplementView<Masked>& m, IndexType r, IndexType c) {
  return mask_shape_ok(*m.inner, r, c);
}
template <typename Masked>
bool mask_shape_ok(const StructureView<Masked>& m, IndexType r, IndexType c) {
  return mask_shape_ok(*m.inner, r, c);
}

inline bool mask_size_ok(const NoMask&, IndexType) { return true; }
template <typename T, typename Tag>
bool mask_size_ok(const Vector<T, Tag>& m, IndexType n) {
  return m.size() == n;
}
template <typename Masked>
bool mask_size_ok(const ComplementView<Masked>& m, IndexType n) {
  return mask_size_ok(*m.inner, n);
}
template <typename Masked>
bool mask_size_ok(const StructureView<Masked>& m, IndexType n) {
  return mask_size_ok(*m.inner, n);
}

// ---- Matrix-operand lowering (materializes TransposeView) ---------------

template <typename T, typename Tag>
const typename Matrix<T, Tag>::BackendType& lower_operand(
    const Matrix<T, Tag>& a) {
  return a.impl();
}

template <typename T, typename Tag>
typename Matrix<T, Tag>::BackendType lower_operand(
    const TransposeView<Matrix<T, Tag>>& v) {
  return backend_ops<Tag>::transposed(v.mat->impl());
}

template <typename T, typename Tag>
IndexType nrows_of(const Matrix<T, Tag>& a) {
  return a.nrows();
}
template <typename T, typename Tag>
IndexType ncols_of(const Matrix<T, Tag>& a) {
  return a.ncols();
}
template <typename MatT>
IndexType nrows_of(const TransposeView<MatT>& v) {
  return v.mat->ncols();
}
template <typename MatT>
IndexType ncols_of(const TransposeView<MatT>& v) {
  return v.mat->nrows();
}

}  // namespace detail

}  // namespace grb
