#pragma once

/// @file backend_registry.hpp
/// Runtime backend registry: every backend publishes a name, its raw buffer
/// hooks (alloc / release / set / get / synchronize), and an inventory of
/// the operation table it exposes. The compile-time seams stay where they
/// were — backend_traits<Tag> / backend_ops<Tag> in gbtl/backend.hpp — and
/// the registry is the discovery layer on top: the serving layer names
/// backends with it, tooling lists them, and every remaining ROADMAP item
/// (multi-device sharding, alternate bit formats) plugs a new entry in here
/// instead of growing another hard-coded tag pair.
///
/// The interface shape follows the ggml-backend registry idiom: a flat
/// record of function pointers per backend, duplicate-name registration
/// rejected, lookups either returning null (find) or throwing a diagnostic
/// that lists what IS registered (require).
///
/// The op-table inventory is computed at compile time: op_table_of<Tag>()
/// probes backend_ops<Tag> with representative argument types through
/// requires-expressions, so "backend X implements op Y" is a constexpr fact
/// the tests static_assert on — a backend that loses an op breaks the build,
/// not a nightly run.

#include <array>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "backend_cpupar/pool.hpp"
#include "gbtl/algebra.hpp"
#include "gbtl/backend.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "gpu_sim/context.hpp"

namespace grb::backend {

// ==========================================================================
// Buffer hooks
// ==========================================================================

/// Raw buffer interface of one backend, mirroring the
/// alloc/free/set/get/synchronize surface a real device runtime exposes
/// (cudaMalloc / cudaFree / cudaMemcpy / cudaDeviceSynchronize). `set`
/// copies host memory INTO a backend buffer, `get` copies a backend buffer
/// back OUT to host memory. For the GpuSim backend the hooks route through
/// the calling thread's bound device (gpu_sim::device()), so they respect
/// ScopedDevice rebinding exactly as the containers do.
struct BufferOps {
  void* (*alloc)(std::size_t bytes) = nullptr;
  void (*release)(void* ptr) = nullptr;
  void (*set)(void* dst, const void* src, std::size_t bytes) = nullptr;
  void (*get)(void* dst, const void* src, std::size_t bytes) = nullptr;
  void (*synchronize)() = nullptr;
};

// ==========================================================================
// Op-table inventory
// ==========================================================================

/// One flag per operation entry point of the GraphBLAS op table (plus the
/// TransposeView lowering hook). Computed by op_table_of<Tag>().
struct OpTable {
  bool mxm = false;
  bool mxv = false;
  bool vxm = false;
  bool ewise_add_vec = false;
  bool ewise_mult_vec = false;
  bool ewise_add_mat = false;
  bool ewise_mult_mat = false;
  bool apply_vec = false;
  bool apply_mat = false;
  bool apply_indexed_vec = false;
  bool apply_indexed_mat = false;
  bool reduce_mat_to_vec = false;
  bool reduce_vec_to_scalar = false;
  bool reduce_mat_to_scalar = false;
  bool transpose_op = false;
  bool extract_vec = false;
  bool extract_mat = false;
  bool extract_col = false;
  bool assign_vec = false;
  bool assign_vec_constant = false;
  bool assign_mat = false;
  bool assign_mat_constant = false;
  bool kronecker = false;
  bool select_mat = false;
  bool select_vec = false;
  bool transposed = false;

  constexpr bool complete() const {
    return mxm && mxv && vxm && ewise_add_vec && ewise_mult_vec &&
           ewise_add_mat && ewise_mult_mat && apply_vec && apply_mat &&
           apply_indexed_vec && apply_indexed_mat && reduce_mat_to_vec &&
           reduce_vec_to_scalar && reduce_mat_to_scalar && transpose_op &&
           extract_vec && extract_mat && extract_col && assign_vec &&
           assign_vec_constant && assign_mat && assign_mat_constant &&
           kronecker && select_mat && select_vec && transposed;
  }
};

/// Named view of the flags, for diagnostics (missing_ops) and tests.
struct OpTableEntry {
  const char* name;
  bool OpTable::*flag;
};

inline constexpr std::array<OpTableEntry, 26> kOpTableEntries{{
    {"mxm", &OpTable::mxm},
    {"mxv", &OpTable::mxv},
    {"vxm", &OpTable::vxm},
    {"ewise_add_vec", &OpTable::ewise_add_vec},
    {"ewise_mult_vec", &OpTable::ewise_mult_vec},
    {"ewise_add_mat", &OpTable::ewise_add_mat},
    {"ewise_mult_mat", &OpTable::ewise_mult_mat},
    {"apply_vec", &OpTable::apply_vec},
    {"apply_mat", &OpTable::apply_mat},
    {"apply_indexed_vec", &OpTable::apply_indexed_vec},
    {"apply_indexed_mat", &OpTable::apply_indexed_mat},
    {"reduce_mat_to_vec", &OpTable::reduce_mat_to_vec},
    {"reduce_vec_to_scalar", &OpTable::reduce_vec_to_scalar},
    {"reduce_mat_to_scalar", &OpTable::reduce_mat_to_scalar},
    {"transpose_op", &OpTable::transpose_op},
    {"extract_vec", &OpTable::extract_vec},
    {"extract_mat", &OpTable::extract_mat},
    {"extract_col", &OpTable::extract_col},
    {"assign_vec", &OpTable::assign_vec},
    {"assign_vec_constant", &OpTable::assign_vec_constant},
    {"assign_mat", &OpTable::assign_mat},
    {"assign_mat_constant", &OpTable::assign_mat_constant},
    {"kronecker", &OpTable::kronecker},
    {"select_mat", &OpTable::select_mat},
    {"select_vec", &OpTable::select_vec},
    {"transposed", &OpTable::transposed},
}};

inline std::vector<const char*> missing_ops(const OpTable& t) {
  std::vector<const char*> missing;
  for (const auto& e : kOpTableEntries)
    if (!(t.*(e.flag))) missing.push_back(e.name);
  return missing;
}

namespace probe {

// Declaration-only functors for the op-table probes (only ever named inside
// unevaluated requires-expressions).
struct IdxUnaryVec {
  double operator()(IndexType i, double v) const;
};
struct IdxUnaryMat {
  double operator()(IndexType i, IndexType j, double v) const;
};
struct PredVec {
  bool operator()(IndexType i, double v) const;
};
struct PredMat {
  bool operator()(IndexType i, IndexType j, double v) const;
};

}  // namespace probe

/// Compile-time op-table inventory of backend_ops<Tag>: each flag is the
/// result of a requires-expression probing the entry point with the
/// backend's own container types and representative algebra arguments.
template <typename Tag>
constexpr OpTable op_table_of() {
  using M = typename backend_traits<Tag>::template matrix_type<double>;
  using V = typename backend_traits<Tag>::template vector_type<double>;
  using Out = OutputDescriptor<EmptyMaskObj>;
  using Ops = backend_ops<Tag>;
  using SR = ArithmeticSemiring<double>;
  using Monoid = PlusMonoid<double>;

  OpTable t;
  t.mxm = requires(M& c, const Out& o, const M& a, const M& b) {
    Ops::mxm(c, o, NoAccumulate{}, SR{}, a, b);
  };
  t.mxv = requires(V& w, const Out& o, const M& a, const V& u) {
    Ops::mxv(w, o, NoAccumulate{}, SR{}, a, u);
  };
  t.vxm = requires(V& w, const Out& o, const V& u, const M& a) {
    Ops::vxm(w, o, NoAccumulate{}, SR{}, u, a);
  };
  t.ewise_add_vec = requires(V& w, const Out& o, const V& u, const V& v) {
    Ops::ewise_add_vec(w, o, NoAccumulate{}, Plus<double>{}, u, v);
  };
  t.ewise_mult_vec = requires(V& w, const Out& o, const V& u, const V& v) {
    Ops::ewise_mult_vec(w, o, NoAccumulate{}, Times<double>{}, u, v);
  };
  t.ewise_add_mat = requires(M& c, const Out& o, const M& a, const M& b) {
    Ops::ewise_add_mat(c, o, NoAccumulate{}, Plus<double>{}, a, b);
  };
  t.ewise_mult_mat = requires(M& c, const Out& o, const M& a, const M& b) {
    Ops::ewise_mult_mat(c, o, NoAccumulate{}, Times<double>{}, a, b);
  };
  t.apply_vec = requires(V& w, const Out& o, const V& u) {
    Ops::apply_vec(w, o, NoAccumulate{}, Abs<double>{}, u);
  };
  t.apply_mat = requires(M& c, const Out& o, const M& a) {
    Ops::apply_mat(c, o, NoAccumulate{}, Abs<double>{}, a);
  };
  t.apply_indexed_vec = requires(V& w, const Out& o, const V& u) {
    Ops::apply_indexed_vec(w, o, NoAccumulate{}, probe::IdxUnaryVec{}, u);
  };
  t.apply_indexed_mat = requires(M& c, const Out& o, const M& a) {
    Ops::apply_indexed_mat(c, o, NoAccumulate{}, probe::IdxUnaryMat{}, a);
  };
  t.reduce_mat_to_vec = requires(V& w, const Out& o, const M& a) {
    Ops::reduce_mat_to_vec(w, o, NoAccumulate{}, Monoid{}, a);
  };
  t.reduce_vec_to_scalar = requires(double& s, const V& u) {
    Ops::reduce_vec_to_scalar(s, NoAccumulate{}, Monoid{}, u);
  };
  t.reduce_mat_to_scalar = requires(double& s, const M& a) {
    Ops::reduce_mat_to_scalar(s, NoAccumulate{}, Monoid{}, a);
  };
  t.transpose_op = requires(M& c, const Out& o, const M& a) {
    Ops::transpose_op(c, o, NoAccumulate{}, a);
  };
  t.extract_vec = requires(V& w, const Out& o, const V& u,
                           const IndexArrayType& idx) {
    Ops::extract_vec(w, o, NoAccumulate{}, u, idx);
  };
  t.extract_mat = requires(M& c, const Out& o, const M& a,
                           const IndexArrayType& idx) {
    Ops::extract_mat(c, o, NoAccumulate{}, a, idx, idx);
  };
  t.extract_col = requires(V& w, const Out& o, const M& a,
                           const IndexArrayType& idx) {
    Ops::extract_col(w, o, NoAccumulate{}, a, idx, IndexType{0});
  };
  t.assign_vec = requires(V& w, const Out& o, const V& u,
                          const IndexArrayType& idx) {
    Ops::assign_vec(w, o, NoAccumulate{}, u, idx);
  };
  t.assign_vec_constant = requires(V& w, const Out& o,
                                   const IndexArrayType& idx) {
    Ops::assign_vec_constant(w, o, NoAccumulate{}, 1.0, idx);
  };
  t.assign_mat = requires(M& c, const Out& o, const M& a,
                          const IndexArrayType& idx) {
    Ops::assign_mat(c, o, NoAccumulate{}, a, idx, idx);
  };
  t.assign_mat_constant = requires(M& c, const Out& o,
                                   const IndexArrayType& idx) {
    Ops::assign_mat_constant(c, o, NoAccumulate{}, 1.0, idx, idx);
  };
  t.kronecker = requires(M& c, const Out& o, const M& a, const M& b) {
    Ops::kronecker(c, o, NoAccumulate{}, Times<double>{}, a, b);
  };
  t.select_mat = requires(M& c, const Out& o, const M& a) {
    Ops::select_mat(c, o, NoAccumulate{}, probe::PredMat{}, a);
  };
  t.select_vec = requires(V& w, const Out& o, const V& u) {
    Ops::select_vec(w, o, NoAccumulate{}, probe::PredVec{}, u);
  };
  t.transposed = requires(const M& a) { Ops::transposed(a); };
  return t;
}

/// Canonical registry name of a backend tag.
template <typename Tag>
constexpr const char* backend_name() {
  if constexpr (std::is_same_v<Tag, Sequential>) return "sequential";
  else if constexpr (std::is_same_v<Tag, CpuPar>) return "cpupar";
  else if constexpr (std::is_same_v<Tag, GpuSim>) return "gpusim";
  else if constexpr (std::is_same_v<Tag, GpuShard>) return "gpushard";
  else return "unknown";
}

// ==========================================================================
// Registry
// ==========================================================================

/// One registered backend: name + buffer hooks + op-table inventory.
struct BackendInfo {
  std::string name;
  BufferOps buffers{};
  OpTable ops{};
};

namespace detail {

// Host-side buffer hooks, shared by the Sequential and CpuPar entries. The
// CpuPar synchronize is also a no-op by design: parallel_for joins before
// an operation returns, so there is never outstanding asynchronous work.
inline void* host_alloc(std::size_t bytes) { return ::operator new(bytes); }
inline void host_release(void* ptr) { ::operator delete(ptr); }
inline void host_set(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}
inline void host_get(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}
inline void host_synchronize() {}

// GpuSim hooks: route through the calling thread's bound simulated device.
inline void* gpusim_alloc(std::size_t bytes) {
  return gpu_sim::device().malloc_bytes(bytes);
}
inline void gpusim_release(void* ptr) { gpu_sim::device().free_bytes(ptr); }
inline void gpusim_set(void* dst, const void* src, std::size_t bytes) {
  gpu_sim::device().copy_h2d(dst, src, bytes);
}
inline void gpusim_get(void* dst, const void* src, std::size_t bytes) {
  gpu_sim::device().copy_d2h(dst, src, bytes);
}
// Launches are synchronous on the simulated device; the hook exists so
// callers can be written against the asynchronous contract.
inline void gpusim_synchronize() {}

inline constexpr BufferOps kHostBufferOps{host_alloc, host_release, host_set,
                                          host_get, host_synchronize};
inline constexpr BufferOps kGpuSimBufferOps{gpusim_alloc, gpusim_release,
                                            gpusim_set, gpusim_get,
                                            gpusim_synchronize};

}  // namespace detail

/// Process-wide backend directory. The three built-in backends are
/// registered on first access; register_backend adds more (duplicate names
/// rejected). Entries have stable addresses for the registry's lifetime.
class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  /// Register a backend. @throws InvalidValueException when @p info.name is
  /// already taken (registration is first-come, there is no override).
  const BackendInfo& register_backend(BackendInfo info) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& b : backends_)
      if (b->name == info.name)
        throw InvalidValueException("backend '" + info.name +
                                    "' is already registered");
    backends_.push_back(std::make_unique<BackendInfo>(std::move(info)));
    return *backends_.back();
  }

  /// The backend named @p name, or nullptr.
  const BackendInfo* find(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& b : backends_)
      if (b->name == name) return b.get();
    return nullptr;
  }

  /// The backend named @p name. @throws InvalidValueException whose message
  /// names the unknown backend AND lists every registered one.
  const BackendInfo& require(std::string_view name) const {
    if (const BackendInfo* b = find(name)) return *b;
    std::string msg = "unknown backend '";
    msg += name;
    msg += "'; registered backends:";
    for (const std::string& n : names()) {
      msg += ' ';
      msg += n;
    }
    throw InvalidValueException(msg);
  }

  /// Names of every registered backend, in registration order.
  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(backends_.size());
    for (const auto& b : backends_) out.push_back(b->name);
    return out;
  }

 private:
  Registry() {
    // Built-ins, in the order the repo grew them. Op tables are constexpr
    // facts about backend_ops<Tag> — see op_table_of.
    backends_.push_back(std::make_unique<BackendInfo>(BackendInfo{
        backend_name<Sequential>(), detail::kHostBufferOps,
        op_table_of<Sequential>()}));
    backends_.push_back(std::make_unique<BackendInfo>(BackendInfo{
        backend_name<GpuSim>(), detail::kGpuSimBufferOps,
        op_table_of<GpuSim>()}));
    backends_.push_back(std::make_unique<BackendInfo>(BackendInfo{
        backend_name<CpuPar>(), detail::kHostBufferOps,
        op_table_of<CpuPar>()}));
    // GpuShard vectors live whole on the home device, so its raw buffer
    // hooks are the GpuSim ones; only the matrix storage is sharded.
    backends_.push_back(std::make_unique<BackendInfo>(BackendInfo{
        backend_name<GpuShard>(), detail::kGpuSimBufferOps,
        op_table_of<GpuShard>()}));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<BackendInfo>> backends_;
};

}  // namespace grb::backend
