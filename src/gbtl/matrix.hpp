#pragma once

/// @file matrix.hpp
/// The public GraphBLAS matrix. A thin, backend-agnostic shell: all storage
/// and computation live in the backend object selected by the Tag parameter.

#include <initializer_list>
#include <vector>

#include "gbtl/algebra.hpp"
#include "gbtl/backend.hpp"
#include "gbtl/types.hpp"

namespace grb {

template <typename T, typename Tag = Sequential>
class Matrix {
 public:
  using ScalarType = T;
  using BackendTag = Tag;
  using BackendType =
      typename backend_traits<Tag>::template matrix_type<T>;

  /// An nrows x ncols matrix with no stored values.
  Matrix(IndexType nrows, IndexType ncols) : impl_(nrows, ncols) {}

  /// Build from a dense row-major initializer; values equal to
  /// @p implied_zero are not stored. Convenient in tests and examples:
  ///   Matrix<double> A({{1, 0}, {0, 2}}, 0);
  Matrix(const std::vector<std::vector<T>>& dense, const T& implied_zero)
      : impl_(dense.size(), dense.empty() ? 0 : dense.front().size()) {
    IndexArrayType rows, cols;
    std::vector<T> vals;
    for (IndexType i = 0; i < dense.size(); ++i) {
      if (dense[i].size() != dense.front().size())
        throw InvalidValueException("ragged dense initializer");
      for (IndexType j = 0; j < dense[i].size(); ++j) {
        if (dense[i][j] == implied_zero) continue;
        rows.push_back(i);
        cols.push_back(j);
        vals.push_back(dense[i][j]);
      }
    }
    impl_.build(rows, cols, vals.begin(),
                static_cast<IndexType>(vals.size()), Second<T>{});
  }

  IndexType nrows() const { return impl_.nrows(); }
  IndexType ncols() const { return impl_.ncols(); }
  IndexType nvals() const { return impl_.nvals(); }

  void clear() { impl_.clear(); }

  /// GrB_Matrix_resize: change shape; entries outside the new bounds are
  /// dropped, growth adds empty space.
  void resize(IndexType nrows, IndexType ncols) {
    impl_.resize(nrows, ncols);
  }

  /// Populate from coordinate arrays. Duplicate coordinates combine via
  /// @p dup (default: addition, matching most GraphBLAS example code).
  template <typename DupOp = Plus<T>>
  void build(const IndexArrayType& row_indices,
             const IndexArrayType& col_indices, const std::vector<T>& values,
             DupOp dup = DupOp{}) {
    if (row_indices.size() != values.size() ||
        col_indices.size() != values.size())
      throw InvalidValueException("build: array length mismatch");
    impl_.build(row_indices, col_indices, values.begin(),
                static_cast<IndexType>(values.size()), dup);
  }

  bool hasElement(IndexType row, IndexType col) const {
    return impl_.has_element(row, col);
  }
  T extractElement(IndexType row, IndexType col) const {
    return impl_.get_element(row, col);
  }
  void setElement(IndexType row, IndexType col, const T& value) {
    impl_.set_element(row, col, value);
  }
  void removeElement(IndexType row, IndexType col) {
    impl_.remove_element(row, col);
  }

  /// Dump stored entries, row-major sorted.
  void extractTuples(IndexArrayType& row_indices, IndexArrayType& col_indices,
                     std::vector<T>& values) const {
    impl_.extract_tuples(row_indices, col_indices, values);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.impl_ == b.impl_;
  }

  /// Backend escape hatch used by the operations layer.
  BackendType& impl() { return impl_; }
  const BackendType& impl() const { return impl_; }

 private:
  BackendType impl_;
};

}  // namespace grb
