#pragma once

/// @file gbtl/overlay_ops.hpp
/// Frontend entry points for the overlay-aware SpMV pair:
///
///   mxv_overlay(w, mask, accum, semiring, A, overlay, u, outp)
///   vxm_overlay(w, mask, accum, semiring, u, A, overlay, outp)
///
/// `A` is the matrix built from the BASE CSR; `overlay` replaces whole rows
/// of it (grb::MatrixOverlay). Results are bit-identical to running the
/// plain op on a monolithically rebuilt matrix, for any semiring / mask /
/// accumulator — the property tests and the differential-fuzz Overlay leg
/// enforce this across Sequential, CpuPar, and GpuSim.
///
/// These are deliberately NOT in the backend_ops registry: GpuShard has no
/// overlay kernels (a sharded graph compacts before upload instead), and
/// the GpuSim implementations run eagerly outside the fusion DAG.

#include <type_traits>

#include "backend_cpupar/overlay_ops.hpp"
#include "backend_gpu/overlay_ops.hpp"
#include "backend_sequential/overlay_ops.hpp"
#include "gbtl/operations.hpp"
#include "gbtl/overlay.hpp"

namespace grb {

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename AT, typename UT>
void mxv_overlay(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
                 const SR& semiring, const Matrix<AT, Tag>& A,
                 const MatrixOverlay<AT>& overlay, const Vector<UT, Tag>& u,
                 OutputControl outp = Merge) {
  detail::check_dims(A.nrows() == w.size(), "mxv_overlay",
                     "w.size != A.nrows", w.size(), A.nrows());
  detail::check_dims(A.ncols() == u.size(), "mxv_overlay",
                     "u.size != A.ncols", u.size(), A.ncols());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "mxv_overlay",
                          w.size());
  if constexpr (std::is_same_v<Tag, Sequential>) {
    seq_backend::mxv_overlay(w.impl(), detail::lower_output(mask, outp),
                             accum, semiring, A.impl(), overlay, u.impl());
  } else if constexpr (std::is_same_v<Tag, CpuPar>) {
    cpupar_backend::mxv_overlay(w.impl(), detail::lower_output(mask, outp),
                                accum, semiring, A.impl(), overlay, u.impl());
  } else if constexpr (std::is_same_v<Tag, GpuSim>) {
    gpu_backend::mxv_overlay(w.impl(), detail::lower_output(mask, outp),
                             accum, semiring, A.impl(), overlay, u.impl());
  } else {
    static_assert(!sizeof(Tag*),
                  "mxv_overlay: no overlay kernels for this backend");
  }
}

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename UT, typename AT>
void vxm_overlay(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
                 const SR& semiring, const Vector<UT, Tag>& u,
                 const Matrix<AT, Tag>& A, const MatrixOverlay<AT>& overlay,
                 OutputControl outp = Merge) {
  detail::check_dims(A.ncols() == w.size(), "vxm_overlay",
                     "w.size != A.ncols", w.size(), A.ncols());
  detail::check_dims(A.nrows() == u.size(), "vxm_overlay",
                     "u.size != A.nrows", u.size(), A.nrows());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "vxm_overlay",
                          w.size());
  if constexpr (std::is_same_v<Tag, Sequential>) {
    seq_backend::vxm_overlay(w.impl(), detail::lower_output(mask, outp),
                             accum, semiring, u.impl(), A.impl(), overlay);
  } else if constexpr (std::is_same_v<Tag, CpuPar>) {
    cpupar_backend::vxm_overlay(w.impl(), detail::lower_output(mask, outp),
                                accum, semiring, u.impl(), A.impl(), overlay);
  } else if constexpr (std::is_same_v<Tag, GpuSim>) {
    gpu_backend::vxm_overlay(w.impl(), detail::lower_output(mask, outp),
                             accum, semiring, u.impl(), A.impl(), overlay);
  } else {
    static_assert(!sizeof(Tag*),
                  "vxm_overlay: no overlay kernels for this backend");
  }
}

}  // namespace grb
