#pragma once

/// @file operations.hpp
/// The GraphBLAS operations — the public computational API. Every function
/// follows the GraphBLAS C++ argument order:
///
///   op(output, mask, accumulator, operator/semiring, inputs..., outp)
///
/// - `mask`:  NoMask{}, a Matrix/Vector, or complement()/structure() views.
/// - `accum`: NoAccumulate{} or a binary operator (e.g. Plus<T>{}).
/// - `outp`:  Merge (default) keeps non-masked output entries, Replace
///            deletes them.
///
/// Matrix operands may be wrapped in transpose(A). The frontend validates
/// shapes and lowers the call onto the backend selected by the output's tag.

#include "gbtl/algebra.hpp"
#include "gbtl/backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"

namespace grb {

// ===========================================================================
// mxm: C<M,z> = accum(C, A +.* B)
// ===========================================================================

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename AMat, typename BMat>
void mxm(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
         const SR& semiring, const AMat& A, const BMat& B,
         OutputControl outp = Merge) {
  detail::check(detail::nrows_of(A) == C.nrows(), "mxm: C.nrows != A.nrows");
  detail::check(detail::ncols_of(B) == C.ncols(), "mxm: C.ncols != B.ncols");
  detail::check(detail::ncols_of(A) == detail::nrows_of(B),
                "mxm: A.ncols != B.nrows");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "mxm: mask shape");
  auto&& a = detail::lower_operand(A);
  auto&& b = detail::lower_operand(B);
  backend_ops<Tag>::mxm(C.impl(), detail::lower_mask(Mask), accum, semiring,
                        a, b, outp == Replace);
}

// ===========================================================================
// mxv: w<m,z> = accum(w, A +.* u)
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename AMat, typename UT>
void mxv(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
         const SR& semiring, const AMat& A, const Vector<UT, Tag>& u,
         OutputControl outp = Merge) {
  detail::check(detail::nrows_of(A) == w.size(), "mxv: w.size != A.nrows");
  detail::check(detail::ncols_of(A) == u.size(), "mxv: u.size != A.ncols");
  detail::check(detail::mask_size_ok(mask, w.size()), "mxv: mask size");
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::mxv(w.impl(), detail::lower_mask(mask), accum, semiring,
                        a, u.impl(), outp == Replace);
}

// ===========================================================================
// vxm: w<m,z> = accum(w, u +.* A)
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename UT, typename AMat>
void vxm(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
         const SR& semiring, const Vector<UT, Tag>& u, const AMat& A,
         OutputControl outp = Merge) {
  detail::check(detail::ncols_of(A) == w.size(), "vxm: w.size != A.ncols");
  detail::check(detail::nrows_of(A) == u.size(), "vxm: u.size != A.nrows");
  detail::check(detail::mask_size_ok(mask, w.size()), "vxm: mask size");
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::vxm(w.impl(), detail::lower_mask(mask), accum, semiring,
                        u.impl(), a, outp == Replace);
}

// ===========================================================================
// eWiseAdd / eWiseMult
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename UT, typename VT>
void eWiseAdd(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
              const Op& op, const Vector<UT, Tag>& u,
              const Vector<VT, Tag>& v, OutputControl outp = Merge) {
  detail::check(u.size() == w.size() && v.size() == w.size(),
                "eWiseAdd: size mismatch");
  detail::check(detail::mask_size_ok(mask, w.size()), "eWiseAdd: mask size");
  backend_ops<Tag>::ewise_add_vec(w.impl(), detail::lower_mask(mask), accum,
                                  op, u.impl(), v.impl(), outp == Replace);
}

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename UT, typename VT>
void eWiseMult(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
               const Op& op, const Vector<UT, Tag>& u,
               const Vector<VT, Tag>& v, OutputControl outp = Merge) {
  detail::check(u.size() == w.size() && v.size() == w.size(),
                "eWiseMult: size mismatch");
  detail::check(detail::mask_size_ok(mask, w.size()), "eWiseMult: mask size");
  backend_ops<Tag>::ewise_mult_vec(w.impl(), detail::lower_mask(mask), accum,
                                   op, u.impl(), v.impl(), outp == Replace);
}

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename AMat, typename BMat>
void eWiseAdd(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
              const Op& op, const AMat& A, const BMat& B,
              OutputControl outp = Merge) {
  detail::check(detail::nrows_of(A) == C.nrows() &&
                    detail::ncols_of(A) == C.ncols() &&
                    detail::nrows_of(B) == C.nrows() &&
                    detail::ncols_of(B) == C.ncols(),
                "eWiseAdd: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "eWiseAdd: mask shape");
  auto&& a = detail::lower_operand(A);
  auto&& b = detail::lower_operand(B);
  backend_ops<Tag>::ewise_add_mat(C.impl(), detail::lower_mask(Mask), accum,
                                  op, a, b, outp == Replace);
}

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename AMat, typename BMat>
void eWiseMult(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
               const Op& op, const AMat& A, const BMat& B,
               OutputControl outp = Merge) {
  detail::check(detail::nrows_of(A) == C.nrows() &&
                    detail::ncols_of(A) == C.ncols() &&
                    detail::nrows_of(B) == C.nrows() &&
                    detail::ncols_of(B) == C.ncols(),
                "eWiseMult: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "eWiseMult: mask shape");
  auto&& a = detail::lower_operand(A);
  auto&& b = detail::lower_operand(B);
  backend_ops<Tag>::ewise_mult_mat(C.impl(), detail::lower_mask(Mask), accum,
                                   op, a, b, outp == Replace);
}

// ===========================================================================
// apply
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename UnaryOp, typename UT>
void apply(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
           const UnaryOp& op, const Vector<UT, Tag>& u,
           OutputControl outp = Merge) {
  detail::check(u.size() == w.size(), "apply: size mismatch");
  detail::check(detail::mask_size_ok(mask, w.size()), "apply: mask size");
  backend_ops<Tag>::apply_vec(w.impl(), detail::lower_mask(mask), accum, op,
                              u.impl(), outp == Replace);
}

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename UnaryOp, typename AMat>
void apply(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
           const UnaryOp& op, const AMat& A, OutputControl outp = Merge) {
  detail::check(detail::nrows_of(A) == C.nrows() &&
                    detail::ncols_of(A) == C.ncols(),
                "apply: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "apply: mask shape");
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::apply_mat(C.impl(), detail::lower_mask(Mask), accum, op,
                              a, outp == Replace);
}

// ===========================================================================
// applyIndexed (GraphBLAS IndexUnaryOp extension)
// ===========================================================================

/// w<m,z> = accum(w, f(i, u[i])) — element transform with the position in
/// hand. Powers parent tracking, peeling, and positional filters.
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename IdxOp, typename UT>
void applyIndexed(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
                  const IdxOp& op, const Vector<UT, Tag>& u,
                  OutputControl outp = Merge) {
  detail::check(u.size() == w.size(), "applyIndexed: size mismatch");
  detail::check(detail::mask_size_ok(mask, w.size()),
                "applyIndexed: mask size");
  backend_ops<Tag>::apply_indexed_vec(w.impl(), detail::lower_mask(mask),
                                      accum, op, u.impl(), outp == Replace);
}

/// C<M,z> = accum(C, f(i, j, A(i,j))).
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename IdxOp, typename AT>
void applyIndexed(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
                  const IdxOp& op, const Matrix<AT, Tag>& A,
                  OutputControl outp = Merge) {
  detail::check(A.nrows() == C.nrows() && A.ncols() == C.ncols(),
                "applyIndexed: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "applyIndexed: mask shape");
  backend_ops<Tag>::apply_indexed_mat(C.impl(), detail::lower_mask(Mask),
                                      accum, op, A.impl(), outp == Replace);
}

// ===========================================================================
// reduce
// ===========================================================================

/// Row-wise reduce: w<m,z> = accum(w, reduce_rows(A)).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Monoid, typename AMat>
void reduce(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const Monoid& monoid, const AMat& A, OutputControl outp = Merge) {
  detail::check(detail::nrows_of(A) == w.size(),
                "reduce: w.size != A.nrows");
  detail::check(detail::mask_size_ok(mask, w.size()), "reduce: mask size");
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::reduce_mat_to_vec(w.impl(), detail::lower_mask(mask),
                                      accum, monoid, a, outp == Replace);
}

/// Vector to scalar.
template <typename ST, typename Accum, typename Monoid, typename UT,
          typename Tag>
void reduce(ST& s, const Accum& accum, const Monoid& monoid,
            const Vector<UT, Tag>& u) {
  backend_ops<Tag>::reduce_vec_to_scalar(s, accum, monoid, u.impl());
}

/// Matrix to scalar.
template <typename ST, typename Accum, typename Monoid, typename AT,
          typename Tag>
void reduce(ST& s, const Accum& accum, const Monoid& monoid,
            const Matrix<AT, Tag>& A) {
  backend_ops<Tag>::reduce_mat_to_scalar(s, accum, monoid, A.impl());
}

// ===========================================================================
// transpose (as an operation; see views.hpp for the input-operand view)
// ===========================================================================

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename AT>
void transpose(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
               const Matrix<AT, Tag>& A, OutputControl outp = Merge) {
  detail::check(C.nrows() == A.ncols() && C.ncols() == A.nrows(),
                "transpose: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "transpose: mask shape");
  backend_ops<Tag>::transpose_op(C.impl(), detail::lower_mask(Mask), accum,
                                 A.impl(), outp == Replace);
}

// ===========================================================================
// extract
// ===========================================================================

/// w = u(indices).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename UT>
void extract(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
             const Vector<UT, Tag>& u, const IndexArrayType& indices,
             OutputControl outp = Merge) {
  detail::check(indices.size() == w.size(),
                "extract: w.size != indices.size");
  detail::check(detail::mask_size_ok(mask, w.size()), "extract: mask size");
  backend_ops<Tag>::extract_vec(w.impl(), detail::lower_mask(mask), accum,
                                u.impl(), indices, outp == Replace);
}

/// C = A(row_indices, col_indices).
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename AT>
void extract(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
             const Matrix<AT, Tag>& A, const IndexArrayType& row_indices,
             const IndexArrayType& col_indices, OutputControl outp = Merge) {
  detail::check(row_indices.size() == C.nrows() &&
                    col_indices.size() == C.ncols(),
                "extract: output shape != index set sizes");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "extract: mask shape");
  backend_ops<Tag>::extract_mat(C.impl(), detail::lower_mask(Mask), accum,
                                A.impl(), row_indices, col_indices,
                                outp == Replace);
}

/// w = A(row_indices, col) — a single-column gather (pass transpose(A) to
/// gather a row).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename AMat>
void extract(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
             const AMat& A, const IndexArrayType& row_indices, IndexType col,
             OutputControl outp = Merge) {
  detail::check(row_indices.size() == w.size(),
                "extract: w.size != row_indices.size");
  detail::check(detail::mask_size_ok(mask, w.size()), "extract: mask size");
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::extract_col(w.impl(), detail::lower_mask(mask), accum, a,
                                row_indices, col, outp == Replace);
}

// ===========================================================================
// assign
// ===========================================================================

/// w(indices) = u.
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename UT>
void assign(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const Vector<UT, Tag>& u, const IndexArrayType& indices,
            OutputControl outp = Merge) {
  detail::check(indices.size() == u.size(),
                "assign: u.size != indices.size");
  detail::check(detail::mask_size_ok(mask, w.size()), "assign: mask size");
  backend_ops<Tag>::assign_vec(w.impl(), detail::lower_mask(mask), accum,
                               u.impl(), indices, outp == Replace);
}

/// w(indices) = value (scalar broadcast).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename ValT>
  requires std::convertible_to<ValT, WT>
void assign(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const ValT& value, const IndexArrayType& indices,
            OutputControl outp = Merge) {
  detail::check(detail::mask_size_ok(mask, w.size()), "assign: mask size");
  backend_ops<Tag>::assign_vec_constant(w.impl(), detail::lower_mask(mask),
                                        accum, static_cast<WT>(value),
                                        indices, outp == Replace);
}

/// C(row_indices, col_indices) = A.
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename AT>
void assign(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
            const Matrix<AT, Tag>& A, const IndexArrayType& row_indices,
            const IndexArrayType& col_indices, OutputControl outp = Merge) {
  detail::check(row_indices.size() == A.nrows() &&
                    col_indices.size() == A.ncols(),
                "assign: A shape != index set sizes");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "assign: mask shape");
  backend_ops<Tag>::assign_mat(C.impl(), detail::lower_mask(Mask), accum,
                               A.impl(), row_indices, col_indices,
                               outp == Replace);
}

/// C(row_indices, col_indices) = value (scalar broadcast).
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename ValT>
  requires std::convertible_to<ValT, CT>
void assign(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
            const ValT& value, const IndexArrayType& row_indices,
            const IndexArrayType& col_indices, OutputControl outp = Merge) {
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "assign: mask shape");
  backend_ops<Tag>::assign_mat_constant(C.impl(), detail::lower_mask(Mask),
                                        accum, static_cast<CT>(value),
                                        row_indices, col_indices,
                                        outp == Replace);
}

// ===========================================================================
// kronecker
// ===========================================================================

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename AT, typename BT>
void kronecker(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
               const Op& op, const Matrix<AT, Tag>& A,
               const Matrix<BT, Tag>& B, OutputControl outp = Merge) {
  detail::check(C.nrows() == A.nrows() * B.nrows() &&
                    C.ncols() == A.ncols() * B.ncols(),
                "kronecker: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "kronecker: mask shape");
  backend_ops<Tag>::kronecker(C.impl(), detail::lower_mask(Mask), accum, op,
                              A.impl(), B.impl(), outp == Replace);
}

// ===========================================================================
// select (GBTL extension) — keep entries satisfying pred(index..., value)
// ===========================================================================

/// Matrix select: pred(i, j, value) -> bool.
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Pred, typename AT>
void select(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
            const Pred& pred, const Matrix<AT, Tag>& A,
            OutputControl outp = Merge) {
  detail::check(C.nrows() == A.nrows() && C.ncols() == A.ncols(),
                "select: shape mismatch");
  detail::check(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                "select: mask shape");
  backend_ops<Tag>::select_mat(C.impl(), detail::lower_mask(Mask), accum,
                               pred, A.impl(), outp == Replace);
}

/// Vector select: pred(i, value) -> bool.
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Pred, typename UT>
void select(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const Pred& pred, const Vector<UT, Tag>& u,
            OutputControl outp = Merge) {
  detail::check(w.size() == u.size(), "select: size mismatch");
  detail::check(detail::mask_size_ok(mask, w.size()), "select: mask size");
  backend_ops<Tag>::select_vec(w.impl(), detail::lower_mask(mask), accum,
                               pred, u.impl(), outp == Replace);
}

// ===========================================================================
// Convenience
// ===========================================================================

/// [0, 1, ..., n-1] — the "all indices" argument for extract/assign.
inline IndexArrayType all_indices(IndexType n) {
  IndexArrayType out(n);
  for (IndexType i = 0; i < n; ++i) out[i] = i;
  return out;
}

}  // namespace grb
