#pragma once

/// @file operations.hpp
/// The GraphBLAS operations — the public computational API. Every function
/// follows the GraphBLAS C++ argument order:
///
///   op(output, mask, accumulator, operator/semiring, inputs..., outp)
///
/// - `mask`:  NoMask{}, a Matrix/Vector, or complement()/structure() views.
/// - `accum`: NoAccumulate{} or a binary operator (e.g. Plus<T>{}).
/// - `outp`:  Merge (default) keeps non-masked output entries, Replace
///            deletes them.
///
/// Matrix operands may be wrapped in transpose(A). The frontend validates
/// shapes (every dimension failure names the op and both offending sizes)
/// and lowers {mask, outp} into one OutputDescriptor — the backends never
/// see the raw mask argument or OutputControl.

#include "gbtl/algebra.hpp"
#include "gbtl/backend.hpp"
#include "gbtl/matrix.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"
#include "gbtl/views.hpp"
#include "gbtl/write_rules.hpp"
#include "sparse/fusion_plan.hpp"

namespace grb {

// ===========================================================================
// mxm: C<M,z> = accum(C, A +.* B)
// ===========================================================================

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename AMat, typename BMat>
void mxm(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
         const SR& semiring, const AMat& A, const BMat& B,
         OutputControl outp = Merge) {
  detail::check_dims(detail::nrows_of(A) == C.nrows(), "mxm",
                     "C.nrows != A.nrows", C.nrows(), detail::nrows_of(A));
  detail::check_dims(detail::ncols_of(B) == C.ncols(), "mxm",
                     "C.ncols != B.ncols", C.ncols(), detail::ncols_of(B));
  detail::check_dims(detail::ncols_of(A) == detail::nrows_of(B), "mxm",
                     "A.ncols != B.nrows", detail::ncols_of(A),
                     detail::nrows_of(B));
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "mxm", C.nrows(), C.ncols());
  auto&& a = detail::lower_operand(A);
  auto&& b = detail::lower_operand(B);
  backend_ops<Tag>::mxm(C.impl(), detail::lower_output(Mask, outp), accum,
                        semiring, a, b);
}

// ===========================================================================
// mxv: w<m,z> = accum(w, A +.* u)
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename AMat, typename UT>
void mxv(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
         const SR& semiring, const AMat& A, const Vector<UT, Tag>& u,
         OutputControl outp = Merge) {
  detail::check_dims(detail::nrows_of(A) == w.size(), "mxv",
                     "w.size != A.nrows", w.size(), detail::nrows_of(A));
  detail::check_dims(detail::ncols_of(A) == u.size(), "mxv",
                     "u.size != A.ncols", u.size(), detail::ncols_of(A));
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "mxv",
                          w.size());
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::mxv(w.impl(), detail::lower_output(mask, outp), accum,
                        semiring, a, u.impl());
}

// ===========================================================================
// vxm: w<m,z> = accum(w, u +.* A)
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename SR, typename UT, typename AMat>
void vxm(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
         const SR& semiring, const Vector<UT, Tag>& u, const AMat& A,
         OutputControl outp = Merge) {
  detail::check_dims(detail::ncols_of(A) == w.size(), "vxm",
                     "w.size != A.ncols", w.size(), detail::ncols_of(A));
  detail::check_dims(detail::nrows_of(A) == u.size(), "vxm",
                     "u.size != A.nrows", u.size(), detail::nrows_of(A));
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "vxm",
                          w.size());
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::vxm(w.impl(), detail::lower_output(mask, outp), accum,
                        semiring, u.impl(), a);
}

// ===========================================================================
// eWiseAdd / eWiseMult
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename UT, typename VT>
void eWiseAdd(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
              const Op& op, const Vector<UT, Tag>& u,
              const Vector<VT, Tag>& v, OutputControl outp = Merge) {
  detail::check_dims(u.size() == w.size(), "eWiseAdd", "u.size != w.size",
                     u.size(), w.size());
  detail::check_dims(v.size() == w.size(), "eWiseAdd", "v.size != w.size",
                     v.size(), w.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "eWiseAdd",
                          w.size());
  backend_ops<Tag>::ewise_add_vec(w.impl(), detail::lower_output(mask, outp),
                                  accum, op, u.impl(), v.impl());
}

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename UT, typename VT>
void eWiseMult(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
               const Op& op, const Vector<UT, Tag>& u,
               const Vector<VT, Tag>& v, OutputControl outp = Merge) {
  detail::check_dims(u.size() == w.size(), "eWiseMult", "u.size != w.size",
                     u.size(), w.size());
  detail::check_dims(v.size() == w.size(), "eWiseMult", "v.size != w.size",
                     v.size(), w.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "eWiseMult",
                          w.size());
  backend_ops<Tag>::ewise_mult_vec(w.impl(), detail::lower_output(mask, outp),
                                   accum, op, u.impl(), v.impl());
}

namespace detail {

/// Shared shape validation for the binary matrix eWise ops.
template <typename CMat, typename AMat, typename BMat>
void check_ewise_mat_shapes(const char* op_name, const CMat& C, const AMat& A,
                            const BMat& B) {
  check_dims(nrows_of(A) == C.nrows(), op_name, "A.nrows != C.nrows",
             nrows_of(A), C.nrows());
  check_dims(ncols_of(A) == C.ncols(), op_name, "A.ncols != C.ncols",
             ncols_of(A), C.ncols());
  check_dims(nrows_of(B) == C.nrows(), op_name, "B.nrows != C.nrows",
             nrows_of(B), C.nrows());
  check_dims(ncols_of(B) == C.ncols(), op_name, "B.ncols != C.ncols",
             ncols_of(B), C.ncols());
}

}  // namespace detail

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename AMat, typename BMat>
void eWiseAdd(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
              const Op& op, const AMat& A, const BMat& B,
              OutputControl outp = Merge) {
  detail::check_ewise_mat_shapes("eWiseAdd", C, A, B);
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "eWiseAdd", C.nrows(), C.ncols());
  auto&& a = detail::lower_operand(A);
  auto&& b = detail::lower_operand(B);
  backend_ops<Tag>::ewise_add_mat(C.impl(), detail::lower_output(Mask, outp),
                                  accum, op, a, b);
}

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename AMat, typename BMat>
void eWiseMult(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
               const Op& op, const AMat& A, const BMat& B,
               OutputControl outp = Merge) {
  detail::check_ewise_mat_shapes("eWiseMult", C, A, B);
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "eWiseMult", C.nrows(), C.ncols());
  auto&& a = detail::lower_operand(A);
  auto&& b = detail::lower_operand(B);
  backend_ops<Tag>::ewise_mult_mat(C.impl(), detail::lower_output(Mask, outp),
                                   accum, op, a, b);
}

// ===========================================================================
// apply
// ===========================================================================

template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename UnaryOp, typename UT>
void apply(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
           const UnaryOp& op, const Vector<UT, Tag>& u,
           OutputControl outp = Merge) {
  detail::check_dims(u.size() == w.size(), "apply", "u.size != w.size",
                     u.size(), w.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "apply",
                          w.size());
  backend_ops<Tag>::apply_vec(w.impl(), detail::lower_output(mask, outp),
                              accum, op, u.impl());
}

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename UnaryOp, typename AMat>
void apply(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
           const UnaryOp& op, const AMat& A, OutputControl outp = Merge) {
  detail::check_dims(detail::nrows_of(A) == C.nrows(), "apply",
                     "A.nrows != C.nrows", detail::nrows_of(A), C.nrows());
  detail::check_dims(detail::ncols_of(A) == C.ncols(), "apply",
                     "A.ncols != C.ncols", detail::ncols_of(A), C.ncols());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "apply", C.nrows(), C.ncols());
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::apply_mat(C.impl(), detail::lower_output(Mask, outp),
                              accum, op, a);
}

// ===========================================================================
// applyIndexed (GraphBLAS IndexUnaryOp extension)
// ===========================================================================

/// w<m,z> = accum(w, f(i, u[i])) — element transform with the position in
/// hand. Powers parent tracking, peeling, and positional filters.
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename IdxOp, typename UT>
void applyIndexed(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
                  const IdxOp& op, const Vector<UT, Tag>& u,
                  OutputControl outp = Merge) {
  detail::check_dims(u.size() == w.size(), "applyIndexed",
                     "u.size != w.size", u.size(), w.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()),
                          "applyIndexed", w.size());
  backend_ops<Tag>::apply_indexed_vec(w.impl(),
                                      detail::lower_output(mask, outp), accum,
                                      op, u.impl());
}

/// C<M,z> = accum(C, f(i, j, A(i,j))).
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename IdxOp, typename AT>
void applyIndexed(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
                  const IdxOp& op, const Matrix<AT, Tag>& A,
                  OutputControl outp = Merge) {
  detail::check_dims(A.nrows() == C.nrows(), "applyIndexed",
                     "A.nrows != C.nrows", A.nrows(), C.nrows());
  detail::check_dims(A.ncols() == C.ncols(), "applyIndexed",
                     "A.ncols != C.ncols", A.ncols(), C.ncols());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "applyIndexed", C.nrows(), C.ncols());
  backend_ops<Tag>::apply_indexed_mat(C.impl(),
                                      detail::lower_output(Mask, outp), accum,
                                      op, A.impl());
}

// ===========================================================================
// reduce
// ===========================================================================

/// Row-wise reduce: w<m,z> = accum(w, reduce_rows(A)).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Monoid, typename AMat>
void reduce(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const Monoid& monoid, const AMat& A, OutputControl outp = Merge) {
  detail::check_dims(detail::nrows_of(A) == w.size(), "reduce",
                     "w.size != A.nrows", w.size(), detail::nrows_of(A));
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "reduce",
                          w.size());
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::reduce_mat_to_vec(w.impl(),
                                      detail::lower_output(mask, outp), accum,
                                      monoid, a);
}

/// Vector to scalar.
template <typename ST, typename Accum, typename Monoid, typename UT,
          typename Tag>
void reduce(ST& s, const Accum& accum, const Monoid& monoid,
            const Vector<UT, Tag>& u) {
  backend_ops<Tag>::reduce_vec_to_scalar(s, accum, monoid, u.impl());
}

/// Matrix to scalar.
template <typename ST, typename Accum, typename Monoid, typename AT,
          typename Tag>
void reduce(ST& s, const Accum& accum, const Monoid& monoid,
            const Matrix<AT, Tag>& A) {
  backend_ops<Tag>::reduce_mat_to_scalar(s, accum, monoid, A.impl());
}

// ===========================================================================
// transpose (as an operation; see views.hpp for the input-operand view)
// ===========================================================================

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename AT>
void transpose(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
               const Matrix<AT, Tag>& A, OutputControl outp = Merge) {
  detail::check_dims(C.nrows() == A.ncols(), "transpose",
                     "C.nrows != A.ncols", C.nrows(), A.ncols());
  detail::check_dims(C.ncols() == A.nrows(), "transpose",
                     "C.ncols != A.nrows", C.ncols(), A.nrows());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "transpose", C.nrows(), C.ncols());
  backend_ops<Tag>::transpose_op(C.impl(), detail::lower_output(Mask, outp),
                                 accum, A.impl());
}

// ===========================================================================
// extract
// ===========================================================================

/// w = u(indices).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename UT>
void extract(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
             const Vector<UT, Tag>& u, const IndexArrayType& indices,
             OutputControl outp = Merge) {
  detail::check_dims(indices.size() == w.size(), "extract",
                     "w.size != indices.size", w.size(), indices.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "extract",
                          w.size());
  backend_ops<Tag>::extract_vec(w.impl(), detail::lower_output(mask, outp),
                                accum, u.impl(), indices);
}

/// C = A(row_indices, col_indices).
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename AT>
void extract(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
             const Matrix<AT, Tag>& A, const IndexArrayType& row_indices,
             const IndexArrayType& col_indices, OutputControl outp = Merge) {
  detail::check_dims(row_indices.size() == C.nrows(), "extract",
                     "C.nrows != row_indices.size", C.nrows(),
                     row_indices.size());
  detail::check_dims(col_indices.size() == C.ncols(), "extract",
                     "C.ncols != col_indices.size", C.ncols(),
                     col_indices.size());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "extract", C.nrows(), C.ncols());
  backend_ops<Tag>::extract_mat(C.impl(), detail::lower_output(Mask, outp),
                                accum, A.impl(), row_indices, col_indices);
}

/// w = A(row_indices, col) — a single-column gather (pass transpose(A) to
/// gather a row).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename AMat>
void extract(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
             const AMat& A, const IndexArrayType& row_indices, IndexType col,
             OutputControl outp = Merge) {
  detail::check_dims(row_indices.size() == w.size(), "extract",
                     "w.size != row_indices.size", w.size(),
                     row_indices.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "extract",
                          w.size());
  auto&& a = detail::lower_operand(A);
  backend_ops<Tag>::extract_col(w.impl(), detail::lower_output(mask, outp),
                                accum, a, row_indices, col);
}

// ===========================================================================
// assign
// ===========================================================================

/// w(indices) = u.
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename UT>
void assign(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const Vector<UT, Tag>& u, const IndexArrayType& indices,
            OutputControl outp = Merge) {
  detail::check_dims(indices.size() == u.size(), "assign",
                     "u.size != indices.size", u.size(), indices.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "assign",
                          w.size());
  backend_ops<Tag>::assign_vec(w.impl(), detail::lower_output(mask, outp),
                               accum, u.impl(), indices);
}

/// w(indices) = value (scalar broadcast).
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename ValT>
  requires std::convertible_to<ValT, WT>
void assign(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const ValT& value, const IndexArrayType& indices,
            OutputControl outp = Merge) {
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "assign",
                          w.size());
  backend_ops<Tag>::assign_vec_constant(w.impl(),
                                        detail::lower_output(mask, outp),
                                        accum, static_cast<WT>(value),
                                        indices);
}

/// C(row_indices, col_indices) = A.
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename AT>
void assign(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
            const Matrix<AT, Tag>& A, const IndexArrayType& row_indices,
            const IndexArrayType& col_indices, OutputControl outp = Merge) {
  detail::check_dims(row_indices.size() == A.nrows(), "assign",
                     "A.nrows != row_indices.size", A.nrows(),
                     row_indices.size());
  detail::check_dims(col_indices.size() == A.ncols(), "assign",
                     "A.ncols != col_indices.size", A.ncols(),
                     col_indices.size());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "assign", C.nrows(), C.ncols());
  backend_ops<Tag>::assign_mat(C.impl(), detail::lower_output(Mask, outp),
                               accum, A.impl(), row_indices, col_indices);
}

/// C(row_indices, col_indices) = value (scalar broadcast).
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename ValT>
  requires std::convertible_to<ValT, CT>
void assign(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
            const ValT& value, const IndexArrayType& row_indices,
            const IndexArrayType& col_indices, OutputControl outp = Merge) {
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "assign", C.nrows(), C.ncols());
  backend_ops<Tag>::assign_mat_constant(C.impl(),
                                        detail::lower_output(Mask, outp),
                                        accum, static_cast<CT>(value),
                                        row_indices, col_indices);
}

// ===========================================================================
// kronecker
// ===========================================================================

template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Op, typename AT, typename BT>
void kronecker(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
               const Op& op, const Matrix<AT, Tag>& A,
               const Matrix<BT, Tag>& B, OutputControl outp = Merge) {
  detail::check_dims(C.nrows() == A.nrows() * B.nrows(), "kronecker",
                     "C.nrows != A.nrows * B.nrows", C.nrows(),
                     A.nrows() * B.nrows());
  detail::check_dims(C.ncols() == A.ncols() * B.ncols(), "kronecker",
                     "C.ncols != A.ncols * B.ncols", C.ncols(),
                     A.ncols() * B.ncols());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "kronecker", C.nrows(), C.ncols());
  backend_ops<Tag>::kronecker(C.impl(), detail::lower_output(Mask, outp),
                              accum, op, A.impl(), B.impl());
}

// ===========================================================================
// select (GBTL extension) — keep entries satisfying pred(index..., value)
// ===========================================================================

/// Matrix select: pred(i, j, value) -> bool.
template <typename CT, typename Tag, typename MaskT, typename Accum,
          typename Pred, typename AT>
void select(Matrix<CT, Tag>& C, const MaskT& Mask, const Accum& accum,
            const Pred& pred, const Matrix<AT, Tag>& A,
            OutputControl outp = Merge) {
  detail::check_dims(C.nrows() == A.nrows(), "select", "C.nrows != A.nrows",
                     C.nrows(), A.nrows());
  detail::check_dims(C.ncols() == A.ncols(), "select", "C.ncols != A.ncols",
                     C.ncols(), A.ncols());
  detail::check_mask_shape(detail::mask_shape_ok(Mask, C.nrows(), C.ncols()),
                           "select", C.nrows(), C.ncols());
  backend_ops<Tag>::select_mat(C.impl(), detail::lower_output(Mask, outp),
                               accum, pred, A.impl());
}

/// Vector select: pred(i, value) -> bool.
template <typename WT, typename Tag, typename MaskT, typename Accum,
          typename Pred, typename UT>
void select(Vector<WT, Tag>& w, const MaskT& mask, const Accum& accum,
            const Pred& pred, const Vector<UT, Tag>& u,
            OutputControl outp = Merge) {
  detail::check_dims(w.size() == u.size(), "select", "w.size != u.size",
                     w.size(), u.size());
  detail::check_mask_size(detail::mask_size_ok(mask, w.size()), "select",
                          w.size());
  backend_ops<Tag>::select_vec(w.impl(), detail::lower_output(mask, outp),
                               accum, pred, u.impl());
}

// ===========================================================================
// Convenience
// ===========================================================================

/// GrB_wait (mode ALL, process-wide): force every recorded-but-unlaunched
/// operation in the lazy op-DAG to materialize. On GpuSim, whitelisted
/// vector ops are deferred into a per-thread DAG and fused/overlapped at
/// materialization points (host reads, container mutation/destruction,
/// backend boundaries); wait() is the explicit such point. A no-op when
/// nothing is pending, so it is always safe to call.
inline void wait() { sparse::fusion_sync_all(); }

/// [0, 1, ..., n-1] — the "all indices" argument for extract/assign.
inline IndexArrayType all_indices(IndexType n) {
  IndexArrayType out(n);
  for (IndexType i = 0; i < n; ++i) out[i] = i;
  return out;
}

}  // namespace grb
