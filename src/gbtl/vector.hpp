#pragma once

/// @file vector.hpp
/// The public GraphBLAS vector (see matrix.hpp for the design notes).

#include <vector>

#include "gbtl/algebra.hpp"
#include "gbtl/backend.hpp"
#include "gbtl/types.hpp"

namespace grb {

template <typename T, typename Tag = Sequential>
class Vector {
 public:
  using ScalarType = T;
  using BackendTag = Tag;
  using BackendType =
      typename backend_traits<Tag>::template vector_type<T>;

  explicit Vector(IndexType size) : impl_(size) {}

  /// Build from a dense initializer; @p implied_zero values are skipped.
  Vector(const std::vector<T>& dense, const T& implied_zero)
      : impl_(dense.size()) {
    for (IndexType i = 0; i < dense.size(); ++i)
      if (!(dense[i] == implied_zero)) impl_.set_element(i, dense[i]);
  }

  IndexType size() const { return impl_.size(); }
  IndexType nvals() const { return impl_.nvals(); }
  void clear() { impl_.clear(); }

  /// GrB_Vector_resize: change length; the dropped tail loses its entries.
  void resize(IndexType size) { impl_.resize(size); }

  template <typename DupOp = Plus<T>>
  void build(const IndexArrayType& indices, const std::vector<T>& values,
             DupOp dup = DupOp{}) {
    if (indices.size() != values.size())
      throw InvalidValueException("build: array length mismatch");
    impl_.build(indices, values.begin(),
                static_cast<IndexType>(values.size()), dup);
  }

  bool hasElement(IndexType index) const { return impl_.has_element(index); }
  T extractElement(IndexType index) const { return impl_.get_element(index); }
  void setElement(IndexType index, const T& value) {
    impl_.set_element(index, value);
  }
  void removeElement(IndexType index) { impl_.remove_element(index); }

  void extractTuples(IndexArrayType& indices, std::vector<T>& values) const {
    impl_.extract_tuples(indices, values);
  }

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.impl_ == b.impl_;
  }

  BackendType& impl() { return impl_; }
  const BackendType& impl() const { return impl_; }

 private:
  BackendType impl_;
};

}  // namespace grb
