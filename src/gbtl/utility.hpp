#pragma once

/// @file utility.hpp
/// Small conveniences: pretty-printing, identity/diagonal constructors, and
/// conversion between backends (used by tests and the transfer bench).

#include <iomanip>
#include <ostream>
#include <sstream>

#include "gbtl/matrix.hpp"
#include "gbtl/operations.hpp"
#include "gbtl/types.hpp"
#include "gbtl/vector.hpp"

namespace grb {

/// n x n identity with ones of type T.
template <typename T, typename Tag = Sequential>
Matrix<T, Tag> identity(IndexType n) {
  Matrix<T, Tag> I(n, n);
  IndexArrayType idx = all_indices(n);
  std::vector<T> ones(n, T{1});
  I.build(idx, idx, ones);
  return I;
}

/// Square matrix with @p d on the diagonal.
template <typename T, typename Tag>
Matrix<T, Tag> diag(const Vector<T, Tag>& d) {
  Matrix<T, Tag> D(d.size(), d.size());
  IndexArrayType idx;
  std::vector<T> vals;
  d.extractTuples(idx, vals);
  D.build(idx, idx, vals);
  return D;
}

/// Rebuild an object on a different backend (host round-trip).
template <typename DstTag, typename T, typename SrcTag>
Matrix<T, DstTag> to_backend(const Matrix<T, SrcTag>& a) {
  IndexArrayType r, c;
  std::vector<T> v;
  a.extractTuples(r, c, v);
  Matrix<T, DstTag> out(a.nrows(), a.ncols());
  out.build(r, c, v, Second<T>{});
  return out;
}

template <typename DstTag, typename T, typename SrcTag>
Vector<T, DstTag> to_backend(const Vector<T, SrcTag>& u) {
  IndexArrayType idx;
  std::vector<T> v;
  u.extractTuples(idx, v);
  Vector<T, DstTag> out(u.size());
  out.build(idx, v, Second<T>{});
  return out;
}

template <typename T, typename Tag>
std::ostream& print(std::ostream& os, const Matrix<T, Tag>& a) {
  os << a.nrows() << "x" << a.ncols() << ", " << a.nvals() << " values\n";
  for (IndexType i = 0; i < a.nrows(); ++i) {
    os << "  [";
    for (IndexType j = 0; j < a.ncols(); ++j) {
      if (j > 0) os << ", ";
      if (a.hasElement(i, j))
        os << a.extractElement(i, j);
      else
        os << "-";
    }
    os << "]\n";
  }
  return os;
}

template <typename T, typename Tag>
std::ostream& print(std::ostream& os, const Vector<T, Tag>& u) {
  os << "[";
  for (IndexType i = 0; i < u.size(); ++i) {
    if (i > 0) os << ", ";
    if (u.hasElement(i))
      os << u.extractElement(i);
    else
      os << "-";
  }
  os << "]";
  return os;
}

template <typename ObjT>
std::string to_string(const ObjT& obj) {
  std::ostringstream oss;
  print(oss, obj);
  return oss.str();
}

}  // namespace grb
