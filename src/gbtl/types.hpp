#pragma once

/// @file types.hpp
/// Core vocabulary of the GraphBLAS frontend: index types, backend tags,
/// descriptor enums, and the exception hierarchy mandated by the GraphBLAS
/// spec (dimension mismatch, out-of-bounds, missing element, ...).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace grb {

/// Row/column index. 64-bit as in the GraphBLAS C API.
using IndexType = std::uint64_t;
using IndexArrayType = std::vector<IndexType>;

/// Backend selection tags. A `grb::Matrix<T, Sequential>` and a
/// `grb::Matrix<T, GpuSim>` expose the same frontend API but own their data
/// in different places; every operation requires all operands to share one
/// backend (mixing tags is a compile error by construction).
///
/// CpuPar is the thread-pool CPU backend: it shares the Sequential
/// containers but executes the heavy operations with row-range parallelism
/// under a deterministic per-output reduction order, so its results are
/// bit-identical to Sequential at any thread count (docs/backends.md).
///
/// GpuShard is the multi-device GPU backend: its Matrix is a row-block
/// ShardedMatrix spread over the calling thread's gpu_sim placement, its
/// Vector lives whole on the home device, and mxv/vxm run shard-by-shard
/// with halo broadcasts overlapped under kernel time (docs/sharding.md).
struct Sequential {};
struct GpuSim {};
struct CpuPar {};
struct GpuShard {};

/// Passed where an accumulator is expected to mean "no accumulation":
/// the operation's result replaces/merges into the output directly.
struct NoAccumulate {};

/// Passed where a mask is expected to mean "no mask".
struct NoMask {};

/// GraphBLAS output-control descriptor: with Merge, output elements outside
/// the mask are kept; with Replace, they are deleted.
enum class OutputControl { Merge, Replace };
inline constexpr OutputControl Merge = OutputControl::Merge;
inline constexpr OutputControl Replace = OutputControl::Replace;

// --------------------------------------------------------------------------
// Exceptions (GraphBLAS API errors)
// --------------------------------------------------------------------------

class GraphBLASError : public std::runtime_error {
 public:
  explicit GraphBLASError(const std::string& what_arg)
      : std::runtime_error("GraphBLAS: " + what_arg) {}
};

/// Operand shapes are incompatible with the operation.
class DimensionException : public GraphBLASError {
 public:
  explicit DimensionException(const std::string& what_arg)
      : GraphBLASError("dimension mismatch: " + what_arg) {}
};

/// An index is outside the object's shape.
class IndexOutOfBoundsException : public GraphBLASError {
 public:
  explicit IndexOutOfBoundsException(const std::string& what_arg)
      : GraphBLASError("index out of bounds: " + what_arg) {}
};

/// getElement on a position that holds no stored value.
class NoValueException : public GraphBLASError {
 public:
  explicit NoValueException(const std::string& what_arg)
      : GraphBLASError("no stored value: " + what_arg) {}
};

/// Malformed argument (mismatched build arrays, bad probabilities, ...).
class InvalidValueException : public GraphBLASError {
 public:
  explicit InvalidValueException(const std::string& what_arg)
      : GraphBLASError("invalid value: " + what_arg) {}
};

// --------------------------------------------------------------------------
// Internal helpers shared by frontend dimension checks
// --------------------------------------------------------------------------

namespace detail {

inline void check(bool ok, const char* msg) {
  if (!ok) throw DimensionException(msg);
}

/// Shape check with uniform diagnostics: every message names the operation,
/// the violated relation, and both offending dimensions, e.g.
///   "mxm: C.nrows != A.nrows (3 vs 4)".
/// The string is only assembled on failure.
inline void check_dims(bool ok, const char* op, const char* relation,
                       IndexType got, IndexType want) {
  if (ok) return;
  throw DimensionException(std::string(op) + ": " + relation + " (" +
                           std::to_string(got) + " vs " +
                           std::to_string(want) + ")");
}

/// Mask-shape check for matrix outputs:
///   "mxm: mask shape must match output (3x4)".
inline void check_mask_shape(bool ok, const char* op, IndexType nrows,
                             IndexType ncols) {
  if (ok) return;
  throw DimensionException(std::string(op) +
                           ": mask shape must match output (" +
                           std::to_string(nrows) + "x" +
                           std::to_string(ncols) + ")");
}

/// Mask-size check for vector outputs:
///   "mxv: mask size must match output (5)".
inline void check_mask_size(bool ok, const char* op, IndexType n) {
  if (ok) return;
  throw DimensionException(std::string(op) +
                           ": mask size must match output (" +
                           std::to_string(n) + ")");
}

}  // namespace detail

}  // namespace grb
