#pragma once

/// @file execution_policy.hpp
/// Cooperative execution control for iterative algorithms: a deadline, a
/// caller-held cancellation token, and an iteration budget, bundled into an
/// ExecutionPolicy that algorithm loops poll between iterations.
///
/// Every iterative algorithm in algorithms/ takes a trailing
/// `const grb::ExecutionPolicy& policy = {}` parameter and calls
/// `policy.checkpoint("name")` at the top of each iteration. The default
/// policy is unlimited and checkpoint() is then three relaxed loads — cheap
/// enough to leave in every loop unconditionally.
///
/// Cancellation contract (relied upon by src/service/ and its tests):
///  - checkpoint() throws grb::CancelledException; it never returns a flag,
///    so a cancelled loop cannot accidentally keep running.
///  - Checkpoints sit at iteration boundaries, never mid-primitive, so on
///    cancellation every output container holds exactly the partial state
///    produced by the iterations that fully completed (for bfs_level:
///    levels 1..k are stamped iff iteration k finished). An already-expired
///    policy therefore cancels before iteration 1, leaving cleared outputs
///    untouched beyond the algorithm's initialization.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "gbtl/types.hpp"
#include "gpu_sim/placement.hpp"
#include "sparse/fusion_plan.hpp"

namespace grb {

/// Thrown by ExecutionPolicy::checkpoint when the policy's deadline passed,
/// its cancel token was set, or its iteration budget ran out.
class CancelledException : public GraphBLASError {
 public:
  explicit CancelledException(const std::string& what_arg)
      : GraphBLASError("cancelled: " + what_arg) {}
};

/// Shared cooperative cancellation flag: the submitter keeps one reference
/// and sets it; every checkpoint of the running query observes it.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

class ExecutionPolicy {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default policy: no deadline, no token, no iteration budget.
  ExecutionPolicy() = default;

  static ExecutionPolicy with_deadline(Clock::time_point deadline) {
    ExecutionPolicy p;
    p.deadline_ = deadline;
    return p;
  }

  /// Deadline @p budget from now.
  static ExecutionPolicy with_budget(Clock::duration budget) {
    return with_deadline(Clock::now() + budget);
  }

  /// Cancel after @p iterations checkpoints have passed — a deterministic
  /// work bound (deadlines depend on host speed; iteration budgets do not).
  static ExecutionPolicy with_iteration_limit(std::uint64_t iterations) {
    ExecutionPolicy p;
    p.iteration_limit_ = iterations;
    p.iterations_seen_ = std::make_shared<std::atomic<std::uint64_t>>(0);
    return p;
  }

  ExecutionPolicy& set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    return *this;
  }

  ExecutionPolicy& set_cancel_token(CancelToken token) {
    cancel_ = std::move(token);
    return *this;
  }

  bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }
  Clock::time_point deadline() const { return deadline_; }

  bool expired() const { return Clock::now() >= deadline_; }
  bool cancelled() const {
    return cancel_ != nullptr && cancel_->load(std::memory_order_relaxed);
  }

  /// Poll all three stop conditions; throws CancelledException naming
  /// @p where (the algorithm) and which condition fired. Algorithms call
  /// this once per iteration, before the iteration's work.
  void checkpoint(const char* where) const {
    // Fusion barrier: drain the lazy op-DAG so cancellation observes the
    // iteration-boundary invariant above — on GpuSim a recorded-but-not-
    // launched op must not outlive a CancelledException. Also bounds fusion
    // groups to within one iteration. No-op when nothing is pending.
    sparse::fusion_sync_all();
    // Likewise drain every shard context of the thread's placement: an
    // iteration boundary is a multi-device barrier, so no shard's transfer
    // stream can carry overlap credit across it (docs/sharding.md).
    gpu_sim::sync_placement();
    if (cancelled())
      throw CancelledException(std::string(where) + ": cancel token set");
    if (expired())
      throw CancelledException(std::string(where) + ": deadline exceeded");
    if (iterations_seen_ != nullptr &&
        iterations_seen_->fetch_add(1, std::memory_order_relaxed) >=
            iteration_limit_)
      throw CancelledException(std::string(where) +
                               ": iteration budget exhausted");
  }

 private:
  Clock::time_point deadline_{Clock::time_point::max()};
  CancelToken cancel_;
  std::uint64_t iteration_limit_ =
      std::numeric_limits<std::uint64_t>::max();
  /// Shared so the policy stays copyable while nested calls (apsp ->
  /// batch_sssp) draw from one budget.
  std::shared_ptr<std::atomic<std::uint64_t>> iterations_seen_;
};

}  // namespace grb
