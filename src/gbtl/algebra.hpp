#pragma once

/// @file algebra.hpp
/// The algebraic building blocks of GraphBLAS: unary operators, binary
/// operators, monoids (binary op + identity), and semirings (additive monoid
/// + multiplicative binary op). Graph algorithms select their semantics by
/// choosing a semiring: plus-times is linear algebra, min-plus is shortest
/// paths, or-and is reachability, min-select2nd propagates parent ids, ...
///
/// All functors are stateless value types so they can be freely copied into
/// simulated device kernels.

#include <algorithm>
#include <cmath>
#include <concepts>
#include <limits>
#include <type_traits>

#include "gbtl/types.hpp"

namespace grb {

// ---------------------------------------------------------------------------
// Unary operators
// ---------------------------------------------------------------------------

template <typename T>
struct Identity {
  using result_type = T;
  constexpr T operator()(const T& v) const { return v; }
};

template <typename T>
struct AdditiveInverse {
  using result_type = T;
  constexpr T operator()(const T& v) const { return -v; }
};

template <typename T>
struct MultiplicativeInverse {
  using result_type = T;
  constexpr T operator()(const T& v) const { return T{1} / v; }
};

template <typename T>
struct LogicalNot {
  using result_type = T;
  constexpr T operator()(const T& v) const { return static_cast<T>(!v); }
};

template <typename T>
struct Abs {
  using result_type = T;
  constexpr T operator()(const T& v) const { return v < T{0} ? -v : v; }
};

/// apply()-style "bind second argument" adapters, used pervasively by the
/// algorithms (e.g. scale a vector by a constant).
template <typename T, typename BinaryOp>
struct BindSecond {
  using result_type = T;
  BinaryOp op{};
  T rhs{};
  constexpr BindSecond() = default;
  constexpr explicit BindSecond(T rhs_value) : rhs(rhs_value) {}
  constexpr T operator()(const T& lhs) const { return op(lhs, rhs); }
};

template <typename T, typename BinaryOp>
struct BindFirst {
  using result_type = T;
  BinaryOp op{};
  T lhs{};
  constexpr BindFirst() = default;
  constexpr explicit BindFirst(T lhs_value) : lhs(lhs_value) {}
  constexpr T operator()(const T& rhs) const { return op(lhs, rhs); }
};

// ---------------------------------------------------------------------------
// Binary operators
// ---------------------------------------------------------------------------

template <typename T>
struct Plus {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T>
struct Minus {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const { return a - b; }
};

template <typename T>
struct Times {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const { return a * b; }
};

template <typename T>
struct Div {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const { return a / b; }
};

template <typename T>
struct Min {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

template <typename T>
struct Max {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

/// first(a, b) = a — with min/max monoids this builds "select" semirings
/// that propagate ids instead of combining values.
template <typename T>
struct First {
  using result_type = T;
  constexpr T operator()(const T& a, const T&) const { return a; }
};

template <typename T>
struct Second {
  using result_type = T;
  constexpr T operator()(const T&, const T& b) const { return b; }
};

template <typename T>
struct LogicalOr {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a || b);
  }
};

template <typename T>
struct LogicalAnd {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a && b);
  }
};

template <typename T>
struct LogicalXor {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(static_cast<bool>(a) != static_cast<bool>(b));
  }
};

template <typename T>
struct Equal {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a == b);
  }
};

template <typename T>
struct NotEqual {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a != b);
  }
};

template <typename T>
struct GreaterThan {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a > b);
  }
};

template <typename T>
struct LessThan {
  using result_type = T;
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a < b);
  }
};

// ---------------------------------------------------------------------------
// Monoids: associative binary op with identity
// ---------------------------------------------------------------------------

template <typename T>
struct PlusMonoid {
  using result_type = T;
  constexpr T identity() const { return T{0}; }
  constexpr T operator()(const T& a, const T& b) const { return a + b; }
};

template <typename T>
struct TimesMonoid {
  using result_type = T;
  constexpr T identity() const { return T{1}; }
  constexpr T operator()(const T& a, const T& b) const { return a * b; }
};

/// Some monoids also carry an *annihilator* a with op(a, x) == a for all x:
/// once a fold reaches it no further input can change the result. Kernels
/// exploit this to stop early (a pull-direction BFS row can quit on the
/// first frontier hit). Monoids advertise it via an `annihilator()` member;
/// absence of the member means "no early exit is sound". Min/max only claim
/// one for non-floating-point types: with IEEE values, lowest()/max() are
/// reachable-but-not-absorbing relative to infinities and NaN propagation,
/// so floating min/max folds must always run to completion.

template <typename T>
struct MinMonoid {
  using result_type = T;
  constexpr T identity() const {
    if constexpr (std::numeric_limits<T>::has_infinity)
      return std::numeric_limits<T>::infinity();
    else
      return std::numeric_limits<T>::max();
  }
  constexpr T annihilator() const
    requires(!std::is_floating_point_v<T>)
  {
    return std::numeric_limits<T>::lowest();
  }
  constexpr T operator()(const T& a, const T& b) const {
    return b < a ? b : a;
  }
};

template <typename T>
struct MaxMonoid {
  using result_type = T;
  constexpr T identity() const {
    if constexpr (std::numeric_limits<T>::has_infinity)
      return -std::numeric_limits<T>::infinity();
    else
      return std::numeric_limits<T>::lowest();
  }
  constexpr T annihilator() const
    requires(!std::is_floating_point_v<T>)
  {
    return std::numeric_limits<T>::max();
  }
  constexpr T operator()(const T& a, const T& b) const {
    return a < b ? b : a;
  }
};

template <typename T>
struct LogicalOrMonoid {
  using result_type = T;
  constexpr T identity() const { return static_cast<T>(false); }
  constexpr T annihilator() const { return static_cast<T>(true); }
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a || b);
  }
};

template <typename T>
struct LogicalAndMonoid {
  using result_type = T;
  constexpr T identity() const { return static_cast<T>(true); }
  constexpr T annihilator() const { return static_cast<T>(false); }
  constexpr T operator()(const T& a, const T& b) const {
    return static_cast<T>(a && b);
  }
};

// ---------------------------------------------------------------------------
// Semirings
// ---------------------------------------------------------------------------

/// Generic semiring assembled from an additive monoid and a multiplicative
/// binary operator. `zero()` is the additive identity, i.e. the implicit
/// value of missing sparse entries.
template <typename AddMonoid, typename MultOp>
struct Semiring {
  using result_type = typename AddMonoid::result_type;
  AddMonoid add_monoid{};
  MultOp mult_op{};

  constexpr result_type zero() const { return add_monoid.identity(); }
  constexpr result_type add(const result_type& a, const result_type& b) const {
    return add_monoid(a, b);
  }
  /// Forwarded additive annihilator, present only when the monoid has one
  /// (see the monoid section) — the license for pull-side early exit.
  constexpr result_type annihilator() const
    requires requires(const AddMonoid m) { m.annihilator(); }
  {
    return add_monoid.annihilator();
  }
  template <typename A, typename B>
  constexpr result_type mult(const A& a, const B& b) const {
    return mult_op(static_cast<result_type>(a), static_cast<result_type>(b));
  }
};

/// (+, *): ordinary linear algebra; counts paths, accumulates ranks.
template <typename T>
using ArithmeticSemiring = Semiring<PlusMonoid<T>, Times<T>>;

/// (min, +): shortest paths / tropical algebra.
template <typename T>
using MinPlusSemiring = Semiring<MinMonoid<T>, Plus<T>>;

/// (max, +): longest (critical) paths over DAG relaxations.
template <typename T>
using MaxPlusSemiring = Semiring<MaxMonoid<T>, Plus<T>>;

/// (min, *): widest-ratio style compositions.
template <typename T>
using MinTimesSemiring = Semiring<MinMonoid<T>, Times<T>>;

/// (max, *) with values in [0,1]: most-probable path.
template <typename T>
using MaxTimesSemiring = Semiring<MaxMonoid<T>, Times<T>>;

/// (or, and): boolean reachability — one BFS step is vxm over this.
template <typename T>
using LogicalSemiring = Semiring<LogicalOrMonoid<T>, LogicalAnd<T>>;

/// (min, select2nd): frontier expansion that propagates the *destination*
/// side value (e.g. candidate parent ids or tentative distances).
template <typename T>
using MinSelect2ndSemiring = Semiring<MinMonoid<T>, Second<T>>;

/// (max, select2nd): like above with max reduction — BFS parent selection.
template <typename T>
using MaxSelect2ndSemiring = Semiring<MaxMonoid<T>, Second<T>>;

/// (min, select1st): propagate the *source* side value.
template <typename T>
using MinSelect1stSemiring = Semiring<MinMonoid<T>, First<T>>;

/// (+, min): capacity-style aggregation (sum of bottlenecks).
template <typename T>
using PlusMinSemiring = Semiring<PlusMonoid<T>, Min<T>>;

// ---------------------------------------------------------------------------
// Concepts (compile-time validation of algebra arguments)
// ---------------------------------------------------------------------------

template <typename Op, typename T>
concept UnaryOpFor = requires(const Op op, const T v) {
  { op(v) } -> std::convertible_to<T>;
};

template <typename Op, typename T>
concept BinaryOpFor = requires(const Op op, const T a, const T b) {
  { op(a, b) } -> std::convertible_to<T>;
};

template <typename M, typename T>
concept MonoidFor = BinaryOpFor<M, T> && requires(const M m) {
  { m.identity() } -> std::convertible_to<T>;
};

template <typename S, typename T>
concept SemiringFor = requires(const S s, const T a, const T b) {
  { s.zero() } -> std::convertible_to<T>;
  { s.add(a, b) } -> std::convertible_to<T>;
  { s.mult(a, b) } -> std::convertible_to<T>;
};

/// Either NoAccumulate or a binary operator over T.
template <typename A, typename T>
concept AccumulatorFor = std::same_as<A, NoAccumulate> || BinaryOpFor<A, T>;

/// A semiring whose additive monoid saturates at a known annihilator —
/// folds may stop as soon as the accumulator equals it.
template <typename S>
concept SaturatingSemiring = requires(const S s) { s.annihilator(); };

template <typename S>
constexpr bool has_annihilator_v = SaturatingSemiring<S>;

}  // namespace grb
