#pragma once

/// @file backend_cpupar/bit_ops.hpp
/// Thread-pool word kernels over the Bit format: byte-identical to the
/// Sequential reference (backend_sequential/bit_ops.hpp) under ANY worker
/// count, by the pool's two determinism rules (pool.hpp):
///
///   - bit_mxv splits across output *rows*; chunk boundaries are 64-aligned,
///     so two chunks never write into the same output word.
///   - bit_vxm inverts the Sequential push loop into a pull over output
///     *words*: out word w = OR over frontier rows of their word w. OR is
///     order-independent, so regrouping by output word changes nothing, and
///     each word is owned by exactly one chunk.
///   - the popcount mxm splits across mask rows after a sequential sizing
///     pass fixes each row's output offset.
///
/// No partial fold ever crosses a thread boundary.

#include <cstdint>

#include "backend_cpupar/pool.hpp"
#include "backend_sequential/bit_ops.hpp"
#include "sparse/bitmap.hpp"

namespace grb::cpupar_backend {

/// Row-parallel bit mxv: chunks of whole rows, each row's scan verbatim
/// from the Sequential kernel (including the truth early exit).
inline void bit_mxv(const sparse::BitMatrix& a,
                    const sparse::BitVector& upres,
                    const sparse::BitVector& utruth,
                    sparse::BitVector& out_pres,
                    sparse::BitVector& out_truth) {
  const sparse::Index words = sparse::bit_words(a.ncols());
  const std::uint64_t* pw = upres.words();
  const std::uint64_t* tw = utruth.words();
  std::uint64_t* op = out_pres.mutable_words();
  std::uint64_t* ot = out_truth.mutable_words();
  parallel_ranges(a.nrows(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::uint64_t* srow = a.structure_row(i);
      const std::uint64_t* trow = a.truth_row(i);
      bool pres = false, truth = false;
      for (sparse::Index w = 0; w < words; ++w) {
        if (pw[w] == 0) continue;  // empty frontier word, row unread
        if (srow[w] & pw[w]) pres = true;
        if (trow[w] & tw[w]) {
          truth = true;
          break;
        }
      }
      const std::uint64_t bit = std::uint64_t{1}
                                << (i % sparse::kBitWordBits);
      if (pres) op[i / sparse::kBitWordBits] |= bit;
      if (truth) ot[i / sparse::kBitWordBits] |= bit;
    }
  });
}

/// Output-word-parallel bit vxm: each chunk owns a disjoint range of output
/// words and pulls them from every frontier row. Same total word traffic as
/// the Sequential push, same result by OR's order-independence.
inline void bit_vxm(const sparse::BitVector& upres,
                    const sparse::BitVector& utruth,
                    const sparse::BitMatrix& a,
                    sparse::BitVector& out_pres,
                    sparse::BitVector& out_truth) {
  std::uint64_t* op = out_pres.mutable_words();
  std::uint64_t* ot = out_truth.mutable_words();
  const sparse::Index owords = sparse::bit_words(a.ncols());
  parallel_ranges(owords, [&](std::size_t wb, std::size_t we) {
    for (sparse::Index iw = 0; iw < upres.word_count(); ++iw) {
      std::uint64_t word = upres.words()[iw];
      while (word) {
        const sparse::Index i =
            iw * sparse::kBitWordBits + sparse::bit_ffs(word);
        word &= word - 1;
        const bool truthy = utruth.test(i);
        const std::uint64_t* srow = a.structure_row(i);
        const std::uint64_t* trow = a.truth_row(i);
        for (std::size_t w = wb; w < we; ++w) {
          op[w] |= srow[w];
          if (truthy) ot[w] |= trow[w];
        }
      }
    }
  });
}

/// Word-parallel masked apply: trivially disjoint per word.
inline void bit_masked_apply(const sparse::BitVector& src,
                             const sparse::BitVector& mask, bool complement,
                             sparse::BitVector& out) {
  std::uint64_t* ow = out.mutable_words();
  parallel_ranges(src.word_count(), [&](std::size_t b, std::size_t e) {
    for (std::size_t w = b; w < e; ++w) {
      std::uint64_t m = mask.words()[w];
      if (complement) {
        m = ~m;
        if (w + 1 == static_cast<std::size_t>(src.word_count()))
          m &= sparse::bit_tail_mask(src.size());
      }
      ow[w] = src.words()[w] & m;
    }
  });
}

/// Row-parallel AND-popcount masked mxm: a sequential sizing pass counts
/// each mask row's surviving entries (popcount > 0) and fixes the output
/// offsets; the fill pass then writes disjoint row slices in parallel.
template <typename T>
sparse::Csr<T> bit_masked_mxm_popcount(const sparse::BitMatrix& a,
                                       const sparse::BitMatrix& bt,
                                       const sparse::BitMatrix& mask) {
  const sparse::Index kwords = sparse::bit_words(a.ncols());
  const sparse::Index mwords = sparse::bit_words(mask.ncols());
  sparse::Csr<T> out;
  out.nrows = mask.nrows();
  out.ncols = mask.ncols();
  out.row_offsets.assign(mask.nrows() + 1, 0);

  // Sizing pass: surviving entries per mask row. Runs the same AND-popcount
  // the fill pass repeats — two passes in exchange for exact offsets, the
  // standard symbolic/numeric split.
  std::vector<sparse::Index> row_counts(mask.nrows(), 0);
  parallel_ranges(mask.nrows(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::uint64_t* mrow = mask.structure_row(i);
      const std::uint64_t* arow = a.structure_row(i);
      sparse::Index survivors = 0;
      for (sparse::Index mw = 0; mw < mwords; ++mw) {
        std::uint64_t word = mrow[mw];
        while (word) {
          const sparse::Index j =
              mw * sparse::kBitWordBits + sparse::bit_ffs(word);
          word &= word - 1;
          const std::uint64_t* brow = bt.structure_row(j);
          std::uint64_t count = 0;
          for (sparse::Index w = 0; w < kwords; ++w)
            count += sparse::bit_popcount(arow[w] & brow[w]);
          if (count > 0) ++survivors;
        }
      }
      row_counts[i] = survivors;
    }
  });
  for (sparse::Index i = 0; i < mask.nrows(); ++i)
    out.row_offsets[i + 1] = out.row_offsets[i] + row_counts[i];

  out.col_indices.resize(out.row_offsets[mask.nrows()]);
  out.values.resize(out.row_offsets[mask.nrows()]);
  parallel_ranges(mask.nrows(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::uint64_t* mrow = mask.structure_row(i);
      const std::uint64_t* arow = a.structure_row(i);
      sparse::Index slot = out.row_offsets[i];
      for (sparse::Index mw = 0; mw < mwords; ++mw) {
        std::uint64_t word = mrow[mw];
        while (word) {
          const sparse::Index j =
              mw * sparse::kBitWordBits + sparse::bit_ffs(word);
          word &= word - 1;
          const std::uint64_t* brow = bt.structure_row(j);
          std::uint64_t count = 0;
          for (sparse::Index w = 0; w < kwords; ++w)
            count += sparse::bit_popcount(arow[w] & brow[w]);
          if (count == 0) continue;
          out.col_indices[slot] = j;
          out.values[slot] = static_cast<T>(count);
          ++slot;
        }
      }
    }
  });
  return out;
}

}  // namespace grb::cpupar_backend
