#pragma once

/// @file backend_cpupar/ops.hpp
/// CpuPar implementations of the GraphBLAS operation table: the thread-pool
/// CPU backend. Containers are shared with the Sequential backend; what
/// changes is execution — heavy operations split their work across the
/// ambient cpupar_backend::pool() (pool.hpp) in fixed chunks of independent
/// outputs, and every result flows through the shared output pipeline's
/// parallel epilogues (write_vector_par / write_matrix_par).
///
/// Bit-exactness: each output position's reduction chain is the Sequential
/// one verbatim — parallelism never regroups a floating-point fold, it only
/// distributes whole output rows/slots. Operations whose order is inherently
/// serial (scalar reductions, assign's duplicate-index resolution, the
/// transpose scatter) run their compute phase serially and parallelize only
/// the epilogue; the two scalar reductions forward to seq_backend outright.
/// The three-way differential fuzz suite and test_cpupar_determinism.cpp
/// hold this backend to byte-identical results at any worker count.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "backend_cpupar/pool.hpp"
#include "backend_sequential/matrix.hpp"
#include "backend_sequential/ops.hpp"
#include "backend_sequential/vector.hpp"
#include "gbtl/algebra.hpp"
#include "gbtl/mask.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "sparse/output_pipeline.hpp"

namespace grb::cpupar_backend {

// Same container types as the Sequential backend (backend_traits<CpuPar>
// maps to these): only the execution strategy differs.
using seq_backend::Matrix;
using seq_backend::Vector;

namespace detail {

using seq_backend::detail::transposed;

/// CSC view of a Matrix, built once per matrix mutation epoch and cached on
/// the container (Matrix::cached_aux): entries of each column contiguous in
/// ascending source-row order — exactly the order the Sequential vxm
/// scatter visits them, which is what keeps the pull below bit-exact.
template <typename AT>
struct CscLayout {
  std::vector<IndexType> col_ptr;   // ncols + 1 offsets into the arrays
  std::vector<IndexType> src_rows;  // source row of each entry
  std::unique_ptr<AT[]> vals;       // raw array: AT may be bool, and two
                                    // chunks must never share a packed word
};

/// Deterministic chunked counting sort (layout independent of the worker
/// count: chunk boundaries are fixed kRowChunk multiples).
template <typename AT>
std::shared_ptr<const CscLayout<AT>> csc_of(const Matrix<AT>& A) {
  return A.template cached_aux<CscLayout<AT>>([&] {
    auto csc = std::make_shared<CscLayout<AT>>();
    const IndexType nrows = A.nrows();
    const IndexType ncols = A.ncols();
    const std::size_t nchunks = (nrows + kRowChunk - 1) / kRowChunk;

    // Pass 1 (parallel over row chunks): per-(column, chunk) entry counts.
    // Layout counts[j * nchunks + c]: each slot belongs to exactly one
    // chunk.
    std::vector<IndexType> counts(ncols * nchunks, 0);
    parallel_ranges(nrows, kRowChunk,
                    [&](std::size_t begin, std::size_t end) {
      const std::size_t c = begin / kRowChunk;
      for (std::size_t k = begin; k < end; ++k)
        for (const auto& [j, av] : A.row(k)) {
          (void)av;
          ++counts[j * nchunks + c];
        }
    });

    // Pass 2 (serial scan): turn counts into placement cursors, columns
    // outer and chunks inner, so each column's entries land contiguously
    // with chunk segments in ascending source-row order.
    csc->col_ptr.assign(ncols + 1, 0);
    IndexType total = 0;
    for (IndexType j = 0; j < ncols; ++j) {
      csc->col_ptr[j] = total;
      for (std::size_t c = 0; c < nchunks; ++c) {
        const IndexType n = counts[j * nchunks + c];
        counts[j * nchunks + c] = total;
        total += n;
      }
    }
    csc->col_ptr[ncols] = total;

    // Pass 3 (parallel over row chunks): place (source row, value) pairs
    // at the cursors.
    csc->src_rows.resize(total);
    csc->vals.reset(new AT[total]);
    parallel_ranges(nrows, kRowChunk,
                    [&](std::size_t begin, std::size_t end) {
      const std::size_t c = begin / kRowChunk;
      for (std::size_t k = begin; k < end; ++k)
        for (const auto& [j, av] : A.row(k)) {
          const IndexType pos = counts[j * nchunks + c]++;
          csc->src_rows[pos] = k;
          csc->vals[pos] = av;
        }
    });
    return std::shared_ptr<const CscLayout<AT>>(std::move(csc));
  });
}

}  // namespace detail

// ===========================================================================
// mxm — matrix multiply over a semiring
// ===========================================================================

/// Row-parallel Gustavson (dense per-chunk accumulator) or, under a
/// non-complemented mask, row-parallel masked dot products — the same two
/// paths as the Sequential backend, with rows distributed over the pool.
template <typename CT, typename MObj, typename Accum, typename SR,
          typename AT, typename BT>
void mxm(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Matrix<AT>& A, const Matrix<BT>& B) {
  using ZT = typename SR::result_type;
  Matrix<ZT> T(C.nrows(), C.ncols());

  constexpr bool kHasMaskObj = !std::is_same_v<MObj, EmptyMaskObj>;
  bool used_dot_path = false;
  if constexpr (kHasMaskObj) {
    if (out.mask.mask != nullptr && !out.mask.complement) {
      // Compute only where the mask allows: T(i,j) = A(i,:) dot B(:,j).
      // The transpose is built once, serially; the dot rows are independent.
      const Matrix<BT> Bt = detail::transposed(B);
      parallel_ranges(C.nrows(), kVectorChunk,
                      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          typename Matrix<ZT>::Row trow;
          for (const auto& [j, mv] : out.mask.mask->row(i)) {
            if (!out.mask.structural && !write_rules::truthy(mv)) continue;
            const auto& arow = A.row(i);
            const auto& bcol = Bt.row(j);
            std::size_t ai = 0, bi = 0;
            ZT acc = sr.zero();
            bool any = false;
            while (ai < arow.size() && bi < bcol.size()) {
              if (arow[ai].first < bcol[bi].first) {
                ++ai;
              } else if (bcol[bi].first < arow[ai].first) {
                ++bi;
              } else {
                acc = sr.add(acc, sr.mult(arow[ai].second, bcol[bi].second));
                any = true;
                ++ai, ++bi;
              }
            }
            if (any) trow.emplace_back(j, acc);
          }
          T.set_row(i, std::move(trow));
        }
      });
      used_dot_path = true;
    }
  }

  if (!used_dot_path) {
    // Gustavson: T(i,:) = sum_k A(i,k) * B(k,:). Each chunk owns a private
    // dense accumulator (kRowChunk is coarse so its initialization
    // amortizes); the per-row product/fold chain is the Sequential one.
    const IndexType ncols = C.ncols();
    parallel_ranges(A.nrows(), kRowChunk,
                    [&](std::size_t begin, std::size_t end) {
      std::vector<ZT> acc(ncols, sr.zero());
      std::vector<std::uint8_t> occupied(ncols, 0);
      std::vector<IndexType> touched;
      for (std::size_t i = begin; i < end; ++i) {
        touched.clear();
        for (const auto& [k, av] : A.row(i)) {
          for (const auto& [j, bv] : B.row(k)) {
            const ZT prod = sr.mult(av, bv);
            if (!occupied[j]) {
              occupied[j] = 1;
              acc[j] = prod;
              touched.push_back(j);
            } else {
              acc[j] = sr.add(acc[j], prod);
            }
          }
        }
        std::sort(touched.begin(), touched.end());
        typename Matrix<ZT>::Row trow;
        trow.reserve(touched.size());
        for (IndexType j : touched) {
          trow.emplace_back(j, acc[j]);
          occupied[j] = 0;
        }
        T.set_row(i, std::move(trow));
      }
    });
  }

  pipeline::write_matrix_par(C, T, out, accum);
}

// ===========================================================================
// mxv / vxm
// ===========================================================================

/// Row-parallel pull: each output slot folds its matrix row in ascending
/// column order, exactly as the Sequential loop does.
template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Matrix<AT>& A, const Vector<UT>& u) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ZT acc = sr.zero();
      bool any = false;
      for (const auto& [k, av] : A.row(i)) {
        if (u.present_unchecked(k)) {
          acc = sr.add(acc, sr.mult(av, u.value_unchecked(k)));
          any = true;
        }
      }
      if (any) T.set_unchecked(i, acc);
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

/// vxm cannot be row-parallelized as a scatter (two rows contribute to one
/// output slot). Instead: the cached CSC layout (detail::csc_of — built on
/// first use, reused until the matrix mutates, so iterated vxm pays it
/// once) feeds a column-parallel pull that folds each output slot's
/// contributions in exactly the order the Sequential scatter applied them
/// (first contribution assigns, later ones fold through sr.add), so the
/// result is bit-identical.
template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Vector<UT>& u, const Matrix<AT>& A) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  const auto csc = detail::csc_of(A);
  parallel_ranges(A.ncols(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      ZT acc{};
      bool any = false;
      for (IndexType p = csc->col_ptr[j]; p < csc->col_ptr[j + 1]; ++p) {
        const IndexType k = csc->src_rows[p];
        if (!u.present_unchecked(k)) continue;
        const ZT prod = sr.mult(u.value_unchecked(k), csc->vals[p]);
        if (any) {
          acc = sr.add(acc, prod);
        } else {
          acc = prod;
          any = true;
        }
      }
      if (any) T.set_unchecked(j, acc);
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

// ===========================================================================
// eWiseAdd / eWiseMult
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename Op,
          typename UT, typename VT>
void ewise_add_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                   Accum accum, Op op, const Vector<UT>& u,
                   const Vector<VT>& v) {
  using ZT = std::common_type_t<UT, VT>;
  Vector<ZT> T(w.size());
  parallel_ranges(w.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const bool hu = u.present_unchecked(i), hv = v.present_unchecked(i);
      if (hu && hv)
        T.set_unchecked(i, static_cast<ZT>(op(
                               static_cast<ZT>(u.value_unchecked(i)),
                               static_cast<ZT>(v.value_unchecked(i)))));
      else if (hu)
        T.set_unchecked(i, static_cast<ZT>(u.value_unchecked(i)));
      else if (hv)
        T.set_unchecked(i, static_cast<ZT>(v.value_unchecked(i)));
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename Op,
          typename UT, typename VT>
void ewise_mult_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                    Accum accum, Op op, const Vector<UT>& u,
                    const Vector<VT>& v) {
  using ZT = std::common_type_t<UT, VT>;
  Vector<ZT> T(w.size());
  parallel_ranges(w.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (u.present_unchecked(i) && v.present_unchecked(i))
        T.set_unchecked(i, static_cast<ZT>(op(
                               static_cast<ZT>(u.value_unchecked(i)),
                               static_cast<ZT>(v.value_unchecked(i)))));
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void ewise_add_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                   Accum accum, Op op, const Matrix<AT>& A,
                   const Matrix<BT>& B) {
  using ZT = std::common_type_t<AT, BT>;
  Matrix<ZT> T(C.nrows(), C.ncols());
  parallel_ranges(C.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& ar = A.row(i);
      const auto& br = B.row(i);
      typename Matrix<ZT>::Row merged;
      merged.reserve(ar.size() + br.size());
      std::size_t ai = 0, bi = 0;
      while (ai < ar.size() || bi < br.size()) {
        if (bi >= br.size() ||
            (ai < ar.size() && ar[ai].first < br[bi].first)) {
          merged.emplace_back(ar[ai].first, static_cast<ZT>(ar[ai].second));
          ++ai;
        } else if (ai >= ar.size() || br[bi].first < ar[ai].first) {
          merged.emplace_back(br[bi].first, static_cast<ZT>(br[bi].second));
          ++bi;
        } else {
          merged.emplace_back(
              ar[ai].first,
              static_cast<ZT>(op(static_cast<ZT>(ar[ai].second),
                                 static_cast<ZT>(br[bi].second))));
          ++ai, ++bi;
        }
      }
      T.set_row(i, std::move(merged));
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void ewise_mult_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                    Accum accum, Op op, const Matrix<AT>& A,
                    const Matrix<BT>& B) {
  using ZT = std::common_type_t<AT, BT>;
  Matrix<ZT> T(C.nrows(), C.ncols());
  parallel_ranges(C.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& ar = A.row(i);
      const auto& br = B.row(i);
      typename Matrix<ZT>::Row merged;
      std::size_t ai = 0, bi = 0;
      while (ai < ar.size() && bi < br.size()) {
        if (ar[ai].first < br[bi].first) {
          ++ai;
        } else if (br[bi].first < ar[ai].first) {
          ++bi;
        } else {
          merged.emplace_back(
              ar[ai].first,
              static_cast<ZT>(op(static_cast<ZT>(ar[ai].second),
                                 static_cast<ZT>(br[bi].second))));
          ++ai, ++bi;
        }
      }
      T.set_row(i, std::move(merged));
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

// ===========================================================================
// apply
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UnaryOp,
          typename UT>
void apply_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
               UnaryOp f, const Vector<UT>& u) {
  Vector<WT> T(w.size());
  parallel_ranges(u.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      if (u.present_unchecked(i))
        T.set_unchecked(i, static_cast<WT>(f(u.value_unchecked(i))));
  });
  pipeline::write_vector_par(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename UnaryOp,
          typename AT>
void apply_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
               UnaryOp f, const Matrix<AT>& A) {
  Matrix<CT> T(C.nrows(), C.ncols());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      typename Matrix<CT>::Row trow;
      trow.reserve(A.row(i).size());
      for (const auto& [j, v] : A.row(i))
        trow.emplace_back(j, static_cast<CT>(f(v)));
      T.set_row(i, std::move(trow));
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename IdxOp,
          typename UT>
void apply_indexed_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, IdxOp f, const Vector<UT>& u) {
  Vector<WT> T(w.size());
  parallel_ranges(u.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      if (u.present_unchecked(i))
        T.set_unchecked(i, static_cast<WT>(f(i, u.value_unchecked(i))));
  });
  pipeline::write_vector_par(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename IdxOp,
          typename AT>
void apply_indexed_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                       Accum accum, IdxOp f, const Matrix<AT>& A) {
  Matrix<CT> T(C.nrows(), C.ncols());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      typename Matrix<CT>::Row trow;
      trow.reserve(A.row(i).size());
      for (const auto& [j, v] : A.row(i))
        trow.emplace_back(j, static_cast<CT>(f(i, j, v)));
      T.set_row(i, std::move(trow));
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

// ===========================================================================
// reduce
// ===========================================================================

/// Row-wise reduction: each output slot folds its own row left-to-right
/// (the Sequential chain), rows distributed over the pool.
template <typename WT, typename MObj, typename Accum, typename Monoid,
          typename AT>
void reduce_mat_to_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, Monoid monoid, const Matrix<AT>& A) {
  using ZT = typename Monoid::result_type;
  Vector<ZT> T(w.size());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (A.row(i).empty()) continue;
      ZT acc = monoid.identity();
      for (const auto& [j, v] : A.row(i)) {
        (void)j;
        acc = monoid(acc, static_cast<ZT>(v));
      }
      T.set_unchecked(i, acc);
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

// Scalar reductions fold every element through one chain — inherently
// serial under the bit-exactness contract, so Sequential runs them.
using seq_backend::reduce_mat_to_scalar;
using seq_backend::reduce_vec_to_scalar;

// ===========================================================================
// transpose
// ===========================================================================

/// The transpose itself is a scatter (row i contributes to many output
/// rows) and stays serial; the epilogue merge is row-parallel.
template <typename CT, typename MObj, typename Accum, typename AT>
void transpose_op(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                  Accum accum, const Matrix<AT>& A) {
  Matrix<AT> T = detail::transposed(A);
  pipeline::write_matrix_par(C, T, out, accum);
}

// ===========================================================================
// extract
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UT>
void extract_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const Vector<UT>& u,
                 const IndexArrayType& indices) {
  Vector<UT> T(w.size());
  parallel_ranges(indices.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const IndexType src = indices[k];
      if (src >= u.size())
        throw IndexOutOfBoundsException("extract: source index");
      if (u.present_unchecked(src))
        T.set_unchecked(k, u.value_unchecked(src));
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename AT>
void extract_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                 Accum accum, const Matrix<AT>& A,
                 const IndexArrayType& row_indices,
                 const IndexArrayType& col_indices) {
  Matrix<AT> T(C.nrows(), C.ncols());
  // Column placement is shared read-only state; build it up front (also
  // surfaces bad column indices before any parallel work starts).
  std::vector<std::vector<IndexType>> col_positions(A.ncols());
  for (IndexType k = 0; k < col_indices.size(); ++k) {
    if (col_indices[k] >= A.ncols())
      throw IndexOutOfBoundsException("extract: column index");
    col_positions[col_indices[k]].push_back(k);
  }
  parallel_ranges(row_indices.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const IndexType src = row_indices[k];
      if (src >= A.nrows())
        throw IndexOutOfBoundsException("extract: row index");
      typename Matrix<AT>::Row trow;
      for (const auto& [j, v] : A.row(src))
        for (IndexType dst_col : col_positions[j])
          trow.emplace_back(dst_col, v);
      std::sort(trow.begin(), trow.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      T.set_row(k, std::move(trow));
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename AT>
void extract_col(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const Matrix<AT>& A,
                 const IndexArrayType& row_indices, IndexType col) {
  if (col >= A.ncols())
    throw IndexOutOfBoundsException("extract: column index");
  Vector<AT> T(w.size());
  parallel_ranges(row_indices.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      if (row_indices[k] >= A.nrows())
        throw IndexOutOfBoundsException("extract: row index");
      const AT* v = A.find(row_indices[k], col);
      if (v != nullptr) T.set_unchecked(k, *v);
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

// ===========================================================================
// assign
// ===========================================================================
// Assign resolves duplicate destination indices in submission order — an
// inherently serial contract — so the merge phase is the Sequential code
// and only the epilogue runs parallel.

template <typename WT, typename MObj, typename Accum, typename UT>
void assign_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
                const Vector<UT>& u, const IndexArrayType& indices) {
  Vector<WT> T = w;
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  for (IndexType k = 0; k < indices.size(); ++k) {
    const IndexType dst = indices[k];
    if (dst >= w.size())
      throw IndexOutOfBoundsException("assign: destination index");
    if (u.present_unchecked(k)) {
      const WT uv = static_cast<WT>(u.value_unchecked(k));
      if (kAccum && T.present_unchecked(dst)) {
        if constexpr (kAccum)
          T.set_unchecked(dst,
                          static_cast<WT>(accum(T.value_unchecked(dst), uv)));
      } else {
        T.set_unchecked(dst, uv);
      }
    } else if (!kAccum) {
      T.erase_unchecked(dst);
    }
  }
  pipeline::write_vector_par(w, T, out, NoAccumulate{});
}

template <typename WT, typename MObj, typename Accum>
void assign_vec_constant(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                         Accum accum, const WT& value,
                         const IndexArrayType& indices) {
  Vector<WT> T = w;
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  for (IndexType dst : indices) {
    if (dst >= w.size())
      throw IndexOutOfBoundsException("assign: destination index");
    if (kAccum && T.present_unchecked(dst)) {
      if constexpr (kAccum)
        T.set_unchecked(
            dst, static_cast<WT>(accum(T.value_unchecked(dst), value)));
    } else {
      T.set_unchecked(dst, value);
    }
  }
  pipeline::write_vector_par(w, T, out, NoAccumulate{});
}

template <typename CT, typename MObj, typename Accum, typename AT>
void assign_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
                const Matrix<AT>& A, const IndexArrayType& row_indices,
                const IndexArrayType& col_indices) {
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  Matrix<CT> T = C;
  if (!kAccum) {
    for (IndexType ri : row_indices)
      for (IndexType ci : col_indices) {
        if (ri >= C.nrows() || ci >= C.ncols())
          throw IndexOutOfBoundsException("assign: destination index");
        T.remove_element(ri, ci);
      }
  }
  for (IndexType ai = 0; ai < row_indices.size(); ++ai) {
    const IndexType dst_row = row_indices[ai];
    if (dst_row >= C.nrows())
      throw IndexOutOfBoundsException("assign: destination row");
    for (const auto& [aj, v] : A.row(ai)) {
      if (aj >= col_indices.size()) continue;
      const IndexType dst_col = col_indices[aj];
      if (dst_col >= C.ncols())
        throw IndexOutOfBoundsException("assign: destination column");
      const CT cv = static_cast<CT>(v);
      if constexpr (kAccum) {
        const CT* old = T.find(dst_row, dst_col);
        if (old != nullptr)
          T.set_element(dst_row, dst_col, static_cast<CT>(accum(*old, cv)));
        else
          T.set_element(dst_row, dst_col, cv);
      } else {
        T.set_element(dst_row, dst_col, cv);
      }
    }
  }
  pipeline::write_matrix_par(C, T, out, NoAccumulate{});
}

template <typename CT, typename MObj, typename Accum>
void assign_mat_constant(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                         Accum accum, const CT& value,
                         const IndexArrayType& row_indices,
                         const IndexArrayType& col_indices) {
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  Matrix<CT> T = C;
  for (IndexType ri : row_indices) {
    for (IndexType ci : col_indices) {
      if (ri >= C.nrows() || ci >= C.ncols())
        throw IndexOutOfBoundsException("assign: destination index");
      if constexpr (kAccum) {
        const CT* old = T.find(ri, ci);
        if (old != nullptr)
          T.set_element(ri, ci, static_cast<CT>(accum(*old, value)));
        else
          T.set_element(ri, ci, value);
      } else {
        T.set_element(ri, ci, value);
      }
    }
  }
  pipeline::write_matrix_par(C, T, out, NoAccumulate{});
}

// ===========================================================================
// kronecker
// ===========================================================================

/// Parallel over A's rows: the block row ia owns output rows
/// [ia*B.nrows(), (ia+1)*B.nrows()), so chunks never collide.
template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void kronecker(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
               Op op, const Matrix<AT>& A, const Matrix<BT>& B) {
  using ZT = std::common_type_t<AT, BT>;
  Matrix<ZT> T(C.nrows(), C.ncols());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t ia = begin; ia < end; ++ia) {
      for (IndexType ib = 0; ib < B.nrows(); ++ib) {
        typename Matrix<ZT>::Row trow;
        for (const auto& [ja, va] : A.row(ia))
          for (const auto& [jb, vb] : B.row(ib))
            trow.emplace_back(ja * B.ncols() + jb,
                              static_cast<ZT>(op(static_cast<ZT>(va),
                                                 static_cast<ZT>(vb))));
        std::sort(trow.begin(), trow.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        T.set_row(ia * B.nrows() + ib, std::move(trow));
      }
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

// ===========================================================================
// select
// ===========================================================================

template <typename CT, typename MObj, typename Accum, typename Pred,
          typename AT>
void select_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
                Pred pred, const Matrix<AT>& A) {
  Matrix<AT> T(C.nrows(), C.ncols());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      typename Matrix<AT>::Row trow;
      for (const auto& [j, v] : A.row(i))
        if (pred(i, j, v)) trow.emplace_back(j, v);
      T.set_row(i, std::move(trow));
    }
  });
  pipeline::write_matrix_par(C, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename Pred,
          typename UT>
void select_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
                Pred pred, const Vector<UT>& u) {
  Vector<UT> T(w.size());
  parallel_ranges(u.size(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      if (u.present_unchecked(i) && pred(i, u.value_unchecked(i)))
        T.set_unchecked(i, u.value_unchecked(i));
  });
  pipeline::write_vector_par(w, T, out, accum);
}

}  // namespace grb::cpupar_backend
