#pragma once

/// @file backend_cpupar/overlay_ops.hpp
/// CpuPar mxv/vxm over (base matrix, replacement-row overlay).
///
/// mxv stays row-parallel: each row folds either its overlay replacement or
/// its base LIL row, in ascending column order — the Sequential fold.
///
/// vxm keeps the column-parallel pull, but each output column now merges
/// two ascending-source streams: the base's cached CSC with dirty source
/// rows masked out, and a per-call CSC of the overlay rows. A source row is
/// in exactly one stream, and the merge visits sources in ascending order
/// with a bare first product — the Sequential scatter's combination order —
/// so results are bit-identical to a monolithic rebuild. The per-call
/// overlay CSC costs O(ncols + overlay nnz): delta-sized, not graph-sized.

#include <cstdint>
#include <vector>

#include "backend_cpupar/ops.hpp"
#include "gbtl/overlay.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "sparse/output_pipeline.hpp"

namespace grb::cpupar_backend {

namespace detail {

/// Column-major view of an overlay's replacement rows: within each column,
/// source rows ascend (the fill loop walks dirty rows in ascending order).
template <typename AT>
struct OverlayCsc {
  IndexArrayType col_ptr;
  IndexArrayType src_rows;
  std::vector<AT> vals;
};

template <typename AT>
OverlayCsc<AT> overlay_csc(const MatrixOverlay<AT>& ov, IndexType ncols) {
  OverlayCsc<AT> csc;
  csc.col_ptr.assign(ncols + 1, 0);
  for (const IndexType c : ov.cols) ++csc.col_ptr[c + 1];
  for (IndexType j = 0; j < ncols; ++j) csc.col_ptr[j + 1] += csc.col_ptr[j];
  csc.src_rows.resize(ov.nnz());
  csc.vals.resize(ov.nnz());
  IndexArrayType cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (std::size_t s = 0; s < ov.dirty_rows(); ++s) {
    for (IndexType k = ov.offsets[s]; k < ov.offsets[s + 1]; ++k) {
      const IndexType c = ov.cols[k];
      csc.src_rows[cursor[c]] = ov.rows[s];
      csc.vals[cursor[c]] = ov.vals[k];
      ++cursor[c];
    }
  }
  return csc;
}

}  // namespace detail

template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv_overlay(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, SR sr, const Matrix<AT>& A,
                 const MatrixOverlay<AT>& ov, const Vector<UT>& u) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  parallel_ranges(A.nrows(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      ZT acc = sr.zero();
      bool any = false;
      const std::size_t slot = ov.find_row(i);
      if (slot < ov.dirty_rows()) {
        for (IndexType k = ov.offsets[slot]; k < ov.offsets[slot + 1]; ++k) {
          const IndexType col = ov.cols[k];
          if (u.present_unchecked(col)) {
            acc = sr.add(acc, sr.mult(ov.vals[k], u.value_unchecked(col)));
            any = true;
          }
        }
      } else {
        for (const auto& [k, av] : A.row(i)) {
          if (u.present_unchecked(k)) {
            acc = sr.add(acc, sr.mult(av, u.value_unchecked(k)));
            any = true;
          }
        }
      }
      if (any) T.set_unchecked(i, acc);
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm_overlay(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, SR sr, const Vector<UT>& u,
                 const Matrix<AT>& A, const MatrixOverlay<AT>& ov) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  const auto csc = detail::csc_of(A);
  const auto ocsc = detail::overlay_csc(ov, A.ncols());
  std::vector<std::uint8_t> dirty(A.nrows(), 0);
  for (const IndexType r : ov.rows) dirty[r] = 1;

  parallel_ranges(A.ncols(), kVectorChunk,
                  [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      ZT acc{};
      bool any = false;
      IndexType p = csc->col_ptr[j];
      const IndexType p_end = csc->col_ptr[j + 1];
      IndexType q = ocsc.col_ptr[j];
      const IndexType q_end = ocsc.col_ptr[j + 1];
      while (true) {
        while (p < p_end && dirty[csc->src_rows[p]]) ++p;
        IndexType k;
        AT av;
        if (p < p_end &&
            (q >= q_end || csc->src_rows[p] < ocsc.src_rows[q])) {
          k = csc->src_rows[p];
          av = csc->vals[p];
          ++p;
        } else if (q < q_end) {
          k = ocsc.src_rows[q];
          av = ocsc.vals[q];
          ++q;
        } else {
          break;
        }
        if (!u.present_unchecked(k)) continue;
        const ZT prod = sr.mult(u.value_unchecked(k), av);
        if (any) {
          acc = sr.add(acc, prod);
        } else {
          acc = prod;
          any = true;
        }
      }
      if (any) T.set_unchecked(j, acc);
    }
  });
  pipeline::write_vector_par(w, T, out, accum);
}

}  // namespace grb::cpupar_backend
