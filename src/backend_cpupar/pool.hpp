#pragma once

/// @file backend_cpupar/pool.hpp
/// Execution context of the CpuPar backend: an ambient thread pool bound to
/// the calling thread (mirroring gpu_sim::device()/ScopedDevice) plus the
/// fixed-chunk parallel loop every CpuPar operation runs through.
///
/// Determinism contract (enforced by test_cpupar_determinism.cpp): a CpuPar
/// operation produces bytes identical to the Sequential backend under ANY
/// worker count. Two rules make that hold by construction:
///
///  1. Work is only ever split across *independent outputs* (rows of a
///     matrix, slots of a vector); the per-output reduction chain is the
///     Sequential one, verbatim. No partial sums are ever merged across
///     threads — floating-point addition is not associative, so a
///     tree-reduction would already break bit-exactness.
///
///  2. Chunk boundaries are fixed multiples of kChunkAlign (a multiple of
///     64) regardless of worker count, so two chunks can never write into
///     the same word of a std::vector<bool>'s bit-packed storage (the
///     frontend hands CpuPar Vector<bool> objects, e.g. PageRank's dangling
///     indicator).
///
/// Unlike gpu_sim::device(), the *default* pool is thread-local rather than
/// process-wide: gpu_sim::ThreadPool::parallel_for is not safe for
/// concurrent submitters, so handing two user threads one shared default
/// pool would corrupt it. Each thread that runs CpuPar ops without an
/// explicit ScopedPool gets a private lazily-built pool instead; the
/// serving layer binds one pool per worker explicitly.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gpu_sim/thread_pool.hpp"

namespace grb::cpupar_backend {

/// Worker count of a default-constructed pool: the GBTL_CPUPAR_THREADS
/// environment override when set, else the hardware concurrency clamped to
/// [1, 8] (CpuPar targets the small-graph regime below the GPU crossover;
/// more workers than that only add wake-up latency).
inline std::size_t default_worker_count() {
  if (const char* env = std::getenv("GBTL_CPUPAR_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 8);
}

namespace detail {

inline gpu_sim::ThreadPool*& ambient_pool_slot() {
  thread_local gpu_sim::ThreadPool* slot = nullptr;
  return slot;
}

}  // namespace detail

/// The calling thread's CpuPar pool. A ScopedPool guard rebinds it for a
/// scope; without one, each thread lazily owns a private default pool.
inline gpu_sim::ThreadPool& pool() {
  if (gpu_sim::ThreadPool* bound = detail::ambient_pool_slot()) return *bound;
  thread_local gpu_sim::ThreadPool thread_default{default_worker_count()};
  return thread_default;
}

/// RAII guard making @p p the calling thread's pool() for the guard's
/// lifetime. Guards nest and the binding is thread-local, exactly like
/// gpu_sim::ScopedDevice.
class ScopedPool {
 public:
  explicit ScopedPool(gpu_sim::ThreadPool& p)
      : previous_(detail::ambient_pool_slot()) {
    detail::ambient_pool_slot() = &p;
  }
  ~ScopedPool() { detail::ambient_pool_slot() = previous_; }

  ScopedPool(const ScopedPool&) = delete;
  ScopedPool& operator=(const ScopedPool&) = delete;

 private:
  gpu_sim::ThreadPool* previous_;
};

/// Chunk-boundary alignment: a multiple of 64 so no two chunks share a word
/// of bit-packed std::vector<bool> storage.
inline constexpr std::size_t kChunkAlign = 64;
/// Default chunk width for vector-slot loops (64-aligned, fine-grained
/// enough to balance power-law row work across a handful of workers).
inline constexpr std::size_t kVectorChunk = 256;
/// Chunk width for loops that carry per-chunk scratch proportional to the
/// problem width (the mxm dense accumulator): coarser, so the scratch
/// (re)initialization amortizes over more rows.
inline constexpr std::size_t kRowChunk = 1024;

// --------------------------------------------------------------------------
// Modeled-time instrumentation (bench convention)
// --------------------------------------------------------------------------

/// Bench-only meter mirroring gpu_sim's simulated device clock: while a
/// meter is installed (ScopedMeter), parallel_ranges runs its chunks INLINE
/// and times each one, accumulating both the serial sum and the makespan of
/// a greedy longest-queue-first schedule over `workers` lanes. A bench then
/// reports   wall_elapsed - serial_sum() + modeled_sum()   as the modeled
/// W-thread time — real measured work under an Amdahl schedule, the
/// CPU-side analogue of the GPU backend's modeled device seconds
/// (bench_common.hpp documents the convention). Purely additive: with no
/// meter installed the pool runs real threads and nothing is timed.
class Meter {
 public:
  explicit Meter(std::size_t workers) : lanes_(workers > 0 ? workers : 1) {}

  std::size_t workers() const { return lanes_.size(); }
  double serial_sum() const { return serial_; }
  double modeled_sum() const {
    double makespan = 0.0;
    for (double lane : lanes_) makespan = std::max(makespan, lane);
    return makespan;
  }

  /// Charge one timed chunk: the greedy schedule places it on the least
  /// loaded lane (deterministic for a fixed chunk order).
  void charge(double seconds) {
    serial_ += seconds;
    *std::min_element(lanes_.begin(), lanes_.end()) += seconds;
  }

 private:
  double serial_ = 0.0;
  std::vector<double> lanes_;
};

namespace detail {

inline Meter*& ambient_meter_slot() {
  thread_local Meter* slot = nullptr;
  return slot;
}

}  // namespace detail

/// RAII guard installing a Meter for the calling thread (bench use only).
class ScopedMeter {
 public:
  explicit ScopedMeter(Meter& m) : previous_(detail::ambient_meter_slot()) {
    detail::ambient_meter_slot() = &m;
  }
  ~ScopedMeter() { detail::ambient_meter_slot() = previous_; }

  ScopedMeter(const ScopedMeter&) = delete;
  ScopedMeter& operator=(const ScopedMeter&) = delete;

 private:
  Meter* previous_;
};

/// Run body(begin, end) over [0, n) in fixed chunks of @p chunk positions
/// (which must be a multiple of kChunkAlign). Chunk decomposition depends
/// only on n and chunk — never on the worker count — and each body call owns
/// its range exclusively, so results are identical whether the chunks run
/// inline, on 2 workers, or on 8.
template <typename Body>
void parallel_ranges(std::size_t n, std::size_t chunk, Body&& body) {
  static_assert(kVectorChunk % kChunkAlign == 0 &&
                kRowChunk % kChunkAlign == 0);
  if (n == 0) return;
  const std::size_t nchunks = (n + chunk - 1) / chunk;

  if (Meter* meter = detail::ambient_meter_slot()) {
    // Modeled mode: inline execution, per-chunk timing (see Meter).
    using Clock = std::chrono::steady_clock;
    for (std::size_t c = 0; c < nchunks; ++c) {
      const auto t0 = Clock::now();
      body(c * chunk, std::min(n, c * chunk + chunk));
      meter->charge(std::chrono::duration<double>(Clock::now() - t0).count());
    }
    return;
  }

  gpu_sim::ThreadPool& p = pool();
  if (nchunks == 1 || p.worker_count() <= 1) {
    body(std::size_t{0}, n);
    return;
  }
  p.parallel_for(nchunks, [&](std::size_t c) {
    body(c * chunk, std::min(n, c * chunk + chunk));
  });
}

template <typename Body>
void parallel_ranges(std::size_t n, Body&& body) {
  parallel_ranges(n, kVectorChunk, std::forward<Body>(body));
}

}  // namespace grb::cpupar_backend
