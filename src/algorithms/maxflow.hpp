#pragma once

/// @file maxflow.hpp
/// Edmonds-Karp maximum flow: repeated BFS (GraphBLAS parent-BFS over the
/// positive-capacity residual pattern) + host-side augmenting-path walk.
/// The per-augmentation residual update is two rank-1 structural edits.

#include <algorithm>
#include <limits>
#include <vector>

#include "gbtl/gbtl.hpp"
#include "algorithms/bfs.hpp"

namespace algorithms {

/// Maximum s->t flow in a directed capacity graph (positive capacities).
/// @returns the flow value.
template <typename T, typename Tag>
T maxflow(const grb::Matrix<T, Tag>& capacities, grb::IndexType source,
          grb::IndexType sink, const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = capacities.nrows();
  if (capacities.ncols() != n)
    throw grb::DimensionException("maxflow: graph must be square");
  if (source >= n || sink >= n)
    throw grb::IndexOutOfBoundsException("maxflow: source/sink");
  if (source == sink)
    throw grb::InvalidValueException("maxflow: source == sink");

  grb::Matrix<T, Tag> residual = capacities;
  grb::Vector<IndexType, Tag> parents(n);
  T flow{0};

  for (;;) {
    policy.checkpoint("maxflow");
    // Residual pattern with strictly positive capacity.
    grb::Matrix<T, Tag> pattern(n, n);
    grb::select(pattern, grb::NoMask{}, grb::NoAccumulate{},
                [](IndexType, IndexType, const T& c) { return c > T{0}; },
                residual, grb::Replace);

    bfs_parent(pattern, source, parents);
    if (!parents.hasElement(sink)) break;  // no augmenting path left

    // Walk sink -> source collecting the bottleneck.
    std::vector<IndexType> path;  // vertices, sink first
    T bottleneck = std::numeric_limits<T>::max();
    IndexType v = sink;
    path.push_back(v);
    while (v != source) {
      const IndexType p = parents.extractElement(v);
      bottleneck = std::min(bottleneck, residual.extractElement(p, v));
      v = p;
      path.push_back(v);
    }

    // Augment along the path (path is sink..source).
    for (std::size_t k = path.size() - 1; k > 0; --k) {
      const IndexType u = path[k];
      const IndexType w = path[k - 1];
      const T forward = residual.extractElement(u, w) - bottleneck;
      if (forward > T{0})
        residual.setElement(u, w, forward);
      else
        residual.removeElement(u, w);
      const T backward =
          residual.hasElement(w, u) ? residual.extractElement(w, u) : T{0};
      residual.setElement(w, u, backward + bottleneck);
    }
    flow += bottleneck;
  }
  return flow;
}

}  // namespace algorithms
