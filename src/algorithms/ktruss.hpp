#pragma once

/// @file ktruss.hpp
/// k-truss: the maximal subgraph in which every edge participates in at
/// least k-2 triangles. The GraphBLAS formulation (McMillan's classic) is a
/// fixed point of one masked SpGEMM per round: support(i,j) = |N(i)∩N(j)|
/// restricted to current edges — exactly C<E> = E·E — followed by a select
/// on the support threshold.
///
/// Each round's C<E> = E·E lands on the GPU backend's mask-seeded hash
/// SpGEMM (docs/spgemm_adaptive.md): the shrinking edge mask bounds every
/// round's hash tables, so later rounds get cheaper as edges are peeled.

#include "gbtl/gbtl.hpp"

namespace algorithms {

struct KtrussResult {
  /// Surviving edges (directed count; symmetric input stays symmetric).
  grb::IndexType edges = 0;
  /// SpGEMM rounds until the fixed point.
  grb::IndexType rounds = 0;
};

/// Compute the k-truss of an undirected (symmetric, loop-free) graph.
/// @param graph  input adjacency; values ignored beyond structure.
/// @param truss  output: adjacency of the k-truss, entries hold each
///               edge's triangle support.
template <typename T, typename Tag>
KtrussResult ktruss(const grb::Matrix<T, Tag>& graph, grb::IndexType k,
                    grb::Matrix<grb::IndexType, Tag>& truss,
                    const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("ktruss: graph must be square");
  if (truss.nrows() != n || truss.ncols() != n)
    throw grb::DimensionException("ktruss: output shape mismatch");
  if (k < 2) throw grb::InvalidValueException("ktruss: k must be >= 2");

  // E: pattern with 1-values.
  grb::Matrix<IndexType, Tag> E(n, n);
  grb::apply(E, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return IndexType{1}; }, graph);

  const IndexType min_support = k - 2;
  KtrussResult result;
  grb::Matrix<IndexType, Tag> support(n, n);

  for (;;) {
    policy.checkpoint("ktruss");
    ++result.rounds;
    // support<E> = E*E : common-neighbour count per surviving edge.
    grb::mxm(support, grb::structure(E), grb::NoAccumulate{},
             grb::ArithmeticSemiring<IndexType>{}, E, E, grb::Replace);
    // Edges of E with no wedge at all never appear in `support`; they have
    // support 0 and survive only if min_support == 0.
    const IndexType before = E.nvals();
    grb::Matrix<IndexType, Tag> kept(n, n);
    grb::select(kept, grb::NoMask{}, grb::NoAccumulate{},
                [min_support](IndexType, IndexType, IndexType s) {
                  return s >= min_support;
                },
                support, grb::Replace);
    if (min_support == 0) {
      // Everything survives; support matrix may miss 0-support edges, so
      // merge them back as zeros.
      grb::Matrix<IndexType, Tag> zeros(n, n);
      grb::apply(zeros, grb::NoMask{}, grb::NoAccumulate{},
                 [](IndexType) { return IndexType{0}; }, E);
      grb::eWiseAdd(kept, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Max<IndexType>{}, kept, zeros, grb::Replace);
    }
    const IndexType after = kept.nvals();
    // Rebuild E as the pattern of kept edges.
    grb::apply(E, grb::NoMask{}, grb::NoAccumulate{},
               [](IndexType) { return IndexType{1}; }, kept, grb::Replace);
    if (after == before) {
      truss = std::move(kept);
      result.edges = after;
      return result;
    }
    if (after == 0) {
      truss.clear();
      result.edges = 0;
      return result;
    }
  }
}

/// Largest k for which the k-truss is non-empty (the graph's trussness).
template <typename T, typename Tag>
grb::IndexType max_truss(const grb::Matrix<T, Tag>& graph) {
  grb::Matrix<grb::IndexType, Tag> t(graph.nrows(), graph.ncols());
  grb::IndexType k = 2;
  while (true) {
    auto r = ktruss(graph, k + 1, t);
    if (r.edges == 0) return k;
    ++k;
  }
}

}  // namespace algorithms
