#pragma once

/// @file bfs.hpp
/// Breadth-first search expressed in GraphBLAS primitives: each level is one
/// vxm over the boolean (or, and) semiring, with the set of already-visited
/// vertices masked out — the canonical example of the paper's programming
/// model (one line of linear algebra per BFS level, backend-agnostic).

#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Level-BFS. On return levels[v] = hop distance from @p source + 1
/// (source gets 1; unreachable vertices hold no value).
///
/// @param graph  n x n adjacency matrix; any scalar type, entries are
///               interpreted structurally.
/// @param source starting vertex.
/// @param levels output vector of size n.
/// @param policy deadline / cancellation checkpoint, polled once per level;
///               on cancellation levels holds depths 1..k of the k levels
///               that completed (see gbtl/execution_policy.hpp).
template <typename T, typename Tag>
void bfs_level(const grb::Matrix<T, Tag>& graph, grb::IndexType source,
               grb::Vector<grb::IndexType, Tag>& levels,
               const grb::ExecutionPolicy& policy = {}) {
  const grb::IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("bfs_level: graph must be square");
  if (levels.size() != n)
    throw grb::DimensionException("bfs_level: levels size mismatch");
  if (source >= n)
    throw grb::IndexOutOfBoundsException("bfs_level: source");

  levels.clear();
  grb::Vector<bool, Tag> frontier(n);
  frontier.setElement(source, true);

  grb::IndexType depth = 0;
  grb::IndexType visited = 0;
  while (frontier.nvals() > 0 && depth < n) {
    policy.checkpoint("bfs_level");
    ++depth;
    // Stamp the current depth on the frontier.
    grb::assign(levels, frontier, grb::NoAccumulate{}, depth,
                grb::all_indices(n));
    // If the assign marked no vertex the frontier was entirely
    // already-visited (empty graph / isolated source / a frontier dying on
    // back-edges) — expanding it again could only spin until depth == n.
    const grb::IndexType now_visited = levels.nvals();
    if (now_visited == visited) break;
    visited = now_visited;
    // Expand: neighbours of the frontier that have no level yet.
    grb::vxm(frontier, grb::complement(grb::structure(levels)),
             grb::NoAccumulate{}, grb::LogicalSemiring<bool>{}, frontier,
             graph, grb::Replace);
  }
}

/// Parent-BFS. On return parents[v] = BFS-tree parent of v (the source is
/// its own parent); unreachable vertices hold no value.
template <typename T, typename Tag>
void bfs_parent(const grb::Matrix<T, Tag>& graph, grb::IndexType source,
                grb::Vector<grb::IndexType, Tag>& parents,
                const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("bfs_parent: graph must be square");
  if (parents.size() != n)
    throw grb::DimensionException("bfs_parent: parents size mismatch");
  if (source >= n)
    throw grb::IndexOutOfBoundsException("bfs_parent: source");

  parents.clear();
  parents.setElement(source, source);
  // Wavefront values are each frontier vertex's own id — the id it proposes
  // as parent to its undiscovered neighbours.
  grb::Vector<IndexType, Tag> wavefront(n);
  wavefront.setElement(source, source);
  grb::Vector<IndexType, Tag> next(n);

  while (wavefront.nvals() > 0) {
    policy.checkpoint("bfs_parent");
    // Propose parents to undiscovered neighbours: next[j] = min over
    // frontier i with (i,j) edge of i (min-select1st carries the source id).
    grb::vxm(next, grb::complement(grb::structure(parents)),
             grb::NoAccumulate{}, grb::MinSelect1stSemiring<IndexType>{},
             wavefront, graph, grb::Replace);
    // Record the winning proposals as parents.
    grb::assign(parents, grb::structure(next), grb::NoAccumulate{}, next,
                grb::all_indices(n));
    // The discovered vertices form the new frontier, each proposing its own
    // id in the next round.
    grb::applyIndexed(wavefront, grb::NoMask{}, grb::NoAccumulate{},
                      [](IndexType i, IndexType) { return i; }, next,
                      grb::Replace);
  }
}

/// Batched multi-source BFS: one boolean mxm advances every search a level
/// at once (row s of @p levels = levels from sources[s]). This is the
/// "batch your traversals into matrix ops" idiom the paper's evaluation
/// leans on: one big SpGEMM amortizes launch overhead that per-source
/// vxm loops pay per level per source.
template <typename T, typename Tag>
void batch_bfs_level(const grb::Matrix<T, Tag>& graph,
                     const grb::IndexArrayType& sources,
                     grb::Matrix<grb::IndexType, Tag>& levels,
                     const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("batch_bfs: graph must be square");
  if (levels.nrows() != sources.size() || levels.ncols() != n)
    throw grb::DimensionException("batch_bfs: levels shape mismatch");

  levels.clear();
  grb::Matrix<bool, Tag> frontier(sources.size(), n);
  {
    grb::IndexArrayType rows;
    std::vector<bool> ones;
    for (IndexType s = 0; s < sources.size(); ++s) {
      if (sources[s] >= n)
        throw grb::IndexOutOfBoundsException("batch_bfs: source");
      rows.push_back(s);
      ones.push_back(true);
    }
    frontier.build(rows, sources, ones, grb::LogicalOr<bool>{});
  }

  const grb::IndexArrayType all_rows = grb::all_indices(sources.size());
  const grb::IndexArrayType all_cols = grb::all_indices(n);
  IndexType depth = 0;
  while (frontier.nvals() > 0 && depth < n) {
    policy.checkpoint("batch_bfs_level");
    ++depth;
    grb::assign(levels, grb::structure(frontier), grb::NoAccumulate{}, depth,
                all_rows, all_cols, grb::Merge);
    grb::mxm(frontier, grb::complement(grb::structure(levels)),
             grb::NoAccumulate{}, grb::LogicalSemiring<bool>{}, frontier,
             graph, grb::Replace);
  }
}

/// Convenience: hop distance (0-based) of every reachable vertex.
template <typename T, typename Tag>
grb::Vector<grb::IndexType, Tag> bfs_distance(
    const grb::Matrix<T, Tag>& graph, grb::IndexType source,
    const grb::ExecutionPolicy& policy = {}) {
  grb::Vector<grb::IndexType, Tag> levels(graph.nrows());
  bfs_level(graph, source, levels, policy);
  grb::Vector<grb::IndexType, Tag> dist(graph.nrows());
  grb::apply(dist, grb::NoMask{}, grb::NoAccumulate{},
             grb::BindSecond<grb::IndexType, grb::Minus<grb::IndexType>>{1},
             levels);
  return dist;
}

}  // namespace algorithms
