#pragma once

/// @file incremental.hpp
/// Incremental recompute over delta-overlaid graphs (docs/streaming.md):
///
///  - connected_components_incremental: warm-starts min-label propagation
///    from the previous version's labels and pushes only from the
///    affected-vertex frontier through the overlay-aware vxm. Valid for
///    edge ADDITIONS on a symmetric graph (old labels stay upper bounds);
///    the result is the unique fixpoint of min-label propagation, so the
///    labels are bit-identical to a cold solve on the merged graph. Round
///    counts differ — only the labels are the contract.
///
///  - pagerank_warm: restarts the damped power iteration from the previous
///    version's rank vector. Converges to the same stationary point as a
///    cold solve but along a different (shorter) trajectory, so the ranks
///    agree to solver tolerance, NOT bitwise — the honest limit of
///    incremental PageRank, and why the serving layer bit-checks warm
///    results against a warm serial oracle and only tolerance-checks
///    against cold solves.
///
/// Eligibility (cached previous result for the parent version, no
/// structural removals, small affected set) is the caller's job — the
/// executor falls back to a cold solve when any precondition fails.

#include <vector>

#include "algorithms/pagerank.hpp"
#include "gbtl/gbtl.hpp"
#include "gbtl/overlay_ops.hpp"

namespace algorithms {

/// Re-label components after an edge-addition batch. @p labels carries the
/// previous version's labels in (dense, size n) and the new version's
/// labels out. @p affected lists the endpoints the batch touched; @p ov
/// replaces dirty rows of @p base (pass an empty overlay for a compacted
/// snapshot). @returns the number of push rounds (0 when nothing changed).
template <typename T, typename Tag>
grb::IndexType connected_components_incremental(
    const grb::Matrix<T, Tag>& base, const grb::MatrixOverlay<T>& ov,
    const grb::IndexArrayType& affected,
    grb::Vector<grb::IndexType, Tag>& labels,
    const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = base.nrows();
  if (base.ncols() != n)
    throw grb::DimensionException(
        "connected_components_incremental: graph must be square");
  if (labels.size() != n)
    throw grb::DimensionException(
        "connected_components_incremental: labels size mismatch");
  if (labels.nvals() != n)
    throw grb::InvalidValueException(
        "connected_components_incremental: labels must be dense "
        "(previous version's result)");

  // Seed the frontier with the affected vertices carrying their current
  // labels: an added edge (u, v) must let u's and v's labels flow even
  // when neither label improved yet.
  grb::Vector<IndexType, Tag> f(n);
  {
    grb::IndexArrayType idx;
    std::vector<IndexType> vals;
    labels.extractTuples(idx, vals);  // dense: idx[i] == i
    std::vector<IndexType> seed;
    seed.reserve(affected.size());
    for (const IndexType v : affected) seed.push_back(vals[v]);
    grb::IndexArrayType seed_idx(affected.begin(), affected.end());
    f.build(seed_idx, seed);
  }

  grb::Vector<IndexType, Tag> cand(n);
  grb::Vector<bool, Tag> improved(n);
  IndexType rounds = 0;
  for (IndexType k = 0; k < n && f.nvals() > 0; ++k) {
    policy.checkpoint("connected_components_incremental");
    // cand[j] = min label pushed from the frontier into j.
    grb::vxm_overlay(cand, grb::NoMask{}, grb::NoAccumulate{},
                     grb::MinSelect1stSemiring<IndexType>{}, f, base, ov,
                     grb::Replace);
    // Keep only strict improvements; they form the next frontier.
    grb::eWiseMult(improved, grb::NoMask{}, grb::NoAccumulate{},
                   grb::LessThan<IndexType>{}, cand, labels, grb::Replace);
    grb::apply(f, improved, grb::NoAccumulate{},
               grb::Identity<IndexType>{}, cand, grb::Replace);
    // Fold the improvements into the labels.
    grb::eWiseAdd(labels, grb::NoMask{}, grb::NoAccumulate{},
                  grb::Min<IndexType>{}, labels, f);
    ++rounds;
  }
  return rounds;
}

/// PageRank warm-started from @p rank (the previous version's ranks, dense).
template <typename T, typename Tag>
PageRankResult pagerank_warm(const grb::Matrix<T, Tag>& graph,
                             grb::Vector<double, Tag>& rank,
                             double damping = 0.85, double tol = 1e-9,
                             grb::IndexType max_iterations = 100,
                             const grb::ExecutionPolicy& policy = {}) {
  if (rank.nvals() != rank.size())
    throw grb::InvalidValueException(
        "pagerank_warm: rank must be dense (previous version's result)");
  return detail::pagerank_run(
      graph, rank, damping, tol, max_iterations, policy,
      [](grb::Vector<double, Tag>&, const grb::IndexArrayType&) {
        // Warm start: the incoming rank vector IS the seed.
      });
}

}  // namespace algorithms
