#pragma once

/// @file kcore.hpp
/// k-core decomposition by repeated peeling, in GraphBLAS form: degrees of
/// the remaining subgraph are one mxv over plus-times against the indicator
/// of remaining vertices; vertices at or below the current k peel off and
/// inherit core number k.

#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Core number of every vertex of an undirected graph (isolated vertices
/// get 0). Returns the degeneracy (maximum core number).
template <typename T, typename Tag>
grb::IndexType kcore_decomposition(const grb::Matrix<T, Tag>& graph,
                                   grb::Vector<grb::IndexType, Tag>& core,
                                   const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("kcore: graph must be square");
  if (core.size() != n)
    throw grb::DimensionException("kcore: core size mismatch");

  // Pattern matrix with 1-weights so degrees come out of plus-times.
  grb::Matrix<IndexType, Tag> P(n, n);
  grb::apply(P, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return IndexType{1}; }, graph);

  // remaining[v] = 1 while v is unpeeled.
  grb::Vector<IndexType, Tag> remaining(n);
  grb::assign(remaining, grb::NoMask{}, grb::NoAccumulate{}, IndexType{1},
              grb::all_indices(n));

  core.clear();
  grb::assign(core, grb::NoMask{}, grb::NoAccumulate{}, IndexType{0},
              grb::all_indices(n));

  grb::Vector<IndexType, Tag> degree(n), peel(n);
  IndexType k = 0;
  IndexType degeneracy = 0;

  while (remaining.nvals() > 0) {
    policy.checkpoint("kcore_decomposition");
    // Degrees within the remaining subgraph. Remaining vertices with no
    // remaining neighbour produce no entry; they are collected as
    // `isolated` below.
    grb::mxv(degree, grb::structure(remaining), grb::NoAccumulate{},
             grb::ArithmeticSemiring<IndexType>{}, P, remaining,
             grb::Replace);

    // peel = remaining vertices with degree <= k (including degree-less).
    grb::Vector<IndexType, Tag> low(n);
    grb::select(low, grb::NoMask{}, grb::NoAccumulate{},
                [k](IndexType, IndexType d) { return d <= k; }, degree,
                grb::Replace);
    // Vertices with no degree entry at all (isolated within remainder).
    grb::Vector<IndexType, Tag> isolated(n);
    grb::eWiseMult(isolated, grb::complement(grb::structure(degree)),
                   grb::NoAccumulate{}, grb::First<IndexType>{}, remaining,
                   remaining, grb::Replace);
    grb::eWiseAdd(peel, grb::NoMask{}, grb::NoAccumulate{},
                  grb::First<IndexType>{}, low, isolated, grb::Replace);

    if (peel.nvals() == 0) {
      ++k;
      continue;
    }
    degeneracy = k;
    // Record core number k for peeled vertices, remove them.
    grb::assign(core, grb::structure(peel), grb::NoAccumulate{}, k,
                grb::all_indices(n), grb::Merge);
    grb::assign(remaining, grb::structure(peel), grb::NoAccumulate{},
                IndexType{0}, grb::all_indices(n), grb::Merge);
    grb::select(remaining, grb::NoMask{}, grb::NoAccumulate{},
                [](IndexType, IndexType v) { return v != 0; }, remaining,
                grb::Replace);
  }
  return degeneracy;
}

/// Vertices of the k-core (indicator vector): the maximal subgraph where
/// every vertex has degree >= k.
template <typename T, typename Tag>
grb::Vector<bool, Tag> kcore_vertices(const grb::Matrix<T, Tag>& graph,
                                      grb::IndexType k) {
  grb::Vector<grb::IndexType, Tag> core(graph.nrows());
  kcore_decomposition(graph, core);
  grb::Vector<bool, Tag> members(graph.nrows());
  grb::select(members, grb::NoMask{}, grb::NoAccumulate{},
              [k](grb::IndexType, grb::IndexType c) { return c >= k; },
              core, grb::Replace);
  grb::apply(members, grb::NoMask{}, grb::NoAccumulate{},
             [](grb::IndexType) { return true; }, members);
  return members;
}

}  // namespace algorithms
