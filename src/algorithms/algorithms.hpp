#pragma once

/// @file algorithms.hpp
/// Umbrella header for the GraphBLAS-based algorithm library — every
/// algorithm is written once against the frontend and runs unchanged on any
/// backend (pass grb::Sequential or grb::GpuSim objects).

#include "algorithms/bfs.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/ktruss.hpp"
#include "algorithms/maxflow.hpp"
#include "algorithms/metrics.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/mst.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/scc.hpp"
#include "algorithms/similarity.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/topological.hpp"
#include "algorithms/triangle_count.hpp"
