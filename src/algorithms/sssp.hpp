#pragma once

/// @file sssp.hpp
/// Single-source shortest paths over the (min, +) tropical semiring:
/// Bellman-Ford as repeated vxm with a Min accumulator, plus a batched
/// multi-source variant (one row per source) that maps the same recurrence
/// onto mxm — the formulation the paper uses to show algorithm/primitive
/// separation.

#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Bellman-Ford SSSP. On return dist[v] = weight of the lightest
/// source->v path (source gets 0); unreachable vertices hold no value.
/// Negative edge weights are supported (n-1 relaxation rounds); negative
/// *cycles* reachable from the source make the result undefined, as usual.
///
/// @returns number of relaxation rounds executed (handy for benches).
template <typename T, typename Tag>
grb::IndexType sssp(const grb::Matrix<T, Tag>& graph, grb::IndexType source,
                    grb::Vector<T, Tag>& dist,
                    const grb::ExecutionPolicy& policy = {}) {
  const grb::IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("sssp: graph must be square");
  if (dist.size() != n)
    throw grb::DimensionException("sssp: dist size mismatch");
  if (source >= n) throw grb::IndexOutOfBoundsException("sssp: source");

  dist.clear();
  dist.setElement(source, T{0});

  grb::Vector<T, Tag> prev(n);
  grb::IndexType rounds = 0;
  for (grb::IndexType k = 0; k + 1 < n; ++k) {
    policy.checkpoint("sssp");
    prev = dist;
    // dist = min(dist, dist min.+ A)
    grb::vxm(dist, grb::NoMask{}, grb::Min<T>{}, grb::MinPlusSemiring<T>{},
             dist, graph);
    ++rounds;
    if (dist == prev) break;  // converged early
  }
  return rounds;
}

/// Batched multi-source SSSP: row s of @p dists holds the distance vector
/// of sources[s]. One mxm per relaxation round relaxes every source at
/// once.
template <typename T, typename Tag>
grb::IndexType batch_sssp(const grb::Matrix<T, Tag>& graph,
                          const grb::IndexArrayType& sources,
                          grb::Matrix<T, Tag>& dists,
                          const grb::ExecutionPolicy& policy = {}) {
  const grb::IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("batch_sssp: graph must be square");
  if (dists.nrows() != sources.size() || dists.ncols() != n)
    throw grb::DimensionException("batch_sssp: dists shape mismatch");

  dists.clear();
  {
    grb::IndexArrayType rows;
    std::vector<T> zeros;
    for (grb::IndexType s = 0; s < sources.size(); ++s) {
      if (sources[s] >= n)
        throw grb::IndexOutOfBoundsException("batch_sssp: source");
      rows.push_back(s);
      zeros.push_back(T{0});
    }
    dists.build(rows, sources, zeros);
  }

  grb::Matrix<T, Tag> prev(dists.nrows(), n);
  grb::IndexType rounds = 0;
  for (grb::IndexType k = 0; k + 1 < n; ++k) {
    policy.checkpoint("batch_sssp");
    prev = dists;
    grb::mxm(dists, grb::NoMask{}, grb::Min<T>{}, grb::MinPlusSemiring<T>{},
             prev, graph);
    ++rounds;
    if (dists == prev) break;
  }
  return rounds;
}

/// All-pairs shortest paths: batched SSSP from every vertex.
template <typename T, typename Tag>
grb::Matrix<T, Tag> apsp(const grb::Matrix<T, Tag>& graph,
                         const grb::ExecutionPolicy& policy = {}) {
  grb::Matrix<T, Tag> dists(graph.nrows(), graph.ncols());
  batch_sssp(graph, grb::all_indices(graph.nrows()), dists, policy);
  return dists;
}

}  // namespace algorithms
