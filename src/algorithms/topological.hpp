#pragma once

/// @file topological.hpp
/// DAG utilities via in-degree peeling, GraphBLAS-style: each round removes
/// every vertex whose in-degree within the remaining subgraph is zero and
/// stamps it with the current level. If the peel ever stalls with vertices
/// remaining, the leftover subgraph contains a cycle.

#include "gbtl/gbtl.hpp"

namespace algorithms {

struct TopoResult {
  /// True iff the graph is acyclic (levels is only fully valid then).
  bool is_dag = false;
  /// Number of levels assigned (the DAG's longest-path length + 1).
  grb::IndexType levels_used = 0;
};

/// Topological levels of a directed graph. levels[v] = 1 + the length of
/// the longest path ending at v (sources get 1). Vertices on or downstream
/// of a cycle hold no value.
template <typename T, typename Tag>
TopoResult topological_levels(const grb::Matrix<T, Tag>& graph,
                              grb::Vector<grb::IndexType, Tag>& levels,
                              const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("topo: graph must be square");
  if (levels.size() != n)
    throw grb::DimensionException("topo: levels size mismatch");

  grb::Matrix<IndexType, Tag> P(n, n);
  grb::apply(P, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return IndexType{1}; }, graph);

  grb::Vector<IndexType, Tag> remaining(n);
  grb::assign(remaining, grb::NoMask{}, grb::NoAccumulate{}, IndexType{1},
              grb::all_indices(n));
  levels.clear();

  TopoResult result;
  while (remaining.nvals() > 0) {
    policy.checkpoint("topological_levels");
    // In-degree within the remaining subgraph: pull across transposed
    // edges — indeg[v] = sum over remaining u with (u,v).
    grb::Vector<IndexType, Tag> indeg(n);
    grb::vxm(indeg, grb::structure(remaining), grb::NoAccumulate{},
             grb::ArithmeticSemiring<IndexType>{}, remaining, P,
             grb::Replace);
    // Sources: remaining vertices with no indeg entry.
    grb::Vector<IndexType, Tag> sources(n);
    grb::eWiseMult(sources, grb::complement(grb::structure(indeg)),
                   grb::NoAccumulate{}, grb::First<IndexType>{}, remaining,
                   remaining, grb::Replace);
    if (sources.nvals() == 0) return result;  // cycle: is_dag stays false

    ++result.levels_used;
    grb::assign(levels, grb::structure(sources), grb::NoAccumulate{},
                result.levels_used, grb::all_indices(n), grb::Merge);
    grb::assign(remaining, grb::structure(sources), grb::NoAccumulate{},
                IndexType{0}, grb::all_indices(n), grb::Merge);
    grb::select(remaining, grb::NoMask{}, grb::NoAccumulate{},
                [](IndexType, IndexType v) { return v != 0; }, remaining,
                grb::Replace);
  }
  result.is_dag = true;
  return result;
}

/// Is the directed graph acyclic?
template <typename T, typename Tag>
bool is_dag(const grb::Matrix<T, Tag>& graph) {
  grb::Vector<grb::IndexType, Tag> levels(graph.nrows());
  return topological_levels(graph, levels).is_dag;
}

/// A topological order (host array) of a DAG; throws on cyclic input.
/// Within a level, vertices come out in index order.
template <typename T, typename Tag>
grb::IndexArrayType topological_order(const grb::Matrix<T, Tag>& graph) {
  grb::Vector<grb::IndexType, Tag> levels(graph.nrows());
  const auto res = topological_levels(graph, levels);
  if (!res.is_dag)
    throw grb::InvalidValueException("topological_order: graph has a cycle");
  grb::IndexArrayType order;
  order.reserve(graph.nrows());
  for (grb::IndexType lvl = 1; lvl <= res.levels_used; ++lvl) {
    grb::IndexArrayType idx;
    std::vector<grb::IndexType> vals;
    levels.extractTuples(idx, vals);
    for (grb::IndexType k = 0; k < idx.size(); ++k)
      if (vals[k] == lvl) order.push_back(idx[k]);
  }
  return order;
}

}  // namespace algorithms
