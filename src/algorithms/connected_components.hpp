#pragma once

/// @file connected_components.hpp
/// Connected components by min-label propagation: every vertex repeatedly
/// adopts the smallest label in its closed neighbourhood (one mxv over the
/// (min, select2nd) semiring per round) until a fixed point.

#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Label the components of an *undirected* (symmetric) graph. On return,
/// labels[v] = smallest vertex id in v's component (dense).
/// @returns the number of propagation rounds.
template <typename T, typename Tag>
grb::IndexType connected_components(const grb::Matrix<T, Tag>& graph,
                                    grb::Vector<grb::IndexType, Tag>& labels,
                                    const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException(
        "connected_components: graph must be square");
  if (labels.size() != n)
    throw grb::DimensionException(
        "connected_components: labels size mismatch");

  // labels = iota
  labels.clear();
  {
    grb::IndexArrayType idx = grb::all_indices(n);
    std::vector<IndexType> vals(idx.begin(), idx.end());
    labels.build(idx, vals);
  }

  grb::Vector<IndexType, Tag> neighbour_min(n), prev(n);
  IndexType rounds = 0;
  for (IndexType k = 0; k < n; ++k) {
    policy.checkpoint("connected_components");
    prev = labels;
    // neighbour_min[v] = min label among v's neighbours.
    grb::mxv(neighbour_min, grb::NoMask{}, grb::NoAccumulate{},
             grb::MinSelect2ndSemiring<IndexType>{}, graph, labels,
             grb::Replace);
    // Adopt the smaller of own and neighbourhood label.
    grb::eWiseAdd(labels, grb::NoMask{}, grb::NoAccumulate{},
                  grb::Min<IndexType>{}, labels, neighbour_min);
    ++rounds;
    if (labels == prev) break;
  }
  return rounds;
}

/// Number of distinct components (host-side count over the label vector).
template <typename T, typename Tag>
grb::IndexType component_count(const grb::Matrix<T, Tag>& graph) {
  grb::Vector<grb::IndexType, Tag> labels(graph.nrows());
  connected_components(graph, labels);
  grb::IndexArrayType idx;
  std::vector<grb::IndexType> vals;
  labels.extractTuples(idx, vals);
  grb::IndexType count = 0;
  for (grb::IndexType i = 0; i < idx.size(); ++i)
    if (vals[i] == idx[i]) ++count;  // component roots label themselves
  return count;
}

}  // namespace algorithms
