#pragma once

/// @file metrics.hpp
/// Vertex and graph metrics: degrees, density, clustering coefficients,
/// closeness centrality, and batch-Brandes betweenness centrality — the
/// "metrics" algorithm family of GBTL.

#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/triangle_count.hpp"
#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Out-degree of every vertex (vertices with no out edges hold no value).
template <typename T, typename Tag>
grb::Vector<grb::IndexType, Tag> out_degree(const grb::Matrix<T, Tag>& graph) {
  grb::Matrix<grb::IndexType, Tag> pattern(graph.nrows(), graph.ncols());
  grb::apply(pattern, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return grb::IndexType{1}; }, graph);
  grb::Vector<grb::IndexType, Tag> deg(graph.nrows());
  grb::reduce(deg, grb::NoMask{}, grb::NoAccumulate{},
              grb::PlusMonoid<grb::IndexType>{}, pattern);
  return deg;
}

/// In-degree: out-degree of the transpose.
template <typename T, typename Tag>
grb::Vector<grb::IndexType, Tag> in_degree(const grb::Matrix<T, Tag>& graph) {
  grb::Matrix<T, Tag> at(graph.ncols(), graph.nrows());
  grb::transpose(at, grb::NoMask{}, grb::NoAccumulate{}, graph);
  return out_degree(at);
}

/// Edge count / (n * (n-1)) for a directed graph.
template <typename T, typename Tag>
double graph_density(const grb::Matrix<T, Tag>& graph) {
  const double n = static_cast<double>(graph.nrows());
  if (n < 2) return 0.0;
  return static_cast<double>(graph.nvals()) / (n * (n - 1.0));
}

/// Local clustering coefficient of every vertex of an undirected graph:
/// triangles(v) / (deg(v) choose 2). Degree-<2 vertices get 0.
template <typename T, typename Tag>
grb::Vector<double, Tag> clustering_coefficient(
    const grb::Matrix<T, Tag>& graph) {
  const grb::IndexType n = graph.nrows();
  auto tri = triangles_per_vertex(graph);
  auto deg = out_degree(graph);

  grb::Vector<double, Tag> tri_d(n), deg_d(n), cc(n);
  grb::apply(tri_d, grb::NoMask{}, grb::NoAccumulate{},
             [](std::uint64_t t) { return static_cast<double>(t); }, tri);
  grb::apply(deg_d, grb::NoMask{}, grb::NoAccumulate{},
             [](grb::IndexType d) { return static_cast<double>(d); }, deg);
  grb::eWiseMult(cc, grb::NoMask{}, grb::NoAccumulate{},
                 [](double t, double d) {
                   return d < 2.0 ? 0.0 : 2.0 * t / (d * (d - 1.0));
                 },
                 tri_d, deg_d);
  // Densify: vertices without entries (isolated) get 0.
  grb::assign(cc, grb::complement(grb::structure(cc)), grb::NoAccumulate{},
              0.0, grb::all_indices(n));
  return cc;
}

/// Global clustering coefficient: 3 * triangles / open wedges.
template <typename T, typename Tag>
double global_clustering_coefficient(const grb::Matrix<T, Tag>& graph) {
  const auto tri = triangle_count_masked(graph);
  auto deg = out_degree(graph);
  grb::IndexArrayType idx;
  std::vector<grb::IndexType> d;
  deg.extractTuples(idx, d);
  double wedges = 0.0;
  for (auto dv : d)
    wedges += static_cast<double>(dv) * static_cast<double>(dv - 1) / 2.0;
  if (wedges == 0.0) return 0.0;
  return 3.0 * static_cast<double>(tri) / wedges;
}

/// Closeness centrality of @p v: (reachable - 1) / sum of hop distances.
template <typename T, typename Tag>
double closeness_centrality(const grb::Matrix<T, Tag>& graph,
                            grb::IndexType v) {
  auto dist = bfs_distance(graph, v);
  grb::IndexType total = 0;
  grb::reduce(total, grb::NoAccumulate{}, grb::PlusMonoid<grb::IndexType>{},
              dist);
  const grb::IndexType reachable = dist.nvals();
  if (reachable <= 1 || total == 0) return 0.0;
  return static_cast<double>(reachable - 1) / static_cast<double>(total);
}

/// Batch-Brandes betweenness centrality (unweighted): exact BC scores for
/// all vertices, accumulated over the given sources (pass all vertices for
/// exact BC, a sample for approximate BC). Endpoint vertices excluded, no
/// normalization — raw Brandes deltas over directed shortest paths.
template <typename T, typename Tag>
grb::Vector<double, Tag> betweenness_centrality(
    const grb::Matrix<T, Tag>& graph, const grb::IndexArrayType& sources) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("bc: graph must be square");

  grb::Vector<double, Tag> bc(n);
  grb::assign(bc, grb::NoMask{}, grb::NoAccumulate{}, 0.0,
              grb::all_indices(n));

  for (IndexType s : sources) {
    if (s >= n) throw grb::IndexOutOfBoundsException("bc: source");

    // --- Forward phase: sigma per BFS level. ---------------------------
    // sigmas[d][v] = number of shortest s->v paths, for v at depth d.
    std::vector<grb::Vector<double, Tag>> sigmas;
    grb::Vector<double, Tag> seen(n);   // all discovered vertices (sigma)
    grb::Vector<double, Tag> frontier(n);
    frontier.setElement(s, 1.0);
    seen = frontier;
    sigmas.push_back(frontier);

    while (true) {
      grb::Vector<double, Tag> next(n);
      grb::vxm(next, grb::complement(grb::structure(seen)),
               grb::NoAccumulate{}, grb::ArithmeticSemiring<double>{},
               sigmas.back(), graph, grb::Replace);
      if (next.nvals() == 0) break;
      grb::eWiseAdd(seen, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Plus<double>{}, seen, next);
      sigmas.push_back(next);
    }

    // --- Backward phase: delta accumulation. ---------------------------
    grb::Vector<double, Tag> delta(n);
    grb::assign(delta, grb::NoMask{}, grb::NoAccumulate{}, 0.0,
                grb::all_indices(n));
    for (std::size_t d = sigmas.size(); d-- > 1;) {
      // w = (1 + delta) / sigma on the depth-d frontier.
      grb::Vector<double, Tag> w(n);
      grb::eWiseMult(w, grb::NoMask{}, grb::NoAccumulate{},
                     [](double sig, double del) {
                       return (1.0 + del) / sig;
                     },
                     sigmas[d], delta, grb::Replace);
      // Pull across edges into depth d-1: t = A * w.
      grb::Vector<double, Tag> t(n);
      grb::mxv(t, grb::structure(sigmas[d - 1]), grb::NoAccumulate{},
               grb::ArithmeticSemiring<double>{}, graph, w, grb::Replace);
      // delta += t .* sigma at depth d-1.
      grb::Vector<double, Tag> contrib(n);
      grb::eWiseMult(contrib, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Times<double>{}, t, sigmas[d - 1], grb::Replace);
      grb::eWiseAdd(delta, grb::NoMask{}, grb::NoAccumulate{},
                    grb::Plus<double>{}, delta, contrib);
    }

    // bc += delta (source excluded).
    grb::Vector<double, Tag> delta_no_s = delta;
    delta_no_s.setElement(s, 0.0);
    grb::eWiseAdd(bc, grb::NoMask{}, grb::NoAccumulate{},
                  grb::Plus<double>{}, bc, delta_no_s);
  }
  return bc;
}

/// Exact betweenness centrality from all sources.
template <typename T, typename Tag>
grb::Vector<double, Tag> betweenness_centrality(
    const grb::Matrix<T, Tag>& graph) {
  return betweenness_centrality(graph, grb::all_indices(graph.nrows()));
}

}  // namespace algorithms
