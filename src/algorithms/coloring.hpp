#pragma once

/// @file coloring.hpp
/// Greedy parallel graph coloring (Jones–Plassmann / Luby style): each
/// round, vertices whose random priority beats all uncolored neighbours
/// take the smallest color unused in their neighbourhood. Rounds are a few
/// GraphBLAS ops; the per-winner color choice probes the winner's
/// neighbourhood colors.

#include <cstdint>
#include <vector>

#include "algorithms/mis.hpp"  // splitmix64
#include "gbtl/gbtl.hpp"

namespace algorithms {

struct ColoringResult {
  grb::IndexType colors_used = 0;
  grb::IndexType rounds = 0;
};

/// Color an undirected (symmetric, loop-free) graph so that no edge is
/// monochromatic. Colors are 1-based; colors[v] is dense on return.
template <typename T, typename Tag>
ColoringResult greedy_coloring(const grb::Matrix<T, Tag>& graph,
                               grb::Vector<grb::IndexType, Tag>& colors,
                               std::uint64_t seed = 1,
                               const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("coloring: graph must be square");
  if (colors.size() != n)
    throw grb::DimensionException("coloring: colors size mismatch");

  colors.clear();
  grb::Vector<bool, Tag> uncolored(n);
  grb::assign(uncolored, grb::NoMask{}, grb::NoAccumulate{}, true,
              grb::all_indices(n));

  grb::Vector<double, Tag> priority(n), neighbour_max(n);
  grb::Vector<bool, Tag> winners(n), lonely(n);

  ColoringResult result;
  while (uncolored.nvals() > 0) {
    policy.checkpoint("greedy_coloring");
    ++result.rounds;
    const std::uint64_t salt = detail::splitmix64(seed ^ result.rounds);

    // Random priorities for still-uncolored vertices.
    grb::applyIndexed(priority, grb::NoMask{}, grb::NoAccumulate{},
                      [salt](IndexType i, bool) {
                        const std::uint64_t h =
                            detail::splitmix64(salt + i * 0x9e3779b9ull);
                        return static_cast<double>(h >> 11) * 0x1.0p-53;
                      },
                      uncolored, grb::Replace);

    // Max priority among uncolored neighbours.
    grb::mxv(neighbour_max, grb::structure(uncolored), grb::NoAccumulate{},
             grb::MaxSelect2ndSemiring<double>{}, graph, priority,
             grb::Replace);

    // Winners beat every uncolored neighbour, or have none left.
    grb::eWiseMult(winners, grb::NoMask{}, grb::NoAccumulate{},
                   grb::GreaterThan<double>{}, priority, neighbour_max,
                   grb::Replace);
    grb::select(winners, grb::NoMask{}, grb::NoAccumulate{},
                [](IndexType, bool w) { return w; }, winners, grb::Replace);
    grb::eWiseMult(lonely, grb::complement(grb::structure(neighbour_max)),
                   grb::NoAccumulate{}, grb::First<bool>{}, uncolored,
                   uncolored, grb::Replace);
    grb::eWiseAdd(winners, grb::NoMask{}, grb::NoAccumulate{},
                  grb::LogicalOr<bool>{}, winners, lonely, grb::Replace);
    if (winners.nvals() == 0) continue;  // tie round, redraw

    // Each winner takes the smallest color absent from its neighbourhood.
    // Winners form an independent set among the uncolored, so their choices
    // cannot conflict with each other: their neighbours' colors are frozen
    // this round. (Host loop over winners; each probe is GraphBLAS.)
    grb::IndexArrayType win_idx;
    std::vector<bool> win_vals;
    winners.extractTuples(win_idx, win_vals);
    grb::Vector<IndexType, Tag> row(n);
    const grb::IndexArrayType all = grb::all_indices(n);
    for (IndexType w : win_idx) {
      // Colors present among w's neighbours: gather row w of the adjacency
      // against the color vector.
      grb::extract(row, grb::NoMask{}, grb::NoAccumulate{},
                   grb::transpose(graph), all, w, grb::Replace);
      grb::Vector<IndexType, Tag> neigh_colors(n);
      grb::eWiseMult(neigh_colors, grb::NoMask{}, grb::NoAccumulate{},
                     grb::Second<IndexType>{}, row, colors, grb::Replace);
      grb::IndexArrayType cidx;
      std::vector<IndexType> cvals;
      neigh_colors.extractTuples(cidx, cvals);
      std::vector<bool> used(cvals.size() + 2, false);
      for (IndexType c : cvals)
        if (c < used.size()) used[c] = true;
      IndexType color = 1;
      while (color < used.size() && used[color]) ++color;
      colors.setElement(w, color);
      if (color > result.colors_used) result.colors_used = color;
    }

    // Remove winners from the uncolored pool.
    grb::assign(uncolored, grb::structure(winners), grb::NoAccumulate{},
                false, all, grb::Merge);
    grb::select(uncolored, grb::NoMask{}, grb::NoAccumulate{},
                [](IndexType, bool live) { return live; }, uncolored,
                grb::Replace);
  }
  return result;
}

/// Validate a coloring: dense, 1-based, and proper (no monochromatic edge).
template <typename T, typename Tag>
bool is_proper_coloring(const grb::Matrix<T, Tag>& graph,
                        const grb::Vector<grb::IndexType, Tag>& colors) {
  if (colors.nvals() != graph.nrows()) return false;
  grb::IndexArrayType rows, cols;
  std::vector<T> vals;
  graph.extractTuples(rows, cols, vals);
  for (grb::IndexType e = 0; e < rows.size(); ++e) {
    if (rows[e] == cols[e]) continue;
    if (colors.extractElement(rows[e]) == colors.extractElement(cols[e]))
      return false;
  }
  return true;
}

}  // namespace algorithms
