#pragma once

/// @file mst.hpp
/// Prim's minimum spanning tree in GraphBLAS form: grow a tree from a root,
/// maintaining d = lightest edge from the tree to each outside vertex
/// (updated by one eWiseAdd(min) with the newly added vertex's adjacency
/// row per step). The argmin step extracts the masked candidate vector —
/// the inherently sequential part of Prim, as in GBTL's reference mst.

#include <limits>
#include <vector>

#include "gbtl/gbtl.hpp"

namespace algorithms {

struct MstResult {
  /// Sum of tree edge weights (forest weight if the graph is disconnected).
  double weight = 0.0;
  /// Number of tree edges (n - #components).
  grb::IndexType edges = 0;
};

/// Compute an MST (minimum spanning forest on disconnected graphs) of an
/// undirected graph with positive weights. parents[v] = tree parent of v;
/// roots hold their own id.
template <typename T, typename Tag>
MstResult mst(const grb::Matrix<T, Tag>& graph,
              grb::Vector<grb::IndexType, Tag>& parents) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("mst: graph must be square");
  if (parents.size() != n)
    throw grb::DimensionException("mst: parents size mismatch");

  MstResult result;
  parents.clear();

  std::vector<bool> in_tree(n, false);
  grb::Vector<T, Tag> d(n);          // lightest edge into the tree
  grb::Vector<IndexType, Tag> via(n);  // tree endpoint of that edge
  grb::Vector<T, Tag> row(n);

  const grb::IndexArrayType all = grb::all_indices(n);

  IndexType remaining = n;
  while (remaining > 0) {
    // Pick a fresh root for the next component.
    IndexType root = 0;
    while (root < n && in_tree[root]) ++root;
    in_tree[root] = true;
    --remaining;
    parents.setElement(root, root);
    d.clear();
    via.clear();

    // Seed candidates from the root's row.
    grb::extract(row, grb::NoMask{}, grb::NoAccumulate{},
                 grb::transpose(graph), all, root, grb::Replace);
    d = row;
    grb::assign(via, grb::structure(row), grb::NoAccumulate{}, root, all);

    for (;;) {
      // Host-side argmin over candidates not yet in the tree.
      grb::IndexArrayType idx;
      std::vector<T> vals;
      d.extractTuples(idx, vals);
      IndexType best = n;
      T best_w = std::numeric_limits<T>::max();
      for (IndexType k = 0; k < idx.size(); ++k) {
        if (in_tree[idx[k]]) continue;
        if (vals[k] < best_w) {
          best_w = vals[k];
          best = idx[k];
        }
      }
      if (best == n) break;  // component exhausted

      in_tree[best] = true;
      --remaining;
      result.weight += static_cast<double>(best_w);
      ++result.edges;
      parents.setElement(best, via.extractElement(best));
      d.removeElement(best);

      // Relax: d = min(d, weights of best's row), tracking the endpoint.
      grb::extract(row, grb::NoMask{}, grb::NoAccumulate{},
                   grb::transpose(graph), all, best, grb::Replace);
      // Where the new row improves d (or d has no entry), update via.
      grb::Vector<bool, Tag> improved(n);
      grb::eWiseMult(improved, grb::NoMask{}, grb::NoAccumulate{},
                     grb::LessThan<T>{}, row, d, grb::Replace);
      grb::select(improved, grb::NoMask{}, grb::NoAccumulate{},
                  [](grb::IndexType, bool b) { return b; }, improved,
                  grb::Replace);
      grb::Vector<bool, Tag> fresh(n);
      grb::eWiseMult(fresh, grb::complement(grb::structure(d)),
                     grb::NoAccumulate{}, grb::LogicalOr<bool>{},
                     grb::Vector<bool, Tag>(std::vector<bool>(n, true), false),
                     grb::Vector<bool, Tag>(std::vector<bool>(n, true), false),
                     grb::Replace);
      grb::Vector<bool, Tag> row_mask(n);
      grb::eWiseMult(row_mask, grb::structure(row), grb::NoAccumulate{},
                     grb::LogicalOr<bool>{}, fresh, fresh, grb::Replace);
      grb::eWiseAdd(improved, grb::NoMask{}, grb::NoAccumulate{},
                    grb::LogicalOr<bool>{}, improved, row_mask);
      grb::assign(via, grb::structure(improved), grb::NoAccumulate{}, best,
                  all);
      grb::eWiseAdd(d, grb::NoMask{}, grb::NoAccumulate{}, grb::Min<T>{}, d,
                    row);
    }
  }
  return result;
}

}  // namespace algorithms
