#pragma once

/// @file pagerank.hpp
/// PageRank as iterated vxm over the arithmetic semiring, with row
/// normalization, teleport, and dangling-mass redistribution. The
/// iteration machinery is shared (detail::pagerank_run) between the cold
/// solve here and the warm-started incremental variant
/// (algorithms::pagerank_warm in incremental.hpp): the two differ only in
/// how `rank` is seeded, so the cold path's op sequence — and therefore
/// its bit pattern — is unchanged by the refactor.

#include <cmath>

#include "gbtl/gbtl.hpp"

namespace algorithms {

struct PageRankResult {
  grb::IndexType iterations = 0;
  double final_delta = 0.0;
};

namespace detail {

/// The full PageRank pipeline with a pluggable rank seed: normalization,
/// then `init(rank, all)` at the exact point the cold solve assigned its
/// uniform start, then the damped power iteration with teleport and
/// dangling-mass redistribution until the L1 delta drops under tol.
template <typename T, typename Tag, typename InitFn>
PageRankResult pagerank_run(const grb::Matrix<T, Tag>& graph,
                            grb::Vector<double, Tag>& rank, double damping,
                            double tol, grb::IndexType max_iterations,
                            const grb::ExecutionPolicy& policy,
                            InitFn&& init) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("pagerank: graph must be square");
  if (rank.size() != n)
    throw grb::DimensionException("pagerank: rank size mismatch");

  // Row-stochastic transition matrix M = D^-1 A (pattern-valued).
  grb::Matrix<double, Tag> pattern(n, n);
  grb::apply(pattern, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return 1.0; }, graph);
  grb::Vector<double, Tag> out_degree(n);
  grb::reduce(out_degree, grb::NoMask{}, grb::NoAccumulate{},
              grb::PlusMonoid<double>{}, pattern);
  grb::Vector<double, Tag> inv_degree(n);
  grb::apply(inv_degree, grb::NoMask{}, grb::NoAccumulate{},
             grb::MultiplicativeInverse<double>{}, out_degree);
  grb::Matrix<double, Tag> M(n, n);
  grb::mxm(M, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, grb::diag(inv_degree),
           pattern);

  const grb::IndexArrayType all = grb::all_indices(n);
  init(rank, all);

  // Dangling-vertex indicator (no out edges): their rank mass teleports.
  grb::Vector<bool, Tag> dangling(n);
  grb::assign(dangling, grb::complement(grb::structure(out_degree)),
              grb::NoAccumulate{}, true, all);

  PageRankResult result;
  grb::Vector<double, Tag> next(n), diff(n), dangling_rank(n);
  for (IndexType it = 0; it < max_iterations; ++it) {
    policy.checkpoint("pagerank");
    // next = damping * (rank . M)
    grb::vxm(next, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, rank, M, grb::Replace);
    grb::apply(next, grb::NoMask{}, grb::NoAccumulate{},
               grb::BindSecond<double, grb::Times<double>>{damping}, next);

    // Teleport + dangling mass, spread uniformly.
    double dangling_mass = 0.0;
    grb::eWiseMult(dangling_rank, grb::structure(dangling),
                   grb::NoAccumulate{}, grb::First<double>{}, rank, rank,
                   grb::Replace);
    grb::reduce(dangling_mass, grb::NoAccumulate{},
                grb::PlusMonoid<double>{}, dangling_rank);
    const double teleport =
        (1.0 - damping + damping * dangling_mass) / static_cast<double>(n);
    grb::assign(next, grb::NoMask{}, grb::Plus<double>{}, teleport, all);

    // delta = ||next - rank||_1
    grb::eWiseAdd(diff, grb::NoMask{}, grb::NoAccumulate{},
                  grb::Minus<double>{}, next, rank, grb::Replace);
    grb::apply(diff, grb::NoMask{}, grb::NoAccumulate{},
               grb::Abs<double>{}, diff);
    double delta = 0.0;
    grb::reduce(delta, grb::NoAccumulate{}, grb::PlusMonoid<double>{}, diff);

    rank = next;
    result.iterations = it + 1;
    result.final_delta = delta;
    if (delta < tol) break;
  }
  return result;
}

}  // namespace detail

/// Compute PageRank into @p rank (dense on return, sums to 1).
///
/// @param graph          n x n adjacency matrix (edge weights ignored
///                       beyond structure).
/// @param rank           output vector of size n.
/// @param damping        damping factor (paper-standard 0.85).
/// @param tol            L1 convergence threshold.
/// @param max_iterations safety cap.
template <typename T, typename Tag>
PageRankResult pagerank(const grb::Matrix<T, Tag>& graph,
                        grb::Vector<double, Tag>& rank,
                        double damping = 0.85, double tol = 1e-9,
                        grb::IndexType max_iterations = 100,
                        const grb::ExecutionPolicy& policy = {}) {
  return detail::pagerank_run(
      graph, rank, damping, tol, max_iterations, policy,
      [](grb::Vector<double, Tag>& r, const grb::IndexArrayType& all) {
        // Dense uniform start.
        r.clear();
        grb::assign(r, grb::NoMask{}, grb::NoAccumulate{},
                    1.0 / static_cast<double>(all.size()), all);
      });
}

/// Personalized PageRank: teleport lands on the @p seeds set (uniformly)
/// instead of all vertices — the local-ranking variant used for
/// recommendation ("related users of X"). Dangling mass also returns to the
/// seeds. Same convergence machinery as pagerank().
template <typename T, typename Tag>
PageRankResult personalized_pagerank(const grb::Matrix<T, Tag>& graph,
                                     const grb::IndexArrayType& seeds,
                                     grb::Vector<double, Tag>& rank,
                                     double damping = 0.85,
                                     double tol = 1e-9,
                                     grb::IndexType max_iterations = 100,
                                     const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("ppr: graph must be square");
  if (rank.size() != n)
    throw grb::DimensionException("ppr: rank size mismatch");
  if (seeds.empty()) throw grb::InvalidValueException("ppr: no seeds");
  for (IndexType s : seeds)
    if (s >= n) throw grb::IndexOutOfBoundsException("ppr: seed");

  // Same normalization as pagerank().
  grb::Matrix<double, Tag> pattern(n, n);
  grb::apply(pattern, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return 1.0; }, graph);
  grb::Vector<double, Tag> out_degree(n);
  grb::reduce(out_degree, grb::NoMask{}, grb::NoAccumulate{},
              grb::PlusMonoid<double>{}, pattern);
  grb::Vector<double, Tag> inv_degree(n);
  grb::apply(inv_degree, grb::NoMask{}, grb::NoAccumulate{},
             grb::MultiplicativeInverse<double>{}, out_degree);
  grb::Matrix<double, Tag> M(n, n);
  grb::mxm(M, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<double>{}, grb::diag(inv_degree),
           pattern);

  grb::Vector<bool, Tag> dangling(n);
  grb::assign(dangling, grb::complement(grb::structure(out_degree)),
              grb::NoAccumulate{}, true, grb::all_indices(n));

  const double seed_share = 1.0 / static_cast<double>(seeds.size());
  rank.clear();
  grb::assign(rank, grb::NoMask{}, grb::NoAccumulate{}, seed_share, seeds);

  PageRankResult result;
  grb::Vector<double, Tag> next(n), diff(n), dangling_rank(n);
  for (IndexType it = 0; it < max_iterations; ++it) {
    policy.checkpoint("personalized_pagerank");
    grb::vxm(next, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, rank, M, grb::Replace);
    grb::apply(next, grb::NoMask{}, grb::NoAccumulate{},
               grb::BindSecond<double, grb::Times<double>>{damping}, next);

    double dangling_mass = 0.0;
    grb::eWiseMult(dangling_rank, grb::structure(dangling),
                   grb::NoAccumulate{}, grb::First<double>{}, rank, rank,
                   grb::Replace);
    grb::reduce(dangling_mass, grb::NoAccumulate{},
                grb::PlusMonoid<double>{}, dangling_rank);
    const double teleport =
        (1.0 - damping + damping * dangling_mass) * seed_share;
    grb::assign(next, grb::NoMask{}, grb::Plus<double>{}, teleport, seeds);

    grb::eWiseAdd(diff, grb::NoMask{}, grb::NoAccumulate{},
                  grb::Minus<double>{}, next, rank, grb::Replace);
    grb::apply(diff, grb::NoMask{}, grb::NoAccumulate{}, grb::Abs<double>{},
               diff);
    double delta = 0.0;
    grb::reduce(delta, grb::NoAccumulate{}, grb::PlusMonoid<double>{}, diff);

    rank = next;
    result.iterations = it + 1;
    result.final_delta = delta;
    if (delta < tol) break;
  }
  return result;
}

}  // namespace algorithms
