#pragma once

/// @file mis.hpp
/// Luby's randomized maximal independent set, GraphBLAS-style: each round,
/// every live candidate draws a score biased by 1/(degree+1); candidates
/// that beat every live neighbour join the set, and they and their
/// neighbours leave the candidate pool. Deterministic given the seed.

#include <cstdint>

#include "gbtl/gbtl.hpp"

namespace algorithms {

namespace detail {

/// SplitMix64 — a cheap, high-quality hash usable inside kernels, so score
/// draws are reproducible on every backend.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

/// Compute a maximal independent set of an undirected (symmetric) graph
/// with an empty diagonal. On return iset[v] == true for members (others
/// hold no value). @returns the number of rounds.
template <typename T, typename Tag>
grb::IndexType mis(const grb::Matrix<T, Tag>& graph,
                   grb::Vector<bool, Tag>& iset, std::uint64_t seed = 1,
                   const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("mis: graph must be square");
  if (iset.size() != n)
    throw grb::DimensionException("mis: iset size mismatch");

  // Degrees (dense; isolated vertices get 0).
  grb::Vector<double, Tag> degree(n);
  {
    grb::Matrix<double, Tag> pattern(n, n);
    grb::apply(pattern, grb::NoMask{}, grb::NoAccumulate{},
               [](const T&) { return 1.0; }, graph);
    grb::reduce(degree, grb::NoMask{}, grb::NoAccumulate{},
                grb::PlusMonoid<double>{}, pattern);
    grb::assign(degree, grb::complement(grb::structure(degree)),
                grb::NoAccumulate{}, 0.0, grb::all_indices(n));
  }

  // Candidate scores carry (index) so draws can be vertex-specific.
  grb::Vector<double, Tag> index_of(n);
  {
    grb::IndexArrayType idx = grb::all_indices(n);
    std::vector<double> vals(n);
    for (IndexType i = 0; i < n; ++i) vals[i] = static_cast<double>(i);
    index_of.build(idx, vals);
  }

  iset.clear();
  grb::Vector<bool, Tag> candidates(n);
  grb::assign(candidates, grb::NoMask{}, grb::NoAccumulate{}, true,
              grb::all_indices(n));

  grb::Vector<double, Tag> score(n), neighbour_max(n);
  grb::Vector<bool, Tag> winners(n), losers(n);

  IndexType rounds = 0;
  while (candidates.nvals() > 0) {
    policy.checkpoint("mis");
    ++rounds;
    const std::uint64_t round_salt =
        detail::splitmix64(seed * 0x51ed2701 + rounds);

    // score[v] = U(0,1) hash / (deg[v] + 1), only for live candidates.
    grb::eWiseMult(score, grb::NoMask{}, grb::NoAccumulate{},
                   [round_salt](double vid, double deg) {
                     const std::uint64_t h = detail::splitmix64(
                         round_salt ^ static_cast<std::uint64_t>(vid));
                     const double u =
                         static_cast<double>(h >> 11) * 0x1.0p-53 + 0x1.0p-54;
                     return u / (deg + 1.0);
                   },
                   index_of, degree);
    grb::Vector<double, Tag> live_score(n);
    grb::eWiseMult(live_score, grb::structure(candidates),
                   grb::NoAccumulate{}, grb::First<double>{}, score, score,
                   grb::Replace);

    // Max live-neighbour score.
    grb::mxv(neighbour_max, grb::structure(candidates), grb::NoAccumulate{},
             grb::MaxSelect2ndSemiring<double>{}, graph, live_score,
             grb::Replace);

    // Winners: candidates whose score beats all live neighbours (vertices
    // with no live neighbour have no neighbour_max entry and win outright).
    grb::eWiseMult(winners, grb::NoMask{}, grb::NoAccumulate{},
                   grb::GreaterThan<double>{}, live_score, neighbour_max,
                   grb::Replace);
    grb::select(winners, grb::NoMask{}, grb::NoAccumulate{},
                [](grb::IndexType, bool win) { return win; }, winners,
                grb::Replace);
    grb::Vector<bool, Tag> lonely(n);
    grb::eWiseMult(lonely, grb::complement(grb::structure(neighbour_max)),
                   grb::NoAccumulate{}, grb::First<bool>{}, candidates,
                   candidates, grb::Replace);
    grb::eWiseAdd(winners, grb::NoMask{}, grb::NoAccumulate{},
                  grb::LogicalOr<bool>{}, winners, lonely);

    if (winners.nvals() == 0) continue;  // rare tie round; redraw

    // Add winners to the set.
    grb::eWiseAdd(iset, grb::NoMask{}, grb::NoAccumulate{},
                  grb::LogicalOr<bool>{}, iset, winners);

    // losers = winners' neighbours; remove winners and losers from pool.
    grb::mxv(losers, grb::structure(candidates), grb::NoAccumulate{},
             grb::LogicalSemiring<bool>{}, graph, winners, grb::Replace);
    grb::assign(candidates, grb::structure(winners), grb::NoAccumulate{},
                false, grb::all_indices(n), grb::Merge);
    grb::assign(candidates, grb::structure(losers), grb::NoAccumulate{},
                false, grb::all_indices(n), grb::Merge);
    grb::select(candidates, grb::NoMask{}, grb::NoAccumulate{},
                [](grb::IndexType, bool live) { return live; }, candidates,
                grb::Replace);
  }
  return rounds;
}

/// Verify independence + maximality (test helper, exposed for reuse).
template <typename T, typename Tag>
bool is_maximal_independent_set(const grb::Matrix<T, Tag>& graph,
                                const grb::Vector<bool, Tag>& iset) {
  const grb::IndexType n = graph.nrows();
  // Independence: no member may have a member neighbour.
  grb::Vector<bool, Tag> member_neighbours(n);
  grb::mxv(member_neighbours, grb::NoMask{}, grb::NoAccumulate{},
           grb::LogicalSemiring<bool>{}, graph, iset);
  grb::Vector<bool, Tag> conflict(n);
  grb::eWiseMult(conflict, grb::NoMask{}, grb::NoAccumulate{},
                 grb::LogicalAnd<bool>{}, member_neighbours, iset);
  bool any_conflict = false;
  grb::reduce(any_conflict, grb::NoAccumulate{},
              grb::LogicalOrMonoid<bool>{}, conflict);
  if (any_conflict) return false;
  // Maximality: every non-member must have a member neighbour.
  for (grb::IndexType v = 0; v < n; ++v) {
    if (iset.hasElement(v) && iset.extractElement(v)) continue;
    if (!(member_neighbours.hasElement(v) &&
          member_neighbours.extractElement(v)))
      return false;
  }
  return true;
}

}  // namespace algorithms
