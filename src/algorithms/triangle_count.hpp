#pragma once

/// @file triangle_count.hpp
/// Triangle counting — the showcase for masked mxm (Abl. B). Three
/// formulations over an undirected (symmetric) graph:
///   - masked "Sandia": C<L> = L·L, count = sum(C). The mask prunes the
///     SpGEMM to wedge closures that can actually be triangles.
///   - unmasked-then-filter: C = L·L, then C .* L — computes the same
///     number while paying for the full product (the ablation baseline).
///   - Burkhardt: trace-style count = sum(A·A .* A) / 6.
///
/// On the GPU backend the masked formulation rides the adaptive SpGEMM
/// engine's mask-seeded hash path (docs/spgemm_adaptive.md): the L mask
/// seeds each row's hash table, so wedge products outside the mask are
/// dropped at insertion instead of surviving to a post-product filter.

#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Strict lower triangle of @p graph as a pattern (1-valued) matrix.
template <typename T, typename Tag>
grb::Matrix<T, Tag> lower_triangle(const grb::Matrix<T, Tag>& graph) {
  grb::Matrix<T, Tag> L(graph.nrows(), graph.ncols());
  grb::select(L, grb::NoMask{}, grb::NoAccumulate{},
              [](grb::IndexType i, grb::IndexType j, const T&) {
                return j < i;
              },
              graph);
  return L;
}

/// Masked (Sandia) triangle count; input must be symmetric with an empty
/// diagonal. This is the formulation whose cost the masked-mxm fast path
/// determines.
template <typename T, typename Tag>
std::uint64_t triangle_count_masked(const grb::Matrix<T, Tag>& graph,
                                    const grb::ExecutionPolicy& policy = {}) {
  using CountT = std::uint64_t;
  if (graph.nrows() != graph.ncols())
    throw grb::DimensionException("triangle_count: graph must be square");
  // Not iterative, but the one masked SpGEMM dominates the cost: check the
  // policy once up front so an already-expired query never launches it.
  policy.checkpoint("triangle_count_masked");
  grb::Matrix<CountT, Tag> L(graph.nrows(), graph.ncols());
  grb::apply(L, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return CountT{1}; }, lower_triangle(graph));
  grb::Matrix<CountT, Tag> C(graph.nrows(), graph.ncols());
  grb::mxm(C, grb::structure(L), grb::NoAccumulate{},
           grb::ArithmeticSemiring<CountT>{}, L, grb::transpose(L),
           grb::Replace);
  CountT total = 0;
  grb::reduce(total, grb::NoAccumulate{}, grb::PlusMonoid<CountT>{}, C);
  return total;
}

/// Ablation baseline: same count via the full (unmasked) product followed
/// by an elementwise filter.
template <typename T, typename Tag>
std::uint64_t triangle_count_unmasked(const grb::Matrix<T, Tag>& graph) {
  using CountT = std::uint64_t;
  if (graph.nrows() != graph.ncols())
    throw grb::DimensionException("triangle_count: graph must be square");
  grb::Matrix<CountT, Tag> L(graph.nrows(), graph.ncols());
  grb::apply(L, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return CountT{1}; }, lower_triangle(graph));
  grb::Matrix<CountT, Tag> C(graph.nrows(), graph.ncols());
  grb::mxm(C, grb::NoMask{}, grb::NoAccumulate{},
           grb::ArithmeticSemiring<CountT>{}, L, grb::transpose(L));
  grb::Matrix<CountT, Tag> filtered(graph.nrows(), graph.ncols());
  grb::eWiseMult(filtered, grb::NoMask{}, grb::NoAccumulate{},
                 grb::First<CountT>{}, C, L);
  CountT total = 0;
  grb::reduce(total, grb::NoAccumulate{}, grb::PlusMonoid<CountT>{},
              filtered);
  return total;
}

/// Burkhardt formulation: sum(A·A .* A) / 6 on the full symmetric matrix.
template <typename T, typename Tag>
std::uint64_t triangle_count_burkhardt(const grb::Matrix<T, Tag>& graph) {
  using CountT = std::uint64_t;
  if (graph.nrows() != graph.ncols())
    throw grb::DimensionException("triangle_count: graph must be square");
  grb::Matrix<CountT, Tag> A(graph.nrows(), graph.ncols());
  grb::apply(A, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return CountT{1}; }, graph);
  grb::Matrix<CountT, Tag> C(graph.nrows(), graph.ncols());
  grb::mxm(C, grb::structure(A), grb::NoAccumulate{},
           grb::ArithmeticSemiring<CountT>{}, A, A, grb::Replace);
  CountT total = 0;
  grb::reduce(total, grb::NoAccumulate{}, grb::PlusMonoid<CountT>{}, C);
  return total / 6;
}

/// Per-vertex triangle counts (for clustering coefficients): t[i] =
/// number of triangles through i. Input must be symmetric, empty diagonal.
template <typename T, typename Tag>
grb::Vector<std::uint64_t, Tag> triangles_per_vertex(
    const grb::Matrix<T, Tag>& graph) {
  using CountT = std::uint64_t;
  grb::Matrix<CountT, Tag> A(graph.nrows(), graph.ncols());
  grb::apply(A, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return CountT{1}; }, graph);
  grb::Matrix<CountT, Tag> C(graph.nrows(), graph.ncols());
  grb::mxm(C, grb::structure(A), grb::NoAccumulate{},
           grb::ArithmeticSemiring<CountT>{}, A, A, grb::Replace);
  grb::Vector<CountT, Tag> t(graph.nrows());
  grb::reduce(t, grb::NoMask{}, grb::NoAccumulate{},
              grb::PlusMonoid<CountT>{}, C);
  grb::apply(t, grb::NoMask{}, grb::NoAccumulate{},
             grb::BindSecond<CountT, grb::Div<CountT>>{2}, t);
  return t;
}

}  // namespace algorithms
