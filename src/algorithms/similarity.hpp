#pragma once

/// @file similarity.hpp
/// Neighbourhood-similarity measures for link prediction:
///   - common neighbours / Jaccard scores over all wedge-connected pairs,
///     computed as one (masked) SpGEMM plus an index-aware rescale;
///   - bipartiteness check via 2-coloring with BFS parity.

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "algorithms/bfs.hpp"
#include "gbtl/gbtl.hpp"

namespace algorithms {

/// Common-neighbour counts: C(i,j) = |N(i) ∩ N(j)| for every pair reachable
/// by a wedge (2-hop). Input must be symmetric with an empty diagonal.
/// Self-pairs are dropped; with @p exclude_edges, directly-connected pairs
/// are dropped too (the link-prediction convention: score only *candidate*
/// links).
template <typename T, typename Tag>
grb::Matrix<double, Tag> common_neighbors(const grb::Matrix<T, Tag>& graph,
                                          bool exclude_edges = true) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("similarity: graph must be square");

  grb::Matrix<double, Tag> A(n, n);
  grb::apply(A, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return 1.0; }, graph);
  grb::Matrix<double, Tag> C(n, n);
  if (exclude_edges) {
    // Score only non-adjacent pairs: complement-structure mask prunes the
    // SpGEMM output to candidate links.
    grb::mxm(C, grb::complement(grb::structure(A)), grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, A, A, grb::Replace);
  } else {
    grb::mxm(C, grb::NoMask{}, grb::NoAccumulate{},
             grb::ArithmeticSemiring<double>{}, A, A, grb::Replace);
  }
  // Drop the diagonal (|N(i) ∩ N(i)| = deg(i), not a candidate link).
  grb::Matrix<double, Tag> off_diag(n, n);
  grb::select(off_diag, grb::NoMask{}, grb::NoAccumulate{},
              [](IndexType i, IndexType j, double) { return i != j; }, C,
              grb::Replace);
  return off_diag;
}

/// Jaccard similarity J(i,j) = |N(i)∩N(j)| / |N(i)∪N(j)| over the same
/// pair set as common_neighbors().
template <typename T, typename Tag>
grb::Matrix<double, Tag> jaccard_similarity(const grb::Matrix<T, Tag>& graph,
                                            bool exclude_edges = true) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  auto C = common_neighbors(graph, exclude_edges);

  // Degrees, downloaded once and captured by the rescale functor (degree
  // lookup per entry — a gather in a real device kernel).
  grb::Matrix<double, Tag> A(n, n);
  grb::apply(A, grb::NoMask{}, grb::NoAccumulate{},
             [](const T&) { return 1.0; }, graph);
  grb::Vector<double, Tag> deg_vec(n);
  grb::reduce(deg_vec, grb::NoMask{}, grb::NoAccumulate{},
              grb::PlusMonoid<double>{}, A);
  auto deg = std::make_shared<std::vector<double>>(n, 0.0);
  {
    grb::IndexArrayType idx;
    std::vector<double> vals;
    deg_vec.extractTuples(idx, vals);
    for (IndexType k = 0; k < idx.size(); ++k) (*deg)[idx[k]] = vals[k];
  }

  grb::Matrix<double, Tag> J(n, n);
  grb::applyIndexed(J, grb::NoMask{}, grb::NoAccumulate{},
                    [deg](IndexType i, IndexType j, double common) {
                      const double uni = (*deg)[i] + (*deg)[j] - common;
                      return uni > 0.0 ? common / uni : 0.0;
                    },
                    C, grb::Replace);
  return J;
}

/// Top-k candidate links by Jaccard score (host-side selection over the
/// scored pairs; unordered pairs reported once with i < j).
template <typename T, typename Tag>
std::vector<std::tuple<grb::IndexType, grb::IndexType, double>>
top_link_predictions(const grb::Matrix<T, Tag>& graph, std::size_t k) {
  auto J = jaccard_similarity(graph, /*exclude_edges=*/true);
  grb::IndexArrayType rows, cols;
  std::vector<double> scores;
  J.extractTuples(rows, cols, scores);
  std::vector<std::tuple<grb::IndexType, grb::IndexType, double>> pairs;
  for (grb::IndexType e = 0; e < rows.size(); ++e)
    if (rows[e] < cols[e])
      pairs.emplace_back(rows[e], cols[e], scores[e]);
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    return std::get<2>(a) > std::get<2>(b);
  });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

/// Is the (symmetric) graph bipartite? BFS parity per component: an edge
/// between two vertices at the same level is an odd cycle.
template <typename T, typename Tag>
bool is_bipartite(const grb::Matrix<T, Tag>& graph) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("bipartite: graph must be square");

  grb::Vector<IndexType, Tag> levels(n);
  // Run BFS per undiscovered component, collecting all levels.
  grb::Vector<IndexType, Tag> all_levels(n);
  for (IndexType v = 0; v < n; ++v) {
    if (all_levels.hasElement(v)) continue;
    bfs_level(graph, v, levels);
    grb::eWiseAdd(all_levels, grb::NoMask{}, grb::NoAccumulate{},
                  grb::Max<IndexType>{}, all_levels, levels, grb::Replace);
  }
  // Parity vector: side[v] = level % 2. A same-side edge breaks
  // bipartiteness.
  grb::Vector<IndexType, Tag> side(n);
  grb::apply(side, grb::NoMask{}, grb::NoAccumulate{},
             [](IndexType lvl) { return lvl % 2; }, all_levels);
  grb::IndexArrayType rows, cols;
  std::vector<T> vals;
  graph.extractTuples(rows, cols, vals);
  for (IndexType e = 0; e < rows.size(); ++e) {
    if (rows[e] == cols[e]) return false;  // self loop = odd cycle
    if (side.extractElement(rows[e]) == side.extractElement(cols[e]))
      return false;
  }
  return true;
}

}  // namespace algorithms
