#pragma once

/// @file scc.hpp
/// Strongly connected components by the Forward-Backward (FW-BW) method —
/// the data-parallel SCC algorithm: pick a pivot in an unassigned region,
/// compute its forward and backward reachable sets with boolean
/// vxm-based BFS restricted to the region, intersect them into one SCC,
/// and recurse on the three leftover partitions.

#include <vector>

#include "gbtl/gbtl.hpp"

namespace algorithms {

namespace detail_scc {

/// Indicator of vertices reachable from @p pivot inside the @p region
/// (pivot included), following the edge direction of @p A.
template <typename T, typename Tag>
grb::Vector<bool, Tag> reachable_within(const grb::Matrix<T, Tag>& A,
                                        const grb::Vector<bool, Tag>& region,
                                        grb::IndexType pivot) {
  const grb::IndexType n = A.nrows();
  grb::Vector<bool, Tag> visited(n), frontier(n);
  frontier.setElement(pivot, true);
  while (frontier.nvals() > 0) {
    grb::eWiseAdd(visited, grb::NoMask{}, grb::NoAccumulate{},
                  grb::LogicalOr<bool>{}, visited, frontier);
    // Expand, then keep only unvisited region members.
    grb::Vector<bool, Tag> next(n);
    grb::vxm(next, grb::complement(grb::structure(visited)),
             grb::NoAccumulate{}, grb::LogicalSemiring<bool>{}, frontier, A,
             grb::Replace);
    grb::eWiseMult(frontier, grb::NoMask{}, grb::NoAccumulate{},
                   grb::LogicalAnd<bool>{}, next, region, grb::Replace);
    grb::select(frontier, grb::NoMask{}, grb::NoAccumulate{},
                [](grb::IndexType, bool b) { return b; }, frontier,
                grb::Replace);
  }
  return visited;
}

}  // namespace detail_scc

/// Label the strongly connected components of a directed graph:
/// labels[v] = the pivot vertex id of v's SCC (dense on return).
/// @returns the number of components.
template <typename T, typename Tag>
grb::IndexType strongly_connected_components(
    const grb::Matrix<T, Tag>& graph, grb::Vector<grb::IndexType, Tag>& labels,
    const grb::ExecutionPolicy& policy = {}) {
  using grb::IndexType;
  const IndexType n = graph.nrows();
  if (graph.ncols() != n)
    throw grb::DimensionException("scc: graph must be square");
  if (labels.size() != n)
    throw grb::DimensionException("scc: labels size mismatch");

  // Transpose once for backward reachability.
  grb::Matrix<T, Tag> At(n, n);
  grb::transpose(At, grb::NoMask{}, grb::NoAccumulate{}, graph);

  labels.clear();
  IndexType component_count = 0;

  // Worklist of regions, each an indicator vector (host-held handles).
  std::vector<grb::Vector<bool, Tag>> worklist;
  {
    grb::Vector<bool, Tag> all(n);
    grb::assign(all, grb::NoMask{}, grb::NoAccumulate{}, true,
                grb::all_indices(n));
    worklist.push_back(std::move(all));
  }

  while (!worklist.empty()) {
    policy.checkpoint("strongly_connected_components");
    grb::Vector<bool, Tag> region = std::move(worklist.back());
    worklist.pop_back();
    if (region.nvals() == 0) continue;

    // Pivot: first member of the region.
    grb::IndexArrayType idx;
    std::vector<bool> vals;
    region.extractTuples(idx, vals);
    const IndexType pivot = idx.front();

    auto fwd = detail_scc::reachable_within(graph, region, pivot);
    auto bwd = detail_scc::reachable_within(At, region, pivot);
    // fwd/bwd may stray outside region only at the pivot's own expansion
    // frontier filter — both include pivot and are region-filtered.

    grb::Vector<bool, Tag> scc(n);
    grb::eWiseMult(scc, grb::NoMask{}, grb::NoAccumulate{},
                   grb::LogicalAnd<bool>{}, fwd, bwd, grb::Replace);
    ++component_count;
    grb::assign(labels, grb::structure(scc), grb::NoAccumulate{}, pivot,
                grb::all_indices(n), grb::Merge);

    // Partition the remainder: region∩fwd\scc, region∩bwd\scc,
    // region\(fwd∪bwd).
    auto subtract = [&](const grb::Vector<bool, Tag>& a,
                        const grb::Vector<bool, Tag>& b) {
      grb::Vector<bool, Tag> out(n);
      grb::eWiseMult(out, grb::complement(grb::structure(b)),
                     grb::NoAccumulate{}, grb::LogicalAnd<bool>{}, a, a,
                     grb::Replace);
      return out;
    };
    grb::Vector<bool, Tag> fwd_rest = subtract(fwd, scc);
    grb::Vector<bool, Tag> bwd_rest = subtract(bwd, scc);
    grb::Vector<bool, Tag> reached(n);
    grb::eWiseAdd(reached, grb::NoMask{}, grb::NoAccumulate{},
                  grb::LogicalOr<bool>{}, fwd, bwd, grb::Replace);
    grb::Vector<bool, Tag> rest = subtract(region, reached);

    if (fwd_rest.nvals() > 0) worklist.push_back(std::move(fwd_rest));
    if (bwd_rest.nvals() > 0) worklist.push_back(std::move(bwd_rest));
    if (rest.nvals() > 0) worklist.push_back(std::move(rest));
  }
  return component_count;
}

/// Number of SCCs (convenience).
template <typename T, typename Tag>
grb::IndexType scc_count(const grb::Matrix<T, Tag>& graph) {
  grb::Vector<grb::IndexType, Tag> labels(graph.nrows());
  return strongly_connected_components(graph, labels);
}

}  // namespace algorithms
