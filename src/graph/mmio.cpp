#include "graph/mmio.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>

namespace gbtl_graph {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw MatrixMarketError("empty input");

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket")
    throw MatrixMarketError("missing %%MatrixMarket banner");
  object = to_lower(object);
  format = to_lower(format);
  field = to_lower(field);
  symmetry = to_lower(symmetry);
  if (object != "matrix" || format != "coordinate")
    throw MatrixMarketError("only 'matrix coordinate' is supported");
  if (field != "pattern" && field != "real" && field != "integer")
    throw MatrixMarketError("unsupported field '" + field + "'");
  if (symmetry != "general" && symmetry != "symmetric")
    throw MatrixMarketError("unsupported symmetry '" + symmetry + "'");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  Index nrows = 0, ncols = 0, nnz = 0;
  if (!(size_line >> nrows >> ncols >> nnz))
    throw MatrixMarketError("bad size line");

  EdgeList g;
  g.num_vertices = std::max(nrows, ncols);
  const bool pattern = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  g.src.reserve(nnz);
  g.dst.reserve(nnz);
  if (!pattern) g.weight.reserve(nnz);

  for (Index e = 0; e < nnz; ++e) {
    if (!std::getline(in, line))
      throw MatrixMarketError("unexpected end of entries");
    std::istringstream entry(line);
    Index r = 0, c = 0;
    double v = 1.0;
    if (!(entry >> r >> c)) throw MatrixMarketError("bad entry line");
    if (!pattern && !(entry >> v))
      throw MatrixMarketError("missing value in non-pattern entry");
    if (r == 0 || c == 0 || r > nrows || c > ncols)
      throw MatrixMarketError("index out of declared bounds");
    g.src.push_back(r - 1);
    g.dst.push_back(c - 1);
    if (!pattern) g.weight.push_back(v);
    if (symmetric && r != c) {
      g.src.push_back(c - 1);
      g.dst.push_back(r - 1);
      if (!pattern) g.weight.push_back(v);
    }
  }
  return g;
}

EdgeList read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw MatrixMarketError("cannot open '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const EdgeList& g) {
  const bool pattern = !g.weighted();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << g.num_vertices << ' ' << g.num_vertices << ' ' << g.num_edges()
      << '\n';
  for (Index e = 0; e < g.num_edges(); ++e) {
    out << (g.src[e] + 1) << ' ' << (g.dst[e] + 1);
    if (!pattern) out << ' ' << g.weight[e];
    out << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const EdgeList& g) {
  std::ofstream out(path);
  if (!out) throw MatrixMarketError("cannot open '" + path + "' for writing");
  write_matrix_market(out, g);
}

}  // namespace gbtl_graph
