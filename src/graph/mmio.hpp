#pragma once

/// @file mmio.hpp
/// Matrix Market (coordinate format) reader/writer so externally published
/// graphs (SuiteSparse collection etc.) can be fed to the library. Supports
/// `general` and `symmetric` storage and `pattern` / `real` / `integer`
/// fields; 1-based indices are converted to the library's 0-based world.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/edge_list.hpp"

namespace gbtl_graph {

class MatrixMarketError : public std::runtime_error {
 public:
  explicit MatrixMarketError(const std::string& what_arg)
      : std::runtime_error("MatrixMarket: " + what_arg) {}
};

/// Parse a Matrix Market stream into an edge list. Symmetric storage is
/// expanded to both triangles. num_vertices is max(nrows, ncols).
EdgeList read_matrix_market(std::istream& in);
EdgeList read_matrix_market_file(const std::string& path);

/// Write in `coordinate general` layout, `real` if weighted else `pattern`.
void write_matrix_market(std::ostream& out, const EdgeList& g);
void write_matrix_market_file(const std::string& path, const EdgeList& g);

}  // namespace gbtl_graph
