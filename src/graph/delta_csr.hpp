#pragma once

/// @file delta_csr.hpp
/// Immutable base CSR + replacement-row delta overlay: the storage layer
/// behind streaming graph mutations (docs/streaming.md).
///
/// A published graph version is (base, overlay): `BaseCsr` is a canonical
/// column-sorted CSR that never changes after construction, and the overlay
/// (grb::MatrixOverlay<double>) carries the full merged content of every
/// row an edge batch has touched since the base was built. Applying a batch
/// costs O(previous overlay + batch + touched base rows) — the publish path
/// never rebuilds the base. Once the overlay outgrows CompactionPolicy the
/// caller folds it into a fresh base (compact(), O(n + nnz)) and starts a
/// new base generation.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "gbtl/overlay.hpp"
#include "gbtl/types.hpp"
#include "graph/edge_list.hpp"

namespace gbtl_graph {

/// The streaming layer's overlay is always double-valued (the serving
/// stack's one scalar type).
using DeltaOverlay = grb::MatrixOverlay<double>;
using DeltaOverlayPtr = std::shared_ptr<const DeltaOverlay>;

/// Immutable canonical CSR: rows in order, columns ascending within each
/// row, duplicates already resolved. Built once (build_base_csr / compact)
/// and shared read-only by every snapshot of its generation.
struct BaseCsr {
  Index num_vertices = 0;
  grb::IndexArrayType row_offsets;  ///< num_vertices + 1
  grb::IndexArrayType cols;
  std::vector<double> vals;

  Index num_edges() const { return static_cast<Index>(cols.size()); }
  Index row_size(Index i) const {
    return row_offsets[i + 1] - row_offsets[i];
  }
};

using BaseCsrPtr = std::shared_ptr<const BaseCsr>;

/// Canonicalize an edge list into a BaseCsr. Duplicate (src, dst) pairs
/// resolve LAST-wins in input order — the same dup rule as
/// gbtl_graph::to_matrix (grb::Second), so a matrix built from the result
/// is bit-identical to one built from the raw list. Unweighted edges get
/// value 1.
BaseCsrPtr build_base_csr(const EdgeList& g);

/// One edge batch's outcome, alongside the new overlay.
struct ApplyResult {
  DeltaOverlayPtr overlay;          ///< replaces the previous overlay
  grb::IndexArrayType affected;     ///< endpoints of the batch, sorted unique
  bool structural_removals = false; ///< a stored edge was actually deleted
  std::uint64_t edges_added = 0;    ///< upserts that created a new entry
  std::uint64_t edges_removed = 0;  ///< removes that deleted a stored entry
  std::size_t live_nnz = 0;         ///< merged entry count after the batch
};

/// Apply one batch of removes-then-adds on top of (base, prev_overlay).
/// Within the batch, every remove lands before every add, so an edge both
/// removed and re-added survives with its new weight. Adds upsert
/// (last-wins within the batch); removes of absent edges are no-ops. Rows
/// whose merged content returns to the base row (bitwise, values included)
/// drop out of the overlay — an add-then-remove round trip leaves a clean
/// row behind. @p adds weights are optional (empty -> 1.0); @p removes
/// weights are ignored.
ApplyResult apply_updates(const BaseCsr& base, const DeltaOverlay* prev,
                          std::size_t prev_live_nnz, const EdgeList& adds,
                          const EdgeList& removes);

/// Fold an overlay into a fresh base CSR (O(n + nnz) row substitution).
BaseCsrPtr compact(const BaseCsr& base, const DeltaOverlay& overlay);

/// Merge (base, overlay) back into a canonical edge list — the bridge to
/// every monolithic-matrix consumer (device uploads, the serial oracle).
EdgeList materialize(const BaseCsr& base, const DeltaOverlay* overlay);

/// When to fold the overlay into a fresh base: once it holds more than
/// max_overlay_ratio * base-nnz entries AND at least min_overlay_nnz (so
/// tiny graphs don't compact on every batch).
struct CompactionPolicy {
  double max_overlay_ratio = 0.25;
  std::size_t min_overlay_nnz = 64;

  bool should_compact(std::size_t overlay_nnz, std::size_t base_nnz) const {
    return overlay_nnz >= min_overlay_nnz &&
           static_cast<double>(overlay_nnz) >
               max_overlay_ratio * static_cast<double>(base_nnz);
  }
};

}  // namespace gbtl_graph
