#include "graph/delta_csr.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

namespace gbtl_graph {

namespace {

using RowEntries = std::vector<std::pair<grb::IndexType, double>>;

/// Column-sort @p row stably and collapse duplicate columns last-wins.
/// Stability makes "last in the sorted run" equal "last in input order",
/// which is the grb::Second dup rule to_matrix applies.
void canonicalize_row(RowEntries& row) {
  std::stable_sort(row.begin(), row.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::size_t out = 0;
  for (std::size_t k = 0; k < row.size(); ++k) {
    if (out > 0 && row[out - 1].first == row[k].first)
      row[out - 1] = row[k];
    else
      row[out++] = row[k];
  }
  row.resize(out);
}

/// The base's row @p i as (col, val) pairs.
RowEntries base_row(const BaseCsr& base, Index i) {
  RowEntries row;
  const auto lo = base.row_offsets[i], hi = base.row_offsets[i + 1];
  row.reserve(hi - lo);
  for (auto k = lo; k < hi; ++k) row.emplace_back(base.cols[k], base.vals[k]);
  return row;
}

/// An overlay replacement row as (col, val) pairs.
RowEntries overlay_row(const DeltaOverlay& ov, std::size_t slot) {
  RowEntries row;
  const auto lo = ov.offsets[slot], hi = ov.offsets[slot + 1];
  row.reserve(hi - lo);
  for (auto k = lo; k < hi; ++k) row.emplace_back(ov.cols[k], ov.vals[k]);
  return row;
}

/// Bitwise row equality (column ids and value bit patterns).
bool rows_identical(const RowEntries& a, const RowEntries& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k].first != b[k].first) return false;
    if (std::memcmp(&a[k].second, &b[k].second, sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

BaseCsrPtr build_base_csr(const EdgeList& g) {
  auto base = std::make_shared<BaseCsr>();
  base->num_vertices = g.num_vertices;
  std::vector<RowEntries> rows(g.num_vertices);
  const bool weighted = g.weighted();
  for (std::size_t e = 0; e < g.src.size(); ++e)
    rows[g.src[e]].emplace_back(g.dst[e], weighted ? g.weight[e] : 1.0);

  std::size_t nnz = 0;
  for (auto& row : rows) {
    canonicalize_row(row);
    nnz += row.size();
  }
  base->row_offsets.reserve(g.num_vertices + 1);
  base->cols.reserve(nnz);
  base->vals.reserve(nnz);
  base->row_offsets.push_back(0);
  for (const auto& row : rows) {
    for (const auto& [c, v] : row) {
      base->cols.push_back(c);
      base->vals.push_back(v);
    }
    base->row_offsets.push_back(base->cols.size());
  }
  return base;
}

ApplyResult apply_updates(const BaseCsr& base, const DeltaOverlay* prev,
                          std::size_t prev_live_nnz, const EdgeList& adds,
                          const EdgeList& removes) {
  ApplyResult res;

  // Per-row batch ops, rows in ascending order. Removes land before adds
  // inside each row; adds keep batch order so later upserts win.
  struct RowOps {
    std::vector<grb::IndexType> removes;
    RowEntries adds;
  };
  std::map<Index, RowOps> touched;
  grb::IndexArrayType affected;
  const bool adds_weighted = adds.weighted();
  for (std::size_t e = 0; e < removes.src.size(); ++e) {
    touched[removes.src[e]].removes.push_back(removes.dst[e]);
    affected.push_back(removes.src[e]);
    affected.push_back(removes.dst[e]);
  }
  for (std::size_t e = 0; e < adds.src.size(); ++e) {
    touched[adds.src[e]].adds.emplace_back(
        adds.dst[e], adds_weighted ? adds.weight[e] : 1.0);
    affected.push_back(adds.src[e]);
    affected.push_back(adds.dst[e]);
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  res.affected = std::move(affected);

  // Rebuild each touched row from its current state (previous replacement
  // row if dirty, base row otherwise). Untouched dirty rows carry over
  // verbatim; a touched row that lands bitwise back on its base row drops
  // out of the overlay.
  auto next = std::make_shared<DeltaOverlay>();
  std::size_t live = prev_live_nnz;
  std::size_t prev_slot = 0;
  const std::size_t prev_dirty = prev ? prev->dirty_rows() : 0;
  auto it = touched.begin();

  auto append_row = [&next](Index i, const RowEntries& row) {
    next->rows.push_back(i);
    for (const auto& [c, v] : row) {
      next->cols.push_back(c);
      next->vals.push_back(v);
    }
    next->offsets.push_back(next->cols.size());
  };

  while (prev_slot < prev_dirty || it != touched.end()) {
    const Index prev_row =
        prev_slot < prev_dirty ? prev->rows[prev_slot] : base.num_vertices;
    const Index batch_row =
        it != touched.end() ? it->first : base.num_vertices;

    if (prev_row < batch_row) {
      append_row(prev_row, overlay_row(*prev, prev_slot));
      ++prev_slot;
      continue;
    }

    const Index i = batch_row;
    RowEntries row = prev_row == batch_row ? overlay_row(*prev, prev_slot)
                                           : base_row(base, i);
    if (prev_row == batch_row) ++prev_slot;

    for (const auto col : it->second.removes) {
      const auto pos = std::lower_bound(
          row.begin(), row.end(), col,
          [](const auto& e, grb::IndexType c) { return e.first < c; });
      if (pos != row.end() && pos->first == col) {
        row.erase(pos);
        res.structural_removals = true;
        ++res.edges_removed;
        --live;
      }
    }
    for (const auto& [col, val] : it->second.adds) {
      const auto pos = std::lower_bound(
          row.begin(), row.end(), col,
          [](const auto& e, grb::IndexType c) { return e.first < c; });
      if (pos != row.end() && pos->first == col) {
        pos->second = val;
      } else {
        row.insert(pos, {col, val});
        ++res.edges_added;
        ++live;
      }
    }
    if (!rows_identical(row, base_row(base, i))) append_row(i, row);
    ++it;
  }

  res.live_nnz = live;
  res.overlay = next->empty() ? nullptr : std::move(next);
  return res;
}

BaseCsrPtr compact(const BaseCsr& base, const DeltaOverlay& overlay) {
  auto fresh = std::make_shared<BaseCsr>();
  fresh->num_vertices = base.num_vertices;
  fresh->row_offsets.reserve(base.num_vertices + 1);
  fresh->row_offsets.push_back(0);
  for (Index i = 0; i < base.num_vertices; ++i) {
    const auto slot = overlay.find_row(i);
    if (slot < overlay.dirty_rows()) {
      for (auto k = overlay.offsets[slot]; k < overlay.offsets[slot + 1];
           ++k) {
        fresh->cols.push_back(overlay.cols[k]);
        fresh->vals.push_back(overlay.vals[k]);
      }
    } else {
      for (auto k = base.row_offsets[i]; k < base.row_offsets[i + 1]; ++k) {
        fresh->cols.push_back(base.cols[k]);
        fresh->vals.push_back(base.vals[k]);
      }
    }
    fresh->row_offsets.push_back(fresh->cols.size());
  }
  return fresh;
}

EdgeList materialize(const BaseCsr& base, const DeltaOverlay* overlay) {
  EdgeList g;
  g.num_vertices = base.num_vertices;
  for (Index i = 0; i < base.num_vertices; ++i) {
    const std::size_t slot =
        overlay ? overlay->find_row(i) : std::size_t{0};
    if (overlay && slot < overlay->dirty_rows()) {
      for (auto k = overlay->offsets[slot]; k < overlay->offsets[slot + 1];
           ++k) {
        g.src.push_back(i);
        g.dst.push_back(overlay->cols[k]);
        g.weight.push_back(overlay->vals[k]);
      }
    } else {
      for (auto k = base.row_offsets[i]; k < base.row_offsets[i + 1]; ++k) {
        g.src.push_back(i);
        g.dst.push_back(base.cols[k]);
        g.weight.push_back(base.vals[k]);
      }
    }
  }
  return g;
}

}  // namespace gbtl_graph
