#include "graph/generators.hpp"

#include <algorithm>
#include <map>
#include <random>
#include <stdexcept>

namespace gbtl_graph {

namespace {

std::mt19937_64 make_rng(std::uint64_t seed) { return std::mt19937_64{seed}; }

}  // namespace

EdgeList rmat(unsigned scale, Index edgefactor, std::uint64_t seed, double a,
              double b, double c) {
  if (scale > 40) throw std::invalid_argument("rmat: scale too large");
  const double d = 1.0 - a - b - c;
  if (d < 0.0) throw std::invalid_argument("rmat: a + b + c must be <= 1");

  const Index n = Index{1} << scale;
  const Index m = edgefactor * n;
  EdgeList g;
  g.num_vertices = n;
  g.src.reserve(m);
  g.dst.reserve(m);

  auto rng = make_rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  for (Index e = 0; e < m; ++e) {
    Index row = 0;
    Index col = 0;
    for (unsigned level = 0; level < scale; ++level) {
      // Noise the quadrant probabilities per level as Graph500 does, to
      // avoid exact self-similarity artifacts.
      const double ab = a + b;
      const double a_norm = a / ab;
      const double c_norm = c / (c + d);
      const double r1 = uni(rng);
      const double r2 = uni(rng);
      const bool down = r1 > ab;
      const bool right = down ? (r2 > c_norm) : (r2 > a_norm);
      row = (row << 1) | static_cast<Index>(down);
      col = (col << 1) | static_cast<Index>(right);
    }
    g.src.push_back(row);
    g.dst.push_back(col);
  }
  return g;
}

EdgeList erdos_renyi(Index n, Index m, std::uint64_t seed) {
  EdgeList g;
  g.num_vertices = n;
  g.src.reserve(m);
  g.dst.reserve(m);
  auto rng = make_rng(seed);
  std::uniform_int_distribution<Index> pick(0, n > 0 ? n - 1 : 0);
  for (Index e = 0; e < m; ++e) {
    g.src.push_back(pick(rng));
    g.dst.push_back(pick(rng));
  }
  return g;
}

EdgeList grid2d(Index rows, Index cols) {
  EdgeList g;
  g.num_vertices = rows * cols;
  auto id = [cols](Index r, Index c) { return r * cols + c; };
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g.src.push_back(id(r, c));
        g.dst.push_back(id(r, c + 1));
        g.src.push_back(id(r, c + 1));
        g.dst.push_back(id(r, c));
      }
      if (r + 1 < rows) {
        g.src.push_back(id(r, c));
        g.dst.push_back(id(r + 1, c));
        g.src.push_back(id(r + 1, c));
        g.dst.push_back(id(r, c));
      }
    }
  }
  return g;
}

EdgeList path(Index n) {
  EdgeList g;
  g.num_vertices = n;
  for (Index i = 0; i + 1 < n; ++i) {
    g.src.push_back(i);
    g.dst.push_back(i + 1);
  }
  return g;
}

EdgeList cycle(Index n) {
  EdgeList g = path(n);
  if (n > 1) {
    g.src.push_back(n - 1);
    g.dst.push_back(0);
  }
  return g;
}

EdgeList star(Index n) {
  EdgeList g;
  g.num_vertices = n;
  for (Index i = 1; i < n; ++i) {
    g.src.push_back(0);
    g.dst.push_back(i);
    g.src.push_back(i);
    g.dst.push_back(0);
  }
  return g;
}

EdgeList complete(Index n) {
  EdgeList g;
  g.num_vertices = n;
  for (Index i = 0; i < n; ++i)
    for (Index j = 0; j < n; ++j)
      if (i != j) {
        g.src.push_back(i);
        g.dst.push_back(j);
      }
  return g;
}

// --- Transforms -------------------------------------------------------------

EdgeList symmetrize(const EdgeList& g) {
  EdgeList out = g;
  for (Index e = 0; e < g.num_edges(); ++e) {
    if (g.src[e] == g.dst[e]) continue;
    out.src.push_back(g.dst[e]);
    out.dst.push_back(g.src[e]);
    if (g.weighted()) out.weight.push_back(g.weight[e]);
  }
  return deduplicate(out);
}

EdgeList remove_self_loops(const EdgeList& g) {
  EdgeList out;
  out.num_vertices = g.num_vertices;
  for (Index e = 0; e < g.num_edges(); ++e) {
    if (g.src[e] == g.dst[e]) continue;
    out.src.push_back(g.src[e]);
    out.dst.push_back(g.dst[e]);
    if (g.weighted()) out.weight.push_back(g.weight[e]);
  }
  return out;
}

EdgeList deduplicate(const EdgeList& g) {
  std::map<std::pair<Index, Index>, double> acc;
  for (Index e = 0; e < g.num_edges(); ++e) {
    const auto key = std::make_pair(g.src[e], g.dst[e]);
    const double w = g.weighted() ? g.weight[e] : 1.0;
    auto [it, fresh] = acc.emplace(key, w);
    if (!fresh) it->second += w;
  }
  EdgeList out;
  out.num_vertices = g.num_vertices;
  out.src.reserve(acc.size());
  out.dst.reserve(acc.size());
  if (g.weighted()) out.weight.reserve(acc.size());
  for (const auto& [key, w] : acc) {
    out.src.push_back(key.first);
    out.dst.push_back(key.second);
    if (g.weighted()) out.weight.push_back(w);
  }
  return out;
}

EdgeList lower_triangle(const EdgeList& g) {
  EdgeList out;
  out.num_vertices = g.num_vertices;
  for (Index e = 0; e < g.num_edges(); ++e) {
    if (g.src[e] <= g.dst[e]) continue;
    out.src.push_back(g.src[e]);
    out.dst.push_back(g.dst[e]);
    if (g.weighted()) out.weight.push_back(g.weight[e]);
  }
  return out;
}

EdgeList with_random_weights(const EdgeList& g, double lo, double hi,
                             std::uint64_t seed) {
  EdgeList out = g;
  out.weight.resize(g.num_edges());
  auto rng = make_rng(seed);
  std::uniform_real_distribution<double> uni(lo, hi);
  for (auto& w : out.weight) w = uni(rng);
  return out;
}

std::vector<Index> out_degrees(const EdgeList& g) {
  std::vector<Index> deg(g.num_vertices, 0);
  for (Index e = 0; e < g.num_edges(); ++e) ++deg[g.src[e]];
  return deg;
}

}  // namespace gbtl_graph
