#pragma once

/// @file graph_matrix.hpp
/// Bridge from the host-side EdgeList world (generators, Matrix Market) to
/// GraphBLAS matrices on either backend.

#include <vector>

#include "gbtl/gbtl.hpp"
#include "graph/delta_csr.hpp"
#include "graph/edge_list.hpp"

namespace gbtl_graph {

/// Build an n x n adjacency matrix from an edge list. Unweighted edges get
/// value 1; duplicate edges collapse (last value wins, so a deduplicated
/// input round-trips exactly).
template <typename T, typename Tag>
grb::Matrix<T, Tag> to_matrix(const EdgeList& g) {
  grb::Matrix<T, Tag> a(g.num_vertices, g.num_vertices);
  std::vector<T> vals(g.num_edges());
  for (Index e = 0; e < g.num_edges(); ++e)
    vals[e] = g.weighted() ? static_cast<T>(g.weight[e]) : T{1};
  a.build(g.src, g.dst, vals, grb::Second<T>{});
  return a;
}

/// Build a matrix from a canonical base CSR (graph/delta_csr.hpp). The CSR
/// is already column-sorted and duplicate-free, so the result is
/// bit-identical to to_matrix() on the edge list the CSR was built from —
/// the base side of the overlay-aware ops.
template <typename T, typename Tag>
grb::Matrix<T, Tag> base_to_matrix(const BaseCsr& base) {
  grb::Matrix<T, Tag> a(base.num_vertices, base.num_vertices);
  grb::IndexArrayType rows;
  rows.reserve(base.cols.size());
  for (Index i = 0; i < base.num_vertices; ++i)
    for (auto k = base.row_offsets[i]; k < base.row_offsets[i + 1]; ++k)
      rows.push_back(i);
  std::vector<T> vals(base.vals.begin(), base.vals.end());
  a.build(rows, base.cols, vals, grb::Second<T>{});
  return a;
}

/// Round-trip back to an edge list (weights preserved).
template <typename T, typename Tag>
EdgeList to_edge_list(const grb::Matrix<T, Tag>& a) {
  EdgeList g;
  g.num_vertices = a.nrows();
  std::vector<T> vals;
  a.extractTuples(g.src, g.dst, vals);
  g.weight.assign(vals.begin(), vals.end());
  return g;
}

}  // namespace gbtl_graph
