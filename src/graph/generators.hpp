#pragma once

/// @file generators.hpp
/// Synthetic graph generators standing in for the paper's testbed inputs.
/// R-MAT with Graph500 parameters is the primary evaluation workload; the
/// regular families (grid, path, cycle, star, complete) drive unit tests and
/// the sparse-format ablation.

#include <cstdint>

#include "graph/edge_list.hpp"

namespace gbtl_graph {

/// R-MAT / stochastic Kronecker generator (Chakrabarti et al.), the
/// Graph500 workload. Produces 2^scale vertices and edgefactor * 2^scale
/// directed edges (duplicates and self-loops included, as the benchmark
/// specifies). Default partition probabilities are the Graph500 values.
EdgeList rmat(unsigned scale, Index edgefactor, std::uint64_t seed,
              double a = 0.57, double b = 0.19, double c = 0.19);

/// G(n, m) Erdős–Rényi: m directed edges drawn uniformly (with replacement).
EdgeList erdos_renyi(Index n, Index m, std::uint64_t seed);

/// Two-dimensional 4-neighbour grid of rows x cols vertices (directed both
/// ways, i.e. symmetric) — the road-network stand-in.
EdgeList grid2d(Index rows, Index cols);

/// Directed path 0 -> 1 -> ... -> n-1.
EdgeList path(Index n);

/// Directed cycle over n vertices.
EdgeList cycle(Index n);

/// Star: vertex 0 connected to and from every other vertex.
EdgeList star(Index n);

/// Complete directed graph without self-loops. Quadratic — tests only.
EdgeList complete(Index n);

}  // namespace gbtl_graph
