#pragma once

/// @file edge_list.hpp
/// Host-side edge-list representation shared by the generators, the Matrix
/// Market reader, and the examples/benches. This is the neutral exchange
/// format from which GraphBLAS matrices are `build()`-ed — equivalent to the
/// (I, J, V) tuple arrays of the GraphBLAS C API.

#include <cstdint>
#include <vector>

namespace gbtl_graph {

using Index = std::uint64_t;

struct EdgeList {
  /// Number of vertices; edges reference vertex ids in [0, num_vertices).
  Index num_vertices = 0;
  std::vector<Index> src;
  std::vector<Index> dst;
  /// Edge weights; empty means the graph is unweighted (pattern-only).
  std::vector<double> weight;

  Index num_edges() const { return static_cast<Index>(src.size()); }
  bool weighted() const { return !weight.empty(); }
};

/// --- Transforms (each returns a new list; inputs stay valid) -------------

/// Add the reverse of every edge (skipping self-loops' duplicates), making
/// the adjacency structure symmetric. Weights are carried over.
EdgeList symmetrize(const EdgeList& g);

/// Drop edges with src == dst.
EdgeList remove_self_loops(const EdgeList& g);

/// Collapse duplicate (src, dst) pairs; duplicate weights combine by
/// summation (the GraphBLAS build default for dup handling in this repo).
EdgeList deduplicate(const EdgeList& g);

/// Keep only edges with src > dst (strict lower triangle) — the triangle
/// counting preprocessing step.
EdgeList lower_triangle(const EdgeList& g);

/// Assign uniform-random integer weights in [lo, hi] (deterministic seed).
EdgeList with_random_weights(const EdgeList& g, double lo, double hi,
                             std::uint64_t seed);

/// Out-degree of every vertex.
std::vector<Index> out_degrees(const EdgeList& g);

}  // namespace gbtl_graph
