#pragma once

/// @file bitmap.hpp
/// Bit-packed boolean storage: `BitMatrix` (row-major 64-bit-word bitmap
/// adjacency, one cache-line-aligned word row per vertex block) and
/// `BitVector` (dense word bitmap with a cached popcount). The Bit format
/// stores *structure-only* boolean data — every stored entry is one bit —
/// which is exactly the payload of boolean-semiring workloads: BFS
/// frontiers, visited masks, and the 1-valued lower triangle fed to
/// triangle counting (Bit-GraphBLAS's observation; see PAPERS.md).
///
/// Semantics carry TWO bitplanes per matrix/vector:
///   - the *structure* plane: one bit per stored entry, and
///   - the *truth* plane: one bit per stored entry whose value is truthy.
/// GraphBLAS distinguishes "stored false" from "absent" — a CSR matrix can
/// hold explicit zeros, and `LogicalSemiring` folds over them must yield a
/// present-but-false output. Truth is a subset of structure, so a truth hit
/// implies a structure hit (the license for word-scan early exit). When
/// every stored value is truthy (`all_truthy`, the common case for graphs
/// built from 1-valued edges) the truth plane aliases the structure plane
/// and the footprint halves.
///
/// Word kernels over these planes (AND/OR + popcount/ffs) live in
/// backend_gpu/bit_ops.hpp (simulated device), backend_sequential/
/// bit_ops.hpp and backend_cpupar/bit_ops.hpp (host counterparts); this
/// header owns the formats, CSR conversions, the `GBTL_BIT_MODE` knob, and
/// the cost model the selectors use to propose/ratify the Bit format.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gpu_sim/device_properties.hpp"
#include "sparse/formats.hpp"

namespace sparse {

// ---------------------------------------------------------------------------
// Word geometry
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kBitWordBits = 64;

/// Words per logical row, before alignment.
inline constexpr Index bit_words(Index n) {
  return (n + kBitWordBits - 1) / kBitWordBits;
}

/// Row stride in words, rounded up to a 64-byte cache line (8 words) so
/// every vertex block's word row starts cache-line-aligned and two
/// consecutive rows never share a line (also the invariant the CpuPar
/// kernels lean on: word chunks on 8-word boundaries never split a row's
/// cache line between workers).
inline constexpr Index kBitRowAlignWords = 8;
inline constexpr Index bit_row_stride(Index n) {
  const Index w = bit_words(n);
  return ((w + kBitRowAlignWords - 1) / kBitRowAlignWords) * kBitRowAlignWords;
}

inline int bit_popcount(std::uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(w);
#else
  int c = 0;
  while (w) {
    w &= w - 1;
    ++c;
  }
  return c;
#endif
}

/// Index of the lowest set bit (w must be nonzero) — the "ffs" half of the
/// frontier-extraction idiom: AND two word rows, then peel set bits.
inline unsigned bit_ffs(std::uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctzll(w));
#else
  unsigned i = 0;
  while (!(w & 1)) {
    w >>= 1;
    ++i;
  }
  return i;
#endif
}

/// Mask keeping only the first n%64 bits of the last word of an n-bit row
/// (all-ones when n is a word multiple). Planes maintain the invariant that
/// bits past n are zero, so AND/OR/popcount never see phantom columns.
inline constexpr std::uint64_t bit_tail_mask(Index n) {
  const Index r = n % kBitWordBits;
  return r == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << r) - 1);
}

// ---------------------------------------------------------------------------
// BitVector: dense word bitmap with cached popcount
// ---------------------------------------------------------------------------

/// Dense bitmap over [0, n): one bit per index, plus a popcount cached per
/// dirty epoch exactly like backend_gpu::Vector's nvals cache — any
/// mutating access invalidates, the next popcount() recounts once.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(Index n) : n_(n), words_(bit_words(n), 0) {}

  Index size() const { return n_; }
  Index word_count() const { return static_cast<Index>(words_.size()); }

  const std::uint64_t* words() const { return words_.data(); }
  /// Mutable word access is a structural write: the popcount cache drops.
  std::uint64_t* mutable_words() {
    count_valid_ = false;
    return words_.data();
  }

  bool test(Index i) const {
    return (words_[i / kBitWordBits] >> (i % kBitWordBits)) & 1;
  }
  void set(Index i) {
    count_valid_ = false;
    words_[i / kBitWordBits] |= std::uint64_t{1} << (i % kBitWordBits);
  }
  void reset(Index i) {
    count_valid_ = false;
    words_[i / kBitWordBits] &= ~(std::uint64_t{1} << (i % kBitWordBits));
  }
  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
    count_valid_ = true;
  }

  /// Set-bit count, cached until the next mutating access.
  Index popcount() const {
    if (!count_valid_) {
      Index c = 0;
      for (const std::uint64_t w : words_) c += bit_popcount(w);
      count_ = c;
      count_valid_ = true;
    }
    return count_;
  }
  bool popcount_cached() const { return count_valid_; }

 private:
  Index n_ = 0;
  std::vector<std::uint64_t> words_;
  mutable Index count_ = 0;
  mutable bool count_valid_ = true;  // a fresh all-zero bitmap has count 0
};

// ---------------------------------------------------------------------------
// BitMatrix: row-major word bitmap adjacency, two planes
// ---------------------------------------------------------------------------

class BitMatrix {
 public:
  BitMatrix() = default;
  BitMatrix(Index nrows, Index ncols, bool all_truthy = true)
      : nrows_(nrows),
        ncols_(ncols),
        stride_(bit_row_stride(ncols)),
        all_truthy_(all_truthy),
        structure_(nrows * bit_row_stride(ncols), 0),
        truth_(all_truthy ? 0 : nrows * bit_row_stride(ncols), 0) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index stride() const { return stride_; }
  bool all_truthy() const { return all_truthy_; }
  Index word_count() const {
    return static_cast<Index>(structure_.size() + truth_.size());
  }

  const std::uint64_t* structure_row(Index i) const {
    return structure_.data() + i * stride_;
  }
  std::uint64_t* mutable_structure_row(Index i) {
    return structure_.data() + i * stride_;
  }
  /// Truth plane; aliases the structure plane when all stored values are
  /// truthy (the half-footprint fast path).
  const std::uint64_t* truth_row(Index i) const {
    return (all_truthy_ ? structure_.data() : truth_.data()) + i * stride_;
  }
  std::uint64_t* mutable_truth_row(Index i) {
    return (all_truthy_ ? structure_.data() : truth_.data()) + i * stride_;
  }

  bool test(Index i, Index j) const {
    return (structure_row(i)[j / kBitWordBits] >> (j % kBitWordBits)) & 1;
  }
  bool test_truth(Index i, Index j) const {
    return (truth_row(i)[j / kBitWordBits] >> (j % kBitWordBits)) & 1;
  }

  /// Stored-entry count: popcount of the structure plane.
  Index nnz() const {
    Index c = 0;
    for (Index i = 0; i < nrows_; ++i) {
      const std::uint64_t* row = structure_row(i);
      for (Index w = 0; w < bit_words(ncols_); ++w) c += bit_popcount(row[w]);
    }
    return c;
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  Index stride_ = 0;
  bool all_truthy_ = true;
  std::vector<std::uint64_t> structure_;
  std::vector<std::uint64_t> truth_;  // empty when all_truthy_
};

// ---------------------------------------------------------------------------
// CSR <-> Bit conversions (host reference; the device conversion in
// backend_gpu/matrix.hpp follows the same layout bit for bit)
// ---------------------------------------------------------------------------

/// Pack a CSR matrix into bitmap planes. Truthiness is `v != T{}` — the
/// same test `LogicalSemiring`'s `a && b` applies — so a stored false
/// lands in structure but not truth.
template <typename T>
BitMatrix csr_to_bits(const Csr<T>& a) {
  bool all_truthy = true;
  for (const T& v : a.values)
    if (v == T{}) {
      all_truthy = false;
      break;
    }
  BitMatrix bm(a.nrows, a.ncols, all_truthy);
  for (Index i = 0; i < a.nrows; ++i) {
    std::uint64_t* srow = bm.mutable_structure_row(i);
    std::uint64_t* trow = all_truthy ? nullptr : bm.mutable_truth_row(i);
    for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k) {
      const Index j = a.col_indices[k];
      const std::uint64_t bit = std::uint64_t{1} << (j % kBitWordBits);
      srow[j / kBitWordBits] |= bit;
      if (trow && a.values[k] != T{}) trow[j / kBitWordBits] |= bit;
    }
  }
  return bm;
}

/// Unpack back to CSR: structure bits become stored entries, valued
/// T(1)/T(0) from the truth plane. For boolean matrices (values already in
/// {0,1}) the round trip CSR -> Bit -> CSR is the identity — the property
/// tests enforce it.
template <typename T>
Csr<T> bits_to_csr(const BitMatrix& bm) {
  Csr<T> out;
  out.nrows = bm.nrows();
  out.ncols = bm.ncols();
  out.row_offsets.assign(bm.nrows() + 1, 0);
  for (Index i = 0; i < bm.nrows(); ++i) {
    const std::uint64_t* srow = bm.structure_row(i);
    const std::uint64_t* trow = bm.truth_row(i);
    for (Index w = 0; w < bit_words(bm.ncols()); ++w) {
      std::uint64_t word = srow[w];
      while (word) {
        const unsigned b = bit_ffs(word);
        word &= word - 1;
        const Index j = w * kBitWordBits + b;
        out.col_indices.push_back(j);
        out.values.push_back(((trow[w] >> b) & 1) ? T(1) : T(0));
      }
    }
    out.row_offsets[i + 1] = static_cast<Index>(out.col_indices.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// GBTL_BIT_MODE: Auto / Force / Off, pinned via env or RAII guard
// ---------------------------------------------------------------------------

enum class BitMode {
  Auto,   ///< propose on boolean-saturating semirings, ratify by cost
  Force,  ///< take the Bit path wherever it is exact (tests / benches)
  Off     ///< never leave CSR
};

inline BitMode bit_mode_from_env() {
  if (const char* s = std::getenv("GBTL_BIT_MODE")) {
    if (std::strcmp(s, "force") == 0) return BitMode::Force;
    if (std::strcmp(s, "off") == 0) return BitMode::Off;
    if (std::strcmp(s, "auto") == 0) return BitMode::Auto;
  }
  return BitMode::Auto;
}

/// Process-wide mode, seeded once from GBTL_BIT_MODE (see docs/env_vars.md).
inline BitMode& bit_mode() {
  static BitMode mode = bit_mode_from_env();
  return mode;
}

class BitModeGuard {
 public:
  explicit BitModeGuard(BitMode mode) : saved_(bit_mode()) {
    bit_mode() = mode;
  }
  ~BitModeGuard() { bit_mode() = saved_; }
  BitModeGuard(const BitModeGuard&) = delete;
  BitModeGuard& operator=(const BitModeGuard&) = delete;

 private:
  BitMode saved_;
};

// ---------------------------------------------------------------------------
// Cost model: word-granularity traffic
// ---------------------------------------------------------------------------

/// Density floor below which the Bit proposal is not even priced.
///
/// Derivation (docs/traversal_direction.md records the same argument): a
/// CSR pull row scans stored in-edges at ~18 bytes each (8-byte source
/// index + 8-byte value + presence/value probes); a Bit pull row scans
/// words at 8 bytes per plane pair, `ceil(n/64)` of them. Early exit
/// cancels out of the comparison — both scans stop at the same logical
/// position (the first truthy frontier neighbour), each having covered the
/// same prefix fraction of its representation — so Bit wins by the
/// *per-row* ratio 18·deg / (8·words) ≈ 144·density. The breakeven is
/// density ≈ 1/144; 1/128 adds a margin for the extra bitmap-build
/// launches, and the roofline ratification makes the final call anyway.
inline constexpr double kBitDensityThreshold = 1.0 / 128.0;

/// Shape summary for pricing a Bit-format traversal (vxm pull over the
/// transpose bit view / mxv gather over the row view).
struct BitTraversalShape {
  std::uint64_t dest_rows = 0;      ///< rows the word gather scans
  std::uint64_t n = 0;              ///< input-vector length (bits per row)
  std::uint64_t nnz = 0;            ///< matrix stored entries
  std::uint64_t frontier_rows = 0;  ///< present entries of the input vector
  std::uint64_t planes = 1;         ///< matrix planes (1 if all-truthy)
  bool view_cached = false;         ///< bit view already materialized?
};

/// Expected words scanned per row under early exit: truthy hits are
/// approximately uniform over the row's words, so the scan covers
/// words / (hits + 1) of them on average (+1: the terminating hit's word),
/// clamped to the full row when hits are rare.
inline double expected_bit_scan_words(double words, double expected_hits) {
  if (expected_hits <= 0.0) return words;
  const double expected = words / (expected_hits + 1.0) + 1.0;
  return expected < words ? expected : words;
}

/// Modeled bytes for one Bit-format traversal: per *read* matrix word the
/// view planes (8 bytes each) — the gather skips frontier words that are
/// all-zero without touching the matrix row, so a thin frontier caps the
/// per-row scan at its populated word count, not the full width — plus the
/// block-shared frontier bitmaps once, per destination row one word of the
/// destination bitmap and the t write, plus the frontier/destination
/// bitmap builds (word-granularity: ceil(n/64)·8 per plane).
inline std::uint64_t estimated_bit_traversal_bytes(
    const BitTraversalShape& s) {
  const double words = static_cast<double>(bit_words(s.n));
  // At most one populated frontier word per present entry.
  const double active_words =
      std::min(words, static_cast<double>(s.frontier_rows));
  const double mean_deg =
      s.n > 0 ? static_cast<double>(s.nnz) / static_cast<double>(s.n) : 0.0;
  const double frontier_fill =
      s.n > 0 ? static_cast<double>(s.frontier_rows) /
                    static_cast<double>(s.n)
              : 0.0;
  const double hits = mean_deg * frontier_fill;  // expected truthy/row
  const double scan = expected_bit_scan_words(active_words, hits);
  const double per_row =
      scan * 8.0 * static_cast<double>(s.planes) + 8.0 + 9.0;
  const std::uint64_t builds =
      static_cast<std::uint64_t>(words) * 8 * 2 +  // frontier planes
      static_cast<std::uint64_t>(words) * 8 +      // destination bitmap
      static_cast<std::uint64_t>(words) * 16 +     // shared frontier read
      s.n * 2;                                     // vector presence+value read
  return static_cast<std::uint64_t>(
             per_row * static_cast<double>(s.dest_rows)) +
         builds;
}

/// Roofline time for the Bit traversal: three setup launches (frontier
/// bitmap, destination bitmap, gather) over the modeled word traffic.
inline double estimated_bit_traversal_time(
    const BitTraversalShape& s, const gpu_sim::DeviceProperties& props) {
  const std::uint64_t bytes = estimated_bit_traversal_bytes(s);
  const std::uint64_t ops = 2 * (bytes / 8 + 1);
  // modeled_kernel_time charges one launch; the two bitmap builds add two.
  return 2 * props.kernel_launch_overhead_s +
         gpu_sim::modeled_kernel_time(props,
                                      gpu_sim::LaunchStats{ops, bytes, 0});
}

/// Modeled cost of materializing one bit-view orientation from CSR: read
/// the CSR structure (offsets + column indices + values for the truthiness
/// probe), scatter one word per entry, zero-fill the planes.
inline double estimated_bit_build_time(
    std::uint64_t nrows, std::uint64_t ncols, std::uint64_t nnz,
    std::uint64_t planes, std::size_t value_bytes,
    const gpu_sim::DeviceProperties& props) {
  const std::uint64_t plane_bytes = nrows * bit_row_stride(ncols) * 8;
  const gpu_sim::LaunchStats stats{
      2 * nnz + nrows,
      (nrows + 1 + nnz) * 8 + nnz * value_bytes + nnz * 8,
      plane_bytes * planes + nnz * 8};
  return gpu_sim::modeled_kernel_time(props, stats);
}

/// Propose/ratify for traversal: Force takes the Bit path wherever it is
/// exact, Off never does, Auto requires (a) density above the word-payoff
/// floor, (b) a live frontier, and (c) the word-granularity roofline
/// estimate (plus the build, when the view is cold) to beat the CSR
/// engine's own estimate for the direction it would have run. Property
/// tested: Auto never returns true when csr_time_s is cheaper.
inline bool select_bit_traversal(BitMode mode, const BitTraversalShape& s,
                                 double csr_time_s,
                                 const gpu_sim::DeviceProperties& props,
                                 double* bit_time_out = nullptr) {
  if (mode == BitMode::Off) return false;
  if (mode == BitMode::Force) return true;
  if (s.n == 0 || s.nnz == 0 || s.frontier_rows == 0) return false;
  const double density = static_cast<double>(s.nnz) /
                         (static_cast<double>(s.n) *
                          static_cast<double>(s.dest_rows > 0 ? s.dest_rows
                                                              : s.n));
  if (density < kBitDensityThreshold) return false;
  double bit_time = estimated_bit_traversal_time(s, props);
  if (!s.view_cached)
    bit_time += estimated_bit_build_time(s.dest_rows > 0 ? s.dest_rows : s.n,
                                         s.n, s.nnz, s.planes, 8, props);
  if (bit_time_out) *bit_time_out = bit_time;
  return bit_time < csr_time_s;
}

/// Modeled bytes for the word-wise AND-popcount masked mxm: per allowed
/// output entry both operands' word rows plus the mask entry and the
/// C write.
inline std::uint64_t estimated_bit_mxm_bytes(std::uint64_t allowed_entries,
                                             std::uint64_t inner_dim) {
  const std::uint64_t words = bit_words(inner_dim);
  return allowed_entries * (2 * words * 8 + 3 * 8);
}

inline double estimated_bit_mxm_time(std::uint64_t allowed_entries,
                                     std::uint64_t inner_dim,
                                     const gpu_sim::DeviceProperties& props) {
  const std::uint64_t bytes =
      estimated_bit_mxm_bytes(allowed_entries, inner_dim);
  return gpu_sim::modeled_kernel_time(
      props, gpu_sim::LaunchStats{2 * (bytes / 8 + 1), bytes, 0});
}

/// Propose/ratify for the masked-mxm popcount path. Auto requires both
/// operand densities above the floor and the word-granularity estimate
/// (plus cold-view builds) to beat the SpGEMM engine's own estimate;
/// Force skips the pricing but NOT the exactness gates (the caller only
/// consults this once the semiring/mask/value checks have passed).
inline bool select_bit_mxm(BitMode mode, std::uint64_t allowed_entries,
                           std::uint64_t inner_dim, std::uint64_t nnz_a,
                           std::uint64_t nnz_b, std::uint64_t nrows_a,
                           std::uint64_t ncols_b, bool views_cached,
                           double csr_time_s,
                           const gpu_sim::DeviceProperties& props) {
  if (mode == BitMode::Off) return false;
  if (mode == BitMode::Force) return true;
  if (inner_dim == 0 || allowed_entries == 0) return false;
  const double cells_a = static_cast<double>(nrows_a) *
                         static_cast<double>(inner_dim);
  const double cells_b = static_cast<double>(inner_dim) *
                         static_cast<double>(ncols_b);
  if (cells_a <= 0.0 || cells_b <= 0.0) return false;
  if (static_cast<double>(nnz_a) / cells_a < kBitDensityThreshold ||
      static_cast<double>(nnz_b) / cells_b < kBitDensityThreshold)
    return false;
  double bit_time = estimated_bit_mxm_time(allowed_entries, inner_dim, props);
  if (!views_cached)
    bit_time +=
        estimated_bit_build_time(nrows_a, inner_dim, nnz_a, 1, 8, props) +
        estimated_bit_build_time(ncols_b, inner_dim, nnz_b, 1, 8, props);
  return bit_time < csr_time_s;
}

}  // namespace sparse
