#pragma once

/// @file fusion_plan.hpp
/// The lazy op-DAG: recording, fusion legality, and the drain planner.
///
/// GraphBLAS ops on the GpuSim backend do not launch eagerly. Each
/// whitelisted vector op records a FusedOp — its kind, output/input
/// container addresses, and a replay closure — into the calling thread's
/// OpDag and returns immediately. Materialization points (host reads,
/// nvals(), container destruction, grb::wait(), checkpoint barriers, or any
/// read of the device clock/stats via the Context drain hook) call
/// fusion_sync_all(), which runs the planner:
///
///  1. Greedy linear scan groups adjacent nodes that share a context, form a
///     legal producer→consumer pair (fusable_pair), and are linked by a true
///     data dependency (the consumer reads or rewrites the producer's
///     output). Under Auto, only small operands fuse (launch-bound regime,
///     where the paper's fig1/fig2 crossovers live); Fuse forces every legal
///     chain.
///  2. Each multi-op group replays under one gpu_sim::FusedLaunchScope: the
///     head launch pays the fixed kernel_launch_overhead_s, every further
///     launch in the group is charged work time only (counted in
///     DeviceStats::launches_elided / fused_launches).
///  3. Index-upload prefetches (assign/extract) are issued up front on the
///     context's dedicated transfer stream via the async copy API, so PCIe
///     time overlaps earlier groups' kernel time; the consuming op joins the
///     edge with a stream_wait (DeviceStats::overlap_seconds_hidden).
///
/// Replay is exact: the closure re-invokes the original backend op, which
/// sees the dag in the draining state and falls through to its eager body —
/// bit-identical results by construction, one code path to test.
///
/// The dag is thread-local (service workers never bleed fusion state into
/// each other); container address stability is guaranteed by the sync-on-
/// move/destroy hooks in backend_gpu::Vector/Matrix.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"

namespace sparse {

// --- Mode control (mirrors SpgemmMode / GBTL_SPGEMM_MODE) ------------------

/// Off replays every op eagerly at record time; Fuse fuses every legal
/// chain; Auto fuses only launch-bound (small) operands.
enum class FusionMode {
  Off,
  Fuse,
  Auto,
};

inline FusionMode fusion_mode_from_env() {
  if (const char* env = std::getenv("GBTL_FUSION_MODE")) {
    if (std::strcmp(env, "off") == 0) return FusionMode::Off;
    if (std::strcmp(env, "fuse") == 0) return FusionMode::Fuse;
    if (std::strcmp(env, "auto") == 0) return FusionMode::Auto;
  }
  return FusionMode::Auto;
}

/// Process-wide mode, seeded once from GBTL_FUSION_MODE (default Auto) so CI
/// can pin any binary without a code change.
inline FusionMode& fusion_mode_ref() {
  static FusionMode mode = fusion_mode_from_env();
  return mode;
}

inline FusionMode fusion_mode() { return fusion_mode_ref(); }

// --- The recorded node ------------------------------------------------------

/// Op kinds the recorder distinguishes — only what the legality table needs,
/// not the full GraphBLAS op taxonomy (everything else drains eagerly).
enum class FusedOpKind : unsigned {
  kMxv = 0,
  kVxm,
  kEWiseAdd,
  kEWiseMult,
  kApply,
  kApplyIndexed,
  kAssign,
  kAssignConstant,
  kSelect,
  kExtract,
  kReduceMatToVec,
  kReduceToScalar,
};

/// An index upload staged on the transfer stream by a prefetch closure,
/// handed to the consuming op at replay time (see staged_or_upload).
struct StagedUpload {
  std::optional<gpu_sim::device_vector<std::uint64_t>> buf;
  double ready_s = 0.0;   ///< absolute transfer-stream second the copy lands
  std::size_t count = 0;  ///< element count, cross-checked at consumption
  bool valid = false;
};

/// One recorded op: identity for the dependency scan plus closures that
/// replay it. `run` re-invokes the original backend op (which executes
/// eagerly because the dag is draining); `run_fused`, when present, is a
/// cheaper specialized body legal only as a non-head group member.
struct FusedOp {
  FusedOpKind kind = FusedOpKind::kApply;
  const void* output = nullptr;
  std::array<const void*, 4> inputs{};
  std::size_t n_inputs = 0;
  std::size_t items = 0;  ///< operand scale for the Auto size gate
  gpu_sim::Context* ctx = nullptr;
  std::function<void()> run;
  std::function<void()> run_fused;
  std::function<void()> prefetch;
  std::shared_ptr<StagedUpload> staged;
};

/// Per-thread recording buffer. `draining` doubles as the replay switch:
/// record_op refuses while set, so the replay closures' recursive calls
/// fall through to the ops' eager bodies.
struct OpDag {
  std::vector<FusedOp> nodes;
  bool draining = false;
};

inline OpDag& op_dag() {
  thread_local OpDag dag;
  return dag;
}

/// Staged upload for the node currently being replayed (set by the planner
/// around each run, consumed by staged_or_upload inside the op body).
inline std::shared_ptr<StagedUpload>& tl_staged() {
  thread_local std::shared_ptr<StagedUpload> staged;
  return staged;
}

// --- Fusion legality --------------------------------------------------------

/// Elementwise kinds: legal as group followers (and as heads of longer
/// chains). One launch over the output span, no inspector phase.
inline bool elementwise_kind(FusedOpKind k) {
  switch (k) {
    case FusedOpKind::kEWiseAdd:
    case FusedOpKind::kEWiseMult:
    case FusedOpKind::kApply:
    case FusedOpKind::kApplyIndexed:
    case FusedOpKind::kAssign:
    case FusedOpKind::kAssignConstant:
    case FusedOpKind::kSelect:
    case FusedOpKind::kExtract:
      return true;
    default:
      return false;
  }
}

/// May (a, b) be adjacent members of one composite launch? Producers
/// (mxv/vxm/reduce-to-vec) and elementwise ops can head a group; followers
/// must be elementwise or the terminal scalar reduction. Producer→producer
/// never fuses — each mxv keeps its own launch overhead (the repeated-mxv
/// benchmarks measure exactly that).
inline bool fusable_pair(FusedOpKind a, FusedOpKind b) {
  const bool head_ok = elementwise_kind(a) || a == FusedOpKind::kMxv ||
                       a == FusedOpKind::kVxm ||
                       a == FusedOpKind::kReduceMatToVec;
  const bool tail_ok = elementwise_kind(b) || b == FusedOpKind::kReduceToScalar;
  return head_ok && tail_ok;
}

/// True data dependency: @p next reads or rewrites @p prev's output. This is
/// what makes the pair one dataflow chain rather than two unrelated ops that
/// merely happen to be adjacent.
inline bool depends_on(const FusedOp& next, const FusedOp& prev) {
  if (prev.output == nullptr) return false;
  if (next.output == prev.output) return true;
  for (std::size_t i = 0; i < next.n_inputs; ++i)
    if (next.inputs[i] == prev.output) return true;
  return false;
}

/// Auto-mode size gate: fuse only operands small enough that the fixed
/// launch overhead is a visible fraction of the op (the regime the paper's
/// small-scale columns measure). 2^20 items ≈ where a memory-bound kernel's
/// work time passes ~35 µs, an order of magnitude over the 6 µs overhead.
inline constexpr std::size_t kAutoFuseMaxItems = std::size_t{1} << 20;

// --- Drain planner ----------------------------------------------------------

namespace fusion_detail {

inline void run_node(FusedOp& n, bool non_head_member) {
  tl_staged() = n.staged;
  struct ClearStaged {
    ~ClearStaged() { tl_staged().reset(); }
  } clear_staged;
  if (non_head_member && n.run_fused)
    n.run_fused();
  else
    n.run();
}

}  // namespace fusion_detail

/// Execute every pending node of @p dag in record order, fusing legal
/// chains. Reentrant-safe: a materialization point hit while draining (the
/// replay bodies read clocks, allocate, transfer) is a no-op.
inline void drain(OpDag& dag) {
  if (dag.draining || dag.nodes.empty()) return;
  dag.draining = true;
  struct ResetDraining {
    OpDag& d;
    ~ResetDraining() { d.draining = false; }
  } reset{dag};

  std::vector<FusedOp> nodes = std::move(dag.nodes);
  dag.nodes.clear();
  // Mode is re-read here, not at record time: a FusionGuard flip between
  // record and drain governs how the pending tail executes.
  const FusionMode mode = fusion_mode();

  // cudaDeviceSynchronize the cost model per distinct context: a stale
  // transfer-stream timeline from an earlier drain must not fabricate
  // overlap for this one.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    bool seen = false;
    for (std::size_t j = 0; j < i && !seen; ++j)
      seen = nodes[j].ctx == nodes[i].ctx;
    if (!seen && nodes[i].ctx != nullptr) nodes[i].ctx->align_streams();
  }

  // Issue every staged index upload first: the copy engine runs ahead of
  // the compute stream, so uploads for later groups hide under earlier
  // groups' kernels.
  if (mode != FusionMode::Off)
    for (FusedOp& n : nodes)
      if (n.prefetch) n.prefetch();

  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i + 1;
    if (mode != FusionMode::Off) {
      while (j < nodes.size() && nodes[j].ctx == nodes[i].ctx &&
             fusable_pair(nodes[j - 1].kind, nodes[j].kind) &&
             depends_on(nodes[j], nodes[j - 1]) &&
             (mode == FusionMode::Fuse ||
              (nodes[j - 1].items <= kAutoFuseMaxItems &&
               nodes[j].items <= kAutoFuseMaxItems)))
        ++j;
    }
    if (j - i > 1) {
      if (nodes[i].ctx != nullptr) nodes[i].ctx->note_fused_group();
      gpu_sim::FusedLaunchScope scope;
      for (std::size_t k = i; k < j; ++k)
        fusion_detail::run_node(nodes[k], /*non_head_member=*/k > i);
    } else {
      fusion_detail::run_node(nodes[i], /*non_head_member=*/false);
    }
    i = j;
  }
}

/// Drain the calling thread's pending ops — the materialization primitive
/// behind grb::wait(), host reads, and the Context drain hook.
inline void fusion_sync_all() { drain(op_dag()); }

/// Does any pending node read or write the container at @p p? Used by
/// Vector/Matrix destructors and moves to drain only when the dying address
/// is actually referenced — an unrelated temporary's death must not cut a
/// pagerank iteration's chain in half.
inline bool fusion_touches(const void* p) {
  if (p == nullptr) return false;
  OpDag& dag = op_dag();
  if (dag.draining) return false;
  for (const FusedOp& n : dag.nodes) {
    if (n.output == p) return true;
    for (std::size_t i = 0; i < n.n_inputs; ++i)
      if (n.inputs[i] == p) return true;
  }
  return false;
}

inline void fusion_sync_if_touches(const void* p) {
  if (fusion_touches(p)) fusion_sync_all();
}

/// RAII guard for tests/benches that pin the mode and must restore it.
/// Drains on entry and exit so ops recorded under one mode never execute
/// under another's accounting.
class FusionGuard {
 public:
  explicit FusionGuard(FusionMode mode) : saved_(fusion_mode_ref()) {
    fusion_sync_all();
    fusion_mode_ref() = mode;
  }
  ~FusionGuard() {
    fusion_sync_all();
    fusion_mode_ref() = saved_;
  }
  FusionGuard(const FusionGuard&) = delete;
  FusionGuard& operator=(const FusionGuard&) = delete;

 private:
  FusionMode saved_;
};

// --- Recording --------------------------------------------------------------

/// Record one op into the calling thread's dag. Returns false — meaning the
/// caller must execute eagerly — while draining (the replay path) or when
/// fusion is Off. The first successful record installs the process-wide
/// drain hook so any clock/stats read materializes pending work.
inline bool record_op(FusedOpKind kind, const void* output,
                      std::initializer_list<const void*> inputs,
                      std::size_t items, gpu_sim::Context& ctx,
                      std::function<void()> run,
                      std::function<void()> run_fused = nullptr,
                      std::function<void()> prefetch = nullptr,
                      std::shared_ptr<StagedUpload> staged = nullptr) {
  OpDag& dag = op_dag();
  if (dag.draining) return false;
  if (fusion_mode() == FusionMode::Off) return false;
  static const bool hook_installed = [] {
    gpu_sim::Context::set_drain_hook(&fusion_sync_all);
    return true;
  }();
  (void)hook_installed;
  FusedOp op;
  op.kind = kind;
  op.output = output;
  for (const void* p : inputs)
    if (p != nullptr && op.n_inputs < op.inputs.size())
      op.inputs[op.n_inputs++] = p;
  op.items = items;
  op.ctx = &ctx;
  op.run = std::move(run);
  op.run_fused = std::move(run_fused);
  op.prefetch = std::move(prefetch);
  op.staged = std::move(staged);
  dag.nodes.push_back(std::move(op));
  return true;
}

// --- Transfer/compute overlap helpers ---------------------------------------

/// Build a prefetch closure + staging slot that uploads @p indices on the
/// context's dedicated transfer stream when the planner starts the drain.
inline std::pair<std::function<void()>, std::shared_ptr<StagedUpload>>
make_index_prefetch(std::shared_ptr<std::vector<std::uint64_t>> indices,
                    gpu_sim::Context& ctx) {
  auto staged = std::make_shared<StagedUpload>();
  std::function<void()> prefetch = [indices, staged, &ctx] {
    if (indices->empty()) return;
    const std::size_t sid = ctx.transfer_stream();
    staged->buf.emplace(indices->size(), ctx);  // allocation only, no traffic
    ctx.copy_h2d_async(staged->buf->data(), indices->data(),
                       indices->size() * sizeof(std::uint64_t), sid);
    staged->ready_s = ctx.stream_clock_s(sid);
    staged->count = indices->size();
    staged->valid = true;
  };
  return {std::move(prefetch), std::move(staged)};
}

/// Consume the planner-staged upload for the currently replaying node if it
/// matches @p indices, joining the copy-stream edge into the compute stream
/// (cudaStreamWaitEvent); otherwise fall back to a synchronous upload —
/// bit-identical either way, only the timeline accounting differs.
inline gpu_sim::device_vector<std::uint64_t> staged_or_upload(
    const std::vector<std::uint64_t>& indices, gpu_sim::Context& ctx) {
  std::shared_ptr<StagedUpload>& staged = tl_staged();
  if (staged && staged->valid && staged->buf &&
      staged->count == indices.size() &&
      &staged->buf->context() == &ctx) {
    ctx.stream_wait(0, staged->ready_s);
    gpu_sim::device_vector<std::uint64_t> buf = std::move(*staged->buf);
    staged->buf.reset();
    staged->valid = false;
    return buf;
  }
  return gpu_sim::device_vector<std::uint64_t>(indices, ctx);
}

}  // namespace sparse
