#pragma once

/// @file spgemm_select.hpp
/// Input-adaptive SpGEMM strategy selection (the GraphBLAST lesson applied
/// to mxm): a symbolic pass over the expansion counts upper-bounds per-row
/// FLOPs and output nnz, and a rule-based selector — ratified by the same
/// roofline cost model that drives the SpMV and traversal engines — picks
/// between the ESC pipeline (expand / sort / contract, the paper's strategy)
/// and a row-wise hash-Gustavson accumulate. Decisions are recorded in
/// DeviceStats::spgemm_selections; the hash path additionally reports its
/// probe-chain collisions, table bytes, and — in the mask-seeded variant —
/// the partial products the mask refused to insert.
///
/// Why two strategies: ESC's traffic is linear in total_products — every
/// partial product is materialized, radix-sorted, and contracted. On
/// high-compression inputs (total_products >> nnz(C): squared power-law
/// graphs, masked triangle counting) most of that traffic is wasted; a hash
/// table the size of the *output* row absorbs the products as they are
/// produced. On low-compression inputs the table is as large as the
/// expansion and the sort-free path saves nothing, so ESC stays the default.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "gpu_sim/context.hpp"
#include "sparse/formats.hpp"

namespace sparse {

using gpu_sim::SpgemmStrategy;

// ---------------------------------------------------------------------------
// Mode override + test hooks
// ---------------------------------------------------------------------------

/// Global dispatch override: Auto lets the heuristic decide; Esc/Hash pin
/// every mxm to one strategy (the differential tests sweep all three to
/// prove the paths agree bit-for-bit).
enum class SpgemmMode {
  Auto,
  Esc,
  Hash,
};

inline SpgemmMode& spgemm_mode() {
  static SpgemmMode mode = SpgemmMode::Auto;
  return mode;
}

/// RAII guard for tests/benches that pin the strategy and must restore it.
class SpgemmModeGuard {
 public:
  explicit SpgemmModeGuard(SpgemmMode mode) : saved_(spgemm_mode()) {
    spgemm_mode() = mode;
  }
  ~SpgemmModeGuard() { spgemm_mode() = saved_; }
  SpgemmModeGuard(const SpgemmModeGuard&) = delete;
  SpgemmModeGuard& operator=(const SpgemmModeGuard&) = delete;

 private:
  SpgemmMode saved_;
};

/// Target open-addressing load factor: tables are sized to
/// entries / slots <= this bound (then rounded up to a power of two).
/// Mutable so the edge tests can force a worst-case 1.0 load factor.
inline double& spgemm_hash_load_target() {
  static double target = 0.5;
  return target;
}

// ---------------------------------------------------------------------------
// Row bins + table sizing
// ---------------------------------------------------------------------------

// Row binning thresholds, in per-row FLOPs (partial products). Short rows
// run one thread per row; medium rows get a warp; long rows are split into
// fixed-FLOP chunks across virtual workers, the merge-path idea applied to
// Gustavson row work.
inline constexpr Index kShortRowMaxFlops = 32;
inline constexpr Index kMediumRowMaxFlops = 512;
inline constexpr Index kLongRowChunkFlops = 256;

/// Tables at or under this many slots are modeled as living in on-chip
/// shared memory; larger tables spill to global memory and each probe pays
/// a memory-sector round trip.
inline constexpr Index kOnChipTableSlots = 2048;
/// Bytes charged per global-memory probe of a spilled table (one 32-byte
/// sector read; a miss chain pays one per step).
inline constexpr Index kProbeSectorBytes = 32;

inline constexpr Index kMinHashSlots = 8;

/// Slots for a hash table that must absorb @p entries_bound distinct keys:
/// sized to the load-factor target, rounded up to a power of two (the probe
/// sequence uses mask-and arithmetic), floored at kMinHashSlots.
inline Index hash_table_slots(Index entries_bound) {
  if (entries_bound == 0) return 0;
  const double target = std::max(spgemm_hash_load_target(), 1e-3);
  Index need = static_cast<Index>(
      std::ceil(static_cast<double>(entries_bound) / target));
  need = std::max(need, kMinHashSlots);
  Index slots = 1;
  while (slots < need) slots <<= 1;
  return slots;
}

// ---------------------------------------------------------------------------
// Symbolic summary
// ---------------------------------------------------------------------------

/// Product of the symbolic pass: per-row FLOP (partial-product) bounds and
/// output-nnz bounds folded into the aggregate shape statistics the
/// selector and the cost model consume.
struct SpgemmSymbolic {
  Index nrows = 0;
  Index ncols = 0;
  std::uint64_t total_products = 0;  ///< sum of per-row FLOPs
  std::uint64_t est_nnz = 0;         ///< sum of per-row output bounds
  Index max_row_flops = 0;
  double mean_row_flops = 0.0;  ///< over non-empty rows
  double flops_stddev = 0.0;    ///< population stddev over non-empty rows
  Index nonempty_rows = 0;
  // Row bins (by FLOP count; empty rows are unbinned).
  Index short_rows = 0;
  Index medium_rows = 0;
  Index long_rows = 0;
  std::uint64_t long_row_chunks = 0;  ///< virtual workers for the long bin
  // Hash-table footprint.
  std::uint64_t table_slots = 0;      ///< total slots across all rows
  std::uint64_t spilled_slots = 0;    ///< slots of tables > kOnChipTableSlots
  std::uint64_t spilled_products = 0; ///< products landing in spilled tables
  bool masked = false;  ///< output bound came from a non-complemented mask

  /// The selector's primary signal: partial products per distinct output
  /// slot. 1.0 means every product survives (ESC wastes nothing); >> 1
  /// means most of the expansion collapses (hash absorbs it in place).
  double compression() const {
    return est_nnz > 0 ? static_cast<double>(total_products) /
                             static_cast<double>(est_nnz)
                       : 1.0;
  }
  /// Max/mean row FLOPs: >> 1 when one row dominates the expansion.
  double flops_skew() const {
    return mean_row_flops > 0.0
               ? static_cast<double>(max_row_flops) / mean_row_flops
               : 0.0;
  }
  /// Coefficient of variation of row FLOPs.
  double flops_cv() const {
    return mean_row_flops > 0.0 ? flops_stddev / mean_row_flops : 0.0;
  }
};

/// Fold per-row FLOP counts and output-nnz caps into the symbolic summary.
/// Both arrays may live in (host-addressable) device memory — the pass reads
/// them in place; its kernel cost is charged separately by the caller.
///
/// @param row_flops  partial products generated by each output row.
/// @param row_caps   upper bound on each row's distinct output columns —
///   min(flops, ncols) unmasked, the allowed-mask-entry count when a
///   non-complemented mask seeds the table. The hash table of a row must
///   hold this many keys.
inline SpgemmSymbolic analyze_spgemm(const Index* row_flops,
                                     const Index* row_caps, Index nrows,
                                     Index ncols, bool masked) {
  SpgemmSymbolic s;
  s.nrows = nrows;
  s.ncols = ncols;
  s.masked = masked;
  double sum = 0.0, sum_sq = 0.0;
  for (Index i = 0; i < nrows; ++i) {
    const Index f = row_flops[i];
    s.total_products += f;
    if (f == 0) continue;
    ++s.nonempty_rows;
    sum += static_cast<double>(f);
    sum_sq += static_cast<double>(f) * static_cast<double>(f);
    s.max_row_flops = std::max(s.max_row_flops, f);
    const Index bound = std::min<Index>(f, row_caps[i]);
    s.est_nnz += bound;
    if (f <= kShortRowMaxFlops) {
      ++s.short_rows;
    } else if (f <= kMediumRowMaxFlops) {
      ++s.medium_rows;
    } else {
      ++s.long_rows;
      s.long_row_chunks += (f + kLongRowChunkFlops - 1) / kLongRowChunkFlops;
    }
    const Index slots = hash_table_slots(row_caps[i]);
    s.table_slots += slots;
    if (slots > kOnChipTableSlots) {
      s.spilled_slots += slots;
      s.spilled_products += f;
    }
  }
  if (s.nonempty_rows > 0) {
    s.mean_row_flops = sum / static_cast<double>(s.nonempty_rows);
    const double var = sum_sq / static_cast<double>(s.nonempty_rows) -
                       s.mean_row_flops * s.mean_row_flops;
    s.flops_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Overflow guard
// ---------------------------------------------------------------------------

/// Sum expansion counts in 64 bits and verify the grand total still fits
/// the index type the downstream scan/expansion buffers are addressed with.
/// ESC materializes total_products (key, value) pairs, so an IndexT
/// narrower than 64 bits overflows silently on skewed inputs — this guard
/// turns that into a diagnostic naming the op and the product count.
template <typename IndexT>
std::uint64_t checked_product_total(const IndexT* counts, std::size_t n,
                                    const char* op) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t prev = total;
    total += static_cast<std::uint64_t>(counts[i]);
    if (total < prev)
      throw std::overflow_error(
          std::string(op) +
          ": SpGEMM expansion product count overflows 64-bit accumulation");
  }
  constexpr std::uint64_t index_max =
      static_cast<std::uint64_t>(~static_cast<IndexT>(0));
  if (total > index_max)
    throw std::overflow_error(
        std::string(op) + ": SpGEMM expansion needs " + std::to_string(total) +
        " partial products, which exceeds the " +
        std::to_string(8 * sizeof(IndexT)) +
        "-bit index type; rebuild with a wider IndexType or block the "
        "multiply");
  return total;
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Estimated global-memory traffic of one mxm under @p strategy, mirroring
/// the LaunchStats the two pipelines actually charge (excluding the shared
/// symbolic pass and write-back, which both strategies pay identically).
inline std::uint64_t estimated_spgemm_bytes(SpgemmStrategy strategy,
                                            const SpgemmSymbolic& s,
                                            std::size_t value_bytes) {
  const std::uint64_t pair = sizeof(Index) + value_bytes;
  const std::uint64_t P = s.total_products;
  if (strategy == SpgemmStrategy::kEsc) {
    // Expansion write, radix sort (4 passes × read+write of the key/value
    // stream), contraction read + unique write. Masked runs pre-filter the
    // expansion with a per-product probe before the sort.
    std::uint64_t bytes = P * pair              // expansion write
                          + 8 * P * pair        // 4-pass radix sort
                          + P * pair            // contraction read
                          + s.est_nnz * pair;   // contraction write
    if (s.masked)
      bytes += P * (8 * sizeof(Index) + 1)  // probe + flag per product
               + 2 * P * pair;              // compaction read/write
    return bytes;
  }
  // Hash: binning passes over the row arrays, one streamed read of the
  // expansion inputs, table init + insert traffic (on-chip tables are free
  // beyond their init; spilled tables pay sector round trips per probe),
  // and the sorted extraction of est_nnz survivors.
  const std::uint64_t slot_bytes = pair + 1;  // key + value + state byte
  return s.nrows * (6 * sizeof(Index))            // binning + offsets
         + P * pair                               // streamed products
         + s.table_slots * slot_bytes             // init + extraction scan
         + 2 * s.spilled_products * kProbeSectorBytes  // global probes
         + s.spilled_slots * slot_bytes           // spilled extraction
         + s.est_nnz * pair;                      // output write
}

/// Approximate scalar-op count per call (the roofline's compute leg).
inline std::uint64_t estimated_spgemm_ops(SpgemmStrategy strategy,
                                          const SpgemmSymbolic& s) {
  const std::uint64_t P = s.total_products;
  if (strategy == SpgemmStrategy::kEsc) {
    std::uint64_t ops = 2 * P      // expand mult + slot arithmetic
                        + 8 * P    // radix sort passes
                        + 2 * P;   // contraction compare + add
    if (s.masked) ops += 8 * P;    // binary-search probe per product
    return ops;
  }
  // Hash: mult + hash + expected ~2 probe steps per product at the target
  // load factor, plus per-row sort of the extracted entries (small rows, so
  // modeled linear-log with a small constant).
  return 4 * P + 2 * s.est_nnz + s.long_row_chunks * 8;
}

/// Kernel launches per call. ESC: expansion sizing is shared, so it pays
/// expansion + sort (4 passes folded into one modeled launch each in
/// sort_by_key's accounting ≈ 2) + contraction (+2 masked pre-filter).
/// Hash pays the binning/flag/compaction chain, table init, one numeric
/// launch per bin, and the extraction + reduction launches.
inline unsigned estimated_spgemm_launches(SpgemmStrategy strategy,
                                          const SpgemmSymbolic& s) {
  if (strategy == SpgemmStrategy::kEsc) return s.masked ? 9u : 7u;
  unsigned launches = 8;  // caps/slots sizing, scans, init, extraction, sums
  if (s.short_rows > 0) ++launches;
  if (s.medium_rows > 0) ++launches;
  if (s.long_rows > 0) ++launches;
  if (s.masked) ++launches;  // table seeding pass
  return launches;
}

/// Modeled time of one mxm under @p strategy: launch overheads plus the
/// roofline max of compute and memory time — the same shape as
/// estimated_spmv_time / estimated_traversal_time, so all three engines
/// share one calibration.
inline double estimated_spgemm_time(SpgemmStrategy strategy,
                                    const SpgemmSymbolic& s,
                                    std::size_t value_bytes,
                                    const gpu_sim::DeviceProperties& props) {
  const double compute =
      static_cast<double>(estimated_spgemm_ops(strategy, s)) /
      props.compute_throughput_ops_per_s;
  const double memory =
      static_cast<double>(estimated_spgemm_bytes(strategy, s, value_bytes)) /
      props.memory_bandwidth_bytes_per_s;
  return estimated_spgemm_launches(strategy, s) *
             props.kernel_launch_overhead_s +
         (compute > memory ? compute : memory);
}

// Proposal thresholds. The hash path is proposed when a meaningful slice of
// the expansion collapses (compression ≥ 1.5 — and note est_nnz is an upper
// bound, so the true compression is higher still; squared R-MAT graphs sit
// at a bound of ~1.6-2.0 while their real ratio is ~3), when a
// non-complemented mask bounds the tables (masked triangle counting /
// k-truss, the Abl. B shapes), or when row-FLOP skew says one row dominates
// the sort. The roofline ratification then keeps small launch-bound inputs
// on the shorter ESC pipeline regardless.
inline constexpr double kHashCompressionThreshold = 1.5;
inline constexpr double kHashFlopsSkewThreshold = 16.0;

/// Pick the SpGEMM strategy for a multiply with symbolic summary @p s.
/// The heuristic proposes; when device properties are supplied the cost
/// model ratifies — a hash proposal whose modeled time loses to ESC is
/// discarded (and vice versa never arises: ESC is the incumbent default).
inline SpgemmStrategy select_spgemm(
    const SpgemmSymbolic& s, SpgemmMode mode = spgemm_mode(),
    const gpu_sim::DeviceProperties* props = nullptr,
    std::size_t value_bytes = sizeof(double)) {
  switch (mode) {
    case SpgemmMode::Esc:
      return SpgemmStrategy::kEsc;
    case SpgemmMode::Hash:
      return SpgemmStrategy::kHash;
    case SpgemmMode::Auto:
      break;
  }
  if (s.total_products == 0) return SpgemmStrategy::kEsc;
  const bool proposed = s.compression() >= kHashCompressionThreshold ||
                        s.masked ||
                        s.flops_skew() >= kHashFlopsSkewThreshold;
  if (!proposed) return SpgemmStrategy::kEsc;
  if (props &&
      estimated_spgemm_time(SpgemmStrategy::kHash, s, value_bytes, *props) >
          estimated_spgemm_time(SpgemmStrategy::kEsc, s, value_bytes, *props))
    return SpgemmStrategy::kEsc;
  return SpgemmStrategy::kHash;
}

/// Inspector-selector bundle: analyze the per-row bounds once, pick the
/// strategy, and keep both around for the executor (backend_gpu::mxm) and
/// for tests that want to interrogate the decision.
class AdaptiveSpgemm {
 public:
  AdaptiveSpgemm(const Index* row_flops, const Index* row_caps, Index nrows,
                 Index ncols, bool masked, std::size_t value_bytes,
                 const gpu_sim::DeviceProperties* props,
                 SpgemmMode mode = spgemm_mode())
      : symbolic_(analyze_spgemm(row_flops, row_caps, nrows, ncols, masked)),
        strategy_(select_spgemm(symbolic_, mode, props, value_bytes)) {}

  const SpgemmSymbolic& symbolic() const { return symbolic_; }
  SpgemmStrategy strategy() const { return strategy_; }

 private:
  SpgemmSymbolic symbolic_;
  SpgemmStrategy strategy_;
};

}  // namespace sparse
