#pragma once

/// @file spmv_device.hpp
/// Device-modeled SpMV kernels, one per sparse format, for the format
/// ablation (Abl. A). Each kernel executes functionally through the
/// simulated launch API and charges the cost model with its real traffic
/// pattern:
///   - CSR (scalar): one thread per row. Under SIMT lockstep a warp moves at
///     the pace of its heaviest row, so the model charges warp-granular
///     padded traffic (gpu_sim::warp_padded_items) — mild on banded inputs,
///     ruinous on power-law degree distributions;
///   - CSR (load-balanced): merge-path / nnz-chunked (Merrill & Garland);
///     flat traffic in nnz regardless of skew, at the price of a partition
///     search and a partial-row fixup pass;
///   - COO: scalar kernel over nonzeros with atomic accumulation into y
///     (atomics modeled as a 4x op surcharge);
///   - CSC: push-style with atomics on y;
///   - ELL: reads the *padded* slab — width * nrows slots — which is
///     exactly why it collapses on power-law degree distributions.

#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"
#include "sparse/formats.hpp"

namespace sparse {

/// Effective (warp-padded) slot count of the row-parallel CSR kernel over
/// @p a: what the SIMT lanes actually stream through the memory pipeline.
template <typename T>
std::uint64_t csr_scalar_padded_slots(const Csr<T>& a,
                                      std::uint32_t warp_size) {
  return gpu_sim::warp_padded_items(a.nrows, warp_size, [&](std::size_t i) {
    return a.row_offsets[i + 1] - a.row_offsets[i];
  });
}

/// y = A * x on the simulated device, row-parallel CSR. Returns y; simulated
/// time is read from the context's stats delta by the caller.
template <typename T>
std::vector<T> spmv_device(const Csr<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> offs(a.row_offsets, ctx);
  gpu_sim::device_vector<Index> cols(a.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  const Index* o = offs.data();
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const std::uint64_t slots =
      csr_scalar_padded_slots(a, ctx.properties().warp_size);
  ctx.launch_n(a.nrows,
               gpu_sim::LaunchStats{
                   2 * slots,
                   slots * (sizeof(Index) + 2 * sizeof(T)) +
                       (a.nrows + 1) * sizeof(Index),
                   a.nrows * sizeof(T)},
               [=](std::size_t i) {
                 T acc{};
                 for (Index k = o[i]; k < o[i + 1]; ++k)
                   acc += v[k] * px[c[k]];
                 py[i] = acc;
               });
  return dy.to_host();
}

/// Default nnz-per-team chunk of the load-balanced kernel. Mutable global so
/// tests can shrink it to force multi-team partial-row coverage on tiny
/// matrices.
inline Index& spmv_lb_chunk() {
  static Index chunk = 256;
  return chunk;
}

/// y = A * x on the simulated device, merge-path load-balanced CSR.
///
/// The nonzero range is cut into fixed-size chunks ("teams" — one warp's
/// worth of work each). Each team binary-searches its starting row in the
/// offsets array, streams its chunk, writes rows fully contained in the
/// chunk directly, and spills at most two partial row sums (its first and
/// last row) to a per-team buffer. A second, serial fixup kernel combines
/// the partials with atomic adds. Cost is flat in nnz — no warp-padding
/// term — plus the partition search and the fixup pass.
template <typename T>
std::vector<T> spmv_device_lb(const Csr<T>& a, const std::vector<T>& x,
                              gpu_sim::Context& ctx, Index chunk = 0) {
  if (chunk == 0) chunk = spmv_lb_chunk();
  if (chunk == 0) chunk = 1;
  const std::uint64_t nnz = a.nnz();
  const Index nteams = static_cast<Index>((nnz + chunk - 1) / chunk);

  gpu_sim::device_vector<Index> offs(a.row_offsets, ctx);
  gpu_sim::device_vector<Index> cols(a.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);

  // Per-team spill buffers: slot 2t = first (possibly preceding-chunk) row,
  // slot 2t+1 = last row running past the chunk boundary.
  gpu_sim::device_vector<Index> partial_row(2 * nteams, ctx);
  gpu_sim::device_vector<T> partial_val(2 * nteams, ctx);
  gpu_sim::device_vector<std::uint8_t> partial_has(2 * nteams, ctx);

  // y-init and spill-flag init are fused into the team kernel (merge-path
  // coordinates cover row items too): zeroed functionally here, the write
  // traffic is charged in the team launch below.
  std::fill_n(dy.data(), a.nrows, T{});
  std::fill_n(partial_has.data(), 2 * nteams, std::uint8_t{0});

  const Index* o = offs.data();
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  Index* prow = partial_row.data();
  T* pval = partial_val.data();
  std::uint8_t* phas = partial_has.data();
  const Index nrows = a.nrows;

  const std::uint64_t search_ops =
      nteams * 8;  // ~log2 of any practical nrows
  ctx.launch_n(
      nteams,
      gpu_sim::LaunchStats{
          2 * nnz + search_ops,
          nnz * (sizeof(Index) + 2 * sizeof(T)) +
              (a.nrows + 1) * sizeof(Index) + search_ops * sizeof(Index),
          nrows * sizeof(T) + 2 * nteams * (sizeof(Index) + sizeof(T) + 1)},
      [=](std::size_t t) {
        const Index k0 = static_cast<Index>(t) * chunk;
        const Index k1 = std::min<Index>(k0 + chunk, nnz);
        if (k0 >= k1) return;
        // Start row: last r with o[r] <= k0 (skips empty rows at k0).
        Index lo = 0, hi = nrows;
        while (lo < hi) {  // upper_bound on o[0..nrows]
          const Index mid = (lo + hi) / 2;
          if (o[mid] <= k0)
            lo = mid + 1;
          else
            hi = mid;
        }
        Index r = lo - 1;
        Index k = k0;
        while (k < k1) {
          const Index row_end = std::min<Index>(o[r + 1], k1);
          T acc{};
          for (; k < row_end; ++k) acc += v[k] * px[c[k]];
          const bool starts_inside = o[r] >= k0;
          const bool ends_inside = o[r + 1] <= k1;
          if (starts_inside && ends_inside) {
            py[r] = acc;  // row fully owned by this team: direct write
          } else {
            const Index slot =
                2 * static_cast<Index>(t) + (starts_inside ? 1 : 0);
            prow[slot] = r;
            pval[slot] = acc;
            phas[slot] = 1;
          }
          ++r;
        }
      });

  // Fixup: combine spilled partial sums. Serial over 2*nteams slots in slot
  // order — deterministic; atomics surcharge as elsewhere in the model.
  ctx.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1},
             gpu_sim::LaunchStats{
                 8 * 2 * nteams,
                 2 * nteams * (sizeof(Index) + sizeof(T) + 1),
                 2 * nteams * sizeof(T)},
             [&](const gpu_sim::ThreadId&) {
               for (Index s = 0; s < 2 * nteams; ++s)
                 if (phas[s]) py[prow[s]] += pval[s];
             });
  return dy.to_host();
}

template <typename T>
std::vector<T> spmv_device(const Coo<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> rows(a.row, ctx);
  gpu_sim::device_vector<Index> cols(a.col, ctx);
  gpu_sim::device_vector<T> vals(a.val, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  gpu_sim::fill(dy, T{});
  const Index* r = rows.data();
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const std::uint64_t nnz = a.nnz();
  // Atomic adds into y: 4x op surcharge for contention/retry.
  gpu_sim::LaunchStats stats{8 * nnz,
                             nnz * (2 * sizeof(Index) + 2 * sizeof(T)),
                             nnz * sizeof(T)};
  gpu_sim::Context& c2 = ctx;
  c2.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1}, stats,
            [&](const gpu_sim::ThreadId&) {
              for (Index k = 0; k < nnz; ++k) py[r[k]] += v[k] * px[c[k]];
            });
  return dy.to_host();
}

template <typename T>
std::vector<T> spmv_device(const Csc<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> offs(a.col_offsets, ctx);
  gpu_sim::device_vector<Index> rows(a.row_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  gpu_sim::fill(dy, T{});
  const Index* o = offs.data();
  const Index* r = rows.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const std::uint64_t nnz = a.nnz();
  const Index ncols = a.ncols;
  // Column-parallel with atomics on y (same surcharge as COO).
  gpu_sim::LaunchStats stats{8 * nnz,
                             nnz * (sizeof(Index) + 2 * sizeof(T)) +
                                 (ncols + 1) * sizeof(Index),
                             nnz * sizeof(T)};
  ctx.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1}, stats,
             [&](const gpu_sim::ThreadId&) {
               for (Index j = 0; j < ncols; ++j)
                 for (Index k = o[j]; k < o[j + 1]; ++k)
                   py[r[k]] += v[k] * px[j];
             });
  return dy.to_host();
}

template <typename T>
std::vector<T> spmv_device(const Ell<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> cols(a.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const Index nrows = a.nrows;
  const Index width = a.width;
  // The slab is read wholesale, padding included.
  const std::uint64_t slots = width * nrows;
  ctx.launch_n(nrows,
               gpu_sim::LaunchStats{
                   2 * slots, slots * (sizeof(Index) + 2 * sizeof(T)),
                   nrows * sizeof(T)},
               [=](std::size_t i) {
                 T acc{};
                 for (Index s = 0; s < width; ++s) {
                   const Index col = c[s * nrows + i];
                   if (col != Ell<T>::kPad) acc += v[s * nrows + i] * px[col];
                 }
                 py[i] = acc;
               });
  return dy.to_host();
}

/// HYB: the ELL kernel over the bounded slab plus the COO atomic tail —
/// two launches, the CUSP approach. The slab is width-capped, so the
/// padded traffic stays proportional to the mean degree even on power-law
/// inputs (the fix for pure ELL's collapse).
template <typename T>
std::vector<T> spmv_device(const Hyb<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  // ELL part.
  gpu_sim::device_vector<Index> cols(a.ell.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.ell.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows(), ctx);
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const Index nrows = a.nrows();
  const Index width = a.ell.width;
  const std::uint64_t slots = width * nrows;
  ctx.launch_n(nrows,
               gpu_sim::LaunchStats{
                   2 * slots, slots * (sizeof(Index) + 2 * sizeof(T)),
                   nrows * sizeof(T)},
               [=](std::size_t i) {
                 T acc{};
                 for (Index s = 0; s < width; ++s) {
                   const Index col = c[s * nrows + i];
                   if (col != Ell<T>::kPad) acc += v[s * nrows + i] * px[col];
                 }
                 py[i] = acc;
               });

  // COO tail with atomic adds.
  const std::uint64_t tail_nnz = a.tail.nnz();
  if (tail_nnz > 0) {
    gpu_sim::device_vector<Index> trow(a.tail.row, ctx);
    gpu_sim::device_vector<Index> tcol(a.tail.col, ctx);
    gpu_sim::device_vector<T> tval(a.tail.val, ctx);
    const Index* r = trow.data();
    const Index* tc = tcol.data();
    const T* tv = tval.data();
    gpu_sim::LaunchStats stats{
        8 * tail_nnz, tail_nnz * (2 * sizeof(Index) + 2 * sizeof(T)),
        tail_nnz * sizeof(T)};
    ctx.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1}, stats,
               [&](const gpu_sim::ThreadId&) {
                 for (Index k = 0; k < tail_nnz; ++k)
                   py[r[k]] += tv[k] * px[tc[k]];
               });
  }
  return dy.to_host();
}

}  // namespace sparse
