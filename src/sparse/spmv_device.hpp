#pragma once

/// @file spmv_device.hpp
/// Device-modeled SpMV kernels, one per sparse format, for the format
/// ablation (Abl. A). Each kernel executes functionally through the
/// simulated launch API and charges the cost model with its real traffic
/// pattern:
///   - CSR: one pass over the structure, row-parallel (the winner on
///     irregular graphs — and what the GBTL GPU backend uses);
///   - COO: scalar kernel over nonzeros with atomic accumulation into y
///     (atomics modeled as a 4x op surcharge);
///   - CSC: push-style with atomics on y;
///   - ELL: reads the *padded* slab — width * nrows slots — which is
///     exactly why it collapses on power-law degree distributions.

#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"
#include "sparse/formats.hpp"

namespace sparse {

/// y = A * x on the simulated device. Returns y; simulated time is read
/// from the context's stats delta by the caller.
template <typename T>
std::vector<T> spmv_device(const Csr<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> offs(a.row_offsets, ctx);
  gpu_sim::device_vector<Index> cols(a.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  const Index* o = offs.data();
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const std::uint64_t nnz = a.nnz();
  ctx.launch_n(a.nrows,
               gpu_sim::LaunchStats{
                   2 * nnz,
                   nnz * (sizeof(Index) + 2 * sizeof(T)) +
                       (a.nrows + 1) * sizeof(Index),
                   a.nrows * sizeof(T)},
               [=](std::size_t i) {
                 T acc{};
                 for (Index k = o[i]; k < o[i + 1]; ++k)
                   acc += v[k] * px[c[k]];
                 py[i] = acc;
               });
  return dy.to_host();
}

template <typename T>
std::vector<T> spmv_device(const Coo<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> rows(a.row, ctx);
  gpu_sim::device_vector<Index> cols(a.col, ctx);
  gpu_sim::device_vector<T> vals(a.val, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  gpu_sim::fill(dy, T{});
  const Index* r = rows.data();
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const std::uint64_t nnz = a.nnz();
  // Atomic adds into y: 4x op surcharge for contention/retry.
  gpu_sim::LaunchStats stats{8 * nnz,
                             nnz * (2 * sizeof(Index) + 2 * sizeof(T)),
                             nnz * sizeof(T)};
  gpu_sim::Context& c2 = ctx;
  c2.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1}, stats,
            [&](const gpu_sim::ThreadId&) {
              for (Index k = 0; k < nnz; ++k) py[r[k]] += v[k] * px[c[k]];
            });
  return dy.to_host();
}

template <typename T>
std::vector<T> spmv_device(const Csc<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> offs(a.col_offsets, ctx);
  gpu_sim::device_vector<Index> rows(a.row_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  gpu_sim::fill(dy, T{});
  const Index* o = offs.data();
  const Index* r = rows.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const std::uint64_t nnz = a.nnz();
  const Index ncols = a.ncols;
  // Column-parallel with atomics on y (same surcharge as COO).
  gpu_sim::LaunchStats stats{8 * nnz,
                             nnz * (sizeof(Index) + 2 * sizeof(T)) +
                                 (ncols + 1) * sizeof(Index),
                             nnz * sizeof(T)};
  ctx.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1}, stats,
             [&](const gpu_sim::ThreadId&) {
               for (Index j = 0; j < ncols; ++j)
                 for (Index k = o[j]; k < o[j + 1]; ++k)
                   py[r[k]] += v[k] * px[j];
             });
  return dy.to_host();
}

template <typename T>
std::vector<T> spmv_device(const Ell<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  gpu_sim::device_vector<Index> cols(a.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows, ctx);
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const Index nrows = a.nrows;
  const Index width = a.width;
  // The slab is read wholesale, padding included.
  const std::uint64_t slots = width * nrows;
  ctx.launch_n(nrows,
               gpu_sim::LaunchStats{
                   2 * slots, slots * (sizeof(Index) + 2 * sizeof(T)),
                   nrows * sizeof(T)},
               [=](std::size_t i) {
                 T acc{};
                 for (Index s = 0; s < width; ++s) {
                   const Index col = c[s * nrows + i];
                   if (col != Ell<T>::kPad) acc += v[s * nrows + i] * px[col];
                 }
                 py[i] = acc;
               });
  return dy.to_host();
}

/// HYB: the ELL kernel over the bounded slab plus the COO atomic tail —
/// two launches, the CUSP approach. The slab is width-capped, so the
/// padded traffic stays proportional to the mean degree even on power-law
/// inputs (the fix for pure ELL's collapse).
template <typename T>
std::vector<T> spmv_device(const Hyb<T>& a, const std::vector<T>& x,
                           gpu_sim::Context& ctx) {
  // ELL part.
  gpu_sim::device_vector<Index> cols(a.ell.col_indices, ctx);
  gpu_sim::device_vector<T> vals(a.ell.values, ctx);
  gpu_sim::device_vector<T> dx(x, ctx);
  gpu_sim::device_vector<T> dy(a.nrows(), ctx);
  const Index* c = cols.data();
  const T* v = vals.data();
  const T* px = dx.data();
  T* py = dy.data();
  const Index nrows = a.nrows();
  const Index width = a.ell.width;
  const std::uint64_t slots = width * nrows;
  ctx.launch_n(nrows,
               gpu_sim::LaunchStats{
                   2 * slots, slots * (sizeof(Index) + 2 * sizeof(T)),
                   nrows * sizeof(T)},
               [=](std::size_t i) {
                 T acc{};
                 for (Index s = 0; s < width; ++s) {
                   const Index col = c[s * nrows + i];
                   if (col != Ell<T>::kPad) acc += v[s * nrows + i] * px[col];
                 }
                 py[i] = acc;
               });

  // COO tail with atomic adds.
  const std::uint64_t tail_nnz = a.tail.nnz();
  if (tail_nnz > 0) {
    gpu_sim::device_vector<Index> trow(a.tail.row, ctx);
    gpu_sim::device_vector<Index> tcol(a.tail.col, ctx);
    gpu_sim::device_vector<T> tval(a.tail.val, ctx);
    const Index* r = trow.data();
    const Index* tc = tcol.data();
    const T* tv = tval.data();
    gpu_sim::LaunchStats stats{
        8 * tail_nnz, tail_nnz * (2 * sizeof(Index) + 2 * sizeof(T)),
        tail_nnz * sizeof(T)};
    ctx.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1}, stats,
               [&](const gpu_sim::ThreadId&) {
                 for (Index k = 0; k < tail_nnz; ++k)
                   py[r[k]] += tv[k] * px[tc[k]];
               });
  }
  return dy.to_host();
}

}  // namespace sparse
